# Empty compiler generated dependencies file for drtpsim.
# This may be replaced when dependencies are built.
