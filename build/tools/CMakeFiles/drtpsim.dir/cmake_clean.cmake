file(REMOVE_RECURSE
  "CMakeFiles/drtpsim.dir/drtpsim.cc.o"
  "CMakeFiles/drtpsim.dir/drtpsim.cc.o.d"
  "drtpsim"
  "drtpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
