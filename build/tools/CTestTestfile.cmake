# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(drtpsim_topo "/root/repo/build/tools/drtpsim" "topo" "--kind=grid" "--rows=4" "--cols=4" "--out=/root/repo/build/tools/smoke.topo")
set_tests_properties(drtpsim_topo PROPERTIES  FIXTURES_SETUP "smoke_topo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drtpsim_scenario "/root/repo/build/tools/drtpsim" "scenario" "--topo=/root/repo/build/tools/smoke.topo" "--lambda=0.3" "--duration=600" "--failures=2" "--mttr=60" "--out=/root/repo/build/tools/smoke.scn")
set_tests_properties(drtpsim_scenario PROPERTIES  FIXTURES_REQUIRED "smoke_topo" FIXTURES_SETUP "smoke_scn" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(drtpsim_run "/root/repo/build/tools/drtpsim" "run" "--topo=/root/repo/build/tools/smoke.topo" "--scenario=/root/repo/build/tools/smoke.scn" "--scheme=BF" "--warmup_frac=0.3")
set_tests_properties(drtpsim_run PROPERTIES  FIXTURES_REQUIRED "smoke_topo;smoke_scn" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
