file(REMOVE_RECURSE
  "libdrtp_common.a"
)
