# Empty compiler generated dependencies file for drtp_common.
# This may be replaced when dependencies are built.
