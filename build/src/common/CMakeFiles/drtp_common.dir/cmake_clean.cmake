file(REMOVE_RECURSE
  "CMakeFiles/drtp_common.dir/flags.cc.o"
  "CMakeFiles/drtp_common.dir/flags.cc.o.d"
  "CMakeFiles/drtp_common.dir/log.cc.o"
  "CMakeFiles/drtp_common.dir/log.cc.o.d"
  "CMakeFiles/drtp_common.dir/table.cc.o"
  "CMakeFiles/drtp_common.dir/table.cc.o.d"
  "libdrtp_common.a"
  "libdrtp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
