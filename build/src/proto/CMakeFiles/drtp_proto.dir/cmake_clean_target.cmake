file(REMOVE_RECURSE
  "libdrtp_proto.a"
)
