# Empty dependencies file for drtp_proto.
# This may be replaced when dependencies are built.
