file(REMOVE_RECURSE
  "CMakeFiles/drtp_proto.dir/engine.cc.o"
  "CMakeFiles/drtp_proto.dir/engine.cc.o.d"
  "libdrtp_proto.a"
  "libdrtp_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
