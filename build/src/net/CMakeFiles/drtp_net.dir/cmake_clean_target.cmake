file(REMOVE_RECURSE
  "libdrtp_net.a"
)
