file(REMOVE_RECURSE
  "CMakeFiles/drtp_net.dir/bandwidth_ledger.cc.o"
  "CMakeFiles/drtp_net.dir/bandwidth_ledger.cc.o.d"
  "CMakeFiles/drtp_net.dir/generators.cc.o"
  "CMakeFiles/drtp_net.dir/generators.cc.o.d"
  "CMakeFiles/drtp_net.dir/graphio.cc.o"
  "CMakeFiles/drtp_net.dir/graphio.cc.o.d"
  "CMakeFiles/drtp_net.dir/topology.cc.o"
  "CMakeFiles/drtp_net.dir/topology.cc.o.d"
  "CMakeFiles/drtp_net.dir/transit_stub.cc.o"
  "CMakeFiles/drtp_net.dir/transit_stub.cc.o.d"
  "libdrtp_net.a"
  "libdrtp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
