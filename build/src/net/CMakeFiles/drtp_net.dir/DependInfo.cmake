
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_ledger.cc" "src/net/CMakeFiles/drtp_net.dir/bandwidth_ledger.cc.o" "gcc" "src/net/CMakeFiles/drtp_net.dir/bandwidth_ledger.cc.o.d"
  "/root/repo/src/net/generators.cc" "src/net/CMakeFiles/drtp_net.dir/generators.cc.o" "gcc" "src/net/CMakeFiles/drtp_net.dir/generators.cc.o.d"
  "/root/repo/src/net/graphio.cc" "src/net/CMakeFiles/drtp_net.dir/graphio.cc.o" "gcc" "src/net/CMakeFiles/drtp_net.dir/graphio.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/drtp_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/drtp_net.dir/topology.cc.o.d"
  "/root/repo/src/net/transit_stub.cc" "src/net/CMakeFiles/drtp_net.dir/transit_stub.cc.o" "gcc" "src/net/CMakeFiles/drtp_net.dir/transit_stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
