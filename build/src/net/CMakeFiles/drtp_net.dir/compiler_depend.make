# Empty compiler generated dependencies file for drtp_net.
# This may be replaced when dependencies are built.
