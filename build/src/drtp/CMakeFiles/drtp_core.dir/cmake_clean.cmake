file(REMOVE_RECURSE
  "CMakeFiles/drtp_core.dir/baselines.cc.o"
  "CMakeFiles/drtp_core.dir/baselines.cc.o.d"
  "CMakeFiles/drtp_core.dir/bounded_flood.cc.o"
  "CMakeFiles/drtp_core.dir/bounded_flood.cc.o.d"
  "CMakeFiles/drtp_core.dir/dlsr.cc.o"
  "CMakeFiles/drtp_core.dir/dlsr.cc.o.d"
  "CMakeFiles/drtp_core.dir/failure.cc.o"
  "CMakeFiles/drtp_core.dir/failure.cc.o.d"
  "CMakeFiles/drtp_core.dir/manager.cc.o"
  "CMakeFiles/drtp_core.dir/manager.cc.o.d"
  "CMakeFiles/drtp_core.dir/network.cc.o"
  "CMakeFiles/drtp_core.dir/network.cc.o.d"
  "CMakeFiles/drtp_core.dir/plsr.cc.o"
  "CMakeFiles/drtp_core.dir/plsr.cc.o.d"
  "CMakeFiles/drtp_core.dir/scheme.cc.o"
  "CMakeFiles/drtp_core.dir/scheme.cc.o.d"
  "libdrtp_core.a"
  "libdrtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
