# Empty compiler generated dependencies file for drtp_core.
# This may be replaced when dependencies are built.
