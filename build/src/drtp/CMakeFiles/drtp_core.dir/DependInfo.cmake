
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drtp/baselines.cc" "src/drtp/CMakeFiles/drtp_core.dir/baselines.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/baselines.cc.o.d"
  "/root/repo/src/drtp/bounded_flood.cc" "src/drtp/CMakeFiles/drtp_core.dir/bounded_flood.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/bounded_flood.cc.o.d"
  "/root/repo/src/drtp/dlsr.cc" "src/drtp/CMakeFiles/drtp_core.dir/dlsr.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/dlsr.cc.o.d"
  "/root/repo/src/drtp/failure.cc" "src/drtp/CMakeFiles/drtp_core.dir/failure.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/failure.cc.o.d"
  "/root/repo/src/drtp/manager.cc" "src/drtp/CMakeFiles/drtp_core.dir/manager.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/manager.cc.o.d"
  "/root/repo/src/drtp/network.cc" "src/drtp/CMakeFiles/drtp_core.dir/network.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/network.cc.o.d"
  "/root/repo/src/drtp/plsr.cc" "src/drtp/CMakeFiles/drtp_core.dir/plsr.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/plsr.cc.o.d"
  "/root/repo/src/drtp/scheme.cc" "src/drtp/CMakeFiles/drtp_core.dir/scheme.cc.o" "gcc" "src/drtp/CMakeFiles/drtp_core.dir/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsdb/CMakeFiles/drtp_lsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/drtp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/drtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
