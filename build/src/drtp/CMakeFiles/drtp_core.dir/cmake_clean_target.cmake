file(REMOVE_RECURSE
  "libdrtp_core.a"
)
