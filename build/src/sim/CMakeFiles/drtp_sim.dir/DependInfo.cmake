
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/drtp_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/drtp_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/paper.cc" "src/sim/CMakeFiles/drtp_sim.dir/paper.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/paper.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/drtp_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/drtp_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/traffic.cc" "src/sim/CMakeFiles/drtp_sim.dir/traffic.cc.o" "gcc" "src/sim/CMakeFiles/drtp_sim.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drtp/CMakeFiles/drtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsdb/CMakeFiles/drtp_lsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/drtp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/drtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
