file(REMOVE_RECURSE
  "libdrtp_sim.a"
)
