file(REMOVE_RECURSE
  "CMakeFiles/drtp_sim.dir/experiment.cc.o"
  "CMakeFiles/drtp_sim.dir/experiment.cc.o.d"
  "CMakeFiles/drtp_sim.dir/metrics.cc.o"
  "CMakeFiles/drtp_sim.dir/metrics.cc.o.d"
  "CMakeFiles/drtp_sim.dir/paper.cc.o"
  "CMakeFiles/drtp_sim.dir/paper.cc.o.d"
  "CMakeFiles/drtp_sim.dir/scenario.cc.o"
  "CMakeFiles/drtp_sim.dir/scenario.cc.o.d"
  "CMakeFiles/drtp_sim.dir/trace.cc.o"
  "CMakeFiles/drtp_sim.dir/trace.cc.o.d"
  "CMakeFiles/drtp_sim.dir/traffic.cc.o"
  "CMakeFiles/drtp_sim.dir/traffic.cc.o.d"
  "libdrtp_sim.a"
  "libdrtp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
