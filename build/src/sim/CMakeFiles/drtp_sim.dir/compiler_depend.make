# Empty compiler generated dependencies file for drtp_sim.
# This may be replaced when dependencies are built.
