file(REMOVE_RECURSE
  "CMakeFiles/drtp_lsdb.dir/aplv.cc.o"
  "CMakeFiles/drtp_lsdb.dir/aplv.cc.o.d"
  "CMakeFiles/drtp_lsdb.dir/conflict_vector.cc.o"
  "CMakeFiles/drtp_lsdb.dir/conflict_vector.cc.o.d"
  "CMakeFiles/drtp_lsdb.dir/link_state_db.cc.o"
  "CMakeFiles/drtp_lsdb.dir/link_state_db.cc.o.d"
  "libdrtp_lsdb.a"
  "libdrtp_lsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_lsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
