
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsdb/aplv.cc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/aplv.cc.o" "gcc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/aplv.cc.o.d"
  "/root/repo/src/lsdb/conflict_vector.cc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/conflict_vector.cc.o" "gcc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/conflict_vector.cc.o.d"
  "/root/repo/src/lsdb/link_state_db.cc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/link_state_db.cc.o" "gcc" "src/lsdb/CMakeFiles/drtp_lsdb.dir/link_state_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/drtp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/drtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
