# Empty dependencies file for drtp_lsdb.
# This may be replaced when dependencies are built.
