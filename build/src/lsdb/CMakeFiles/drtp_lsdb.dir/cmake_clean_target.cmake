file(REMOVE_RECURSE
  "libdrtp_lsdb.a"
)
