file(REMOVE_RECURSE
  "CMakeFiles/drtp_routing.dir/bellman_ford.cc.o"
  "CMakeFiles/drtp_routing.dir/bellman_ford.cc.o.d"
  "CMakeFiles/drtp_routing.dir/constrained.cc.o"
  "CMakeFiles/drtp_routing.dir/constrained.cc.o.d"
  "CMakeFiles/drtp_routing.dir/dijkstra.cc.o"
  "CMakeFiles/drtp_routing.dir/dijkstra.cc.o.d"
  "CMakeFiles/drtp_routing.dir/distance_table.cc.o"
  "CMakeFiles/drtp_routing.dir/distance_table.cc.o.d"
  "CMakeFiles/drtp_routing.dir/path.cc.o"
  "CMakeFiles/drtp_routing.dir/path.cc.o.d"
  "libdrtp_routing.a"
  "libdrtp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
