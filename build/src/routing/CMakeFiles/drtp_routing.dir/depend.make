# Empty dependencies file for drtp_routing.
# This may be replaced when dependencies are built.
