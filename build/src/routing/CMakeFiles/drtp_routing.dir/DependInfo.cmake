
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bellman_ford.cc" "src/routing/CMakeFiles/drtp_routing.dir/bellman_ford.cc.o" "gcc" "src/routing/CMakeFiles/drtp_routing.dir/bellman_ford.cc.o.d"
  "/root/repo/src/routing/constrained.cc" "src/routing/CMakeFiles/drtp_routing.dir/constrained.cc.o" "gcc" "src/routing/CMakeFiles/drtp_routing.dir/constrained.cc.o.d"
  "/root/repo/src/routing/dijkstra.cc" "src/routing/CMakeFiles/drtp_routing.dir/dijkstra.cc.o" "gcc" "src/routing/CMakeFiles/drtp_routing.dir/dijkstra.cc.o.d"
  "/root/repo/src/routing/distance_table.cc" "src/routing/CMakeFiles/drtp_routing.dir/distance_table.cc.o" "gcc" "src/routing/CMakeFiles/drtp_routing.dir/distance_table.cc.o.d"
  "/root/repo/src/routing/path.cc" "src/routing/CMakeFiles/drtp_routing.dir/path.cc.o" "gcc" "src/routing/CMakeFiles/drtp_routing.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/drtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
