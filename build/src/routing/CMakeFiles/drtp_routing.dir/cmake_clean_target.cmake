file(REMOVE_RECURSE
  "libdrtp_routing.a"
)
