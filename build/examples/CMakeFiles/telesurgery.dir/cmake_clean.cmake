file(REMOVE_RECURSE
  "CMakeFiles/telesurgery.dir/telesurgery.cpp.o"
  "CMakeFiles/telesurgery.dir/telesurgery.cpp.o.d"
  "telesurgery"
  "telesurgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telesurgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
