# Empty dependencies file for telesurgery.
# This may be replaced when dependencies are built.
