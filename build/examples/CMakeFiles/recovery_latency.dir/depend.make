# Empty dependencies file for recovery_latency.
# This may be replaced when dependencies are built.
