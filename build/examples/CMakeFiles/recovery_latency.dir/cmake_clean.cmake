file(REMOVE_RECURSE
  "CMakeFiles/recovery_latency.dir/recovery_latency.cpp.o"
  "CMakeFiles/recovery_latency.dir/recovery_latency.cpp.o.d"
  "recovery_latency"
  "recovery_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
