file(REMOVE_RECURSE
  "CMakeFiles/ablation_heterogeneous.dir/ablation_heterogeneous.cc.o"
  "CMakeFiles/ablation_heterogeneous.dir/ablation_heterogeneous.cc.o.d"
  "ablation_heterogeneous"
  "ablation_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
