file(REMOVE_RECURSE
  "CMakeFiles/tbl_recovery.dir/tbl_recovery.cc.o"
  "CMakeFiles/tbl_recovery.dir/tbl_recovery.cc.o.d"
  "tbl_recovery"
  "tbl_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
