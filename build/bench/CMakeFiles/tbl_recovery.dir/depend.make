# Empty dependencies file for tbl_recovery.
# This may be replaced when dependencies are built.
