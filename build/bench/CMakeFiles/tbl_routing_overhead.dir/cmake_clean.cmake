file(REMOVE_RECURSE
  "CMakeFiles/tbl_routing_overhead.dir/tbl_routing_overhead.cc.o"
  "CMakeFiles/tbl_routing_overhead.dir/tbl_routing_overhead.cc.o.d"
  "tbl_routing_overhead"
  "tbl_routing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_routing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
