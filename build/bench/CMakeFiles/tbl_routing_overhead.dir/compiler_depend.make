# Empty compiler generated dependencies file for tbl_routing_overhead.
# This may be replaced when dependencies are built.
