file(REMOVE_RECURSE
  "CMakeFiles/tbl_latency.dir/tbl_latency.cc.o"
  "CMakeFiles/tbl_latency.dir/tbl_latency.cc.o.d"
  "tbl_latency"
  "tbl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
