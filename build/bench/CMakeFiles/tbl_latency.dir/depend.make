# Empty dependencies file for tbl_latency.
# This may be replaced when dependencies are built.
