file(REMOVE_RECURSE
  "CMakeFiles/appendix_transit_stub.dir/appendix_transit_stub.cc.o"
  "CMakeFiles/appendix_transit_stub.dir/appendix_transit_stub.cc.o.d"
  "appendix_transit_stub"
  "appendix_transit_stub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_transit_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
