# Empty dependencies file for appendix_transit_stub.
# This may be replaced when dependencies are built.
