file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheme_info.dir/ablation_scheme_info.cc.o"
  "CMakeFiles/ablation_scheme_info.dir/ablation_scheme_info.cc.o.d"
  "ablation_scheme_info"
  "ablation_scheme_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheme_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
