# Empty compiler generated dependencies file for ablation_scheme_info.
# This may be replaced when dependencies are built.
