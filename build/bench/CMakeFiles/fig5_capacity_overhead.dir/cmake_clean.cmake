file(REMOVE_RECURSE
  "CMakeFiles/fig5_capacity_overhead.dir/fig5_capacity_overhead.cc.o"
  "CMakeFiles/fig5_capacity_overhead.dir/fig5_capacity_overhead.cc.o.d"
  "fig5_capacity_overhead"
  "fig5_capacity_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_capacity_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
