# Empty compiler generated dependencies file for ablation_flood_bounds.
# This may be replaced when dependencies are built.
