file(REMOVE_RECURSE
  "CMakeFiles/ablation_flood_bounds.dir/ablation_flood_bounds.cc.o"
  "CMakeFiles/ablation_flood_bounds.dir/ablation_flood_bounds.cc.o.d"
  "ablation_flood_bounds"
  "ablation_flood_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flood_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
