# Empty dependencies file for tbl1_parameters.
# This may be replaced when dependencies are built.
