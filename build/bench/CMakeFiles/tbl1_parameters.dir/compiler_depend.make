# Empty compiler generated dependencies file for tbl1_parameters.
# This may be replaced when dependencies are built.
