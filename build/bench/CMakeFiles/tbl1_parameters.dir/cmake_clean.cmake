file(REMOVE_RECURSE
  "CMakeFiles/tbl1_parameters.dir/tbl1_parameters.cc.o"
  "CMakeFiles/tbl1_parameters.dir/tbl1_parameters.cc.o.d"
  "tbl1_parameters"
  "tbl1_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
