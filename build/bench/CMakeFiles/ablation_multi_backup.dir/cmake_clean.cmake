file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_backup.dir/ablation_multi_backup.cc.o"
  "CMakeFiles/ablation_multi_backup.dir/ablation_multi_backup.cc.o.d"
  "ablation_multi_backup"
  "ablation_multi_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
