# Empty dependencies file for ablation_multi_backup.
# This may be replaced when dependencies are built.
