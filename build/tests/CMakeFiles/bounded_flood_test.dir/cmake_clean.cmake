file(REMOVE_RECURSE
  "CMakeFiles/bounded_flood_test.dir/bounded_flood_test.cc.o"
  "CMakeFiles/bounded_flood_test.dir/bounded_flood_test.cc.o.d"
  "bounded_flood_test"
  "bounded_flood_test.pdb"
  "bounded_flood_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_flood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
