# Empty dependencies file for lsdb_test.
# This may be replaced when dependencies are built.
