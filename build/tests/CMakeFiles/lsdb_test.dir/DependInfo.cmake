
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsdb_test.cc" "tests/CMakeFiles/lsdb_test.dir/lsdb_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_test.dir/lsdb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/drtp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drtp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/drtp/CMakeFiles/drtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsdb/CMakeFiles/drtp_lsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/drtp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/drtp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/drtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
