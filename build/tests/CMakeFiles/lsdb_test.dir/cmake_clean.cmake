file(REMOVE_RECURSE
  "CMakeFiles/lsdb_test.dir/lsdb_test.cc.o"
  "CMakeFiles/lsdb_test.dir/lsdb_test.cc.o.d"
  "lsdb_test"
  "lsdb_test.pdb"
  "lsdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
