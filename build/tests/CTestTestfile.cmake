# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/lsdb_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/schemes_test[1]_include.cmake")
include("/root/repo/build/tests/bounded_flood_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
