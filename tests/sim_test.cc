// Tests for the simulation layer: event queue, traffic generation (UT/NT
// statistics), scenario round-trips and deterministic replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/check.h"
#include "common/error.h"
#include "net/generators.h"
#include "sim/event_queue.h"
#include "sim/paper.h"
#include "drtp/dlsr.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/traffic.h"

namespace drtp::sim {
namespace {

// ---- event queue ------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.Schedule(1.0, [&] { ++ran; });
  q.Schedule(2.0, [&] { ++ran; });
  q.Schedule(3.0, [&] { ++ran; });
  q.RunUntil(2.0);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.Schedule(q.now() + 1.0, chain);
  };
  q.Schedule(0.0, chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoPastThrows) {
  EventQueue q;
  q.Schedule(5.0, [] {});
  q.RunAll();
  EXPECT_THROW(q.Schedule(1.0, [] {}), CheckError);
}

// ---- traffic -----------------------------------------------------------------

class TrafficFixture : public ::testing::Test {
 protected:
  TrafficFixture() : topo_(MakePaperTopology(3.0, 1)) {}
  net::Topology topo_;
};

TEST_F(TrafficFixture, PoissonRateApproximatelyLambda) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kUniform, 0.5, 2);
  tc.duration = 20000.0;
  const auto reqs = GenerateRequests(topo_, tc);
  EXPECT_NEAR(static_cast<double>(reqs.size()) / tc.duration, 0.5, 0.03);
}

TEST_F(TrafficFixture, ArrivalsStrictlyIncreasingIdsSequential) {
  const auto reqs = GenerateRequests(
      topo_, MakePaperTraffic(TrafficPattern::kUniform, 1.0, 3));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, static_cast<ConnId>(i));
    if (i > 0) {
      EXPECT_GT(reqs[i].arrival, reqs[i - 1].arrival);
    }
    EXPECT_NE(reqs[i].src, reqs[i].dst);
    EXPECT_GE(reqs[i].src, 0);
    EXPECT_LT(reqs[i].src, topo_.num_nodes());
    EXPECT_GE(reqs[i].dst, 0);
    EXPECT_LT(reqs[i].dst, topo_.num_nodes());
  }
}

TEST_F(TrafficFixture, LifetimesWithinPaperBounds) {
  const auto reqs = GenerateRequests(
      topo_, MakePaperTraffic(TrafficPattern::kUniform, 1.0, 4));
  for (const Request& r : reqs) {
    EXPECT_GE(r.lifetime, Minutes(20));
    EXPECT_LE(r.lifetime, Minutes(60));
    EXPECT_EQ(r.bw, kPaperConnBw);
  }
}

TEST_F(TrafficFixture, HotspotPatternConcentratesDestinations) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kHotspot, 1.0, 5);
  tc.duration = 20000.0;
  const auto hotspots = HotspotNodes(topo_, tc);
  EXPECT_EQ(hotspots.size(), 10u);
  const auto reqs = GenerateRequests(topo_, tc);
  std::int64_t hot = 0;
  for (const Request& r : reqs) {
    if (std::binary_search(hotspots.begin(), hotspots.end(), r.dst)) ++hot;
  }
  const double frac = static_cast<double>(hot) /
                      static_cast<double>(reqs.size());
  // 50% targeted + ~10/60 of the uniform remainder ≈ 0.58.
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.68);
}

TEST_F(TrafficFixture, UniformPatternDoesNotConcentrate) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kUniform, 1.0, 5);
  tc.duration = 20000.0;
  const auto hotspots = HotspotNodes(topo_, tc);  // same candidate set
  const auto reqs = GenerateRequests(topo_, tc);
  std::int64_t hot = 0;
  for (const Request& r : reqs) {
    if (std::binary_search(hotspots.begin(), hotspots.end(), r.dst)) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(reqs.size()),
              10.0 / 60.0, 0.03);
}

TEST_F(TrafficFixture, DeterministicPerSeed) {
  const TrafficConfig tc = MakePaperTraffic(TrafficPattern::kHotspot, 0.7, 9);
  const auto a = GenerateRequests(topo_, tc);
  const auto b = GenerateRequests(topo_, tc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

// ---- scenario -----------------------------------------------------------------

TEST_F(TrafficFixture, ScenarioEventsSortedAndPaired) {
  const Scenario sc = Scenario::Generate(
      topo_, MakePaperTraffic(TrafficPattern::kUniform, 0.3, 6));
  EXPECT_EQ(sc.events.size(),
            static_cast<std::size_t>(sc.NumRequests()) * 2);
  Time prev = 0.0;
  std::set<ConnId> open;
  for (const ScenarioEvent& e : sc.events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    if (e.type == ScenarioEvent::Type::kRequest) {
      EXPECT_TRUE(open.insert(e.conn).second);
    } else {
      EXPECT_EQ(open.erase(e.conn), 1u);  // release after its request
    }
  }
  EXPECT_TRUE(open.empty());
}

TEST_F(TrafficFixture, ScenarioRoundTripsExactly) {
  const Scenario sc = Scenario::Generate(
      topo_, MakePaperTraffic(TrafficPattern::kHotspot, 0.4, 7));
  const Scenario rt = Scenario::FromString(sc.ToString());
  ASSERT_EQ(rt.events.size(), sc.events.size());
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_EQ(rt.events[i].time, sc.events[i].time);
    EXPECT_EQ(rt.events[i].type, sc.events[i].type);
    EXPECT_EQ(rt.events[i].conn, sc.events[i].conn);
    EXPECT_EQ(rt.events[i].src, sc.events[i].src);
    EXPECT_EQ(rt.events[i].dst, sc.events[i].dst);
    EXPECT_EQ(rt.events[i].bw, sc.events[i].bw);
  }
  EXPECT_EQ(rt.traffic.lambda, sc.traffic.lambda);
  EXPECT_EQ(rt.traffic.seed, sc.traffic.seed);
}

TEST_F(TrafficFixture, HeterogeneousBandwidthDrawsInRange) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kUniform, 1.0, 12);
  tc.bw = Kbps(500);
  tc.bw_max = Kbps(1500);
  tc.duration = 5000.0;
  const auto reqs = GenerateRequests(topo_, tc);
  bool saw_low = false, saw_high = false;
  for (const Request& r : reqs) {
    ASSERT_GE(r.bw, Kbps(500));
    ASSERT_LE(r.bw, Kbps(1500));
    ASSERT_EQ((r.bw - Kbps(500)) % 250, 0);  // 250 kbps granularity
    saw_low |= r.bw == Kbps(500);
    saw_high |= r.bw == Kbps(1500);
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  // Round-trips through the scenario format, bandwidths intact.
  const Scenario sc = Scenario::Generate(topo_, tc);
  const Scenario rt = Scenario::FromString(sc.ToString());
  EXPECT_EQ(rt.traffic.bw_max, Kbps(1500));
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_EQ(rt.events[i].bw, sc.events[i].bw);
  }
}

TEST_F(TrafficFixture, HeterogeneousReplayKeepsInvariants) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kUniform, 0.4, 13);
  tc.bw = Kbps(250);
  tc.bw_max = Kbps(1750);
  tc.duration = 1200.0;
  tc.lifetime_min = 200.0;
  tc.lifetime_max = 500.0;
  const Scenario sc = Scenario::Generate(topo_, tc);
  ExperimentConfig ec;
  ec.warmup = 400.0;
  ec.sample_interval = 100.0;
  ec.check_consistency = true;  // weighted-demand invariants every sample
  core::Dlsr dlsr;
  const RunMetrics m = RunScenario(topo_, sc, dlsr, ec);
  EXPECT_GT(m.admitted, 0);
  EXPECT_GT(m.pbk.value(), 0.9);
}

TEST(Scenario, LoadRejectsGarbage) {
  EXPECT_THROW(Scenario::FromString("nonsense"), ParseError);
  EXPECT_THROW(Scenario::FromString("drtp-scenario 2\n"), ParseError);
}

}  // namespace
}  // namespace drtp::sim
