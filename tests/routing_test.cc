// Tests for the routing substrate: path algebra, Dijkstra (cross-checked
// against Bellman-Ford on random graphs), distance tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/generators.h"
#include "routing/bellman_ford.h"
#include "routing/constrained.h"
#include "routing/dijkstra.h"
#include "routing/distance_table.h"
#include "routing/path.h"

namespace drtp::routing {
namespace {

using net::MakeGrid;
using net::MakeRing;
using net::MakeWaxman;
using net::Topology;

// ---- link sets ------------------------------------------------------------

TEST(LinkSet, MakeSortsAndDedups) {
  const LinkSet s = MakeLinkSet({5, 1, 3, 1, 5});
  EXPECT_EQ(s, (LinkSet{1, 3, 5}));
  EXPECT_TRUE(SetContains(s, 3));
  EXPECT_FALSE(SetContains(s, 2));
}

TEST(LinkSet, IntersectionCounting) {
  const LinkSet a = MakeLinkSet({1, 2, 3, 4});
  const LinkSet b = MakeLinkSet({3, 4, 5});
  EXPECT_EQ(SetIntersectCount(a, b), 2);
  EXPECT_FALSE(SetDisjoint(a, b));
  EXPECT_TRUE(SetDisjoint(a, MakeLinkSet({9})));
  EXPECT_TRUE(SetDisjoint(a, {}));
}

// ---- Path -----------------------------------------------------------------

TEST(Path, FromNodesBuildsChain) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const std::vector<NodeId> nodes{0, 1, 2, 5};
  const auto p = Path::FromNodes(t, nodes);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src(), 0);
  EXPECT_EQ(p->dst(), 5);
  EXPECT_EQ(p->hops(), 3);
  EXPECT_EQ(p->nodes(), nodes);
  EXPECT_TRUE(p->IsSimple());
}

TEST(Path, FromNodesRejectsNonAdjacent) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const std::vector<NodeId> nodes{0, 8};  // opposite corners
  EXPECT_FALSE(Path::FromNodes(t, nodes).has_value());
}

TEST(Path, FromLinksValidatesContinuity) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const LinkId l01 = t.FindLink(0, 1);
  const LinkId l12 = t.FindLink(1, 2);
  const LinkId l34 = t.FindLink(3, 4);
  ASSERT_NE(l01, kInvalidLink);
  EXPECT_TRUE(Path::FromLinks(t, {l01, l12}).has_value());
  EXPECT_FALSE(Path::FromLinks(t, {l01, l34}).has_value());
  EXPECT_FALSE(Path::FromLinks(t, {}).has_value());
}

TEST(Path, OverlapAndContains) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const auto a = Path::FromNodes(t, std::vector<NodeId>{0, 1, 2});
  const auto b = Path::FromNodes(t, std::vector<NodeId>{3, 0, 1, 2});
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->OverlapCount(*b), 2);
  EXPECT_FALSE(a->LinkDisjoint(*b));
  const auto c = Path::FromNodes(t, std::vector<NodeId>{0, 3, 6});
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(a->LinkDisjoint(*c));
  EXPECT_TRUE(a->Contains(t.FindLink(0, 1)));
  EXPECT_FALSE(a->Contains(t.FindLink(1, 0)));  // direction matters
}

TEST(Path, NonSimpleDetected) {
  const Topology t = MakeRing(4, Mbps(1));
  const auto p = Path::FromNodes(t, std::vector<NodeId>{0, 1, 2, 3, 0, 1});
  // Revisits 0 and 1 — but 0->1 twice would duplicate a link... use a walk
  // that revisits a node without repeating links: 0,1,2,3,0 then stop.
  const auto q = Path::FromNodes(t, std::vector<NodeId>{0, 1, 2, 3, 0});
  ASSERT_TRUE(q.has_value());
  EXPECT_FALSE(q->IsSimple());
  (void)p;
}

// ---- Dijkstra ----------------------------------------------------------------

TEST(Dijkstra, MinHopOnGrid) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const auto p = MinHopPath(t, 0, 8, nullptr);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 4);  // manhattan distance corner to corner
}

TEST(Dijkstra, RespectsUsablePredicate) {
  const Topology t = MakeRing(6, Mbps(1));
  const LinkId forward = t.FindLink(0, 1);
  const auto p =
      MinHopPath(t, 0, 1, [&](LinkId l) { return l != forward; });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 5);  // forced the long way around
}

TEST(Dijkstra, UnreachableGivesNullopt) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  t.AddNode();
  t.AddDuplexLink(a, b, Mbps(1));
  EXPECT_FALSE(MinHopPath(t, a, 2, nullptr).has_value());
}

TEST(Dijkstra, InfiniteCostsExcludeLinks) {
  const Topology t = MakeGrid(2, 2, Mbps(1));
  const auto p = CheapestPath(t, 0, 3, [](LinkId) { return kInfiniteCost; });
  EXPECT_FALSE(p.has_value());
}

TEST(Dijkstra, NegativeCostRejected) {
  const Topology t = MakeGrid(2, 2, Mbps(1));
  EXPECT_THROW(CheapestPath(t, 0, 3, [](LinkId) { return -1.0; }),
               CheckError);
}

TEST(Dijkstra, PicksCheaperLongerRoute) {
  // Two-hop detour cheaper than the direct expensive link.
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  const NodeId c = t.AddNode();
  const auto [ab, ba] = t.AddDuplexLink(a, b, Mbps(1));
  t.AddDuplexLink(a, c, Mbps(1));
  t.AddDuplexLink(c, b, Mbps(1));
  (void)ba;
  const auto p = CheapestPath(t, a, b, [&](LinkId l) {
    return l == ab ? 10.0 : 1.0;
  });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2);
  EXPECT_EQ(p->nodes()[1], c);
}

/// Property: Dijkstra distances equal Bellman-Ford distances on random
/// graphs with random costs.
class DijkstraVsBellmanFord : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraVsBellmanFord, DistancesAgree) {
  const std::uint64_t seed = GetParam();
  const Topology t = MakeWaxman(net::WaxmanConfig{
      .nodes = 30, .avg_degree = 3.5, .seed = seed});
  Rng rng(seed * 31 + 7);
  std::vector<double> costs(static_cast<std::size_t>(t.num_links()));
  for (auto& c : costs) {
    c = rng.Bernoulli(0.1) ? kInfiniteCost : rng.UniformReal(0.1, 5.0);
  }
  const auto cost = [&](LinkId l) {
    return costs[static_cast<std::size_t>(l)];
  };
  for (NodeId src = 0; src < t.num_nodes(); src += 7) {
    const DijkstraTree tree = RunDijkstra(t, src, cost);
    const std::vector<double> bf = BellmanFordDistances(t, src, cost);
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (bf[i] == kInfiniteCost) {
        EXPECT_EQ(tree.dist[i], kInfiniteCost);
      } else {
        EXPECT_NEAR(tree.dist[i], bf[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBellmanFord,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Dijkstra, TreePathCostsMatchDistances) {
  const Topology t =
      MakeWaxman(net::WaxmanConfig{.nodes = 25, .avg_degree = 3.0, .seed = 4});
  const auto cost = [](LinkId l) { return 1.0 + (l % 3); };
  const DijkstraTree tree = RunDijkstra(t, 0, cost);
  for (NodeId v = 1; v < t.num_nodes(); ++v) {
    const auto p = tree.PathTo(t, v);
    ASSERT_TRUE(p.has_value());
    double sum = 0;
    for (LinkId l : p->links()) sum += cost(l);
    EXPECT_NEAR(sum, tree.dist[static_cast<std::size_t>(v)], 1e-9);
    EXPECT_EQ(p->src(), 0);
    EXPECT_EQ(p->dst(), v);
  }
}

// ---- CSR / integer-kernel differentials -----------------------------------
//
// PR discipline for the hot-path rewrites: every new layout or kernel
// keeps the old implementation as a reference, pinned bit-identical here.

/// links() is a span; materialize for gtest equality.
std::vector<LinkId> LinksOf(const Path& p) {
  return {p.links().begin(), p.links().end()};
}

/// Random integer costs with zero-cost and forbidden links mixed in —
/// the adversarial cases for the bucket queue (zero-cost edges re-enter
/// the bucket currently being drained).
std::vector<std::int64_t> RandomIntCosts(const Topology& t, Rng& rng) {
  std::vector<std::int64_t> costs(static_cast<std::size_t>(t.num_links()));
  for (auto& c : costs) {
    if (rng.Bernoulli(0.08)) {
      c = kInfiniteIntCost;
    } else if (rng.Bernoulli(0.15)) {
      c = 0;
    } else {
      c = static_cast<std::int64_t>(rng.Index(6)) + 1;
    }
  }
  return costs;
}

void ExpectSameTree(const Topology& t, const DijkstraWorkspace& a,
                    const DijkstraWorkspace& b, const char* what) {
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    ASSERT_EQ(a.Dist(v), b.Dist(v)) << what << ": dist diverged at " << v;
    ASSERT_EQ(a.ParentLink(v), b.ParentLink(v))
        << what << ": parent diverged at " << v;
  }
}

TEST(DijkstraInt, BucketKernelMatchesBinaryHeapTree) {
  for (std::uint64_t seed : {1u, 5u, 9u, 13u}) {
    const Topology t = MakeWaxman(net::WaxmanConfig{
        .nodes = 60, .avg_degree = 3.5, .seed = seed});
    Rng rng(seed * 97 + 3);
    const std::vector<std::int64_t> costs = RandomIntCosts(t, rng);
    const auto icost = [&](LinkId l) {
      return costs[static_cast<std::size_t>(l)];
    };
    const auto dcost = [&](LinkId l) -> double {
      const std::int64_t c = costs[static_cast<std::size_t>(l)];
      return c == kInfiniteIntCost ? kInfiniteCost
                                   : static_cast<double>(c);
    };
    DijkstraWorkspace bucket;
    DijkstraWorkspace heap;
    for (NodeId src = 0; src < t.num_nodes(); src += 11) {
      RunDijkstraInt(t, src, icost, bucket);
      RunDijkstra(t, src, dcost, heap);
      ExpectSameTree(t, bucket, heap, "int-vs-heap");
    }
  }
}

TEST(DijkstraInt, EarlyExitPathEqualsFullRunPath) {
  const Topology t = MakeWaxman(net::WaxmanConfig{
      .nodes = 60, .avg_degree = 4.0, .seed = 21});
  Rng rng(77);
  const std::vector<std::int64_t> costs = RandomIntCosts(t, rng);
  const auto icost = [&](LinkId l) {
    return costs[static_cast<std::size_t>(l)];
  };
  DijkstraWorkspace early;
  DijkstraWorkspace full;
  for (int i = 0; i < 40; ++i) {
    const NodeId src =
        static_cast<NodeId>(rng.Index(static_cast<std::size_t>(t.num_nodes())));
    NodeId dst =
        static_cast<NodeId>(rng.Index(static_cast<std::size_t>(t.num_nodes())));
    if (dst == src) dst = (dst + 1) % t.num_nodes();
    const auto fast = CheapestPathInt(t, src, dst, icost, early);
    RunDijkstraInt(t, src, icost, full);
    const auto ref = full.PathTo(t, dst);
    ASSERT_EQ(fast.has_value(), ref.has_value()) << src << "->" << dst;
    if (fast.has_value()) {
      EXPECT_EQ(LinksOf(*fast), LinksOf(*ref)) << src << "->" << dst;
    }
  }
}

TEST(DijkstraInt, NegativeCostRejected) {
  const Topology t = MakeGrid(2, 2, Mbps(1));
  DijkstraWorkspace ws;
  EXPECT_THROW(
      RunDijkstraInt(t, 0, [](LinkId) { return std::int64_t{-1}; }, ws),
      CheckError);
}

TEST(DijkstraInt, RefusesCostsBeyondBucketRange) {
  const Topology t = MakeGrid(2, 2, Mbps(1));
  DijkstraWorkspace ws;
  EXPECT_THROW(
      RunDijkstraInt(t, 0, [](LinkId) { return kMaxDijkstraBuckets; }, ws),
      CheckError);
}

TEST(DijkstraCsr, MatchesAdjacencyListReference) {
  for (std::uint64_t seed : {2u, 8u}) {
    const Topology t = MakeWaxman(net::WaxmanConfig{
        .nodes = 60, .avg_degree = 3.5, .seed = seed});
    Rng rng(seed + 500);
    std::vector<double> costs(static_cast<std::size_t>(t.num_links()));
    for (auto& c : costs) {
      c = rng.Bernoulli(0.1) ? kInfiniteCost : rng.UniformReal(0.1, 5.0);
    }
    const auto cost = [&](LinkId l) {
      return costs[static_cast<std::size_t>(l)];
    };
    DijkstraWorkspace csr;
    DijkstraWorkspace adj;
    for (NodeId src = 0; src < t.num_nodes(); src += 13) {
      RunDijkstra(t, src, cost, csr);
      detail::RunDijkstraLoopAdjList(t, src, cost, adj);
      ExpectSameTree(t, csr, adj, "csr-vs-adjlist");
    }
  }
}

TEST(MaxHopsDp, CsrMatchesAdjacencyListReference) {
  const Topology t = MakeWaxman(net::WaxmanConfig{
      .nodes = 40, .avg_degree = 3.5, .seed = 6});
  Rng rng(601);
  std::vector<double> costs(static_cast<std::size_t>(t.num_links()));
  for (auto& c : costs) c = rng.UniformReal(0.1, 5.0);
  const auto cost = [&](LinkId l) {
    return costs[static_cast<std::size_t>(l)];
  };
  MaxHopsWorkspace csr;
  MaxHopsWorkspace adj;
  for (int i = 0; i < 30; ++i) {
    const NodeId src =
        static_cast<NodeId>(rng.Index(static_cast<std::size_t>(t.num_nodes())));
    NodeId dst =
        static_cast<NodeId>(rng.Index(static_cast<std::size_t>(t.num_nodes())));
    if (dst == src) dst = (dst + 1) % t.num_nodes();
    const int max_hops = 1 + static_cast<int>(rng.Index(8));
    const auto a = CheapestPathMaxHops(t, src, dst, cost, max_hops, csr);
    const auto b =
        detail::CheapestPathMaxHopsAdjList(t, src, dst, cost, max_hops, adj);
    ASSERT_EQ(a.has_value(), b.has_value())
        << src << "->" << dst << " hops<=" << max_hops;
    if (a.has_value()) EXPECT_EQ(LinksOf(*a), LinksOf(*b));
  }
}

// ---- distance tables -------------------------------------------------------

TEST(DistanceTable, GridHopCounts) {
  const Topology t = MakeGrid(3, 3, Mbps(1));
  const DistanceTable dt = DistanceTable::Build(t);
  EXPECT_EQ(dt.MinHops(0, 0), 0);
  EXPECT_EQ(dt.MinHops(0, 8), 4);
  EXPECT_EQ(dt.MinHops(0, 4), 2);
  // Via-neighbor: going to 8 via node 1 still takes 1 + 3 hops.
  EXPECT_EQ(dt.MinHopsVia(0, 8, 1), 4);
  // Going to 0's neighbor 1 via neighbor 3 is a detour: 1 + MinHops(3,1).
  EXPECT_EQ(dt.MinHopsVia(0, 1, 3), 3);
}

TEST(DistanceTable, MatchesDistanceVectorOracle) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const Topology t = MakeWaxman(net::WaxmanConfig{
        .nodes = 40, .avg_degree = 3.0, .seed = seed});
    const DistanceTable dt = DistanceTable::Build(t);
    const auto oracle = DistanceVectorAllPairs(t);
    for (NodeId i = 0; i < t.num_nodes(); ++i) {
      for (NodeId j = 0; j < t.num_nodes(); ++j) {
        EXPECT_EQ(dt.MinHops(i, j),
                  oracle[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]);
      }
    }
  }
}

TEST(DistanceTable, DisconnectedIsUnreachable) {
  Topology t;
  t.AddNode();
  t.AddNode();
  const DistanceTable dt = DistanceTable::Build(t);
  EXPECT_FALSE(dt.Reachable(0, 1));
  EXPECT_GE(dt.MinHops(0, 1), kUnreachableHops);
}

}  // namespace
}  // namespace drtp::routing
