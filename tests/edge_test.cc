// Edge-case coverage across layers: degenerate inputs, boundary values,
// and behaviours the main suites exercise only implicitly.
#include <gtest/gtest.h>

#include "common/check.h"
#include "drtp/baselines.h"
#include "drtp/bounded_flood.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "net/generators.h"
#include "net/graphio.h"
#include "proto/engine.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/paper.h"

namespace drtp {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

// ---- topology / serialization edges ---------------------------------------------

TEST(Edge, OneWayLinkSerializationRoundTrips) {
  net::Topology topo;
  topo.AddNode();
  topo.AddNode();
  topo.AddNode();
  topo.AddLink(0, 1, Mbps(5));          // strictly one-way
  topo.AddDuplexLink(1, 2, Mbps(7));    // duplex pair after it
  const net::Topology rt =
      net::TopologyFromString(net::TopologyToString(topo));
  EXPECT_EQ(rt.link(0).reverse, kInvalidLink);
  EXPECT_EQ(rt.link(1).reverse, 2);
  EXPECT_EQ(rt.link(2).reverse, 1);
  EXPECT_EQ(rt.link(0).capacity, Mbps(5));
}

TEST(Edge, SingleNodeTopology) {
  net::Topology topo;
  topo.AddNode();
  EXPECT_TRUE(topo.IsConnected());  // trivially
  EXPECT_EQ(topo.AverageDegree(), 0.0);
  const net::BandwidthLedger ledger(topo);
  EXPECT_EQ(ledger.TotalCapacity(), 0);
}

TEST(Edge, DotRendersOneWayLinksDirected) {
  net::Topology topo;
  topo.AddNode();
  topo.AddNode();
  topo.AddLink(0, 1, Mbps(1));
  const std::string dot = net::TopologyToDot(topo);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
}

// ---- scheme edges -----------------------------------------------------------------

TEST(Edge, ProtectConnectionZeroCountIsNoop) {
  core::DrtpNetwork net(net::MakeParallelPaths(3, Mbps(10)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 2, 1}),
                                      Mbps(1), 0.0));
  net.PublishTo(db, 0.0);
  core::Dlsr dlsr;
  EXPECT_EQ(core::ProtectConnection(dlsr, net, db, 1, 0), 0);
  EXPECT_FALSE(net.Find(1)->has_backup());
}

TEST(Edge, ProtectConnectionOnStarFindsNothing) {
  // No link-disjoint alternative exists between star leaves, so the
  // protector registers nothing rather than a useless overlay.
  core::DrtpNetwork net(net::MakeStar(4, Mbps(10)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {1, 0, 2}),
                                      Mbps(1), 0.0));
  net.PublishTo(db, 0.0);
  core::Dlsr dlsr;
  EXPECT_EQ(core::ProtectConnection(dlsr, net, db, 1, 3), 0);
}

TEST(Edge, SchemeSelectionWithZeroBandwidthNetwork) {
  // Every link saturated: both primary selection and flooding must block.
  core::DrtpNetwork net(net::MakeRing(4, Mbps(1)));
  for (NodeId n = 0; n < 4; ++n) {
    const NodeId next = (n + 1) % 4;
    ASSERT_TRUE(net.EstablishConnection(100 + n,
                                        NodePath(net.topology(), {n, next}),
                                        Mbps(1), 0.0));
    ASSERT_TRUE(net.EstablishConnection(200 + n,
                                        NodePath(net.topology(), {next, n}),
                                        Mbps(1), 0.0));
  }
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  net.PublishTo(db, 0.0);
  core::Dlsr dlsr;
  EXPECT_FALSE(dlsr.SelectRoutes(net, db, 0, 2, Mbps(1)).primary.has_value());
  core::BoundedFlooding bf(net.topology());
  EXPECT_FALSE(bf.SelectRoutes(net, db, 0, 2, Mbps(1)).primary.has_value());
}

TEST(Edge, ReleaseBackupAtOutOfRangeThrows) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  EXPECT_THROW(net.ReleaseBackupAt(1, 0), CheckError);
  EXPECT_THROW(net.ReleaseBackupAt(99, 0), CheckError);
}

TEST(Edge, ActivateBackupWithoutBackupThrows) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  EXPECT_THROW((void)net.ActivateBackup(1, 0.0), CheckError);
}

// ---- failure edges ----------------------------------------------------------------

TEST(Edge, ApplyFailureOnEmptyNetworkIsQuiet) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  const auto report = core::ApplyLinkFailure(net, 0, 0.0, nullptr, nullptr);
  EXPECT_TRUE(report.recovered.empty());
  EXPECT_TRUE(report.dropped.empty());
  EXPECT_FALSE(net.IsLinkUp(0));
  net.CheckConsistency();
}

TEST(Edge, SwitchoverSkipsBackupThroughEarlierFailure) {
  // A backup that traverses a link downed in an *earlier* failure round
  // must not be promoted. Build the state by hand: register the backup
  // while the link is up, then down it directly (bypassing the release
  // that ApplyLinkFailure would do) to model any future path to this
  // state — the activation filter alone must cope.
  core::DrtpNetwork net(net::MakeParallelPaths(3, Mbps(10)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 2, 1}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1}));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 4, 1}));
  net.SetLinkDown(net.topology().FindLink(0, 3));  // breaks backup #1
  const auto report = core::ApplyLinkFailure(
      net, net.topology().FindLink(0, 2), 1.0, nullptr, nullptr);
  ASSERT_EQ(report.recovered, std::vector<ConnId>{1});
  EXPECT_EQ(net.Find(1)->primary, NodePath(net.topology(), {0, 4, 1}));
  net.CheckConsistency();
}

// ---- proto edges ------------------------------------------------------------------

TEST(Edge, ProtoTearDownUnknownIdIsNoop) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  sim::EventQueue queue;
  proto::ProtocolEngine engine(net, queue, proto::ProtocolConfig{}, nullptr,
                               nullptr);
  engine.TearDown(42);  // must not throw
  EXPECT_EQ(net.ActiveCount(), 0);
}

TEST(Edge, ProtoDoubleFailureOnSameLinkIsRejected) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  sim::EventQueue queue;
  proto::ProtocolEngine engine(net, queue, proto::ProtocolConfig{}, nullptr,
                               nullptr);
  engine.InjectLinkFailure(0, proto::RecoveryMode::kProactive);
  EXPECT_THROW(engine.InjectLinkFailure(0, proto::RecoveryMode::kProactive),
               CheckError);
}

TEST(Edge, ProtoConfigValidation) {
  core::DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  sim::EventQueue queue;
  proto::ProtocolConfig bad;
  bad.link_delay = 0.0;
  EXPECT_THROW(proto::ProtocolEngine(net, queue, bad, nullptr, nullptr),
               CheckError);
}

// ---- experiment edges -------------------------------------------------------------

TEST(Edge, WarmupBeyondDurationRejected) {
  const net::Topology topo = net::MakeRing(4, Mbps(10));
  sim::TrafficConfig tc;
  tc.duration = 100.0;
  const sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::ExperimentConfig ec;
  ec.warmup = 200.0;
  core::Dlsr dlsr;
  EXPECT_THROW(sim::RunScenario(topo, sc, dlsr, ec), CheckError);
}

TEST(Edge, EmptyScenarioProducesZeroMetrics) {
  const net::Topology topo = net::MakeRing(4, Mbps(10));
  sim::Scenario sc;
  sc.traffic.duration = 100.0;
  sim::ExperimentConfig ec;
  ec.warmup = 10.0;
  ec.sample_interval = 20.0;
  core::Dlsr dlsr;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, dlsr, ec);
  EXPECT_EQ(m.requests, 0);
  EXPECT_EQ(m.admitted, 0);
  EXPECT_EQ(m.avg_active, 0.0);
  EXPECT_EQ(m.pbk.trials, 0);
}

TEST(Edge, InspectFinalSeesLoadedNetwork) {
  const net::Topology topo = sim::MakePaperTopology(3.0, 40);
  sim::TrafficConfig tc = sim::MakePaperTraffic(
      sim::TrafficPattern::kUniform, 0.5, 41);
  tc.duration = 800.0;
  tc.lifetime_min = 300.0;
  tc.lifetime_max = 600.0;
  const sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::ExperimentConfig ec;
  ec.warmup = 300.0;
  ec.sample_interval = 100.0;
  int seen_active = -1;
  ec.inspect_final = [&](const core::DrtpNetwork& net) {
    seen_active = net.ActiveCount();
  };
  core::Dlsr dlsr;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, dlsr, ec);
  // The hook ran on the *loaded* network, not the drained one.
  EXPECT_GT(seen_active, 0);
  EXPECT_GT(m.admitted, 0);
}

}  // namespace
}  // namespace drtp
