// Equivalence suite for the hot-path rewrites: across randomized
// admit/release/fail/repair sequences,
//   - the incrementally published LinkStateDb must be bit-identical to a
//     record-by-record re-derivation from authoritative state (and a
//     second, interleaved db must be kept correct by the publish-stamp
//     fallback),
//   - the indexed failure evaluators must match the retained full-scan
//     reference implementations exactly,
//   - the link->connection reverse indexes must match brute-force scans.
// CheckConsistency() rides along, which also re-validates every APLV
// (including the num_at_max_ fast path in RemovePrimaryLset) and the
// down-link mirror. The CI sanitizer job runs this file under
// ASan/UBSan in a Debug build, where PublishTo additionally self-checks
// its incremental path against a full rewrite.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "lsdb/conflict_vector.h"
#include "net/generators.h"

namespace drtp::core {
namespace {

/// What WriteRecordTo must have produced for link `l`, re-derived from
/// authoritative state without going through any publish path.
lsdb::LinkRecord ExpectedRecord(const DrtpNetwork& net, LinkId l) {
  lsdb::LinkRecord rec;
  rec.up = net.IsLinkUp(l);
  rec.aplv_l1 = net.aplv(l).L1();
  rec.cv = net.aplv(l).ToConflictVector();
  if (rec.up) {
    rec.available_for_backup = net.ledger().spare(l) + net.ledger().free(l);
    rec.free_for_primary = net.ledger().free(l);
  } else {
    rec.available_for_backup = 0;
    rec.free_for_primary = 0;
  }
  return rec;
}

void ExpectDbMatches(const DrtpNetwork& net, const lsdb::LinkStateDb& db) {
  for (LinkId l = 0; l < net.topology().num_links(); ++l) {
    ASSERT_EQ(db.record(l), ExpectedRecord(net, l))
        << "published record diverged on link " << l;
  }
}

void ExpectIndexesMatchBruteForce(const DrtpNetwork& net) {
  for (LinkId l = 0; l < net.topology().num_links(); ++l) {
    std::vector<ConnId> primaries;
    std::vector<ConnId> backups;
    for (const auto& [id, conn] : net.connections()) {
      if (routing::SetContains(conn.primary_lset, l)) primaries.push_back(id);
      for (const routing::Path& backup : conn.backups) {
        if (backup.Contains(l)) {
          backups.push_back(id);
          break;
        }
      }
    }
    EXPECT_EQ(net.ConnsWithPrimaryOn(l), primaries) << "link " << l;
    EXPECT_EQ(net.ConnsWithBackupOn(l), backups) << "link " << l;
  }
}

void ExpectFailureEvalMatchesScan(const DrtpNetwork& net, Rng& rng) {
  const Ratio indexed = EvaluateAllSingleLinkFailures(net);
  const Ratio scan = EvaluateAllSingleLinkFailuresScan(net);
  EXPECT_EQ(indexed.hits, scan.hits);
  EXPECT_EQ(indexed.trials, scan.trials);
  // A handful of random per-link spot checks.
  const auto links = static_cast<std::size_t>(net.topology().num_links());
  for (int i = 0; i < 8; ++i) {
    const LinkId l = static_cast<LinkId>(rng.Index(links));
    const FailureImpact a = EvaluateLinkFailure(net, l);
    const FailureImpact b = EvaluateLinkFailureScan(net, l);
    EXPECT_EQ(a.attempts, b.attempts) << "link " << l;
    EXPECT_EQ(a.activated, b.activated) << "link " << l;
  }
}

/// links() is a span; materialize for gtest equality.
std::vector<LinkId> LinksOf(const routing::Path& p) {
  return {p.links().begin(), p.links().end()};
}

/// At an admit point, the rewritten kernels must pick exactly the routes
/// their retained reference implementations pick against the same db:
/// bucket-queue min-hop primary vs the binary-heap formulation, and the
/// two Eq. 5 conflict-scoring strategies against each other.
void ExpectRouteKernelsAgree(const net::Topology& topo,
                             const lsdb::LinkStateDb& db, NodeId src,
                             NodeId dst) {
  const auto radix = SelectPrimaryMinHop(topo, db, src, dst, Mbps(1));
  const auto binary =
      detail::SelectPrimaryMinHopBinaryHeap(topo, db, src, dst, Mbps(1));
  ASSERT_EQ(radix.has_value(), binary.has_value()) << src << "->" << dst;
  if (radix.has_value()) {
    ASSERT_EQ(LinksOf(*radix), LinksOf(*binary)) << src << "->" << dst;
    const routing::LinkSet primary = radix->ToLinkSet();
    const auto mask =
        SelectBackupLsr(topo, db, primary, src, dst, Mbps(1),
                        /*deterministic=*/true, {}, 0, CvScoring::kMask);
    const auto sparse =
        SelectBackupLsr(topo, db, primary, src, dst, Mbps(1),
                        /*deterministic=*/true, {}, 0, CvScoring::kSparse);
    ASSERT_EQ(mask.has_value(), sparse.has_value()) << src << "->" << dst;
    if (mask.has_value()) {
      ASSERT_EQ(LinksOf(*mask), LinksOf(*sparse)) << src << "->" << dst;
    }
  }
}

void RunRandomizedSequence(const net::Topology& topo, bool duplex,
                           std::uint64_t seed, int ops, int check_every) {
  DrtpNetwork net(topo, NetworkConfig{.duplex_failures = duplex});
  // db is published incrementally after every mutation; db_lagged is
  // published every few ops and must be healed by the stamp fallback
  // (each PublishTo to one db invalidates the other's stamp).
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  lsdb::LinkStateDb db_lagged(topo.num_links(), topo.num_links());
  Dlsr scheme;
  Rng rng(seed);

  net.PublishTo(db, 0.0);
  std::vector<ConnId> live;
  ConnId next_id = 1;
  Time t = 0.0;

  for (int op = 0; op < ops; ++op) {
    t += 1.0;
    const int kind = static_cast<int>(rng.Index(10));
    if (kind < 5) {  // admit
      const auto nodes = static_cast<std::size_t>(topo.num_nodes());
      const NodeId src = static_cast<NodeId>(rng.Index(nodes));
      NodeId dst = static_cast<NodeId>(rng.Index(nodes));
      if (dst == src) dst = (dst + 1) % topo.num_nodes();
      ExpectRouteKernelsAgree(topo, db, src, dst);
      const RouteSelection sel = scheme.SelectRoutes(net, db, src, dst,
                                                     Mbps(1));
      if (sel.primary.has_value() &&
          net.EstablishConnection(next_id, *sel.primary, Mbps(1), t)) {
        if (sel.backup.has_value()) net.RegisterBackup(next_id, *sel.backup);
        live.push_back(next_id);
        ++next_id;
      }
    } else if (kind < 7) {  // release
      if (!live.empty()) {
        const std::size_t pick = rng.Index(live.size());
        net.ReleaseConnection(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    } else if (kind < 8) {  // fail (with step-4 reroute against db)
      std::vector<LinkId> up;
      for (LinkId l = 0; l < topo.num_links(); ++l) {
        if (net.IsLinkUp(l)) up.push_back(l);
      }
      // Keep a connected-ish network: stop failing below 80% of links.
      if (up.size() * 5 > static_cast<std::size_t>(topo.num_links()) * 4) {
        const LinkId l = up[rng.Index(up.size())];
        const SwitchoverReport report =
            ApplyLinkFailure(net, l, t, &scheme, &db);
        for (ConnId id : report.dropped) {
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
      }
    } else if (kind < 9) {  // repair
      const auto& down = net.down_links();
      if (!down.empty()) {
        net.SetLinkUp(down[rng.Index(down.size())]);
        scheme.OnTopologyChanged(net);
      }
    }
    // else: no mutation — publication of a clean network must also hold.

    net.PublishTo(db, t);
    ExpectDbMatches(net, db);
    if (op % 7 == 0) {
      net.PublishTo(db_lagged, t);
      ExpectDbMatches(net, db_lagged);
      // ...and the primary db must survive having lost the latest stamp.
      net.PublishTo(db, t);
      ExpectDbMatches(net, db);
    }
    if (op % check_every == 0) {
      ExpectIndexesMatchBruteForce(net);
      ExpectFailureEvalMatchesScan(net, rng);
      net.CheckConsistency();
    }
  }
  ExpectIndexesMatchBruteForce(net);
  ExpectFailureEvalMatchesScan(net, rng);
  net.CheckConsistency();
}

TEST(PerfEquivalence, RandomizedSequenceSimplex) {
  RunRandomizedSequence(net::MakeGrid(5, 5, Mbps(6)), /*duplex=*/false,
                        /*seed=*/11, /*ops=*/300, /*check_every=*/10);
}

TEST(PerfEquivalence, RandomizedSequenceDuplex) {
  RunRandomizedSequence(net::MakeGrid(5, 5, Mbps(6)), /*duplex=*/true,
                        /*seed=*/23, /*ops=*/300, /*check_every=*/10);
}

TEST(PerfEquivalence, SecondSeedSimplex) {
  RunRandomizedSequence(net::MakeGrid(5, 5, Mbps(6)), /*duplex=*/false,
                        /*seed=*/47, /*ops=*/300, /*check_every=*/10);
}

TEST(PerfEquivalence, Waxman60Churn) {
  // The paper's evaluation substrate: 60 nodes, E ~ 3.5.
  RunRandomizedSequence(
      net::MakeWaxman(net::WaxmanConfig{
          .nodes = 60, .avg_degree = 3.5, .link_capacity = Mbps(12),
          .seed = 31}),
      /*duplex=*/true, /*seed=*/61, /*ops=*/200, /*check_every=*/10);
}

TEST(PerfEquivalence, Hierarchical1kChurn) {
  // The 1k bench recipe. Fewer ops and sparser O(links * conns) audits:
  // every publish is still re-derived record-by-record, and every admit
  // still differentially checks the routing kernels.
  RunRandomizedSequence(
      net::MakeHierarchical(net::HierConfig{
          .backbone = 10, .pops_per_backbone = 3, .metro_per_pop = 32,
          .seed = 7}),
      /*duplex=*/true, /*seed=*/71, /*ops=*/60, /*check_every=*/20);
}

TEST(PerfEquivalence, WideLinkStateChurn) {
  // Enough links to push APLV/CV/DemandVector onto the sparse wide-state
  // representations (> lsdb::kWideLinkThreshold), so ExpectDbMatches and
  // CheckConsistency compare wide lazy conflict vectors semantically
  // against freshly derived ones on every op.
  const net::Topology topo = net::MakeHierarchical(net::HierConfig{
      .backbone = 12, .pops_per_backbone = 6, .metro_per_pop = 30,
      .seed = 9});
  ASSERT_GT(topo.num_links(), lsdb::kWideLinkThreshold);
  RunRandomizedSequence(topo, /*duplex=*/true, /*seed=*/83, /*ops=*/40,
                        /*check_every=*/20);
}

TEST(PerfEquivalence, FreshDbGetsFullRepublish) {
  const net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  DrtpNetwork net(topo);
  lsdb::LinkStateDb warm(topo.num_links(), topo.num_links());
  net.PublishTo(warm, 0.0);

  const auto path = routing::Path::FromNodes(
      topo, std::vector<NodeId>{0, 1, 2});
  ASSERT_TRUE(path.has_value());
  ASSERT_TRUE(net.EstablishConnection(1, *path, Mbps(1), 0.0));
  net.PublishTo(warm, 1.0);

  // A db that never saw any publication must still come out complete.
  lsdb::LinkStateDb fresh(topo.num_links(), topo.num_links());
  net.PublishTo(fresh, 2.0);
  ExpectDbMatches(net, fresh);
  ExpectDbMatches(net, warm);  // warm is one publish behind but untouched
}

TEST(PerfEquivalence, PublishFullToHealsExternalMutation) {
  // The incremental contract: a record mutated behind the network's back
  // is out of contract for PublishTo but must be healed by PublishFullTo.
  const net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  DrtpNetwork net(topo);
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  net.PublishTo(db, 0.0);
  db.record(0).free_for_primary = Mbps(999);
  net.PublishFullTo(db, 1.0);
  ExpectDbMatches(net, db);
}

}  // namespace
}  // namespace drtp::core
