// Tests for APLV, Conflict Vector and the link-state database — including
// the paper's worked numeric examples from §3.1 (Figure 1) and §3.2
// (Figure 2).
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "lsdb/aplv.h"
#include "lsdb/conflict_vector.h"
#include "lsdb/link_state_db.h"

namespace drtp::lsdb {
namespace {

using routing::LinkSet;
using routing::MakeLinkSet;

// ---- paper worked examples -------------------------------------------------
//
// Figure 1 (§3.1): the 3x3 mesh example considers 13 unidirectional links
// L1..L13. PSET_7 = {P1, P3} with LSET_P1 = {L8, L12, L13} and
// LSET_P3 = {L11, L13}; the paper states
//   APLV_7 = (0,0,0,0,0,0,0,1,0,0,1,1,2)  and  ||APLV_7||_1 = 5,
// and for P-LSR's comparison ||APLV_2||_1 = 0, ||APLV_4||_1 = 2.
// We replay the registrations on 1-indexed ids (element 0 unused).

TEST(AplvPaper, Figure1Aplv7) {
  Aplv aplv7(14);
  aplv7.AddPrimaryLset(MakeLinkSet({8, 12, 13}));   // B1's primary P1
  aplv7.AddPrimaryLset(MakeLinkSet({11, 13}));      // B3's primary P3
  const std::vector<int> expect{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 1, 2};
  for (LinkId j = 0; j < 14; ++j) {
    EXPECT_EQ(aplv7.count(j), expect[static_cast<std::size_t>(j)])
        << "APLV_7[" << j << "]";
  }
  EXPECT_EQ(aplv7.L1(), 5);  // ||APLV_7||_1 = 5 per the paper
  EXPECT_EQ(aplv7.Max(), 2); // L13 carries two conflicting primaries
}

TEST(AplvPaper, Figure1ConflictPrediction) {
  // "if L7 is selected as a link of the backup route for a DR-connection
  // whose primary channel goes through L12, it will generate conflicts
  // with two other backups" — i.e. both registered primaries conflict.
  Aplv aplv7(14);
  aplv7.AddPrimaryLset(MakeLinkSet({8, 12, 13}));
  aplv7.AddPrimaryLset(MakeLinkSet({11, 13}));
  // A new primary through L12 and L13 overlaps both registered LSETs.
  EXPECT_EQ(aplv7.ConflictingLinksIn(MakeLinkSet({12, 13})), 2);
}

// Figure 2 (§3.2): PSET_6 = {P1, P2} and the paper gives
//   CV_6 = (1,0,1,0,0,0,0,1,0,0,0,1,1),
// i.e. bits {1,3,8,12,13} set (1-indexed). A consistent split is
// LSET_P1 = {L1, L8, L12}, LSET_P2 = {L3, L13}.

TEST(AplvPaper, Figure2ConflictVector6) {
  Aplv aplv6(14);
  aplv6.AddPrimaryLset(MakeLinkSet({1, 8, 12}));
  aplv6.AddPrimaryLset(MakeLinkSet({3, 13}));
  const ConflictVector cv6 = aplv6.ToConflictVector();
  const std::vector<int> bits{0, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 1};
  for (LinkId j = 0; j < 14; ++j) {
    EXPECT_EQ(cv6.Test(j), bits[static_cast<std::size_t>(j)] == 1)
        << "CV_6[" << j << "]";
  }
  EXPECT_EQ(cv6.PopCount(), 5);
}

TEST(AplvPaper, Section5MultiplexingExample) {
  // §5: "let APLV_1 = (0,1,2,1,2). Then, if L3 or L5 fails, two
  // DR-connections will attempt to activate their backups through L1" —
  // spare sizing must therefore cover max(APLV) = 2 activations.
  Aplv aplv1(6);
  aplv1.AddPrimaryLset(MakeLinkSet({2, 3}));      // 1-indexed
  aplv1.AddPrimaryLset(MakeLinkSet({3, 4, 5}));
  aplv1.AddPrimaryLset(MakeLinkSet({5}));
  EXPECT_EQ(aplv1.count(1), 0);
  EXPECT_EQ(aplv1.count(2), 1);
  EXPECT_EQ(aplv1.count(3), 2);
  EXPECT_EQ(aplv1.count(4), 1);
  EXPECT_EQ(aplv1.count(5), 2);
  EXPECT_EQ(aplv1.Max(), 2);
}

// ---- Aplv unit behaviour ---------------------------------------------------

TEST(Aplv, AddRemoveRoundTripsToZero) {
  Aplv a(10);
  const LinkSet s1 = MakeLinkSet({1, 2, 3});
  const LinkSet s2 = MakeLinkSet({2, 3, 4});
  a.AddPrimaryLset(s1);
  a.AddPrimaryLset(s2);
  a.RemovePrimaryLset(s1);
  a.RemovePrimaryLset(s2);
  EXPECT_EQ(a, Aplv(10));
  EXPECT_EQ(a.L1(), 0);
  EXPECT_EQ(a.Max(), 0);
}

TEST(Aplv, RemovingAbsentThrows) {
  Aplv a(4);
  EXPECT_THROW(a.RemovePrimaryLset(MakeLinkSet({1})), CheckError);
}

TEST(Aplv, MaxRecomputesAfterDecrement) {
  Aplv a(5);
  a.AddPrimaryLset(MakeLinkSet({1}));
  a.AddPrimaryLset(MakeLinkSet({1}));
  a.AddPrimaryLset(MakeLinkSet({2}));
  EXPECT_EQ(a.Max(), 2);
  a.RemovePrimaryLset(MakeLinkSet({1}));
  EXPECT_EQ(a.Max(), 1);
  a.RemovePrimaryLset(MakeLinkSet({1}));
  EXPECT_EQ(a.Max(), 1);  // link 2 still has one
}

/// Property: incremental L1/Max always match a from-scratch recompute.
TEST(AplvProperty, IncrementalMatchesRecompute) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    Aplv a(20);
    std::vector<LinkSet> registered;
    for (int step = 0; step < 500; ++step) {
      if (registered.empty() || rng.Bernoulli(0.6)) {
        std::vector<LinkId> raw;
        const int n = static_cast<int>(rng.UniformInt(1, 5));
        for (int i = 0; i < n; ++i)
          raw.push_back(static_cast<LinkId>(rng.Index(20)));
        const LinkSet s = MakeLinkSet(std::move(raw));
        a.AddPrimaryLset(s);
        registered.push_back(s);
      } else {
        const auto idx = rng.Index(registered.size());
        a.RemovePrimaryLset(registered[idx]);
        registered.erase(registered.begin() +
                         static_cast<std::ptrdiff_t>(idx));
      }
      // Recompute oracle.
      std::int64_t l1 = 0;
      std::int32_t mx = 0;
      std::vector<std::int32_t> counts(20, 0);
      for (const LinkSet& s : registered) {
        for (LinkId j : s) ++counts[static_cast<std::size_t>(j)];
      }
      for (std::int32_t c : counts) {
        l1 += c;
        mx = std::max(mx, c);
      }
      ASSERT_EQ(a.L1(), l1);
      ASSERT_EQ(a.Max(), mx);
    }
  }
}

/// Differential churn over RAW link lists — repeats and arbitrary order
/// allowed, unlike MakeLinkSet's sorted/deduped output — comparing
/// Max(), L1() and num_at_max() against a naive recount every step. A
/// repeated link exercises the multiplicity accounting in both the
/// decrement loop and the rescan.
TEST(AplvProperty, DifferentialChurnWithRepeatedLinks) {
  constexpr int kLinks = 16;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    Aplv a(kLinks);
    std::vector<LinkSet> registered;
    for (int step = 0; step < 600; ++step) {
      if (registered.empty() || rng.Bernoulli(0.55)) {
        LinkSet raw;
        const int n = static_cast<int>(rng.UniformInt(1, 6));
        for (int i = 0; i < n; ++i) {
          // ~1/3 chance of repeating an earlier pick in the same LSET.
          if (!raw.empty() && rng.Bernoulli(0.33)) {
            raw.push_back(raw[rng.Index(raw.size())]);
          } else {
            raw.push_back(static_cast<LinkId>(rng.Index(kLinks)));
          }
        }
        a.AddPrimaryLset(raw);
        registered.push_back(std::move(raw));
      } else {
        const auto idx = rng.Index(registered.size());
        a.RemovePrimaryLset(registered[idx]);
        registered.erase(registered.begin() +
                         static_cast<std::ptrdiff_t>(idx));
      }
      std::vector<std::int32_t> counts(kLinks, 0);
      std::int64_t l1 = 0;
      for (const LinkSet& s : registered) {
        for (LinkId j : s) ++counts[static_cast<std::size_t>(j)];
      }
      std::int32_t mx = 0;
      std::int32_t at_max = 0;
      for (std::int32_t c : counts) {
        l1 += c;
        if (c > mx) {
          mx = c;
          at_max = 1;
        } else if (c == mx && mx > 0) {
          ++at_max;
        }
      }
      ASSERT_EQ(a.L1(), l1) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.Max(), mx) << "seed " << seed << " step " << step;
      ASSERT_EQ(a.num_at_max(), at_max)
          << "seed " << seed << " step " << step;
    }
  }
}

/// A removal that fails validation must leave the vector untouched —
/// the old code decremented mid-loop before throwing, leaving counts,
/// L1, max tracking and the conflict vector torn for any caller that
/// catches the CheckError.
TEST(Aplv, FailedRemoveLeavesStateUntouched) {
  Aplv a(8);
  a.AddPrimaryLset(MakeLinkSet({1, 2, 3}));
  a.AddPrimaryLset(MakeLinkSet({2, 5}));
  const Aplv snapshot = a;

  // Link 6 was never registered; 1 and 2 (present) precede it in the
  // LSET, so the old code had already decremented them at throw time.
  EXPECT_THROW(a.RemovePrimaryLset(MakeLinkSet({1, 2, 6})), CheckError);
  EXPECT_EQ(a, snapshot);

  // Repeated link beyond its multiplicity: link 5 is registered once but
  // the LSET removes it twice.
  EXPECT_THROW(a.RemovePrimaryLset(LinkSet{5, 5}), CheckError);
  EXPECT_EQ(a, snapshot);

  // Out-of-range link after valid ones.
  EXPECT_THROW(a.RemovePrimaryLset(LinkSet{1, 99}), CheckError);
  EXPECT_EQ(a, snapshot);

  // The snapshot state is still fully functional afterwards.
  a.RemovePrimaryLset(MakeLinkSet({1, 2, 3}));
  a.RemovePrimaryLset(MakeLinkSet({2, 5}));
  EXPECT_EQ(a, Aplv(8));
}

/// Repeated links in one LSET count with multiplicity through add,
/// remove and the max rescan.
TEST(Aplv, RepeatedLinkMultiplicity) {
  Aplv a(4);
  const LinkSet twice{2, 2};  // raw, not MakeLinkSet (which dedups)
  a.AddPrimaryLset(twice);
  EXPECT_EQ(a.count(2), 2);
  EXPECT_EQ(a.Max(), 2);
  EXPECT_EQ(a.num_at_max(), 1);
  a.AddPrimaryLset(MakeLinkSet({1}));
  a.RemovePrimaryLset(twice);
  EXPECT_EQ(a.count(2), 0);
  EXPECT_EQ(a.Max(), 1);  // link 1 survives
  EXPECT_EQ(a.num_at_max(), 1);
  EXPECT_FALSE(a.conflict_vector().Test(2));
}

// ---- ConflictVector ---------------------------------------------------------

TEST(ConflictVector, SetTestClear) {
  ConflictVector cv(130);  // spans three words
  EXPECT_FALSE(cv.Test(0));
  cv.Set(0, true);
  cv.Set(64, true);
  cv.Set(129, true);
  EXPECT_TRUE(cv.Test(0));
  EXPECT_TRUE(cv.Test(64));
  EXPECT_TRUE(cv.Test(129));
  EXPECT_EQ(cv.PopCount(), 3);
  cv.Set(64, false);
  EXPECT_FALSE(cv.Test(64));
  EXPECT_EQ(cv.PopCount(), 2);
}

TEST(ConflictVector, CountInLinkSet) {
  ConflictVector cv(10);
  cv.Set(2, true);
  cv.Set(5, true);
  cv.Set(7, true);
  EXPECT_EQ(cv.CountIn(MakeLinkSet({1, 2, 5, 9})), 2);
  EXPECT_EQ(cv.CountIn(MakeLinkSet({})), 0);
}

TEST(ConflictVector, AdvertBytesRoundsUp) {
  EXPECT_EQ(ConflictVector(8).AdvertBytes(), 1);
  EXPECT_EQ(ConflictVector(9).AdvertBytes(), 2);
  EXPECT_EQ(ConflictVector(240).AdvertBytes(), 30);
}

// ---- LinkStateDb ------------------------------------------------------------

// ---- wide (> kWideLinkThreshold) representations ---------------------------
//
// Above kWideLinkThreshold links the APLV switches to sparse
// key/count storage and the CV elides trailing all-zero words; both must
// stay observationally identical to the dense forms.

TEST(AplvWide, SparseMatchesDenseOracleAcrossThreshold) {
  for (const int width :
       {kWideLinkThreshold, kWideLinkThreshold + 1,
        kWideLinkThreshold + 257}) {
    Rng rng(static_cast<std::uint64_t>(width));
    Aplv a(width);
    std::vector<std::int32_t> counts(static_cast<std::size_t>(width), 0);
    std::vector<LinkSet> registered;
    for (int step = 0; step < 200; ++step) {
      if (registered.empty() || rng.Bernoulli(0.6)) {
        std::vector<LinkId> raw;
        const int n = static_cast<int>(rng.UniformInt(1, 6));
        for (int i = 0; i < n; ++i) {
          raw.push_back(
              static_cast<LinkId>(rng.Index(static_cast<std::size_t>(width))));
        }
        const LinkSet s = MakeLinkSet(std::move(raw));
        a.AddPrimaryLset(s);
        for (LinkId j : s) ++counts[static_cast<std::size_t>(j)];
        registered.push_back(s);
      } else {
        const auto idx = rng.Index(registered.size());
        a.RemovePrimaryLset(registered[idx]);
        for (LinkId j : registered[idx]) --counts[static_cast<std::size_t>(j)];
        registered.erase(registered.begin() +
                         static_cast<std::ptrdiff_t>(idx));
      }
    }
    std::int64_t l1 = 0;
    std::int32_t mx = 0;
    for (std::int32_t c : counts) {
      l1 += c;
      mx = std::max(mx, c);
    }
    ASSERT_EQ(a.L1(), l1) << "width " << width;
    ASSERT_EQ(a.Max(), mx) << "width " << width;
    // Per-link counts: every touched link plus a random sample of the
    // (mostly untouched) tail.
    const ConflictVector cv = a.ToConflictVector();
    for (const LinkSet& s : registered) {
      for (LinkId j : s) {
        ASSERT_EQ(a.count(j), counts[static_cast<std::size_t>(j)]);
      }
    }
    for (int i = 0; i < 200; ++i) {
      const LinkId j =
          static_cast<LinkId>(rng.Index(static_cast<std::size_t>(width)));
      ASSERT_EQ(a.count(j), counts[static_cast<std::size_t>(j)]);
      ASSERT_EQ(cv.Test(j), counts[static_cast<std::size_t>(j)] > 0);
    }
    // Draining everything must land exactly on the empty state.
    for (const LinkSet& s : registered) a.RemovePrimaryLset(s);
    EXPECT_EQ(a, Aplv(width));
    EXPECT_EQ(a.ToConflictVector(), ConflictVector(width));
  }
}

TEST(ConflictVectorWide, CountInAndMaskSweepAgree) {
  const int width = kWideLinkThreshold + 512;
  Rng rng(99);
  ConflictVector cv(width);
  for (int i = 0; i < 300; ++i) {
    cv.Set(static_cast<LinkId>(rng.Index(static_cast<std::size_t>(width))),
           true);
  }
  std::vector<LinkId> raw;
  for (int i = 0; i < 40; ++i) {
    raw.push_back(
        static_cast<LinkId>(rng.Index(static_cast<std::size_t>(width))));
  }
  const LinkSet lset = MakeLinkSet(std::move(raw));
  std::vector<std::uint64_t> mask(static_cast<std::size_t>((width + 63) / 64),
                                  0);
  int oracle = 0;
  for (LinkId j : lset) {
    mask[static_cast<std::size_t>(j) / 64] |= std::uint64_t{1}
                                              << (static_cast<unsigned>(j) %
                                                  64);
    if (cv.Test(j)) ++oracle;
  }
  EXPECT_EQ(cv.CountIn(lset), oracle);
  EXPECT_EQ(cv.AndPopCount(mask), oracle);
}

TEST(ConflictVectorWide, EqualityIgnoresElidedTrailingWords) {
  const int width = kWideLinkThreshold + 1000;
  ConflictVector lazy(width);
  lazy.Set(5, true);
  ConflictVector materialized(width);
  materialized.Set(5, true);
  // Touching and clearing a high bit leaves allocated-but-zero tail words
  // behind; they must compare equal to the never-materialized tail.
  materialized.Set(width - 1, true);
  materialized.Set(width - 1, false);
  EXPECT_GT(materialized.words().size(), lazy.words().size());
  EXPECT_EQ(materialized, lazy);
  EXPECT_EQ(lazy, materialized);
  // Width is part of identity even when the bits agree.
  ConflictVector narrower(width - 1);
  narrower.Set(5, true);
  EXPECT_FALSE(narrower == lazy);
}

TEST(LinkStateDb, RecordsAreIndependent) {
  LinkStateDb db(4, 4);
  db.record(2).aplv_l1 = 9;
  db.record(2).available_for_backup = Mbps(3);
  EXPECT_EQ(db.record(2).aplv_l1, 9);
  EXPECT_EQ(db.record(1).aplv_l1, 0);
  EXPECT_EQ(db.record(2).available_for_backup, Mbps(3));
}

TEST(LinkStateDb, AdvertBytesScaleWithPayload) {
  LinkStateDb db(100, 100);
  const auto l1_bytes = db.AdvertBytesPerCycle(/*with_cv=*/false);
  const auto cv_bytes = db.AdvertBytesPerCycle(/*with_cv=*/true);
  EXPECT_EQ(l1_bytes, 100 * (12 + 8));
  EXPECT_EQ(cv_bytes, 100 * (12 + 13));  // 100 bits -> 13 bytes
  EXPECT_GT(cv_bytes, l1_bytes);
}

}  // namespace
}  // namespace drtp::lsdb
