// Tests for the SRLG-aware routing layer: the per-SRLG APLV aggregate
// (lsdb::SrlgVector), the pruned active/protection pair search, the
// SRLG-aware P-LSR/D-LSR variants (including their bit-identical
// degeneration to the base schemes on untagged topologies), the auditor's
// backup_shares_srlg invariant, and scenario boundary validation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "drtp/dlsr.h"
#include "drtp/network.h"
#include "drtp/plsr.h"
#include "drtp/scheme.h"
#include "drtp/srlg_schemes.h"
#include "fault/auditor.h"
#include "lsdb/srlg_vector.h"
#include "net/generators.h"
#include "routing/srlg_disjoint.h"
#include "sim/paper.h"
#include "sim/scenario.h"

namespace drtp {
namespace {

routing::Path NodePath(const net::Topology& topo, std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

// ---- lsdb::SrlgVector -----------------------------------------------------

SrlgId DemoGroups(LinkId j) { return j < 6 ? j % 3 : kInvalidSrlg; }

TEST(SrlgVector, AddRemoveAndSumOver) {
  lsdb::SrlgVector v(4, 100);
  const routing::LinkSet lset{0, 1, 2, 3, 7};
  v.AddLset(lset, DemoGroups);
  EXPECT_EQ(v.at(0), 2);  // links 0 and 3
  EXPECT_EQ(v.at(1), 1);
  EXPECT_EQ(v.at(2), 1);
  EXPECT_EQ(v.at(3), 0);
  EXPECT_EQ(v.total(), 4);
  const std::vector<SrlgId> groups{0, 2};
  EXPECT_EQ(v.SumOver(groups), 3);
  const std::vector<SrlgId> none{3};
  EXPECT_EQ(v.SumOver(none), 0);
  v.RemoveLset(lset, DemoGroups);
  EXPECT_EQ(v.total(), 0);
  EXPECT_EQ(v, lsdb::SrlgVector(4, 100));  // back to pristine
}

TEST(SrlgVector, WideAndDenseStorageAgree) {
  // Same logical content through the dense (paper-scale) and sparse
  // (above kWideLinkThreshold) representations.
  lsdb::SrlgVector dense(8, 100);
  lsdb::SrlgVector wide(8, lsdb::kWideLinkThreshold + 10);
  const routing::LinkSet a{0, 1, 2, 5};
  const routing::LinkSet b{0, 3, 4};
  for (auto* v : {&dense, &wide}) {
    v->AddLset(a, DemoGroups);
    v->AddLset(b, DemoGroups);
    v->RemoveLset(a, DemoGroups);
  }
  EXPECT_EQ(dense.total(), wide.total());
  for (SrlgId g = 0; g < 8; ++g) {
    EXPECT_EQ(dense.at(g), wide.at(g)) << "group " << g;
  }
  const std::vector<SrlgId> probe{0, 1, 2, 6};
  EXPECT_EQ(dense.SumOver(probe), wide.SumOver(probe));
  EXPECT_EQ(dense.AdvertBytes(), wide.AdvertBytes());
}

TEST(SrlgVector, DefaultIsEmptyAndEqual) {
  EXPECT_EQ(lsdb::SrlgVector(), lsdb::SrlgVector());
  EXPECT_EQ(lsdb::SrlgVector().num_srlgs(), 0);
  EXPECT_EQ(lsdb::SrlgVector().AdvertBytes(), 4);
}

// ---- routing::FindSrlgDisjointPair ---------------------------------------

/// 0 ==duplex== {1, 2, 4} ==duplex== 3, with 0->1 and 0->2 in risk
/// group 0 (say, two fibers in one conduit out of node 0).
net::Topology ThreeWayDiamond() {
  net::Topology t;
  for (int i = 0; i < 5; ++i) t.AddNode();
  const auto [l01, l10] = t.AddDuplexLink(0, 1, Mbps(10));
  t.AddDuplexLink(1, 3, Mbps(10));
  const auto [l02, l20] = t.AddDuplexLink(0, 2, Mbps(10));
  t.AddDuplexLink(2, 3, Mbps(10));
  t.AddDuplexLink(0, 4, Mbps(10));
  t.AddDuplexLink(4, 3, Mbps(10));
  (void)l10;
  (void)l20;
  t.AssignSrlg(l01, 0);
  t.AssignSrlg(l02, 0);
  return t;
}

bool SrlgDisjointPaths(const net::Topology& topo, const routing::Path& a,
                       const routing::Path& b) {
  for (const LinkId la : a.links()) {
    const SrlgId g = topo.srlg(la);
    if (g == kInvalidSrlg) continue;
    for (const LinkId lb : b.links()) {
      if (topo.srlg(lb) == g) return false;
    }
  }
  return true;
}

TEST(SrlgDisjointPair, AvoidsSharedGroupAndProvesOptimality) {
  const net::Topology topo = ThreeWayDiamond();
  const auto unit = [](LinkId) { return 1.0; };
  const auto result =
      routing::FindSrlgDisjointPair(topo, 0, 3, unit, unit);
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.active->hops(), 2);
  EXPECT_EQ(result.protection->hops(), 2);
  EXPECT_DOUBLE_EQ(result.total_cost, 4.0);
  EXPECT_TRUE(result.active->LinkDisjoint(*result.protection));
  // The two group-0 branches cannot both be used; one side must take the
  // untagged 0-4-3 detour.
  EXPECT_TRUE(SrlgDisjointPaths(topo, *result.active, *result.protection));
}

TEST(SrlgDisjointPair, ReportsWhenNoPairExists) {
  // Triangle with both 0->1 and 2->1 in group 0: each of the only two
  // simple 0->1 routes uses a group-0 link, so no pair exists and the
  // exhausted enumeration proves it.
  net::Topology t;
  for (int i = 0; i < 3; ++i) t.AddNode();
  const auto [l01, l10] = t.AddDuplexLink(0, 1, Mbps(10));
  t.AddDuplexLink(0, 2, Mbps(10));
  const auto [l21, l12] = t.AddDuplexLink(2, 1, Mbps(10));
  (void)l10;
  (void)l12;
  t.AssignSrlg(l01, 0);
  t.AssignSrlg(l21, 0);
  const auto unit = [](LinkId) { return 1.0; };
  const auto result = routing::FindSrlgDisjointPair(t, 0, 1, unit, unit);
  EXPECT_FALSE(result.found());
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.candidates_tried, 2);
}

TEST(SrlgDisjointPair, UntaggedTopologyGivesLinkDisjointPair) {
  const net::Topology topo = net::MakeRing(6, Mbps(10));
  const auto unit = [](LinkId) { return 1.0; };
  const auto result = routing::FindSrlgDisjointPair(topo, 0, 3, unit, unit);
  ASSERT_TRUE(result.found());
  EXPECT_TRUE(result.proven_optimal);
  // The only link-disjoint pair on a ring: the two directions around it.
  EXPECT_EQ(result.active->hops() + result.protection->hops(), 6);
  EXPECT_TRUE(result.active->LinkDisjoint(*result.protection));
}

// ---- SRLG-aware schemes ---------------------------------------------------

/// Fixture owning a network + instantly-refreshed LSDB (same shape as the
/// schemes_test one; SRLGs must be assigned before construction).
class SchemeFixture {
 public:
  explicit SchemeFixture(net::Topology topo)
      : net_(std::move(topo)),
        db_(net_.topology().num_links(), net_.topology().num_links()) {
    Refresh();
  }

  void Refresh() { net_.PublishTo(db_, 0.0); }

  core::RouteSelection Admit(core::RoutingScheme& scheme, ConnId id,
                             NodeId src, NodeId dst, Bandwidth bw = Mbps(1)) {
    core::RouteSelection sel = scheme.SelectRoutes(net_, db_, src, dst, bw);
    if (sel.primary.has_value()) {
      DRTP_CHECK(net_.EstablishConnection(id, *sel.primary, bw, 0.0));
      if (scheme.wants_backup() && sel.backup.has_value()) {
        net_.RegisterBackup(id, *sel.backup);
      }
      Refresh();
    }
    return sel;
  }

  core::DrtpNetwork net_;
  lsdb::LinkStateDb db_;
};

/// 3x3 grid with the straight 0->1 primary hop and the 3->4 detour hop in
/// one risk group: the base schemes' preferred backup 0-3-4-5-2 shares
/// fate with the primary 0-1-2.
net::Topology TaggedGrid() {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(10));
  topo.AssignSrlg(topo.FindLink(0, 1), 0);
  topo.AssignSrlg(topo.FindLink(3, 4), 0);
  return topo;
}

TEST(SrlgLsrScheme, HardAndSoftAvoidSharedGroupWhenDetourExists) {
  for (const bool deterministic : {false, true}) {
    for (const core::SrlgMode mode :
         {core::SrlgMode::kSoft, core::SrlgMode::kHard}) {
      SchemeFixture f(TaggedGrid());
      core::SrlgLsr scheme(deterministic, mode);
      const auto sel = f.Admit(scheme, 1, 0, 2);
      ASSERT_TRUE(sel.primary.has_value());
      ASSERT_TRUE(sel.backup.has_value()) << scheme.name();
      EXPECT_TRUE(sel.backup->LinkDisjoint(*sel.primary)) << scheme.name();
      EXPECT_TRUE(SrlgDisjointPaths(f.net_.topology(), *sel.primary,
                                    *sel.backup))
          << scheme.name() << " backup shares a risk group";
    }
  }
}

TEST(SrlgLsrScheme, HardRefusesWhenEveryBackupSharesGroup) {
  // Ring of 6: primary 0-1-2, only counter-rotating backup 0-5-4-3-2.
  // Tagging 0->1 (primary) and 5->4 (backup) into one group leaves hard
  // mode nothing to return; soft mode still takes the penalized route;
  // the base scheme never notices.
  net::Topology topo = net::MakeRing(6, Mbps(10));
  topo.AssignSrlg(topo.FindLink(0, 1), 0);
  topo.AssignSrlg(topo.FindLink(5, 4), 0);
  SchemeFixture f(topo);

  core::Dlsr base;
  const auto base_sel = base.SelectRoutes(f.net_, f.db_, 0, 2, Mbps(1));
  ASSERT_TRUE(base_sel.backup.has_value());
  EXPECT_TRUE(base_sel.backup->Contains(f.net_.topology().FindLink(5, 4)));

  core::SrlgLsr soft(/*deterministic=*/true, core::SrlgMode::kSoft);
  const auto soft_sel = soft.SelectRoutes(f.net_, f.db_, 0, 2, Mbps(1));
  ASSERT_TRUE(soft_sel.backup.has_value());
  EXPECT_EQ(*soft_sel.backup, *base_sel.backup);

  core::SrlgLsr hard(/*deterministic=*/true, core::SrlgMode::kHard);
  const auto hard_sel = hard.SelectRoutes(f.net_, f.db_, 0, 2, Mbps(1));
  ASSERT_TRUE(hard_sel.primary.has_value());
  EXPECT_FALSE(hard_sel.backup.has_value());
}

TEST(SrlgLsrScheme, BitIdenticalToBaseOnUntaggedTopology) {
  // On a zero-SRLG topology every variant must produce the exact routes
  // of its base scheme — same primaries, same backups, request for
  // request — because the SRLG terms vanish rather than perturb.
  const net::Topology topo = net::MakeWaxman(
      {.nodes = 30, .avg_degree = 4.0, .link_capacity = Mbps(20), .seed = 5});
  for (const bool deterministic : {false, true}) {
    SchemeFixture f(topo);
    std::unique_ptr<core::RoutingScheme> base;
    if (deterministic) {
      base = std::make_unique<core::Dlsr>();
    } else {
      base = std::make_unique<core::Plsr>();
    }
    core::SrlgLsr soft(deterministic, core::SrlgMode::kSoft);
    core::SrlgLsr hard(deterministic, core::SrlgMode::kHard);
    const int n = topo.num_nodes();
    ConnId id = 1;
    for (int i = 0; i < n; ++i) {
      const NodeId src = i;
      const NodeId dst = (i * 7 + 3) % n;
      if (src == dst) continue;
      const auto want = base->SelectRoutes(f.net_, f.db_, src, dst, Mbps(1));
      for (core::RoutingScheme* variant :
           {static_cast<core::RoutingScheme*>(&soft),
            static_cast<core::RoutingScheme*>(&hard)}) {
        const auto got = variant->SelectRoutes(f.net_, f.db_, src, dst,
                                               Mbps(1));
        EXPECT_EQ(got.primary, want.primary) << variant->name();
        EXPECT_EQ(got.backup, want.backup) << variant->name();
      }
      // Evolve state through the base scheme so later requests see a
      // loaded network.
      if (want.primary.has_value()) {
        ASSERT_TRUE(f.net_.EstablishConnection(id, *want.primary, Mbps(1),
                                               0.0));
        if (want.backup.has_value()) {
          f.net_.RegisterBackup(id, *want.backup);
        }
        f.Refresh();
        ++id;
      }
    }
  }
}

TEST(SrlgPairScheme, AdmitsSrlgDisjointPairOnTaggedGrid) {
  SchemeFixture f(TaggedGrid());
  core::SrlgPairScheme scheme;
  EXPECT_TRUE(scheme.requires_srlg_disjoint_backup());
  const auto sel = f.Admit(scheme, 1, 0, 2);
  ASSERT_TRUE(sel.primary.has_value());
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_TRUE(sel.primary->LinkDisjoint(*sel.backup));
  EXPECT_TRUE(
      SrlgDisjointPaths(f.net_.topology(), *sel.primary, *sel.backup));
  // The armed auditor agrees the admitted state keeps the promise.
  fault::AuditorOptions ao;
  ao.require_srlg_disjoint = true;
  fault::Auditor auditor(ao);
  auditor.Check(f.net_, 0.0, "final", nullptr);
  EXPECT_TRUE(auditor.ok());
}

// ---- auditor invariant ----------------------------------------------------

TEST(Auditor, FlagsBackupSharingSrlgOnlyWhenArmed) {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(10));
  topo.AssignSrlg(topo.FindLink(0, 1), 0);
  topo.AssignSrlg(topo.FindLink(3, 4), 0);
  core::DrtpNetwork net(topo);
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(topo, {0, 1, 2}), Mbps(1),
                                      0.0));
  net.RegisterBackup(1, NodePath(topo, {0, 3, 4, 5, 2}));  // shares group 0

  // Unarmed: sharing a group is a scheme tradeoff, not a violation (and
  // the per-SRLG aggregates must already reconcile bit-exactly).
  fault::Auditor relaxed;
  relaxed.Check(net, 0.0, "final", nullptr);
  EXPECT_TRUE(relaxed.ok());

  fault::AuditorOptions ao;
  ao.require_srlg_disjoint = true;
  fault::Auditor strict(ao);
  strict.Check(net, 0.0, "final", nullptr);
  EXPECT_FALSE(strict.ok());
  ASSERT_FALSE(strict.violations().empty());
  EXPECT_EQ(strict.violations()[0].invariant, "conn.backup_shares_srlg");
  EXPECT_EQ(strict.violations()[0].conn, 1);
}

// ---- scenario boundary validation ----------------------------------------

TEST(ScenarioValidate, RejectsIdsBeyondTheTopology) {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(10));  // 9 nodes, 24 links
  topo.AssignSrlg(topo.FindLink(0, 1), 0);             // exactly 1 group
  sim::Scenario sc;
  sc.traffic.duration = 100.0;

  sim::ScenarioEvent srlg_fail;
  srlg_fail.type = sim::ScenarioEvent::Type::kSrlgFail;
  srlg_fail.time = 1.0;
  srlg_fail.srlg = 3;  // only group 0 exists
  sc.events = {srlg_fail};
  EXPECT_THROW(sc.Validate(topo), ParseError);
  sc.events[0].srlg = 0;
  EXPECT_NO_THROW(sc.Validate(topo));

  sim::ScenarioEvent node_fail;
  node_fail.type = sim::ScenarioEvent::Type::kNodeFail;
  node_fail.time = 1.0;
  node_fail.node = 9;
  sc.events = {node_fail};
  EXPECT_THROW(sc.Validate(topo), ParseError);

  sim::ScenarioEvent link_fail;
  link_fail.type = sim::ScenarioEvent::Type::kLinkFail;
  link_fail.time = 1.0;
  link_fail.link = topo.num_links();
  sc.events = {link_fail};
  EXPECT_THROW(sc.Validate(topo), ParseError);

  sim::ScenarioEvent req;
  req.type = sim::ScenarioEvent::Type::kRequest;
  req.time = 1.0;
  req.conn = 1;
  req.src = 0;
  req.dst = 42;
  req.bw = Mbps(1);
  sc.events = {req};
  EXPECT_THROW(sc.Validate(topo), ParseError);
}

// ---- registry -------------------------------------------------------------

TEST(SchemeRegistry, ResolvesSrlgLabels) {
  const net::Topology topo = net::MakeGrid(3, 3, Mbps(10));
  const struct {
    const char* label;
    bool requires_disjoint;
  } cases[] = {
      {"P-LSR-SRLG-SOFT", false}, {"P-LSR-SRLG-HARD", true},
      {"D-LSR-SRLG-SOFT", false}, {"D-LSR-SRLG-HARD", true},
      {"SRLG-PAIR", true},
  };
  for (const auto& c : cases) {
    const auto scheme = sim::MakeScheme(c.label, topo, 1);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), c.label);
    EXPECT_EQ(scheme->requires_srlg_disjoint_backup(), c.requires_disjoint)
        << c.label;
  }
  // The base labels keep promising nothing.
  EXPECT_FALSE(sim::MakeScheme("D-LSR", topo, 1)
                   ->requires_srlg_disjoint_backup());
}

}  // namespace
}  // namespace drtp
