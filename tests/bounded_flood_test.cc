// Tests for the bounded flooding scheme (§4): the four CDP tests, the
// elliptical bound, destination-side selection, overhead accounting and
// budget behaviour.
#include <gtest/gtest.h>

#include "common/check.h"
#include "drtp/bounded_flood.h"
#include "drtp/network.h"
#include "net/generators.h"

namespace drtp::core {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

lsdb::LinkStateDb DummyDb(const DrtpNetwork& net) {
  lsdb::LinkStateDb db(net.topology().num_links(),
                       net.topology().num_links());
  return db;  // BF never reads it
}

TEST(BoundedFlood, FindsPrimaryAndDisjointBackupOnRing) {
  DrtpNetwork net(net::MakeRing(6, Mbps(10)));
  BoundedFlooding bf(net.topology(),
                     FloodConfig{.rho = 1.0, .sigma = 2, .alpha = 1.0,
                                 .beta = 0, .max_cdps = 100000});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 2);
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_EQ(sel.backup->hops(), 4);
  EXPECT_TRUE(sel.primary->LinkDisjoint(*sel.backup));
  EXPECT_GT(sel.control_messages, 0);
  EXPECT_GT(sel.control_bytes, sel.control_messages * 24);
}

TEST(BoundedFlood, HopLimitBoundsRouteLength) {
  DrtpNetwork net(net::MakeRing(8, Mbps(10)));
  // rho=1, sigma=0: only minimum-hop routes survive the distance test, so
  // the 6-hop counter-rotation backup cannot be discovered.
  BoundedFlooding tight(net.topology(), FloodConfig{.rho = 1.0, .sigma = 0});
  auto db = DummyDb(net);
  const auto sel = tight.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_FALSE(sel.backup.has_value());

  // Widening sigma to 4 admits the long way around (2 + 4 = 6 hops).
  BoundedFlooding wide(net.topology(), FloodConfig{.rho = 1.0, .sigma = 4});
  const auto sel2 = wide.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(sel2.backup.has_value());
  EXPECT_EQ(sel2.backup->hops(), 6);
}

TEST(BoundedFlood, EveryCandidateRespectsEllipse) {
  DrtpNetwork net(net::MakeGrid(4, 4, Mbps(10)));
  const FloodConfig cfg{.rho = 1.0, .sigma = 2};
  BoundedFlooding bf(net.topology(), cfg);
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 15, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  ASSERT_TRUE(sel.backup.has_value());
  const int min_hops = 6;  // corner to corner on 4x4
  EXPECT_LE(sel.primary->hops(), min_hops + cfg.sigma);
  EXPECT_LE(sel.backup->hops(), min_hops + cfg.sigma);
}

TEST(BoundedFlood, BandwidthTestBlocksPrimaryButAllowsBackupOverSpare) {
  // A link whose free pool is consumed by spare reservations may still
  // carry a *backup* (total - prime >= bw) but not a primary.
  DrtpNetwork net(net::MakeRing(4, Mbps(2)));
  const LinkId l01 = net.topology().FindLink(0, 1);
  // Fill 0->1 with 1 Mbps primary + 1 Mbps spare (via a helper conn).
  ASSERT_TRUE(net.EstablishConnection(
      90, NodePath(net.topology(), {3, 0, 1}), Mbps(1), 0.0));
  ASSERT_TRUE(net.EstablishConnection(
      91, NodePath(net.topology(), {3, 2, 1}), Mbps(1), 0.0));
  net.RegisterBackup(91, NodePath(net.topology(), {3, 0, 1}));
  EXPECT_EQ(net.ledger().free(l01), 0);
  EXPECT_EQ(net.ledger().spare(l01), Mbps(1));

  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 2});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  // Primary cannot use 0->1 (no free bandwidth): it detours 0-3-2-1.
  EXPECT_FALSE(sel.primary->Contains(l01));
  EXPECT_EQ(sel.primary->hops(), 3);
  // The backup may ride 0->1's spare pool.
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_TRUE(sel.backup->Contains(l01));
}

TEST(BoundedFlood, FullySaturatedLinkStopsCdps) {
  DrtpNetwork net(net::MakeRing(4, Mbps(1)));
  // Saturate 0->1 with prime bandwidth: even backups cannot cross.
  ASSERT_TRUE(net.EstablishConnection(
      90, NodePath(net.topology(), {0, 1}), Mbps(1), 0.0));
  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 2});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 3);  // forced around
  EXPECT_FALSE(sel.primary->Contains(net.topology().FindLink(0, 1)));
}

TEST(BoundedFlood, DownLinksAreNotFlooded) {
  DrtpNetwork net(net::MakeRing(4, Mbps(10)));
  net.SetLinkDown(net.topology().FindLink(0, 1));
  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 2});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 3);
}

TEST(BoundedFlood, UnreachableDestinationYieldsNothing) {
  net::Topology topo;
  topo.AddNode();
  topo.AddNode();
  topo.AddNode();
  topo.AddDuplexLink(0, 1, Mbps(1));
  DrtpNetwork net(std::move(topo));
  BoundedFlooding bf(net.topology());
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 2, Mbps(1));
  EXPECT_FALSE(sel.primary.has_value());
  EXPECT_EQ(sel.control_messages, 0);
}

TEST(BoundedFlood, LoopFreedomHoldsOnEveryCandidate) {
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(10)));
  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 3, .beta = 3});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 8, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_TRUE(sel.primary->IsSimple());
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_TRUE(sel.backup->IsSimple());
}

TEST(BoundedFlood, CdpBudgetStopsFloodButReportsIt) {
  DrtpNetwork net(net::MakeGrid(4, 4, Mbps(10)));
  BoundedFlooding bf(net.topology(),
                     FloodConfig{.sigma = 2, .max_cdps = 10});
  auto db = DummyDb(net);
  const auto sel = bf.SelectRoutes(net, db, 0, 15, Mbps(1));
  EXPECT_TRUE(bf.last_stats().budget_exhausted);
  EXPECT_LE(bf.last_stats().cdp_forwards, 10);
  (void)sel;
}

TEST(BoundedFlood, WiderBoundsNeverFindWorsePrimary) {
  DrtpNetwork net(net::MakeGrid(4, 4, Mbps(10)));
  auto db = DummyDb(net);
  BoundedFlooding narrow(net.topology(), FloodConfig{.sigma = 0});
  BoundedFlooding wide(net.topology(), FloodConfig{.sigma = 3, .beta = 2});
  const auto a = narrow.SelectRoutes(net, db, 1, 14, Mbps(1));
  const auto b = wide.SelectRoutes(net, db, 1, 14, Mbps(1));
  ASSERT_TRUE(a.primary.has_value() && b.primary.has_value());
  EXPECT_EQ(a.primary->hops(), b.primary->hops());
  EXPECT_GE(b.control_messages, a.control_messages);
}

TEST(BoundedFlood, RebuildDistanceTableAfterFailure) {
  DrtpNetwork net(net::MakeRing(5, Mbps(10)));
  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 0});
  auto db = DummyDb(net);
  // 0->1 direct is min-hop.
  auto sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 1);
  // Fail the link; with stale distance tables and sigma=0 the flood finds
  // nothing (4-hop detour exceeds the stale 1-hop limit).
  net.SetLinkDown(net.topology().FindLink(0, 1));
  sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  EXPECT_FALSE(sel.primary.has_value());
  // After rebuilding the tables (§4.1: updated on topology change), the
  // detour is within the new bound.
  bf.RebuildDistanceTable(net);
  sel = bf.SelectRoutes(net, db, 0, 1, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 4);
}

TEST(BoundedFlood, SelectBackupForMinimizesOverlap) {
  DrtpNetwork net(net::MakeRing(6, Mbps(10)));
  BoundedFlooding bf(net.topology(), FloodConfig{.sigma = 4});
  const auto primary = NodePath(net.topology(), {0, 1, 2});
  const auto backup = bf.SelectBackupFor(net, DummyDb(net), primary, Mbps(1));
  ASSERT_TRUE(backup.has_value());
  EXPECT_TRUE(backup->LinkDisjoint(primary));
}

TEST(BoundedFlood, ConfigValidation) {
  const net::Topology topo = net::MakeRing(4, Mbps(1));
  EXPECT_THROW(BoundedFlooding(topo, FloodConfig{.rho = 0.5}), CheckError);
  EXPECT_THROW(BoundedFlooding(topo, FloodConfig{.sigma = -1}), CheckError);
  EXPECT_THROW(BoundedFlooding(topo, FloodConfig{.max_cdps = 0}), CheckError);
}

}  // namespace
}  // namespace drtp::core
