// Tests for the DrtpNetwork facade: the four DR-connection management
// steps, backup activation, link up/down, advertisement publishing, and a
// randomized consistency property over the whole bookkeeping machine.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "net/generators.h"
#include "routing/dijkstra.h"

namespace drtp::core {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::initializer_list<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, std::vector<NodeId>(nodes));
  DRTP_CHECK(p.has_value());
  return *p;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(net::MakeGrid(3, 3, Mbps(10))) {}
  DrtpNetwork net_;
};

TEST_F(NetworkTest, EstablishReservesPrimaryBandwidth) {
  const auto p = NodePath(net_.topology(), {0, 1, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, p, Mbps(2), 0.0));
  for (LinkId l : p.links()) EXPECT_EQ(net_.ledger().prime(l), Mbps(2));
  EXPECT_EQ(net_.ActiveCount(), 1);
  EXPECT_EQ(net_.Find(1)->src, 0);
  EXPECT_EQ(net_.Find(1)->dst, 2);
  net_.CheckConsistency();
}

TEST_F(NetworkTest, EstablishRollsBackOnShortage) {
  const auto first = NodePath(net_.topology(), {1, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, first, Mbps(10), 0.0));
  // 0->1->2 fails on the second hop; the first hop must be rolled back.
  const auto p = NodePath(net_.topology(), {0, 1, 2});
  EXPECT_FALSE(net_.EstablishConnection(2, p, Mbps(1), 0.0));
  EXPECT_EQ(net_.ledger().prime(net_.topology().FindLink(0, 1)), 0);
  EXPECT_EQ(net_.ActiveCount(), 1);
}

TEST_F(NetworkTest, EstablishRefusesDownLink) {
  const auto p = NodePath(net_.topology(), {0, 1});
  net_.SetLinkDown(net_.topology().FindLink(0, 1));
  EXPECT_FALSE(net_.EstablishConnection(1, p, Mbps(1), 0.0));
  net_.SetLinkUp(net_.topology().FindLink(0, 1));
  EXPECT_TRUE(net_.EstablishConnection(1, p, Mbps(1), 0.0));
}

TEST_F(NetworkTest, DuplicateIdThrows) {
  const auto p = NodePath(net_.topology(), {0, 1});
  ASSERT_TRUE(net_.EstablishConnection(1, p, Mbps(1), 0.0));
  EXPECT_THROW((void)net_.EstablishConnection(1, p, Mbps(1), 0.0),
               CheckError);
}

TEST_F(NetworkTest, RegisterBackupWiresAplvsAlongRoute) {
  const auto primary = NodePath(net_.topology(), {0, 1, 2});
  const auto backup = NodePath(net_.topology(), {0, 3, 4, 5, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, primary, Mbps(1), 0.0));
  EXPECT_EQ(net_.RegisterBackup(1, backup), 0);  // plenty of bandwidth
  for (LinkId l : backup.links()) {
    EXPECT_EQ(net_.aplv(l).L1(), 2);  // two primary links registered
    EXPECT_EQ(net_.ledger().spare(l), Mbps(1));
  }
  EXPECT_EQ(net_.ConnsWithPrimaryOn(net_.topology().FindLink(0, 1)),
            std::vector<ConnId>{1});
  EXPECT_EQ(net_.ConnsWithBackupOn(net_.topology().FindLink(0, 3)),
            std::vector<ConnId>{1});
  net_.CheckConsistency();
}

TEST_F(NetworkTest, ReleaseConnectionRestoresEverything) {
  const auto primary = NodePath(net_.topology(), {0, 1, 2});
  const auto backup = NodePath(net_.topology(), {0, 3, 4, 5, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, primary, Mbps(1), 0.0));
  net_.RegisterBackup(1, backup);
  net_.ReleaseConnection(1);
  EXPECT_EQ(net_.ActiveCount(), 0);
  EXPECT_EQ(net_.ledger().TotalPrime(), 0);
  EXPECT_EQ(net_.ledger().TotalSpare(), 0);
  for (LinkId l = 0; l < net_.topology().num_links(); ++l) {
    EXPECT_EQ(net_.aplv(l).L1(), 0);
  }
  net_.CheckConsistency();
}

TEST_F(NetworkTest, ActivateBackupPromotesRoute) {
  const auto primary = NodePath(net_.topology(), {0, 1, 2});
  const auto backup = NodePath(net_.topology(), {0, 3, 4, 5, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, primary, Mbps(1), 0.0));
  net_.RegisterBackup(1, backup);
  ASSERT_TRUE(net_.ActivateBackup(1, 5.0));
  const DrConnection* conn = net_.Find(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->primary, backup);
  EXPECT_FALSE(conn->has_backup());
  EXPECT_EQ(conn->failovers, 1);
  // Old primary bandwidth released; new route carries prime bandwidth.
  EXPECT_EQ(net_.ledger().prime(net_.topology().FindLink(0, 1)), 0);
  EXPECT_EQ(net_.ledger().prime(net_.topology().FindLink(0, 3)), Mbps(1));
  EXPECT_EQ(net_.ledger().TotalSpare(), 0);  // backup's spare retired
  net_.CheckConsistency();
}

TEST_F(NetworkTest, ActivationRaidsSparePoolWhenFreeExhausted) {
  // Saturate link 0->1 with primaries of other connections, leaving only
  // the spare pool to fund the activation.
  net::Topology topo = net::MakeGrid(3, 3, Mbps(3));
  DrtpNetwork net(std::move(topo));
  const auto primary = NodePath(net.topology(), {0, 3, 6});
  const auto backup = NodePath(net.topology(), {0, 1, 4, 7, 6});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.RegisterBackup(1, backup);  // spare of 1 Mbps sits on 0->1 etc.
  // Exhaust the free pool of 0->1 (3 total - 1 spare = 2 free).
  ASSERT_TRUE(net.EstablishConnection(2, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  ASSERT_TRUE(net.EstablishConnection(3, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  EXPECT_EQ(net.ledger().free(net.topology().FindLink(0, 1)), 0);
  // Activation must still succeed by consuming the spare slot.
  ASSERT_TRUE(net.ActivateBackup(1, 1.0));
  EXPECT_EQ(net.ledger().prime(net.topology().FindLink(0, 1)), Mbps(3));
  net.CheckConsistency();
}

TEST_F(NetworkTest, PublishReflectsStateAndDownLinks) {
  lsdb::LinkStateDb db(net_.topology().num_links(),
                       net_.topology().num_links());
  const auto primary = NodePath(net_.topology(), {0, 1, 2});
  const auto backup = NodePath(net_.topology(), {0, 3, 4, 5, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, primary, Mbps(4), 0.0));
  net_.RegisterBackup(1, backup);
  net_.SetLinkDown(net_.topology().FindLink(6, 7));
  net_.PublishTo(db, 2.0);
  EXPECT_EQ(db.last_refresh(), 2.0);

  const LinkId on_primary = net_.topology().FindLink(0, 1);
  EXPECT_EQ(db.record(on_primary).free_for_primary, Mbps(6));
  const LinkId on_backup = net_.topology().FindLink(0, 3);
  EXPECT_EQ(db.record(on_backup).aplv_l1, 2);
  EXPECT_TRUE(db.record(on_backup).cv.Test(on_primary));
  // available-for-backup counts spare + free.
  EXPECT_EQ(db.record(on_backup).available_for_backup, Mbps(10));
  EXPECT_EQ(db.record(on_backup).free_for_primary, Mbps(6));
  const LinkId down = net_.topology().FindLink(6, 7);
  EXPECT_EQ(db.record(down).free_for_primary, 0);
  EXPECT_EQ(db.record(down).available_for_backup, 0);
}

TEST_F(NetworkTest, DuplexFailureTakesBothDirections) {
  DrtpNetwork net(net::MakeGrid(2, 2, Mbps(1)),
                  NetworkConfig{.spare_mode = SpareMode::kMultiplexed,
                                .duplex_failures = true});
  const LinkId ab = net.topology().FindLink(0, 1);
  const LinkId ba = net.topology().FindLink(1, 0);
  net.SetLinkDown(ab);
  EXPECT_FALSE(net.IsLinkUp(ab));
  EXPECT_FALSE(net.IsLinkUp(ba));
  net.SetLinkUp(ab);
  EXPECT_TRUE(net.IsLinkUp(ba));
}

TEST_F(NetworkTest, HeterogeneousBandwidthEndToEnd) {
  // Two connections of different bandwidth share backup links; the spare
  // pools size by weighted demand and a failure activates both.
  const auto p1 = NodePath(net_.topology(), {0, 1});
  const auto p2 = NodePath(net_.topology(), {0, 1, 2});
  ASSERT_TRUE(net_.EstablishConnection(1, p1, Mbps(1), 0.0));
  net_.RegisterBackup(1, NodePath(net_.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(net_.EstablishConnection(2, p2, Mbps(2), 0.0));
  net_.RegisterBackup(2, NodePath(net_.topology(), {0, 3, 4, 5, 2}));
  // Both primaries cross 0->1: failing it needs 1 + 2 Mbps on 0->3.
  const LinkId l03 = net_.topology().FindLink(0, 3);
  EXPECT_EQ(net_.ledger().spare(l03), Mbps(3));
  net_.CheckConsistency();
  const auto impact =
      core::EvaluateLinkFailure(net_, net_.topology().FindLink(0, 1));
  EXPECT_EQ(impact.attempts, 2);
  EXPECT_EQ(impact.activated, 2);
  net_.ReleaseConnection(2);
  EXPECT_EQ(net_.ledger().spare(l03), Mbps(1));
  net_.CheckConsistency();
}

/// Property: a random churn of establish/register/release/activate keeps
/// every invariant (APLV == rebuild, ledger pools sane, spare targets met
/// or justified) and drains to zero.
class NetworkChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NetworkChurnProperty, InvariantsUnderChurn) {
  Rng rng(GetParam());
  net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 20, .avg_degree = 3.0, .link_capacity = Mbps(5),
      .seed = GetParam() * 13 + 1});
  DrtpNetwork net(topo);
  std::vector<ConnId> active;
  ConnId next_id = 0;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    if (op <= 1) {  // establish + maybe backup
      const NodeId src = static_cast<NodeId>(rng.Index(20));
      NodeId dst = static_cast<NodeId>(rng.Index(20));
      if (src == dst) continue;
      const auto primary =
          routing::MinHopPath(net.topology(), src, dst, [&](LinkId l) {
            return net.ledger().free(l) >= Mbps(1);
          });
      if (!primary) continue;
      const ConnId id = next_id++;
      if (!net.EstablishConnection(id, *primary, Mbps(1), step)) continue;
      active.push_back(id);
      if (rng.Bernoulli(0.8)) {
        const auto lset = primary->ToLinkSet();
        const auto backup =
            routing::CheapestPath(net.topology(), src, dst, [&](LinkId l) {
              return routing::SetContains(lset, l) ? 100.0 : 1.0;
            });
        if (backup) net.RegisterBackup(id, *backup);
      }
    } else if (op == 2 && !active.empty()) {  // release
      const auto idx = rng.Index(active.size());
      net.ReleaseConnection(active[idx]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 3 && !active.empty()) {  // activate a backup
      const auto idx = rng.Index(active.size());
      const ConnId id = active[idx];
      if (net.Find(id)->has_backup()) {
        if (!net.ActivateBackup(id, step)) {
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      }
    }
    if (step % 20 == 0) net.CheckConsistency();
  }
  net.CheckConsistency();
  for (ConnId id : active) net.ReleaseConnection(id);
  EXPECT_EQ(net.ledger().TotalPrime(), 0);
  EXPECT_EQ(net.ledger().TotalSpare(), 0);
  EXPECT_EQ(net.ActiveCount(), 0);
  net.CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkChurnProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace drtp::core
