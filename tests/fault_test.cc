// Tests for the fault subsystem: campaign generation/compilation (schema
// v2), the runtime invariant auditor (clean runs stay clean, corrupted
// state is caught), and graceful degradation accounting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/check.h"
#include "drtp/dlsr.h"
#include "drtp/messages.h"
#include "drtp/network.h"
#include "fault/auditor.h"
#include "fault/plan.h"
#include "net/generators.h"
#include "proto/engine.h"
#include "routing/path.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/paper.h"
#include "sim/scenario.h"

namespace drtp::fault {
namespace {

net::Topology SrlgTopology(std::uint64_t seed = 7) {
  return net::MakeWaxman({.nodes = 24,
                          .avg_degree = 3.5,
                          .link_capacity = Mbps(30),
                          .srlg_groups = 6,
                          .seed = seed});
}

CampaignConfig DemoCampaign() {
  CampaignConfig cc;
  cc.link_failures = 2;
  cc.node_failures = 2;
  cc.srlg_failures = 1;
  cc.bursts = 1;
  cc.burst_size = 3;
  cc.t_begin = 200.0;
  cc.t_end = 500.0;
  cc.mttr = 60.0;
  cc.seed = 11;
  return cc;
}

bool SameEvent(const sim::ScenarioEvent& a, const sim::ScenarioEvent& b) {
  return a.type == b.type && a.time == b.time && a.conn == b.conn &&
         a.src == b.src && a.dst == b.dst && a.bw == b.bw &&
         a.link == b.link && a.node == b.node && a.srlg == b.srlg;
}

TEST(Campaign, DeterministicForSeed) {
  const net::Topology topo = SrlgTopology();
  const FaultPlan a = MakeCampaign(topo, DemoCampaign());
  const FaultPlan b = MakeCampaign(topo, DemoCampaign());
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].at, b.faults[i].at);
    EXPECT_EQ(a.faults[i].link, b.faults[i].link);
    EXPECT_EQ(a.faults[i].node, b.faults[i].node);
    EXPECT_EQ(a.faults[i].srlg, b.faults[i].srlg);
    EXPECT_EQ(a.faults[i].burst, b.faults[i].burst);
  }
  CampaignConfig other = DemoCampaign();
  other.seed = 12;
  const FaultPlan c = MakeCampaign(topo, other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    if (a.faults[i].at != c.faults[i].at) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Campaign, SrlgFaultsRequireTaggedTopology) {
  const net::Topology untagged =
      net::MakeWaxman({.nodes = 24, .avg_degree = 3.5, .seed = 7});
  CampaignConfig cc;
  cc.srlg_failures = 1;
  EXPECT_THROW(MakeCampaign(untagged, cc), CheckError);
}

TEST(Campaign, CompilesFailRepairPairsInTimeOrder) {
  const net::Topology topo = SrlgTopology();
  const CampaignConfig cc = DemoCampaign();
  const FaultPlan plan = MakeCampaign(topo, cc);
  sim::Scenario sc;
  sc.traffic.duration = 1000.0;
  plan.InjectInto(sc);
  // link: 2 pairs, node: 2 pairs, srlg: 1 pair, burst: burst_size pairs.
  const std::size_t expected =
      2 * (2 + 2 + 1 + static_cast<std::size_t>(cc.burst_size));
  ASSERT_EQ(sc.events.size(), expected);
  for (std::size_t i = 1; i < sc.events.size(); ++i) {
    EXPECT_LE(sc.events[i - 1].time, sc.events[i].time);
  }
  int v2 = 0;
  for (const sim::ScenarioEvent& e : sc.events) v2 += e.RequiresV2();
  EXPECT_EQ(v2, 2 * (2 + 1));  // node + srlg fail/repair pairs
}

TEST(Campaign, RoundTripsThroughScenarioV2) {
  const net::Topology topo = SrlgTopology();
  sim::TrafficConfig tc = sim::MakePaperTraffic(
      sim::TrafficPattern::kUniform, 0.3, /*seed=*/5);
  tc.duration = 600.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  MakeCampaign(topo, DemoCampaign()).InjectInto(sc);

  std::stringstream ss;
  sc.Save(ss);
  const sim::Scenario back = sim::Scenario::Load(ss);
  ASSERT_EQ(back.events.size(), sc.events.size());
  for (std::size_t i = 0; i < sc.events.size(); ++i) {
    EXPECT_TRUE(SameEvent(sc.events[i], back.events[i])) << "event " << i;
  }
}

// The acceptance demo: a seeded campaign mixing node, SRLG, burst and
// plain link faults replays end-to-end with the auditor checking every
// event — and finds nothing.
TEST(Auditor, CleanCampaignHasNoViolations) {
  const net::Topology topo = SrlgTopology();
  sim::TrafficConfig tc = sim::MakePaperTraffic(
      sim::TrafficPattern::kUniform, 0.4, /*seed=*/5);
  tc.duration = 600.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  CampaignConfig cc = DemoCampaign();
  cc.t_begin = 150.0;
  cc.t_end = 550.0;
  MakeCampaign(topo, cc).InjectInto(sc);

  std::ostringstream audit_os;
  AuditorOptions ao;
  ao.out = &audit_os;
  Auditor auditor(ao);
  sim::ExperimentConfig ec;
  ec.warmup = 150.0;
  ec.sample_interval = 20.0;
  ec.after_event = [&auditor](const core::DrtpNetwork& net, Time t,
                              std::string_view event,
                              const core::SwitchoverReport* report) {
    auditor.Check(net, t, event, report);
  };
  core::Dlsr scheme;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, scheme, ec);

  EXPECT_GT(m.failures_enacted, 0);
  EXPECT_GT(auditor.checks(), 0);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().size()
                            << " violations, first: "
                            << (auditor.violations().empty()
                                    ? ""
                                    : auditor.violations()[0].invariant + ": " +
                                          auditor.violations()[0].detail);
  EXPECT_TRUE(audit_os.str().empty());
}

// Corrupted state must trip the auditor: a fabricated hop-by-hop backup
// registration (a phantom connection that exists in one manager's
// incremental state but not in the connection table) diverges the APLV
// and the spare target from the rebuilt ground truth.
TEST(Auditor, DetectsFabricatedBackupRegistration) {
  core::DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  const net::Topology& topo = net.topology();
  auto path = [&](std::vector<NodeId> nodes) {
    auto p = routing::Path::FromNodes(topo, nodes);
    DRTP_CHECK(p.has_value());
    return *p;
  };
  ASSERT_TRUE(net.EstablishConnection(1, path({0, 1, 2}), Mbps(1), 0.0));
  net.RegisterBackup(1, path({0, 3, 4, 5, 2}));

  Auditor clean;
  clean.Check(net, 0.0, "setup", nullptr);
  ASSERT_TRUE(clean.ok());

  // Forge a registration the connection table knows nothing about.
  const LinkId l34 = topo.FindLink(3, 4);
  core::BackupRegisterPacket forged;
  forged.conn_id = 999;
  forged.bw = Mbps(1);
  forged.primary_lset = path({6, 7, 8}).ToLinkSet();
  net.manager(topo.link(l34).src).RegisterBackupHop(l34, forged);

  std::ostringstream os;
  AuditorOptions ao;
  ao.out = &os;
  Auditor auditor(ao);
  auditor.Check(net, 1.0, "corruption", nullptr);
  EXPECT_FALSE(auditor.ok());
  bool aplv_or_spare = false;
  for (const AuditViolation& v : auditor.violations()) {
    if (v.invariant == "aplv.mismatch" || v.invariant == "spare.target_drift")
      aplv_or_spare = true;
  }
  EXPECT_TRUE(aplv_or_spare);
  EXPECT_NE(os.str().find("drtp.audit/1"), std::string::npos);
  EXPECT_NE(os.str().find("\"t\":1"), std::string::npos);
}

TEST(Auditor, StrideSkipsRoutineEventsButAlwaysAuditsFailures) {
  core::DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  AuditorOptions ao;
  ao.stride = 4;
  Auditor auditor(ao);
  for (int i = 0; i < 8; ++i) auditor.Check(net, i, "request", nullptr);
  EXPECT_EQ(auditor.checks(), 2);  // calls 0 and 4
  const core::SwitchoverReport report;
  auditor.Check(net, 9.0, "link_fail", &report);
  auditor.Check(net, 10.0, "final", nullptr);
  EXPECT_EQ(auditor.checks(), 4);  // forced regardless of stride
  EXPECT_TRUE(auditor.ok());
}

TEST(Auditor, RecordingCapStillCountsEverything) {
  core::DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  const net::Topology& topo = net.topology();
  auto path = [&](std::vector<NodeId> nodes) {
    auto p = routing::Path::FromNodes(topo, nodes);
    DRTP_CHECK(p.has_value());
    return *p;
  };
  // Forge registrations on several links so one audit yields a burst of
  // violations, then cap recording far below it.
  for (const auto& [a, b] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 3}, {3, 4}, {4, 5}, {5, 2}}) {
    const LinkId l = topo.FindLink(a, b);
    core::BackupRegisterPacket forged;
    forged.conn_id = 900 + l;
    forged.bw = Mbps(1);
    forged.primary_lset = path({6, 7, 8}).ToLinkSet();
    net.manager(topo.link(l).src).RegisterBackupHop(l, forged);
  }
  AuditorOptions ao;
  ao.max_recorded = 2;
  Auditor auditor(ao);
  auditor.Check(net, 0.0, "corruption", nullptr);
  EXPECT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_GT(auditor.violation_count(),
            static_cast<std::int64_t>(auditor.violations().size()));
}

TEST(Auditor, FlagsBackupCoveringEveryPrimaryLink) {
  core::DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  const net::Topology& topo = net.topology();
  auto p = routing::Path::FromNodes(topo, std::vector<NodeId>{0, 1, 2});
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(net.EstablishConnection(1, *p, Mbps(1), 0.0));
  // Registering the primary as its own "backup" keeps every ledger and
  // index consistent — only the protection semantics are vacuous.
  net.RegisterBackup(1, *p);
  Auditor auditor;
  auditor.Check(net, 0.0, "corruption", nullptr);
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations()[0].invariant, "conn.backup_shadows_primary");
  EXPECT_EQ(auditor.violations()[0].conn, 1);
}

// A connection on a 6-ring has exactly two link-disjoint routes. Failing
// one right after admission leaves the survivor as the promoted primary
// and NO disjoint backup: step 4 must refuse to register the primary's
// own path as "protection" (the scheme only shuns, never forbids, primary
// links), degrade the connection, and re-protect via the backoff retry
// loop once the repair restores the second route.
TEST(Degradation, ReprotectsAfterRepairAndNeverShadowsPrimary) {
  const net::Topology topo = net::MakeRing(6, Mbps(30));
  const LinkId l01 = topo.FindLink(0, 1);
  ASSERT_NE(l01, kInvalidLink);
  sim::Scenario sc;
  sc.traffic.duration = 300.0;
  using Ev = sim::ScenarioEvent;
  sc.events.push_back(Ev{.type = Ev::Type::kRequest, .time = 1.0, .conn = 1,
                         .src = 0, .dst = 3, .bw = Mbps(1)});
  sc.events.push_back(Ev{.type = Ev::Type::kLinkFail, .time = 100.0,
                         .link = l01});
  sc.events.push_back(Ev{.type = Ev::Type::kLinkRepair, .time = 115.0,
                         .link = l01});

  Auditor auditor;
  bool final_backup_disjoint = false;
  sim::ExperimentConfig ec;
  ec.warmup = 10.0;
  ec.sample_interval = 20.0;
  ec.after_event = [&](const core::DrtpNetwork& net, Time t,
                       std::string_view event,
                       const core::SwitchoverReport* report) {
    auditor.Check(net, t, event, report);
    if (event == "final") {
      const core::DrConnection* conn = net.Find(1);
      if (conn != nullptr && conn->has_backup()) {
        final_backup_disjoint =
            conn->first_backup()->LinkDisjoint(conn->primary);
      }
    }
  };
  core::Dlsr scheme;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, scheme, ec);

  EXPECT_EQ(m.failover_recovered, 1);
  EXPECT_EQ(m.degraded, 1);
  EXPECT_EQ(m.backups_reestablished, 0);  // the shadow backup is refused
  EXPECT_GE(m.reprotect_retries, 1);
  EXPECT_EQ(m.reprotect_recovered, 1);
  EXPECT_EQ(m.reprotect_exhausted, 0);
  EXPECT_TRUE(final_backup_disjoint);
  EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                    ? ""
                                    : auditor.violations()[0].invariant);
}

// ---- failure during recovery (timed protocol engine) ---------------------

struct ProtoHarness {
  explicit ProtoHarness(net::Topology topo)
      : net(std::move(topo)),
        db(net.topology().num_links(), net.topology().num_links()),
        engine(net, queue, proto::ProtocolConfig{}, &dlsr, &db) {
    net.PublishTo(db, 0.0);
  }

  routing::Path Path(std::vector<NodeId> nodes) {
    auto p = routing::Path::FromNodes(net.topology(), std::move(nodes));
    DRTP_CHECK(p.has_value());
    return *p;
  }

  core::DrtpNetwork net;
  sim::EventQueue queue;
  lsdb::LinkStateDb db;
  core::Dlsr dlsr;
  proto::ProtocolEngine engine;
};

// A second failure of the SAME primary lands inside the first failure's
// detection→report→activation window. The stale second report must not
// promote (or release) the backup a second time.
TEST(MidRecovery, SecondPrimaryFailureDoesNotDoublePromote) {
  ProtoHarness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, h.Path({0, 1, 2}), h.Path({0, 3, 4, 5, 2}),
                           Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();

  Auditor auditor;
  h.engine.set_after_action(
      [&auditor](const core::DrtpNetwork& net, Time t) {
        auditor.Check(net, t);
      });
  h.queue.Schedule(1.0, [&] {
    InjectMidRecoveryPair(h.engine, h.queue,
                          h.net.topology().FindLink(0, 1),
                          h.net.topology().FindLink(1, 2),
                          proto::RecoveryMode::kProactive);
  });
  h.queue.RunAll();

  // Exactly one successful promotion for the connection, never two.
  int successes = 0;
  for (const auto& r : h.engine.recoveries()) {
    successes += (r.conn == 1 && r.success);
  }
  EXPECT_EQ(successes, 1);
  const core::DrConnection* conn = h.net.Find(1);
  ASSERT_NE(conn, nullptr);
  // The promoted primary is the old backup: it avoids both dead links.
  EXPECT_FALSE(conn->primary.Contains(h.net.topology().FindLink(0, 1)));
  EXPECT_FALSE(conn->primary.Contains(h.net.topology().FindLink(1, 2)));
  EXPECT_GT(auditor.checks(), 0);
  EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                    ? ""
                                    : auditor.violations()[0].invariant);
  h.net.CheckConsistency();
}

// The backup itself fails while its promotion is in flight: activation
// must fail gracefully (no promotion onto a dead route, no double
// release) and leave the ledger coherent.
TEST(MidRecovery, BackupFailingMidPromotionIsNotActivated) {
  ProtoHarness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, h.Path({0, 1, 2}), h.Path({0, 3, 4, 5, 2}),
                           Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();

  Auditor auditor;
  h.engine.set_after_action(
      [&auditor](const core::DrtpNetwork& net, Time t) {
        auditor.Check(net, t);
      });
  const LinkId backup_link = h.net.topology().FindLink(3, 4);
  h.queue.Schedule(1.0, [&] {
    InjectMidRecoveryPair(h.engine, h.queue,
                          h.net.topology().FindLink(0, 1), backup_link,
                          proto::RecoveryMode::kProactive);
  });
  h.queue.RunAll();

  // However the race resolves, the connection never runs over a dead
  // link and was promoted at most once.
  int successes = 0;
  for (const auto& r : h.engine.recoveries()) {
    successes += (r.conn == 1 && r.success);
  }
  EXPECT_LE(successes, 1);
  if (const core::DrConnection* conn = h.net.Find(1)) {
    EXPECT_FALSE(conn->primary.Contains(h.net.topology().FindLink(0, 1)));
    EXPECT_FALSE(conn->primary.Contains(backup_link));
  }
  EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                    ? ""
                                    : auditor.violations()[0].invariant);
  h.net.CheckConsistency();
}

}  // namespace
}  // namespace drtp::fault
