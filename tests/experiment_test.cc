// Integration tests: full scenario replays through the experiment driver
// on reduced-scale paper setups, checking determinism, metric sanity, and
// the qualitative relations §6 reports.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/paper.h"

namespace drtp::sim {
namespace {

/// Reduced-scale setup so each replay takes milliseconds: shorter horizon
/// and lifetimes, same structure as the paper runs.
struct SmallSetup {
  net::Topology topo;
  Scenario scenario;
  ExperimentConfig config;

  static SmallSetup Make(double avg_degree, TrafficPattern pattern,
                         double lambda, std::uint64_t seed,
                         core::SpareMode mode = core::SpareMode::kMultiplexed) {
    SmallSetup s{MakePaperTopology(avg_degree, seed), {}, {}};
    TrafficConfig tc = MakePaperTraffic(pattern, lambda, seed + 1);
    tc.duration = 2000.0;
    tc.lifetime_min = 300.0;
    tc.lifetime_max = 900.0;
    s.scenario = Scenario::Generate(s.topo, tc);
    s.config.warmup = 800.0;
    s.config.sample_interval = 100.0;
    s.config.spare_mode = mode;
    return s;
  }
};

RunMetrics Replay(const SmallSetup& s, const std::string& scheme_label) {
  auto scheme = MakeScheme(scheme_label, s.topo, 17);
  return RunScenario(s.topo, s.scenario, *scheme, s.config);
}

TEST(Experiment, MetricsAreSane) {
  const SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kUniform, 0.4, 1);
  for (const char* label : {"D-LSR", "P-LSR", "BF", "NoBackup"}) {
    const RunMetrics m = Replay(s, label);
    EXPECT_EQ(m.scheme, label);
    EXPECT_EQ(m.requests, s.scenario.NumRequests());
    EXPECT_EQ(m.admitted + m.blocked, m.requests) << label;
    EXPECT_GT(m.admitted, 0) << label;
    EXPECT_GE(m.pbk.value(), 0.0);
    EXPECT_LE(m.pbk.value(), 1.0);
    EXPECT_GT(m.avg_active, 0.0) << label;
    if (std::string(label) == "NoBackup") {
      EXPECT_EQ(m.with_backup, 0);
      EXPECT_EQ(m.pbk.value(), 0.0);  // nothing ever activates
      EXPECT_EQ(m.spare_bw.max(), 0.0);
    } else if (std::string(label) == "BF") {
      // BF may find only one candidate inside the flooding ellipse and
      // leave the connection unprotected — part of why its
      // fault-tolerance trails the LSR schemes (§6.2).
      EXPECT_GT(m.with_backup, m.admitted / 2) << label;
      EXPECT_LE(m.with_backup, m.admitted) << label;
      EXPECT_GT(m.pbk.trials, 0) << label;
    } else {
      EXPECT_EQ(m.with_backup, m.admitted) << label;  // ample topology
      EXPECT_GT(m.pbk.trials, 0) << label;
      EXPECT_GT(m.spare_bw.mean(), 0.0) << label;
    }
  }
}

TEST(Experiment, DeterministicReplay) {
  const SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kHotspot, 0.5, 2);
  const RunMetrics a = Replay(s, "D-LSR");
  const RunMetrics b = Replay(s, "D-LSR");
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.pbk.hits, b.pbk.hits);
  EXPECT_EQ(a.pbk.trials, b.pbk.trials);
  EXPECT_DOUBLE_EQ(a.avg_active, b.avg_active);
}

TEST(Experiment, ConsistencyHoldsThroughoutReplay) {
  SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kUniform, 0.3, 3);
  s.config.check_consistency = true;  // CheckConsistency at every sample
  const RunMetrics m = Replay(s, "D-LSR");
  EXPECT_GT(m.admitted, 0);
}

TEST(Experiment, SchemesProtectWellAtModerateLoad) {
  const SmallSetup s = SmallSetup::Make(4.0, TrafficPattern::kUniform, 0.3, 4);
  for (const char* label : {"D-LSR", "P-LSR", "BF"}) {
    const RunMetrics m = Replay(s, label);
    EXPECT_GT(m.pbk.value(), 0.80) << label;
  }
}

TEST(Experiment, BackupsCostCapacityButNotTooMuch) {
  // At a load past the no-backup saturation point, protected schemes carry
  // fewer connections — the §6.2 capacity overhead — but multiplexing
  // keeps the drop well under the 50% of dedicated protection.
  const SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kUniform, 1.2, 5);
  const RunMetrics base = Replay(s, "NoBackup");
  const RunMetrics dlsr = Replay(s, "D-LSR");
  const double overhead = CapacityOverheadPercent(base, dlsr);
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 45.0);
  EXPECT_LT(dlsr.avg_active, base.avg_active);
}

TEST(Experiment, DedicatedSparesCostMoreThanMultiplexed) {
  const SmallSetup multiplexed =
      SmallSetup::Make(3.0, TrafficPattern::kUniform, 1.2, 6);
  const SmallSetup dedicated = SmallSetup::Make(
      3.0, TrafficPattern::kUniform, 1.2, 6, core::SpareMode::kDedicated);
  const RunMetrics base = Replay(multiplexed, "NoBackup");
  const RunMetrics mux = Replay(multiplexed, "D-LSR");
  const RunMetrics ded = Replay(dedicated, "D-LSR");
  EXPECT_GT(CapacityOverheadPercent(base, ded),
            CapacityOverheadPercent(base, mux));
}

TEST(Experiment, BfReportsControlTraffic) {
  const SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kUniform, 0.3, 7);
  const RunMetrics bf = Replay(s, "BF");
  EXPECT_GT(bf.control_messages, 0);
  EXPECT_GT(bf.control_bytes, bf.control_messages * 24);
  const RunMetrics dlsr = Replay(s, "D-LSR");
  EXPECT_EQ(dlsr.control_messages, 0);  // link-state: periodic, not per-call
}

TEST(Experiment, StaleLsdbStillFunctions) {
  SmallSetup s = SmallSetup::Make(3.0, TrafficPattern::kUniform, 0.3, 8);
  s.config.lsdb_refresh_interval = 50.0;
  const RunMetrics m = Replay(s, "D-LSR");
  EXPECT_GT(m.admitted, 0);
  EXPECT_GE(m.pbk.value(), 0.0);
  EXPECT_LE(m.pbk.value(), 1.0);
}

TEST(Experiment, HigherLoadDegradesFaultTolerance) {
  const SmallSetup lo = SmallSetup::Make(3.0, TrafficPattern::kUniform, 0.2, 9);
  const SmallSetup hi =
      SmallSetup::Make(3.0, TrafficPattern::kUniform, 1.5, 9);
  const RunMetrics a = Replay(lo, "D-LSR");
  const RunMetrics b = Replay(hi, "D-LSR");
  EXPECT_GE(a.pbk.value(), b.pbk.value() - 0.02);
}

}  // namespace
}  // namespace drtp::sim
