// Cross-cutting property tests on random topologies and workloads:
//  - every BF candidate route satisfies the §4 CDP tests by construction,
//  - the what-if failure evaluator agrees with the enacted switchover
//    engine run on an identically rebuilt network,
//  - misc invariants (packet sizes, metrics helpers, log levels).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "drtp/baselines.h"
#include "drtp/bounded_flood.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/messages.h"
#include "drtp/network.h"
#include "net/generators.h"
#include "routing/distance_table.h"
#include "sim/metrics.h"

namespace drtp {
namespace {

/// Deterministically loads a network with `count` D-LSR-routed
/// connections; used to rebuild identical states for the what-if vs
/// enacted comparison.
void LoadNetwork(core::DrtpNetwork& net, lsdb::LinkStateDb& db, int count,
                 std::uint64_t seed) {
  core::Dlsr dlsr;
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(net.topology().num_nodes());
  for (ConnId id = 0; id < count; ++id) {
    const NodeId src = static_cast<NodeId>(rng.Index(n));
    NodeId dst = static_cast<NodeId>(rng.Index(n));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
    net.PublishTo(db, 0.0);
    const auto sel = dlsr.SelectRoutes(net, db, src, dst, Mbps(1));
    if (sel.primary &&
        net.EstablishConnection(id, *sel.primary, Mbps(1), 0.0)) {
      if (sel.backup) net.RegisterBackup(id, *sel.backup);
    }
  }
  net.PublishTo(db, 0.0);
}

// ---- BF candidates satisfy the CDP tests --------------------------------------

class FloodInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloodInvariants, CandidatesPassAllFourTests) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 40, .avg_degree = 3.5, .seed = seed});
  core::DrtpNetwork net(topo);
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  LoadNetwork(net, db, 120, seed * 3 + 1);

  const core::FloodConfig cfg{};  // paper operating point
  core::BoundedFlooding bf(topo, cfg);
  const routing::DistanceTable dt = routing::DistanceTable::Build(topo);
  Rng rng(seed * 7 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId src = static_cast<NodeId>(rng.Index(40));
    NodeId dst = static_cast<NodeId>(rng.Index(40));
    if (dst == src) dst = (dst + 1) % 40;
    const auto sel = bf.SelectRoutes(net, db, src, dst, Mbps(1));
    const int hc_limit = dt.MinHops(src, dst) + cfg.sigma;
    for (const auto* route : {sel.primary ? &*sel.primary : nullptr,
                              sel.backup ? &*sel.backup : nullptr}) {
      if (route == nullptr) continue;
      // Distance test: within the ellipse.
      EXPECT_LE(route->hops(), hc_limit);
      // Loop freedom.
      EXPECT_TRUE(route->IsSimple());
      // Bandwidth test: every link could host at least a backup.
      for (LinkId l : route->links()) {
        EXPECT_GE(net.ledger().total(l) - net.ledger().prime(l), Mbps(1));
      }
    }
    // Primary additionally passed the free-bandwidth test on every link.
    if (sel.primary) {
      for (LinkId l : sel.primary->links()) {
        EXPECT_GE(net.ledger().free(l), Mbps(1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodInvariants,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- what-if evaluator vs enacted switchover ----------------------------------

class WhatIfVsEnacted : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WhatIfVsEnacted, SingleFailureCountsAgree) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 30, .avg_degree = 3.0, .link_capacity = Mbps(8),
      .seed = seed});
  // Two identically-loaded networks (DrtpNetwork is move-only, so rebuild).
  core::DrtpNetwork what_if(topo);
  core::DrtpNetwork enacted(topo);
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  LoadNetwork(what_if, db, 150, seed + 100);
  LoadNetwork(enacted, db, 150, seed + 100);

  Rng rng(seed);
  for (int trial = 0; trial < 5; ++trial) {
    // Pick a loaded link on the *untouched* copy each round is too
    // stateful; evaluate the first failure only to keep the states equal.
    const LinkId victim = static_cast<LinkId>(
        rng.Index(static_cast<std::size_t>(topo.num_links())));
    const core::FailureImpact predicted =
        core::EvaluateLinkFailure(what_if, victim);
    if (trial == 0) {
      const core::SwitchoverReport actual =
          core::ApplyLinkFailure(enacted, victim, 1.0, nullptr, nullptr);
      EXPECT_EQ(predicted.attempts,
                static_cast<int>(actual.recovered.size() +
                                 actual.dropped.size()));
      EXPECT_EQ(predicted.activated,
                static_cast<int>(actual.recovered.size()));
      enacted.CheckConsistency();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhatIfVsEnacted,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- misc ---------------------------------------------------------------------

TEST(Messages, PacketBytesScaleWithLset) {
  core::BackupRegisterPacket small{
      .conn_id = 1, .bw = Mbps(1), .primary_lset = {1, 2}};
  core::BackupRegisterPacket big{
      .conn_id = 1, .bw = Mbps(1), .primary_lset = {1, 2, 3, 4, 5, 6}};
  EXPECT_EQ(PacketBytes(small), 16 + 8);
  EXPECT_EQ(PacketBytes(big), 16 + 24);
  core::BackupReleasePacket rel{
      .conn_id = 1, .bw = Mbps(1), .primary_lset = {1, 2}};
  EXPECT_EQ(PacketBytes(rel), PacketBytes(small));
}

TEST(Metrics, CapacityOverheadPercent) {
  sim::RunMetrics base;
  base.avg_active = 200.0;
  sim::RunMetrics scheme;
  scheme.avg_active = 150.0;
  EXPECT_DOUBLE_EQ(sim::CapacityOverheadPercent(base, scheme), 25.0);
  sim::RunMetrics empty;
  EXPECT_EQ(sim::CapacityOverheadPercent(empty, scheme), 0.0);
}

TEST(Metrics, EnactedRecoveryRatio) {
  sim::RunMetrics m;
  // No enacted failure hit a primary: "no evidence", not "all dropped".
  EXPECT_TRUE(std::isnan(m.EnactedRecoveryRatio()));
  m.failover_recovered = 9;
  m.failover_dropped = 1;
  EXPECT_DOUBLE_EQ(m.EnactedRecoveryRatio(), 0.9);
}

TEST(Table, NanRendersAsDashes) {
  TextTable t({"k", "v"});
  t.BeginRow();
  t.Cell(std::string("ratio"));
  t.Cell(std::numeric_limits<double>::quiet_NaN(), 4);
  EXPECT_NE(t.Render().find("--"), std::string::npos);
  EXPECT_EQ(t.Render().find("nan"), std::string::npos);
}

TEST(Metrics, AcceptanceRatio) {
  sim::RunMetrics m;
  EXPECT_EQ(m.AcceptanceRatio(), 0.0);
  m.requests = 10;
  m.admitted = 7;
  EXPECT_DOUBLE_EQ(m.AcceptanceRatio(), 0.7);
}

TEST(Log, LevelGateRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  DRTP_LOG_DEBUG << "suppressed";  // must not crash, goes nowhere
  SetLogLevel(before);
}

/// Baseline sanity across random graphs: conflict-aware D-LSR never does
/// materially worse than the information-free shortest-disjoint baseline
/// on the same deterministic load.
class SchemeOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchemeOrdering, DlsrAtLeastAsGoodAsShortestDisjoint) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 40, .avg_degree = 3.0, .link_capacity = Mbps(10),
      .seed = seed});
  const auto run = [&](core::RoutingScheme& scheme) {
    core::DrtpNetwork net(topo);
    lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
    Rng rng(seed + 1);
    const auto n = static_cast<std::size_t>(topo.num_nodes());
    for (ConnId id = 0; id < 250; ++id) {
      const NodeId src = static_cast<NodeId>(rng.Index(n));
      NodeId dst = static_cast<NodeId>(rng.Index(n));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      net.PublishTo(db, 0.0);
      const auto sel = scheme.SelectRoutes(net, db, src, dst, Mbps(1));
      if (sel.primary &&
          net.EstablishConnection(id, *sel.primary, Mbps(1), 0.0)) {
        if (sel.backup) net.RegisterBackup(id, *sel.backup);
      }
    }
    return core::EvaluateAllSingleLinkFailures(net).value();
  };
  core::Dlsr dlsr;
  core::ShortestDisjointBackup sd;
  EXPECT_GE(run(dlsr), run(sd) - 0.02) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeOrdering,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace drtp
