// Checkpoint journal, truncate-and-verify resume, sharding and merge.
//
// The crash tests simulate SIGKILL by chopping the on-disk files at
// arbitrary byte offsets — exactly what a killed process leaves behind,
// since both the sink and the journal are written one flushed line at a
// time. The recovery contract under test: resume after any chop point
// reproduces the uninterrupted run's bytes (modulo the wall_s field, the
// one nondeterministic value in a result line).
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/digest.h"
#include "common/error.h"
#include "runner/checkpoint.h"
#include "runner/sink.h"
#include "runner/sweep.h"

namespace drtp::runner {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under the system temp dir.
std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() / "drtp_checkpoint_test" /
                 (std::string(info->test_suite_name()) + "." + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
  ASSERT_TRUE(os.good()) << path;
}

// Removes every `"wall_s":<value>,` — the only field that differs
// between two runs of the same cell (same convention as the CI byte
// comparisons).
std::string StripWall(std::string s) {
  static constexpr std::string_view kKey = "\"wall_s\":";
  for (std::size_t pos; (pos = s.find(kKey)) != std::string::npos;) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      ADD_FAILURE() << "wall_s is not comma-terminated in: " << s;
      break;
    }
    s.erase(pos, comma - pos + 1);
  }
  return s;
}

SweepSpec TinySpec() {
  SweepSpec spec;
  spec.seeds = {7};
  spec.degrees = {3.0};
  spec.patterns = {sim::TrafficPattern::kUniform};
  spec.lambdas = {0.4, 0.6};
  spec.schemes = {"D-LSR", "BF"};
  spec.duration = 400.0;
  return spec;
}

CheckpointHeader HeaderFor(const SweepSpec& spec,
                           ShardAssignment shard = {}) {
  CheckpointHeader h;
  h.spec_digest = SpecDigest(spec);
  h.num_cells = spec.NumCells();
  h.shard = shard;
  return h;
}

// Runs `spec` (optionally narrowed to `only`) into a journaled sink at
// `sink_path`, the way drtpsweep wires a fresh checkpointed run.
void RunJournaled(const SweepSpec& spec, const std::string& sink_path,
                  ShardAssignment shard = {},
                  std::optional<std::vector<std::size_t>> only = {}) {
  SweepEngine engine(spec);
  CheckpointJournal journal(JournalPathFor(sink_path), /*append=*/false);
  journal.WriteHeader(HeaderFor(spec, shard));
  JsonlSink sink(sink_path, /*append=*/false);
  sink.AttachJournal(&journal);
  SweepEngine::RunOptions ro;
  ro.sinks = {&sink};
  ro.only = std::move(only);
  engine.Run(ro);
}

// Recovers `sink_path` and reruns whatever cells the journal lacks,
// the way drtpsweep --resume does.
void ResumeJournaled(const SweepSpec& spec, const std::string& sink_path,
                     ShardAssignment shard = {}) {
  const CheckpointHeader expected = HeaderFor(spec, shard);
  const RecoveredCheckpoint rec = RecoverCheckpoint(sink_path, expected);
  CheckpointJournal journal(JournalPathFor(sink_path),
                            /*append=*/!rec.fresh);
  if (rec.fresh) journal.WriteHeader(expected);
  JsonlSink sink(sink_path, /*append=*/true);
  sink.AttachJournal(&journal);
  std::vector<std::size_t> todo;
  for (std::size_t k = 0; k < spec.NumCells(); ++k) {
    if (shard.Owns(k) && !rec.Done(k)) todo.push_back(k);
  }
  SweepEngine engine(spec);
  SweepEngine::RunOptions ro;
  ro.sinks = {&sink};
  ro.only = std::move(todo);
  engine.Run(ro);
}

// ---- shard parsing and paths ---------------------------------------------

TEST(ShardParse, AcceptsWellFormed) {
  const ShardAssignment s = ParseShard("2/4");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.num_shards, 4u);
  EXPECT_TRUE(s.Owns(2));
  EXPECT_TRUE(s.Owns(6));
  EXPECT_FALSE(s.Owns(3));
}

TEST(ShardParse, RejectsMalformed) {
  EXPECT_THROW(ParseShard(""), ParseError);
  EXPECT_THROW(ParseShard("3/2"), ParseError);    // index >= count
  EXPECT_THROW(ParseShard("4/4"), ParseError);
  EXPECT_THROW(ParseShard("2/0"), ParseError);
  EXPECT_THROW(ParseShard("x/4"), ParseError);
  EXPECT_THROW(ParseShard("2/"), ParseError);
  EXPECT_THROW(ParseShard("/4"), ParseError);
  EXPECT_THROW(ParseShard("2/4x"), ParseError);
  EXPECT_THROW(ParseShard("-1/4"), ParseError);
  EXPECT_THROW(ParseShard("1/99999999"), ParseError);  // implausible N
}

TEST(ShardedPathTest, InsertsBeforeFinalExtension) {
  const ShardAssignment two{1, 2};
  EXPECT_EQ(ShardedPath("out.jsonl", two), "out.shard-1.jsonl");
  EXPECT_EQ(ShardedPath("dir/run.out.jsonl", two), "dir/run.out.shard-1.jsonl");
  EXPECT_EQ(ShardedPath("out", two), "out.shard-1");
  EXPECT_EQ(ShardedPath("out.jsonl", ShardAssignment{}), "out.jsonl");
}

TEST(SpecDigestTest, StableAndSensitive) {
  const SweepSpec a = TinySpec();
  const SweepSpec b = TinySpec();
  EXPECT_EQ(SpecDigest(a), SpecDigest(b));
  EXPECT_EQ(SpecDigest(a).size(), 16u);

  SweepSpec changed = TinySpec();
  changed.lambdas = {0.4, 0.7};
  EXPECT_NE(SpecDigest(a), SpecDigest(changed));
  changed = TinySpec();
  changed.seeds = {8};
  EXPECT_NE(SpecDigest(a), SpecDigest(changed));
  changed = TinySpec();
  changed.audit = true;
  EXPECT_NE(SpecDigest(a), SpecDigest(changed));
  changed = TinySpec();
  changed.failures = 1;
  EXPECT_NE(SpecDigest(a), SpecDigest(changed));
}

TEST(SpecDigestTest, WaxmanDigestUnchangedByHierFields) {
  // Historical waxman journals must keep verifying: the hierarchical
  // topology knobs enter the digest only when the model is selected, so
  // a default-model spec digests identically whatever `hier` holds.
  const SweepSpec a = TinySpec();
  SweepSpec b = TinySpec();
  b.hier.backbone = 99;
  b.hier.metro_per_pop = 5;
  EXPECT_EQ(SpecDigest(a), SpecDigest(b));

  SweepSpec hier = TinySpec();
  hier.topo_model = "hier";
  EXPECT_NE(SpecDigest(a), SpecDigest(hier));
  // ...and once selected, the knobs are load-bearing.
  SweepSpec hier2 = hier;
  hier2.hier.metro_per_pop += 1;
  EXPECT_NE(SpecDigest(hier), SpecDigest(hier2));
}

// ---- journal recovery on synthetic files ---------------------------------

// Builds a sink file from `lines` (newline appended to each) plus a
// journal that vouches for all of them.
void WriteSyntheticPair(const std::string& sink_path,
                        const CheckpointHeader& header,
                        const std::vector<std::string>& lines) {
  std::string sink;
  CheckpointJournal journal(JournalPathFor(sink_path), /*append=*/false);
  journal.WriteHeader(header);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string line = lines[i] + "\n";
    sink += line;
    CheckpointEntry e;
    e.cell = i;
    e.cell_seed = 100 + i;
    e.digest = Fnv1a(line);
    journal.Append(e);
  }
  WriteFile(sink_path, sink);
}

TEST(RecoverCheckpointTest, VerifiedPairRoundTrips) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 3, .shard = {}};
  WriteSyntheticPair(sink, header, {"alpha", "beta", "gamma"});

  const RecoveredCheckpoint rec = RecoverCheckpoint(sink, header);
  EXPECT_FALSE(rec.fresh);
  ASSERT_EQ(rec.entries.size(), 3u);
  EXPECT_EQ(rec.entries[1].cell, 1u);
  EXPECT_EQ(rec.entries[1].cell_seed, 101u);
  EXPECT_TRUE(rec.Done(0));
  EXPECT_TRUE(rec.Done(2));
  EXPECT_EQ(rec.sink_bytes, ReadFile(sink).size());
  EXPECT_EQ(ReadFile(sink), "alpha\nbeta\ngamma\n");
}

TEST(RecoverCheckpointTest, DropsUnjournaledTrailingLine) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 4, .shard = {}};
  WriteSyntheticPair(sink, header, {"alpha", "beta"});
  // A third line landed but the process died before journaling it.
  WriteFile(sink, ReadFile(sink) + "gamma\n");

  const RecoveredCheckpoint rec = RecoverCheckpoint(sink, header);
  EXPECT_EQ(rec.entries.size(), 2u);
  EXPECT_FALSE(rec.Done(2));
  EXPECT_EQ(ReadFile(sink), "alpha\nbeta\n");
}

TEST(RecoverCheckpointTest, DropsTornTailsOfBothFiles) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 4, .shard = {}};
  WriteSyntheticPair(sink, header, {"alpha", "beta", "gamma"});
  // Chop mid-way through the last sink line AND the last journal line.
  const std::string sink_bytes = ReadFile(sink);
  WriteFile(sink, sink_bytes.substr(0, sink_bytes.size() - 3));
  const std::string journal = JournalPathFor(sink);
  const std::string journal_bytes = ReadFile(journal);
  WriteFile(journal, journal_bytes.substr(0, journal_bytes.size() - 5));

  const RecoveredCheckpoint rec = RecoverCheckpoint(sink, header);
  EXPECT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(ReadFile(sink), "alpha\nbeta\n");
  // Recovery is idempotent: the truncated pair verifies cleanly.
  const RecoveredCheckpoint again = RecoverCheckpoint(sink, header);
  EXPECT_EQ(again.entries.size(), 2u);
}

TEST(RecoverCheckpointTest, StopsAtFirstDigestMismatch) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 3, .shard = {}};
  WriteSyntheticPair(sink, header, {"alpha", "beta", "gamma"});
  WriteFile(sink, "alpha\nbetA\ngamma\n");  // tamper line 2

  const RecoveredCheckpoint rec = RecoverCheckpoint(sink, header);
  EXPECT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(ReadFile(sink), "alpha\n");
}

TEST(RecoverCheckpointTest, MissingJournalResetsSink) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  WriteFile(sink, "stale bytes nobody can vouch for\n");
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 2, .shard = {}};

  const RecoveredCheckpoint rec = RecoverCheckpoint(sink, header);
  EXPECT_TRUE(rec.fresh);
  EXPECT_TRUE(rec.entries.empty());
  EXPECT_EQ(ReadFile(sink), "");
}

TEST(RecoverCheckpointTest, RefusesForeignJournal) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  CheckpointHeader header{.spec_digest = "00000000deadbeef", .num_cells = 3, .shard = {}};
  WriteSyntheticPair(sink, header, {"alpha"});

  CheckpointHeader other = header;
  other.spec_digest = "00000000cafef00d";
  EXPECT_THROW(RecoverCheckpoint(sink, other), ParseError);

  other = header;
  other.num_cells = 5;
  EXPECT_THROW(RecoverCheckpoint(sink, other), ParseError);

  other = header;
  other.shard = ShardAssignment{1, 2};
  EXPECT_THROW(RecoverCheckpoint(sink, other), ParseError);
}

TEST(CheckpointJournalTest, EntryJsonCarriesAuditPayload) {
  CheckpointEntry e;
  e.cell = 3;
  e.cell_seed = 42;
  e.digest = 0xabcdef;
  e.audit_checks = 5;
  e.audit_violations = 1;
  e.audit_jsonl = "{\"schema\":\"drtp.audit/1\"}\n";
  const std::string line = CheckpointEntryToJson(e);
  EXPECT_NE(line.find("\"cell\":3"), std::string::npos) << line;
  EXPECT_NE(line.find(DigestHex(e.digest)), std::string::npos) << line;
  EXPECT_NE(line.find("drtp.audit/1"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "journal lines are flat";
}

// ---- crash-append semantics on a real sweep ------------------------------

// The satellite-mandated chop test: write a journaled sweep, then chop
// the sink at EVERY byte offset of the last line (simulating a SIGKILL
// mid-write), resume, and demand the uninterrupted bytes back.
TEST(CrashResumeTest, ChopSinkAtEveryByteOffsetOfLastLine) {
  const std::string dir = TestDir();
  const SweepSpec spec = TinySpec();
  const std::string golden_path = dir + "/golden.jsonl";
  RunJournaled(spec, golden_path);
  const std::string golden = ReadFile(golden_path);
  const std::string golden_journal = ReadFile(JournalPathFor(golden_path));
  ASSERT_GT(golden.size(), 2u);
  ASSERT_EQ(golden.back(), '\n');

  const std::size_t last_start = golden.rfind('\n', golden.size() - 2) + 1;
  ASSERT_LT(last_start, golden.size());
  const std::string sink = dir + "/chopped.jsonl";
  for (std::size_t cut = last_start; cut <= golden.size(); ++cut) {
    WriteFile(sink, golden.substr(0, cut));
    WriteFile(JournalPathFor(sink), golden_journal);
    ResumeJournaled(spec, sink);
    EXPECT_EQ(StripWall(ReadFile(sink)), StripWall(golden)) << "cut " << cut;
    // The resumed pair must itself verify end-to-end.
    const RecoveredCheckpoint rec =
        RecoverCheckpoint(sink, HeaderFor(spec));
    EXPECT_EQ(rec.entries.size(), spec.NumCells()) << "cut " << cut;
  }
}

TEST(CrashResumeTest, ResumeOfCompleteRunIsNoOp) {
  const std::string dir = TestDir();
  const SweepSpec spec = TinySpec();
  const std::string sink = dir + "/out.jsonl";
  RunJournaled(spec, sink);
  const std::string before = ReadFile(sink);
  const std::string journal_before = ReadFile(JournalPathFor(sink));

  ResumeJournaled(spec, sink);
  // Nothing reran, so the bytes — wall_s included — are untouched.
  EXPECT_EQ(ReadFile(sink), before);
  EXPECT_EQ(ReadFile(JournalPathFor(sink)), journal_before);
}

TEST(CrashResumeTest, ResumeRefusesChangedSpec) {
  const std::string dir = TestDir();
  const std::string sink = dir + "/out.jsonl";
  RunJournaled(TinySpec(), sink);
  SweepSpec changed = TinySpec();
  changed.lambdas = {0.5};
  EXPECT_THROW(RecoverCheckpoint(sink, HeaderFor(changed)), ParseError);
}

// ---- sharding and merge --------------------------------------------------

TEST(MergeShardsTest, ReassemblesCanonicalOrder) {
  const std::string dir = TestDir();
  const SweepSpec spec = TinySpec();
  const std::string golden_path = dir + "/golden.jsonl";
  RunJournaled(spec, golden_path);

  const std::string base = dir + "/out.jsonl";
  std::vector<std::string> shard_paths;
  for (std::size_t i = 0; i < 2; ++i) {
    const ShardAssignment shard{i, 2};
    std::vector<std::size_t> owned;
    for (std::size_t k = 0; k < spec.NumCells(); ++k) {
      if (shard.Owns(k)) owned.push_back(k);
    }
    const std::string path = ShardedPath(base, shard);
    RunJournaled(spec, path, shard, owned);
    shard_paths.push_back(path);
  }

  const MergeReport report = MergeShards(shard_paths, base, "");
  EXPECT_EQ(report.shards, 2u);
  EXPECT_EQ(report.cells, spec.NumCells());
  EXPECT_EQ(StripWall(ReadFile(base)), StripWall(ReadFile(golden_path)));
  // The merged pair verifies and resumes like a native 1-process run.
  const RecoveredCheckpoint rec = RecoverCheckpoint(base, HeaderFor(spec));
  EXPECT_EQ(rec.entries.size(), spec.NumCells());
}

TEST(MergeShardsTest, RefusesIncompleteOrDuplicateShardSets) {
  const std::string dir = TestDir();
  const SweepSpec spec = TinySpec();
  const std::string base = dir + "/out.jsonl";
  std::vector<std::string> shard_paths;
  for (std::size_t i = 0; i < 2; ++i) {
    const ShardAssignment shard{i, 2};
    std::vector<std::size_t> owned;
    for (std::size_t k = 0; k < spec.NumCells(); ++k) {
      if (shard.Owns(k)) owned.push_back(k);
    }
    const std::string path = ShardedPath(base, shard);
    RunJournaled(spec, path, shard, owned);
    shard_paths.push_back(path);
  }

  EXPECT_THROW(MergeShards({shard_paths[0]}, dir + "/m.jsonl", ""),
               ParseError);
  EXPECT_THROW(
      MergeShards({shard_paths[0], shard_paths[0]}, dir + "/m.jsonl", ""),
      ParseError);
}

TEST(MergeShardsTest, RefusesMismatchedSpecsAndTamperedLines) {
  const std::string dir = TestDir();
  const SweepSpec spec = TinySpec();
  const std::string base = dir + "/out.jsonl";
  for (std::size_t i = 0; i < 2; ++i) {
    const ShardAssignment shard{i, 2};
    std::vector<std::size_t> owned;
    for (std::size_t k = 0; k < spec.NumCells(); ++k) {
      if (shard.Owns(k)) owned.push_back(k);
    }
    RunJournaled(spec, ShardedPath(base, shard), shard, owned);
  }
  const std::string s0 = ShardedPath(base, {0, 2});
  const std::string s1 = ShardedPath(base, {1, 2});

  // Tamper one result byte in shard 1: its journaled digest must catch it.
  std::string bytes = ReadFile(s1);
  bytes[bytes.size() / 2] ^= 0x20;
  WriteFile(s1, bytes);
  EXPECT_THROW(MergeShards({s0, s1}, dir + "/m.jsonl", ""), ParseError);

  // Rebuild shard 1 from a different spec: spec digests disagree.
  SweepSpec other = TinySpec();
  other.lambdas = {0.5, 0.9};
  std::vector<std::size_t> owned;
  const ShardAssignment shard1{1, 2};
  for (std::size_t k = 0; k < other.NumCells(); ++k) {
    if (shard1.Owns(k)) owned.push_back(k);
  }
  RunJournaled(other, s1, shard1, owned);
  EXPECT_THROW(MergeShards({s0, s1}, dir + "/m.jsonl", ""), ParseError);
}

// ---- RunOptions::only ----------------------------------------------------

TEST(SweepEngineOnly, RunsExactlyTheSelectionInGridOrder) {
  SweepEngine engine(TinySpec());
  SweepEngine::RunOptions ro;
  ro.only = std::vector<std::size_t>{2, 0};
  const std::vector<CellResult> results = engine.Run(ro);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].cell.index, 0u);
  EXPECT_EQ(results[1].cell.index, 2u);

  SweepEngine::RunOptions none;
  none.only = std::vector<std::size_t>{};
  EXPECT_TRUE(engine.Run(none).empty());
}

TEST(SweepEngineOnly, RejectsDuplicatesAndOutOfRange) {
  SweepEngine engine(TinySpec());
  SweepEngine::RunOptions dup;
  dup.only = std::vector<std::size_t>{1, 1};
  EXPECT_THROW(engine.Run(dup), CheckError);
  SweepEngine::RunOptions oob;
  oob.only = std::vector<std::size_t>{99};
  EXPECT_THROW(engine.Run(oob), CheckError);
}

// The selection must yield bit-identical cells to a full-grid run: same
// seeds, same shared caches, no order dependence.
TEST(SweepEngineOnly, SelectedCellsMatchFullRun) {
  SweepEngine full(TinySpec());
  const std::vector<CellResult> all = full.Run({});
  SweepEngine narrow(TinySpec());
  SweepEngine::RunOptions ro;
  ro.only = std::vector<std::size_t>{1, 3};
  const std::vector<CellResult> some = narrow.Run(ro);
  ASSERT_EQ(all.size(), 4u);
  ASSERT_EQ(some.size(), 2u);
  EXPECT_EQ(StripWall(CellResultToJson(some[0])),
            StripWall(CellResultToJson(all[1])));
  EXPECT_EQ(StripWall(CellResultToJson(some[1])),
            StripWall(CellResultToJson(all[3])));
}

}  // namespace
}  // namespace drtp::runner
