// Tests for P-LSR, D-LSR and the baselines on crafted topologies,
// including the paper's §3.2/Fig. 3 behaviour: D-LSR prefers a longer
// conflict-free backup over a shorter conflicting one.
#include <gtest/gtest.h>

#include "common/check.h"
#include "drtp/baselines.h"
#include "drtp/dlsr.h"
#include "drtp/network.h"
#include "drtp/plsr.h"
#include "routing/dijkstra.h"

#include "net/generators.h"

namespace drtp::core {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

/// Fixture owning a network + instantly-refreshed LSDB.
class SchemeFixture {
 public:
  explicit SchemeFixture(net::Topology topo)
      : net_(std::move(topo)),
        db_(net_.topology().num_links(), net_.topology().num_links()) {
    Refresh();
  }

  void Refresh() { net_.PublishTo(db_, 0.0); }

  /// Runs scheme selection and, on success, installs the connection.
  RouteSelection Admit(RoutingScheme& scheme, ConnId id, NodeId src,
                       NodeId dst, Bandwidth bw = Mbps(1)) {
    RouteSelection sel = scheme.SelectRoutes(net_, db_, src, dst, bw);
    if (sel.primary.has_value()) {
      DRTP_CHECK(net_.EstablishConnection(id, *sel.primary, bw, 0.0));
      if (scheme.wants_backup() && sel.backup.has_value()) {
        net_.RegisterBackup(id, *sel.backup);
      }
      Refresh();
    }
    return sel;
  }

  DrtpNetwork net_;
  lsdb::LinkStateDb db_;
};

TEST(LsrPrimary, PicksMinHopWithBandwidth) {
  SchemeFixture f(net::MakeGrid(3, 3, Mbps(10)));
  Dlsr dlsr;
  const auto sel = f.Admit(dlsr, 1, 0, 2);
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_EQ(sel.primary->hops(), 2);  // 0-1-2 straight line
}

TEST(LsrPrimary, AvoidsBandwidthShortLinks) {
  SchemeFixture f(net::MakeGrid(3, 3, Mbps(2)));
  Dlsr dlsr;
  // Consume 0->1 entirely.
  ASSERT_TRUE(f.net_.EstablishConnection(
      99, NodePath(f.net_.topology(), {0, 1}), Mbps(2), 0.0));
  f.Refresh();
  const auto sel = dlsr.SelectRoutes(f.net_, f.db_, 0, 2, Mbps(1));
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_FALSE(sel.primary->Contains(f.net_.topology().FindLink(0, 1)));
}

TEST(LsrPrimary, BlockedWhenNoBandwidthAnywhere) {
  SchemeFixture f(net::MakeRing(4, Mbps(1)));
  Plsr plsr;
  // Saturate both directions around the ring out of node 0.
  ASSERT_TRUE(f.net_.EstablishConnection(
      90, NodePath(f.net_.topology(), {0, 1}), Mbps(1), 0.0));
  ASSERT_TRUE(f.net_.EstablishConnection(
      91, NodePath(f.net_.topology(), {0, 3}), Mbps(1), 0.0));
  f.Refresh();
  const auto sel = plsr.SelectRoutes(f.net_, f.db_, 0, 2, Mbps(1));
  EXPECT_FALSE(sel.primary.has_value());
  EXPECT_FALSE(sel.backup.has_value());
}

TEST(LsrBackup, DisjointFromPrimaryWhenPossible) {
  for (const bool deterministic : {false, true}) {
    SchemeFixture f(net::MakeRing(6, Mbps(10)));
    std::unique_ptr<RoutingScheme> scheme;
    if (deterministic) {
      scheme = std::make_unique<Dlsr>();
    } else {
      scheme = std::make_unique<Plsr>();
    }
    const auto sel = f.Admit(*scheme, 1, 0, 2);
    ASSERT_TRUE(sel.primary.has_value());
    ASSERT_TRUE(sel.backup.has_value());
    EXPECT_EQ(sel.primary->hops(), 2);   // 0-1-2
    EXPECT_EQ(sel.backup->hops(), 4);    // 0-5-4-3-2
    EXPECT_TRUE(sel.primary->LinkDisjoint(*sel.backup));
  }
}

TEST(LsrBackup, SharesPrimaryLinkOnlyWhenForced) {
  // Star: every route between two leaves must cross the hub links; the
  // backup necessarily overlaps the primary (penalized, not rejected).
  SchemeFixture f(net::MakeStar(4, Mbps(10)));
  Dlsr dlsr;
  const auto sel = f.Admit(dlsr, 1, 1, 2);
  ASSERT_TRUE(sel.primary.has_value());
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_EQ(sel.backup->OverlapCount(*sel.primary), 2);
}

/// The Fig. 1/Fig. 3 situation, rebuilt on a parallel-path topology:
/// connections a and c share a primary link; their backups must not share
/// a link even if a conflict-free backup is longer.
TEST(DlsrBehaviour, AvoidsConflictingBackupLikeFigure3) {
  // Topology: s -> m -> t is the shared primary corridor; three relay
  // detours r0,r1,r2 of increasing length connect s to t.
  net::Topology topo;
  const NodeId s = topo.AddNode(0, 0);
  const NodeId m = topo.AddNode(1, 0);
  const NodeId t = topo.AddNode(2, 0);
  const NodeId r0 = topo.AddNode(1, 1);   // short detour
  const NodeId r1 = topo.AddNode(0.7, 2); // long detour, hop 1
  const NodeId r2 = topo.AddNode(1.3, 2); // long detour, hop 2
  topo.AddDuplexLink(s, m, Mbps(10));
  topo.AddDuplexLink(m, t, Mbps(10));
  topo.AddDuplexLink(s, r0, Mbps(10));
  topo.AddDuplexLink(r0, t, Mbps(10));
  topo.AddDuplexLink(s, r1, Mbps(10));
  topo.AddDuplexLink(r1, r2, Mbps(10));
  topo.AddDuplexLink(r2, t, Mbps(10));
  SchemeFixture f(std::move(topo));

  Dlsr dlsr;
  // Connection a: primary s-m-t, backup should take the short detour.
  const auto a = f.Admit(dlsr, 1, s, t);
  ASSERT_TRUE(a.backup.has_value());
  EXPECT_TRUE(a.backup->VisitsNode(r0));

  // Connection c: same primary corridor. Its backup through r0 would
  // conflict with a's backup (both primaries share s->m and m->t), so
  // D-LSR must pay the longer r1-r2 detour.
  const auto c = f.Admit(dlsr, 2, s, t);
  ASSERT_TRUE(c.primary.has_value());
  ASSERT_TRUE(c.backup.has_value());
  EXPECT_EQ(c.primary->hops(), 2);
  EXPECT_TRUE(c.backup->VisitsNode(r1)) << "expected the conflict-free detour";
  EXPECT_EQ(c.backup->hops(), 3);
}

/// P-LSR sees only ||APLV||_1, so in the same situation it also avoids the
/// loaded detour (the L1 norm flags it) — the schemes differ only when the
/// norm cannot distinguish *which* primary links conflict.
TEST(PlsrBehaviour, L1NormSteersAwayFromLoadedLinks) {
  net::Topology topo;
  const NodeId s = topo.AddNode();
  const NodeId m = topo.AddNode();
  const NodeId t = topo.AddNode();
  const NodeId r0 = topo.AddNode();
  const NodeId r1 = topo.AddNode();
  const NodeId r2 = topo.AddNode();
  topo.AddDuplexLink(s, m, Mbps(10));
  topo.AddDuplexLink(m, t, Mbps(10));
  topo.AddDuplexLink(s, r0, Mbps(10));
  topo.AddDuplexLink(r0, t, Mbps(10));
  topo.AddDuplexLink(s, r1, Mbps(10));
  topo.AddDuplexLink(r1, r2, Mbps(10));
  topo.AddDuplexLink(r2, t, Mbps(10));
  SchemeFixture f(std::move(topo));

  Plsr plsr;
  const auto a = f.Admit(plsr, 1, s, t);
  ASSERT_TRUE(a.backup.has_value());
  EXPECT_TRUE(a.backup->VisitsNode(r0));
  const auto c = f.Admit(plsr, 2, s, t);
  ASSERT_TRUE(c.backup.has_value());
  EXPECT_TRUE(c.backup->VisitsNode(r1));
}

/// Where P-LSR and D-LSR genuinely differ (§6.2): a link loaded with
/// backups whose primaries are *elsewhere* repels P-LSR (large L1) but not
/// D-LSR (no CV bit matches the new primary).
TEST(SchemeContrast, DlsrIgnoresIrrelevantConflicts) {
  net::Topology topo;
  const NodeId s = topo.AddNode();
  const NodeId m = topo.AddNode();
  const NodeId t = topo.AddNode();
  const NodeId r0 = topo.AddNode();
  const NodeId r1 = topo.AddNode();
  const NodeId r2 = topo.AddNode();
  const NodeId u = topo.AddNode();  // far-away endpoints for filler conns
  const NodeId v = topo.AddNode();
  topo.AddDuplexLink(s, m, Mbps(10));
  topo.AddDuplexLink(m, t, Mbps(10));
  topo.AddDuplexLink(s, r0, Mbps(10));
  topo.AddDuplexLink(r0, t, Mbps(10));
  topo.AddDuplexLink(s, r1, Mbps(10));
  topo.AddDuplexLink(r1, r2, Mbps(10));
  topo.AddDuplexLink(r2, t, Mbps(10));
  topo.AddDuplexLink(u, s, Mbps(10));
  topo.AddDuplexLink(u, r0, Mbps(10));  // u's backup rides the r0 detour
  topo.AddDuplexLink(t, v, Mbps(10));
  SchemeFixture f(std::move(topo));

  // Filler: a u->v connection whose backup rides the short detour links;
  // its primary is disjoint from the s-m-t corridor, so the APLV mass it
  // deposits on the detour is *irrelevant* to a new s->t connection.
  const auto p_uv = NodePath(f.net_.topology(), {u, s, r1, r2, t, v});
  ASSERT_TRUE(f.net_.EstablishConnection(51, p_uv, Mbps(1), 0.0));
  f.net_.RegisterBackup(51, NodePath(f.net_.topology(), {u, r0, t, v}));
  f.Refresh();

  // New connection s->t, primary s-m-t (disjoint from p_uv? p_uv uses
  // s->r1 and r2->t but not s->m / m->t — disjoint). D-LSR: r0 detour has
  // no conflicting bit -> picks short detour. P-LSR: r0 detour carries L1
  // mass -> flees to... the r1 detour, which p_uv's primary occupies; its
  // links have zero APLV but using them is fine for P-LSR too. The
  // observable contrast: D-LSR takes r0, P-LSR does not.
  Dlsr dlsr;
  const auto d = dlsr.SelectRoutes(f.net_, f.db_, s, t, Mbps(1));
  ASSERT_TRUE(d.backup.has_value());
  EXPECT_TRUE(d.backup->VisitsNode(r0));

  Plsr plsr;
  const auto p = plsr.SelectRoutes(f.net_, f.db_, s, t, Mbps(1));
  ASSERT_TRUE(p.backup.has_value());
  EXPECT_FALSE(p.backup->VisitsNode(r0));
}

TEST(Baselines, NoBackupNeverProtects) {
  SchemeFixture f(net::MakeGrid(3, 3, Mbps(10)));
  NoBackup nb;
  EXPECT_FALSE(nb.wants_backup());
  const auto sel = f.Admit(nb, 1, 0, 8);
  ASSERT_TRUE(sel.primary.has_value());
  EXPECT_FALSE(sel.backup.has_value());
  EXPECT_EQ(f.net_.ledger().TotalSpare(), 0);
}

TEST(Baselines, RandomBackupRespectsDisqualifiers) {
  SchemeFixture f(net::MakeRing(6, Mbps(10)));
  RandomBackup rb(7);
  const auto sel = f.Admit(rb, 1, 0, 3);
  ASSERT_TRUE(sel.primary.has_value());
  ASSERT_TRUE(sel.backup.has_value());
  // Ring: the only disjoint alternative is the other way around.
  EXPECT_TRUE(sel.primary->LinkDisjoint(*sel.backup));
}

TEST(Baselines, ShortestDisjointPrefersShortRoutes) {
  SchemeFixture f(net::MakeGrid(3, 3, Mbps(10)));
  ShortestDisjointBackup sd;
  const auto sel = f.Admit(sd, 1, 0, 2);
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_TRUE(sel.primary->LinkDisjoint(*sel.backup));
  EXPECT_EQ(sel.backup->hops(), 4);  // 0-3-4-5-2 or 0-1-4-5-2 style detour
}

TEST(SelectBackupFor, ReroutesAfterFailover) {
  SchemeFixture f(net::MakeRing(6, Mbps(10)));
  Dlsr dlsr;
  const auto sel = f.Admit(dlsr, 1, 0, 2);
  ASSERT_TRUE(f.net_.ActivateBackup(1, 1.0));
  f.Refresh();
  const DrConnection* conn = f.net_.Find(1);
  ASSERT_NE(conn, nullptr);
  const auto re = dlsr.SelectBackupFor(f.net_, f.db_, conn->primary, Mbps(1));
  ASSERT_TRUE(re.has_value());
  EXPECT_TRUE(re->LinkDisjoint(conn->primary));
  (void)sel;
}

}  // namespace
}  // namespace drtp::core
