// Tests for the trace subsystem and for invariants under combined
// connection churn and link failures/repairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "net/generators.h"
#include "sim/experiment.h"
#include "sim/paper.h"
#include "sim/trace.h"

namespace drtp::sim {
namespace {

Scenario SmallScenario(const net::Topology& topo, int failures,
                       std::uint64_t seed) {
  TrafficConfig tc = MakePaperTraffic(TrafficPattern::kUniform, 0.4, seed);
  tc.duration = 1200.0;
  tc.lifetime_min = 200.0;
  tc.lifetime_max = 500.0;
  Scenario sc = Scenario::Generate(topo, tc);
  if (failures > 0) {
    InjectLinkFailures(sc, topo, failures, 400.0, 1100.0, 150.0, seed + 5);
  }
  return sc;
}

TEST(Trace, TextSinkRecordsEveryEventKind) {
  const net::Topology topo = MakePaperTopology(3.0, 30);
  const Scenario sc = SmallScenario(topo, 6, 31);
  std::ostringstream os;
  TextTraceSink sink(os);
  ExperimentConfig ec;
  ec.warmup = 400.0;
  ec.sample_interval = 100.0;
  ec.trace = &sink;
  core::Dlsr dlsr;
  const RunMetrics m = RunScenario(topo, sc, dlsr, ec);

  const std::string text = os.str();
  EXPECT_GT(sink.lines_written(), 0);
  EXPECT_NE(text.find(" + conn "), std::string::npos);
  EXPECT_NE(text.find(" - conn "), std::string::npos);
  EXPECT_NE(text.find(" ! link "), std::string::npos);
  EXPECT_NE(text.find(" ~ link "), std::string::npos);
  EXPECT_NE(text.find(" primary "), std::string::npos);
  EXPECT_NE(text.find(" backup "), std::string::npos);
  (void)m;
}

TEST(Trace, CountsMatchMetrics) {
  const net::Topology topo = MakePaperTopology(3.0, 32);
  const Scenario sc = SmallScenario(topo, 4, 33);
  CountingTraceSink counts;
  ExperimentConfig ec;
  ec.warmup = 400.0;
  ec.sample_interval = 100.0;
  ec.trace = &counts;
  core::Dlsr dlsr;
  const RunMetrics m = RunScenario(topo, sc, dlsr, ec);

  EXPECT_EQ(counts.admits, m.admitted);
  EXPECT_EQ(counts.blocks, m.blocked);
  EXPECT_EQ(counts.fails, m.failures_enacted);
  // Every admitted connection either released normally or was dropped by
  // a failure.
  EXPECT_EQ(counts.releases + m.failover_dropped, m.admitted);
  EXPECT_LE(counts.repairs, counts.fails);
}

TEST(Trace, DisabledByDefault) {
  const net::Topology topo = MakePaperTopology(3.0, 34);
  const Scenario sc = SmallScenario(topo, 0, 35);
  ExperimentConfig ec;
  ec.warmup = 400.0;
  ec.sample_interval = 100.0;
  core::Dlsr dlsr;
  const RunMetrics m = RunScenario(topo, sc, dlsr, ec);  // must not crash
  EXPECT_GT(m.admitted, 0);
}

/// Property: random interleaving of churn, failures and repairs keeps
/// every DrtpNetwork invariant, and the network drains cleanly.
class ChurnWithFailures : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnWithFailures, InvariantsHold) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 24, .avg_degree = 3.5, .link_capacity = Mbps(6),
      .seed = seed});
  core::DrtpNetwork net(topo);
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  core::Dlsr dlsr;
  Rng rng(seed * 7 + 2);
  std::vector<ConnId> active;
  ConnId next_id = 0;
  int failures = 0;

  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 4) {  // admit
      const NodeId src = static_cast<NodeId>(rng.Index(24));
      NodeId dst = static_cast<NodeId>(rng.Index(24));
      if (src == dst) continue;
      net.PublishTo(db, step);
      const auto sel = dlsr.SelectRoutes(net, db, src, dst, Mbps(1));
      if (sel.primary &&
          net.EstablishConnection(next_id, *sel.primary, Mbps(1), step)) {
        if (sel.backup) net.RegisterBackup(next_id, *sel.backup);
        active.push_back(next_id);
        ++next_id;
      }
    } else if (op <= 6 && !active.empty()) {  // release
      const auto idx = rng.Index(active.size());
      net.ReleaseConnection(active[idx]);
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 7 && failures < 6) {  // fail a random up link
      std::vector<LinkId> up;
      for (LinkId l = 0; l < topo.num_links(); ++l) {
        if (net.IsLinkUp(l)) up.push_back(l);
      }
      const LinkId victim = up[rng.Index(up.size())];
      const auto report =
          core::ApplyLinkFailure(net, victim, step, &dlsr, &db);
      ++failures;
      // Dropped connections vanish from our active list too.
      for (ConnId id : report.dropped) {
        active.erase(std::remove(active.begin(), active.end(), id),
                     active.end());
      }
    } else if (op >= 8) {  // repair a random down link
      const auto down = net.DownLinks();
      if (!down.empty()) {
        net.SetLinkUp(down[rng.Index(down.size())]);
        --failures;
      }
    }
    if (step % 25 == 0) net.CheckConsistency();
  }
  net.CheckConsistency();
  for (ConnId id : active) net.ReleaseConnection(id);
  EXPECT_EQ(net.ActiveCount(), 0);
  EXPECT_EQ(net.ledger().TotalPrime(), 0);
  EXPECT_EQ(net.ledger().TotalSpare(), 0);
  net.CheckConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnWithFailures,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace drtp::sim
