// Tests for the parallel sweep runner: thread-pool semantics (completion,
// stealing under imbalance, exception surfacing), the deterministic
// seeding contract (same sweep, any thread count -> bit-identical
// metrics), and the JSONL sink's schema-versioned, parseable output.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "runner/json.h"
#include "runner/sink.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"

namespace drtp::runner {
namespace {

// --- minimal JSON validator ------------------------------------------------
// Recursive-descent syntax check, enough to prove JSONL lines are real
// JSON without pulling in a parser dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- splitmix64 ------------------------------------------------------------

TEST(CellSeedTest, MatchesSplitmix64Reference) {
  // Reference: the stateful generator from the splitmix64 paper.
  std::uint64_t state = 42;
  const auto next = [&state] {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(CellSeed(42, i), next()) << "index " << i;
  }
}

TEST(CellSeedTest, KnownFirstValueOfZeroStream) {
  // Widely published first output of splitmix64 seeded with 0.
  EXPECT_EQ(CellSeed(0, 0), 0xE220A8397B1DCDAFULL);
}

TEST(CellSeedTest, DistinctAcrossCellsAndSeeds) {
  EXPECT_NE(CellSeed(1, 0), CellSeed(1, 1));
  EXPECT_NE(CellSeed(1, 0), CellSeed(2, 0));
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, StealsAcrossWorkersUnderImbalance) {
  // Tiny queues force submissions (and thieves) to spread across workers;
  // with one long task hogging a worker, the rest must still finish.
  ThreadPool pool(ThreadPool::Options{.threads = 3, .queue_capacity = 2});
  std::atomic<int> count{0};
  pool.Submit([&count] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    count.fetch_add(1);
  });
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 201);
}

TEST(ThreadPoolTest, TaskExceptionSurfacesAtWaitWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count, i] {
      if (i == 17) throw std::runtime_error("cell 17 failed");
      count.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Every non-throwing task still ran, and the pool stays usable.
  EXPECT_EQ(count.load(), 49);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Shutdown();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorJoinsWithoutWait) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

// --- sweep determinism -----------------------------------------------------

SweepSpec TinySpec() {
  SweepSpec spec;
  spec.seeds = {7};
  spec.degrees = {3.0};
  spec.patterns = {sim::TrafficPattern::kUniform};
  spec.lambdas = {0.4, 0.6};
  spec.schemes = {"D-LSR", "BF"};
  spec.duration = 400.0;
  return spec;
}

void ExpectBitIdentical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.with_backup, b.with_backup);
  EXPECT_EQ(a.pbk.hits, b.pbk.hits);
  EXPECT_EQ(a.pbk.trials, b.pbk.trials);
  // Doubles compared with == on purpose: the contract is bit-identity,
  // not approximation.
  EXPECT_EQ(a.avg_active, b.avg_active);
  EXPECT_EQ(a.prime_bw.mean(), b.prime_bw.mean());
  EXPECT_EQ(a.prime_bw.count(), b.prime_bw.count());
  EXPECT_EQ(a.spare_bw.mean(), b.spare_bw.mean());
  EXPECT_EQ(a.primary_hops.mean(), b.primary_hops.mean());
  EXPECT_EQ(a.backup_hops.mean(), b.backup_hops.mean());
  EXPECT_EQ(a.backup_overlap_links, b.backup_overlap_links);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.overbooked_hops, b.overbooked_hops);
  EXPECT_EQ(a.measure_start, b.measure_start);
  EXPECT_EQ(a.measure_end, b.measure_end);
}

TEST(SweepEngineTest, FourThreadSweepBitIdenticalToSerial) {
  SweepEngine serial(TinySpec());
  SweepEngine threaded(TinySpec());

  SweepEngine::RunOptions one;
  one.jobs = 1;
  const auto a = serial.Run(one);

  SweepEngine::RunOptions four;
  four.jobs = 4;
  const auto b = threaded.Run(four);

  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), TinySpec().NumCells());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell.index, i);
    EXPECT_EQ(b[i].cell.index, i);
    EXPECT_EQ(a[i].cell.cell_seed, b[i].cell.cell_seed);
    ExpectBitIdentical(a[i].metrics, b[i].metrics);
  }
}

TEST(SweepEngineTest, CellsExpandInSpecOrderWithDerivedSeeds) {
  SweepEngine engine(TinySpec());
  const auto cells = engine.Cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].scheme, "D-LSR");
  EXPECT_EQ(cells[1].scheme, "BF");
  EXPECT_EQ(cells[0].lambda, 0.4);
  EXPECT_EQ(cells[2].lambda, 0.6);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].cell_seed, CellSeed(7, i));
  }
}

TEST(SweepEngineTest, RejectsUnknownTopoModel) {
  SweepSpec spec = TinySpec();
  spec.topo_model = "torus";
  EXPECT_THROW(SweepEngine{spec}, CheckError);
}

TEST(SweepEngineTest, HierModelTagsJsonlWaxmanStaysUntagged) {
  // Selecting the hierarchical generator stamps every JSONL line with the
  // model; the default waxman output stays byte-compatible with existing
  // results files (no "model" key at all).
  SweepSpec hier = TinySpec();
  hier.lambdas = {0.4};
  hier.schemes = {"D-LSR"};
  hier.duration = 60.0;
  hier.topo_model = "hier";
  hier.hier.backbone = 4;
  hier.hier.pops_per_backbone = 1;
  hier.hier.metro_per_pop = 2;
  std::ostringstream hs;
  {
    JsonlSink sink(hs);
    SweepEngine engine(hier);
    SweepEngine::RunOptions ro;
    ro.sinks = {&sink};
    engine.Run(ro);
  }
  std::istringstream hin(hs.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(hin, line)) {
    ++lines;
    EXPECT_NE(line.find("\"model\":\"hier\""), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);

  std::ostringstream ws;
  {
    JsonlSink sink(ws);
    SweepEngine engine(TinySpec());
    SweepEngine::RunOptions ro;
    ro.sinks = {&sink};
    engine.Run(ro);
  }
  std::istringstream win(ws.str());
  while (std::getline(win, line)) {
    EXPECT_EQ(line.find("\"model\""), std::string::npos) << line;
  }
}

TEST(SweepEngineTest, FailingCellRethrowsFromRun) {
  SweepSpec spec = TinySpec();
  spec.schemes = {"D-LSR", "NoSuchScheme"};
  SweepEngine engine(spec);
  SweepEngine::RunOptions ro;
  ro.jobs = 2;
  EXPECT_THROW(engine.Run(ro), std::exception);
}

// Records every Consume and whether Finish ran, like a results file would.
class RecordingSink : public ResultSink {
 public:
  void Consume(const CellResult& result) override {
    std::lock_guard<std::mutex> lk(mu_);
    cells_.push_back(result.cell.index);
  }
  void Finish() override { finished_ = true; }

  std::vector<std::size_t> cells() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cells_;
  }
  bool finished() const { return finished_; }

 private:
  mutable std::mutex mu_;
  std::vector<std::size_t> cells_;
  bool finished_ = false;
};

TEST(SweepEngineTest, FailingCellStillFlushesCompletedCellsToSinks) {
  // Two good cells and two that throw (unknown scheme). The sweep must
  // rethrow — but only after the good cells reached the sinks AND every
  // sink's Finish() ran, so a crashed sweep leaves a usable results file.
  SweepSpec spec = TinySpec();
  spec.schemes = {"D-LSR", "NoSuchScheme"};
  SweepEngine engine(spec);
  RecordingSink recorder;
  std::ostringstream os;
  JsonlSink jsonl(os);
  SweepEngine::RunOptions ro;
  ro.jobs = 2;
  ro.sinks = {&recorder, &jsonl};
  EXPECT_THROW(engine.Run(ro), std::exception);
  EXPECT_TRUE(recorder.finished());
  EXPECT_EQ(recorder.cells().size(), 2u);  // the two D-LSR cells
  EXPECT_EQ(jsonl.lines_written(), 2);
  // Every flushed line is complete (single-write line atomicity).
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_EQ(lines, 2);
}

TEST(SweepEngineTest, CampaignAuditIsCleanAndDeterministicAcrossJobs) {
  SweepSpec spec = TinySpec();
  spec.lambdas = {0.4};
  spec.schemes = {"D-LSR"};
  spec.failures = 2;
  spec.node_failures = 2;
  spec.srlg_failures = 1;
  spec.bursts = 1;
  spec.burst_size = 3;
  spec.srlg_groups = 8;
  spec.mttr = 60.0;
  spec.audit = true;

  SweepEngine serial(spec);
  SweepEngine threaded(spec);
  SweepEngine::RunOptions one;
  one.jobs = 1;
  SweepEngine::RunOptions four;
  four.jobs = 4;
  const auto a = serial.Run(one);
  const auto b = threaded.Run(four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Every cell was audited, found clean, and the audit is reproducible
    // for any thread count.
    EXPECT_GT(a[i].audit_checks, 0);
    EXPECT_EQ(a[i].audit_violations, 0) << a[i].audit_jsonl;
    EXPECT_EQ(a[i].audit_checks, b[i].audit_checks);
    EXPECT_EQ(a[i].audit_violations, b[i].audit_violations);
    EXPECT_EQ(a[i].audit_jsonl, b[i].audit_jsonl);
    EXPECT_GT(a[i].metrics.failures_enacted, 0);
    ExpectBitIdentical(a[i].metrics, b[i].metrics);
    // The JSONL line carries the audit block and degradation counters.
    const std::string line = CellResultToJson(a[i]);
    EXPECT_NE(line.find("\"audit\":{\"checks\":"), std::string::npos);
    EXPECT_NE(line.find("\"degraded\":"), std::string::npos);
    EXPECT_NE(line.find("\"reprotect_retries\":"), std::string::npos);
    EXPECT_TRUE(JsonValidator(line).Valid());
  }
}

// --- sinks -----------------------------------------------------------------

TEST(JsonlSinkTest, LinesParseAndCarrySchemaVersion) {
  std::ostringstream os;
  JsonlSink sink(os);
  SweepEngine engine(TinySpec());
  SweepEngine::RunOptions ro;
  ro.jobs = 2;
  ro.sinks = {&sink};
  const auto results = engine.Run(ro);
  EXPECT_EQ(sink.lines_written(),
            static_cast<std::int64_t>(results.size()));

  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"drtp.sweep/1\""), std::string::npos);
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_EQ(lines, results.size());
}

TEST(JsonWriterTest, EscapesAndFormats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\nd");
  w.Key("i").Int(-42);
  w.Key("d").Double(0.1);
  w.Key("nan").Double(std::nan(""));
  w.Key("b").Bool(true);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-42,\"d\":0.1,"
            "\"nan\":null,\"b\":true}");
  EXPECT_TRUE(JsonValidator(w.str()).Valid());
}

TEST(TableSinkTest, RendersOneRowPerCellInIndexOrder) {
  std::ostringstream os;
  TableSink sink(os);
  for (const std::size_t index : {2u, 0u, 1u}) {
    CellResult r;
    r.cell.index = index;
    r.cell.scheme = "D-LSR";
    r.cell.lambda = 0.1 * static_cast<double>(index);
    sink.Consume(r);
  }
  sink.Finish();
  const std::string text = os.str();
  // Header + rule + 3 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  EXPECT_LT(text.find("0.10"), text.find("0.20"));
}

}  // namespace
}  // namespace drtp::runner
