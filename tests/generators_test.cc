// Tests for the topology generators, including seed-swept properties of
// the Waxman model (the paper's evaluation substrate) and serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/error.h"
#include "common/rng.h"
#include "net/generators.h"
#include "net/graphio.h"
#include "net/transit_stub.h"

namespace drtp::net {
namespace {

TEST(Grid, ThreeByThreeMatchesPaperFigure1Shape) {
  // Fig. 1 uses a 3x3 mesh: 9 nodes, 12 duplex connections, 24
  // unidirectional links.
  Topology t = MakeGrid(3, 3, Mbps(30));
  EXPECT_EQ(t.num_nodes(), 9);
  EXPECT_EQ(t.num_links(), 24);
  EXPECT_TRUE(t.IsConnected());
}

TEST(Ring, HasTwoDisjointPathsShape) {
  Topology t = MakeRing(6, Mbps(1));
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_links(), 12);
  EXPECT_TRUE(t.IsConnected());
  for (NodeId n = 0; n < 6; ++n) EXPECT_EQ(t.Neighbors(n).size(), 2u);
}

TEST(Star, HubDegreeEqualsLeaves) {
  Topology t = MakeStar(5, Mbps(1));
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.Neighbors(0).size(), 5u);
  EXPECT_TRUE(t.IsConnected());
}

TEST(ParallelPaths, DisjointRelays) {
  Topology t = MakeParallelPaths(3, Mbps(1));
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_links(), 12);
  EXPECT_TRUE(t.IsConnected());
}

/// Seed-swept Waxman properties (paper setup: 60 nodes, E in {3,4}).
class WaxmanProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(WaxmanProperty, ConnectedWithTargetDegree) {
  const auto [avg_degree, seed] = GetParam();
  const Topology t = MakeWaxman(WaxmanConfig{.nodes = 60,
                                             .avg_degree = avg_degree,
                                             .alpha = 0.25,
                                             .beta = 0.8,
                                             .link_capacity = Mbps(30),
                                             .seed = seed});
  EXPECT_EQ(t.num_nodes(), 60);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_NEAR(t.AverageDegree(), avg_degree, 0.05);
  // All links are duplex with the configured capacity.
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_NE(t.link(l).reverse, kInvalidLink);
    EXPECT_EQ(t.link(l).capacity, Mbps(30));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeAndSeeds, WaxmanProperty,
    ::testing::Combine(::testing::Values(3.0, 4.0),
                       ::testing::Values(1u, 2u, 3u, 17u, 42u)));

TEST(Waxman, DeterministicForSeed) {
  const WaxmanConfig cfg{.nodes = 30, .avg_degree = 3.0, .seed = 99};
  EXPECT_EQ(TopologyToString(MakeWaxman(cfg)),
            TopologyToString(MakeWaxman(cfg)));
}

TEST(Waxman, LocalityBiasFavorsShortEdges) {
  // With strong locality (small alpha) the mean Euclidean edge length
  // should be well below the ~0.52 expectation of uniform random pairs.
  const Topology t = MakeWaxman(WaxmanConfig{
      .nodes = 60, .avg_degree = 4.0, .alpha = 0.1, .beta = 1.0, .seed = 5});
  double total = 0.0;
  int count = 0;
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const Link& link = t.link(l);
    const Node& a = t.node(link.src);
    const Node& b = t.node(link.dst);
    total += std::hypot(a.x - b.x, a.y - b.y);
    ++count;
  }
  EXPECT_LT(total / count, 0.40);
}

TEST(Waxman, RejectsInfeasibleDegree) {
  EXPECT_THROW(
      MakeWaxman(WaxmanConfig{.nodes = 4, .avg_degree = 5.0, .seed = 1}),
      CheckError);
}

// ---- PoP/backbone/metro hierarchy ------------------------------------------

TEST(Hierarchical, ThousandNodeRecipeShape) {
  // The bench/CI recipe: 10 backbone + 30 PoPs + 30*32 metro = 1000 nodes.
  const Topology t = MakeHierarchical(HierConfig{
      .backbone = 10, .pops_per_backbone = 3, .metro_per_pop = 32,
      .seed = 7});
  EXPECT_EQ(t.num_nodes(), 1000);
  EXPECT_TRUE(t.IsConnected());
  // Survivability floor: every node has at least two duplex adjacencies,
  // so no single link failure partitions the graph at the edge.
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_GE(t.Neighbors(n).size(), 2u) << "node " << n;
  }
}

TEST(Hierarchical, TieredCapacities) {
  const HierConfig cfg{.backbone = 6, .pops_per_backbone = 2,
                       .metro_per_pop = 4, .seed = 3};
  const Topology t = MakeHierarchical(cfg);
  // Node ids are dense by tier: backbone 0..B-1, then PoPs, then metro.
  const NodeId first_pop = 6;
  const NodeId first_metro = 6 + 6 * 2;
  const LinkId ring = t.FindLink(0, 1);
  ASSERT_NE(ring, kInvalidLink);
  EXPECT_EQ(t.link(ring).capacity, cfg.backbone_capacity);
  // PoP p dual-homes to backbone p%B and (p%B + 1)%B.
  const LinkId uplink = t.FindLink(first_pop, 0);
  ASSERT_NE(uplink, kInvalidLink);
  EXPECT_EQ(t.link(uplink).capacity, cfg.pop_capacity);
  const LinkId uplink2 = t.FindLink(first_pop, 1);
  ASSERT_NE(uplink2, kInvalidLink);
  const LinkId metro = t.FindLink(first_pop, first_metro);
  ASSERT_NE(metro, kInvalidLink);
  EXPECT_EQ(t.link(metro).capacity, cfg.metro_capacity);
}

TEST(Hierarchical, DeterministicForSeed) {
  const HierConfig cfg{.backbone = 8, .pops_per_backbone = 2,
                       .metro_per_pop = 5, .seed = 12};
  EXPECT_EQ(TopologyToString(MakeHierarchical(cfg)),
            TopologyToString(MakeHierarchical(cfg)));
}

TEST(Hierarchical, SingleMetroNodeStaysBiconnected) {
  // metro_per_pop == 1 cannot close a ring through the PoP alone; the
  // lone metro node dual-homes to the PoP and its backbone instead.
  const Topology t = MakeHierarchical(HierConfig{
      .backbone = 4, .pops_per_backbone = 1, .metro_per_pop = 1, .seed = 2});
  EXPECT_TRUE(t.IsConnected());
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_GE(t.Neighbors(n).size(), 2u) << "node " << n;
  }
}

TEST(Hierarchical, RejectsDegenerateBackbone) {
  EXPECT_THROW(MakeHierarchical(HierConfig{.backbone = 2}), CheckError);
}

TEST(Hierarchical, SrlgGroupsTagEveryLinkWithoutPerturbingGraph) {
  const HierConfig base{.backbone = 5, .pops_per_backbone = 2,
                        .metro_per_pop = 3, .seed = 8};
  HierConfig tagged = base;
  tagged.srlg_groups = 6;
  const Topology t = MakeHierarchical(tagged);
  ASSERT_TRUE(t.has_srlgs());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    ASSERT_NE(t.srlg(l), kInvalidSrlg);
    EXPECT_EQ(t.srlg(l), t.srlg(t.link(l).reverse));
  }
  const Topology plain = MakeHierarchical(base);
  ASSERT_EQ(plain.num_links(), t.num_links());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(plain.link(l).src, t.link(l).src);
    EXPECT_EQ(plain.link(l).dst, t.link(l).dst);
  }
  // ...and tagged graphs round-trip through the v2 text format.
  const Topology u = TopologyFromString(TopologyToString(t));
  ASSERT_TRUE(u.has_srlgs());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(u.srlg(l), t.srlg(l));
  }
}

TEST(AssignGeoSrlgs, ConsumesExactlyTwoDrawsPerGroup) {
  // The Waxman generator relies on this contract: hoisting the SRLG pass
  // into a shared helper must not shift any later draw in the stream.
  Topology t = MakeGrid(4, 4, Mbps(1));
  Rng used(5);
  Rng reference(5);
  AssignGeoSrlgs(t, 4, used);
  for (int i = 0; i < 8; ++i) reference.UniformReal(0.0, 1.0);
  EXPECT_EQ(used.Next(), reference.Next());
}

TEST(AssignGeoSrlgs, DeterministicForSeed) {
  Topology a = MakeGrid(4, 4, Mbps(1));
  Topology b = MakeGrid(4, 4, Mbps(1));
  Rng ra(11);
  Rng rb(11);
  AssignGeoSrlgs(a, 3, ra);
  AssignGeoSrlgs(b, 3, rb);
  for (LinkId l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.srlg(l), b.srlg(l));
  }
}

// ---- transit-stub hierarchy -------------------------------------------------

TEST(TransitStub, ShapeMatchesConfig) {
  TransitStubLayout layout;
  const TransitStubConfig cfg{.transit_nodes = 6,
                              .transit_chords = 3,
                              .stubs_per_transit = 2,
                              .stub_size = 3,
                              .multihome_prob = 0.5,
                              .transit_capacity_factor = 4,
                              .stub_capacity = Mbps(10),
                              .seed = 9};
  const Topology t = MakeTransitStub(cfg, &layout);
  EXPECT_EQ(t.num_nodes(), 6 + 6 * 2 * 3);
  EXPECT_TRUE(t.IsConnected());
  ASSERT_EQ(layout.transit.size(), 6u);
  ASSERT_EQ(layout.stubs.size(), 12u);
  for (const auto& stub : layout.stubs) EXPECT_EQ(stub.size(), 3u);
  // Core links are fatter than stub links.
  const LinkId core_link =
      t.FindLink(layout.transit[0], layout.transit[1]);
  ASSERT_NE(core_link, kInvalidLink);
  EXPECT_EQ(t.link(core_link).capacity, Mbps(40));
  const LinkId stub_uplink = t.FindLink(layout.stubs[0][0], layout.transit[0]);
  ASSERT_NE(stub_uplink, kInvalidLink);
  EXPECT_EQ(t.link(stub_uplink).capacity, Mbps(10));
}

TEST(TransitStub, DeterministicPerSeed) {
  const TransitStubConfig cfg{.seed = 4};
  EXPECT_EQ(TopologyToString(MakeTransitStub(cfg)),
            TopologyToString(MakeTransitStub(cfg)));
}

TEST(TransitStub, FullMultihomingGivesEveryStubTwoUplinks) {
  TransitStubLayout layout;
  TransitStubConfig cfg;
  cfg.multihome_prob = 1.0;
  cfg.seed = 3;
  const Topology t = MakeTransitStub(cfg, &layout);
  for (const auto& stub : layout.stubs) {
    // First node uplinks to the home transit; last node to another.
    int uplinks = 0;
    for (const NodeId n : {stub.front(), stub.back()}) {
      for (const NodeId nb : t.Neighbors(n)) {
        if (std::find(layout.transit.begin(), layout.transit.end(), nb) !=
            layout.transit.end()) {
          ++uplinks;
          break;
        }
      }
    }
    EXPECT_EQ(uplinks, 2);
  }
}

TEST(TransitStub, RoundTripsThroughSerialization) {
  const Topology t = MakeTransitStub(TransitStubConfig{.seed = 6});
  EXPECT_EQ(TopologyToString(TopologyFromString(TopologyToString(t))),
            TopologyToString(t));
}

// ---- serialization -------------------------------------------------------

TEST(GraphIo, RoundTripsGrid) {
  const Topology t = MakeGrid(3, 4, Mbps(7));
  const Topology u = TopologyFromString(TopologyToString(t));
  EXPECT_EQ(TopologyToString(t), TopologyToString(u));
  EXPECT_EQ(u.num_nodes(), t.num_nodes());
  EXPECT_EQ(u.num_links(), t.num_links());
}

TEST(GraphIo, RoundTripsWaxmanWithCoordinates) {
  const Topology t =
      MakeWaxman(WaxmanConfig{.nodes = 25, .avg_degree = 3.0, .seed = 3});
  const Topology u = TopologyFromString(TopologyToString(t));
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(t.node(n).x, u.node(n).x);
    EXPECT_DOUBLE_EQ(t.node(n).y, u.node(n).y);
  }
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(t.link(l).src, u.link(l).src);
    EXPECT_EQ(t.link(l).dst, u.link(l).dst);
    EXPECT_EQ(t.link(l).reverse, u.link(l).reverse);
  }
}

TEST(GraphIo, RejectsGarbage) {
  EXPECT_THROW(TopologyFromString("not a topology"), ParseError);
}

TEST(Waxman, SrlgGroupsTagEveryLinkAndShareDuplexFate) {
  const WaxmanConfig base{.nodes = 30, .avg_degree = 3.5, .seed = 9};
  WaxmanConfig tagged = base;
  tagged.srlg_groups = 5;
  const Topology t = MakeWaxman(tagged);
  ASSERT_TRUE(t.has_srlgs());
  EXPECT_LE(t.num_srlgs(), 5);
  for (LinkId l = 0; l < t.num_links(); ++l) {
    ASSERT_NE(t.srlg(l), kInvalidSrlg);
    // A conduit cut severs both directions: duplex halves share a group.
    EXPECT_EQ(t.srlg(l), t.srlg(t.link(l).reverse));
  }
  // Tagging must not perturb the generated graph itself.
  const Topology plain = MakeWaxman(base);
  ASSERT_EQ(plain.num_links(), t.num_links());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(plain.link(l).src, t.link(l).src);
    EXPECT_EQ(plain.link(l).dst, t.link(l).dst);
  }
}

TEST(GraphIo, SrlgTagsRoundTripAsV2) {
  const Topology t = MakeWaxman(
      WaxmanConfig{.nodes = 25, .avg_degree = 3.0, .srlg_groups = 4,
                   .seed = 3});
  const Topology u = TopologyFromString(TopologyToString(t));
  ASSERT_TRUE(u.has_srlgs());
  EXPECT_EQ(u.num_srlgs(), t.num_srlgs());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_EQ(u.srlg(l), t.srlg(l));
  }
  // Untagged topologies keep emitting the v1 format byte-for-byte.
  const Topology v1 =
      MakeWaxman(WaxmanConfig{.nodes = 25, .avg_degree = 3.0, .seed = 3});
  EXPECT_EQ(TopologyToString(v1).find("srlg"), std::string::npos);
}

TEST(GraphIo, DotContainsEveryDuplexEdgeOnce) {
  const Topology t = MakeRing(4, Mbps(1));
  const std::string dot = TopologyToDot(t);
  // 4 duplex edges -> 4 "--" lines.
  std::size_t count = 0;
  for (std::size_t pos = dot.find("--"); pos != std::string::npos;
       pos = dot.find("--", pos + 2)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

}  // namespace
}  // namespace drtp::net
