// Crash-durability tests for the drtpd service layer: the drtp.wal/1
// write-ahead log (framing, truncate-and-verify recovery, torn-tail chop
// at every byte offset), drtp.snap/1 snapshots (round trip, digest and
// config refusals, RNG-bearing scheme state), and Engine::Recover — the
// contract that a recovered engine's NetworkStateDigest is byte-identical
// to an uninterrupted run's, with the auditor clean on the result.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/digest.h"
#include "common/error.h"
#include "common/json.h"
#include "common/json_value.h"
#include "fault/auditor.h"
#include "net/generators.h"
#include "net/topology.h"
#include "sim/scenario.h"
#include "svc/engine.h"
#include "svc/rpc.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace drtp {
namespace {

using svc::DecodedRequest;
using svc::DecodeRequest;
using svc::Engine;
using svc::EngineOptions;
using svc::RecoverReport;
using svc::Snapshot;
using svc::Wal;
using svc::WalRecovery;

std::string AdmitPayload(std::int64_t id, ConnId conn, NodeId src, NodeId dst,
                         Bandwidth bw) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("admit");
  w.Key("params").BeginObject();
  w.Key("conn").Int(conn);
  w.Key("src").Int(src);
  w.Key("dst").Int(dst);
  w.Key("bw_kbps").Int(bw);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ReleasePayload(std::int64_t id, ConnId conn) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("release");
  w.Key("params").BeginObject();
  w.Key("conn").Int(conn);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string LinkPayload(std::int64_t id, const char* method, LinkId link) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String(method);
  w.Key("params").BeginObject();
  w.Key("link").Int(link);
  w.EndObject();
  w.EndObject();
  return w.str();
}

/// A deterministic mixed workload (admits, releases, a failure/repair
/// pair) in which every request is effective — each one advances the
/// virtual clock and therefore lands in the WAL.
std::vector<std::string> MixedWorkload(int nodes) {
  std::vector<std::string> payloads;
  int id = 0;
  for (int i = 0; i < 24; ++i) {
    payloads.push_back(AdmitPayload(id++, i, (3 * i) % nodes,
                                    (3 * i + 7) % nodes, Mbps(1)));
  }
  payloads.push_back(LinkPayload(id++, "fail-link", 2));
  for (int i = 0; i < 6; ++i) {
    payloads.push_back(ReleasePayload(id++, i));
  }
  payloads.push_back(LinkPayload(id++, "repair-link", 2));
  return payloads;
}

/// Executes `payloads` in batches of `batch`, returning the digest after
/// every batch (index k = digest once k batches committed).
std::vector<std::uint64_t> RunBatches(Engine& engine,
                                      const std::vector<std::string>& payloads,
                                      std::size_t batch) {
  std::vector<std::uint64_t> digests;
  std::vector<DecodedRequest> decoded;
  for (std::size_t i = 0; i < payloads.size();) {
    decoded.clear();
    for (std::size_t j = 0; j < batch && i < payloads.size(); ++j, ++i) {
      decoded.push_back(DecodeRequest(payloads[i]));
    }
    const auto out = engine.ExecuteBatch(decoded);
    EXPECT_EQ(out.size(), decoded.size());
    digests.push_back(engine.StateDigest());
  }
  return digests;
}

class DurabilityTest : public ::testing::Test {
 protected:
  DurabilityTest()
      : topo_(net::MakeWaxman(
            net::WaxmanConfig{.nodes = 20, .avg_degree = 4.0, .seed = 3})) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = ::testing::TempDir() + "durability_" + info->name();
    wal_path_ = base_ + ".wal";
    snap_path_ = base_ + ".snap";
    std::remove(wal_path_.c_str());
    std::remove(snap_path_.c_str());
  }

  EngineOptions Options() const {
    EngineOptions eo;
    eo.snapshot_path = snap_path_;
    return eo;
  }

  std::unique_ptr<Wal> OpenWal(const Engine& engine) {
    std::string error;
    auto wal = Wal::Open(wal_path_, engine.ConfigDigest(), &error);
    EXPECT_NE(wal, nullptr) << error;
    return wal;
  }

  net::Topology topo_;
  std::string base_;
  std::string wal_path_;
  std::string snap_path_;
};

// ---- WAL record layer -------------------------------------------------

TEST(WalPayloadTest, RoundTripsAllEventKinds) {
  std::vector<sim::ScenarioEvent> events(4);
  events[0].type = sim::ScenarioEvent::Type::kRequest;
  events[0].time = 1.0;
  events[0].conn = 7;
  events[0].src = 2;
  events[0].dst = 9;
  events[0].bw = Mbps(3);
  events[1].type = sim::ScenarioEvent::Type::kRelease;
  events[1].time = 2.0;
  events[1].conn = 7;
  events[2].type = sim::ScenarioEvent::Type::kLinkFail;
  events[2].time = 3.0;
  events[2].link = 11;
  events[3].type = sim::ScenarioEvent::Type::kLinkRepair;
  events[3].time = 4.0;
  events[3].link = 11;

  const std::string payload = svc::RenderWalBatchPayload(events);
  const std::vector<sim::ScenarioEvent> back =
      svc::ParseWalBatchPayload(payload);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].type, events[i].type) << i;
    EXPECT_EQ(back[i].time, events[i].time) << i;
    EXPECT_EQ(back[i].conn, events[i].conn) << i;
    EXPECT_EQ(back[i].src, events[i].src) << i;
    EXPECT_EQ(back[i].dst, events[i].dst) << i;
    EXPECT_EQ(back[i].bw, events[i].bw) << i;
    EXPECT_EQ(back[i].link, events[i].link) << i;
  }
}

TEST_F(DurabilityTest, MissingWalRecoversEmpty) {
  const WalRecovery rec = svc::RecoverWal(wal_path_, 0xabcd);
  EXPECT_FALSE(rec.existed);
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  EXPECT_TRUE(rec.batches.empty());
}

TEST_F(DurabilityTest, OpenWritesHeaderRecoverAcceptsIt) {
  Engine engine(topo_, Options());
  auto wal = OpenWal(engine);
  const std::uint64_t header_end = wal->bytes();
  EXPECT_GT(header_end, 0u);
  wal.reset();

  const WalRecovery rec = svc::RecoverWal(wal_path_, engine.ConfigDigest());
  EXPECT_TRUE(rec.existed);
  EXPECT_EQ(rec.valid_bytes, header_end);
  EXPECT_EQ(rec.header_end, header_end);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  EXPECT_TRUE(rec.batches.empty());
}

TEST_F(DurabilityTest, ForeignConfigWalRefused) {
  Engine engine(topo_, Options());
  OpenWal(engine).reset();
  EXPECT_THROW(svc::RecoverWal(wal_path_, engine.ConfigDigest() + 1),
               ParseError);
}

TEST_F(DurabilityTest, TornHeaderTruncatesToEmptyLog) {
  // A file that dies inside its very first record recovers to an empty
  // log (nothing was ever committed), not an error.
  {
    const char torn[] = {0, 0, 1};
    std::ofstream out(wal_path_, std::ios::binary);
    out.write(torn, sizeof torn);
  }
  const WalRecovery rec = svc::RecoverWal(wal_path_, 0x1234);
  EXPECT_TRUE(rec.existed);
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_EQ(rec.truncated_bytes, 3u);
  EXPECT_TRUE(rec.batches.empty());
}

// ---- WAL-only recovery ------------------------------------------------

TEST_F(DurabilityTest, WalReplayReachesIdenticalDigest) {
  EngineOptions eo = Options();
  eo.snapshot_path.clear();  // WAL only
  Engine live(topo_, eo);
  auto wal = OpenWal(live);
  live.AttachWal(wal.get());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 3);
  const std::uint64_t want = live.StateDigest();
  const std::int64_t wal_batches = live.stats().wal_batches;
  wal.reset();

  Engine recovered(topo_, eo);
  const RecoverReport rep = recovered.Recover(wal_path_, "");
  EXPECT_FALSE(rep.from_snapshot);
  EXPECT_EQ(rep.wal_truncated_bytes, 0u);
  EXPECT_EQ(rep.batches_replayed, wal_batches);
  EXPECT_EQ(recovered.StateDigest(), want);
  EXPECT_EQ(recovered.virtual_now(), live.virtual_now());
  EXPECT_EQ(recovered.stats().admitted, live.stats().admitted);
  EXPECT_EQ(recovered.stats().blocked, live.stats().blocked);
  EXPECT_EQ(recovered.stats().released, live.stats().released);
  EXPECT_EQ(recovered.stats().link_fails, live.stats().link_fails);
  EXPECT_EQ(recovered.stats().link_repairs, live.stats().link_repairs);
  EXPECT_EQ(recovered.stats().wal_batches, wal_batches);
}

TEST_F(DurabilityTest, TornTailChoppedAtEveryByteRecovers) {
  // The checkpoint_test chop discipline, applied to the WAL: for every
  // prefix length the recovered engine must land exactly on the digest
  // the live engine had after the batches that survive the chop —
  // recovery never invents, loses, or reorders committed state.
  EngineOptions eo = Options();
  eo.snapshot_path.clear();
  Engine live(topo_, eo);
  auto wal = OpenWal(live);
  const std::uint64_t header_end = wal->bytes();
  live.AttachWal(wal.get());
  const std::uint64_t fresh_digest = live.StateDigest();
  const std::vector<std::uint64_t> per_batch =
      RunBatches(live, MixedWorkload(topo_.num_nodes()), 4);
  wal.reset();

  std::string bytes;
  {
    std::ifstream in(wal_path_, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    bytes = os.str();
  }
  ASSERT_GT(bytes.size(), header_end);

  const std::string chopped = base_ + ".chop";
  for (std::size_t cut = header_end;
       cut < bytes.size(); ++cut) {
    {
      std::ofstream out(chopped, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    Engine recovered(topo_, eo);
    RecoverReport rep;
    ASSERT_NO_THROW(rep = recovered.Recover(chopped, ""))
        << "chop at byte " << cut;
    const std::size_t k = static_cast<std::size_t>(rep.batches_replayed);
    ASSERT_LE(k, per_batch.size()) << "chop at byte " << cut;
    const std::uint64_t want = k == 0 ? fresh_digest : per_batch[k - 1];
    EXPECT_EQ(recovered.StateDigest(), want) << "chop at byte " << cut;
    EXPECT_EQ(rep.wal_truncated_bytes, cut - rep.wal_valid_bytes)
        << "chop at byte " << cut;
  }
  std::remove(chopped.c_str());
}

// ---- snapshots --------------------------------------------------------

TEST_F(DurabilityTest, SnapshotOnlyRecoveryRestoresEverything) {
  Engine live(topo_, Options());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 5);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;

  Engine recovered(topo_, Options());
  const RecoverReport rep = recovered.Recover("", snap_path_);
  EXPECT_TRUE(rep.from_snapshot);
  EXPECT_EQ(rep.batches_replayed, 0);
  EXPECT_EQ(recovered.StateDigest(), live.StateDigest());
  EXPECT_EQ(recovered.virtual_now(), live.virtual_now());
  // The snapshots counter includes the file the engine was restored from.
  EXPECT_EQ(recovered.stats().snapshots, 1);
  EXPECT_EQ(recovered.stats().admitted, live.stats().admitted);
  EXPECT_EQ(recovered.network().ActiveCount(), live.network().ActiveCount());
}

TEST_F(DurabilityTest, SnapshotPlusWalSuffixReplaysOnlyTheSuffix) {
  Engine live(topo_, Options());
  auto wal = OpenWal(live);
  live.AttachWal(wal.get());
  const std::vector<std::string> payloads = MixedWorkload(topo_.num_nodes());
  const std::vector<std::string> first(payloads.begin(),
                                      payloads.begin() + 12);
  const std::vector<std::string> rest(payloads.begin() + 12, payloads.end());
  RunBatches(live, first, 3);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;  // binds to wal offset
  const std::vector<std::uint64_t> suffix_digests = RunBatches(live, rest, 3);
  wal.reset();

  Engine recovered(topo_, Options());
  const RecoverReport rep = recovered.Recover(wal_path_, snap_path_);
  EXPECT_TRUE(rep.from_snapshot);
  EXPECT_EQ(rep.batches_replayed,
            static_cast<std::int64_t>(suffix_digests.size()));
  EXPECT_EQ(recovered.StateDigest(), live.StateDigest());
  EXPECT_EQ(recovered.stats().wal_batches, live.stats().wal_batches);
}

TEST_F(DurabilityTest, RandomBackupRngStateSurvivesRecovery) {
  // RandomBackup is the one scheme carrying history (its RNG stream).
  // After recovery, the next admissions must draw the identical
  // continuation — byte-identical responses, not just a matching digest.
  EngineOptions eo = Options();
  eo.scheme = "RandomBackup";
  eo.seed = 42;
  Engine live(topo_, eo);
  auto wal = OpenWal(live);
  live.AttachWal(wal.get());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 3);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;
  live.AttachWal(nullptr);  // live keeps executing below, without the log
  wal.reset();

  Engine recovered(topo_, eo);
  recovered.Recover(wal_path_, snap_path_);
  ASSERT_EQ(recovered.StateDigest(), live.StateDigest());
  for (int i = 0; i < 8; ++i) {
    const std::string payload =
        AdmitPayload(100 + i, 100 + i, (5 * i) % topo_.num_nodes(),
                     (5 * i + 3) % topo_.num_nodes(), Mbps(1));
    const DecodedRequest d = DecodeRequest(payload);
    const auto a = live.ExecuteBatch({&d, 1});
    const auto b = recovered.ExecuteBatch({&d, 1});
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0], b[0]) << "post-recovery admission " << i
                          << " diverged: the RNG stream was not restored";
  }
  EXPECT_EQ(recovered.StateDigest(), live.StateDigest());
}

TEST_F(DurabilityTest, SnapshotConfigMismatchRefused) {
  Engine live(topo_, Options());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 5);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;

  EngineOptions other = Options();
  other.num_backups = 2;  // different config digest
  Engine recovered(topo_, other);
  EXPECT_THROW(recovered.Recover("", snap_path_), ParseError);
}

TEST_F(DurabilityTest, TamperedSnapshotRefused) {
  Engine live(topo_, Options());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 5);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;

  std::string content;
  {
    std::ifstream in(snap_path_, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    content = os.str();
  }
  const std::size_t at = content.find("\"conns\"");
  ASSERT_NE(at, std::string::npos);
  content[at + 1] ^= 0x01;  // flip one body byte; digest line is now stale
  std::ofstream(snap_path_, std::ios::binary | std::ios::trunc) << content;
  EXPECT_THROW(svc::LoadSnapshotFile(snap_path_), ParseError);
  Engine recovered(topo_, Options());
  EXPECT_THROW(recovered.Recover("", snap_path_), ParseError);
}

TEST_F(DurabilityTest, SnapshotOffWalBoundaryRefused) {
  // A snapshot claiming an offset that is not a record boundary of the
  // recovered WAL does not belong to it — refuse instead of replaying
  // from the middle of a record.
  Engine live(topo_, Options());
  auto wal = OpenWal(live);
  live.AttachWal(wal.get());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 3);
  wal.reset();

  Engine fresh(topo_, Options());
  const std::string body = svc::RenderSnapshotBody(
      fresh.network(), fresh.stats(), 0, fresh.ConfigDigest(),
      /*wal_offset=*/7, "D-LSR", "");
  std::string error;
  ASSERT_TRUE(svc::WriteSnapshotFile(snap_path_, body, &error)) << error;

  Engine recovered(topo_, Options());
  EXPECT_THROW(recovered.Recover(wal_path_, snap_path_), ParseError);
}

TEST_F(DurabilityTest, RecoveredStateAuditsClean) {
  Engine live(topo_, Options());
  auto wal = OpenWal(live);
  live.AttachWal(wal.get());
  RunBatches(live, MixedWorkload(topo_.num_nodes()), 3);
  std::string error;
  ASSERT_TRUE(live.WriteSnapshot(&error)) << error;
  wal.reset();

  Engine recovered(topo_, Options());
  recovered.Recover(wal_path_, snap_path_);
  fault::Auditor auditor;
  auditor.Check(recovered.network(), recovered.virtual_now(),
                "post_recovery", nullptr);
  EXPECT_EQ(auditor.checks(), 1);
  EXPECT_TRUE(auditor.ok()) << auditor.violation_count()
                            << " violations on the recovered state";
}

TEST_F(DurabilityTest, FreshRecoverIsANoOp) {
  Engine recovered(topo_, Options());
  const RecoverReport rep = recovered.Recover(wal_path_, snap_path_);
  EXPECT_FALSE(rep.from_snapshot);
  EXPECT_EQ(rep.batches_replayed, 0);
  EXPECT_EQ(rep.wal_valid_bytes, 0u);
  Engine fresh(topo_, Options());
  EXPECT_EQ(recovered.StateDigest(), fresh.StateDigest());
}

}  // namespace
}  // namespace drtp
