// Tests for the drtp::obs layer: metrics registry (including under the
// work-stealing pool), histogram semantics, JSON export determinism, the
// sim -> obs trace bridge, both trace exporters, and the golden-file
// property that a fixed-seed sweep's drtp.trace/1 output is independent
// of --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/json_value.h"
#include "net/generators.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "sim/obs_bridge.h"

namespace drtp::obs {
namespace {

// The registry is process-global, so every test uses its own metric
// names and asserts on deltas, never on absolute totals.
//
// Under -DDRTP_OBS_DISABLED every handle operation is a no-op, so the
// recorded-value expectations collapse to zero; kObsOn keeps both build
// modes running the same code paths.
#ifdef DRTP_OBS_DISABLED
constexpr bool kObsOn = false;
#else
constexpr bool kObsOn = true;
#endif

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  const Counter c = GetCounter("test.obs.counter_pool");
  const std::int64_t before =
      Registry::Global().Snapshot().CounterValue("test.obs.counter_pool");

  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  runner::ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      for (int j = 0; j < kPerTask; ++j) c.Add();
    });
  }
  pool.Wait();

  const std::int64_t after =
      Registry::Global().Snapshot().CounterValue("test.obs.counter_pool");
  EXPECT_EQ(after - before,
            kObsOn ? static_cast<std::int64_t>(kTasks) * kPerTask : 0);
}

TEST(Metrics, HistogramAccumulatesAcrossThreads) {
  const Histogram h = GetHistogram("test.obs.hist_pool");
  const auto find = [&] {
    const MetricsSnapshot snap = Registry::Global().Snapshot();
    for (const auto& hd : snap.histograms) {
      if (hd.name == "test.obs.hist_pool") return hd;
    }
    return MetricsSnapshot::HistogramData{};
  };
  const auto before = find();

  constexpr int kTasks = 32;
  runner::ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&, i] {
      // Deterministic workload: each task observes 1..50 shifted by its
      // index so the expected sum is exact.
      for (std::int64_t v = 1; v <= 50; ++v) h.Observe(v + i);
    });
  }
  pool.Wait();

  const auto after = find();
  EXPECT_EQ(after.count - before.count, kObsOn ? kTasks * 50 : 0);
  std::int64_t want_sum = 0;
  for (int i = 0; i < kTasks; ++i) {
    for (std::int64_t v = 1; v <= 50; ++v) want_sum += v + i;
  }
  EXPECT_EQ(after.sum - before.sum, kObsOn ? want_sum : 0);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  const Histogram h = GetHistogram("test.obs.hist_buckets");
  h.Observe(0);    // bucket 0: v <= 0
  h.Observe(-5);   // clamped into bucket 0
  h.Observe(1);    // bucket 1: [1, 1]
  h.Observe(2);    // bucket 2: [2, 3]
  h.Observe(3);    // bucket 2
  h.Observe(1000); // bucket 10: [512, 1023]

  const MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& hd) { return hd.name == "test.obs.hist_buckets"; });
  ASSERT_NE(it, snap.histograms.end());
  if (kObsOn) {
    EXPECT_EQ(it->buckets[0], 2);
    EXPECT_EQ(it->buckets[1], 1);
    EXPECT_EQ(it->buckets[2], 2);
    EXPECT_EQ(it->buckets[10], 1);
  }
  EXPECT_EQ(it->count, kObsOn ? 6 : 0);

  EXPECT_EQ(HistogramBucketUpperEdge(1), 1);
  EXPECT_EQ(HistogramBucketUpperEdge(2), 3);
  EXPECT_EQ(HistogramBucketUpperEdge(10), 1023);
}

TEST(Metrics, HistogramQuantiles) {
  const Histogram h = GetHistogram("test.obs.hist_quant");
  for (int i = 0; i < 90; ++i) h.Observe(1);
  for (int i = 0; i < 10; ++i) h.Observe(1000);

  const MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& hd) { return hd.name == "test.obs.hist_quant"; });
  ASSERT_NE(it, snap.histograms.end());
  if (!kObsOn) {
    EXPECT_EQ(it->count, 0);
    return;
  }
  // p50 falls in the bucket of 1; p99 in the bucket of 1000 ([512,1023]).
  EXPECT_EQ(it->ValueAtQuantile(0.5), 1);
  EXPECT_EQ(it->ValueAtQuantile(0.99), 1023);
  EXPECT_DOUBLE_EQ(it->Mean(), (90.0 * 1 + 10.0 * 1000) / 100.0);
}

TEST(Metrics, InterpolateQuantileEmptyAndZeroBuckets) {
  std::array<std::int64_t, kHistogramBuckets> buckets{};
  // Empty array -> 0 at every quantile.
  EXPECT_EQ(InterpolateQuantile(buckets.data(), kHistogramBuckets, 0.5), 0.0);
  // All mass in bucket 0 (v <= 0) estimates 0.
  buckets[0] = 100;
  EXPECT_EQ(InterpolateQuantile(buckets.data(), kHistogramBuckets, 0.99),
            0.0);
}

TEST(Metrics, InterpolateQuantileStaysInsideItsOctave) {
  // All mass in bucket 10 = [512, 1024): every quantile estimate must
  // land inside that octave, rising monotonically with q up to the
  // bucket's upper edge at q -> 1.
  std::array<std::int64_t, kHistogramBuckets> buckets{};
  buckets[10] = 1000;
  double prev = 0.0;
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = InterpolateQuantile(buckets.data(), kHistogramBuckets, q);
    EXPECT_GE(v, 512.0) << "q=" << q;
    EXPECT_LE(v, 1024.0) << "q=" << q;
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(
      InterpolateQuantile(buckets.data(), kHistogramBuckets, 1.0), 1024.0);
  // Exact midpoint: frac = 0.5 -> 2^9 * 2^0.5.
  EXPECT_NEAR(InterpolateQuantile(buckets.data(), kHistogramBuckets, 0.5),
              512.0 * std::exp2(0.5), 1e-9);
}

TEST(Metrics, InterpolateQuantileBimodalSplit) {
  // 90 samples of ~1 (bucket 1), 10 of ~1000 (bucket 10): p50 must read
  // from the low octave [1,2], p99 from [512,1024] — the coarse
  // ValueAtQuantile agreement the log interpolation refines.
  std::array<std::int64_t, kHistogramBuckets> buckets{};
  buckets[1] = 90;
  buckets[10] = 10;
  const double p50 =
      InterpolateQuantile(buckets.data(), kHistogramBuckets, 0.50);
  const double p99 =
      InterpolateQuantile(buckets.data(), kHistogramBuckets, 0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(Metrics, InterpolatedQuantileMatchesFreeFunction) {
  const Histogram h = GetHistogram("test.obs.hist_interp");
  for (int i = 0; i < 50; ++i) h.Observe(100);
  for (int i = 0; i < 50; ++i) h.Observe(100000);
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& hd) { return hd.name == "test.obs.hist_interp"; });
  ASSERT_NE(it, snap.histograms.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(it->InterpolatedQuantile(q),
                     InterpolateQuantile(it->buckets.data(),
                                         kHistogramBuckets, q));
  }
  if (kObsOn) {
    EXPECT_GT(it->InterpolatedQuantile(0.99), it->InterpolatedQuantile(0.5));
  }
}

TEST(Metrics, GaugeLastWriteWins) {
  const Gauge g = GetGauge("test.obs.gauge");
  g.Set(1.5);
  g.Set(42.25);
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  const auto it = std::find_if(
      snap.gauges.begin(), snap.gauges.end(),
      [](const auto& kv) { return kv.first == "test.obs.gauge"; });
  ASSERT_NE(it, snap.gauges.end());
#ifdef DRTP_OBS_DISABLED
  EXPECT_EQ(it->second, 0.0);
#else
  EXPECT_EQ(it->second, 42.25);
#endif
}

TEST(Metrics, SameNameReturnsSameSlot) {
  const Counter a = GetCounter("test.obs.same_slot");
  const Counter b = GetCounter("test.obs.same_slot");
  const std::int64_t before =
      Registry::Global().Snapshot().CounterValue("test.obs.same_slot");
  a.Add(2);
  b.Add(3);
  const std::int64_t after =
      Registry::Global().Snapshot().CounterValue("test.obs.same_slot");
#ifdef DRTP_OBS_DISABLED
  EXPECT_EQ(after - before, 0);
#else
  EXPECT_EQ(after - before, 5);
#endif
}

TEST(Metrics, JsonExportSchemaAndTimingExclusion) {
  const Counter c = GetCounter("test.obs.json_counter");
  c.Add(7);
  const Histogram timing = GetTimingHistogram("test.obs.json_timing");
  timing.Observe(123);

  const MetricsSnapshot snap = Registry::Global().Snapshot();
  JsonWriter w;
  snap.WriteJson(w, /*include_timings=*/false);
  const std::string without = w.str();
  EXPECT_NE(without.find("\"schema\":\"drtp.metrics/1\""), std::string::npos);
  EXPECT_NE(without.find("\"test.obs.json_counter\""), std::string::npos);
  // Wall-clock content must not leak into the deterministic export.
  EXPECT_EQ(without.find("test.obs.json_timing"), std::string::npos);

  JsonWriter w2;
  snap.WriteJson(w2, /*include_timings=*/true);
  EXPECT_NE(w2.str().find("test.obs.json_timing"), std::string::npos);
}

TEST(Metrics, ThreadCounterBaselineDelta) {
  const Counter c = GetCounter("test.obs.baseline");
  const ThreadCounterBaseline baseline;
  c.Add(4);
  const auto delta = baseline.Delta();
#ifdef DRTP_OBS_DISABLED
  EXPECT_TRUE(delta.empty());
#else
  const auto it = std::find_if(delta.begin(), delta.end(), [](const auto& kv) {
    return kv.first == "test.obs.baseline";
  });
  ASSERT_NE(it, delta.end());
  EXPECT_EQ(it->second, 4);
  // Another thread's counts must not appear in this thread's delta.
  std::thread other([&] { c.Add(100); });
  other.join();
  const auto delta2 = baseline.Delta();
  const auto it2 =
      std::find_if(delta2.begin(), delta2.end(), [](const auto& kv) {
        return kv.first == "test.obs.baseline";
      });
  ASSERT_NE(it2, delta2.end());
  EXPECT_EQ(it2->second, 4);
#endif
}

TEST(Span, FeedsTimingHistogram) {
  const auto count = [] {
    const MetricsSnapshot snap = Registry::Global().Snapshot();
    for (const auto& hd : snap.histograms) {
      if (hd.name == "test.obs.span") return hd.count;
    }
    return std::int64_t{0};
  };
  const Histogram h = GetTimingHistogram("test.obs.span");
  (void)h;  // ensures the name exists even when spans are compiled out
  const std::int64_t before = count();
  {
    DRTP_OBS_SPAN("test.obs.span");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
#ifdef DRTP_OBS_DISABLED
  EXPECT_EQ(count() - before, 0);
#else
  EXPECT_EQ(count() - before, 1);
#endif
}

// --- trace pipeline --------------------------------------------------------

TEST(Trace, KindNamesAreStable) {
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kAdmit), "admit");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kLinkFail), "link_fail");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kBackupBreak), "backup_break");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kReestablish), "reestablish");
}

TEST(Trace, JsonlSinkWritesSchemaVersionedLines) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  TraceEvent e;
  e.t = 12.5;
  e.kind = TraceEventKind::kAdmit;
  e.scheme = "D-LSR";
  e.conn = 3;
  e.bw = 1000000;
  const std::array<NodeId, 3> nodes = {0, 4, 7};
  e.primary = nodes;
  e.src = 0;
  e.dst = 7;
  sink.Write(e);
  sink.Finish();

  const std::string line = os.str();
  EXPECT_EQ(sink.lines_written(), 1);
  EXPECT_NE(line.find("\"schema\":\"drtp.trace/1\""), std::string::npos);
  EXPECT_NE(line.find("\"ev\":\"admit\""), std::string::npos);
  EXPECT_NE(line.find("\"scheme\":\"D-LSR\""), std::string::npos);
  EXPECT_NE(line.find("\"primary\":[0,4,7]"), std::string::npos);
  // Absent fields are omitted, not emitted as -1.
  EXPECT_EQ(line.find("\"link\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Trace, ChromeSinkOpensAndClosesSpans) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  TraceEvent admit;
  admit.t = 1.0;
  admit.kind = TraceEventKind::kAdmit;
  admit.scheme = "BF";
  admit.conn = 9;
  const std::array<NodeId, 2> nodes = {1, 2};
  admit.primary = nodes;
  sink.Write(admit);

  TraceEvent release;
  release.t = 3.5;
  release.kind = TraceEventKind::kRelease;
  release.conn = 9;
  sink.Write(release);
  sink.Finish();

  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  // 2.5 sim-seconds -> 2.5e6 trace µs.
  EXPECT_NE(out.find("\"dur\":2500000"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 3), "]}\n");
}

TEST(Trace, ObsBridgeStampsSchemeAndCell) {
  std::ostringstream os;
  JsonlTraceSink jsonl(os);
  sim::ObsBridge bridge(jsonl, "P-LSR", /*cell=*/5);
  bridge.OnRequest(2.0, 1, 0, 3, 500);
  bridge.OnLinkFail(4.0, 7, 2, 1, 0);
  jsonl.Finish();

  std::istringstream lines(os.str());
  std::string l1, l2;
  ASSERT_TRUE(std::getline(lines, l1));
  ASSERT_TRUE(std::getline(lines, l2));
  EXPECT_NE(l1.find("\"ev\":\"request\""), std::string::npos);
  EXPECT_NE(l1.find("\"scheme\":\"P-LSR\""), std::string::npos);
  EXPECT_NE(l1.find("\"cell\":5"), std::string::npos);
  EXPECT_NE(l2.find("\"ev\":\"link_fail\""), std::string::npos);
  EXPECT_NE(l2.find("\"recovered\":2"), std::string::npos);
  EXPECT_NE(l2.find("\"dropped\":1"), std::string::npos);
}

// --- golden-file determinism across --jobs --------------------------------

runner::SweepSpec TinySpec() {
  runner::SweepSpec spec;
  spec.seeds = {11};
  spec.degrees = {3.0};
  spec.patterns = {sim::TrafficPattern::kUniform};
  spec.lambdas = {0.4};
  spec.schemes = {"D-LSR"};
  spec.fast = true;
  spec.failures = 3;
  return spec;
}

std::string SweepTrace(const runner::SweepSpec& spec, int jobs) {
  runner::SweepEngine engine(spec);
  std::ostringstream os;
  JsonlTraceSink sink(os);
  runner::SweepEngine::RunOptions ro;
  ro.jobs = jobs;
  ro.trace = &sink;
  engine.Run(ro);
  return os.str();
}

// ---- flight recorder --------------------------------------------------
//
// The recorder is process-global and other tests (and, in the daemon,
// other subsystems) write into it; every assertion filters on a marker
// argument value no other writer uses.

/// Splits a dump into its lines and parses each as JSON (throws on any
/// torn line — the seqlock must never emit one).
std::vector<JsonValue> ParseDumpLines(const std::string& dump) {
  std::vector<JsonValue> out;
  std::istringstream is(dump);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) out.push_back(ParseJson(line));
  }
  return out;
}

TEST(FlightRecorderTest, DumpIsSchemaVersionedJsonl) {
  constexpr std::int64_t kMarker = 0x5EED0001;
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Record(FlightKind::kAdmit, kMarker, 4, 1);
  fr.Record(FlightKind::kLinkFail, kMarker, 2, 1, 1);
  fr.Record(FlightKind::kRpcSpan, kMarker, 0, 1000, 2000, 3000, 4000);

  std::ostringstream os;
  fr.Dump(os, "unit_test");
  const std::vector<JsonValue> lines = ParseDumpLines(os.str());
  ASSERT_GE(lines.size(), 1u);

  // Header first: schema + reason + totals consistent with the body.
  const JsonValue& header = lines[0];
  EXPECT_EQ(header.Find("schema")->AsString(), "drtp.trace/1");
  EXPECT_EQ(header.Find("ev")->AsString(), "flight_dump");
  EXPECT_EQ(header.Find("reason")->AsString(), "unit_test");
  EXPECT_EQ(header.Find("events")->AsInt64(),
            static_cast<std::int64_t>(lines.size()) - 1);

  bool saw_admit = false, saw_fail = false, saw_span = false;
  std::int64_t prev_t = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue& ev = lines[i];
    EXPECT_EQ(ev.Find("schema")->AsString(), "drtp.trace/1");
    const std::int64_t t = ev.Find("t_ns")->AsInt64();
    EXPECT_GE(t, prev_t) << "dump not sorted by t_ns";
    prev_t = t;
    const std::string& name = ev.Find("ev")->AsString();
    const JsonValue* conn = ev.Find("conn");
    const JsonValue* link = ev.Find("link");
    const JsonValue* seq = ev.Find("seq");
    if (name == "fr_admit" && conn != nullptr &&
        conn->AsInt64() == kMarker) {
      saw_admit = true;
      EXPECT_EQ(ev.Find("hops")->AsInt64(), 4);
      EXPECT_EQ(ev.Find("protected")->AsInt64(), 1);
    } else if (name == "fr_link_fail" && link != nullptr &&
               link->AsInt64() == kMarker) {
      saw_fail = true;
      EXPECT_EQ(ev.Find("recovered")->AsInt64(), 2);
      EXPECT_EQ(ev.Find("dropped")->AsInt64(), 1);
      EXPECT_EQ(ev.Find("backups_lost")->AsInt64(), 1);
    } else if (name == "fr_rpc_span" && seq != nullptr &&
               seq->AsInt64() == kMarker) {
      saw_span = true;
      EXPECT_EQ(ev.Find("decode_ns")->AsInt64(), 1000);
      EXPECT_EQ(ev.Find("reorder_ns")->AsInt64(), 2000);
      EXPECT_EQ(ev.Find("engine_ns")->AsInt64(), 3000);
      EXPECT_EQ(ev.Find("respond_ns")->AsInt64(), 4000);
    }
  }
  EXPECT_EQ(saw_admit, kObsOn);
  EXPECT_EQ(saw_fail, kObsOn);
  EXPECT_EQ(saw_span, kObsOn);
}

TEST(FlightRecorderTest, RingWrapsKeepingMostRecent) {
  constexpr std::int64_t kMarker = 0x5EED0002;
  constexpr std::int64_t kExtra = 100;
  const auto total = static_cast<std::int64_t>(kFlightRingSlots) + kExtra;
  FlightRecorder& fr = FlightRecorder::Global();
  const std::int64_t recorded_before = fr.total_recorded();
  for (std::int64_t i = 0; i < total; ++i) {
    fr.Record(FlightKind::kRelease, i, kMarker);
  }
  std::vector<std::int64_t> mine;
  for (const FlightEvent& ev : fr.Snapshot()) {
    if (ev.kind == FlightKind::kRelease && ev.args[1] == kMarker) {
      mine.push_back(ev.args[0]);
    }
  }
  if (!kObsOn) {
    EXPECT_TRUE(mine.empty());
    EXPECT_EQ(fr.total_recorded(), recorded_before);
    return;
  }
  // This thread's ring was fully overwritten by the marker events, so it
  // retains exactly the last kFlightRingSlots of them: [kExtra, total).
  ASSERT_EQ(mine.size(), kFlightRingSlots);
  EXPECT_EQ(*std::min_element(mine.begin(), mine.end()), kExtra);
  EXPECT_EQ(*std::max_element(mine.begin(), mine.end()), total - 1);
  EXPECT_EQ(fr.total_recorded() - recorded_before, total);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearADump) {
  // Writers wrap their rings while a reader dumps continuously; TSan (CI
  // tsan job) checks the seqlock discipline, the assertions below check
  // no torn event is ever emitted: every marker event must carry the
  // writer's self-consistent argument tuple (a2 == a0 ^ a1).
  constexpr std::int64_t kMarker = 0x5EED0003;
  constexpr int kWriters = 4;
  constexpr std::int64_t kPerWriter =
      static_cast<std::int64_t>(kFlightRingSlots) * 2;
  FlightRecorder& fr = FlightRecorder::Global();

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> dumps{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      fr.Dump(os, "race");
      for (const JsonValue& line : ParseDumpLines(os.str())) {
        const JsonValue* seq = line.Find("seq");
        if (line.Find("ev")->AsString() == "fr_rpc_span" && seq != nullptr &&
            seq->AsInt64() == kMarker) {
          EXPECT_EQ(line.Find("engine_ns")->AsInt64(),
                    line.Find("decode_ns")->AsInt64() ^
                        line.Find("reorder_ns")->AsInt64());
        }
      }
      dumps.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&fr, t] {
      for (std::int64_t i = 0; i < kPerWriter; ++i) {
        fr.Record(FlightKind::kRpcSpan, kMarker, t, i, t * 1000000 + i,
                  i ^ (t * 1000000 + i), 0);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GE(dumps.load(), 1);

  // Quiescent snapshot: each surviving marker event is self-consistent
  // (a3 == a1*1e6 + a2, a4 == a2 ^ a3).
  std::int64_t seen = 0;
  for (const FlightEvent& ev : fr.Snapshot()) {
    if (ev.kind != FlightKind::kRpcSpan || ev.args[0] != kMarker) continue;
    ++seen;
    ASSERT_EQ(ev.args[3], ev.args[1] * 1000000 + ev.args[2]);
    ASSERT_EQ(ev.args[4], ev.args[2] ^ ev.args[3]);
  }
  if (kObsOn) {
    // Each writer's ring retains its most recent kFlightRingSlots events
    // (reused rings may briefly hold fewer of ours — a parked ring can be
    // picked up by a later writer — but at least one full ring survives).
    EXPECT_GE(seen, static_cast<std::int64_t>(kFlightRingSlots));
    EXPECT_LE(seen,
              static_cast<std::int64_t>(kFlightRingSlots) * kWriters);
  } else {
    EXPECT_EQ(seen, 0);
  }
}

TEST(TraceGolden, SingleCellByteStableAcrossJobs) {
  const runner::SweepSpec spec = TinySpec();
  const std::string jobs1 = SweepTrace(spec, 1);
  const std::string jobs4 = SweepTrace(spec, 4);
  EXPECT_FALSE(jobs1.empty());
  // One cell: the whole file is produced by one thread in event order, so
  // byte equality must hold regardless of pool size.
  EXPECT_EQ(jobs1, jobs4);
  // And re-running the identical sweep reproduces it exactly.
  EXPECT_EQ(jobs1, SweepTrace(spec, 2));
}

TEST(TraceGolden, MultiCellLineSetStableAcrossJobs) {
  runner::SweepSpec spec = TinySpec();
  spec.schemes = {"D-LSR", "P-LSR", "BF"};
  spec.lambdas = {0.4, 0.8};
  const auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  // Cells interleave nondeterministically under --jobs > 1, but every
  // cell-stamped line must be present with identical bytes.
  EXPECT_EQ(sorted_lines(SweepTrace(spec, 1)),
            sorted_lines(SweepTrace(spec, 4)));
}

}  // namespace
}  // namespace drtp::obs
