// Tests for the drtpd service layer (src/svc): wire framing, the
// drtp.rpc/1 decoder, the batched admission engine, pipeline determinism
// across decode-pool sizes, the unix-socket server end to end, and the
// replay-equivalence contract that pins a live daemon's final state to an
// offline sim::RunScenario replay of its request log.
#include <gtest/gtest.h>
#include <sys/uio.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/json_value.h"
#include "common/log.h"
#include "common/socket.h"
#include "net/generators.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/paper.h"
#include "sim/scenario.h"
#include "sim/traffic.h"
#include "svc/engine.h"
#include "svc/pipeline.h"
#include "svc/rpc.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace drtp {
namespace {

using svc::DecodedRequest;
using svc::DecodeRequest;
using svc::Engine;
using svc::EngineOptions;
using svc::FrameReader;

// ---- payload builders -------------------------------------------------

std::string AdmitPayload(std::int64_t id, ConnId conn, NodeId src, NodeId dst,
                         Bandwidth bw) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("admit");
  w.Key("params").BeginObject();
  w.Key("conn").Int(conn);
  w.Key("src").Int(src);
  w.Key("dst").Int(dst);
  w.Key("bw_kbps").Int(bw);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ReleasePayload(std::int64_t id, ConnId conn) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("release");
  w.Key("params").BeginObject();
  w.Key("conn").Int(conn);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string LinkPayload(std::int64_t id, const char* method, LinkId link) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String(method);
  w.Key("params").BeginObject();
  w.Key("link").Int(link);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string StatsPayload(std::int64_t id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("stats");
  w.EndObject();
  return w.str();
}

/// Runs one payload through the engine as a single-request batch and
/// returns the parsed response.
JsonValue Run1(Engine& engine, const std::string& payload) {
  const DecodedRequest d = DecodeRequest(payload);
  const std::vector<std::string> out = engine.ExecuteBatch({&d, 1});
  EXPECT_EQ(out.size(), 1u);
  return ParseJson(out[0]);
}

const JsonValue& Get(const JsonValue& v, std::string_view key) {
  const JsonValue* f = v.Find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return *f;
}

std::string ErrorCode(const JsonValue& resp) {
  EXPECT_FALSE(Get(resp, "ok").AsBool());
  return Get(Get(resp, "error"), "code").AsString();
}

// ---- wire framing -----------------------------------------------------

TEST(WireTest, RoundTripsByteAtATime) {
  const std::string frame =
      svc::EncodeFrame("hello") + svc::EncodeFrame("") + svc::EncodeFrame("x");
  FrameReader reader;
  std::vector<std::string> got;
  for (const char c : frame) {
    ASSERT_TRUE(reader.Feed(std::string_view(&c, 1)));
    while (auto p = reader.Next()) got.push_back(*p);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "");
  EXPECT_EQ(got[2], "x");
  EXPECT_EQ(reader.pending_bytes(), 0u);
  EXPECT_TRUE(reader.error().empty());
}

TEST(WireTest, ManyFramesInOneFeed) {
  std::string stream;
  for (int i = 0; i < 100; ++i) {
    stream += svc::EncodeFrame("payload-" + std::to_string(i));
  }
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(stream));
  int n = 0;
  while (auto p = reader.Next()) {
    EXPECT_EQ(*p, "payload-" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 100);
}

TEST(WireTest, TornFrameStaysPending) {
  const std::string frame = svc::EncodeFrame("truncated payload");
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(std::string_view(frame).substr(0, frame.size() - 3)));
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_GT(reader.pending_bytes(), 0u);  // the EOF torn-frame signal
  EXPECT_TRUE(reader.error().empty());
  // The rest arrives: the frame completes normally.
  ASSERT_TRUE(reader.Feed(std::string_view(frame).substr(frame.size() - 3)));
  const auto p = reader.Next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, "truncated payload");
}

TEST(WireTest, OversizedHeaderPoisonsReader) {
  // Header declaring kMaxFrameBytes + 1: rejected before buffering.
  char header[4];
  svc::EncodeFrameHeader(svc::kMaxFrameBytes, header);  // max itself is ok
  FrameReader ok_reader;
  EXPECT_TRUE(ok_reader.Feed(std::string_view(header, 4)));
  EXPECT_TRUE(ok_reader.error().empty());

  const std::uint32_t too_big =
      static_cast<std::uint32_t>(svc::kMaxFrameBytes) + 1;
  const char bad[4] = {static_cast<char>(too_big >> 24),
                       static_cast<char>(too_big >> 16),
                       static_cast<char>(too_big >> 8),
                       static_cast<char>(too_big)};
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(std::string_view(bad, 4)));
  EXPECT_FALSE(reader.Next().has_value());  // detection happens on Next()
  EXPECT_FALSE(reader.error().empty());
  EXPECT_FALSE(reader.Feed("more"));  // poisoned for good
  EXPECT_FALSE(reader.Next().has_value());
}

// ---- frame writer (failure injection) ---------------------------------

/// FrameWriter with a scripted DoWritev: each step either consumes up to
/// `accept` bytes or fails with `fail_errno`. Steps repeat the last entry
/// once exhausted.
class FakeWriter : public svc::FrameWriter {
 public:
  struct Step {
    long accept = 0;   ///< bytes to consume (0 with errno = failure)
    int fail_errno = 0;
  };

  explicit FakeWriter(std::vector<Step> steps)
      : svc::FrameWriter(-1), steps_(std::move(steps)) {}

  const std::string& written() const { return written_; }
  int calls() const { return calls_; }

 protected:
  long DoWritev(const iovec* iov, int iovcnt) override {
    const Step& step =
        steps_[std::min<std::size_t>(static_cast<std::size_t>(calls_),
                                     steps_.size() - 1)];
    ++calls_;
    if (step.fail_errno != 0) {
      errno = step.fail_errno;
      return -1;
    }
    long left = step.accept;
    long taken = 0;
    for (int i = 0; i < iovcnt && left > 0; ++i) {
      const long n = std::min<long>(left, static_cast<long>(iov[i].iov_len));
      written_.append(static_cast<const char*>(iov[i].iov_base),
                      static_cast<std::size_t>(n));
      taken += n;
      left -= n;
    }
    return taken;
  }

 private:
  std::vector<Step> steps_;
  std::string written_;
  int calls_ = 0;
};

TEST(FrameWriterTest, ShortWritesAreCompletedByteForByte) {
  // 3 bytes per call: the header/payload iovec boundary is crossed
  // mid-write and every byte must still land exactly once, in order.
  FakeWriter writer(std::vector<FakeWriter::Step>{{.accept = 3}});
  const svc::WriteResult res = writer.WriteFrame("hello, short writes");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(writer.written(), svc::EncodeFrame("hello, short writes"));
  EXPECT_GT(writer.calls(), 1);
}

TEST(FrameWriterTest, EintrIsRetriedNotReported) {
  FakeWriter writer({{.fail_errno = EINTR},
                     {.fail_errno = EINTR},
                     {.accept = 1 << 20}});
  const svc::WriteResult res = writer.WriteFrame("interrupted");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(writer.written(), svc::EncodeFrame("interrupted"));
  EXPECT_EQ(writer.calls(), 3);
}

TEST(FrameWriterTest, ErrnoTaxonomyIsExplicit) {
  struct Case {
    int err;
    svc::WriteStatus want;
    const char* name;
  };
  const Case cases[] = {
      {EPIPE, svc::WriteStatus::kPeerGone, "peer_gone"},
      {ECONNRESET, svc::WriteStatus::kPeerGone, "peer_gone"},
      {ENOSPC, svc::WriteStatus::kNoSpace, "no_space"},
      {EDQUOT, svc::WriteStatus::kNoSpace, "no_space"},
      {EIO, svc::WriteStatus::kIoError, "io_error"},
      {EBADF, svc::WriteStatus::kIoError, "io_error"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(svc::ClassifyWriteErrno(c.err), c.want) << c.err;
    FakeWriter writer(std::vector<FakeWriter::Step>{{.fail_errno = c.err}});
    const svc::WriteResult res = writer.WriteFrame("doomed");
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status, c.want);
    EXPECT_EQ(res.error_errno, c.err);
    EXPECT_NE(res.message().find(c.name), std::string::npos)
        << res.message();
  }
}

TEST(FrameWriterTest, FailureAfterPartialWriteReportsNotOk) {
  // A frame that dies halfway: the caller must see the failure (the
  // server drops the client; the WAL treats it as fatal) — a half-frame
  // reported as success would desync the peer's reader forever.
  FakeWriter writer({{.accept = 2}, {.fail_errno = EPIPE}});
  const svc::WriteResult res = writer.WriteFrame("half");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status, svc::WriteStatus::kPeerGone);
}

TEST(FrameWriterTest, ZeroReturnIsIoErrorNotInfiniteLoop) {
  FakeWriter writer({{.accept = 0, .fail_errno = 0}});
  const svc::WriteResult res = writer.WriteFrame("stuck");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status, svc::WriteStatus::kIoError);
}

// ---- drtp.rpc/1 decoding ----------------------------------------------

TEST(RpcTest, MalformedJsonIsBadJson) {
  const DecodedRequest d = DecodeRequest("{not json");
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.error_code, svc::kErrBadJson);
  EXPECT_EQ(d.id, -1);
}

TEST(RpcTest, WrongSchemaIsBadRequest) {
  const DecodedRequest d = DecodeRequest(
      R"({"schema":"drtp.rpc/99","id":7,"method":"stats"})");
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.error_code, svc::kErrBadRequest);
  EXPECT_EQ(d.id, 7) << "id must be recovered for response correlation";
}

TEST(RpcTest, UnknownMethod) {
  const DecodedRequest d = DecodeRequest(
      R"({"schema":"drtp.rpc/1","id":3,"method":"frobnicate"})");
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.error_code, svc::kErrUnknownMethod);
  EXPECT_EQ(d.id, 3);
}

TEST(RpcTest, AdmitParameterValidation) {
  // Missing params object.
  EXPECT_EQ(DecodeRequest(R"({"schema":"drtp.rpc/1","id":1,"method":"admit"})")
                .error_code,
            svc::kErrBadRequest);
  // src == dst.
  EXPECT_EQ(
      DecodeRequest(
          R"({"schema":"drtp.rpc/1","id":1,"method":"admit",)"
          R"("params":{"conn":5,"src":2,"dst":2,"bw_kbps":100}})")
          .error_code,
      svc::kErrBadRequest);
  // Non-positive bandwidth.
  EXPECT_EQ(
      DecodeRequest(
          R"({"schema":"drtp.rpc/1","id":1,"method":"admit",)"
          R"("params":{"conn":5,"src":2,"dst":3,"bw_kbps":0}})")
          .error_code,
      svc::kErrBadRequest);
}

TEST(RpcTest, GoodAdmitDecodes) {
  const DecodedRequest d = DecodeRequest(AdmitPayload(42, 7, 1, 9, Mbps(2)));
  ASSERT_TRUE(d.ok) << d.error_code << ": " << d.error_detail;
  EXPECT_EQ(d.request.id, 42);
  EXPECT_EQ(d.request.method, svc::Method::kAdmit);
  EXPECT_EQ(d.request.conn, 7);
  EXPECT_EQ(d.request.src, 1);
  EXPECT_EQ(d.request.dst, 9);
  EXPECT_EQ(d.request.bw, Mbps(2));
}

// ---- malformed-input corpus -------------------------------------------

/// Reads the checked-in corpus manifest: `<file> <expected error code>`
/// per line (tests/testdata/rpc_corpus/MANIFEST).
std::vector<std::pair<std::string, std::string>> ReadCorpusManifest() {
  const std::string dir = std::string(DRTP_TESTDATA_DIR) + "/rpc_corpus/";
  std::ifstream in(dir + "MANIFEST");
  EXPECT_TRUE(in.good()) << "missing " << dir << "MANIFEST";
  std::vector<std::pair<std::string, std::string>> out;
  std::string file, code;
  while (in >> file >> code) out.emplace_back(dir + file, code);
  return out;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(RpcCorpusTest, EveryMalformedFrameGetsItsPinnedErrorCode) {
  // Truncated, oversized, deep-nested, non-UTF-8, overflowing, duplicate
  // -keyed, control-character frames: each decodes to the exact error
  // code pinned in the manifest — stable taxonomy, never a crash (the
  // ASan/UBSan CI job runs this test under sanitizers).
  const auto corpus = ReadCorpusManifest();
  ASSERT_GE(corpus.size(), 20u);
  for (const auto& [path, want] : corpus) {
    const std::string payload = ReadFileBytes(path);
    const DecodedRequest d = DecodeRequest(payload);
    EXPECT_FALSE(d.ok) << path;
    EXPECT_EQ(d.error_code, want) << path;
    // The pre-decode id scan must also survive every corpus entry.
    (void)svc::ExtractRequestId(payload);
  }
}

TEST(RpcCorpusTest, EngineAnswersEveryMalformedFrame) {
  // End to end through the batch path: every corpus frame produces
  // exactly one well-formed ok=false response — never a dropped frame,
  // never a throw out of ExecuteBatch.
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 20, .avg_degree = 4.0, .seed = 3});
  Engine engine(topo, EngineOptions{});
  const std::uint64_t fresh = engine.StateDigest();
  for (const auto& [path, want] : ReadCorpusManifest()) {
    const DecodedRequest d = DecodeRequest(ReadFileBytes(path));
    const std::vector<std::string> out = engine.ExecuteBatch({&d, 1});
    ASSERT_EQ(out.size(), 1u) << path;
    const JsonValue resp = ParseJson(out[0]);
    EXPECT_FALSE(Get(resp, "ok").AsBool()) << path;
    EXPECT_EQ(Get(Get(resp, "error"), "code").AsString(), want) << path;
  }
  // Malformed input is state-neutral: no admission, no clock advance.
  EXPECT_EQ(engine.StateDigest(), fresh);
  EXPECT_EQ(engine.virtual_now(), 0.0);
}

// ---- overload ----------------------------------------------------------

TEST(OverloadTest, OverloadedResponseCarriesRetryHint) {
  const std::string resp = svc::RenderOverloadedResponse(42, 3);
  const JsonValue v = ParseJson(resp);
  EXPECT_EQ(Get(v, "id").AsInt64(), 42);
  EXPECT_FALSE(Get(v, "ok").AsBool());
  const JsonValue& err = Get(v, "error");
  EXPECT_EQ(Get(err, "code").AsString(), svc::kErrOverloaded);
  EXPECT_EQ(Get(err, "retry_after_ms").AsInt64(), 3);
}

TEST(OverloadTest, ExtractRequestIdScansWithoutParsing) {
  EXPECT_EQ(svc::ExtractRequestId(R"({"id":123,"method":"x"})"), 123);
  EXPECT_EQ(svc::ExtractRequestId(R"({ "id" : 7 })"), 7);
  EXPECT_EQ(svc::ExtractRequestId("no id here"), -1);
  EXPECT_EQ(svc::ExtractRequestId(R"({"id":"nan"})"), -1);
  EXPECT_EQ(svc::ExtractRequestId(""), -1);
}

TEST(OverloadTest, PipelineShedsAboveMaxInflightAndRecovers) {
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 12, .avg_degree = 3.0, .seed = 2});
  Engine engine(topo, EngineOptions{});
  std::mutex mu;
  int responses = 0;
  svc::PipelineOptions po;
  po.threads = 1;
  po.batch_max = 64;
  po.linger_us = -1;  // nothing executes until drain: submissions pile up
  po.max_inflight = 4;
  svc::Pipeline pipeline(engine, po,
                         [&](std::uint64_t, std::uint64_t, std::string) {
                           std::lock_guard<std::mutex> l(mu);
                           ++responses;
                         });
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    std::string payload = AdmitPayload(i, i, 0, 5, Mbps(1));
    if (pipeline.TrySubmit(1, payload).has_value()) {
      ++accepted;
    } else {
      ++shed;
      EXPECT_FALSE(payload.empty())
          << "shed must not consume the payload (the server still "
             "answers it)";
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(pipeline.shed(), 6);
  EXPECT_GE(pipeline.RetryAfterMs(), 1);
  pipeline.Drain();
  EXPECT_EQ(responses, 4) << "every accepted frame must be answered";
}

TEST(OverloadTest, CapacityFreesAsResponsesFlow) {
  // With a live engine thread (linger 0) the window drains continuously:
  // a closed-loop submitter far past max_inflight still gets every
  // accepted frame answered, and accepted + shed accounts for all.
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 12, .avg_degree = 3.0, .seed = 2});
  Engine engine(topo, EngineOptions{});
  std::mutex mu;
  int responses = 0;
  svc::PipelineOptions po;
  po.threads = 2;
  po.batch_max = 8;
  po.linger_us = 0;
  po.max_inflight = 4;
  svc::Pipeline pipeline(engine, po,
                         [&](std::uint64_t, std::uint64_t, std::string) {
                           std::lock_guard<std::mutex> l(mu);
                           ++responses;
                         });
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    std::string payload = AdmitPayload(i, i, i % 12, (i + 5) % 12, Mbps(1));
    if (pipeline.TrySubmit(1, payload).has_value()) ++accepted;
  }
  pipeline.Drain();
  EXPECT_EQ(responses, accepted);
  EXPECT_EQ(pipeline.shed(), 200 - accepted);
  EXPECT_GE(accepted, 4) << "the first max_inflight frames always fit";
}

// ---- engine -----------------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : topo_(net::MakeWaxman(
            net::WaxmanConfig{.nodes = 20, .avg_degree = 4.0, .seed = 3})) {}

  net::Topology topo_;
};

TEST_F(EngineTest, AdmitReleaseLifecycle) {
  Engine engine(topo_, EngineOptions{});
  const JsonValue admit = Run1(engine, AdmitPayload(1, 100, 0, 5, Mbps(1)));
  ASSERT_TRUE(Get(admit, "ok").AsBool());
  const JsonValue& result = Get(admit, "result");
  ASSERT_TRUE(Get(result, "admitted").AsBool());
  EXPECT_GT(Get(result, "primary_hops").AsInt64(), 0);
  EXPECT_TRUE(Get(result, "protected").AsBool());  // D-LSR finds a backup
  EXPECT_EQ(engine.network().ActiveCount(), 1);

  const JsonValue release = Run1(engine, ReleasePayload(2, 100));
  ASSERT_TRUE(Get(release, "ok").AsBool());
  EXPECT_TRUE(Get(Get(release, "result"), "released").AsBool());
  EXPECT_EQ(engine.network().ActiveCount(), 0);
  EXPECT_EQ(engine.stats().admitted, 1);
  EXPECT_EQ(engine.stats().released, 1);
}

TEST_F(EngineTest, DuplicateConnectionIdRejected) {
  Engine engine(topo_, EngineOptions{});
  ASSERT_TRUE(Get(Run1(engine, AdmitPayload(1, 7, 0, 5, Mbps(1))), "ok")
                  .AsBool());
  const JsonValue dup = Run1(engine, AdmitPayload(2, 7, 3, 9, Mbps(1)));
  EXPECT_EQ(ErrorCode(dup), svc::kErrConnExists);
  EXPECT_EQ(Get(dup, "id").AsInt64(), 2);
  EXPECT_EQ(engine.network().ActiveCount(), 1);
}

TEST_F(EngineTest, ReleaseUnknownConnectionIsNotFound) {
  Engine engine(topo_, EngineOptions{});
  EXPECT_EQ(ErrorCode(Run1(engine, ReleasePayload(1, 999))),
            svc::kErrNotFound);
}

TEST_F(EngineTest, NodeAndLinkRangeChecks) {
  Engine engine(topo_, EngineOptions{});
  EXPECT_EQ(ErrorCode(Run1(
                engine, AdmitPayload(1, 1, 0, topo_.num_nodes(), Mbps(1)))),
            svc::kErrOutOfRange);
  EXPECT_EQ(
      ErrorCode(Run1(engine, LinkPayload(2, "fail-link", topo_.num_links()))),
      svc::kErrOutOfRange);
}

TEST_F(EngineTest, FailAndRepairLinkReportEnactment) {
  Engine engine(topo_, EngineOptions{});
  ASSERT_TRUE(Get(Run1(engine, AdmitPayload(1, 1, 0, 5, Mbps(1))), "ok")
                  .AsBool());

  const JsonValue fail = Run1(engine, LinkPayload(2, "fail-link", 0));
  ASSERT_TRUE(Get(fail, "ok").AsBool());
  EXPECT_TRUE(Get(Get(fail, "result"), "changed").AsBool());
  // Failing an already-down link is a no-op, not an error.
  const JsonValue again = Run1(engine, LinkPayload(3, "fail-link", 0));
  ASSERT_TRUE(Get(again, "ok").AsBool());
  EXPECT_FALSE(Get(Get(again, "result"), "changed").AsBool());

  const JsonValue repair = Run1(engine, LinkPayload(4, "repair-link", 0));
  ASSERT_TRUE(Get(repair, "ok").AsBool());
  EXPECT_TRUE(Get(Get(repair, "result"), "changed").AsBool());
  EXPECT_EQ(engine.stats().link_fails, 1);
  EXPECT_EQ(engine.stats().link_repairs, 1);
}

TEST_F(EngineTest, StatsReportStateAndDigest) {
  Engine engine(topo_, EngineOptions{});
  const JsonValue before = Run1(engine, StatsPayload(1));
  const std::string digest0 = Get(Get(before, "result"), "digest").AsString();
  EXPECT_EQ(Get(Get(before, "result"), "active").AsInt64(), 0);

  ASSERT_TRUE(Get(Run1(engine, AdmitPayload(2, 1, 0, 5, Mbps(1))), "ok")
                  .AsBool());
  const JsonValue after = Run1(engine, StatsPayload(3));
  const JsonValue& r = Get(after, "result");
  EXPECT_EQ(Get(r, "active").AsInt64(), 1);
  EXPECT_EQ(Get(r, "nodes").AsInt64(), topo_.num_nodes());
  EXPECT_GT(Get(r, "prime_kbps").AsInt64(), 0);
  EXPECT_NE(Get(r, "digest").AsString(), digest0)
      << "digest must reflect table/ledger changes";
}

TEST_F(EngineTest, StatsFieldOrderIsPinned) {
  // The default stats result is part of the deterministic wire contract
  // (threads=1 vs threads=4 byte-equality, drtpload's report): its field
  // order is pinned. New fields append; nothing reorders.
  Engine engine(topo_, EngineOptions{});
  ASSERT_TRUE(Get(Run1(engine, AdmitPayload(1, 1, 0, 5, Mbps(1))), "ok")
                  .AsBool());
  const DecodedRequest d = DecodeRequest(StatsPayload(2));
  const std::vector<std::string> out = engine.ExecuteBatch({&d, 1});
  ASSERT_EQ(out.size(), 1u);
  const std::string& raw = out[0];

  const char* const kOrder[] = {
      "nodes",        "links",      "active",           "frames",
      "errors",       "admitted",   "blocked",          "released",
      "link_fails",   "link_repairs", "batches",        "prime_kbps",
      "spare_kbps",   "overbooked_links", "pbk_hits",   "pbk_trials",
      "pbk",          "digest",     "audit_checks",     "audit_violations",
      "degraded",     "batch_last", "request_log_events",
      "wal_batches",  "wal_bytes",  "snapshots",          "shed"};
  std::size_t pos = 0;
  for (const char* key : kOrder) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = raw.find(needle, pos);
    ASSERT_NE(at, std::string::npos)
        << "stats field '" << key << "' missing or out of order in " << raw;
    pos = at + needle.size();
  }
  // The default response must NOT carry the wall-clock metrics snapshot.
  EXPECT_EQ(raw.find("\"metrics\""), std::string::npos);
}

TEST_F(EngineTest, StatsMetricsOptInAttachesRegistrySnapshot) {
  Engine engine(topo_, EngineOptions{});
  const std::string payload = [] {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String(svc::kRpcSchema);
    w.Key("id").Int(1);
    w.Key("method").String("stats");
    w.Key("params").BeginObject();
    w.Key("metrics").Bool(true);
    w.EndObject();
    w.EndObject();
    return w.str();
  }();
  const JsonValue resp = Run1(engine, payload);
  ASSERT_TRUE(Get(resp, "ok").AsBool());
  const JsonValue& metrics = Get(Get(resp, "result"), "metrics");
  EXPECT_EQ(Get(metrics, "schema").AsString(), "drtp.metrics/1");
  EXPECT_TRUE(Get(metrics, "counters").is_object());
  EXPECT_TRUE(Get(metrics, "gauges").is_object());
  EXPECT_TRUE(Get(metrics, "histograms").is_array());
}

TEST_F(EngineTest, DegradedCountTracksBackupLoss) {
  Engine engine(topo_, EngineOptions{});
  ASSERT_TRUE(Get(Run1(engine, AdmitPayload(1, 1, 0, 5, Mbps(1))), "ok")
                  .AsBool());
  EXPECT_EQ(engine.DegradedCount(), 0);
  const JsonValue stats = Run1(engine, StatsPayload(2));
  EXPECT_EQ(Get(Get(stats, "result"), "degraded").AsInt64(), 0);
  EXPECT_EQ(Get(Get(stats, "result"), "batch_last").AsInt64(), 1);
}

TEST_F(EngineTest, BatchedAdmissionsShareOneSnapshot) {
  // A whole batch admits against the snapshot taken at batch start; the
  // responses must be ok and the table must hold every admission.
  Engine engine(topo_, EngineOptions{});
  std::vector<std::string> payloads;
  std::vector<DecodedRequest> batch;
  for (int i = 0; i < 32; ++i) {
    payloads.push_back(AdmitPayload(i, i, i % topo_.num_nodes(),
                                    (i + 7) % topo_.num_nodes(), Mbps(1)));
  }
  for (const std::string& p : payloads) batch.push_back(DecodeRequest(p));
  const std::vector<std::string> out = engine.ExecuteBatch(batch);
  ASSERT_EQ(out.size(), batch.size());
  std::int64_t admitted = 0;
  for (const std::string& resp : out) {
    const JsonValue v = ParseJson(resp);
    ASSERT_TRUE(Get(v, "ok").AsBool());
    if (Get(Get(v, "result"), "admitted").AsBool()) ++admitted;
  }
  EXPECT_EQ(admitted, engine.network().ActiveCount());
  EXPECT_GT(admitted, 0);
  EXPECT_EQ(engine.stats().batches, 1);
}

TEST_F(EngineTest, AuditIntervalRunsAndStaysClean) {
  std::ostringstream audit;
  EngineOptions eo;
  eo.audit_interval = 2;
  eo.audit_out = &audit;
  Engine engine(topo_, eo);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        Get(Run1(engine, AdmitPayload(i, i, 0, 5 + i % 5, Mbps(1))), "ok")
            .AsBool());
  }
  EXPECT_EQ(engine.FinalAudit(), 0) << audit.str();
  // 8 single-request batches at interval 2 -> 4 batch audits + drain.
  EXPECT_GE(engine.audit_checks(), 5);
  EXPECT_EQ(engine.audit_violations(), 0);
}

// ---- pipeline determinism ---------------------------------------------

/// Submits `payloads` through a pipeline with the given decode-pool size
/// and returns the responses in seq order.
std::vector<std::string> RunPipeline(const net::Topology& topo,
                                     const std::vector<std::string>& payloads,
                                     int threads) {
  Engine engine(topo, EngineOptions{});
  std::mutex mu;
  std::map<std::uint64_t, std::string> by_seq;
  svc::PipelineOptions po;
  po.threads = threads;
  po.batch_max = 8;
  po.linger_us = -1;  // deterministic batch formation
  svc::Pipeline pipeline(engine, po,
                         [&](std::uint64_t seq, std::uint64_t /*client*/,
                             std::string response) {
                           std::lock_guard<std::mutex> l(mu);
                           by_seq.emplace(seq, std::move(response));
                         });
  for (const std::string& p : payloads) pipeline.Submit(1, p);
  pipeline.Drain();
  EXPECT_EQ(pipeline.responded(), payloads.size());
  std::vector<std::string> out;
  out.reserve(by_seq.size());
  for (auto& [seq, resp] : by_seq) out.push_back(std::move(resp));
  return out;
}

TEST(PipelineTest, ResponsesAreByteIdenticalAcrossThreadCounts) {
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 30, .avg_degree = 4.0, .seed = 5});
  // A mixed sequence: admits, releases, errors, failures, stats — enough
  // to cross several batch boundaries (batch_max = 8).
  std::vector<std::string> payloads;
  for (int i = 0; i < 60; ++i) {
    switch (i % 6) {
      case 0:
      case 1:
      case 2:
        payloads.push_back(AdmitPayload(i, i, (3 * i) % 30, (3 * i + 11) % 30,
                                        Mbps(1)));
        break;
      case 3:
        payloads.push_back(ReleasePayload(i, i - 3));
        break;
      case 4:
        payloads.push_back(i % 12 == 4 ? LinkPayload(i, "fail-link", i % 40)
                                       : LinkPayload(i, "repair-link", i % 40));
        break;
      default:
        payloads.push_back(i % 12 == 5 ? StatsPayload(i)
                                       : "{\"broken\":");  // bad_json
        break;
    }
  }
  const std::vector<std::string> single = RunPipeline(topo, payloads, 1);
  const std::vector<std::string> pooled = RunPipeline(topo, payloads, 4);
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], pooled[i]) << "response " << i << " diverged";
  }
}

TEST(PipelineTest, StatsGaugesAndDigestIdenticalAcrossThreadCountsAfterDrain) {
  // The acceptance contract: a drained daemon's stats response —
  // including every engine gauge (active/degraded/batch_last/request-log
  // size) and the state digest — must be byte-identical between a
  // single-decoder and a 4-decoder pipeline, and the obs pipeline
  // occupancy gauges must read the same (drain zeroes them) so even the
  // opt-in metrics view of gauges converges.
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 30, .avg_degree = 4.0, .seed = 9});
  std::vector<std::string> payloads;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back(
        AdmitPayload(i, i, (7 * i) % 30, (7 * i + 13) % 30, Mbps(1)));
  }
  payloads.push_back(LinkPayload(40, "fail-link", 3));
  payloads.push_back(StatsPayload(41));  // the drained final view

  const auto pipeline_gauges = [] {
    std::vector<std::pair<std::string, double>> out;
    for (const auto& [name, value] : obs::Registry::Global().Snapshot().gauges) {
      if (name.rfind("drtp.svc.pipeline.", 0) == 0) out.emplace_back(name, value);
    }
    return out;
  };

  const std::vector<std::string> single = RunPipeline(topo, payloads, 1);
  const auto gauges_single = pipeline_gauges();
  const std::vector<std::string> pooled = RunPipeline(topo, payloads, 4);
  const auto gauges_pooled = pipeline_gauges();

  ASSERT_EQ(single.size(), pooled.size());
  EXPECT_EQ(single.back(), pooled.back()) << "final stats response diverged";
  // The stats response really is the one carrying the digest + gauges.
  const JsonValue stats = ParseJson(single.back());
  const JsonValue& result = Get(stats, "result");
  EXPECT_FALSE(Get(result, "digest").AsString().empty());
  EXPECT_GE(Get(result, "degraded").AsInt64(), 0);
  EXPECT_EQ(gauges_single, gauges_pooled)
      << "post-drain pipeline occupancy gauges diverged across thread counts";
}

TEST(PipelineTest, DrainAnswersEverySubmittedFrame) {
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 12, .avg_degree = 3.0, .seed = 2});
  Engine engine(topo, EngineOptions{});
  std::mutex mu;
  int responses = 0;
  svc::PipelineOptions po;
  po.threads = 2;
  po.batch_max = 64;
  po.linger_us = -1;  // nothing runs until drain: all 5 are in flight
  svc::Pipeline pipeline(engine, po,
                         [&](std::uint64_t, std::uint64_t, std::string) {
                           std::lock_guard<std::mutex> l(mu);
                           ++responses;
                         });
  for (int i = 0; i < 5; ++i) {
    pipeline.Submit(1, AdmitPayload(i, i, 0, 5, Mbps(1)));
  }
  pipeline.Drain();
  EXPECT_EQ(responses, 5);
  EXPECT_EQ(pipeline.submitted(), 5u);
  EXPECT_EQ(pipeline.responded(), 5u);
}

// ---- replay equivalence -----------------------------------------------

// The acceptance demo: drive a live engine (60-node Waxman, batch = 1 so
// the per-batch snapshot degenerates to the simulator's instant
// advertisement mode), capture its request log, replay the log through
// sim::RunScenario — the offline drtpsim path — and require the exact
// same final network state digest.
TEST(ReplayTest, LiveEngineMatchesOfflineScenarioReplay) {
  const net::Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 60, .avg_degree = 4.0, .seed = 11});

  EngineOptions eo;
  eo.scheme = "D-LSR";
  eo.num_backups = 1;
  eo.keep_request_log = true;
  Engine engine(topo, eo);

  sim::TrafficConfig tc;
  tc.lambda = 0.4;
  tc.duration = 400.0;
  tc.seed = 11;
  const std::vector<sim::Request> requests = sim::GenerateRequests(topo, tc);
  ASSERT_GT(requests.size(), 50u);

  // Interleave admits with releases of roughly half the earlier
  // connections, plus a couple of link failures and one repair so the
  // replay exercises switchover state too.
  std::int64_t id = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const sim::Request& r = requests[i];
    Run1(engine, AdmitPayload(id++, r.id, r.src, r.dst, r.bw));
    if (i % 2 == 1 && i >= 2) {
      Run1(engine, ReleasePayload(id++, requests[i - 2].id));
    }
    if (i == 20) Run1(engine, LinkPayload(id++, "fail-link", 3));
    if (i == 40) Run1(engine, LinkPayload(id++, "fail-link", 17));
    if (i == 60) Run1(engine, LinkPayload(id++, "repair-link", 3));
  }
  ASSERT_GT(engine.stats().admitted, 0);
  ASSERT_GT(engine.network().ActiveCount(), 0);
  const std::uint64_t live_digest = engine.StateDigest();

  // Round-trip the log through the scenario file format — the same bytes
  // `drtpd --request-log` writes and `drtpsim run --scenario` loads.
  std::stringstream file;
  engine.RequestLog().Save(file);
  const sim::Scenario log = sim::Scenario::Load(file);
  ASSERT_EQ(log.events.size(), static_cast<std::size_t>(id));

  sim::ExperimentConfig cfg;
  cfg.warmup = 0.0;
  cfg.num_backups = 1;
  cfg.reprotect_max_retries = 0;  // the daemon schedules no retries
  std::uint64_t replay_digest = 0;
  cfg.inspect_final = [&](const core::DrtpNetwork& net) {
    replay_digest = svc::NetworkStateDigest(net);
  };
  const auto scheme = sim::MakeScheme("D-LSR", topo, 1);
  sim::RunScenario(topo, log, *scheme, cfg);

  EXPECT_EQ(replay_digest, live_digest)
      << "offline replay must reproduce the live daemon's table, ledger, "
         "and APLV state bit-for-bit";
}

// ---- server end to end ------------------------------------------------

class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    std::string error;
    fd_ = ConnectUnix(path, &error);
    EXPECT_TRUE(fd_.valid()) << error;
  }

  void Send(const std::string& payload) {
    const std::string frame = svc::EncodeFrame(payload);
    ASSERT_TRUE(SendAll(fd_.get(), frame.data(), frame.size()));
  }

  void SendRaw(const std::string& bytes) {
    ASSERT_TRUE(SendAll(fd_.get(), bytes.data(), bytes.size()));
  }

  /// Blocks for the next response payload; empty on EOF.
  std::string ReadOne() {
    for (;;) {
      if (auto p = reader_.Next()) return *p;
      char buf[4096];
      const long r = RecvSome(fd_.get(), buf, sizeof buf);
      if (r <= 0) return "";
      reader_.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
    }
  }

  bool AtEof() {
    char buf[64];
    return RecvSome(fd_.get(), buf, sizeof buf) <= 0;
  }

 private:
  UniqueFd fd_;
  FrameReader reader_;
};

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : topo_(net::MakeWaxman(
            net::WaxmanConfig{.nodes = 16, .avg_degree = 3.5, .seed = 9})),
        engine_(topo_, EngineOptions{}),
        path_(::testing::TempDir() + "/svc_test.sock") {
    svc::ServerOptions so;
    so.socket_path = path_;
    so.pipeline.threads = 2;
    so.pipeline.batch_max = 8;
    so.pipeline.linger_us = 1000;
    server_ = std::make_unique<svc::Server>(engine_, so);
    std::string error;
    EXPECT_TRUE(server_->Start(&error)) << error;
    run_ = std::thread([this] { server_->Run(); });
  }

  ~ServerTest() override {
    server_->Shutdown();
    run_.join();
  }

  net::Topology topo_;
  Engine engine_;
  std::string path_;
  std::unique_ptr<svc::Server> server_;
  std::thread run_;
};

TEST_F(ServerTest, AdmitOverRealSocket) {
  TestClient client(path_);
  client.Send(AdmitPayload(1, 50, 0, 7, Mbps(1)));
  const JsonValue resp = ParseJson(client.ReadOne());
  EXPECT_EQ(Get(resp, "id").AsInt64(), 1);
  ASSERT_TRUE(Get(resp, "ok").AsBool());
  EXPECT_TRUE(Get(Get(resp, "result"), "admitted").AsBool());

  client.Send(StatsPayload(2));
  const JsonValue stats = ParseJson(client.ReadOne());
  EXPECT_EQ(Get(Get(stats, "result"), "active").AsInt64(), 1);
}

TEST_F(ServerTest, ResponsesArriveInSubmissionOrder) {
  TestClient client(path_);
  for (int i = 0; i < 20; ++i) {
    client.Send(AdmitPayload(i, i, i % 16, (i + 5) % 16, Mbps(1)));
  }
  for (int i = 0; i < 20; ++i) {
    const JsonValue resp = ParseJson(client.ReadOne());
    EXPECT_EQ(Get(resp, "id").AsInt64(), i);
  }
}

TEST_F(ServerTest, OversizedFrameAnsweredThenDropped) {
  TestClient client(path_);
  const std::uint32_t huge =
      static_cast<std::uint32_t>(svc::kMaxFrameBytes) + 1;
  const char bad[4] = {static_cast<char>(huge >> 24),
                       static_cast<char>(huge >> 16),
                       static_cast<char>(huge >> 8), static_cast<char>(huge)};
  client.SendRaw(std::string(bad, 4));
  const JsonValue resp = ParseJson(client.ReadOne());
  EXPECT_FALSE(Get(resp, "ok").AsBool());
  EXPECT_EQ(ErrorCode(resp), svc::kErrBadFrame);
  EXPECT_EQ(Get(resp, "id").AsInt64(), -1);
  EXPECT_TRUE(client.AtEof());  // connection dropped after the answer

  // The server survives and keeps serving new connections.
  TestClient next(path_);
  next.Send(StatsPayload(1));
  EXPECT_TRUE(Get(ParseJson(next.ReadOne()), "ok").AsBool());
}

// ---- log prefix (satellite) -------------------------------------------

TEST(LogTest, PrefixCarriesWallClockAndThreadTag) {
  const std::string prefix =
      detail::FormatLogPrefix(LogLevel::kWarn, "src/svc/server.cc", 123);
  // "[WARN 2026-08-08T12:34:56.789Z t0 server.cc:123] "
  ASSERT_GE(prefix.size(), 20u);
  EXPECT_EQ(prefix.rfind("[WARN ", 0), 0u) << prefix;
  EXPECT_NE(prefix.find("Z t"), std::string::npos) << prefix;
  EXPECT_NE(prefix.find(" server.cc:123] "), std::string::npos)
      << "file must be basename'd: " << prefix;
  EXPECT_EQ(prefix.find("src/svc"), std::string::npos) << prefix;
  // ISO-8601 UTC timestamp: YYYY-MM-DDTHH:MM:SS.mmmZ after "[WARN ".
  const std::string ts = prefix.substr(6, 24);
  EXPECT_EQ(ts[4], '-') << ts;
  EXPECT_EQ(ts[10], 'T') << ts;
  EXPECT_EQ(ts[19], '.') << ts;
  EXPECT_EQ(ts[23], 'Z') << ts;
  for (const int i : {0, 1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15, 17, 18}) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ts[i])))
        << i << " in " << ts;
  }
  // Two calls from this thread agree on the tag; a fresh thread gets a
  // different one.
  const auto tag_of = [](const std::string& p) {
    const std::size_t at = p.find("Z t");
    return p.substr(at + 2, p.find(' ', at + 2) - at - 2);
  };
  EXPECT_EQ(tag_of(prefix),
            tag_of(detail::FormatLogPrefix(LogLevel::kWarn, "x.cc", 1)));
  std::string other_tag;
  std::thread([&] {
    other_tag = tag_of(detail::FormatLogPrefix(LogLevel::kWarn, "x.cc", 1));
  }).join();
  EXPECT_NE(tag_of(prefix), other_tag);
}

}  // namespace
}  // namespace drtp
