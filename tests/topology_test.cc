// Tests for net::Topology and net::BandwidthLedger.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "net/bandwidth_ledger.h"
#include "net/generators.h"
#include "net/topology.h"

namespace drtp::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  const LinkId ab = t.AddLink(a, b, Mbps(10));
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.num_links(), 1);
  EXPECT_EQ(t.link(ab).src, a);
  EXPECT_EQ(t.link(ab).dst, b);
  EXPECT_EQ(t.link(ab).capacity, Mbps(10));
  EXPECT_EQ(t.link(ab).reverse, kInvalidLink);
}

TEST(Topology, DuplexPairCrossReferences) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  const auto [ab, ba] = t.AddDuplexLink(a, b, Mbps(5));
  EXPECT_EQ(t.link(ab).reverse, ba);
  EXPECT_EQ(t.link(ba).reverse, ab);
  EXPECT_EQ(t.link(ba).src, b);
  EXPECT_EQ(t.link(ba).dst, a);
}

TEST(Topology, RejectsSelfLoopAndDuplicates) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  EXPECT_THROW(t.AddLink(a, a, Mbps(1)), CheckError);
  t.AddLink(a, b, Mbps(1));
  EXPECT_THROW(t.AddLink(a, b, Mbps(1)), CheckError);
}

TEST(Topology, FindLinkDirectional) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  const LinkId ab = t.AddLink(a, b, Mbps(1));
  EXPECT_EQ(t.FindLink(a, b), ab);
  EXPECT_EQ(t.FindLink(b, a), kInvalidLink);
}

TEST(Topology, ConnectivityDetection) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  const NodeId c = t.AddNode();
  t.AddDuplexLink(a, b, Mbps(1));
  EXPECT_FALSE(t.IsConnected());  // c isolated
  t.AddDuplexLink(b, c, Mbps(1));
  EXPECT_TRUE(t.IsConnected());
}

TEST(Topology, OneWayLinksAreNotConnectivity) {
  Topology t;
  const NodeId a = t.AddNode();
  const NodeId b = t.AddNode();
  t.AddLink(a, b, Mbps(1));  // no way back
  EXPECT_FALSE(t.IsConnected());
}

TEST(Topology, NeighborsAndDegree) {
  Topology t = MakeGrid(3, 3, Mbps(1));
  // Corner node 0 has 2 neighbors; center node 4 has 4.
  EXPECT_EQ(t.Neighbors(0).size(), 2u);
  EXPECT_EQ(t.Neighbors(4).size(), 4u);
  // 12 duplex edges in a 3x3 grid -> 24 directed links over 9 nodes.
  EXPECT_EQ(t.num_links(), 24);
  EXPECT_NEAR(t.AverageDegree(), 24.0 / 9.0, 1e-12);
}

// ---- BandwidthLedger ----------------------------------------------------

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : topo_(MakeGrid(2, 2, Mbps(10))), ledger_(topo_) {}
  Topology topo_;
  BandwidthLedger ledger_;
};

TEST_F(LedgerTest, StartsAllFree) {
  EXPECT_EQ(ledger_.total(0), Mbps(10));
  EXPECT_EQ(ledger_.prime(0), 0);
  EXPECT_EQ(ledger_.spare(0), 0);
  EXPECT_EQ(ledger_.free(0), Mbps(10));
}

TEST_F(LedgerTest, ReservePrimeMovesFromFree) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(4)));
  EXPECT_EQ(ledger_.prime(0), Mbps(4));
  EXPECT_EQ(ledger_.free(0), Mbps(6));
  ledger_.ReleasePrime(0, Mbps(4));
  EXPECT_EQ(ledger_.free(0), Mbps(10));
}

TEST_F(LedgerTest, ReservePrimeFailsWhenShort) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(8)));
  EXPECT_FALSE(ledger_.ReservePrime(0, Mbps(3)));
  EXPECT_EQ(ledger_.prime(0), Mbps(8));  // unchanged on failure
}

TEST_F(LedgerTest, SpareRespectsFreePool) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(7)));
  EXPECT_EQ(ledger_.GrowSpare(0, Mbps(5)), Mbps(3));  // partial grant
  EXPECT_EQ(ledger_.spare(0), Mbps(3));
  EXPECT_EQ(ledger_.free(0), 0);
  ledger_.ShrinkSpare(0, Mbps(2));
  EXPECT_EQ(ledger_.spare(0), Mbps(1));
  EXPECT_EQ(ledger_.free(0), Mbps(2));
}

TEST_F(LedgerTest, SpareBlocksPrime) {
  EXPECT_EQ(ledger_.GrowSpare(0, Mbps(9)), Mbps(9));
  EXPECT_FALSE(ledger_.ReservePrime(0, Mbps(2)));
  EXPECT_TRUE(ledger_.ReservePrime(0, Mbps(1)));
}

TEST_F(LedgerTest, ForcedReserveRaidsSpare) {
  EXPECT_EQ(ledger_.GrowSpare(0, Mbps(9)), Mbps(9));
  // free = 1, spare = 9; forced reserve of 4 takes 1 free + 3 spare.
  ASSERT_TRUE(ledger_.ReservePrimeForced(0, Mbps(4)));
  EXPECT_EQ(ledger_.prime(0), Mbps(4));
  EXPECT_EQ(ledger_.spare(0), Mbps(6));
  EXPECT_EQ(ledger_.free(0), 0);
}

TEST_F(LedgerTest, ForcedReserveFailsBeyondCapacity) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(9)));
  EXPECT_EQ(ledger_.GrowSpare(0, Mbps(1)), Mbps(1));
  EXPECT_FALSE(ledger_.ReservePrimeForced(0, Mbps(2)));
  EXPECT_EQ(ledger_.spare(0), Mbps(1));  // untouched on failure
}

TEST_F(LedgerTest, ReleaseMoreThanReservedThrows) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(1)));
  EXPECT_THROW(ledger_.ReleasePrime(0, Mbps(2)), CheckError);
  EXPECT_THROW(ledger_.ShrinkSpare(0, Mbps(1)), CheckError);
}

TEST_F(LedgerTest, Totals) {
  ASSERT_TRUE(ledger_.ReservePrime(0, Mbps(2)));
  ASSERT_TRUE(ledger_.ReservePrime(1, Mbps(3)));
  ledger_.GrowSpare(2, Mbps(4));
  EXPECT_EQ(ledger_.TotalPrime(), Mbps(5));
  EXPECT_EQ(ledger_.TotalSpare(), Mbps(4));
  EXPECT_EQ(ledger_.TotalCapacity(), Mbps(10) * topo_.num_links());
  ledger_.CheckInvariants();
}

/// Property: a random walk of valid operations never violates invariants
/// and always nets back to zero after mirrored releases.
TEST(LedgerProperty, RandomWalkPreservesInvariants) {
  Topology topo = MakeGrid(3, 3, Mbps(20));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BandwidthLedger ledger(topo);
    drtp::Rng rng(seed);
    std::vector<std::pair<LinkId, Bandwidth>> primes;
    for (int step = 0; step < 2000; ++step) {
      const LinkId l = static_cast<LinkId>(rng.Index(
          static_cast<std::size_t>(topo.num_links())));
      switch (rng.UniformInt(0, 3)) {
        case 0: {
          const Bandwidth bw = Mbps(rng.UniformInt(1, 5));
          if (ledger.ReservePrime(l, bw)) primes.emplace_back(l, bw);
          break;
        }
        case 1:
          if (!primes.empty()) {
            const auto idx = rng.Index(primes.size());
            ledger.ReleasePrime(primes[idx].first, primes[idx].second);
            primes.erase(primes.begin() + static_cast<std::ptrdiff_t>(idx));
          }
          break;
        case 2:
          ledger.GrowSpare(l, Mbps(rng.UniformInt(0, 4)));
          break;
        case 3: {
          const Bandwidth s = ledger.spare(l);
          if (s > 0) ledger.ShrinkSpare(l, rng.UniformInt(0, s));
          break;
        }
      }
      ledger.CheckInvariants();
    }
    for (const auto& [l, bw] : primes) ledger.ReleasePrime(l, bw);
    EXPECT_EQ(ledger.TotalPrime(), 0);
  }
}

// Regression: AddLink after the first AssignSrlg must keep srlg_of_ sized
// with the link table, so reading the tag of a late-added link is an
// in-bounds kInvalidSrlg, not an out-of-bounds read (caught under ASan).
TEST(TopologySrlg, LinksAddedAfterFirstAssignStayUntagged) {
  Topology topo;
  const NodeId a = topo.AddNode();
  const NodeId b = topo.AddNode();
  const NodeId c = topo.AddNode();
  const LinkId ab = topo.AddLink(a, b, Mbps(10));
  topo.AssignSrlg(ab, 0);

  const LinkId bc = topo.AddLink(b, c, Mbps(10));
  const auto [ca, ac] = topo.AddDuplexLink(c, a, Mbps(10));
  EXPECT_EQ(topo.srlg(bc), kInvalidSrlg);
  EXPECT_EQ(topo.srlg(ca), kInvalidSrlg);
  EXPECT_EQ(topo.srlg(ac), kInvalidSrlg);
  EXPECT_EQ(topo.srlg(ab), 0);
  EXPECT_EQ(topo.num_srlgs(), 1);

  // Late-added links remain taggable.
  topo.AssignSrlg(bc, 1);
  EXPECT_EQ(topo.srlg(bc), 1);
  EXPECT_EQ(topo.num_srlgs(), 2);
  ASSERT_EQ(topo.LinksInSrlg(1).size(), 1u);
  EXPECT_EQ(topo.LinksInSrlg(1)[0], bc);

  // Copies carry the tags (and the invariant) along.
  const Topology copy = topo;
  EXPECT_EQ(copy.srlg(ac), kInvalidSrlg);
  EXPECT_EQ(copy.srlg(bc), 1);
}

}  // namespace
}  // namespace drtp::net
