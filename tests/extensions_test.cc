// Tests for the DRTP extensions that round out the paper's full protocol:
// hop-constrained (QoS-bounded) backup routing, multi-backup connections
// ("one or more backup channels", §2), and enacted failure injection in
// scenario replays (DRTP steps 2-4 inside the simulator).
#include <gtest/gtest.h>

#include "common/check.h"
#include "drtp/baselines.h"
#include "drtp/bounded_flood.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "drtp/plsr.h"
#include "net/generators.h"
#include "routing/constrained.h"
#include "sim/experiment.h"
#include "sim/paper.h"

namespace drtp {
namespace {

using core::DrtpNetwork;
using net::MakeGrid;
using net::MakeParallelPaths;
using net::MakeRing;
using net::Topology;

routing::Path NodePath(const Topology& topo, std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

// ---- hop-constrained routing ------------------------------------------------

TEST(ConstrainedPath, MatchesDijkstraWhenBoundIsLoose) {
  const Topology topo = net::MakeWaxman(
      net::WaxmanConfig{.nodes = 30, .avg_degree = 3.5, .seed = 4});
  const auto cost = [](LinkId l) { return 1.0 + 0.3 * (l % 5); };
  for (NodeId dst = 1; dst < topo.num_nodes(); dst += 5) {
    const auto free_route = routing::CheapestPath(topo, 0, dst, cost);
    const auto bounded =
        routing::CheapestPathMaxHops(topo, 0, dst, cost, topo.num_nodes());
    ASSERT_TRUE(free_route.has_value());
    ASSERT_TRUE(bounded.has_value());
    double a = 0, b = 0;
    for (LinkId l : free_route->links()) a += cost(l);
    for (LinkId l : bounded->links()) b += cost(l);
    EXPECT_NEAR(a, b, 1e-9);
  }
}

TEST(ConstrainedPath, EnforcesTheBound) {
  // Ring of 8: 0->4 the cheap way (through expensive direct links) vs hop
  // bound. Make clockwise links cheap but the route long.
  const Topology topo = MakeRing(8, Mbps(1));
  // All unit costs: min-hop 0..4 is 4 either way; bound 3 -> no path.
  EXPECT_FALSE(routing::CheapestPathMaxHops(topo, 0, 4,
                                            [](LinkId) { return 1.0; }, 3)
                   .has_value());
  const auto four = routing::CheapestPathMaxHops(
      topo, 0, 4, [](LinkId) { return 1.0; }, 4);
  ASSERT_TRUE(four.has_value());
  EXPECT_EQ(four->hops(), 4);
}

TEST(ConstrainedPath, PrefersCheaperLongerWithinBound) {
  // Direct link is pricey; two-hop detour is cheap. Bound 1 forces the
  // direct link; bound 2 takes the detour.
  Topology topo;
  const NodeId a = topo.AddNode();
  const NodeId b = topo.AddNode();
  const NodeId c = topo.AddNode();
  const auto [ab, ba] = topo.AddDuplexLink(a, b, Mbps(1));
  topo.AddDuplexLink(a, c, Mbps(1));
  topo.AddDuplexLink(c, b, Mbps(1));
  (void)ba;
  const auto cost = [ab = ab](LinkId l) { return l == ab ? 10.0 : 1.0; };
  const auto direct = routing::CheapestPathMaxHops(topo, a, b, cost, 1);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->hops(), 1);
  const auto detour = routing::CheapestPathMaxHops(topo, a, b, cost, 2);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->hops(), 2);
}

TEST(ConstrainedPath, ValidatesArguments) {
  const Topology topo = MakeRing(4, Mbps(1));
  EXPECT_THROW(routing::CheapestPathMaxHops(topo, 0, 0,
                                            [](LinkId) { return 1.0; }, 2),
               CheckError);
  EXPECT_THROW(routing::CheapestPathMaxHops(topo, 0, 1,
                                            [](LinkId) { return 1.0; }, 0),
               CheckError);
}

// ---- QoS-bounded backups in the LSR schemes ----------------------------------

TEST(QosBoundedBackup, SlackLimitsBackupLength) {
  // Ring of 8: primary 0..2 is 2 hops; the only disjoint backup is 6 hops.
  // With slack 2 (max 4 hops) the backup on offer violates QoS and D-LSR
  // must fall back to a penalized short route instead of the long detour.
  DrtpNetwork net(MakeRing(8, Mbps(10)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  net.PublishTo(db, 0.0);

  core::Dlsr unbounded;
  const auto loose = unbounded.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(loose.backup.has_value());
  EXPECT_EQ(loose.backup->hops(), 6);

  core::Dlsr bounded(/*backup_hop_slack=*/2);
  const auto tight = bounded.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(tight.primary.has_value());
  ASSERT_TRUE(tight.backup.has_value());
  EXPECT_LE(tight.backup->hops(), tight.primary->hops() + 2);
  // Within 4 hops every 0->2 route reuses primary links; QoS forces the
  // overlap the paper's §2 example warns about.
  EXPECT_GT(tight.backup->OverlapCount(*tight.primary), 0);
}

TEST(QosBoundedBackup, PlsrHonorsSlackToo) {
  DrtpNetwork net(MakeRing(8, Mbps(10)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  net.PublishTo(db, 0.0);
  core::Plsr bounded(/*backup_hop_slack=*/4);
  const auto sel = bounded.SelectRoutes(net, db, 0, 2, Mbps(1));
  ASSERT_TRUE(sel.backup.has_value());
  EXPECT_LE(sel.backup->hops(), sel.primary->hops() + 4);
}

// ---- multi-backup connections -------------------------------------------------

TEST(MultiBackup, RegisterSeveralDisjointBackups) {
  DrtpNetwork net(MakeParallelPaths(4, Mbps(10)));
  const auto primary = NodePath(net.topology(), {0, 2, 1});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1}));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 4, 1}));
  const core::DrConnection* conn = net.Find(1);
  EXPECT_EQ(conn->backups.size(), 2u);
  net.CheckConsistency();
  // Overlapping own backups are rejected.
  EXPECT_THROW(net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1})),
               CheckError);
}

TEST(MultiBackup, SecondBackupActivatesWhenFirstIsBroken) {
  DrtpNetwork net(MakeParallelPaths(3, Mbps(10)));
  const auto primary = NodePath(net.topology(), {0, 2, 1});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1}));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 4, 1}));
  // Break the first backup, then the primary: the second backup recovers.
  auto r1 = core::ApplyLinkFailure(net, net.topology().FindLink(0, 3), 1.0,
                                   nullptr, nullptr);
  EXPECT_EQ(r1.backups_lost, std::vector<ConnId>{1});
  EXPECT_EQ(net.Find(1)->backups.size(), 1u);
  auto r2 = core::ApplyLinkFailure(net, net.topology().FindLink(0, 2), 2.0,
                                   nullptr, nullptr);
  EXPECT_EQ(r2.recovered, std::vector<ConnId>{1});
  EXPECT_EQ(net.Find(1)->primary, NodePath(net.topology(), {0, 4, 1}));
  net.CheckConsistency();
}

TEST(MultiBackup, WhatIfTriesBackupsInOrder) {
  DrtpNetwork net(MakeParallelPaths(3, Mbps(1)));
  const auto primary = NodePath(net.topology(), {0, 2, 1});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1}));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 4, 1}));
  // Saturate the first backup's relay with another primary: capacity 1,
  // spare displaced... fill 0->3 completely with foreign primary traffic.
  // With capacity 1 Mbps the spare on 0->3 was 1 Mbps; a foreign primary
  // cannot fit. Instead saturate 3->1.
  // Note: spare of 1 Mbps lives on 3->1 as well; consume it via a second
  // confirmed connection is impossible — so test the failure evaluator's
  // ordering directly: fail first backup's link together is not possible
  // with a single failure. Evaluate failing the primary: first backup
  // still fits (spare), so it is chosen.
  const core::FailureImpact impact =
      core::EvaluateLinkFailure(net, net.topology().FindLink(0, 2));
  EXPECT_EQ(impact.attempts, 1);
  EXPECT_EQ(impact.activated, 1);
}

TEST(MultiBackup, ProtectConnectionFindsAllDisjointRoutes) {
  DrtpNetwork net(MakeParallelPaths(4, Mbps(10)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  const auto primary = NodePath(net.topology(), {0, 2, 1});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.PublishTo(db, 0.0);
  core::Dlsr dlsr;
  // Ask for 5 backups; only 3 disjoint detours exist.
  const int got = core::ProtectConnection(dlsr, net, db, 1, 5);
  EXPECT_EQ(got, 3);
  const core::DrConnection* conn = net.Find(1);
  ASSERT_EQ(conn->backups.size(), 3u);
  for (std::size_t i = 0; i < conn->backups.size(); ++i) {
    EXPECT_TRUE(conn->backups[i].LinkDisjoint(conn->primary));
    for (std::size_t j = i + 1; j < conn->backups.size(); ++j) {
      EXPECT_TRUE(conn->backups[i].LinkDisjoint(conn->backups[j]));
    }
  }
  net.CheckConsistency();
}

TEST(MultiBackup, TwoBackupsSurviveDoubleFault) {
  // After the first failure consumes backup #1 (promotion), the second
  // pre-established backup keeps the connection protected with no reroute.
  DrtpNetwork net(MakeParallelPaths(3, Mbps(10)));
  const auto primary = NodePath(net.topology(), {0, 2, 1});
  ASSERT_TRUE(net.EstablishConnection(1, primary, Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 1}));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 4, 1}));
  auto r1 = core::ApplyLinkFailure(net, net.topology().FindLink(0, 2), 1.0,
                                   nullptr, nullptr);
  ASSERT_EQ(r1.recovered, std::vector<ConnId>{1});
  // Promotion released the remaining backup (stale LSET); without a
  // reroute scheme the connection is unprotected now.
  EXPECT_FALSE(net.Find(1)->has_backup());
  net.CheckConsistency();
}

// ---- enacted failure injection --------------------------------------------------

TEST(FailureInjection, EventsAreWellFormedAndRoundTrip) {
  const Topology topo = sim::MakePaperTopology(3.0, 5);
  sim::Scenario sc = sim::Scenario::Generate(
      topo, sim::MakePaperTraffic(sim::TrafficPattern::kUniform, 0.3, 6));
  const auto before = sc.events.size();
  sim::InjectLinkFailures(sc, topo, 10, 1000.0, 9000.0, 600.0, 7);
  EXPECT_EQ(sc.NumFailures(), 10);
  EXPECT_EQ(sc.events.size(), before + 20);  // fail + repair each
  Time prev = 0.0;
  for (const auto& e : sc.events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    if (e.type == sim::ScenarioEvent::Type::kLinkFail ||
        e.type == sim::ScenarioEvent::Type::kLinkRepair) {
      EXPECT_GE(e.link, 0);
      EXPECT_LT(e.link, topo.num_links());
    }
  }
  const sim::Scenario rt = sim::Scenario::FromString(sc.ToString());
  EXPECT_EQ(rt.NumFailures(), 10);
  EXPECT_EQ(rt.ToString(), sc.ToString());
}

TEST(FailureInjection, ReplayEnactsRecovery) {
  const Topology topo = sim::MakePaperTopology(4.0, 8);
  sim::TrafficConfig tc =
      sim::MakePaperTraffic(sim::TrafficPattern::kUniform, 0.4, 9);
  tc.duration = 2000.0;
  tc.lifetime_min = 300.0;
  tc.lifetime_max = 900.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::InjectLinkFailures(sc, topo, 15, 800.0, 1900.0, 200.0, 10);

  sim::ExperimentConfig ec;
  ec.warmup = 800.0;
  ec.sample_interval = 100.0;
  ec.check_consistency = true;
  core::Dlsr dlsr;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, dlsr, ec);
  EXPECT_EQ(m.failures_enacted, 15);
  EXPECT_GT(m.failover_recovered, 0);
  // D-LSR at light load on E=4 recovers nearly everything.
  EXPECT_GT(m.EnactedRecoveryRatio(), 0.9);
  // Step 4 re-protected the survivors.
  EXPECT_GE(m.backups_reestablished, m.failover_recovered);
}

TEST(FailureInjection, UnprotectedBaselineDropsEverything) {
  const Topology topo = sim::MakePaperTopology(3.0, 8);
  sim::TrafficConfig tc =
      sim::MakePaperTraffic(sim::TrafficPattern::kUniform, 0.4, 9);
  tc.duration = 1500.0;
  tc.lifetime_min = 300.0;
  tc.lifetime_max = 600.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::InjectLinkFailures(sc, topo, 10, 500.0, 1400.0, 300.0, 11);
  sim::ExperimentConfig ec;
  ec.warmup = 500.0;
  ec.sample_interval = 100.0;
  core::NoBackup nb;
  const sim::RunMetrics m = sim::RunScenario(topo, sc, nb, ec);
  EXPECT_GT(m.failover_dropped, 0);
  EXPECT_EQ(m.failover_recovered, 0);
  EXPECT_EQ(m.EnactedRecoveryRatio(), 0.0);
}

TEST(FailureInjection, MoreBackupsRecoverMore) {
  const Topology topo = sim::MakePaperTopology(4.0, 12);
  sim::TrafficConfig tc =
      sim::MakePaperTraffic(sim::TrafficPattern::kUniform, 0.8, 13);
  tc.duration = 2000.0;
  tc.lifetime_min = 400.0;
  tc.lifetime_max = 800.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::InjectLinkFailures(sc, topo, 25, 800.0, 1900.0, 150.0, 14);
  sim::ExperimentConfig ec;
  ec.warmup = 800.0;
  ec.sample_interval = 100.0;

  double ratio[3] = {0, 0, 0};
  for (int k = 0; k <= 2; ++k) {
    ec.num_backups = k;
    core::Dlsr dlsr;
    const sim::RunMetrics m = sim::RunScenario(topo, sc, dlsr, ec);
    ratio[k] = m.EnactedRecoveryRatio();
  }
  EXPECT_EQ(ratio[0], 0.0);          // no backups, no recovery
  EXPECT_GT(ratio[1], 0.85);
  EXPECT_GE(ratio[2], ratio[1] - 0.02);  // extra backup never hurts much
}

TEST(FailureInjection, BoundedFloodingRebuildsDistanceTables) {
  const Topology topo = sim::MakePaperTopology(3.0, 15);
  sim::TrafficConfig tc =
      sim::MakePaperTraffic(sim::TrafficPattern::kUniform, 0.3, 16);
  tc.duration = 1500.0;
  tc.lifetime_min = 300.0;
  tc.lifetime_max = 600.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  sim::InjectLinkFailures(sc, topo, 8, 500.0, 1400.0, 250.0, 17);
  sim::ExperimentConfig ec;
  ec.warmup = 500.0;
  ec.sample_interval = 100.0;
  core::BoundedFlooding bf(topo);
  const sim::RunMetrics m = sim::RunScenario(topo, sc, bf, ec);
  // Smoke: the replay completes, failures are enacted, admissions happen
  // both before and after topology changes.
  EXPECT_EQ(m.failures_enacted, 8);
  EXPECT_GT(m.admitted, 0);
}

}  // namespace
}  // namespace drtp
