// Tests for the per-router DR-connection manager: APLV maintenance from
// register/release packets and §5 spare-pool sizing/multiplexing.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "drtp/manager.h"
#include "net/generators.h"

namespace drtp::core {
namespace {

using routing::MakeLinkSet;

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : topo_(net::MakeGrid(3, 3, Mbps(10))),
        ledger_(topo_),
        mgr_(0, topo_, ledger_, SpareMode::kMultiplexed) {
    l01_ = topo_.FindLink(0, 1);
    l03_ = topo_.FindLink(0, 3);
  }

  BackupRegisterPacket Packet(ConnId id, std::vector<LinkId> lset,
                              Bandwidth bw = Mbps(1)) const {
    return BackupRegisterPacket{
        .conn_id = id, .bw = bw, .primary_lset = MakeLinkSet(std::move(lset))};
  }
  BackupReleasePacket Release(ConnId id, std::vector<LinkId> lset,
                              Bandwidth bw = Mbps(1)) const {
    return BackupReleasePacket{
        .conn_id = id, .bw = bw, .primary_lset = MakeLinkSet(std::move(lset))};
  }

  net::Topology topo_;
  net::BandwidthLedger ledger_;
  DrConnectionManager mgr_;
  LinkId l01_ = kInvalidLink;
  LinkId l03_ = kInvalidLink;
};

TEST_F(ManagerTest, RegisterUpdatesAplvAndSpare) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5, 6})));
  EXPECT_EQ(mgr_.aplv(l01_).count(5), 1);
  EXPECT_EQ(mgr_.aplv(l01_).count(6), 1);
  EXPECT_EQ(mgr_.aplv(l01_).Max(), 1);
  // One backup, no conflicts -> one slot of spare.
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
  EXPECT_EQ(mgr_.BackupCount(l01_), 1);
}

TEST_F(ManagerTest, DisjointPrimariesShareOneSlot) {
  // The Fig. 1 story on L8: B1 and B2 multiplex because P1 and P2 are
  // disjoint — spare stays at one slot.
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5, 6})));
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(2, {7, 8})));
  EXPECT_EQ(mgr_.aplv(l01_).Max(), 1);
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
  EXPECT_EQ(mgr_.BackupCount(l01_), 2);
}

TEST_F(ManagerTest, OverlappingPrimariesNeedMoreSpare) {
  // The Fig. 1 story on L7: P1 and P3 share L13, so both backups can
  // activate at once — two slots required.
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {8, 12, 13})));
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(3, {11, 13})));
  EXPECT_EQ(mgr_.aplv(l01_).Max(), 2);
  EXPECT_EQ(ledger_.spare(l01_), Mbps(2));
}

TEST_F(ManagerTest, DedicatedModeReservesPerBackup) {
  DrConnectionManager dedicated(0, topo_, ledger_, SpareMode::kDedicated);
  EXPECT_TRUE(dedicated.RegisterBackupHop(l01_, Packet(1, {5, 6})));
  EXPECT_TRUE(dedicated.RegisterBackupHop(l01_, Packet(2, {7, 8})));
  // Disjoint primaries, but dedicated mode still reserves two slots.
  EXPECT_EQ(ledger_.spare(l01_), Mbps(2));
}

TEST_F(ManagerTest, ReleaseShrinksSpareAndRestoresAplv) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {8, 13})));
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(3, {11, 13})));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(2));
  mgr_.ReleaseBackupHop(l01_, Release(1, {8, 13}));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
  EXPECT_EQ(mgr_.aplv(l01_).count(13), 1);
  mgr_.ReleaseBackupHop(l01_, Release(3, {11, 13}));
  EXPECT_EQ(ledger_.spare(l01_), 0);
  EXPECT_EQ(mgr_.aplv(l01_).L1(), 0);
}

TEST_F(ManagerTest, OverbookingAcceptedWhenNoFreeBandwidth) {
  // Fill the link with primary traffic so no spare can be reserved.
  ASSERT_TRUE(ledger_.ReservePrime(l01_, Mbps(10)));
  // §5 choice (2): the backup is still registered, multiplexed over
  // nothing, and reported as overbooked.
  EXPECT_FALSE(mgr_.RegisterBackupHop(l01_, Packet(1, {5})));
  EXPECT_TRUE(mgr_.IsOverbooked(l01_));
  EXPECT_EQ(mgr_.BackupCount(l01_), 1);
  // Free bandwidth reappears; reconcile grows the pool to target.
  ledger_.ReleasePrime(l01_, Mbps(10));
  EXPECT_TRUE(mgr_.ReconcileSpare(l01_));
  EXPECT_FALSE(mgr_.IsOverbooked(l01_));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
}

TEST_F(ManagerTest, PartialGrowthStaysOverbooked) {
  ASSERT_TRUE(ledger_.ReservePrime(l01_, Mbps(9)));  // 1 Mbps free
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5, 13})));
  // Second conflicting backup needs a second slot; only 0 free remains.
  EXPECT_FALSE(mgr_.RegisterBackupHop(l01_, Packet(2, {6, 13})));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
  EXPECT_EQ(mgr_.SpareTarget(l01_), Mbps(2));
  EXPECT_TRUE(mgr_.IsOverbooked(l01_));
}

TEST_F(ManagerTest, LinksManagedIndependently) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5})));
  EXPECT_TRUE(mgr_.RegisterBackupHop(l03_, Packet(1, {5})));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
  EXPECT_EQ(ledger_.spare(l03_), Mbps(1));
  mgr_.ReleaseBackupHop(l01_, Release(1, {5}));
  EXPECT_EQ(ledger_.spare(l01_), 0);
  EXPECT_EQ(ledger_.spare(l03_), Mbps(1));
}

TEST_F(ManagerTest, RejectsForeignLink) {
  const LinkId l12 = topo_.FindLink(1, 2);
  EXPECT_THROW(mgr_.RegisterBackupHop(l12, Packet(1, {5})), CheckError);
}

TEST_F(ManagerTest, RejectsDuplicateRegistration) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5})));
  EXPECT_THROW(mgr_.RegisterBackupHop(l01_, Packet(1, {5})), CheckError);
}

TEST_F(ManagerTest, RejectsMismatchedRelease) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5})));
  EXPECT_THROW(mgr_.ReleaseBackupHop(l01_, Release(1, {6})), CheckError);
  EXPECT_THROW(mgr_.ReleaseBackupHop(l01_, Release(2, {5})), CheckError);
}

TEST_F(ManagerTest, HeterogeneousBandwidthSizesByWeightedDemand) {
  // The paper assumes identical bandwidths (§5); the manager generalizes:
  // the spare target is the worst-case *bandwidth* a single link failure
  // activates, not a slot count.
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5, 13}, Mbps(1))));
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(2, {6, 13}, Mbps(2))));
  // L13's failure would activate both: 1 + 2 Mbps.
  EXPECT_EQ(mgr_.SpareTarget(l01_), Mbps(3));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(3));
  mgr_.ReleaseBackupHop(l01_, Release(2, {6, 13}, Mbps(2)));
  EXPECT_EQ(mgr_.SpareTarget(l01_), Mbps(1));
  EXPECT_EQ(ledger_.spare(l01_), Mbps(1));
}

TEST_F(ManagerTest, ReleaseBandwidthMismatchThrows) {
  EXPECT_TRUE(mgr_.RegisterBackupHop(l01_, Packet(1, {5}, Mbps(1))));
  EXPECT_THROW(mgr_.ReleaseBackupHop(l01_, Release(1, {5}, Mbps(2))),
               CheckError);
}

TEST_F(ManagerTest, RejectsEmptyLset) {
  EXPECT_THROW(mgr_.RegisterBackupHop(l01_, Packet(1, {})), CheckError);
}

// ---- DemandVector unit behaviour ------------------------------------------

TEST(DemandVector, AddRemoveTracksMax) {
  DemandVector d(8);
  d.Add(routing::MakeLinkSet({1, 3}), Mbps(1));
  d.Add(routing::MakeLinkSet({3, 5}), Mbps(2));
  EXPECT_EQ(d.at(1), Mbps(1));
  EXPECT_EQ(d.at(3), Mbps(3));
  EXPECT_EQ(d.at(5), Mbps(2));
  EXPECT_EQ(d.Max(), Mbps(3));
  d.Remove(routing::MakeLinkSet({3, 5}), Mbps(2));
  EXPECT_EQ(d.Max(), Mbps(1));
  d.Remove(routing::MakeLinkSet({1, 3}), Mbps(1));
  EXPECT_EQ(d.Max(), 0);
}

TEST(DemandVector, RemovingTooMuchThrows) {
  DemandVector d(4);
  d.Add(routing::MakeLinkSet({1}), Mbps(1));
  EXPECT_THROW(d.Remove(routing::MakeLinkSet({1}), Mbps(2)), CheckError);
  EXPECT_THROW(d.Remove(routing::MakeLinkSet({2}), Mbps(1)), CheckError);
}

TEST(DemandVector, MatchesAplvUnderUniformBandwidth) {
  // With identical bandwidths the weighted rule reduces to the paper's
  // max(APLV) x bw.
  Rng rng(3);
  DemandVector d(16);
  lsdb::Aplv aplv(16);
  for (int step = 0; step < 200; ++step) {
    std::vector<LinkId> raw;
    const int n = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n; ++i)
      raw.push_back(static_cast<LinkId>(rng.Index(16)));
    const auto lset = routing::MakeLinkSet(std::move(raw));
    d.Add(lset, Mbps(1));
    aplv.AddPrimaryLset(lset);
    ASSERT_EQ(d.Max(), static_cast<Bandwidth>(aplv.Max()) * Mbps(1));
  }
}

}  // namespace
}  // namespace drtp::core
