// Tests for the timed DRTP protocol engine: setup latency, reject
// round-trips, proactive switchover latency (detection + report +
// activation), reactive re-establishment with backoff retries, and the
// proactive-vs-reactive ordering the paper's §1 motivation claims.
#include <gtest/gtest.h>

#include "common/check.h"
#include "drtp/baselines.h"
#include "drtp/dlsr.h"
#include "net/generators.h"
#include "proto/engine.h"

namespace drtp::proto {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

struct Harness {
  explicit Harness(net::Topology topo,
                   ProtocolConfig config = ProtocolConfig{})
      : net(std::move(topo)),
        db(net.topology().num_links(), net.topology().num_links()),
        engine(net, queue, config, &dlsr, &db) {
    net.PublishTo(db, 0.0);
  }

  core::DrtpNetwork net;
  sim::EventQueue queue;
  lsdb::LinkStateDb db;
  core::Dlsr dlsr;
  ProtocolEngine engine;
};

TEST(ProtoSetup, ConfirmArrivesAfterRoundTrip) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  const auto primary = NodePath(h.net.topology(), {0, 1, 2});
  const auto backup = NodePath(h.net.topology(), {0, 3, 4, 5, 2});
  Time done_at = -1.0;
  bool ok = false;
  h.engine.SetupConnection(1, primary, backup, Mbps(1),
                           [&](ConnId, bool success) {
                             done_at = h.queue.now();
                             ok = success;
                           });
  h.queue.RunAll();
  EXPECT_TRUE(ok);
  // 2 hops forward + 2 hops confirm at 1 ms each.
  EXPECT_DOUBLE_EQ(done_at, 0.004);
  EXPECT_NE(h.net.Find(1), nullptr);
  EXPECT_TRUE(h.net.Find(1)->has_backup());
}

TEST(ProtoSetup, RejectReleasesAndTimesRoundTripToRefusingHop) {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  Harness h(std::move(topo));
  // Saturate the second hop 1->2.
  ASSERT_TRUE(h.net.EstablishConnection(
      9, NodePath(h.net.topology(), {1, 2}), Mbps(2), 0.0));
  bool ok = true;
  Time done_at = -1.0;
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1, 2}),
                           std::nullopt, Mbps(1), [&](ConnId, bool success) {
                             ok = success;
                             done_at = h.queue.now();
                           });
  h.queue.RunAll();
  EXPECT_FALSE(ok);
  EXPECT_EQ(h.net.Find(1), nullptr);
  // Refused at hop 2: 2 ms out + 2 ms back, but the decision itself lands
  // at 2 ms (destination arrival) — reject completes at 4 ms.
  EXPECT_DOUBLE_EQ(done_at, 0.004);
  // No stranded bandwidth on the first hop.
  EXPECT_EQ(h.net.ledger().prime(h.net.topology().FindLink(0, 1)), 0);
}

TEST(ProtoFailure, ProactiveLatencyIsDetectionPlusReportPlusActivation) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  const auto primary = NodePath(h.net.topology(), {0, 1, 2});
  const auto backup = NodePath(h.net.topology(), {0, 3, 4, 5, 2});
  h.engine.SetupConnection(1, primary, backup, Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();

  // Fail the second primary hop (1->2): report travels 1 hop to node 0,
  // activation walks the 4-hop backup.
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(1, 2),
                               RecoveryMode::kProactive);
  });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 1u);
  const RecoveryRecord& r = h.engine.recoveries()[0];
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.failed_at, 1.0);
  // 20 ms detection + 1 ms report + 4 ms activation.
  EXPECT_NEAR(r.latency(), 0.020 + 0.001 + 0.004, 1e-9);
  // Step 4 re-protected the promoted connection.
  EXPECT_TRUE(h.net.Find(1)->has_backup());
  h.net.CheckConsistency();
}

TEST(ProtoFailure, ProactiveWithoutBackupDrops) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1}),
                           std::nullopt, Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kProactive);
  });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 1u);
  EXPECT_FALSE(h.engine.recoveries()[0].success);
  EXPECT_EQ(h.net.ActiveCount(), 0);
  EXPECT_EQ(h.engine.RecoveryRatio(), 0.0);
}

TEST(ProtoFailure, ReactiveReestablishesWhenCapacityExists) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1, 2}),
                           std::nullopt, Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kReactive);
  });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 1u);
  const RecoveryRecord& r = h.engine.recoveries()[0];
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.retries, 0);
  // Reactive latency: detection + report + route discovery + timed setup
  // round trip; necessarily slower than a proactive activation here.
  EXPECT_GT(r.latency(), 0.020);
  const core::DrConnection* conn = h.net.Find(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->primary.Contains(h.net.topology().FindLink(0, 1)));
}

TEST(ProtoFailure, ReactiveRetriesWithBackoffThenSucceeds) {
  // Ring of 4, capacity 1: connection 0->1 direct; after failing 0->1 the
  // only alternative (0-3-2-1) is blocked by a squatter on 3->2 that we
  // release during the backoff window — forcing exactly one retry.
  ProtocolConfig cfg;
  cfg.reactive_backoff = 0.200;
  Harness h(net::MakeRing(4, Mbps(1)), cfg);
  ASSERT_TRUE(h.net.EstablishConnection(
      9, NodePath(h.net.topology(), {3, 2}), Mbps(1), 0.0));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1}),
                           std::nullopt, Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kReactive);
  });
  // Free the squatter while the first retry is backing off.
  h.queue.Schedule(1.1, [&] { h.net.ReleaseConnection(9); });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 1u);
  const RecoveryRecord& r = h.engine.recoveries()[0];
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.retries, 1);
  EXPECT_GT(r.latency(), 0.100);  // paid at least one backoff
}

TEST(ProtoFailure, ReactiveGivesUpAfterMaxRetries) {
  ProtocolConfig cfg;
  cfg.reactive_max_retries = 2;
  cfg.reactive_backoff = 0.050;
  Harness h(net::MakeRing(4, Mbps(1)), cfg);
  ASSERT_TRUE(h.net.EstablishConnection(
      9, NodePath(h.net.topology(), {3, 2}), Mbps(1), 0.0));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1}),
                           std::nullopt, Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kReactive);
  });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 1u);
  const RecoveryRecord& r = h.engine.recoveries()[0];
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.retries, 2);
}

TEST(ProtoFailure, ContentionResolvedInReportArrivalOrder) {
  // Two connections share spare capacity sufficient for one activation;
  // the one whose source is closer to the fault reports first and wins.
  net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  Harness h(std::move(topo));
  // Both primaries cross 0->1; both backups need 0->3 where only one slot
  // exists because a squatter primary holds 1 Mbps of 0->3's 2 Mbps.
  ASSERT_TRUE(h.net.EstablishConnection(
      9, NodePath(h.net.topology(), {0, 3}), Mbps(1), 0.0));
  ASSERT_TRUE(h.net.EstablishConnection(
      1, NodePath(h.net.topology(), {0, 1}), Mbps(1), 0.0));
  h.net.RegisterBackup(1, NodePath(h.net.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(h.net.EstablishConnection(
      2, NodePath(h.net.topology(), {0, 1, 2}), Mbps(1), 0.0));
  h.net.RegisterBackup(2, NodePath(h.net.topology(), {0, 3, 4, 5, 2}));
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kProactive);
  });
  h.queue.RunAll();
  ASSERT_EQ(h.engine.recoveries().size(), 2u);
  int succeeded = 0;
  for (const auto& r : h.engine.recoveries()) succeeded += r.success;
  EXPECT_EQ(succeeded, 1);  // one slot, one winner
  h.net.CheckConsistency();
}

TEST(ProtoFailure, BrokenBackupsWithdrawnOnDetection) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1, 2}),
                           NodePath(h.net.topology(), {0, 3, 4, 5, 2}),
                           Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  const LinkId dead = h.net.topology().FindLink(3, 4);
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(dead, RecoveryMode::kProactive);
  });
  // Just past the detection delay the broken backup has been withdrawn
  // and the connection is degraded (unprotected), awaiting its first
  // re-protection retry.
  h.queue.Schedule(1.0 + h.engine.config().detection_delay + 1e-6, [&] {
    const core::DrConnection* conn = h.net.Find(1);
    ASSERT_NE(conn, nullptr);
    EXPECT_FALSE(conn->has_backup());
    EXPECT_EQ(h.engine.degraded(), 1);
  });
  h.queue.RunAll();
  const core::DrConnection* conn = h.net.Find(1);
  ASSERT_NE(conn, nullptr);
  // No failover happened (the primary never broke)...
  EXPECT_TRUE(h.engine.recoveries().empty());
  // ...and the backoff retry re-protected around the dead link.
  EXPECT_EQ(h.engine.reprotect_recovered(), 1);
  ASSERT_TRUE(conn->has_backup());
  EXPECT_FALSE(conn->first_backup()->Contains(dead));
  h.net.CheckConsistency();
}

TEST(ProtoStats, LatencyAggregation) {
  Harness h(net::MakeGrid(3, 3, Mbps(10)));
  h.engine.SetupConnection(1, NodePath(h.net.topology(), {0, 1, 2}),
                           NodePath(h.net.topology(), {0, 3, 4, 5, 2}),
                           Mbps(1), [](ConnId, bool) {});
  h.queue.RunAll();
  h.queue.Schedule(1.0, [&] {
    h.engine.InjectLinkFailure(h.net.topology().FindLink(0, 1),
                               RecoveryMode::kProactive);
  });
  h.queue.RunAll();
  const RunningStat lat = h.engine.SuccessLatencies();
  EXPECT_EQ(lat.count(), 1);
  EXPECT_GT(lat.mean(), 0.0);
  EXPECT_EQ(h.engine.RecoveryRatio(), 1.0);
}

}  // namespace
}  // namespace drtp::proto
