// Tests for src/common: checks, rng, stats, flags, table.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/flags.h"
#include "common/function_ref.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace drtp {
namespace {

// ---- check ------------------------------------------------------------

TEST(Check, PassingCheckDoesNothing) { DRTP_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(DRTP_CHECK(false), CheckError);
}

TEST(Check, MessageCarriesContext) {
  try {
    DRTP_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ---- rng ---------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.UniformInt(3, 6);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformReal(1.5, 2.5);
    ASSERT_GE(x, 1.5);
    ASSERT_LT(x, 2.5);
  }
}

TEST(Rng, ExponentialMeanApproximatelyInverseRate) {
  Rng rng(3);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(6);
  EXPECT_THROW(rng.Index(0), CheckError);
}

// ---- stats -------------------------------------------------------------

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  Rng rng(9);
  RunningStat all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformReal(-1, 1);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
  TimeWeightedStat s;
  s.Set(0.0, 10.0);
  s.Set(5.0, 20.0);  // 10 for [0,5)
  // 20 for [5,10): average = (50 + 100) / 10
  EXPECT_DOUBLE_EQ(s.Average(10.0), 15.0);
}

TEST(TimeWeightedStat, AverageBeforeStartIsZero) {
  TimeWeightedStat s;
  EXPECT_EQ(s.Average(5.0), 0.0);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i / 10.0);  // uniform over [0,10)
  EXPECT_EQ(h.total(), 100);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
}

TEST(Ratio, Aggregation) {
  Ratio r;
  r.Add(true);
  r.Add(false);
  r.AddMany(8, 8);
  EXPECT_DOUBLE_EQ(r.value(), 0.9);
  Ratio empty;
  EXPECT_EQ(empty.value(), 0.0);
}

// ---- flags -------------------------------------------------------------

TEST(FlagSet, ParsesAllTypes) {
  FlagSet flags("prog");
  auto& n = flags.Int64("n", 1, "count");
  auto& x = flags.Double("x", 0.5, "ratio");
  auto& s = flags.String("s", "a", "label");
  auto& b = flags.Bool("b", false, "toggle");
  const char* argv[] = {"prog", "--n=42", "--x", "2.5", "--s=hello", "--b"};
  flags.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagSet, DefaultsSurviveNoArgs) {
  FlagSet flags("prog");
  auto& n = flags.Int64("n", 7, "count");
  const char* argv[] = {"prog"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(n, 7);
}

TEST(FlagSet, PositionalCollected) {
  FlagSet flags("prog");
  const char* argv[] = {"prog", "one", "two"};
  flags.Parse(3, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
}

TEST(FlagSet, UsageMentionsEveryFlag) {
  FlagSet flags("prog");
  flags.Int64("alpha", 0, "the alpha");
  flags.Bool("beta", true, "the beta");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
}

// Each malformed value must be rejected with a message naming the flag —
// never silently truncated (stoll-style "4x" -> 4) or wrapped around.
TEST(FlagSet, RejectsValueBelowRange) {
  FlagSet flags("prog");
  flags.Int64("jobs", 1, "workers", 0, 4096);
  const char* argv[] = {"prog", "--jobs=-1"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("--jobs"), std::string::npos) << err;
  EXPECT_NE(err.find("out of range [0, 4096]"), std::string::npos) << err;
}

TEST(FlagSet, RejectsValueAboveRange) {
  FlagSet flags("prog");
  flags.Int64("jobs", 1, "workers", 0, 4096);
  const char* argv[] = {"prog", "--jobs=4097"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(FlagSet, RejectsHierTopologyRanges) {
  // The ranges the drtpsim/drtpsweep hierarchical-generator flags declare:
  // a backbone ring needs >= 3 routers; PoP/metro fan-outs may be 0.
  FlagSet flags("prog");
  flags.Int64("hier-backbone", 10, "backbone routers", 3, 1'000'000);
  flags.Int64("hier-pops-per-backbone", 3, "pops", 0, 1'000'000);
  flags.Int64("hier-metro-per-pop", 32, "metro", 0, 1'000'000);
  {
    const char* argv[] = {"prog", "--hier-backbone=2"};
    const std::string err = flags.TryParse(2, const_cast<char**>(argv));
    EXPECT_NE(err.find("--hier-backbone"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range [3, 1000000]"), std::string::npos)
        << err;
  }
  {
    const char* argv[] = {"prog", "--hier-pops-per-backbone=-1"};
    const std::string err = flags.TryParse(2, const_cast<char**>(argv));
    EXPECT_NE(err.find("--hier-pops-per-backbone"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range [0, 1000000]"), std::string::npos)
        << err;
  }
  {
    const char* argv[] = {"prog", "--hier-metro-per-pop=1000001"};
    const std::string err = flags.TryParse(2, const_cast<char**>(argv));
    EXPECT_NE(err.find("out of range [0, 1000000]"), std::string::npos)
        << err;
  }
}

TEST(FlagSet, RejectsGarbageIntegerSuffix) {
  FlagSet flags("prog");
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--n=4x"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("'4x' is not an integer"), std::string::npos) << err;
}

TEST(FlagSet, RejectsEmptyIntegerValue) {
  FlagSet flags("prog");
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--n="};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("is not an integer"), std::string::npos) << err;
}

TEST(FlagSet, RejectsIntegerOverflow) {
  FlagSet flags("prog");
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--n=99999999999999999999"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("overflows"), std::string::npos) << err;
}

TEST(FlagSet, RejectsGarbageDouble) {
  FlagSet flags("prog");
  flags.Double("x", 0.5, "ratio");
  const char* argv[] = {"prog", "--x=0.5.5"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("'0.5.5' is not a number"), std::string::npos) << err;
}

TEST(FlagSet, RejectsGarbageBool) {
  FlagSet flags("prog");
  flags.Bool("b", false, "toggle");
  const char* argv[] = {"prog", "--b=maybe"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("is not a boolean"), std::string::npos) << err;
}

TEST(FlagSet, RejectsMissingValue) {
  FlagSet flags("prog");
  flags.Int64("n", 1, "count");
  const char* argv[] = {"prog", "--n"};
  const std::string err = flags.TryParse(2, const_cast<char**>(argv));
  EXPECT_NE(err.find("needs a value"), std::string::npos) << err;
}

TEST(FlagSet, AcceptsRangeBoundsAndPlusSign) {
  FlagSet flags("prog");
  auto& jobs = flags.Int64("jobs", 1, "workers", 0, 4096);
  auto& n = flags.Int64("n", 1, "count");
  const char* lo[] = {"prog", "--jobs=0", "--n=+42"};
  EXPECT_EQ(flags.TryParse(3, const_cast<char**>(lo)), "");
  EXPECT_EQ(jobs, 0);
  EXPECT_EQ(n, 42);
  const char* hi[] = {"prog", "--jobs=4096"};
  EXPECT_EQ(flags.TryParse(2, const_cast<char**>(hi)), "");
  EXPECT_EQ(jobs, 4096);
}

TEST(FlagSet, UsageShowsNarrowedRange) {
  FlagSet flags("prog");
  flags.Int64("jobs", 1, "workers", 0, 4096);
  flags.Int64("n", 1, "count");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("in [0, 4096]"), std::string::npos) << usage;
  // An unconstrained flag must not advertise the full int64 domain.
  EXPECT_EQ(usage.find("9223372036854775807"), std::string::npos) << usage;
}

// ---- table -------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.BeginRow();
  t.Cell("x");
  t.Cell(std::int64_t{10});
  t.BeginRow();
  t.Cell("longer");
  t.Cell(3.14159, 2);
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsOverfilledRow) {
  TextTable t({"a"});
  t.BeginRow();
  t.Cell("1");
  EXPECT_THROW(t.Cell("2"), CheckError);
}

// ---- function_ref -----------------------------------------------------

int FreeFunctionDouble(int x) { return 2 * x; }

TEST(FunctionRef, InvokesCapturingLambda) {
  int calls = 0;
  const auto lambda = [&](int x) {
    ++calls;
    return x + 1;
  };
  FunctionRef<int(int)> ref = lambda;
  EXPECT_EQ(ref(41), 42);
  EXPECT_EQ(ref(1), 2);
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRef, InvokesFreeFunction) {
  FunctionRef<int(int)> ref = FreeFunctionDouble;
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRef, DefaultAndNullptrAreFalsey) {
  FunctionRef<void()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  FunctionRef<void()> null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
  const auto noop = [] {};
  FunctionRef<void()> bound = noop;
  EXPECT_TRUE(static_cast<bool>(bound));
}

TEST(FunctionRef, BindsTemporaryForCallDuration) {
  // The common hot-path shape: a lambda temporary passed straight into a
  // function taking FunctionRef by value.
  const auto apply = [](FunctionRef<int(int)> f, int x) { return f(x); };
  EXPECT_EQ(apply([](int x) { return x * x; }, 7), 49);
}

TEST(FunctionRef, ReferencesNotCopiesState) {
  int counter = 0;
  const auto bump = [&] { ++counter; };
  FunctionRef<void()> ref = bump;
  FunctionRef<void()> copy = ref;  // copying the ref, not the callable
  ref();
  copy();
  EXPECT_EQ(counter, 2);
}

}  // namespace
}  // namespace drtp
