// Tests for the failure machinery: the what-if P_bk evaluator (including
// the Fig. 1 multiplexing stories) and the mutating switchover engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "common/error.h"
#include "common/rng.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "net/generators.h"

namespace drtp::core {
namespace {

routing::Path NodePath(const net::Topology& topo,
                       std::vector<NodeId> nodes) {
  auto p = routing::Path::FromNodes(topo, nodes);
  DRTP_CHECK(p.has_value());
  return *p;
}

/// Builds the Fig. 1 situation on a 3x3 grid (nodes 0..8 row-major):
/// D1 and D2 have disjoint primaries whose backups share links (benign
/// multiplexing); D1 and D3 have overlapping primaries whose backups also
/// share a link (conflict).
class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : net_(net::MakeGrid(3, 3, Mbps(2))) {}

  DrtpNetwork net_;
};

TEST_F(Figure1Test, DisjointPrimariesShareSpareSafely) {
  // D1: primary 0-1-2 , backup 0-3-4-5-2.
  // D2: primary 6-7-8 , backup 6-3-4-5-8 — backups share 3->4 and 4->5.
  ASSERT_TRUE(net_.EstablishConnection(1, NodePath(net_.topology(), {0, 1, 2}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(1, NodePath(net_.topology(), {0, 3, 4, 5, 2}));
  ASSERT_TRUE(net_.EstablishConnection(2, NodePath(net_.topology(), {6, 7, 8}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(2, NodePath(net_.topology(), {6, 3, 4, 5, 8}));
  // Shared links hold one slot only (primaries disjoint => multiplexing
  // is free), yet every single-link failure is fully recoverable.
  EXPECT_EQ(net_.ledger().spare(net_.topology().FindLink(3, 4)), Mbps(1));
  const Ratio pbk = EvaluateAllSingleLinkFailures(net_);
  EXPECT_EQ(pbk.hits, pbk.trials);
  EXPECT_GT(pbk.trials, 0);
  EXPECT_DOUBLE_EQ(pbk.value(), 1.0);
}

TEST_F(Figure1Test, ConflictingBackupsContendWhenUnderProvisioned) {
  // Both connections run their primaries over the shared link 0->1; their
  // backups share 3->4. Failing 0->1 activates both; the shared spare
  // must hold two slots (§5) for both to survive.
  ASSERT_TRUE(net_.EstablishConnection(1, NodePath(net_.topology(), {0, 1}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(1, NodePath(net_.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(net_.EstablishConnection(2,
                                       NodePath(net_.topology(), {0, 1, 2}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(2, NodePath(net_.topology(), {0, 3, 4, 5, 2}));
  // APLV of 0->3 lists 0->1 twice -> two spare slots reserved.
  const LinkId l03 = net_.topology().FindLink(0, 3);
  EXPECT_EQ(net_.aplv(l03).Max(), 2);
  EXPECT_EQ(net_.ledger().spare(l03), Mbps(2));
  const FailureImpact impact =
      EvaluateLinkFailure(net_, net_.topology().FindLink(0, 1));
  EXPECT_EQ(impact.attempts, 2);
  EXPECT_EQ(impact.activated, 2);

  // Now starve the shared link so only one slot exists: the same
  // situation, but 0->3 already carries 1 Mbps of primary traffic.
  DrtpNetwork tight2(net::MakeGrid(3, 3, Mbps(2)));
  ASSERT_TRUE(tight2.EstablishConnection(
      9, NodePath(tight2.topology(), {0, 3}), Mbps(1), 0.0));
  ASSERT_TRUE(tight2.EstablishConnection(
      1, NodePath(tight2.topology(), {0, 1}), Mbps(1), 0.0));
  tight2.RegisterBackup(1, NodePath(tight2.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(tight2.EstablishConnection(
      2, NodePath(tight2.topology(), {0, 1, 2}), Mbps(1), 0.0));
  tight2.RegisterBackup(2, NodePath(tight2.topology(), {0, 3, 4, 5, 2}));
  // 0->3: total 2, prime 1 -> spare can only reach 1 of the 2 target.
  EXPECT_EQ(tight2.ledger().spare(tight2.topology().FindLink(0, 3)), Mbps(1));
  EXPECT_FALSE(tight2.OverbookedLinks().empty());
  const FailureImpact tight_impact =
      EvaluateLinkFailure(tight2, tight2.topology().FindLink(0, 1));
  EXPECT_EQ(tight_impact.attempts, 2);
  EXPECT_EQ(tight_impact.activated, 1);  // one of the two loses
}

TEST_F(Figure1Test, BackupThroughFailedLinkCannotActivate) {
  ASSERT_TRUE(net_.EstablishConnection(1, NodePath(net_.topology(), {0, 1}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(1, NodePath(net_.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(net_.EstablishConnection(2, NodePath(net_.topology(), {3, 4}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(2, NodePath(net_.topology(), {3, 0, 1, 4}));
  // Fail 3->4: D2's primary dies; D2's backup 3-0-1-4 is intact -> 1/1.
  const FailureImpact a = EvaluateLinkFailure(net_, net_.topology().FindLink(3, 4));
  EXPECT_EQ(a.attempts, 1);
  EXPECT_EQ(a.activated, 1);
  // A connection whose primary AND backup share a failed link never
  // recovers: craft one.
  DrtpNetwork star(net::MakeStar(3, Mbps(2)));
  ASSERT_TRUE(star.EstablishConnection(
      1, NodePath(star.topology(), {1, 0, 2}), Mbps(1), 0.0));
  star.RegisterBackup(1, NodePath(star.topology(), {1, 0, 2}));
  const FailureImpact b =
      EvaluateLinkFailure(star, star.topology().FindLink(1, 0));
  EXPECT_EQ(b.attempts, 1);
  EXPECT_EQ(b.activated, 0);
}

TEST_F(Figure1Test, UnprotectedConnectionNeverActivates) {
  ASSERT_TRUE(net_.EstablishConnection(1, NodePath(net_.topology(), {0, 1}),
                                       Mbps(1), 0.0));
  const FailureImpact impact =
      EvaluateLinkFailure(net_, net_.topology().FindLink(0, 1));
  EXPECT_EQ(impact.attempts, 1);
  EXPECT_EQ(impact.activated, 0);
}

TEST_F(Figure1Test, EvaluationIsPureWhatIf) {
  ASSERT_TRUE(net_.EstablishConnection(1, NodePath(net_.topology(), {0, 1, 2}),
                                       Mbps(1), 0.0));
  net_.RegisterBackup(1, NodePath(net_.topology(), {0, 3, 4, 5, 2}));
  const Bandwidth prime_before = net_.ledger().TotalPrime();
  const Bandwidth spare_before = net_.ledger().TotalSpare();
  (void)EvaluateAllSingleLinkFailures(net_);
  EXPECT_EQ(net_.ledger().TotalPrime(), prime_before);
  EXPECT_EQ(net_.ledger().TotalSpare(), spare_before);
  EXPECT_EQ(net_.ActiveCount(), 1);
  net_.CheckConsistency();
}

TEST_F(Figure1Test, EmptyNetworkHasNoTrials) {
  const Ratio pbk = EvaluateAllSingleLinkFailures(net_);
  EXPECT_EQ(pbk.trials, 0);
  EXPECT_EQ(pbk.value(), 0.0);
}

// ---- switchover engine -----------------------------------------------------

TEST(Switchover, RecoversAndReroutes) {
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(4)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  Dlsr dlsr;
  const SwitchoverReport report =
      ApplyLinkFailure(net, net.topology().FindLink(0, 1), 1.0, &dlsr, &db);
  EXPECT_EQ(report.recovered, std::vector<ConnId>{1});
  EXPECT_TRUE(report.dropped.empty());
  EXPECT_EQ(report.rerouted, std::vector<ConnId>{1});
  const DrConnection* conn = net.Find(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->primary, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  ASSERT_TRUE(conn->has_backup());
  EXPECT_FALSE(conn->backups.front().Contains(net.topology().FindLink(0, 1)));
  EXPECT_EQ(conn->failovers, 1);
  net.CheckConsistency();
}

TEST(Switchover, DropsUnprotectedConnections) {
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(4)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  const SwitchoverReport report =
      ApplyLinkFailure(net, net.topology().FindLink(0, 1), 1.0, nullptr,
                       nullptr);
  EXPECT_EQ(report.dropped, std::vector<ConnId>{1});
  EXPECT_EQ(net.ActiveCount(), 0);
  EXPECT_EQ(net.ledger().TotalPrime(), 0);
}

TEST(Switchover, ReleasesBrokenBackups) {
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(4)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  // Fail a backup-only link: connection stays up, loses protection.
  const SwitchoverReport report = ApplyLinkFailure(
      net, net.topology().FindLink(3, 4), 1.0, nullptr, nullptr);
  EXPECT_TRUE(report.recovered.empty());
  EXPECT_TRUE(report.dropped.empty());
  EXPECT_EQ(report.backups_lost, std::vector<ConnId>{1});
  const DrConnection* conn = net.Find(1);
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->has_backup());
  net.CheckConsistency();
}

TEST(Switchover, ReroutesBrokenBackupWhenSchemeProvided) {
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(4)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  Dlsr dlsr;
  const SwitchoverReport report = ApplyLinkFailure(
      net, net.topology().FindLink(3, 4), 1.0, &dlsr, &db);
  EXPECT_EQ(report.rerouted, std::vector<ConnId>{1});
  const DrConnection* conn = net.Find(1);
  ASSERT_TRUE(conn->has_backup());
  EXPECT_FALSE(conn->backups.front().Contains(net.topology().FindLink(3, 4)));
  net.CheckConsistency();
}

TEST(Switchover, SequentialFailuresEventuallyDrop) {
  // Ring: after the first failure consumes the backup and the second
  // failure hits the promoted route with no reroute, the connection dies.
  DrtpNetwork net(net::MakeRing(4, Mbps(4)));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 2, 1}));
  auto r1 = ApplyLinkFailure(net, net.topology().FindLink(0, 1), 1.0, nullptr,
                             nullptr);
  EXPECT_EQ(r1.recovered, std::vector<ConnId>{1});
  auto r2 = ApplyLinkFailure(net, net.topology().FindLink(0, 3), 2.0, nullptr,
                             nullptr);
  EXPECT_EQ(r2.dropped, std::vector<ConnId>{1});
  EXPECT_EQ(net.ActiveCount(), 0);
}

TEST(Switchover, DuplexFailureHitsBothDirections) {
  DrtpNetwork net(net::MakeRing(4, Mbps(4)),
                  NetworkConfig{.spare_mode = SpareMode::kMultiplexed,
                                .duplex_failures = true});
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 2, 1}));
  ASSERT_TRUE(net.EstablishConnection(2, NodePath(net.topology(), {1, 0}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(2, NodePath(net.topology(), {1, 2, 3, 0}));
  const SwitchoverReport report = ApplyLinkFailure(
      net, net.topology().FindLink(0, 1), 1.0, nullptr, nullptr);
  // Both directions' primaries are hit and both recover disjointly.
  EXPECT_EQ(report.recovered.size(), 2u);
  net.CheckConsistency();
}

// ---- what-if vs enacted cross-check --------------------------------------

// Populates `net` with a deterministic D-LSR-routed load. Rebuilding with
// the same seed yields an identical network, so the non-mutating analysis
// on one instance can be compared with the enacted switchover on another.
void LoadDeterministically(DrtpNetwork& net) {
  const net::Topology& topo = net.topology();
  lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
  net.PublishFullTo(db, 0.0);
  Dlsr scheme;
  Rng rng(21);
  ConnId next = 1;
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<NodeId>(
        rng.Index(static_cast<std::size_t>(topo.num_nodes())));
    const auto d = static_cast<NodeId>(
        rng.Index(static_cast<std::size_t>(topo.num_nodes())));
    if (s == d) continue;
    const RouteSelection sel = scheme.SelectRoutes(net, db, s, d, Mbps(1));
    if (!sel.primary.has_value()) continue;
    if (!net.EstablishConnection(next, *sel.primary, Mbps(1), 0.0)) continue;
    if (sel.backup.has_value()) net.RegisterBackup(next, *sel.backup);
    ++next;
    net.PublishTo(db, 0.0);
  }
}

TEST(EvaluateApplyCrossCheck, WhatIfMatchesEnactedSwitchover) {
  const net::Topology topo = net::MakeWaxman({.nodes = 20,
                                              .avg_degree = 3.5,
                                              .link_capacity = Mbps(10),
                                              .seed = 13});
  DrtpNetwork probe(topo);
  LoadDeterministically(probe);
  ASSERT_GT(probe.ActiveCount(), 10);
  std::vector<LinkId> candidates;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (EvaluateLinkFailure(probe, l).attempts > 0) candidates.push_back(l);
  }
  ASSERT_GE(candidates.size(), 6u);
  // Every affected connection the analysis says would activate must be
  // exactly the set the enacted switchover recovers — and same for drops.
  int tested = 0;
  for (const LinkId l : candidates) {
    if (++tested > 6) break;
    DrtpNetwork net(topo);
    LoadDeterministically(net);
    const FailureImpactDetail detail = EvaluateLinkFailureDetailed(net, l);
    const SwitchoverReport report =
        ApplyLinkFailure(net, l, 1.0, nullptr, nullptr);
    EXPECT_EQ(report.recovered, detail.activated) << "link " << l;
    EXPECT_EQ(report.dropped, detail.dropped) << "link " << l;
    EXPECT_EQ(detail.impact.activated,
              static_cast<int>(report.recovered.size()));
    net.CheckConsistency();
  }
}

TEST(EvaluateApplyCrossCheck, AgreeUnderSpareContention) {
  // The Fig. 1 under-provisioned situation: two activations compete for
  // one spare slot on 0->3; both paths must report {recovered: 1,
  // dropped: 2} (connection-id order breaks the tie).
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  ASSERT_TRUE(net.EstablishConnection(9, NodePath(net.topology(), {0, 3}),
                                      Mbps(1), 0.0));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(net.EstablishConnection(2, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(2, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  const LinkId l01 = net.topology().FindLink(0, 1);
  const FailureImpactDetail detail = EvaluateLinkFailureDetailed(net, l01);
  EXPECT_EQ(detail.activated, std::vector<ConnId>{1});
  EXPECT_EQ(detail.dropped, std::vector<ConnId>{2});
  const SwitchoverReport report =
      ApplyLinkFailure(net, l01, 1.0, nullptr, nullptr);
  EXPECT_EQ(report.recovered, detail.activated);
  EXPECT_EQ(report.dropped, detail.dropped);
  net.CheckConsistency();
}

TEST(EvaluateApplyCrossCheck, FallsThroughToBackupThatFits) {
  // Connection 1's first backup routes over the saturated 2->5 link; its
  // second (link-disjoint) backup detours around it. The switchover must
  // skip the unfit first choice instead of force-activating it
  // (overbooking) or dropping the connection, and the what-if must
  // predict the same outcome.
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  ASSERT_TRUE(net.EstablishConnection(9, NodePath(net.topology(), {2, 5}),
                                      Mbps(2), 0.0));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {1, 4, 7}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {1, 2, 5, 8, 7}));
  net.RegisterBackup(1, NodePath(net.topology(), {1, 0, 3, 6, 7}));
  const LinkId l14 = net.topology().FindLink(1, 4);
  const FailureImpactDetail detail = EvaluateLinkFailureDetailed(net, l14);
  EXPECT_EQ(detail.activated, std::vector<ConnId>{1});
  EXPECT_TRUE(detail.dropped.empty());
  const SwitchoverReport report =
      ApplyLinkFailure(net, l14, 1.0, nullptr, nullptr);
  EXPECT_EQ(report.recovered, detail.activated);
  EXPECT_EQ(report.dropped, detail.dropped);
  EXPECT_TRUE(net.OverbookedLinks().empty());
  net.CheckConsistency();
}

TEST(EvaluateApplyCrossCheck, BackupCreditsItsOwnPrimaryRelease) {
  // Connection 1's backup re-uses link 1->2 from its own primary. The
  // link is fully booked before the failure, but switching over releases
  // the primary's slot on it first, so the activation fits exactly. Both
  // the analysis and the enacted switchover must count that self-credit.
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  ASSERT_TRUE(net.EstablishConnection(8, NodePath(net.topology(), {4, 1, 2}),
                                      Mbps(1), 0.0));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 1, 2}));
  const LinkId l01 = net.topology().FindLink(0, 1);
  const LinkId l12 = net.topology().FindLink(1, 2);
  ASSERT_EQ(net.ledger().spare(l12) + net.ledger().free(l12), Mbps(0));
  const FailureImpactDetail detail = EvaluateLinkFailureDetailed(net, l01);
  EXPECT_EQ(detail.activated, std::vector<ConnId>{1});
  EXPECT_TRUE(detail.dropped.empty());
  const SwitchoverReport report =
      ApplyLinkFailure(net, l01, 1.0, nullptr, nullptr);
  EXPECT_EQ(report.recovered, detail.activated);
  EXPECT_EQ(report.dropped, detail.dropped);
  EXPECT_TRUE(net.OverbookedLinks().empty());
  net.CheckConsistency();
}

TEST(EvaluateApplyCrossCheck, ContentionWithFallThroughInIdOrder) {
  // Three affected connections in id order under scarce capacity on 2->5:
  // connection 1 takes the last 2->5 slot, connection 2's first backup no
  // longer fits there but its link-disjoint detour does, and connection 3
  // (same unfit route, no alternative) drops. Analysis and switchover
  // must agree on the whole partition.
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(3)));
  ASSERT_TRUE(net.EstablishConnection(9, NodePath(net.topology(), {2, 5}),
                                      Mbps(2), 0.0));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {1, 4}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {1, 2, 5, 4}));
  ASSERT_TRUE(net.EstablishConnection(2, NodePath(net.topology(), {1, 4, 7}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(2, NodePath(net.topology(), {1, 2, 5, 8, 7}));
  net.RegisterBackup(2, NodePath(net.topology(), {1, 0, 3, 6, 7}));
  ASSERT_TRUE(net.EstablishConnection(3, NodePath(net.topology(), {1, 4}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(3, NodePath(net.topology(), {1, 2, 5, 4}));
  const LinkId l14 = net.topology().FindLink(1, 4);
  const FailureImpactDetail detail = EvaluateLinkFailureDetailed(net, l14);
  EXPECT_EQ(detail.activated, (std::vector<ConnId>{1, 2}));
  EXPECT_EQ(detail.dropped, std::vector<ConnId>{3});
  const SwitchoverReport report =
      ApplyLinkFailure(net, l14, 1.0, nullptr, nullptr);
  EXPECT_EQ(report.recovered, detail.activated);
  EXPECT_EQ(report.dropped, detail.dropped);
  EXPECT_TRUE(net.OverbookedLinks().empty());
  net.CheckConsistency();
}

TEST(EvaluateApplyCrossCheck, ScanAgreesUnderContention) {
  // The indexed evaluator and the full-scan evaluator must model the
  // same contention ledger (id-order credits and debits).
  DrtpNetwork net(net::MakeGrid(3, 3, Mbps(2)));
  ASSERT_TRUE(net.EstablishConnection(9, NodePath(net.topology(), {0, 3}),
                                      Mbps(1), 0.0));
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 1}));
  ASSERT_TRUE(net.EstablishConnection(2, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(2, NodePath(net.topology(), {0, 3, 4, 5, 2}));
  const LinkId l01 = net.topology().FindLink(0, 1);
  const FailureImpact indexed = EvaluateLinkFailure(net, l01);
  const FailureImpact scanned = EvaluateLinkFailureScan(net, l01);
  EXPECT_EQ(indexed.attempts, scanned.attempts);
  EXPECT_EQ(indexed.activated, scanned.activated);
  EXPECT_EQ(indexed.activated, 1);
}

// Out-of-range risk-group ids reaching ApplySrlgFailure come from external
// input (scenario files replayed against the wrong topology), so they must
// surface as ParseError at the boundary, not as an internal CheckError.
TEST(SrlgFailure, OutOfRangeGroupIsParseError) {
  net::Topology tagged = net::MakeGrid(3, 3, Mbps(2));
  tagged.AssignSrlg(tagged.FindLink(0, 1), 0);  // num_srlgs() == 1
  DrtpNetwork net(tagged);
  EXPECT_THROW(ApplySrlgFailure(net, 1, 0.0, nullptr, nullptr), ParseError);
  EXPECT_THROW(ApplySrlgFailure(net, -1, 0.0, nullptr, nullptr), ParseError);
  EXPECT_NO_THROW(ApplySrlgFailure(net, 0, 0.0, nullptr, nullptr));
  net.CheckConsistency();

  DrtpNetwork untagged(net::MakeGrid(3, 3, Mbps(2)));
  EXPECT_THROW(ApplySrlgFailure(untagged, 0, 0.0, nullptr, nullptr),
               ParseError);
}

// Failing an already-down group again must be a deterministic no-op: every
// member link is already down, so no connection is touched.
TEST(SrlgFailure, DuplicateApplicationIsIdempotentNoOp) {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  topo.AssignSrlg(topo.FindLink(0, 1), 0);
  topo.AssignSrlg(topo.FindLink(3, 4), 0);
  DrtpNetwork net(topo);
  ASSERT_TRUE(net.EstablishConnection(1, NodePath(net.topology(), {0, 1, 2}),
                                      Mbps(1), 0.0));
  net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 4, 5, 2}));

  const SwitchoverReport first =
      ApplySrlgFailure(net, 0, 1.0, nullptr, nullptr);
  // Primary and backup both crossed group 0: the connection is dropped
  // (the co-failed backup cannot activate).
  EXPECT_EQ(first.dropped, std::vector<ConnId>{1});

  const SwitchoverReport second =
      ApplySrlgFailure(net, 0, 2.0, nullptr, nullptr);
  EXPECT_TRUE(second.recovered.empty());
  EXPECT_TRUE(second.dropped.empty());
  EXPECT_TRUE(second.backups_lost.empty());
  EXPECT_TRUE(second.rerouted.empty());
  net.CheckConsistency();
}

// An SRLG failure is by definition the correlated failure of its member
// links; under a scarce spare pool (where order of switchover matters for
// who gets the spare) the report must match ApplyLinkSetFailure on the
// same member set exactly.
TEST(SrlgFailure, MatchesLinkSetFailureUnderScarceSpare) {
  net::Topology topo = net::MakeGrid(3, 3, Mbps(2));
  const LinkId l14 = topo.FindLink(1, 4);
  const LinkId l25 = topo.FindLink(2, 5);
  topo.AssignSrlg(l14, 0);
  topo.AssignSrlg(l25, 0);

  const auto build = [&](DrtpNetwork& net) {
    // Conn 9 saturates 2->5 so conn 1's backup through it cannot hide
    // there; conn 1's primary crosses the group via 1->4.
    ASSERT_TRUE(net.EstablishConnection(
        9, NodePath(net.topology(), {2, 5}), Mbps(2), 0.0));
    ASSERT_TRUE(net.EstablishConnection(
        1, NodePath(net.topology(), {0, 1, 4, 7}), Mbps(1), 0.0));
    net.RegisterBackup(1, NodePath(net.topology(), {0, 3, 6, 7}));
  };

  DrtpNetwork via_srlg(topo);
  build(via_srlg);
  const SwitchoverReport a = ApplySrlgFailure(via_srlg, 0, 1.0, nullptr,
                                              nullptr);

  DrtpNetwork via_set(topo);
  build(via_set);
  const std::vector<LinkId> members{std::min(l14, l25), std::max(l14, l25)};
  const SwitchoverReport b =
      ApplyLinkSetFailure(via_set, members, 1.0, nullptr, nullptr);

  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.backups_lost, b.backups_lost);
  EXPECT_EQ(a.rerouted, b.rerouted);
  via_srlg.CheckConsistency();
  via_set.CheckConsistency();
}

}  // namespace
}  // namespace drtp::core
