// Oracle-based property tests: algorithms checked against brute-force
// enumeration on small graphs, plus parser robustness fuzzing.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/rng.h"
#include "net/generators.h"
#include "routing/constrained.h"
#include "routing/dijkstra.h"
#include "sim/scenario.h"

namespace drtp {
namespace {

/// Enumerates every simple path src->dst with at most max_hops links and
/// returns the cheapest cost found (infinity if none). Exponential — for
/// tiny graphs only.
double BruteForceCheapest(const net::Topology& topo, NodeId src, NodeId dst,
                          const routing::LinkCostFn& cost, int max_hops) {
  double best = routing::kInfiniteCost;
  std::vector<char> visited(static_cast<std::size_t>(topo.num_nodes()), 0);
  std::function<void(NodeId, int, double)> dfs = [&](NodeId u, int hops,
                                                     double acc) {
    if (u == dst) {
      best = std::min(best, acc);
      return;
    }
    if (hops == max_hops) return;
    visited[static_cast<std::size_t>(u)] = 1;
    for (LinkId l : topo.out_links(u)) {
      const double c = cost(l);
      if (c == routing::kInfiniteCost) continue;
      const NodeId v = topo.link(l).dst;
      if (visited[static_cast<std::size_t>(v)]) continue;
      dfs(v, hops + 1, acc + c);
    }
    visited[static_cast<std::size_t>(u)] = 0;
  };
  dfs(src, 0, 0.0);
  return best;
}

class ConstrainedOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstrainedOracle, MatchesBruteForceOnSmallGraphs) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 8, .avg_degree = 3.0, .seed = seed});
  Rng rng(seed * 17 + 3);
  std::vector<double> costs(static_cast<std::size_t>(topo.num_links()));
  for (auto& c : costs) {
    c = rng.Bernoulli(0.15) ? routing::kInfiniteCost
                            : rng.UniformReal(0.5, 4.0);
  }
  const auto cost = [&](LinkId l) {
    return costs[static_cast<std::size_t>(l)];
  };
  for (int max_hops = 1; max_hops <= 5; ++max_hops) {
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
        if (src == dst) continue;
        const double expected =
            BruteForceCheapest(topo, src, dst, cost, max_hops);
        const auto got =
            routing::CheapestPathMaxHops(topo, src, dst, cost, max_hops);
        if (expected == routing::kInfiniteCost) {
          EXPECT_FALSE(got.has_value())
              << src << "->" << dst << " h=" << max_hops;
        } else {
          ASSERT_TRUE(got.has_value())
              << src << "->" << dst << " h=" << max_hops;
          double actual = 0;
          for (LinkId l : got->links()) actual += cost(l);
          EXPECT_NEAR(actual, expected, 1e-9)
              << src << "->" << dst << " h=" << max_hops;
          EXPECT_LE(got->hops(), max_hops);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedOracle,
                         ::testing::Range<std::uint64_t>(1, 6));

class DijkstraOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraOracle, MatchesBruteForceUnbounded) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::MakeWaxman(net::WaxmanConfig{
      .nodes = 7, .avg_degree = 3.0, .seed = seed + 50});
  Rng rng(seed * 11);
  std::vector<double> costs(static_cast<std::size_t>(topo.num_links()));
  for (auto& c : costs) c = rng.UniformReal(0.1, 3.0);
  const auto cost = [&](LinkId l) {
    return costs[static_cast<std::size_t>(l)];
  };
  for (NodeId dst = 1; dst < topo.num_nodes(); ++dst) {
    const double expected =
        BruteForceCheapest(topo, 0, dst, cost, topo.num_nodes());
    const auto got = routing::CheapestPath(topo, 0, dst, cost);
    ASSERT_TRUE(got.has_value());
    double actual = 0;
    for (LinkId l : got->links()) actual += cost(l);
    EXPECT_NEAR(actual, expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraOracle,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---- parser robustness ---------------------------------------------------------

TEST(ScenarioFuzz, MalformedInputsThrowNotCrash) {
  const net::Topology topo = net::MakeRing(4, Mbps(1));
  sim::TrafficConfig tc;
  tc.lambda = 2.0;
  tc.duration = 50.0;
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  const std::string good = sc.ToString();

  // Truncations at every quarter of the file.
  for (std::size_t cut = 1; cut < 4; ++cut) {
    const std::string broken = good.substr(0, good.size() * cut / 4);
    EXPECT_THROW(sim::Scenario::FromString(broken), ParseError)
        << "cut " << cut;
  }
  // Token corruption.
  for (const char* bad : {"drtp-scenario x\n", "drtp-scenario 1\nevents -1\n",
                          "drtp-scenario 1\ntraffic 9 0 0\n"}) {
    EXPECT_THROW(sim::Scenario::FromString(bad), ParseError) << bad;
  }
  // Event-kind corruption inside a valid prefix.
  std::string mangled = good;
  const auto pos = mangled.find("\nreq ");
  ASSERT_NE(pos, std::string::npos);
  mangled.replace(pos, 5, "\nzzz ");
  EXPECT_THROW(sim::Scenario::FromString(mangled), ParseError);
  // Out-of-order events.
  sim::Scenario reordered = sc;
  ASSERT_GE(reordered.events.size(), 2u);
  std::swap(reordered.events.front(), reordered.events.back());
  EXPECT_THROW(sim::Scenario::FromString(reordered.ToString()), ParseError);
}

TEST(FlagFuzz, TryParseReportsErrorsWithoutExiting) {
  FlagSet flags("prog");
  auto& n = flags.Int64("n", 5, "count");
  {
    const char* argv[] = {"prog", "--bogus=1"};
    EXPECT_NE(flags.TryParse(2, const_cast<char**>(argv)), "");
  }
  {
    const char* argv[] = {"prog", "--n=notanumber"};
    EXPECT_NE(flags.TryParse(2, const_cast<char**>(argv)), "");
  }
  {
    const char* argv[] = {"prog", "--n"};
    EXPECT_EQ(flags.TryParse(2, const_cast<char**>(argv)),
              "flag --n needs a value");
  }
  {
    const char* argv[] = {"prog", "--help"};
    EXPECT_EQ(flags.TryParse(2, const_cast<char**>(argv)), "help");
  }
  {
    const char* argv[] = {"prog", "--n=42"};
    EXPECT_EQ(flags.TryParse(2, const_cast<char**>(argv)), "");
    EXPECT_EQ(n, 42);
  }
  {
    FlagSet b("prog");
    auto& flag = b.Bool("b", false, "toggle");
    const char* argv[] = {"prog", "--b=maybe"};
    EXPECT_NE(b.TryParse(2, const_cast<char**>(argv)), "");
    EXPECT_FALSE(flag);
  }
}

}  // namespace
}  // namespace drtp
