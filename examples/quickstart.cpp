// Quickstart: the paper's Figure 1 story on a 3x3 mesh.
//
// Builds the mesh, establishes three DR-connections with D-LSR, shows how
// backup multiplexing sizes the spare pools, then fails a shared primary
// link and watches both affected connections switch to their backups.
//
//   $ ./quickstart
#include <cstdio>

#include "drtp/drtp.h"

using namespace drtp;

namespace {

void PrintPath(const char* label, const routing::Path& path) {
  std::printf("  %s:", label);
  for (NodeId n : path.nodes()) std::printf(" %d", n);
  std::printf("  (%d hops)\n", path.hops());
}

}  // namespace

int main() {
  // A 3x3 mesh like Fig. 1: nodes 0..8 row-major, duplex 30 Mbps links.
  core::DrtpNetwork net(net::MakeGrid(3, 3, Mbps(30)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Dlsr dlsr;

  std::printf("== DRTP quickstart: 3x3 mesh, D-LSR routing ==\n\n");

  // Establish three DR-connections. Each gets a primary (min-hop with
  // bandwidth) and a backup chosen to minimize conflicts (Eq. 5).
  const struct {
    ConnId id;
    NodeId src, dst;
  } requests[] = {{1, 0, 2}, {2, 6, 8}, {3, 0, 8}};
  for (const auto& r : requests) {
    net.PublishTo(db, 0.0);
    const core::RouteSelection sel =
        dlsr.SelectRoutes(net, db, r.src, r.dst, Mbps(1));
    if (!sel.primary) {
      std::printf("connection %lld blocked!\n",
                  static_cast<long long>(r.id));
      continue;
    }
    if (!net.EstablishConnection(r.id, *sel.primary, Mbps(1), 0.0)) {
      std::printf("connection %lld lost the race for bandwidth\n",
                  static_cast<long long>(r.id));
      continue;
    }
    std::printf("DR-connection D%lld  (%d -> %d)\n",
                static_cast<long long>(r.id), r.src, r.dst);
    PrintPath("primary", *sel.primary);
    if (sel.backup) {
      const int overbooked = net.RegisterBackup(r.id, *sel.backup);
      PrintPath("backup ", *sel.backup);
      std::printf("  disjoint: %s, overbooked hops: %d\n",
                  sel.primary->LinkDisjoint(*sel.backup) ? "yes" : "no",
                  overbooked);
    }
  }

  // Backup multiplexing at work: total spare bandwidth is far less than
  // one full extra path per connection.
  std::printf("\nbandwidth ledger: prime %lld kbps, spare %lld kbps"
              " (multiplexing shares spare slots between backups whose\n"
              " primaries are disjoint)\n",
              static_cast<long long>(net.ledger().TotalPrime()),
              static_cast<long long>(net.ledger().TotalSpare()));

  // What-if analysis: can every single link failure be survived?
  const Ratio pbk = core::EvaluateAllSingleLinkFailures(net);
  std::printf("single-link failure analysis: %lld of %lld affected"
              " primaries can switch to their backup (P_bk = %.3f)\n",
              static_cast<long long>(pbk.hits),
              static_cast<long long>(pbk.trials), pbk.value());

  // Now actually fail the first hop of D1's primary and recover.
  const core::DrConnection* d1 = net.Find(1);
  const LinkId failed = d1->primary.links()[0];
  std::printf("\n== failing link %d (%d -> %d) ==\n", failed,
              net.topology().link(failed).src,
              net.topology().link(failed).dst);
  const core::SwitchoverReport report =
      core::ApplyLinkFailure(net, failed, 1.0, &dlsr, &db);
  std::printf("recovered: %zu, dropped: %zu, backups re-established: %zu\n",
              report.recovered.size(), report.dropped.size(),
              report.rerouted.size());
  for (ConnId id : report.recovered) {
    const core::DrConnection* conn = net.Find(id);
    std::printf("D%lld now runs on its old backup:\n",
                static_cast<long long>(id));
    PrintPath("primary", conn->primary);
    if (conn->has_backup()) PrintPath("backup ", conn->backups.front());
  }
  net.CheckConsistency();
  std::printf("\nledger and APLVs verified consistent. done.\n");
  return 0;
}
