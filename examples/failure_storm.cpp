// Failure storm: sequential link failures with full DRTP recovery
// (detection -> switching -> resource reconfiguration), the §1 "command &
// control" setting where the network must stay dependable while links keep
// dying.
//
// Loads a 60-node network with DR-connections, then kills one random link
// per round for N rounds. After every round the damaged network re-protects
// itself; we track survivors, failovers and the dependability audit.
//
//   $ ./failure_storm [--rounds N] [--load N] [--seed N]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "drtp/drtp.h"
#include "sim/paper.h"

using namespace drtp;

int main(int argc, char** argv) {
  FlagSet flags("failure_storm");
  auto& rounds = flags.Int64("rounds", 8, "number of link failures");
  auto& load = flags.Int64("load", 150, "connections to establish");
  auto& seed = flags.Int64("seed", 3, "seed");
  flags.Parse(argc, argv);

  core::DrtpNetwork net(
      sim::MakePaperTopology(4.0, static_cast<std::uint64_t>(seed)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Plsr plsr;  // P-LSR keeps the storm cheap: only L1 norms advertised
  core::BoundedFlooding bf(net.topology());
  Rng rng(static_cast<std::uint64_t>(seed) + 99);

  // Load the network.
  int admitted = 0;
  for (ConnId id = 1; id <= load; ++id) {
    const NodeId src = static_cast<NodeId>(rng.Index(60));
    NodeId dst = static_cast<NodeId>(rng.Index(60));
    if (dst == src) dst = (dst + 1) % 60;
    net.PublishTo(db, 0.0);
    const auto sel = plsr.SelectRoutes(net, db, src, dst, Mbps(1));
    if (sel.primary && net.EstablishConnection(id, *sel.primary, Mbps(1), 0)) {
      if (sel.backup) net.RegisterBackup(id, *sel.backup);
      ++admitted;
    }
  }
  std::printf("== failure storm: %d connections admitted, %lld rounds ==\n\n",
              admitted, static_cast<long long>(rounds));

  int total_recovered = 0, total_dropped = 0, total_rerouted = 0;
  for (int round = 1; round <= rounds; ++round) {
    // Pick a live link that carries at least one primary, if any.
    std::vector<LinkId> candidates;
    for (LinkId l = 0; l < net.topology().num_links(); ++l) {
      if (net.IsLinkUp(l) && !net.ConnsWithPrimaryOn(l).empty()) {
        candidates.push_back(l);
      }
    }
    if (candidates.empty()) {
      std::printf("round %d: no loaded links left to fail\n", round);
      break;
    }
    const LinkId victim = candidates[rng.Index(candidates.size())];
    const auto report =
        core::ApplyLinkFailure(net, victim, round, &plsr, &db);
    // BF's distance tables would be rebuilt on topology change (§4.1);
    // mirror that here even though this storm routes with P-LSR.
    bf.RebuildDistanceTable(net);
    total_recovered += static_cast<int>(report.recovered.size());
    total_dropped += static_cast<int>(report.dropped.size());
    total_rerouted += static_cast<int>(report.rerouted.size());
    const Ratio pbk = core::EvaluateAllSingleLinkFailures(net);
    std::printf("round %d: failed link %3d | recovered %2zu dropped %2zu"
                " re-protected %2zu | active %3d | P_bk now %.3f\n",
                round, victim, report.recovered.size(),
                report.dropped.size(), report.rerouted.size(),
                net.ActiveCount(), pbk.value());
    net.CheckConsistency();
  }

  std::printf("\nstorm summary: %d failovers, %d connections lost, %d"
              " backups re-established\n",
              total_recovered, total_dropped, total_rerouted);
  std::printf("%d of %d connections still running over %d dead links."
              " done.\n",
              net.ActiveCount(), admitted,
              static_cast<int>(net.DownLinks().size()));
  return 0;
}
