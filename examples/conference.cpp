// Business-critical network meeting (§1's "business video conferences"),
// routed with bounded flooding.
//
// A meeting is a star of DR-connections between every participant and a
// bridge node. BF needs no link-state database: each join request floods
// channel-discovery packets inside a hop-bounded ellipse and the bridge
// picks the routes. The example reports the flooding overhead per join and
// compares two ellipse widths.
//
//   $ ./conference [--participants N] [--seed N]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "drtp/drtp.h"
#include "sim/paper.h"

using namespace drtp;

namespace {

struct JoinResult {
  int admitted = 0;
  int protected_count = 0;
  std::int64_t cdp_messages = 0;
  std::int64_t cdp_bytes = 0;
};

JoinResult RunMeeting(core::DrtpNetwork& net, core::BoundedFlooding& bf,
                      NodeId bridge, const std::vector<NodeId>& participants) {
  lsdb::LinkStateDb unused(net.topology().num_links(),
                           net.topology().num_links());
  JoinResult result;
  ConnId next_id = 1;
  for (const NodeId p : participants) {
    const auto sel = bf.SelectRoutes(net, unused, p, bridge, Mbps(1));
    result.cdp_messages += sel.control_messages;
    result.cdp_bytes += sel.control_bytes;
    if (!sel.primary ||
        !net.EstablishConnection(next_id, *sel.primary, Mbps(1), 0.0)) {
      std::printf("  participant %d: blocked\n", p);
      continue;
    }
    ++result.admitted;
    if (sel.backup) {
      net.RegisterBackup(next_id, *sel.backup);
      ++result.protected_count;
    }
    ++next_id;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("conference");
  auto& participants_n = flags.Int64("participants", 12, "meeting size");
  auto& seed = flags.Int64("seed", 11, "topology seed");
  flags.Parse(argc, argv);

  const net::Topology topo =
      sim::MakePaperTopology(3.0, static_cast<std::uint64_t>(seed));
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  const NodeId bridge = static_cast<NodeId>(rng.Index(
      static_cast<std::size_t>(topo.num_nodes())));
  std::vector<NodeId> participants;
  while (participants.size() < static_cast<std::size_t>(participants_n)) {
    const NodeId p = static_cast<NodeId>(rng.Index(
        static_cast<std::size_t>(topo.num_nodes())));
    if (p != bridge) participants.push_back(p);
  }

  std::printf("== conference: %zu participants joining bridge node %d via"
              " bounded flooding ==\n\n",
              participants.size(), bridge);

  for (const int sigma : {1, 2, 3}) {
    core::DrtpNetwork net(topo);
    core::BoundedFlooding bf(
        topo, core::FloodConfig{.rho = 1.0, .sigma = sigma, .alpha = 1.0,
                                .beta = 2});
    const JoinResult r = RunMeeting(net, bf, bridge, participants);
    const Ratio pbk = core::EvaluateAllSingleLinkFailures(net);
    std::printf("ellipse width sigma=%d: %d joined, %d protected, P_bk=%.3f,"
                " %.0f CDPs (%.0f bytes) per join\n",
                sigma, r.admitted, r.protected_count, pbk.value(),
                static_cast<double>(r.cdp_messages) / r.admitted,
                static_cast<double>(r.cdp_bytes) / r.admitted);
  }

  std::printf("\nwider ellipses find more protection at the price of more"
              " flooding — the paper picks the knee of that curve. done.\n");
  return 0;
}
