// Recovery-latency walkthrough with the timed protocol engine.
//
// Shows DRTP's end-to-end choreography on the clock: timed connection
// setup (reserve -> confirm -> backup-register), a fiber cut, failure
// detection after missed heartbeats, the failure report racing to the
// source, the channel-switch packet activating the backup — and the same
// failure handled reactively, with route re-discovery and backoff retries.
//
//   $ ./recovery_latency [--seed N]
#include <cstdio>

#include "common/flags.h"
#include "drtp/drtp.h"
#include "proto/engine.h"
#include "sim/event_queue.h"
#include "sim/paper.h"

using namespace drtp;

namespace {

void Narrate(const proto::ProtocolEngine& engine, const char* mode) {
  for (const auto& r : engine.recoveries()) {
    if (r.success) {
      std::printf("  [%s] connection %lld: service restored after %.1f ms"
                  " (%d retries)\n",
                  mode, static_cast<long long>(r.conn), r.latency() * 1000.0,
                  r.retries);
    } else {
      std::printf("  [%s] connection %lld: LOST (gave up %.1f ms after the"
                  " failure, %d retries)\n",
                  mode, static_cast<long long>(r.conn), r.latency() * 1000.0,
                  r.retries);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("recovery_latency");
  auto& seed = flags.Int64("seed", 21, "topology seed");
  flags.Parse(argc, argv);

  const net::Topology topo =
      sim::MakePaperTopology(3.0, static_cast<std::uint64_t>(seed));

  for (const auto mode :
       {proto::RecoveryMode::kProactive, proto::RecoveryMode::kReactive}) {
    const char* name =
        mode == proto::RecoveryMode::kProactive ? "DRTP" : "reactive";
    std::printf("== %s recovery ==\n", name);
    core::DrtpNetwork net(topo);
    sim::EventQueue queue;
    lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
    core::Dlsr dlsr;
    proto::ProtocolEngine engine(net, queue, proto::ProtocolConfig{}, &dlsr,
                                 &db);

    // Set up three connections out of node 0, timed.
    net.PublishTo(db, 0.0);
    for (ConnId id = 1; id <= 3; ++id) {
      const NodeId dst = static_cast<NodeId>(10 * id);
      const auto sel = dlsr.SelectRoutes(net, db, 0, dst, Mbps(1));
      if (!sel.primary) continue;
      engine.SetupConnection(
          id, *sel.primary,
          mode == proto::RecoveryMode::kProactive ? sel.backup : std::nullopt,
          Mbps(1), [](ConnId cid, bool ok) {
            std::printf("  connection %lld %s\n",
                        static_cast<long long>(cid),
                        ok ? "established" : "REJECTED");
          });
      queue.RunAll();
      net.PublishTo(db, queue.now());
    }

    // Cut the first hop out of node 0 at t = 1 s.
    const LinkId victim = net.topology().out_links(0)[0];
    std::printf("  t=1.000s: fiber cut on link %d (%d -> %d)\n", victim,
                net.topology().link(victim).src,
                net.topology().link(victim).dst);
    queue.Schedule(1.0, [&] { engine.InjectLinkFailure(victim, mode); });
    queue.RunAll();
    Narrate(engine, name);
    const RunningStat lat = engine.SuccessLatencies();
    if (lat.count() > 0) {
      std::printf("  %s mean restoration: %.1f ms over %lld connections\n\n",
                  name, lat.mean() * 1000.0,
                  static_cast<long long>(lat.count()));
    } else {
      std::printf("  %s restored nothing\n\n", name);
    }
  }
  std::printf("DRTP's pre-established backups turn recovery into one"
              " message round; reactive recovery pays discovery + setup +"
              " retries.\n");
  return 0;
}
