// Remote-surgery scenario: the paper's motivating "remote medical
// services" application (§1).
//
// A hospital hub receives dependable real-time streams (haptics, video,
// vitals) from clinics across a 60-node metro network. Streams are routed
// with D-LSR; mid-session we cut a fiber on the busiest corridor and show
// that every affected stream switches to its pre-established backup within
// the same control round, then re-protects itself (DRTP step 4).
//
//   $ ./telesurgery [--seed N] [--streams N]
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "drtp/drtp.h"
#include "sim/paper.h"

using namespace drtp;

int main(int argc, char** argv) {
  FlagSet flags("telesurgery");
  auto& seed = flags.Int64("seed", 7, "topology/workload seed");
  auto& streams = flags.Int64("streams", 40, "concurrent patient streams");
  flags.Parse(argc, argv);

  // Metro network: 60 nodes, average degree 4 (well-connected city core).
  core::DrtpNetwork net(
      sim::MakePaperTopology(4.0, static_cast<std::uint64_t>(seed)));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Dlsr dlsr;
  Rng rng(static_cast<std::uint64_t>(seed) + 1);

  const NodeId hospital = 0;
  std::printf("== telesurgery: %lld DR-streams into hospital node %d ==\n",
              static_cast<long long>(streams), hospital);

  std::vector<ConnId> admitted;
  int unprotected = 0;
  for (ConnId id = 1; id <= streams; ++id) {
    NodeId clinic = static_cast<NodeId>(
        rng.Index(static_cast<std::size_t>(net.topology().num_nodes())));
    if (clinic == hospital) clinic = hospital + 1;
    net.PublishTo(db, 0.0);
    const auto sel = dlsr.SelectRoutes(net, db, clinic, hospital, Mbps(1));
    if (!sel.primary ||
        !net.EstablishConnection(id, *sel.primary, Mbps(1), 0.0)) {
      std::printf("stream %lld from clinic %d: BLOCKED\n",
                  static_cast<long long>(id), clinic);
      continue;
    }
    if (sel.backup) {
      net.RegisterBackup(id, *sel.backup);
    } else {
      ++unprotected;
    }
    admitted.push_back(id);
  }
  std::printf("admitted %zu streams (%d unprotected)\n", admitted.size(),
              unprotected);
  std::printf("spare bandwidth reserved: %lld kbps for %lld kbps of primary"
              " traffic (%.1f%% overhead)\n",
              static_cast<long long>(net.ledger().TotalSpare()),
              static_cast<long long>(net.ledger().TotalPrime()),
              100.0 * static_cast<double>(net.ledger().TotalSpare()) /
                  static_cast<double>(net.ledger().TotalPrime()));

  // Pre-failure dependability audit.
  const Ratio pbk = core::EvaluateAllSingleLinkFailures(net);
  std::printf("dependability audit: P_bk = %.3f over %lld single-link"
              " failure cases\n",
              pbk.value(), static_cast<long long>(pbk.trials));

  // Cut the busiest link (most primaries).
  LinkId busiest = 0;
  std::size_t most = 0;
  for (LinkId l = 0; l < net.topology().num_links(); ++l) {
    const auto count = net.ConnsWithPrimaryOn(l).size();
    if (count > most) {
      most = count;
      busiest = l;
    }
  }
  std::printf("\n== fiber cut on link %d (%d -> %d), carrying %zu"
              " primaries ==\n",
              busiest, net.topology().link(busiest).src,
              net.topology().link(busiest).dst, most);
  const auto report = core::ApplyLinkFailure(net, busiest, 10.0, &dlsr, &db);
  std::printf("channel switching: %zu streams promoted their backup, %zu"
              " dropped, %zu broken backups released\n",
              report.recovered.size(), report.dropped.size(),
              report.backups_lost.size());
  std::printf("resource reconfiguration: %zu streams re-protected with new"
              " backups\n", report.rerouted.size());

  // Post-failure audit: the network must still be dependable.
  const Ratio pbk_after = core::EvaluateAllSingleLinkFailures(net);
  std::printf("post-failure audit: P_bk = %.3f\n", pbk_after.value());
  net.CheckConsistency();

  const double survived =
      static_cast<double>(admitted.size() - report.dropped.size()) /
      static_cast<double>(admitted.size());
  std::printf("\n%.1f%% of streams survived the cut without"
              " re-establishment. done.\n", 100.0 * survived);
  return 0;
}
