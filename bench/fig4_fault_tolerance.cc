// Reproduces Figure 4: fault-tolerance P_bk of D-LSR, P-LSR and BF versus
// the request arrival rate λ, for average node degrees E = 3 (Fig. 4a) and
// E = 4 (Fig. 4b), under uniform (UT) and hot-spot (NT) traffic.
//
// Paper shape targets: D-LSR >= P-LSR >= BF almost everywhere; all three
// >= ~0.87; fault-tolerance degrades with load for the LSR schemes and is
// uniformly higher at E = 4.
//
// Cells run on the parallel sweep engine: --jobs=N fans them out over a
// work-stealing pool, with tables bit-identical for every N.
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("fig4_fault_tolerance");
  const auto opts = bench::HarnessOptions::Register(flags);
  const auto sweep = bench::SweepFlags::Register(flags);
  auto& replications = flags.Int64(
      "replications", 1,
      "independent topology+traffic seeds averaged per cell (the paper "
      "plots one; >1 adds rigor at proportional cost)");
  flags.Parse(argc, argv);

  runner::SweepSpec spec;
  // One base seed per replication so topology and traffic reseed together.
  spec.seeds.clear();
  for (std::int64_t r = 0; r < replications; ++r) {
    spec.seeds.push_back(static_cast<std::uint64_t>(*opts.seed + r * 101));
  }
  spec.degrees = {3.0, 4.0};
  spec.patterns = {sim::TrafficPattern::kUniform,
                   sim::TrafficPattern::kHotspot};
  spec.lambdas = runner::PaperLambdas(*opts.fast);
  spec.schemes = {"D-LSR", "P-LSR", "BF"};
  spec.duration = *opts.duration;
  spec.fast = *opts.fast;
  runner::SweepEngine engine(spec);
  const auto results = bench::RunSweep(engine, sweep);

  std::printf("Figure 4 — fault-tolerance P_bk vs arrival rate lambda\n");
  std::printf("(probability a backup activates when a single link failure"
              " kills its primary)\n");
  if (replications > 1) {
    std::printf("(mean over %lld independent topology/traffic seeds)\n",
                static_cast<long long>(replications));
  }
  std::printf("\n");
  for (const double degree : {3.0, 4.0}) {
    std::printf("--- Fig. 4(%s): E = %.0f ---\n", degree == 3.0 ? "a" : "b",
                degree);
    TextTable table({"lambda", "D-LSR,UT", "P-LSR,UT", "BF,UT", "D-LSR,NT",
                     "P-LSR,NT", "BF,NT"});
    for (const double lambda : spec.lambdas) {
      table.BeginRow();
      table.Cell(lambda, 2);
      for (const auto pattern :
           {sim::TrafficPattern::kUniform, sim::TrafficPattern::kHotspot}) {
        for (const char* scheme : {"D-LSR", "P-LSR", "BF"}) {
          RunningStat pbk;
          for (const std::uint64_t seed : spec.seeds) {
            pbk.Add(bench::FindMetrics(results, seed, degree, pattern, lambda,
                                       scheme)
                        .pbk.value());
          }
          table.Cell(pbk.mean(), 4);
        }
      }
    }
    std::fputs(table.Render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
