// Ablation: heterogeneous per-connection bandwidth.
//
// §5 assumes every DR-connection requests identical bandwidth; the
// managers generalize the spare-sizing rule to bandwidth-weighted demand
// (max_j demand[j]). This harness compares a uniform 1 Mbps workload with
// mixed workloads of the same *mean* offered load, checking that the
// weighted rule keeps fault-tolerance while the spare cost tracks the
// heavier tail.
#include "bench_common.h"
#include "drtp/dlsr.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_heterogeneous");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  auto& degree = flags.Double("degree", 4.0, "average node degree");
  flags.Parse(argc, argv);

  const net::Topology topo = sim::MakePaperTopology(
      degree, static_cast<std::uint64_t>(*opts.seed));
  const Time duration =
      *opts.fast ? sim::kPaperDuration / 4 : sim::kPaperDuration;

  std::printf("Ablation — heterogeneous connection bandwidth (E = %.0f,"
              " lambda = %.2f, UT, D-LSR)\n\n", degree, lambda);
  TextTable t({"workload", "P_bk", "avg active", "avg spare Mbps",
               "overbooked hops"});
  struct Mix {
    const char* label;
    Bandwidth bw;
    Bandwidth bw_max;  // 0 = constant
  };
  // Mean bandwidth is 1 Mbps in every row, so offered load matches.
  const Mix mixes[] = {{"uniform 1 Mbps", Mbps(1), 0},
                       {"mixed 0.5-1.5 Mbps", Kbps(500), Kbps(1500)},
                       {"mixed 0.25-1.75 Mbps", Kbps(250), Kbps(1750)}};
  for (const Mix& mix : mixes) {
    sim::TrafficConfig tc = sim::MakePaperTraffic(
        sim::TrafficPattern::kUniform, lambda,
        static_cast<std::uint64_t>(*opts.seed) + 1);
    tc.duration = duration;
    tc.bw = mix.bw;
    tc.bw_max = mix.bw_max;
    if (*opts.fast) {
      const double shrink = duration / sim::kPaperDuration;
      tc.lifetime_min *= shrink;
      tc.lifetime_max *= shrink;
      tc.lambda = lambda / shrink;
    }
    const sim::Scenario sc = sim::Scenario::Generate(topo, tc);
    sim::ExperimentConfig ec = sim::MakePaperExperiment();
    ec.warmup = duration * 0.4;
    ec.sample_interval = duration / 50.0;
    core::Dlsr dlsr;
    const sim::RunMetrics m = sim::RunScenario(topo, sc, dlsr, ec);
    t.BeginRow();
    t.Cell(mix.label);
    t.Cell(m.pbk.value(), 4);
    t.Cell(m.avg_active, 1);
    t.Cell(m.spare_bw.mean() / 1000.0, 1);
    t.Cell(m.overbooked_hops);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: the weighted sizing rule holds P_bk at the"
              " uniform level; wider bandwidth spreads raise the spare"
              " reservation needed to cover the heavy-tailed activations.\n");
  return 0;
}
