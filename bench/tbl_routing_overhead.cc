// Reproduces the §6 discussion of route-discovery overhead (X1 in
// DESIGN.md): what each scheme pays in control traffic.
//
//   BF      — per-request channel-discovery packets (CDPs): count and
//             bytes, measured from the replay.
//   P-LSR   — periodic link-state advertisements carrying ||APLV||_1
//             (8 B payload per link) + bandwidth.
//   D-LSR   — periodic advertisements carrying the N-bit Conflict Vector
//             (N/8 B payload per link) + bandwidth: the "larger packet
//             size" §4 motivates BF with.
// Plus the backup-path register/release packets all schemes share.
#include "bench_common.h"
#include "lsdb/link_state_db.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("tbl_routing_overhead");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Routing-overhead comparison (lambda = %.2f)\n\n", lambda);
  for (const double degree : {3.0, 4.0}) {
    const net::Topology& topo = runner.Topology(degree);
    const lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
    std::printf("--- E = %.0f (%d directed links) ---\n", degree,
                topo.num_links());
    TextTable t({"scheme", "discovery msgs/req", "discovery B/req",
                 "advert B/cycle", "P_bk"});
    for (const auto pattern :
         {sim::TrafficPattern::kUniform, sim::TrafficPattern::kHotspot}) {
      for (const char* scheme : {"D-LSR", "P-LSR", "BF"}) {
        const sim::RunMetrics m = runner.Run(degree, pattern, lambda, scheme);
        t.BeginRow();
        t.Cell(std::string(scheme) + "," +
               sim::PatternName(pattern));
        const double reqs = static_cast<double>(m.requests);
        t.Cell(static_cast<double>(m.control_messages) / reqs, 1);
        t.Cell(static_cast<double>(m.control_bytes) / reqs, 1);
        if (std::string(scheme) == "BF") {
          t.Cell(std::int64_t{0});  // no link-state database at all
        } else {
          t.Cell(db.AdvertBytesPerCycle(std::string(scheme) == "D-LSR"));
        }
        t.Cell(m.pbk.value(), 4);
      }
    }
    std::fputs(t.Render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf("Reading: BF pays per-request flooding but needs no link-state"
              " database;\nD-LSR's conflict vectors cost the most"
              " advertisement bytes and buy the highest P_bk.\n");
  return 0;
}
