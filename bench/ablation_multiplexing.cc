// Ablation X3: backup multiplexing on/off.
//
// Paper claim (§2): a dedicated disjoint backup per connection cuts
// network capacity by >= 50%, which is what motivates backup multiplexing;
// with multiplexing the measured overhead stays <= ~25%. This harness runs
// the same scenario in both spare modes against the no-backup baseline.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_multiplexing");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& degree = flags.Double("degree", 3.0, "average node degree");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Ablation — backup multiplexing vs dedicated spares"
              " (E = %.0f, UT, D-LSR)\n\n", degree);
  TextTable t({"lambda", "base(avg act)", "mux ovhd%", "mux P_bk",
               "dedicated ovhd%", "dedicated P_bk"});
  for (const double lambda : runner.Lambdas()) {
    const sim::RunMetrics base = runner.Run(
        degree, sim::TrafficPattern::kUniform, lambda, "NoBackup");
    sim::ExperimentConfig mux_cfg = runner.Experiment();
    mux_cfg.spare_mode = core::SpareMode::kMultiplexed;
    const sim::RunMetrics mux = runner.Run(
        degree, sim::TrafficPattern::kUniform, lambda, "D-LSR", mux_cfg);
    sim::ExperimentConfig ded_cfg = runner.Experiment();
    ded_cfg.spare_mode = core::SpareMode::kDedicated;
    const sim::RunMetrics ded = runner.Run(
        degree, sim::TrafficPattern::kUniform, lambda, "D-LSR", ded_cfg);
    t.BeginRow();
    t.Cell(lambda, 2);
    t.Cell(base.avg_active, 1);
    t.Cell(sim::CapacityOverheadPercent(base, mux), 2);
    t.Cell(mux.pbk.value(), 4);
    t.Cell(sim::CapacityOverheadPercent(base, ded), 2);
    t.Cell(ded.pbk.value(), 4);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: past saturation, dedicated spares displace roughly"
              " twice the primaries multiplexed spares do (the paper's"
              " >=50%% vs <=25%% capacity argument).\n");
  return 0;
}
