// Generality appendix: the three routing schemes on hierarchical
// transit-stub topologies (not in the paper, which is Waxman-only).
//
// Transit-stub networks stress the schemes asymmetrically: the core is
// path-rich, stub uplinks are scarce, and single-homed stubs have *no*
// disjoint escape — the fault-tolerance ceiling itself drops. The question
// is whether the schemes' ordering (D-LSR >= P-LSR >= BF) and the value of
// conflict information survive the change of terrain.
#include "bench_common.h"
#include "net/transit_stub.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("appendix_transit_stub");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  flags.Parse(argc, argv);

  std::printf("Appendix — schemes on transit-stub hierarchies"
              " (lambda = %.2f, UT)\n\n", lambda);
  TextTable t({"multihoming", "nodes", "links", "D-LSR", "P-LSR", "BF",
               "SD-Backup"});
  for (const double multihome : {0.0, 0.5, 1.0}) {
    const net::Topology topo = net::MakeTransitStub(net::TransitStubConfig{
        .transit_nodes = 8,
        .transit_chords = 4,
        .stubs_per_transit = 2,
        .stub_size = 3,
        .multihome_prob = multihome,
        .transit_capacity_factor = 4,
        .stub_capacity = Mbps(30),
        .seed = static_cast<std::uint64_t>(*opts.seed)});
    sim::TrafficConfig tc = sim::MakePaperTraffic(
        sim::TrafficPattern::kUniform, lambda,
        static_cast<std::uint64_t>(*opts.seed) + 1);
    tc.duration = *opts.fast ? sim::kPaperDuration / 4 : sim::kPaperDuration;
    if (*opts.fast) {
      const double shrink = tc.duration / sim::kPaperDuration;
      tc.lifetime_min *= shrink;
      tc.lifetime_max *= shrink;
      tc.lambda = lambda / shrink;
    }
    const sim::Scenario sc = sim::Scenario::Generate(topo, tc);
    sim::ExperimentConfig ec = sim::MakePaperExperiment();
    ec.warmup = tc.duration * 0.4;
    ec.sample_interval = tc.duration / 50.0;

    t.BeginRow();
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", 100 * multihome);
    t.Cell(std::string(label));
    t.Cell(static_cast<std::int64_t>(topo.num_nodes()));
    t.Cell(static_cast<std::int64_t>(topo.num_links()));
    for (const char* scheme : {"D-LSR", "P-LSR", "BF", "SD-Backup"}) {
      auto s = sim::MakeScheme(scheme, topo,
                               static_cast<std::uint64_t>(*opts.seed) + 7);
      const sim::RunMetrics m = sim::RunScenario(topo, sc, *s, ec);
      t.Cell(m.pbk.value(), 4);
    }
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: without multi-homing, stub uplinks cap every"
              " scheme's fault-tolerance alike; as multi-homing grows the"
              " conflict-aware schemes pull ahead again.\n");
  return 0;
}
