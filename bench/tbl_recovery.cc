// Validates the what-if P_bk metric against *enacted* DRTP recovery:
// replays scenarios with injected link failures (ApplyLinkFailure performs
// detection, channel switching, and step-4 resource reconfiguration) and
// compares the achieved recovery ratio with the sampled what-if P_bk.
//
// If the evaluator models the protocol faithfully, the two columns track
// each other closely for every scheme.
//
// The three scheme replays are independent cells on the sweep engine
// (failure injection is part of the engine's scenario cache), so --jobs=3
// runs them concurrently with identical output.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("tbl_recovery");
  const auto opts = bench::HarnessOptions::Register(flags);
  const auto sweep = bench::SweepFlags::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  auto& degree = flags.Double("degree", 3.0, "average node degree");
  auto& failures = flags.Int64("failures", 60, "injected link failures");
  auto& mttr = flags.Double("mttr", 300.0, "repair time seconds");
  flags.Parse(argc, argv);

  runner::SweepSpec spec;
  spec.seeds = {static_cast<std::uint64_t>(*opts.seed)};
  spec.degrees = {degree};
  spec.patterns = {sim::TrafficPattern::kUniform};
  spec.lambdas = {lambda};
  spec.schemes = {"D-LSR", "P-LSR", "BF"};
  spec.duration = *opts.duration;
  spec.fast = *opts.fast;
  spec.failures = static_cast<int>(failures);
  spec.mttr = mttr;
  runner::SweepEngine engine(spec);
  const auto results = bench::RunSweep(engine, sweep);

  std::printf("Enacted recovery vs what-if P_bk (E = %.0f, lambda = %.2f,"
              " %lld failures, UT)\n\n",
              degree, lambda, static_cast<long long>(failures));

  TextTable t({"scheme", "what-if P_bk", "enacted recovery", "hit", "lost",
               "re-protected"});
  for (const char* label : {"D-LSR", "P-LSR", "BF"}) {
    const sim::RunMetrics& m =
        bench::FindMetrics(results, spec.seeds.front(), degree,
                           sim::TrafficPattern::kUniform, lambda, label);
    t.BeginRow();
    t.Cell(label);
    t.Cell(m.pbk.value(), 4);
    t.Cell(m.EnactedRecoveryRatio(), 4);
    t.Cell(m.failover_recovered + m.failover_dropped);
    t.Cell(m.failover_dropped);
    t.Cell(m.backups_reestablished);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: the what-if evaluator predicts the protocol's"
              " enacted behaviour; step-4 reconfiguration keeps survivors"
              " protected between failures.\n");
  return 0;
}
