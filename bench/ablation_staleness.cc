// Ablation: link-state advertisement staleness.
//
// §4 motivates bounded flooding with the cost of keeping the extended
// link-state database fresh. Here we make that trade-off measurable: the
// LSR schemes route on advertisements refreshed every R seconds (instead
// of instantly), while BF — which floods on demand and reads true local
// state — is immune by construction.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_staleness");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  auto& degree = flags.Double("degree", 3.0, "average node degree");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Ablation — link-state refresh interval (E = %.0f,"
              " lambda = %.2f, UT)\n\n", degree, lambda);
  TextTable t({"refresh s", "D-LSR P_bk", "D-LSR blocked", "P-LSR P_bk",
               "P-LSR blocked", "BF P_bk", "BF blocked"});
  for (const double refresh : {0.0, 10.0, 30.0, 100.0, 300.0}) {
    sim::ExperimentConfig ec = runner.Experiment();
    ec.lsdb_refresh_interval = refresh;
    t.BeginRow();
    t.Cell(refresh, 0);
    for (const char* label : {"D-LSR", "P-LSR", "BF"}) {
      const sim::RunMetrics m = runner.Run(
          degree, sim::TrafficPattern::kUniform, lambda, label, ec);
      t.Cell(m.pbk.value(), 4);
      t.Cell(m.blocked);
    }
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: stale advertisements cost the LSR schemes blocked"
              " admissions and conflict-blind backups; BF's on-demand"
              " discovery does not degrade.\n");
  return 0;
}
