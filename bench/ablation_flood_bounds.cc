// Ablation X2: sweep the bounded-flooding parameters (sigma widens the
// hop-count ellipse; beta relaxes the valid-detour test).
//
// Paper claim (§6.2): the chosen operating point is where "increasing the
// flooding area beyond this barely improves the performance" — P_bk should
// plateau while CDP overhead keeps climbing.
#include "bench_common.h"
#include "drtp/bounded_flood.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_flood_bounds");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  auto& degree = flags.Double("degree", 3.0, "average node degree");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Ablation — flooding bounds (E = %.0f, lambda = %.2f, UT)\n\n",
              degree, lambda);
  TextTable t({"sigma", "beta", "P_bk", "CDP msgs/req", "CDP B/req",
               "protected/admitted"});
  const net::Topology& topo = runner.Topology(degree);
  const sim::Scenario& sc =
      runner.Scenario(degree, sim::TrafficPattern::kUniform, lambda);
  for (const int sigma : {0, 1, 2, 3, 4}) {
    for (const int beta : {0, 2}) {
      core::BoundedFlooding bf(
          topo, core::FloodConfig{.rho = 1.0, .sigma = sigma, .alpha = 1.0,
                                  .beta = beta});
      const sim::RunMetrics m =
          sim::RunScenario(topo, sc, bf, runner.Experiment());
      t.BeginRow();
      t.Cell(static_cast<std::int64_t>(sigma));
      t.Cell(static_cast<std::int64_t>(beta));
      t.Cell(m.pbk.value(), 4);
      t.Cell(static_cast<double>(m.control_messages) /
                 static_cast<double>(m.requests),
             1);
      t.Cell(static_cast<double>(m.control_bytes) /
                 static_cast<double>(m.requests),
             1);
      t.Cell(static_cast<double>(m.with_backup) /
                 static_cast<double>(m.admitted),
             3);
    }
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: P_bk plateaus once the ellipse admits a disjoint"
              " detour; further widening only multiplies CDPs.\n");
  return 0;
}
