// Prints Table 1 — the simulation parameters — as configured in this
// reproduction. The archival scan of the paper lost the numeric column;
// DESIGN.md documents how each value was reconstructed from constraints
// stated in the text (saturation points, video/audio-scale bandwidth).
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "sim/paper.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("tbl1_parameters");
  flags.Parse(argc, argv);

  std::printf("Table 1 — simulation parameters (reconstructed)\n\n");
  TextTable t({"parameter", "value", "source"});
  const auto row = [&](const std::string& p, const std::string& v,
                       const std::string& s) {
    t.BeginRow();
    t.Cell(p);
    t.Cell(v);
    t.Cell(s);
  };
  row("nodes", std::to_string(sim::kPaperNodes), "stated (60)");
  row("average node degree E", "3 and 4", "stated");
  row("link capacity C", "30 Mbps per direction",
      "reconstructed from saturation points");
  row("bw_req per DR-connection", "1 Mbps", "video/audio scale, constant");
  row("lifetime t_req", "uniform 20-60 min", "stated");
  row("arrival process", "Poisson, lambda in {0.2..1.0}/s", "stated");
  row("traffic patterns", "UT uniform; NT 10 hot dests get 50%", "stated");
  row("scenario horizon", "10000 s (warmup 4000 s)",
      "several mean lifetimes");
  row("BF flooding bound", "hc_limit = minhops + 2 (rho=1, sigma=2)",
      "garbled in scan; see DESIGN.md");
  row("BF valid-detour", "hc_curr <= min_dist + 2 (alpha=1, beta=2)",
      "garbled in scan; see DESIGN.md");
  std::fputs(t.Render().c_str(), stdout);

  // Derived figures that justify the reconstruction.
  const auto topo3 = sim::MakePaperTopology(3.0, 1);
  const auto topo4 = sim::MakePaperTopology(4.0, 1);
  std::printf("\nDerived: E=3 network has %d directed links (total %lld Mbps"
              " capacity);\n         E=4 network has %d directed links"
              " (total %lld Mbps capacity).\n",
              topo3.num_links(),
              static_cast<long long>(topo3.num_links()) * 30,
              topo4.num_links(),
              static_cast<long long>(topo4.num_links()) * 30);
  std::printf("Offered primary load at lambda=0.5: 0.5/s x 2400 s x ~4 hops"
              " x 1 Mbps = ~4800 Mbps -> E=3 saturates near lambda 0.5,\n"
              "matching the paper's stated saturation points (0.5 at E=3,"
              " 0.9 at E=4).\n");
  return 0;
}
