// Service-recovery latency: proactive DRTP vs reactive re-establishment.
//
// §1's motivation for DRTP: reactive recovery "may require several trials
// to succeed, thus delaying service resumption", with recovery taking
// "several seconds or longer, especially in heavily-loaded networks",
// while a pre-established backup activates immediately. This harness
// measures both modes with the timed protocol engine: detection (20 ms) +
// hop-by-hop reporting + activation for DRTP, versus route re-discovery,
// timed setup and jittered exponential-backoff retries for reactive.
#include <cmath>

#include "bench_common.h"
#include "drtp/drtp.h"
#include "proto/engine.h"
#include "sim/event_queue.h"

namespace {

using namespace drtp;

struct ModeResult {
  Ratio recovered;
  RunningStat latency;  // seconds, successful recoveries only
};

/// Fills the network with `target` D-LSR connections (backups only in
/// proactive mode), fails one random loaded link, and runs the timed
/// recovery to completion.
ModeResult RunTrials(const net::Topology& topo, int target, int trials,
                     proto::RecoveryMode mode, std::uint64_t seed) {
  ModeResult result;
  for (int trial = 0; trial < trials; ++trial) {
    core::DrtpNetwork net(topo);
    lsdb::LinkStateDb db(topo.num_links(), topo.num_links());
    core::Dlsr dlsr;
    Rng rng(seed + static_cast<std::uint64_t>(trial) * 977);
    const auto n = static_cast<std::size_t>(topo.num_nodes());
    for (ConnId id = 0; id < target; ++id) {
      const NodeId src = static_cast<NodeId>(rng.Index(n));
      NodeId dst = static_cast<NodeId>(rng.Index(n));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      net.PublishTo(db, 0.0);
      const auto sel = dlsr.SelectRoutes(net, db, src, dst, Mbps(1));
      if (sel.primary &&
          net.EstablishConnection(id, *sel.primary, Mbps(1), 0.0)) {
        if (mode == proto::RecoveryMode::kProactive && sel.backup) {
          net.RegisterBackup(id, *sel.backup);
        }
      }
    }
    // Fail a random link that carries at least one primary.
    std::vector<LinkId> loaded;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      if (!net.ConnsWithPrimaryOn(l).empty()) loaded.push_back(l);
    }
    if (loaded.empty()) continue;
    const LinkId victim = loaded[rng.Index(loaded.size())];

    sim::EventQueue queue;
    proto::ProtocolConfig pc;
    pc.seed = seed + static_cast<std::uint64_t>(trial);
    proto::ProtocolEngine engine(net, queue, pc, &dlsr, &db);
    queue.Schedule(10.0, [&] { engine.InjectLinkFailure(victim, mode); });
    queue.RunAll();
    for (const auto& r : engine.recoveries()) {
      result.recovered.Add(r.success);
      if (r.success) result.latency.Add(r.latency());
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("tbl_latency");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& degree = flags.Double("degree", 3.0, "average node degree");
  auto& trials = flags.Int64("trials", 25, "failure trials per cell");
  flags.Parse(argc, argv);
  const int trial_count = *opts.fast ? 8 : static_cast<int>(trials);

  const net::Topology topo =
      sim::MakePaperTopology(degree, static_cast<std::uint64_t>(*opts.seed));
  // Capacity-scaled load targets: light / moderate / heavy.
  const int cap_conns = topo.num_links() * 30 / 4;  // rough carrying capacity

  std::printf("Recovery latency — proactive DRTP vs reactive"
              " re-establishment (E = %.0f, D-LSR routing, %d trials)\n\n",
              degree, trial_count);
  TextTable t({"load", "mode", "affected", "recovered", "lat mean ms",
               "lat max ms"});
  for (const double load_frac : {0.3, 0.6, 0.9}) {
    const int target = static_cast<int>(std::lround(cap_conns * load_frac));
    for (const auto mode :
         {proto::RecoveryMode::kProactive, proto::RecoveryMode::kReactive}) {
      const ModeResult r = RunTrials(
          topo, target, trial_count, mode,
          static_cast<std::uint64_t>(*opts.seed) + 31);
      t.BeginRow();
      char label[32];
      std::snprintf(label, sizeof label, "%.0f%%", 100 * load_frac);
      t.Cell(std::string(label));
      t.Cell(mode == proto::RecoveryMode::kProactive ? "DRTP (proactive)"
                                                     : "reactive");
      t.Cell(r.recovered.trials);
      t.Cell(r.recovered.value(), 4);
      t.Cell(r.latency.mean() * 1000.0, 2);
      t.Cell(r.latency.max() * 1000.0, 2);
    }
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: DRTP restores service in tens of milliseconds"
              " regardless of load; reactive recovery slows (retries,"
              " backoff)\nand fails more as the network fills — the paper's"
              " §1 motivation, measured.\n");
  return 0;
}
