// Shared plumbing for the figure/table bench harnesses.
//
// Every harness sweeps (topology degree, traffic pattern, λ, scheme) cells;
// this header provides cell execution with scenario reuse — the same
// scenario file is replayed against every scheme, the paper's methodology —
// plus standard flags (--fast, --seed, --duration).
//
// Harnesses with grid-shaped sweeps (fig4, fig5, tbl_recovery) run through
// runner::SweepEngine via the --jobs/--out flag pair below; the remaining
// single-threaded harnesses use CellRunner directly.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "runner/sweep.h"
#include "sim/experiment.h"
#include "sim/paper.h"

namespace drtp::bench {

/// Standard flags shared by all harnesses.
struct HarnessOptions {
  std::int64_t* seed;
  bool* fast;
  double* duration;

  static HarnessOptions Register(FlagSet& flags) {
    HarnessOptions o{};
    o.seed = &flags.Int64("seed", 1, "experiment seed");
    o.fast = &flags.Bool("fast", false,
                         "shortened sweep (fewer lambdas, shorter horizon)");
    o.duration =
        &flags.Double("duration", sim::kPaperDuration,
                      "scenario horizon in seconds (warmup scales with it)");
    return o;
  }
};

/// Parallel-sweep flags shared by the engine-backed harnesses.
struct SweepFlags {
  std::int64_t* jobs;
  std::string* out;

  static SweepFlags Register(FlagSet& flags) {
    SweepFlags s{};
    s.jobs = &flags.Int64("jobs", 1,
                          "worker threads (0 = hardware concurrency)");
    s.out = &flags.String(
        "out", "", "append one JSON object per cell to this .jsonl file");
    return s;
  }
};

/// Runs `engine` with the standard sink setup: JSONL when --out is set,
/// progress to stderr when it is a terminal. Results come back ordered by
/// cell index.
inline std::vector<runner::CellResult> RunSweep(runner::SweepEngine& engine,
                                                const SweepFlags& sf) {
  runner::SweepEngine::RunOptions ro;
  ro.jobs = static_cast<int>(*sf.jobs);
  ro.progress = isatty(fileno(stderr)) != 0;
  std::unique_ptr<runner::JsonlSink> jsonl;
  if (!sf.out->empty()) {
    jsonl = std::make_unique<runner::JsonlSink>(*sf.out);
    ro.sinks.push_back(jsonl.get());
  }
  return engine.Run(ro);
}

/// Metrics lookup by grid coordinates (linear scan; figure grids are
/// small). Throws CheckError when the cell is not in the results.
inline const sim::RunMetrics& FindMetrics(
    const std::vector<runner::CellResult>& results, std::uint64_t base_seed,
    double degree, sim::TrafficPattern pattern, double lambda,
    std::string_view scheme) {
  for (const runner::CellResult& r : results) {
    if (r.cell.base_seed == base_seed && r.cell.degree == degree &&
        r.cell.pattern == pattern && r.cell.lambda == lambda &&
        r.cell.scheme == scheme) {
      return r.metrics;
    }
  }
  DRTP_CHECK_MSG(false, "no result for cell (seed=" << base_seed << ", E="
                                                    << degree << ", lambda="
                                                    << lambda << ", "
                                                    << scheme << ")");
}

/// One evaluation cell: everything needed to replay one scheme on one
/// (degree, pattern, λ) configuration.
class CellRunner {
 public:
  CellRunner(std::uint64_t seed, double duration, bool fast)
      : seed_(seed), duration_(fast ? duration / 4 : duration), fast_(fast) {}

  /// λ grid of Fig. 4/5 (0.2 … 1.0), thinned under --fast.
  std::vector<double> Lambdas() const { return runner::PaperLambdas(fast_); }

  const net::Topology& Topology(double degree) {
    auto it = topos_.find(degree);
    if (it == topos_.end()) {
      it = topos_
               .emplace(degree, sim::MakePaperTopology(degree, seed_))
               .first;
    }
    return it->second;
  }

  const sim::Scenario& Scenario(double degree, sim::TrafficPattern pattern,
                                double lambda) {
    const auto key = std::make_tuple(degree, pattern, lambda);
    auto it = scenarios_.find(key);
    if (it == scenarios_.end()) {
      sim::TrafficConfig tc =
          sim::MakePaperTraffic(pattern, lambda, seed_ + 1000);
      tc.duration = duration_;
      if (fast_) {
        // Shrink lifetimes with the horizon but scale λ up by the same
        // factor so the offered load λ·E[lifetime] matches the full run.
        const double shrink = duration_ / sim::kPaperDuration;
        tc.lifetime_min *= shrink;
        tc.lifetime_max *= shrink;
        tc.lambda = lambda / shrink;
      }
      it = scenarios_
               .emplace(key, sim::Scenario::Generate(Topology(degree), tc))
               .first;
    }
    return it->second;
  }

  sim::ExperimentConfig Experiment() const {
    sim::ExperimentConfig ec = sim::MakePaperExperiment();
    ec.warmup = duration_ * 0.4;
    ec.sample_interval = duration_ / 50.0;
    return ec;
  }

  /// Replays `scheme_label` on the cell; scheme objects are fresh per run.
  sim::RunMetrics Run(double degree, sim::TrafficPattern pattern,
                      double lambda, const std::string& scheme_label,
                      sim::ExperimentConfig ec) {
    auto scheme = sim::MakeScheme(scheme_label, Topology(degree), seed_ + 7);
    return sim::RunScenario(Topology(degree), Scenario(degree, pattern, lambda),
                            *scheme, ec);
  }

  sim::RunMetrics Run(double degree, sim::TrafficPattern pattern,
                      double lambda, const std::string& scheme_label) {
    return Run(degree, pattern, lambda, scheme_label, Experiment());
  }

  std::uint64_t seed() const { return seed_; }
  double duration() const { return duration_; }

 private:
  std::uint64_t seed_;
  double duration_;
  bool fast_;
  std::map<double, net::Topology> topos_;
  std::map<std::tuple<double, sim::TrafficPattern, double>, sim::Scenario>
      scenarios_;
};

}  // namespace drtp::bench
