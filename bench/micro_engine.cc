// Microbenchmark suite for the engine's hot-path kernels.
//
// Times the kernels the simulation spends its cycles in — LSDB
// publication, Dijkstra, backup selection, the single-link failure sweep —
// and emits one JSON document (schema drtp.micro/1) through the runner's
// JSON writer. Superseded kernels (full-table publish, allocating
// Dijkstra, full-scan failure sweep, bit-loop CV scoring) are measured
// alongside their replacements, so every run carries its own
// before/after comparison.
//
//   micro_engine                      # human-readable table on stdout
//   micro_engine --out=BENCH_micro.json
//   micro_engine --quick --validate   # CI perf-smoke: fast + schema check
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/flags.h"
#include "common/rng.h"
#include "drtp/admission.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "lsdb/aplv.h"
#include "net/generators.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "routing/dijkstra.h"
#include "runner/json.h"
#include "sim/paper.h"
#include "sim/scenario.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace drtp::bench {
namespace {

constexpr std::string_view kSchema = "drtp.micro/1";

template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct KernelResult {
  std::string name;
  std::int64_t iters = 0;
  double ns_per_op = 0.0;
};

/// Runs `fn` repeatedly — doubling the batch size until the accumulated
/// measured time passes `min_time_s` — and reports mean ns per call.
class Timer {
 public:
  explicit Timer(double min_time_s) : min_time_s_(min_time_s) {}

  template <typename Fn>
  KernelResult Measure(std::string name, Fn&& fn) {
    using Clock = std::chrono::steady_clock;
    fn();  // warm caches and one-time lazy setup outside the clock
    std::int64_t iters = 0;
    double elapsed_s = 0.0;
    std::int64_t batch = 1;
    while (elapsed_s < min_time_s_) {
      const auto start = Clock::now();
      for (std::int64_t i = 0; i < batch; ++i) fn();
      const auto stop = Clock::now();
      elapsed_s += std::chrono::duration<double>(stop - start).count();
      iters += batch;
      batch *= 2;
    }
    return KernelResult{std::move(name), iters,
                        elapsed_s * 1e9 / static_cast<double>(iters)};
  }

 private:
  double min_time_s_;
};

/// The shared fixture: the paper's 60-node topology loaded with ~300
/// protected connections, so APLVs, spare pools and the reverse indexes
/// are all non-trivial.
struct LoadedNet {
  explicit LoadedNet(std::uint64_t seed)
      : topo(sim::MakePaperTopology(3.0, 1)),
        net(topo),
        db(topo.num_links(), topo.num_links()) {
    core::Dlsr scheme;
    Rng rng(seed);
    const auto nodes = static_cast<std::size_t>(topo.num_nodes());
    for (ConnId id = 0; id < 300; ++id) {
      const NodeId src = static_cast<NodeId>(rng.Index(nodes));
      NodeId dst = static_cast<NodeId>(rng.Index(nodes));
      if (dst == src) dst = (dst + 1) % topo.num_nodes();
      net.PublishTo(db, 0.0);
      auto sel = scheme.SelectRoutes(net, db, src, dst, Mbps(1));
      if (sel.primary &&
          net.EstablishConnection(id, *sel.primary, Mbps(1), 0.0)) {
        if (sel.backup) net.RegisterBackup(id, *sel.backup);
        conn_ids.push_back(id);
      }
    }
    net.PublishTo(db, 0.0);
  }

  net::Topology topo;
  core::DrtpNetwork net;
  lsdb::LinkStateDb db;
  std::vector<ConnId> conn_ids;
};

std::vector<KernelResult> RunSuite(LoadedNet& fx, double min_time_s,
                                   std::uint64_t seed) {
  Timer timer(min_time_s);
  std::vector<KernelResult> out;
  const int num_links = fx.topo.num_links();
  const auto nodes = static_cast<std::size_t>(fx.topo.num_nodes());

  // --- LSDB publication --------------------------------------------------
  out.push_back(timer.Measure("publish_full", [&] {
    fx.net.PublishFullTo(fx.db, 0.0);
  }));
  {
    LinkId flip = 0;
    bool down = false;
    out.push_back(timer.Measure("publish_incremental", [&] {
      // One link-state flip per publication — the simulator's typical
      // dirty-set size between instant-mode publications.
      down = !down;
      if (down) {
        fx.net.SetLinkDown(flip);
      } else {
        fx.net.SetLinkUp(flip);
        flip = (flip + 1) % num_links;
      }
      fx.net.PublishTo(fx.db, 0.0);
    }));
    if (down) fx.net.SetLinkUp(flip);  // leave the fixture intact
    fx.net.PublishTo(fx.db, 0.0);
  }

  // --- Dijkstra ----------------------------------------------------------
  const auto unit_cost = [&](LinkId l) {
    return fx.db.record(l).up ? 1.0 : routing::kInfiniteCost;
  };
  {
    Rng rng(seed + 1);
    out.push_back(timer.Measure("dijkstra_tree_alloc", [&] {
      const NodeId src = static_cast<NodeId>(rng.Index(nodes));
      DoNotOptimize(routing::RunDijkstra(fx.topo, src, unit_cost));
    }));
  }
  {
    Rng rng(seed + 1);
    routing::DijkstraWorkspace ws;
    out.push_back(timer.Measure("dijkstra_workspace", [&] {
      const NodeId src = static_cast<NodeId>(rng.Index(nodes));
      routing::RunDijkstra(fx.topo, src, unit_cost, ws);
      DoNotOptimize(ws.Reached(0));
    }));
  }

  // --- backup selection (Eq. 4 / Eq. 5) ----------------------------------
  const auto backup_select = [&](const char* name, bool deterministic) {
    Rng rng(seed + 2);
    return timer.Measure(name, [&] {
      const ConnId id = fx.conn_ids[rng.Index(fx.conn_ids.size())];
      const core::DrConnection* conn = fx.net.Find(id);
      DoNotOptimize(core::SelectBackupLsr(fx.topo, fx.db, conn->primary_lset,
                                          conn->src, conn->dst, conn->bw,
                                          deterministic));
    });
  };
  out.push_back(backup_select("backup_select_dlsr", true));
  out.push_back(backup_select("backup_select_plsr", false));

  // --- single-link failure sweep -----------------------------------------
  out.push_back(timer.Measure("failure_sweep_scan", [&] {
    DoNotOptimize(core::EvaluateAllSingleLinkFailuresScan(fx.net));
  }));
  out.push_back(timer.Measure("failure_sweep_indexed", [&] {
    DoNotOptimize(core::EvaluateAllSingleLinkFailures(fx.net));
  }));

  // --- APLV / conflict-vector primitives ---------------------------------
  // A 5-link LSET spread across the id range (typical primary length).
  const routing::LinkSet probe_lset = routing::MakeLinkSet(
      {num_links / 8, num_links / 4, num_links / 2, (num_links * 3) / 4,
       num_links - 1});
  {
    lsdb::Aplv aplv(num_links);
    const routing::LinkSet& lset = probe_lset;
    out.push_back(timer.Measure("aplv_update", [&] {
      aplv.AddPrimaryLset(lset);
      aplv.RemovePrimaryLset(lset);
      DoNotOptimize(aplv);
    }));
  }
  {
    lsdb::ConflictVector cv(num_links);
    Rng rng(seed + 3);
    for (int i = 0; i < num_links / 4; ++i) {
      cv.Set(static_cast<LinkId>(rng.Index(static_cast<std::size_t>(
                 num_links))),
             true);
    }
    const routing::LinkSet& lset = probe_lset;
    std::vector<std::uint64_t> mask(
        static_cast<std::size_t>((num_links + 63) / 64), 0);
    for (LinkId l : lset) {
      mask[static_cast<std::size_t>(l) / 64] |= std::uint64_t{1}
                                                << (l % 64);
    }
    out.push_back(timer.Measure("cv_count_in", [&] {
      DoNotOptimize(cv.CountIn(lset));
    }));
    out.push_back(timer.Measure("cv_and_popcount", [&] {
      DoNotOptimize(cv.AndPopCount(mask));
    }));
  }

  // --- obs instrumentation cost ------------------------------------------
  // The raw price of one scoped span (two clock reads + one histogram
  // observe) plus one counter add — the instrumentation unit every
  // DRTP_OBS_SPAN site pays. Compiled with -DDRTP_OBS_DISABLED this times
  // an empty body, demonstrating the zero-cost-off contract.
  {
    const obs::Counter count = obs::GetCounter("bench.obs.counter");
    out.push_back(timer.Measure("obs_span_overhead", [&] {
      DRTP_OBS_SPAN("bench.obs.span");
      count.Add();
      DoNotOptimize(count);
    }));
  }

  // --- drtpd telemetry unit costs ----------------------------------------
  // flight_recorder_append: one event into the calling thread's ring (a
  // seqlock'd slot write — the always-on post-mortem recorder's whole
  // hot path). pipeline_span_stamp: the per-request price the svc
  // pipeline pays at respond time — one clock read plus the
  // end-to-end/per-stage/per-method histogram observes. Both compile to
  // (nearly) nothing under -DDRTP_OBS_DISABLED.
  {
    obs::FlightRecorder& fr = obs::FlightRecorder::Global();
    std::int64_t seq = 0;
    out.push_back(timer.Measure("flight_recorder_append", [&] {
      fr.Record(obs::FlightKind::kRpcSpan, seq, 0, 1000, 2000, 3000, 4000);
      ++seq;
      DoNotOptimize(seq);
    }));

    const obs::Histogram total =
        obs::GetTimingHistogram("bench.svc.request_ns");
    const obs::Histogram stages[4] = {
        obs::GetTimingHistogram("bench.svc.stage.decode_ns"),
        obs::GetTimingHistogram("bench.svc.stage.reorder_ns"),
        obs::GetTimingHistogram("bench.svc.stage.engine_ns"),
        obs::GetTimingHistogram("bench.svc.stage.respond_ns"),
    };
    const obs::Histogram method =
        obs::GetTimingHistogram("bench.svc.request_ns.admit.ok");
    std::int64_t prev_ns = MonotonicClock::Instance().NowNs();
    out.push_back(timer.Measure("pipeline_span_stamp", [&] {
      const std::int64_t now_ns = MonotonicClock::Instance().NowNs();
      const std::int64_t lat = now_ns - prev_ns;
      prev_ns = now_ns;
      total.Observe(lat);
      for (const obs::Histogram& h : stages) h.Observe(lat / 4);
      method.Observe(lat);
      DoNotOptimize(prev_ns);
    }));
  }

  // --- end-to-end request cycle ------------------------------------------
  {
    core::Dlsr scheme;
    Rng rng(seed + 4);
    ConnId next = 1 << 20;
    out.push_back(timer.Measure("request_cycle_dlsr", [&] {
      const NodeId src = static_cast<NodeId>(rng.Index(nodes));
      NodeId dst = static_cast<NodeId>(rng.Index(nodes));
      if (dst == src) dst = (dst + 1) % fx.topo.num_nodes();
      fx.net.PublishTo(fx.db, 0.0);
      auto sel = scheme.SelectRoutes(fx.net, fx.db, src, dst, Mbps(1));
      if (sel.primary &&
          fx.net.EstablishConnection(next, *sel.primary, Mbps(1), 0.0)) {
        if (sel.backup) fx.net.RegisterBackup(next, *sel.backup);
        fx.net.ReleaseConnection(next);
        ++next;
      }
    }));
  }

  // --- batched admission (the drtpd engine's amortization) ---------------
  // 64 admissions per call, released again at the end so the fixture is
  // unchanged. admit_one_by_one publishes the LSDB before every admission
  // (the simulator's instant mode and drtpd --batch=1); admit_batch takes
  // one snapshot for the whole batch (drtpd's default pipeline mode) —
  // the before/after pair for the daemon's batching claim.
  {
    constexpr int kBatch = 64;
    core::Dlsr scheme;
    const auto admit_cycle = [&](const char* name, bool batched) {
      Rng rng(seed + 5);
      ConnId next = 1 << 21;
      return timer.Measure(name, [&] {
        if (batched) fx.net.PublishTo(fx.db, 0.0);
        const ConnId base = next;
        for (int i = 0; i < kBatch; ++i) {
          if (!batched) fx.net.PublishTo(fx.db, 0.0);
          const NodeId src = static_cast<NodeId>(rng.Index(nodes));
          NodeId dst = static_cast<NodeId>(rng.Index(nodes));
          if (dst == src) dst = (dst + 1) % fx.topo.num_nodes();
          DoNotOptimize(core::AdmitConnection(scheme, fx.net, fx.db,
                                              base + i, src, dst, Mbps(1),
                                              0.0));
        }
        for (int i = 0; i < kBatch; ++i) {
          if (fx.net.Find(base + i) != nullptr) {
            fx.net.ReleaseConnection(base + i);
          }
        }
        next += kBatch;
      });
    };
    out.push_back(admit_cycle("admit_one_by_one", false));
    out.push_back(admit_cycle("admit_batch", true));
    fx.net.PublishTo(fx.db, 0.0);  // leave the fixture's LSDB clean
  }

  // --- durability kernels -------------------------------------------------
  // wal_append_fsync: one group commit — a 64-event batch record rendered,
  // framed, written and fsynced — the price every drtpd batch pays before
  // its responses are released. Dominated by the sync, so this number is a
  // device characteristic as much as a code one. snapshot_serialize: the
  // drtp.snap/1 body render over the ~300-connection fixture — the
  // off-critical-path cost --snapshot-interval adds per snapshot.
  {
    const std::string wal_path =
        "/tmp/drtp_micro_wal." +
        std::to_string(static_cast<long long>(::getpid()));
    std::remove(wal_path.c_str());
    std::string error;
    std::unique_ptr<svc::Wal> wal = svc::Wal::Open(wal_path, seed, &error);
    if (wal == nullptr) {
      std::fprintf(stderr, "micro_engine: wal open failed: %s\n",
                   error.c_str());
    } else {
      std::vector<sim::ScenarioEvent> events;
      Rng rng(seed + 6);
      for (int i = 0; i < 64; ++i) {
        sim::ScenarioEvent e;
        e.type = sim::ScenarioEvent::Type::kRequest;
        e.time = static_cast<Time>(i);
        e.conn = static_cast<ConnId>(i);
        e.src = static_cast<NodeId>(rng.Index(nodes));
        e.dst = static_cast<NodeId>(rng.Index(nodes));
        if (e.dst == e.src) e.dst = (e.dst + 1) % fx.topo.num_nodes();
        e.bw = Mbps(1);
        events.push_back(e);
      }
      out.push_back(timer.Measure("wal_append_fsync", [&] {
        std::string err;
        if (!wal->AppendBatch(events, &err)) std::abort();
      }));
      wal.reset();
      std::remove(wal_path.c_str());
    }
  }
  out.push_back(timer.Measure("snapshot_serialize", [&] {
    DoNotOptimize(svc::RenderSnapshotBody(fx.net, svc::EngineStats{}, 0,
                                          seed, 0, "D-LSR", ""));
  }));

  return out;
}

/// One large-N fixture summary for the JSON document.
struct LargeTopo {
  std::string tag;
  int nodes = 0;
  int links = 0;
};

/// Large-N rows: the CSR/radix-heap engine measured against the retained
/// reference kernels on hierarchical ISP graphs. The layouts only
/// separate at scale — 60 nodes fits any cache level — so these rows are
/// what the ROADMAP item-1 speedup claims are read from. At the 10k size
/// (≈26k duplex links > lsdb::kWideLinkThreshold) the APLV/CV rows run
/// the wide sparse/lazy storage; at 1k they run the dense path.
std::vector<KernelResult> RunLargeSuite(double min_time_s,
                                        std::uint64_t seed,
                                        std::vector<LargeTopo>& topos) {
  Timer timer(min_time_s);
  std::vector<KernelResult> out;
  struct Size {
    const char* tag;
    net::HierConfig cfg;
  };
  const Size sizes[] = {
      {"1k",
       {.backbone = 10, .pops_per_backbone = 3, .metro_per_pop = 32,
        .seed = 7}},
      {"10k",
       {.backbone = 16, .pops_per_backbone = 6, .metro_per_pop = 103,
        .seed = 7}},
  };
  for (const Size& s : sizes) {
    const net::Topology topo = net::MakeHierarchical(s.cfg);
    const auto nodes = static_cast<std::size_t>(topo.num_nodes());
    const int num_links = topo.num_links();
    topos.push_back(LargeTopo{s.tag, topo.num_nodes(), num_links});
    core::DrtpNetwork net(topo);
    lsdb::LinkStateDb db(num_links, num_links);
    net.PublishTo(db, 0.0);
    const auto name = [&](const char* kernel) {
      return std::string(kernel) + "_" + s.tag;
    };

    // --- single-source trees: adjacency-list vs CSR vs bucket queue ------
    const auto unit_cost = [&](LinkId l) {
      return db.record(l).up ? 1.0 : routing::kInfiniteCost;
    };
    const auto unit_int_cost = [&](LinkId l) {
      return db.record(l).up ? std::int64_t{1} : routing::kInfiniteIntCost;
    };
    {
      Rng rng(seed + 11);
      routing::DijkstraWorkspace ws;
      out.push_back(timer.Measure(name("dijkstra_adjlist"), [&] {
        const NodeId src = static_cast<NodeId>(rng.Index(nodes));
        routing::detail::RunDijkstraLoopAdjList(topo, src, unit_cost, ws);
        DoNotOptimize(ws.Reached(0));
      }));
    }
    {
      Rng rng(seed + 11);
      routing::DijkstraWorkspace ws;
      out.push_back(timer.Measure(name("dijkstra_csr"), [&] {
        const NodeId src = static_cast<NodeId>(rng.Index(nodes));
        routing::RunDijkstra(topo, src, unit_cost, ws);
        DoNotOptimize(ws.Reached(0));
      }));
    }
    {
      Rng rng(seed + 11);
      routing::DijkstraWorkspace ws;
      out.push_back(timer.Measure(name("dijkstra_radix"), [&] {
        const NodeId src = static_cast<NodeId>(rng.Index(nodes));
        routing::RunDijkstraInt(topo, src, unit_int_cost, ws);
        DoNotOptimize(ws.Reached(0));
      }));
    }

    // --- admission primary selection: the before/after pair ---------------
    const auto rand_pair = [&](Rng& rng, NodeId& src, NodeId& dst) {
      src = static_cast<NodeId>(rng.Index(nodes));
      dst = static_cast<NodeId>(rng.Index(nodes));
      if (dst == src) dst = (dst + 1) % topo.num_nodes();
    };
    {
      Rng rng(seed + 12);
      out.push_back(timer.Measure(name("minhop_binary"), [&] {
        NodeId src, dst;
        rand_pair(rng, src, dst);
        DoNotOptimize(core::detail::SelectPrimaryMinHopBinaryHeap(
            topo, db, src, dst, Mbps(1)));
      }));
    }
    {
      Rng rng(seed + 12);
      out.push_back(timer.Measure(name("minhop_radix"), [&] {
        NodeId src, dst;
        rand_pair(rng, src, dst);
        DoNotOptimize(core::SelectPrimaryMinHop(topo, db, src, dst, Mbps(1)));
      }));
    }

    // --- protection-state primitives at width num_links -------------------
    const routing::LinkSet probe_lset = routing::MakeLinkSet(
        {num_links / 8, num_links / 4, num_links / 2, (num_links * 3) / 4,
         num_links - 1});
    {
      lsdb::Aplv aplv(num_links);
      out.push_back(timer.Measure(name("aplv_update"), [&] {
        aplv.AddPrimaryLset(probe_lset);
        aplv.RemovePrimaryLset(probe_lset);
        DoNotOptimize(aplv);
      }));
    }
    {
      lsdb::ConflictVector cv(num_links);
      Rng rng(seed + 13);
      for (int i = 0; i < num_links / 4; ++i) {
        cv.Set(static_cast<LinkId>(
                   rng.Index(static_cast<std::size_t>(num_links))),
               true);
      }
      std::vector<std::uint64_t> mask(
          static_cast<std::size_t>((num_links + 63) / 64), 0);
      for (LinkId l : probe_lset) {
        mask[static_cast<std::size_t>(l) / 64] |= std::uint64_t{1}
                                                  << (l % 64);
      }
      out.push_back(timer.Measure(name("cv_count_in"), [&] {
        DoNotOptimize(cv.CountIn(probe_lset));
      }));
      out.push_back(timer.Measure(name("cv_and_popcount"), [&] {
        DoNotOptimize(cv.AndPopCount(mask));
      }));
    }
  }
  return out;
}

std::string RenderJson(const std::vector<KernelResult>& results,
                       const LoadedNet& fx,
                       const std::vector<LargeTopo>& large, bool quick,
                       double min_time_s) {
  runner::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kSchema);
  w.Key("quick").Bool(quick);
  w.Key("min_time_s").Double(min_time_s);
  w.Key("topology").BeginObject();
  w.Key("nodes").Int(fx.topo.num_nodes());
  w.Key("links").Int(fx.topo.num_links());
  w.Key("connections").Int(static_cast<std::int64_t>(fx.conn_ids.size()));
  w.EndObject();
  w.Key("large_topologies").BeginArray();
  for (const LargeTopo& t : large) {
    w.BeginObject();
    w.Key("tag").String(t.tag);
    w.Key("nodes").Int(t.nodes);
    w.Key("links").Int(t.links);
    w.EndObject();
  }
  w.EndArray();
  w.Key("kernels").BeginArray();
  for (const KernelResult& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("iters").Int(r.iters);
    w.Key("ns_per_op").Double(r.ns_per_op);
    w.Key("ops_per_sec").Double(1e9 / r.ns_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

/// Schema check for CI: every expected kernel present, exactly once, with
/// positive timings. Returns the number of problems found.
int Validate(const std::vector<KernelResult>& results) {
  static const char* const kExpected[] = {
      "publish_full",        "publish_incremental", "dijkstra_tree_alloc",
      "dijkstra_workspace",  "backup_select_dlsr",  "backup_select_plsr",
      "failure_sweep_scan",  "failure_sweep_indexed", "aplv_update",
      "cv_count_in",         "cv_and_popcount",     "obs_span_overhead",
      "flight_recorder_append", "pipeline_span_stamp",
      "request_cycle_dlsr",  "admit_one_by_one",    "admit_batch",
      "wal_append_fsync",    "snapshot_serialize",
      "dijkstra_adjlist_1k", "dijkstra_csr_1k",     "dijkstra_radix_1k",
      "minhop_binary_1k",    "minhop_radix_1k",     "aplv_update_1k",
      "cv_count_in_1k",      "cv_and_popcount_1k",
      "dijkstra_adjlist_10k", "dijkstra_csr_10k",   "dijkstra_radix_10k",
      "minhop_binary_10k",   "minhop_radix_10k",    "aplv_update_10k",
      "cv_count_in_10k",     "cv_and_popcount_10k",
  };
  int problems = 0;
  for (const char* name : kExpected) {
    int found = 0;
    for (const KernelResult& r : results) {
      if (r.name == name) {
        ++found;
        if (r.iters <= 0 || r.ns_per_op <= 0.0) {
          std::fprintf(stderr, "micro_engine: kernel %s has bad timing\n",
                       name);
          ++problems;
        }
      }
    }
    if (found != 1) {
      std::fprintf(stderr, "micro_engine: kernel %s appears %d times\n",
                   name, found);
      ++problems;
    }
  }
  if (results.size() != std::size(kExpected)) {
    std::fprintf(stderr, "micro_engine: %zu kernels, expected %zu\n",
                 results.size(), std::size(kExpected));
    ++problems;
  }
  return problems;
}

int Main(int argc, char** argv) {
  FlagSet flags("micro_engine");
  auto& quick = flags.Bool("quick", false,
                           "short timing windows (CI perf-smoke mode)");
  auto& validate = flags.Bool("validate", false,
                              "check the result set against the expected "
                              "drtp.micro/1 kernel list; nonzero exit on "
                              "mismatch");
  auto& out = flags.String("out", "",
                           "write the drtp.micro/1 JSON document here "
                           "(default: stdout table only)");
  auto& min_time = flags.Double("min_time", 0.0,
                                "seconds of measured time per kernel "
                                "(0 = 0.5, or 0.02 with --quick)");
  auto& seed = flags.Int64("seed", 1, "fixture seed");
  flags.Parse(argc, argv);

  const double min_time_s = min_time > 0.0 ? min_time : (quick ? 0.02 : 0.5);
  LoadedNet fx(static_cast<std::uint64_t>(seed));
  std::vector<KernelResult> results =
      RunSuite(fx, min_time_s, static_cast<std::uint64_t>(seed));
  std::vector<LargeTopo> large;
  {
    std::vector<KernelResult> rows =
        RunLargeSuite(min_time_s, static_cast<std::uint64_t>(seed), large);
    results.insert(results.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
  }

  std::printf("%-24s %12s %14s\n", "kernel", "iters", "ns/op");
  for (const KernelResult& r : results) {
    std::printf("%-24s %12lld %14.1f\n", r.name.c_str(),
                static_cast<long long>(r.iters), r.ns_per_op);
  }

  const std::string json = RenderJson(results, fx, large, quick, min_time_s);
  if (!out.empty()) {
    std::ofstream f(out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "micro_engine: cannot open %s\n", out.c_str());
      return 1;
    }
    f << json << '\n';
    std::fprintf(stderr, "micro_engine: wrote %s\n", out.c_str());
  }

  if (validate) {
    const int problems = Validate(results);
    if (problems > 0) return 1;
    std::fprintf(stderr, "micro_engine: schema %.*s OK (%zu kernels)\n",
                 static_cast<int>(kSchema.size()), kSchema.data(),
                 results.size());
  }
  return 0;
}

}  // namespace
}  // namespace drtp::bench

int main(int argc, char** argv) { return drtp::bench::Main(argc, argv); }
