// Google-benchmark microbenchmarks of the engine's hot paths: Dijkstra,
// APLV maintenance, conflict-vector scoring, bounded flooding, failure
// evaluation and full request handling.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "drtp/bounded_flood.h"
#include "drtp/dlsr.h"
#include "drtp/failure.h"
#include "drtp/network.h"
#include "drtp/plsr.h"
#include "lsdb/aplv.h"
#include "net/generators.h"
#include "routing/dijkstra.h"
#include "routing/distance_table.h"
#include "sim/paper.h"

namespace drtp {
namespace {

net::Topology PaperTopo(double degree) {
  return sim::MakePaperTopology(degree, 1);
}

void BM_DijkstraMinHop(benchmark::State& state) {
  const net::Topology topo = PaperTopo(static_cast<double>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.Index(60));
    NodeId dst = static_cast<NodeId>(rng.Index(60));
    if (dst == src) dst = (dst + 1) % 60;
    auto p = routing::MinHopPath(topo, src, dst, nullptr);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DijkstraMinHop)->Arg(3)->Arg(4);

void BM_DistanceTableBuild(benchmark::State& state) {
  const net::Topology topo = PaperTopo(3.0);
  for (auto _ : state) {
    auto dt = routing::DistanceTable::Build(topo);
    benchmark::DoNotOptimize(dt);
  }
}
BENCHMARK(BM_DistanceTableBuild);

void BM_AplvUpdate(benchmark::State& state) {
  lsdb::Aplv aplv(240);
  const routing::LinkSet lset = routing::MakeLinkSet({3, 50, 100, 199, 230});
  for (auto _ : state) {
    aplv.AddPrimaryLset(lset);
    aplv.RemovePrimaryLset(lset);
    benchmark::DoNotOptimize(aplv);
  }
}
BENCHMARK(BM_AplvUpdate);

void BM_ConflictVectorScore(benchmark::State& state) {
  lsdb::ConflictVector cv(240);
  Rng rng(3);
  for (int i = 0; i < 60; ++i)
    cv.Set(static_cast<LinkId>(rng.Index(240)), true);
  const routing::LinkSet lset = routing::MakeLinkSet({3, 50, 100, 199, 230});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cv.CountIn(lset));
  }
}
BENCHMARK(BM_ConflictVectorScore);

/// One full request through a loaded network: selection + establishment +
/// backup registration + release.
template <typename Scheme>
void RequestCycle(benchmark::State& state, Scheme& scheme,
                  core::DrtpNetwork& net, lsdb::LinkStateDb& db) {
  Rng rng(11);
  ConnId next = 1 << 20;
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.Index(60));
    NodeId dst = static_cast<NodeId>(rng.Index(60));
    if (dst == src) dst = (dst + 1) % 60;
    net.PublishTo(db, 0.0);
    auto sel = scheme.SelectRoutes(net, db, src, dst, Mbps(1));
    if (sel.primary &&
        net.EstablishConnection(next, *sel.primary, Mbps(1), 0.0)) {
      if (sel.backup) net.RegisterBackup(next, *sel.backup);
      net.ReleaseConnection(next);
      ++next;
    }
  }
}

/// Pre-loads ~300 connections so APLVs and spare pools are non-trivial.
void Preload(core::DrtpNetwork& net, lsdb::LinkStateDb& db,
             core::RoutingScheme& scheme) {
  Rng rng(5);
  for (ConnId id = 0; id < 300; ++id) {
    const NodeId src = static_cast<NodeId>(rng.Index(60));
    NodeId dst = static_cast<NodeId>(rng.Index(60));
    if (dst == src) dst = (dst + 1) % 60;
    net.PublishTo(db, 0.0);
    auto sel = scheme.SelectRoutes(net, db, src, dst, Mbps(1));
    if (sel.primary && net.EstablishConnection(id, *sel.primary, Mbps(1), 0)) {
      if (sel.backup) net.RegisterBackup(id, *sel.backup);
    }
  }
}

void BM_RequestCycleDlsr(benchmark::State& state) {
  core::DrtpNetwork net(PaperTopo(3.0));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Dlsr scheme;
  Preload(net, db, scheme);
  RequestCycle(state, scheme, net, db);
}
BENCHMARK(BM_RequestCycleDlsr);

void BM_RequestCyclePlsr(benchmark::State& state) {
  core::DrtpNetwork net(PaperTopo(3.0));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Plsr scheme;
  Preload(net, db, scheme);
  RequestCycle(state, scheme, net, db);
}
BENCHMARK(BM_RequestCyclePlsr);

void BM_RequestCycleBoundedFlood(benchmark::State& state) {
  core::DrtpNetwork net(PaperTopo(3.0));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::BoundedFlooding scheme(net.topology());
  core::Dlsr preload_scheme;
  Preload(net, db, preload_scheme);
  RequestCycle(state, scheme, net, db);
}
BENCHMARK(BM_RequestCycleBoundedFlood);

void BM_EvaluateAllSingleLinkFailures(benchmark::State& state) {
  core::DrtpNetwork net(PaperTopo(3.0));
  lsdb::LinkStateDb db(net.topology().num_links(), net.topology().num_links());
  core::Dlsr scheme;
  Preload(net, db, scheme);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EvaluateAllSingleLinkFailures(net));
  }
}
BENCHMARK(BM_EvaluateAllSingleLinkFailures);

void BM_WaxmanGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto topo = net::MakeWaxman(net::WaxmanConfig{
        .nodes = 60, .avg_degree = 3.0, .seed = seed++});
    benchmark::DoNotOptimize(topo);
  }
}
BENCHMARK(BM_WaxmanGeneration);

}  // namespace
}  // namespace drtp

BENCHMARK_MAIN();
