// Ablation: number of backup channels per DR-connection.
//
// §2 defines a DR-connection as "one primary and one or more backup
// channels". This harness quantifies what each extra pre-established
// backup buys (fault-tolerance) and costs (capacity), at a fixed load.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_multi_backup");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate for the probe");
  auto& degree = flags.Double("degree", 4.0, "average node degree");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Ablation — backups per connection (E = %.0f, lambda = %.2f,"
              " UT, D-LSR)\n\n", degree, lambda);
  const sim::RunMetrics base =
      runner.Run(degree, sim::TrafficPattern::kUniform, lambda, "NoBackup");
  TextTable t({"backups", "P_bk", "capacity ovhd%", "avg spare Mbps",
               "avg backup hops"});
  for (int k = 0; k <= 3; ++k) {
    sim::ExperimentConfig ec = runner.Experiment();
    ec.num_backups = k;
    const sim::RunMetrics m =
        runner.Run(degree, sim::TrafficPattern::kUniform, lambda, "D-LSR", ec);
    t.BeginRow();
    t.Cell(static_cast<std::int64_t>(k));
    t.Cell(m.pbk.value(), 4);
    t.Cell(sim::CapacityOverheadPercent(base, m), 2);
    t.Cell(m.spare_bw.mean() / 1000.0, 1);
    t.Cell(m.backup_hops.mean(), 2);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: the first backup buys almost all the"
              " fault-tolerance; further ones mostly add spare cost —\n"
              "why the paper evaluates the single-backup configuration.\n");
  return 0;
}
