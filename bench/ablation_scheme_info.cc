// Ablation X4: how much of the fault-tolerance comes from conflict
// information?
//
// Paper claim (§6.2): "the lower the network connectivity, the more
// sophisticated routing algorithm is necessary" — with many candidate
// routes (high E) "even random selection can find a backup route with
// small conflicts". We compare D-LSR / P-LSR against two information-free
// backups (shortest-disjoint, random) across connectivity levels.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("ablation_scheme_info");
  const auto opts = bench::HarnessOptions::Register(flags);
  auto& lambda = flags.Double("lambda", 0.6, "arrival rate for the probe");
  flags.Parse(argc, argv);
  bench::CellRunner runner(static_cast<std::uint64_t>(*opts.seed),
                           *opts.duration, *opts.fast);

  std::printf("Ablation — value of conflict information vs connectivity"
              " (lambda = %.2f, NT)\n\n", lambda);
  TextTable t({"E", "D-LSR", "P-LSR", "SD-Backup", "RandomBackup"});
  for (const double degree : {3.0, 4.0, 5.0}) {
    t.BeginRow();
    t.Cell(degree, 0);
    for (const char* scheme :
         {"D-LSR", "P-LSR", "SD-Backup", "RandomBackup"}) {
      const sim::RunMetrics m = runner.Run(
          degree, sim::TrafficPattern::kHotspot, lambda, scheme);
      t.Cell(m.pbk.value(), 4);
    }
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf("\nReading: the advantage of conflict-aware routing shrinks as"
              " connectivity grows.\n");
  return 0;
}
