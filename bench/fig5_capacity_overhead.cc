// Reproduces Figure 5: capacity overhead versus arrival rate λ for E = 3
// (Fig. 5a) and E = 4 (Fig. 5b), under UT and NT traffic.
//
// Capacity overhead (§6.2) is the percentage drop in carried DR-connections
// relative to replaying the *same scenario* with no backups: resources
// reserved as spares displace primaries once the network saturates.
// Paper shape targets: overhead ≈ 0 below saturation (λ≈0.5 at E=3, ≈0.9
// at E=4), then climbs to at most ~25% (UT) / ~20% (NT).
//
// The no-backup baseline is just one more scheme in the sweep grid, so all
// cells (baseline included) run on the parallel engine under --jobs=N.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("fig5_capacity_overhead");
  const auto opts = bench::HarnessOptions::Register(flags);
  const auto sweep = bench::SweepFlags::Register(flags);
  flags.Parse(argc, argv);

  runner::SweepSpec spec;
  spec.seeds = {static_cast<std::uint64_t>(*opts.seed)};
  spec.degrees = {3.0, 4.0};
  spec.patterns = {sim::TrafficPattern::kUniform,
                   sim::TrafficPattern::kHotspot};
  spec.lambdas = runner::PaperLambdas(*opts.fast);
  spec.schemes = {"NoBackup", "D-LSR", "P-LSR", "BF"};
  spec.duration = *opts.duration;
  spec.fast = *opts.fast;
  runner::SweepEngine engine(spec);
  const auto results = bench::RunSweep(engine, sweep);
  const std::uint64_t seed = spec.seeds.front();

  std::printf("Figure 5 — capacity overhead (%%) vs arrival rate lambda\n");
  std::printf("(drop in carried connections vs the no-backup replay of the"
              " same scenario)\n\n");
  for (const double degree : {3.0, 4.0}) {
    std::printf("--- Fig. 5(%s): E = %.0f ---\n", degree == 3.0 ? "a" : "b",
                degree);
    TextTable table({"lambda", "base(avg act)", "D-LSR,UT", "P-LSR,UT",
                     "BF,UT", "D-LSR,NT", "P-LSR,NT", "BF,NT"});
    for (const double lambda : spec.lambdas) {
      table.BeginRow();
      table.Cell(lambda, 2);
      bool base_cell_done = false;
      for (const auto pattern :
           {sim::TrafficPattern::kUniform, sim::TrafficPattern::kHotspot}) {
        const sim::RunMetrics& base = bench::FindMetrics(
            results, seed, degree, pattern, lambda, "NoBackup");
        if (!base_cell_done) {
          table.Cell(base.avg_active, 1);
          base_cell_done = true;
        }
        for (const char* scheme : {"D-LSR", "P-LSR", "BF"}) {
          const sim::RunMetrics& m = bench::FindMetrics(
              results, seed, degree, pattern, lambda, scheme);
          table.Cell(sim::CapacityOverheadPercent(base, m), 2);
        }
      }
    }
    std::fputs(table.Render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
