// drtpd — the online DR-connection admission daemon.
//
// Loads a topology, owns the authoritative network state (connection
// table, bandwidth ledger, link-state database), and serves drtp.rpc/1
// requests (admit / release / fail-link / repair-link / stats) over a
// local unix stream socket with length-prefixed JSON frames. Requests are
// decoded by a parallel pool and executed in batches by a single engine
// thread — one LSDB snapshot per batch. See docs/DRTPD.md.
//
//   drtpd --socket=/tmp/drtpd.sock --topo=net.topo --scheme=D-LSR
//
// SIGTERM / SIGINT trigger a graceful drain: every frame already received
// is answered, the final audit runs, and the process exits 0 (3 when the
// auditor recorded violations, matching drtpsim/drtpsweep conventions;
// 2 on startup/usage errors).
//
// Crash durability (--wal / --snapshot / --recover, docs/DRTPD.md):
// with --wal every committed batch is group-fsynced to a drtp.wal/1 log
// before its responses are released, and --snapshot-interval writes
// periodic drtp.snap/1 snapshots. After a SIGKILL, restarting with
// --recover truncates the torn WAL tail, loads the snapshot, replays the
// suffix, audits the recovered state, and only then opens the socket —
// reaching a NetworkStateDigest byte-identical to an uninterrupted run.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/digest.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/log.h"
#include "drtp/manager.h"
#include "fault/auditor.h"
#include "net/graphio.h"
#include "obs/flight_recorder.h"
#include "svc/engine.h"
#include "svc/server.h"
#include "svc/wal.h"

using namespace drtp;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drtpd: %s\n", message.c_str());
  return 2;
}

svc::Server* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->Shutdown();
}

void HandleUserSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->TriggerUserEvent();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpd");
  auto& socket_path =
      flags.String("socket", "", "unix socket path to serve on (required)");
  auto& topo_path = flags.String("topo", "", "topology file (required)");
  auto& scheme = flags.String(
      "scheme", "D-LSR",
      "routing scheme (D-LSR|P-LSR|BF|NoBackup|{D,P}-LSR-SRLG-{SOFT,HARD}|"
      "SRLG-PAIR|...)");
  auto& seed = flags.Int64("seed", 1, "scheme seed (RandomBackup)");
  auto& backups = flags.Int64("backups", 1, "backups per connection", 0, 8);
  auto& dedicated =
      flags.Bool("dedicated_spares", false, "disable backup multiplexing");
  auto& threads =
      flags.Int64("threads", 1, "request decode workers", 1, 64);
  auto& batch = flags.Int64("batch", 64, "max admissions per LSDB snapshot",
                            1, 4096);
  auto& linger_us = flags.Int64(
      "linger_us", 500,
      "engine wait for a fuller batch, microseconds (-1 = only full "
      "batches; deterministic mode)",
      -1, 1000000);
  auto& audit_interval = flags.Int64(
      "audit-interval", 0,
      "audit invariants every N committed batches (0 = off); failure "
      "events and the drain audit always run when enabled",
      0, 1000000);
  auto& audit_out = flags.String(
      "audit-out", "", "drtp.audit/1 JSONL file (default: stderr)");
  auto& request_log = flags.String(
      "request-log", "",
      "write the replayable request log (scenario file) here on drain");
  auto& flight_dump = flags.String(
      "flight-dump", "",
      "write flight-recorder dumps (drtp.trace/1 JSONL) here on SIGUSR1, "
      "first audit violation, or fatal error");
  auto& wal_path = flags.String(
      "wal", "",
      "drtp.wal/1 write-ahead log: group-fsync every committed batch "
      "before its responses are released (empty = no durability)");
  auto& snapshot_path = flags.String(
      "snapshot", "",
      "drtp.snap/1 state snapshot file (default: <wal>.snap when --wal "
      "is set)");
  auto& snapshot_interval = flags.Int64(
      "snapshot-interval", 0,
      "write a snapshot every N committed batches (0 = only on drain)",
      0, 1000000);
  auto& recover = flags.Bool(
      "recover", false,
      "recover from --wal (+ snapshot when present) before serving: "
      "truncate the torn tail, restore, replay, audit");
  auto& max_inflight = flags.Int64(
      "max-inflight", 0,
      "shed frames beyond this many in flight with an 'overloaded' "
      "response (0 = unbounded)",
      0, 1 << 20);
  auto& verbose = flags.Bool("verbose", false, "log at info level");
  flags.Parse(argc, argv);

  if (socket_path.empty()) return Fail("--socket is required");
  if (topo_path.empty()) return Fail("--topo is required");
  if (recover && wal_path.empty()) return Fail("--recover requires --wal");
  if (!snapshot_path.empty() && wal_path.empty()) {
    return Fail("--snapshot requires --wal (snapshots bind to WAL offsets)");
  }
  const std::string snap_path =
      (!snapshot_path.empty() || wal_path.empty()) ? snapshot_path
                                                   : wal_path + ".snap";
  if (verbose) SetLogLevel(LogLevel::kInfo);

  try {
    std::ifstream in(topo_path);
    if (!in.good()) {
      return Fail("cannot open topology file '" + topo_path + "'");
    }
    const net::Topology topo = net::ReadTopology(in);

    std::ofstream audit_file;
    svc::EngineOptions eo;
    eo.scheme = scheme;
    eo.seed = static_cast<std::uint64_t>(seed);
    eo.num_backups = static_cast<int>(backups);
    eo.spare_mode = dedicated ? core::SpareMode::kDedicated
                              : core::SpareMode::kMultiplexed;
    eo.audit_interval = static_cast<int>(audit_interval);
    if (audit_interval > 0) {
      if (!audit_out.empty()) {
        audit_file.open(audit_out, std::ios::trunc);
        if (!audit_file.good()) {
          return Fail("cannot write '" + audit_out + "'");
        }
        eo.audit_out = &audit_file;
      } else {
        eo.audit_out = &std::cerr;
      }
    }
    eo.keep_request_log = !request_log.empty();
    eo.flight_dump_path = flight_dump;
    eo.snapshot_interval = static_cast<int>(snapshot_interval);
    eo.snapshot_path = snap_path;
    svc::Engine engine(topo, std::move(eo));

    // Durability bring-up, strictly before the socket opens: recover (or
    // refuse a stale WAL), audit the recovered state, then attach the log.
    std::unique_ptr<svc::Wal> wal;
    if (!wal_path.empty()) {
      if (recover) {
        const svc::RecoverReport rep = engine.Recover(wal_path, snap_path);
        // The auditor gates the socket: a recovered state that violates
        // the invariants must never serve traffic (exit 3, like drain).
        fault::AuditorOptions ao;
        ao.out = &std::cerr;
        fault::Auditor auditor(ao);
        auditor.Check(engine.network(), engine.virtual_now(),
                      "post_recovery", nullptr);
        if (!auditor.ok()) {
          std::fprintf(stderr,
                       "drtpd: recovered state failed the audit (%lld "
                       "violations) — refusing to serve\n",
                       static_cast<long long>(auditor.violation_count()));
          return 3;
        }
        std::fprintf(
            stderr,
            "drtpd: recovered%s: %lld batches (%lld events) replayed, "
            "%llu WAL bytes valid, %llu truncated, digest %s\n",
            rep.from_snapshot ? " from snapshot" : "",
            static_cast<long long>(rep.batches_replayed),
            static_cast<long long>(rep.events_replayed),
            static_cast<unsigned long long>(rep.wal_valid_bytes),
            static_cast<unsigned long long>(rep.wal_truncated_bytes),
            DigestHex(engine.StateDigest()).c_str());
      } else if (::access(wal_path.c_str(), F_OK) == 0) {
        // An existing WAL without --recover means a previous run's state
        // would be silently forgotten — make the operator decide.
        return Fail("WAL '" + wal_path +
                    "' already exists; restart with --recover or remove it");
      }
      std::string wal_error;
      wal = svc::Wal::Open(wal_path, engine.ConfigDigest(), &wal_error);
      if (wal == nullptr) return Fail(wal_error);
      engine.AttachWal(wal.get());
    }

    svc::ServerOptions so;
    so.socket_path = socket_path;
    so.pipeline.threads = static_cast<int>(threads);
    so.pipeline.batch_max = static_cast<int>(batch);
    so.pipeline.linger_us = static_cast<long>(linger_us);
    so.pipeline.max_inflight = max_inflight;
    if (!flight_dump.empty()) {
      // SIGUSR1 → self-pipe → this callback on the poll thread: a live,
      // non-disruptive post-mortem snapshot of recent daemon events.
      so.on_user_signal = [&flight_dump] {
        if (obs::FlightRecorder::Global().DumpToFile(flight_dump, "sigusr1")) {
          DRTP_LOG_INFO << "flight recorder dumped to " << flight_dump;
        } else {
          DRTP_LOG_WARN << "flight dump to " << flight_dump << " failed";
        }
      };
    }
    svc::Server server(engine, so);
    // Handlers go in before the socket opens: a drain signal sent the
    // instant the socket appears must never hit the default handler (a
    // pre-Run Shutdown just queues a self-pipe byte Run reads at once).
    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGUSR1, HandleUserSignal);
    // A client that vanishes mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    std::string error;
    if (!server.Start(&error)) return Fail(error);

    DRTP_LOG_INFO << "drtpd serving on " << socket_path << " ("
                  << topo.num_nodes() << " nodes, " << topo.num_links()
                  << " links, scheme " << scheme << ")";
    server.Run();
    g_server = nullptr;

    const std::int64_t violations = engine.FinalAudit();
    if (wal != nullptr && !snap_path.empty()) {
      // Drain-time snapshot: the next --recover restores it directly and
      // replays nothing.
      std::string snap_error;
      if (!engine.WriteSnapshot(&snap_error)) {
        DRTP_LOG_WARN << "drain snapshot failed: " << snap_error;
      }
    }
    if (!request_log.empty()) {
      std::ofstream os(request_log, std::ios::trunc);
      if (!os.good()) return Fail("cannot write '" + request_log + "'");
      engine.RequestLog().Save(os);
    }
    const svc::EngineStats& s = engine.stats();
    std::fprintf(stderr,
                 "drtpd: drained; %lld frames (%lld errors), %lld admitted, "
                 "%lld blocked, %lld released, %lld batches, "
                 "%lld audit checks, %lld violations, digest %s%s\n",
                 static_cast<long long>(s.frames),
                 static_cast<long long>(s.errors),
                 static_cast<long long>(s.admitted),
                 static_cast<long long>(s.blocked),
                 static_cast<long long>(s.released),
                 static_cast<long long>(s.batches),
                 static_cast<long long>(engine.audit_checks()),
                 static_cast<long long>(violations),
                 DigestHex(engine.StateDigest()).c_str(),
                 violations > 0 ? " — INVARIANTS BROKEN" : "");
    return violations > 0 ? 3 : 0;
  } catch (const std::exception& e) {
    // Fatal error: leave the recent-event trail next to the error message.
    if (!flight_dump.empty()) {
      obs::FlightRecorder::Global().DumpToFile(flight_dump, "fatal_error");
    }
    return Fail(e.what());
  }
}
