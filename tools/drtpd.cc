// drtpd — the online DR-connection admission daemon.
//
// Loads a topology, owns the authoritative network state (connection
// table, bandwidth ledger, link-state database), and serves drtp.rpc/1
// requests (admit / release / fail-link / repair-link / stats) over a
// local unix stream socket with length-prefixed JSON frames. Requests are
// decoded by a parallel pool and executed in batches by a single engine
// thread — one LSDB snapshot per batch. See docs/DRTPD.md.
//
//   drtpd --socket=/tmp/drtpd.sock --topo=net.topo --scheme=D-LSR
//
// SIGTERM / SIGINT trigger a graceful drain: every frame already received
// is answered, the final audit runs, and the process exits 0 (3 when the
// auditor recorded violations, matching drtpsim/drtpsweep conventions;
// 2 on startup/usage errors).
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/log.h"
#include "drtp/manager.h"
#include "net/graphio.h"
#include "obs/flight_recorder.h"
#include "svc/engine.h"
#include "svc/server.h"

using namespace drtp;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drtpd: %s\n", message.c_str());
  return 2;
}

svc::Server* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->Shutdown();
}

void HandleUserSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->TriggerUserEvent();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpd");
  auto& socket_path =
      flags.String("socket", "", "unix socket path to serve on (required)");
  auto& topo_path = flags.String("topo", "", "topology file (required)");
  auto& scheme = flags.String(
      "scheme", "D-LSR", "routing scheme (D-LSR|P-LSR|BF|NoBackup|...)");
  auto& seed = flags.Int64("seed", 1, "scheme seed (RandomBackup)");
  auto& backups = flags.Int64("backups", 1, "backups per connection", 0, 8);
  auto& dedicated =
      flags.Bool("dedicated_spares", false, "disable backup multiplexing");
  auto& threads =
      flags.Int64("threads", 1, "request decode workers", 1, 64);
  auto& batch = flags.Int64("batch", 64, "max admissions per LSDB snapshot",
                            1, 4096);
  auto& linger_us = flags.Int64(
      "linger_us", 500,
      "engine wait for a fuller batch, microseconds (-1 = only full "
      "batches; deterministic mode)",
      -1, 1000000);
  auto& audit_interval = flags.Int64(
      "audit-interval", 0,
      "audit invariants every N committed batches (0 = off); failure "
      "events and the drain audit always run when enabled",
      0, 1000000);
  auto& audit_out = flags.String(
      "audit-out", "", "drtp.audit/1 JSONL file (default: stderr)");
  auto& request_log = flags.String(
      "request-log", "",
      "write the replayable request log (scenario file) here on drain");
  auto& flight_dump = flags.String(
      "flight-dump", "",
      "write flight-recorder dumps (drtp.trace/1 JSONL) here on SIGUSR1, "
      "first audit violation, or fatal error");
  auto& verbose = flags.Bool("verbose", false, "log at info level");
  flags.Parse(argc, argv);

  if (socket_path.empty()) return Fail("--socket is required");
  if (topo_path.empty()) return Fail("--topo is required");
  if (verbose) SetLogLevel(LogLevel::kInfo);

  try {
    std::ifstream in(topo_path);
    if (!in.good()) {
      return Fail("cannot open topology file '" + topo_path + "'");
    }
    const net::Topology topo = net::ReadTopology(in);

    std::ofstream audit_file;
    svc::EngineOptions eo;
    eo.scheme = scheme;
    eo.seed = static_cast<std::uint64_t>(seed);
    eo.num_backups = static_cast<int>(backups);
    eo.spare_mode = dedicated ? core::SpareMode::kDedicated
                              : core::SpareMode::kMultiplexed;
    eo.audit_interval = static_cast<int>(audit_interval);
    if (audit_interval > 0) {
      if (!audit_out.empty()) {
        audit_file.open(audit_out, std::ios::trunc);
        if (!audit_file.good()) {
          return Fail("cannot write '" + audit_out + "'");
        }
        eo.audit_out = &audit_file;
      } else {
        eo.audit_out = &std::cerr;
      }
    }
    eo.keep_request_log = !request_log.empty();
    eo.flight_dump_path = flight_dump;
    svc::Engine engine(topo, std::move(eo));

    svc::ServerOptions so;
    so.socket_path = socket_path;
    so.pipeline.threads = static_cast<int>(threads);
    so.pipeline.batch_max = static_cast<int>(batch);
    so.pipeline.linger_us = static_cast<long>(linger_us);
    if (!flight_dump.empty()) {
      // SIGUSR1 → self-pipe → this callback on the poll thread: a live,
      // non-disruptive post-mortem snapshot of recent daemon events.
      so.on_user_signal = [&flight_dump] {
        if (obs::FlightRecorder::Global().DumpToFile(flight_dump, "sigusr1")) {
          DRTP_LOG_INFO << "flight recorder dumped to " << flight_dump;
        } else {
          DRTP_LOG_WARN << "flight dump to " << flight_dump << " failed";
        }
      };
    }
    svc::Server server(engine, so);
    std::string error;
    if (!server.Start(&error)) return Fail(error);

    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGUSR1, HandleUserSignal);
    // A client that vanishes mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    DRTP_LOG_INFO << "drtpd serving on " << socket_path << " ("
                  << topo.num_nodes() << " nodes, " << topo.num_links()
                  << " links, scheme " << scheme << ")";
    server.Run();
    g_server = nullptr;

    const std::int64_t violations = engine.FinalAudit();
    if (!request_log.empty()) {
      std::ofstream os(request_log, std::ios::trunc);
      if (!os.good()) return Fail("cannot write '" + request_log + "'");
      engine.RequestLog().Save(os);
    }
    const svc::EngineStats& s = engine.stats();
    std::fprintf(stderr,
                 "drtpd: drained; %lld frames (%lld errors), %lld admitted, "
                 "%lld blocked, %lld released, %lld batches, "
                 "%lld audit checks, %lld violations%s\n",
                 static_cast<long long>(s.frames),
                 static_cast<long long>(s.errors),
                 static_cast<long long>(s.admitted),
                 static_cast<long long>(s.blocked),
                 static_cast<long long>(s.released),
                 static_cast<long long>(s.batches),
                 static_cast<long long>(engine.audit_checks()),
                 static_cast<long long>(violations),
                 violations > 0 ? " — INVARIANTS BROKEN" : "");
    return violations > 0 ? 3 : 0;
  } catch (const std::exception& e) {
    // Fatal error: leave the recent-event trail next to the error message.
    if (!flight_dump.empty()) {
      obs::FlightRecorder::Global().DumpToFile(flight_dump, "fatal_error");
    }
    return Fail(e.what());
  }
}
