#!/bin/sh
# Kill-and-resume + shard-merge chaos for the checkpointed sweep engine.
#
# Proves the two preemption contracts end-to-end, with the auditor on so
# the journaled audit evidence is exercised too:
#
#   1. A sweep SIGKILLed at staggered points and then resumed emits the
#      same result AND audit bytes as an uninterrupted --jobs=1 run.
#   2. A 4-way shard split reassembled by drtpmerge equals the unsharded
#      run, audit file included.
#
# "Same bytes" is modulo wall_s, the one nondeterministic result field
# (stripped with the CI sed convention before cmp).
#
# Usage: tools/checkpoint_chaos.sh [BUILD_DIR] [WORK_DIR]
set -eu

BUILD=${1:-build}
WORK=${2:-$(mktemp -d /tmp/drtp_ckpt_chaos.XXXXXX)}
mkdir -p "$WORK"
SWEEP=$BUILD/tools/drtpsweep
MERGE=$BUILD/tools/drtpmerge

# Small but non-trivial grid: 3 seeds x 2 lambdas x 2 schemes = 12 cells,
# enacted failures + audit on every cell.
SWEEP_FLAGS="--degrees=3 --patterns=UT --lambdas=0.4,0.6 \
  --schemes=D-LSR,BF --duration=600 --seed=7 --replications=3 \
  --failures=2 --mttr=120 --audit --jobs=1 --table=false --progress=false"

strip_wall() {
  sed -E 's/"wall_s":[0-9.e+-]+,//' "$1"
}

echo "== baseline (uninterrupted --jobs=1) =="
$SWEEP $SWEEP_FLAGS --out="$WORK/base.jsonl" \
  --audit-out="$WORK/base.audit.jsonl"

echo "== kill-and-resume =="
# Staggered SIGKILL points: early (journal barely started), mid-run, and
# late (possibly after completion — resume must be a clean no-op then).
first=1
for delay in 0.2 0.6 1.2 2.5; do
  if [ "$first" = 1 ]; then resume=""; first=0; else resume="--resume"; fi
  $SWEEP $SWEEP_FLAGS $resume --out="$WORK/kr.jsonl" \
    --audit-out="$WORK/kr.audit.jsonl" 2>"$WORK/kr.err" &
  pid=$!
  sleep "$delay"
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "  killed after ${delay}s"
done
# Final resume runs to completion.
$SWEEP $SWEEP_FLAGS --resume --out="$WORK/kr.jsonl" \
  --audit-out="$WORK/kr.audit.jsonl"

strip_wall "$WORK/base.jsonl" > "$WORK/base.strip"
strip_wall "$WORK/kr.jsonl" > "$WORK/kr.strip"
cmp "$WORK/base.strip" "$WORK/kr.strip"
cmp "$WORK/base.audit.jsonl" "$WORK/kr.audit.jsonl"
echo "  resume matches uninterrupted run (results + audit)"

echo "== 4-way shard + merge =="
for i in 0 1 2 3; do
  $SWEEP $SWEEP_FLAGS --out="$WORK/sh.jsonl" --shard=$i/4
done
$MERGE --out="$WORK/merged.jsonl" --audit-out="$WORK/merged.audit.jsonl" \
  "$WORK/sh.shard-0.jsonl" "$WORK/sh.shard-1.jsonl" \
  "$WORK/sh.shard-2.jsonl" "$WORK/sh.shard-3.jsonl"

strip_wall "$WORK/merged.jsonl" > "$WORK/merged.strip"
cmp "$WORK/base.strip" "$WORK/merged.strip"
cmp "$WORK/base.audit.jsonl" "$WORK/merged.audit.jsonl"
echo "  merged shards match unsharded run (results + audit)"

echo "checkpoint-chaos: PASS ($WORK)"
