#!/bin/sh
# End-to-end daemon smoke: start drtpd on a Waxman topology, drive it with
# a seeded closed-loop drtpload run while polling the stats RPC with
# drtpstat, SIGUSR1-trigger a flight-recorder dump and schema-validate it,
# assert nonzero admissions and a clean audit, then SIGTERM and require a
# graceful drain (exit 0).
#
#   daemon_smoke.sh <drtpsim> <drtpd> <drtpload> <workdir> [bench-out] [drtpstat]
#
# Used both as a ctest (tools/CMakeLists.txt) and by the CI daemon-smoke
# job, which additionally uploads the drtpload report as an artifact.
set -eu

DRTPSIM=$1
DRTPD=$2
DRTPLOAD=$3
WORK=$4
BENCH_OUT=${5:-"$WORK/bench_drtpd.json"}
DRTPSTAT=${6:-}

mkdir -p "$WORK"
SOCK="$WORK/drtpd.sock"
TOPO="$WORK/smoke60.topo"
FLIGHT="$WORK/flight.jsonl"
rm -f "$SOCK" "$FLIGHT"

"$DRTPSIM" topo --kind=waxman --nodes=60 --degree=4 --seed=11 --out="$TOPO"

"$DRTPD" --socket="$SOCK" --topo="$TOPO" --scheme=D-LSR \
  --threads=2 --batch=64 --audit-interval=4 \
  --audit-out="$WORK/drtpd.audit.jsonl" \
  --flight-dump="$FLIGHT" &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# Wait for the socket to appear (the daemon binds before serving).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon_smoke: socket never appeared" >&2
    exit 1
  fi
  sleep 0.1
done

# Poll the stats RPC *while* the load below is running: the poller runs
# in the background, taking snapshots until the load finishes.
if [ -n "$DRTPSTAT" ]; then
  "$DRTPSTAT" --socket="$SOCK" --count=20 --interval=0.25 \
    > "$WORK/drtpstat.out" &
  STATPID=$!
fi

"$DRTPLOAD" --socket="$SOCK" --mode=closed --workers=4 \
  --lambda=0.5 --duration=600 --seed=11 --out="$BENCH_OUT"

if [ -n "$DRTPSTAT" ]; then
  if ! wait "$STATPID"; then
    echo "daemon_smoke: drtpstat poller failed" >&2
    exit 1
  fi
  # The live table must have rendered the per-stage quantile columns.
  grep -q "p99 us" "$WORK/drtpstat.out"
  grep -q "^engine " "$WORK/drtpstat.out"
fi

# The report must show actual admissions and a violation-free audit.
python3 - "$BENCH_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "drtp.bench.drtpd/1", r["schema"]
assert r["totals"]["admitted"] > 0, "no admissions"
assert r["totals"]["errors"] == 0, f"{r['totals']['errors']} rpc errors"
assert r["totals"]["transport_failures"] == 0, "transport failures"
assert r["throughput"]["admissions_per_s"] > 0, "zero admissions/sec"
assert r["daemon"]["audit_violations"] == 0, "audit violations"
print(f"daemon_smoke: {r['totals']['admitted']} admitted, "
      f"{r['throughput']['admissions_per_s']:.0f} admissions/s, "
      f"P_bk={r['daemon']['pbk']:.3f}")
EOF

# SIGUSR1 must produce a flight-recorder dump without disturbing serving.
kill -USR1 "$DPID"
i=0
while [ ! -s "$FLIGHT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon_smoke: flight dump never appeared" >&2
    exit 1
  fi
  sleep 0.1
done
sleep 0.3  # let the dump finish writing

# Schema-validate the dump: drtp.trace/1 JSONL, flight_dump header first
# (reason sigusr1), every event line an fr_* kind, body size matching the
# header's event count, and at least one recorded admission.
python3 - "$FLIGHT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert lines, "empty flight dump"
head = lines[0]
assert head["schema"] == "drtp.trace/1", head
assert head["ev"] == "flight_dump", head
assert head["reason"] == "sigusr1", head
body = lines[1:]
assert head["events"] == len(body), (head["events"], len(body))
kinds = set()
prev_t = None
for ev in body:
    assert ev["schema"] == "drtp.trace/1", ev
    assert ev["ev"].startswith("fr_"), ev
    if prev_t is not None:
        assert ev["t_ns"] >= prev_t, "dump not sorted by t_ns"
    prev_t = ev["t_ns"]
    kinds.add(ev["ev"])
assert "fr_admit" in kinds, f"no admissions recorded: {sorted(kinds)}"
assert "fr_rpc_span" in kinds, f"no sampled spans: {sorted(kinds)}"
print(f"daemon_smoke: flight dump OK ({len(body)} events, "
      f"{len(kinds)} kinds)")
EOF

# The daemon must still be serving after the dump.
if ! kill -0 "$DPID" 2>/dev/null; then
  echo "daemon_smoke: daemon died after SIGUSR1 dump" >&2
  exit 1
fi

# Graceful drain: SIGTERM must answer everything in flight and exit 0.
kill -TERM "$DPID"
if wait "$DPID"; then
  STATUS=0
else
  STATUS=$?
fi
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
  echo "daemon_smoke: drtpd exited $STATUS after SIGTERM" >&2
  exit 1
fi
if [ -S "$SOCK" ]; then
  echo "daemon_smoke: socket file not removed on drain" >&2
  exit 1
fi
echo "daemon_smoke: graceful drain OK"
