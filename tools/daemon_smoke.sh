#!/bin/sh
# End-to-end daemon smoke: start drtpd on a Waxman topology, drive it with
# a seeded closed-loop drtpload run, assert nonzero admissions and a clean
# audit, then SIGTERM and require a graceful drain (exit 0).
#
#   daemon_smoke.sh <drtpsim> <drtpd> <drtpload> <workdir> [bench-out]
#
# Used both as a ctest (tools/CMakeLists.txt) and by the CI daemon-smoke
# job, which additionally uploads the drtpload report as an artifact.
set -eu

DRTPSIM=$1
DRTPD=$2
DRTPLOAD=$3
WORK=$4
BENCH_OUT=${5:-"$WORK/bench_drtpd.json"}

mkdir -p "$WORK"
SOCK="$WORK/drtpd.sock"
TOPO="$WORK/smoke60.topo"
rm -f "$SOCK"

"$DRTPSIM" topo --kind=waxman --nodes=60 --degree=4 --seed=11 --out="$TOPO"

"$DRTPD" --socket="$SOCK" --topo="$TOPO" --scheme=D-LSR \
  --threads=2 --batch=64 --audit-interval=4 \
  --audit-out="$WORK/drtpd.audit.jsonl" &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# Wait for the socket to appear (the daemon binds before serving).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "daemon_smoke: socket never appeared" >&2
    exit 1
  fi
  sleep 0.1
done

"$DRTPLOAD" --socket="$SOCK" --mode=closed --workers=4 \
  --lambda=0.5 --duration=600 --seed=11 --out="$BENCH_OUT"

# The report must show actual admissions and a violation-free audit.
python3 - "$BENCH_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema"] == "drtp.bench.drtpd/1", r["schema"]
assert r["totals"]["admitted"] > 0, "no admissions"
assert r["totals"]["errors"] == 0, f"{r['totals']['errors']} rpc errors"
assert r["totals"]["transport_failures"] == 0, "transport failures"
assert r["throughput"]["admissions_per_s"] > 0, "zero admissions/sec"
assert r["daemon"]["audit_violations"] == 0, "audit violations"
print(f"daemon_smoke: {r['totals']['admitted']} admitted, "
      f"{r['throughput']['admissions_per_s']:.0f} admissions/s, "
      f"P_bk={r['daemon']['pbk']:.3f}")
EOF

# Graceful drain: SIGTERM must answer everything in flight and exit 0.
kill -TERM "$DPID"
if wait "$DPID"; then
  STATUS=0
else
  STATUS=$?
fi
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
  echo "daemon_smoke: drtpd exited $STATUS after SIGTERM" >&2
  exit 1
fi
if [ -S "$SOCK" ]; then
  echo "daemon_smoke: socket file not removed on drain" >&2
  exit 1
fi
echo "daemon_smoke: graceful drain OK"
