// drtpmerge — reassemble drtpsweep shard outputs into the canonical
// single-process byte order.
//
// Each positional argument is one shard's results file (out.shard-i.jsonl)
// with its checkpoint journal beside it (<file>.ckpt). The merge verifies
// every line against its journaled digest, demands the complete disjoint
// shard set {0..N-1} of one spec, and writes the cells in index order —
// the order an uninterrupted `drtpsweep --jobs=1` run produces — plus a
// fresh journal beside the merged file. With --audit-out, the journaled
// per-cell audit evidence (drtp.audit/1) is concatenated in the same
// order, and --strict-audit makes recorded violations fail the merge the
// way `drtpsweep --audit` would have.
//
// Example:
//   drtpsweep --out=r.jsonl --shard=0/4 &   # ... 1/4, 2/4, 3/4
//   drtpmerge --out=r.jsonl r.shard-0.jsonl r.shard-1.jsonl
//       r.shard-2.jsonl r.shard-3.jsonl
//
// Exit 0 on success, 2 when the shards cannot be merged (mismatched
// spec/schema, missing or duplicated cells, digest failures), 3 when
// --strict-audit finds recorded violations.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "runner/checkpoint.h"

int main(int argc, char** argv) {
  using namespace drtp;
  FlagSet flags("drtpmerge");
  auto& out = flags.String("out", "",
                           "merged results file (its journal is written "
                           "beside it as <out>.ckpt)");
  auto& audit_out = flags.String(
      "audit-out", "",
      "concatenate the shards' journaled drtp.audit/1 lines here, in "
      "cell order");
  auto& strict_audit = flags.Bool(
      "strict-audit", false,
      "exit 3 when the journals record any audit violation");
  flags.Parse(argc, argv);

  const std::vector<std::string>& shards = flags.positional();
  if (out.empty() || shards.empty()) {
    std::fprintf(stderr,
                 "drtpmerge: need --out=FILE and at least one shard file\n");
    return 2;
  }

  try {
    const runner::MergeReport report =
        runner::MergeShards(shards, out, audit_out);
    std::fprintf(stderr, "merged %zu shards, %zu cells into %s\n",
                 report.shards, report.cells, out.c_str());
    if (report.audit_checks > 0) {
      std::fprintf(stderr, "audit: %lld checks, %lld violations%s\n",
                   static_cast<long long>(report.audit_checks),
                   static_cast<long long>(report.audit_violations),
                   report.audit_violations == 0 ? ""
                                                : " — INVARIANTS BROKEN");
    }
    if (strict_audit && report.audit_violations != 0) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "drtpmerge: %s\n", e.what());
    return 2;
  }
}
