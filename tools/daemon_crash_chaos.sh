#!/bin/sh
# Crash-chaos end-to-end: prove drtpd's WAL + snapshot recovery reaches a
# byte-identical state after SIGKILLs at staggered points mid-load.
#
#   daemon_crash_chaos.sh <drtpsim> <drtpd> <drtpload> <workdir>
#
# Phase 1 (reference): a seeded single-worker closed-loop run against an
# uninterrupted daemon. --batch=1 makes the commit order equal to the
# client's issue order, so the final NetworkStateDigest and the
# server-side admission counter are a deterministic function of the seed.
#
# Phase 2 (chaos): the identical seeded load runs while the daemon is
# SIGKILL'd at staggered points and restarted with --recover each time.
# The client rides the gaps with reconnect + resend (dup-ack semantics
# turn a replayed admit into conn_exists -> admitted, never a duplicate).
#
# Pass criteria: chaos digest == reference digest (byte-identical state),
# chaos server-side admitted == reference (zero duplicate admissions),
# zero client errors/aborts, clean audits, graceful drains.
#
# Used both as a ctest (tools/CMakeLists.txt) and by the CI
# daemon-crash-chaos job.
set -eu

DRTPSIM=$1
DRTPD=$2
DRTPLOAD=$3
WORK=$4

mkdir -p "$WORK"
SOCK="$WORK/chaos.sock"
TOPO="$WORK/chaos40.topo"
LOAD_ARGS="--mode=closed --workers=1 --lambda=10 --duration=600 \
  --seed=23 --reconnect_s=60"
rm -f "$SOCK" "$WORK/ref.wal" "$WORK/ref.wal.snap" \
  "$WORK/chaos.wal" "$WORK/chaos.wal.snap"

DPID=""
LPID=""
cleanup() {
  if [ -n "$DPID" ]; then kill "$DPID" 2>/dev/null || true; fi
  if [ -n "$LPID" ]; then kill "$LPID" 2>/dev/null || true; fi
}
trap cleanup EXIT

"$DRTPSIM" topo --kind=waxman --nodes=40 --degree=4 --seed=7 --out="$TOPO"

# $1: WAL path, $2: extra flags ("--recover" or ""), $3: stderr log.
# Removes the (possibly stale, SIGKILL-orphaned) socket first so the
# wait loop below can only be satisfied by the NEW daemon's bind; with
# --recover the bind happens only after replay + the post-recovery audit.
start_daemon() {
  rm -f "$SOCK"
  # shellcheck disable=SC2086  # $2 is intentionally word-split
  "$DRTPD" --socket="$SOCK" --topo="$TOPO" --scheme=D-LSR \
    --threads=1 --batch=1 --audit-interval=256 \
    --wal="$1" --snapshot-interval=64 $2 2>"$3" &
  DPID=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    if ! kill -0 "$DPID" 2>/dev/null; then
      echo "daemon_crash_chaos: daemon died during startup, log follows" >&2
      cat "$3" >&2
      exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
      echo "daemon_crash_chaos: socket never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}

stop_daemon() { # graceful TERM drain; must exit 0
  kill -TERM "$DPID"
  if ! wait "$DPID"; then
    echo "daemon_crash_chaos: daemon drain failed ($1), log follows" >&2
    cat "$1" >&2
    exit 1
  fi
  DPID=""
}

echo "daemon_crash_chaos: reference run" >&2
start_daemon "$WORK/ref.wal" "" "$WORK/ref.d.err"
# shellcheck disable=SC2086
"$DRTPLOAD" --socket="$SOCK" $LOAD_ARGS --out="$WORK/ref.json"
stop_daemon "$WORK/ref.d.err"

echo "daemon_crash_chaos: chaos run" >&2
start_daemon "$WORK/chaos.wal" "" "$WORK/chaos.d0.err"
# shellcheck disable=SC2086
"$DRTPLOAD" --socket="$SOCK" $LOAD_ARGS --out="$WORK/chaos.json" &
LPID=$!

# SIGKILL the daemon at staggered points while the load is still running,
# restarting with --recover each time. Early pauses land mid-ramp, later
# ones deep into the workload; the loop stops killing once the load ends.
KILLS=0
for pause in 0.4 0.6 0.9 1.2 1.5; do
  sleep "$pause"
  kill -0 "$LPID" 2>/dev/null || break
  kill -KILL "$DPID"
  wait "$DPID" 2>/dev/null || true
  KILLS=$((KILLS + 1))
  start_daemon "$WORK/chaos.wal" "--recover" "$WORK/chaos.d$KILLS.err"
done
echo "daemon_crash_chaos: fired $KILLS SIGKILLs" >&2

if ! wait "$LPID"; then
  echo "daemon_crash_chaos: chaos load exited nonzero (gave up?)" >&2
  exit 1
fi
LPID=""
stop_daemon "$WORK/chaos.d$KILLS.err"

# Every --recover restart must have logged a recovery banner.
k=1
while [ "$k" -le "$KILLS" ]; do
  if ! grep -q "drtpd: recovered" "$WORK/chaos.d$k.err"; then
    echo "daemon_crash_chaos: restart $k never recovered, log follows" >&2
    cat "$WORK/chaos.d$k.err" >&2
    exit 1
  fi
  k=$((k + 1))
done

python3 - "$WORK/ref.json" "$WORK/chaos.json" "$KILLS" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    ref = json.load(f)
with open(sys.argv[2]) as f:
    chaos = json.load(f)
kills = int(sys.argv[3])
assert kills >= 1, "load finished before any SIGKILL fired — lengthen it"
for name, r in (("ref", ref), ("chaos", chaos)):
    assert r["schema"] == "drtp.bench.drtpd/1", r["schema"]
    assert r["totals"]["admitted"] > 0, f"{name}: no admissions"
    assert r["totals"]["errors"] == 0, f"{name}: rpc errors"
    assert r["totals"]["aborted"] == 0, f"{name}: aborted requests"
    assert r["daemon"]["audit_violations"] == 0, f"{name}: audit violations"
assert ref["totals"]["transport_failures"] == 0, "reference run saw failures"
# The tentpole claim: SIGKILL anywhere, recover, and the daemon's state is
# byte-identical to the uninterrupted run.
assert chaos["daemon"]["digest"] == ref["daemon"]["digest"], (
    f"state diverged: {chaos['daemon']['digest']} != {ref['daemon']['digest']}")
# Server-side admission counter survives recovery exactly: equality with
# the reference proves no resent admit was applied twice.
assert chaos["daemon"]["admitted"] == ref["daemon"]["admitted"], (
    "duplicate admissions: "
    f"{chaos['daemon']['admitted']} != {ref['daemon']['admitted']}")
assert chaos["totals"]["admitted"] == ref["totals"]["admitted"], "client admit"
assert chaos["totals"]["blocked"] == ref["totals"]["blocked"], "client block"
assert chaos["totals"]["reconnects"] >= kills, (
    f"only {chaos['totals']['reconnects']} reconnects for {kills} kills")
print(f"daemon_crash_chaos: OK — {kills} SIGKILLs, "
      f"{chaos['totals']['reconnects']} reconnects, "
      f"{chaos['totals']['dup_acks']} dup-acks, "
      f"digest {chaos['daemon']['digest']} matches reference")
EOF

trap - EXIT
echo "daemon_crash_chaos: PASS" >&2
