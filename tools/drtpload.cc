// drtpload — load generator for drtpd.
//
// Drives a running daemon over its unix socket with a deterministic
// seeded workload derived from the simulator's own traffic model
// (sim::GenerateRequests): Poisson arrivals, uniform lifetimes, UT/NT
// endpoint patterns. Each generated connection becomes an admit and a
// release event, replayed either closed-loop (N workers, each waits for
// every response — measures service latency) or open-loop (one firehose
// connection, optionally paced — measures throughput under overload).
//
// Events are partitioned across workers by connection id, so a release is
// only ever sent by the worker that already saw its admit answered.
//
// Closed-loop workers are fault-tolerant clients: `overloaded` responses
// are retried after a jittered exponential backoff seeded from the hint
// the daemon returns, transport failures trigger reconnect-with-backoff
// (surviving a daemon crash + `--recover` restart), and a request resent
// after a transport failure treats `conn_exists` (admit) / `not_found`
// (release) as a duplicate ack — the original execution committed before
// the crash. `--deadline_ms` bounds each request across all its retries.
//
// Reports admissions/sec, client-observed latency percentiles, and the
// daemon's own stats (P_bk of the admitted set, state digest) as one JSON
// object — the format stored in results/BENCH_drtpd.json.
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/json_value.h"
#include "common/rng.h"
#include "common/socket.h"
#include "net/topology.h"
#include "sim/traffic.h"
#include "svc/rpc.h"
#include "svc/wire.h"

using namespace drtp;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drtpload: %s\n", message.c_str());
  return 2;
}

/// Field lookup that throws (caught by main's handler) instead of
/// returning nullptr — stats responses come from our own daemon, so a
/// missing field is a protocol bug worth a loud exit.
const JsonValue& Field(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) {
    throw std::runtime_error("daemon response missing field '" +
                             std::string(key) + "'");
  }
  return *v;
}

/// One admit or release to send.
struct LoadEvent {
  bool admit = false;
  ConnId conn = kInvalidConn;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
};

/// Blocking request/response client over one daemon connection.
class RpcClient {
 public:
  bool Connect(const std::string& path, std::string* error) {
    fd_ = ConnectUnix(path, error);
    return fd_.valid();
  }

  /// Sends one payload and waits for the matching response payload.
  bool Call(const std::string& payload, std::string* response) {
    const std::string frame = svc::EncodeFrame(payload);
    if (!SendAll(fd_.get(), frame.data(), frame.size())) return false;
    return ReadOne(response);
  }

  bool Send(const std::string& payload) {
    const std::string frame = svc::EncodeFrame(payload);
    return SendAll(fd_.get(), frame.data(), frame.size());
  }

  bool ReadOne(std::string* response) {
    for (;;) {
      if (auto p = reader_.Next()) {
        *response = std::move(*p);
        return true;
      }
      char buf[64 * 1024];
      const long r = RecvSome(fd_.get(), buf, sizeof buf);
      if (r <= 0) return false;
      reader_.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
    }
  }

 private:
  UniqueFd fd_;
  svc::FrameReader reader_;
};

std::string AdmitPayload(std::int64_t id, const LoadEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("admit");
  w.Key("params").BeginObject();
  w.Key("conn").Int(e.conn);
  w.Key("src").Int(e.src);
  w.Key("dst").Int(e.dst);
  w.Key("bw_kbps").Int(e.bw);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ReleasePayload(std::int64_t id, ConnId conn) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("release");
  w.Key("params").BeginObject();
  w.Key("conn").Int(conn);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string StatsPayload(std::int64_t id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("stats");
  w.EndObject();
  return w.str();
}

/// Shared tallies across workers.
struct Tally {
  std::mutex mu;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  std::int64_t admitted = 0;
  std::int64_t blocked = 0;
  std::int64_t released = 0;
  std::int64_t transport_failures = 0;
  std::int64_t aborted = 0;            ///< workers that gave up for good
  std::int64_t overloaded = 0;         ///< shed responses received
  std::int64_t retries = 0;            ///< resends after overloaded
  std::int64_t reconnects = 0;         ///< successful re-Connects
  std::int64_t dup_acks = 0;           ///< conn_exists/not_found-as-success
  std::int64_t deadline_exceeded = 0;  ///< requests abandoned at deadline
  std::vector<std::int64_t> latency_ns;
};

/// What a response payload means before counting it: success, a
/// retryable overload shed, or a terminal error with its taxonomy code.
struct Verdict {
  bool ok = false;
  bool overloaded = false;
  int retry_after_ms = 1;
  std::string code;  ///< error code when !ok (empty if unparseable)
};

Verdict ClassifyResponse(const std::string& payload) {
  Verdict out;
  try {
    const JsonValue v = ParseJson(payload);
    const JsonValue* ok = v.Find("ok");
    if (ok != nullptr && ok->AsBool()) {
      out.ok = true;
      return out;
    }
    if (const JsonValue* err = v.Find("error")) {
      if (const JsonValue* code = err->Find("code")) {
        out.code = code->AsString();
      }
      if (out.code == svc::kErrOverloaded) {
        out.overloaded = true;
        if (const JsonValue* ra = err->Find("retry_after_ms")) {
          out.retry_after_ms =
              std::max<int>(1, static_cast<int>(ra->AsInt64()));
        }
      }
    }
  } catch (const ParseError&) {
  }
  return out;
}

/// Counts one ok response payload into the tally (mu held by caller).
void CountOkResponse(const std::string& payload, Tally& t) {
  ++t.ok;
  try {
    const JsonValue v = ParseJson(payload);
    const JsonValue* result = v.Find("result");
    if (result == nullptr) return;
    if (const JsonValue* admitted = result->Find("admitted")) {
      if (admitted->AsBool()) {
        ++t.admitted;
      } else {
        ++t.blocked;
      }
    } else if (const JsonValue* released = result->Find("released")) {
      if (released->AsBool()) ++t.released;
    }
  } catch (const ParseError&) {
  }
}

/// Jittered sleep: base × U[0.5, 1.5), the decorrelation that keeps a
/// fleet of backed-off clients from re-stampeding in phase.
void SleepJitteredMs(Rng& rng, double base_ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      base_ms * rng.UniformReal(0.5, 1.5)));
}

/// Latency quantiles through the shared obs log-bucket estimator — the
/// same math drtpstat renders live, replacing the old nearest-rank
/// picker over a sorted vector.
struct LatencyQuantiles {
  std::array<std::int64_t, obs::kHistogramBuckets> buckets{};

  void Add(std::int64_t ns) {
    int b = ns <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(ns));
    if (b >= obs::kHistogramBuckets) b = obs::kHistogramBuckets - 1;
    ++buckets[static_cast<std::size_t>(b)];
  }

  double AtNs(double q) const {
    return obs::InterpolateQuantile(buckets.data(), obs::kHistogramBuckets,
                                    q);
  }
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpload");
  auto& socket_path =
      flags.String("socket", "", "daemon socket path (required)");
  auto& mode = flags.String("mode", "closed", "closed|open");
  auto& workers =
      flags.Int64("workers", 2, "closed-loop worker connections", 1, 64);
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate /s (workload)");
  auto& duration =
      flags.Double("duration", 200.0, "workload horizon, seconds (virtual)");
  auto& pattern = flags.String("pattern", "UT", "UT|NT");
  auto& bw = flags.Int64("bw_mbps", 1, "per-connection bandwidth, Mbps");
  auto& seed = flags.Int64("seed", 1, "workload seed");
  auto& rate = flags.Int64(
      "rate", 0, "open-loop send pacing, requests/s (0 = unpaced)", 0,
      1000000);
  auto& deadline_ms = flags.Int64(
      "deadline_ms", 0,
      "per-request deadline across retries/reconnects, milliseconds "
      "(closed loop; 0 = none)",
      0, 600000);
  auto& reconnect_s = flags.Int64(
      "reconnect_s", 30,
      "closed loop: keep retrying a dead socket this long before giving "
      "up (rides out a daemon crash + --recover restart)",
      0, 3600);
  auto& out = flags.String("out", "-", "JSON report file, '-' for stdout");
  flags.Parse(argc, argv);

  if (socket_path.empty()) return Fail("--socket is required");
  if (mode != "closed" && mode != "open") {
    return Fail("unknown --mode '" + mode + "' (closed|open)");
  }

  try {
    // The daemon knows the topology; ask it for the node count so the
    // workload generator needs no topology file.
    RpcClient control;
    std::string error;
    if (!control.Connect(socket_path, &error)) return Fail(error);
    std::string stats0;
    if (!control.Call(StatsPayload(0), &stats0)) {
      return Fail("stats request failed (daemon gone?)");
    }
    const JsonValue v0 = ParseJson(stats0);
    const int nodes =
        static_cast<int>(Field(Field(v0, "result"), "nodes").AsInt64());

    // Same traffic model the simulator replays; the placeholder topology
    // only contributes its node count.
    net::Topology shape;
    for (int i = 0; i < nodes; ++i) shape.AddNode();
    sim::TrafficConfig tc;
    tc.pattern = pattern == "NT" ? sim::TrafficPattern::kHotspot
                                 : sim::TrafficPattern::kUniform;
    tc.lambda = lambda;
    tc.duration = duration;
    tc.bw = Mbps(bw);
    tc.seed = static_cast<std::uint64_t>(seed);
    const std::vector<sim::Request> requests =
        sim::GenerateRequests(shape, tc);

    // Expand to time-ordered admit/release events (the simulator's
    // interleaving), then partition by connection id.
    struct Timed {
      double t;
      LoadEvent e;
    };
    std::vector<Timed> timeline;
    timeline.reserve(requests.size() * 2);
    for (const sim::Request& r : requests) {
      timeline.push_back({r.arrival,
                          {.admit = true,
                           .conn = r.id,
                           .src = r.src,
                           .dst = r.dst,
                           .bw = r.bw}});
      // Releases past the horizon are not sent — connections still alive
      // at the end of the run stay in the daemon's table, so the final
      // stats (P_bk of the admitted set) describe a loaded network, the
      // simulator's measurement-window convention.
      if (r.arrival + r.lifetime < duration) {
        timeline.push_back(
            {r.arrival + r.lifetime, {.admit = false, .conn = r.id}});
      }
    }
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const Timed& a, const Timed& b) { return a.t < b.t; });

    Tally tally;
    const std::int64_t start_ns = MonotonicClock::Instance().NowNs();

    if (mode == "closed") {
      const int w = static_cast<int>(workers);
      std::vector<std::vector<LoadEvent>> shards(
          static_cast<std::size_t>(w));
      for (const Timed& te : timeline) {
        shards[static_cast<std::size_t>(te.e.conn % w)].push_back(te.e);
      }
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(w));
      for (int i = 0; i < w; ++i) {
        threads.emplace_back([&, i] {
          // Per-worker backoff jitter stream: seeded, so a re-run sleeps
          // (and therefore interleaves) the same way.
          Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL +
                  static_cast<std::uint64_t>(i) + 1);
          RpcClient client;
          std::string err;
          bool connected = client.Connect(socket_path, &err);
          std::int64_t next_id = 1;
          std::string response;
          for (const LoadEvent& e : shards[static_cast<std::size_t>(i)]) {
            const std::string payload = e.admit
                                            ? AdmitPayload(next_id, e)
                                            : ReleasePayload(next_id, e.conn);
            ++next_id;
            const std::int64_t deadline_ns =
                deadline_ms > 0 ? MonotonicClock::Instance().NowNs() +
                                      deadline_ms * 1000000
                                : 0;
            // One request, many attempts: reconnects after transport
            // failure, resends after overload, until answered or the
            // deadline passes. `resent` marks a send the daemon may have
            // already executed — only then do conn_exists / not_found
            // read as duplicate acks rather than errors.
            bool resent = false;
            int overload_attempt = 0;
            int reconnect_attempt = 0;
            std::int64_t down_since_ns = 0;
            for (;;) {
              if (deadline_ns > 0 &&
                  MonotonicClock::Instance().NowNs() > deadline_ns) {
                std::lock_guard<std::mutex> l(tally.mu);
                ++tally.deadline_exceeded;
                break;
              }
              if (!connected) {
                const std::int64_t now = MonotonicClock::Instance().NowNs();
                if (down_since_ns == 0) down_since_ns = now;
                if (now - down_since_ns > reconnect_s * 1000000000LL) {
                  // The daemon never came back: record the permanent
                  // failure and abandon this worker's remaining shard
                  // (its releases would all dead-end anyway).
                  std::lock_guard<std::mutex> l(tally.mu);
                  ++tally.transport_failures;
                  ++tally.aborted;
                  return;
                }
                SleepJitteredMs(
                    rng, 5.0 * static_cast<double>(
                                   1 << std::min(reconnect_attempt, 6)));
                ++reconnect_attempt;
                client = RpcClient();
                if (!client.Connect(socket_path, &err)) continue;
                connected = true;
                down_since_ns = 0;
                resent = true;
                std::lock_guard<std::mutex> l(tally.mu);
                ++tally.reconnects;
              }
              const std::int64_t t0 = MonotonicClock::Instance().NowNs();
              if (!client.Call(payload, &response)) {
                connected = false;
                std::lock_guard<std::mutex> l(tally.mu);
                ++tally.transport_failures;
                continue;
              }
              const std::int64_t t1 = MonotonicClock::Instance().NowNs();
              const Verdict verdict = ClassifyResponse(response);
              {
                std::lock_guard<std::mutex> l(tally.mu);
                tally.latency_ns.push_back(t1 - t0);
                if (verdict.ok) {
                  CountOkResponse(response, tally);
                  break;
                }
                if (verdict.overloaded) {
                  ++tally.overloaded;
                  ++tally.retries;
                } else if (resent && e.admit &&
                           verdict.code == svc::kErrConnExists) {
                  // Our pre-crash admit committed; the retry is a dup.
                  ++tally.ok;
                  ++tally.admitted;
                  ++tally.dup_acks;
                  break;
                } else if (resent && !e.admit &&
                           verdict.code == svc::kErrNotFound) {
                  ++tally.ok;
                  ++tally.released;
                  ++tally.dup_acks;
                  break;
                } else {
                  ++tally.errors;
                  break;
                }
              }
              // Overloaded: honor the daemon's hint, escalating
              // exponentially (capped) with jitter, then resend.
              SleepJitteredMs(
                  rng, static_cast<double>(verdict.retry_after_ms) *
                           static_cast<double>(
                               1 << std::min(overload_attempt, 6)));
              ++overload_attempt;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
    } else {
      // Open loop: one connection; a reader thread collects responses
      // while the main thread fires (optionally paced) requests.
      RpcClient client;
      if (!client.Connect(socket_path, &error)) return Fail(error);
      std::mutex stamp_mu;
      std::vector<std::int64_t> stamps(timeline.size() + 1, 0);
      std::thread reader([&] {
        std::string response;
        for (std::size_t i = 0; i < timeline.size(); ++i) {
          if (!client.ReadOne(&response)) {
            std::lock_guard<std::mutex> l(tally.mu);
            ++tally.transport_failures;
            return;
          }
          const std::int64_t t1 = MonotonicClock::Instance().NowNs();
          std::int64_t sent_ns = 0;
          try {
            const std::int64_t id =
                Field(ParseJson(response), "id").AsInt64();
            std::lock_guard<std::mutex> sl(stamp_mu);
            if (id >= 1 && static_cast<std::size_t>(id) < stamps.size()) {
              sent_ns = stamps[static_cast<std::size_t>(id)];
            }
          } catch (const std::exception&) {
          }
          const Verdict verdict = ClassifyResponse(response);
          std::lock_guard<std::mutex> l(tally.mu);
          if (sent_ns > 0) tally.latency_ns.push_back(t1 - sent_ns);
          if (verdict.ok) {
            CountOkResponse(response, tally);
          } else if (verdict.overloaded) {
            // Open loop never retries — a shed is the measurement, not
            // an error: it is exactly what overload pressure looks like.
            ++tally.overloaded;
          } else {
            ++tally.errors;
          }
        }
      });
      const double gap_ns = rate > 0 ? 1e9 / static_cast<double>(rate) : 0.0;
      std::int64_t next_id = 1;
      std::int64_t next_send = MonotonicClock::Instance().NowNs();
      for (const Timed& te : timeline) {
        if (gap_ns > 0) {
          while (MonotonicClock::Instance().NowNs() < next_send) {
            std::this_thread::yield();
          }
          next_send += static_cast<std::int64_t>(gap_ns);
        }
        const std::string payload =
            te.e.admit ? AdmitPayload(next_id, te.e)
                       : ReleasePayload(next_id, te.e.conn);
        {
          std::lock_guard<std::mutex> sl(stamp_mu);
          stamps[static_cast<std::size_t>(next_id)] =
              MonotonicClock::Instance().NowNs();
        }
        ++next_id;
        if (!client.Send(payload)) {
          std::lock_guard<std::mutex> l(tally.mu);
          ++tally.transport_failures;
          break;
        }
      }
      reader.join();
    }

    const std::int64_t wall_ns =
        MonotonicClock::Instance().NowNs() - start_ns;
    const double wall_s = static_cast<double>(wall_ns) / 1e9;

    // Final daemon-side view: P_bk of the admitted set + state digest.
    // The control connection may have died with a crashed daemon while
    // the workers rode it out — reconnect with the same patience.
    std::string stats1;
    {
      Rng rng(static_cast<std::uint64_t>(seed) ^ 0xc0117201ULL);
      const std::int64_t give_up_ns = MonotonicClock::Instance().NowNs() +
                                      reconnect_s * 1000000000LL;
      int attempt = 0;
      while (!control.Call(StatsPayload(1), &stats1)) {
        if (MonotonicClock::Instance().NowNs() > give_up_ns) {
          return Fail("final stats request failed");
        }
        SleepJitteredMs(
            rng, 5.0 * static_cast<double>(1 << std::min(attempt, 6)));
        ++attempt;
        control = RpcClient();
        control.Connect(socket_path, &error);
      }
    }
    const JsonValue v1 = ParseJson(stats1);
    const JsonValue& r1 = Field(v1, "result");

    LatencyQuantiles quantiles;
    double mean_ns = 0.0;
    std::int64_t max_ns = 0;
    for (const std::int64_t ns : tally.latency_ns) {
      quantiles.Add(ns);
      mean_ns += static_cast<double>(ns);
      max_ns = std::max(max_ns, ns);
    }
    if (!tally.latency_ns.empty()) {
      mean_ns /= static_cast<double>(tally.latency_ns.size());
    }

    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("drtp.bench.drtpd/1");
    w.Key("mode").String(mode);
    w.Key("workers").Int(mode == "closed" ? workers : 1);
    w.Key("workload").BeginObject();
    w.Key("pattern").String(pattern);
    w.Key("lambda").Double(lambda);
    w.Key("duration").Double(duration);
    w.Key("bw_mbps").Int(bw);
    w.Key("seed").Int(seed);
    w.Key("requests").Int(static_cast<std::int64_t>(requests.size()));
    w.Key("events").Int(static_cast<std::int64_t>(timeline.size()));
    w.EndObject();
    w.Key("totals").BeginObject();
    w.Key("ok").Int(tally.ok);
    w.Key("errors").Int(tally.errors);
    w.Key("admitted").Int(tally.admitted);
    w.Key("blocked").Int(tally.blocked);
    w.Key("released").Int(tally.released);
    w.Key("transport_failures").Int(tally.transport_failures);
    w.Key("aborted").Int(tally.aborted);
    w.Key("overloaded").Int(tally.overloaded);
    w.Key("retries").Int(tally.retries);
    w.Key("reconnects").Int(tally.reconnects);
    w.Key("dup_acks").Int(tally.dup_acks);
    w.Key("deadline_exceeded").Int(tally.deadline_exceeded);
    w.EndObject();
    w.Key("throughput").BeginObject();
    w.Key("wall_s").Double(wall_s);
    w.Key("requests_per_s")
        .Double(wall_s > 0.0
                    ? static_cast<double>(tally.ok + tally.errors) / wall_s
                    : 0.0);
    w.Key("admissions_per_s")
        .Double(wall_s > 0.0 ? static_cast<double>(tally.admitted) / wall_s
                             : 0.0);
    w.EndObject();
    w.Key("latency_us").BeginObject();
    w.Key("count").Int(static_cast<std::int64_t>(tally.latency_ns.size()));
    w.Key("mean").Double(mean_ns / 1e3);
    w.Key("p50").Double(quantiles.AtNs(0.50) / 1e3);
    w.Key("p90").Double(quantiles.AtNs(0.90) / 1e3);
    w.Key("p95").Double(quantiles.AtNs(0.95) / 1e3);
    w.Key("p99").Double(quantiles.AtNs(0.99) / 1e3);
    w.Key("max").Double(static_cast<double>(max_ns) / 1e3);
    w.EndObject();
    w.Key("daemon").BeginObject();
    w.Key("active").Int(Field(r1, "active").AsInt64());
    w.Key("admitted").Int(Field(r1, "admitted").AsInt64());
    w.Key("blocked").Int(Field(r1, "blocked").AsInt64());
    w.Key("batches").Int(Field(r1, "batches").AsInt64());
    w.Key("pbk").Double(Field(r1, "pbk").AsDouble());
    w.Key("digest").String(Field(r1, "digest").AsString());
    w.Key("audit_violations").Int(Field(r1, "audit_violations").AsInt64());
    w.EndObject();
    w.EndObject();

    if (out == "-") {
      std::printf("%s\n", w.str().c_str());
    } else {
      std::ofstream os(out, std::ios::trunc);
      if (!os.good()) return Fail("cannot write '" + out + "'");
      os << w.str() << '\n';
      std::fprintf(stderr,
                   "drtpload: %lld responses (%lld admitted) in %.2fs -> %s\n",
                   static_cast<long long>(tally.ok + tally.errors),
                   static_cast<long long>(tally.admitted), wall_s,
                   out.c_str());
    }
    // Closed loop tolerates transient transport failures (they were
    // retried through reconnect); only a worker that gave up for good —
    // or any open-loop break, which has no retry path — fails the run.
    const bool failed = tally.aborted > 0 ||
                        (mode == "open" && tally.transport_failures > 0);
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    return Fail(e.what());
  }
}
