// drtpsweep — run an arbitrary evaluation sweep from flags on the
// parallel sweep engine.
//
// The grid is the cross product of --seeds × --degrees × --patterns ×
// --lambdas × --schemes; every cell replays the §6 measurement protocol.
// Results stream to a JSONL file (--out) as cells complete and/or render
// as one aligned table per sweep on stdout. Cell results are bit-identical
// for every --jobs value.
//
// Examples:
//   drtpsweep --fast --jobs=4
//   drtpsweep --degrees=3 --patterns=UT --lambdas=0.2,0.5,0.8
//       --schemes=NoBackup,D-LSR --jobs=0 --out=results.jsonl
//   drtpsweep --lambdas=paper --replications=5 --failures=60 --jobs=8
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/sweep.h"

using namespace drtp;

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<double> ParseDoubles(const std::string& text,
                                 const std::string& flag) {
  std::vector<double> out;
  for (const std::string& item : SplitCsv(text)) {
    try {
      std::size_t used = 0;
      const double v = std::stod(item, &used);
      DRTP_CHECK(used == item.size());
      out.push_back(v);
    } catch (const std::exception&) {
      DRTP_CHECK_MSG(false, "--" << flag << ": bad number '" << item << "'");
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpsweep");
  auto& seed = flags.Int64("seed", 1, "base experiment seed");
  auto& replications = flags.Int64(
      "replications", 1, "independent topology+traffic seeds (seed + r*101)");
  auto& degrees = flags.String("degrees", "3,4", "average node degrees");
  auto& patterns = flags.String("patterns", "UT,NT", "traffic patterns");
  auto& lambdas = flags.String(
      "lambdas", "paper",
      "arrival rates: comma list, or 'paper' (9-point grid) / 'fast'");
  auto& schemes = flags.String(
      "schemes", "D-LSR,P-LSR,BF",
      "comma list of D-LSR|P-LSR|BF|NoBackup|RandomBackup|SD-Backup");
  auto& duration = flags.Double("duration", sim::kPaperDuration,
                                "scenario horizon in seconds");
  auto& fast = flags.Bool("fast", false,
                          "quartered horizon with matched offered load");
  auto& backups = flags.Int64("backups", 1, "backups per connection");
  auto& dedicated =
      flags.Bool("dedicated_spares", false, "disable backup multiplexing");
  auto& refresh =
      flags.Double("lsdb_refresh", 0.0, "advert interval s (0 = instant)");
  auto& failures =
      flags.Int64("failures", 0, "injected link failures per scenario");
  auto& node_failures = flags.Int64(
      "node-failures", 0, "whole-node failures per scenario (schema v2)");
  auto& srlg_failures = flags.Int64(
      "srlg-failures", 0,
      "shared-risk-group failures per scenario (needs --srlg-groups)");
  auto& bursts = flags.Int64(
      "bursts", 0, "simultaneous multi-link failure bursts per scenario");
  auto& burst_size = flags.Int64("burst-size", 3, "distinct links per burst");
  auto& srlg_groups = flags.Int64(
      "srlg-groups", 0,
      "tag generated topologies with this many shared-risk groups");
  auto& mttr = flags.Double("mttr", 300.0, "failure repair time, seconds");
  auto& audit = flags.Bool(
      "audit", false,
      "run the fault::Auditor in every cell; violations stream as "
      "drtp.audit/1 JSONL (--audit-out) and make the sweep exit 3");
  auto& audit_out = flags.String(
      "audit-out", "",
      "write per-cell audit violations (drtp.audit/1 JSONL, cell order) "
      "to this file instead of stderr");
  auto& jobs =
      flags.Int64("jobs", 1, "worker threads (0 = hardware concurrency)");
  auto& out = flags.String(
      "out", "", "append one JSON object per cell to this .jsonl file");
  auto& trace_path = flags.String(
      "trace", "", "write every cell's lifecycle events to this file");
  auto& trace_format = flags.String(
      "trace-format", "jsonl",
      "trace format: jsonl (drtp.trace/1) or chrome (chrome://tracing)");
  auto& metrics_out = flags.String(
      "metrics-out", "",
      "write a drtp.metrics/1 registry snapshot (JSON) after the sweep");
  auto& metrics_timings = flags.Bool(
      "metrics-timings", false,
      "include wall-clock timing histograms in --metrics-out (breaks "
      "byte-stability across runs)");
  auto& table = flags.Bool("table", true, "render the result table");
  auto& progress = flags.Bool("progress", true,
                              "progress to stderr (only when it is a tty)");
  flags.Parse(argc, argv);

  try {
    runner::SweepSpec spec;
    spec.seeds.clear();
    for (std::int64_t r = 0; r < replications; ++r) {
      spec.seeds.push_back(static_cast<std::uint64_t>(seed + r * 101));
    }
    spec.degrees = ParseDoubles(degrees, "degrees");
    spec.patterns.clear();
    for (const std::string& p : SplitCsv(patterns)) {
      if (p == "UT") {
        spec.patterns.push_back(sim::TrafficPattern::kUniform);
      } else if (p == "NT") {
        spec.patterns.push_back(sim::TrafficPattern::kHotspot);
      } else {
        std::fprintf(stderr, "drtpsweep: unknown pattern '%s' (UT|NT)\n",
                     p.c_str());
        return 2;
      }
    }
    if (lambdas == "paper") {
      spec.lambdas = runner::PaperLambdas(false);
    } else if (lambdas == "fast") {
      spec.lambdas = runner::PaperLambdas(true);
    } else {
      spec.lambdas = ParseDoubles(lambdas, "lambdas");
    }
    spec.schemes = SplitCsv(schemes);
    spec.duration = duration;
    spec.fast = fast;
    spec.num_backups = static_cast<int>(backups);
    spec.spare_mode = dedicated ? core::SpareMode::kDedicated
                                : core::SpareMode::kMultiplexed;
    spec.lsdb_refresh_interval = refresh;
    spec.failures = static_cast<int>(failures);
    spec.node_failures = static_cast<int>(node_failures);
    spec.srlg_failures = static_cast<int>(srlg_failures);
    spec.bursts = static_cast<int>(bursts);
    spec.burst_size = static_cast<int>(burst_size);
    spec.srlg_groups = static_cast<int>(srlg_groups);
    spec.mttr = mttr;
    spec.audit = audit;

    runner::SweepEngine engine(spec);
    runner::SweepEngine::RunOptions ro;
    ro.jobs = static_cast<int>(jobs);
    ro.progress = progress && isatty(fileno(stderr)) != 0;
    std::unique_ptr<runner::JsonlSink> jsonl;
    if (!out.empty()) {
      jsonl = std::make_unique<runner::JsonlSink>(out);
      ro.sinks.push_back(jsonl.get());
    }
    std::unique_ptr<runner::TableSink> tsink;
    if (table) {
      tsink = std::make_unique<runner::TableSink>(std::cout);
      ro.sinks.push_back(tsink.get());
    }
    std::unique_ptr<obs::TraceSink> trace;
    if (!trace_path.empty()) {
      if (trace_format == "jsonl") {
        trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
      } else if (trace_format == "chrome") {
        trace = std::make_unique<obs::ChromeTraceSink>(trace_path);
      } else {
        std::fprintf(stderr,
                     "drtpsweep: unknown --trace-format '%s' "
                     "(jsonl|chrome)\n",
                     trace_format.c_str());
        return 2;
      }
      ro.trace = trace.get();
    }

    const auto results = engine.Run(ro);
    if (jsonl != nullptr) {
      std::fprintf(stderr, "wrote %lld JSONL lines to %s\n",
                   static_cast<long long>(jsonl->lines_written()),
                   out.c_str());
    }
    if (!trace_path.empty()) {
      std::fprintf(stderr, "wrote %s trace to %s\n", trace_format.c_str(),
                   trace_path.c_str());
    }
    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
      runner::JsonWriter w;
      snap.WriteJson(w, metrics_timings);
      std::ofstream os(metrics_out, std::ios::trunc);
      DRTP_CHECK_MSG(os.good(), "cannot write '" << metrics_out << "'");
      os << w.str() << '\n';
    }
    if (audit) {
      // Per-cell violation lines, concatenated in cell order so the file
      // is deterministic for any --jobs value.
      std::int64_t checks = 0;
      std::int64_t violations = 0;
      std::string lines;
      for (const runner::CellResult& r : results) {
        checks += r.audit_checks;
        violations += r.audit_violations;
        lines += r.audit_jsonl;
      }
      if (!audit_out.empty()) {
        std::ofstream os(audit_out, std::ios::trunc);
        DRTP_CHECK_MSG(os.good(), "cannot write '" << audit_out << "'");
        os << lines;
      } else {
        std::fputs(lines.c_str(), stderr);
      }
      std::fprintf(stderr,
                   "audit: %lld checks, %lld violations across %zu cells%s\n",
                   static_cast<long long>(checks),
                   static_cast<long long>(violations), results.size(),
                   violations == 0 ? "" : " — INVARIANTS BROKEN");
      if (violations != 0) return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    // Completed cells were already flushed by the engine's sinks before
    // the failure propagated here.
    std::fprintf(stderr, "drtpsweep: %s\n", e.what());
    return 2;
  }
}
