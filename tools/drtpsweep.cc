// drtpsweep — run an arbitrary evaluation sweep from flags on the
// parallel sweep engine.
//
// The grid is the cross product of --seeds × --degrees × --patterns ×
// --lambdas × --schemes; every cell replays the §6 measurement protocol.
// Results stream to a JSONL file (--out) as cells complete and/or render
// as one aligned table per sweep on stdout. Cell results are bit-identical
// for every --jobs value.
//
// Sweeps with --out keep a checkpoint journal (<out>.ckpt) beside the
// results file, so a killed run restarts where it left off with
// --resume, and --shard=i/N partitions the grid across uncoordinated
// processes whose outputs tools/drtpmerge reassembles byte-identically.
//
// Examples:
//   drtpsweep --fast --jobs=4
//   drtpsweep --degrees=3 --patterns=UT --lambdas=0.2,0.5,0.8
//       --schemes=NoBackup,D-LSR --jobs=0 --out=results.jsonl
//   drtpsweep --lambdas=paper --replications=5 --failures=60 --jobs=8
//   drtpsweep --out=results.jsonl --resume        # continue a killed run
//   drtpsweep --out=results.jsonl --shard=2/4     # writes
//       results.shard-2.jsonl (+ .ckpt); merge with drtpmerge
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/checkpoint.h"
#include "runner/sweep.h"

using namespace drtp;

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<double> ParseDoubles(const std::string& text,
                                 const std::string& flag) {
  std::vector<double> out;
  for (const std::string& item : SplitCsv(text)) {
    try {
      std::size_t used = 0;
      const double v = std::stod(item, &used);
      DRTP_CHECK(used == item.size());
      out.push_back(v);
    } catch (const std::exception&) {
      DRTP_CHECK_MSG(false, "--" << flag << ": bad number '" << item << "'");
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpsweep");
  auto& seed = flags.Int64("seed", 1, "base experiment seed");
  auto& replications = flags.Int64(
      "replications", 1, "independent topology+traffic seeds (seed + r*101)",
      1, 1'000'000);
  auto& degrees = flags.String("degrees", "3,4", "average node degrees");
  auto& patterns = flags.String("patterns", "UT,NT", "traffic patterns");
  auto& lambdas = flags.String(
      "lambdas", "paper",
      "arrival rates: comma list, or 'paper' (9-point grid) / 'fast'");
  auto& schemes = flags.String(
      "schemes", "D-LSR,P-LSR,BF",
      "comma list of D-LSR|P-LSR|BF|NoBackup|RandomBackup|SD-Backup|"
      "{D,P}-LSR-SRLG-{SOFT,HARD}|SRLG-PAIR");
  auto& duration = flags.Double("duration", sim::kPaperDuration,
                                "scenario horizon in seconds");
  auto& fast = flags.Bool("fast", false,
                          "quartered horizon with matched offered load");
  auto& backups =
      flags.Int64("backups", 1, "backups per connection", 0, 64);
  auto& dedicated =
      flags.Bool("dedicated_spares", false, "disable backup multiplexing");
  auto& refresh =
      flags.Double("lsdb_refresh", 0.0, "advert interval s (0 = instant)");
  auto& failures = flags.Int64(
      "failures", 0, "injected link failures per scenario", 0, 1'000'000);
  auto& node_failures = flags.Int64(
      "node-failures", 0, "whole-node failures per scenario (schema v2)", 0,
      1'000'000);
  auto& srlg_failures = flags.Int64(
      "srlg-failures", 0,
      "shared-risk-group failures per scenario (needs --srlg-groups)", 0,
      1'000'000);
  auto& bursts = flags.Int64(
      "bursts", 0, "simultaneous multi-link failure bursts per scenario", 0,
      1'000'000);
  auto& burst_size =
      flags.Int64("burst-size", 3, "distinct links per burst", 1, 1'000);
  auto& srlg_groups = flags.Int64(
      "srlg-groups", 0,
      "tag generated topologies with this many shared-risk groups", 0,
      1'000'000);
  auto& mttr = flags.Double("mttr", 300.0, "failure repair time, seconds");
  auto& topo_model = flags.String(
      "topo-model", "waxman",
      "topology model: waxman (paper §6.1; --degrees selects density) or "
      "hier (three-tier ISP hierarchy shaped by the --hier-* flags)");
  auto& hier_backbone = flags.Int64(
      "hier-backbone", 10, "hier: backbone ring size", 3, 1'000'000);
  auto& hier_ppb = flags.Int64(
      "hier-pops-per-backbone", 3, "hier: PoPs per backbone router", 0,
      1'000'000);
  auto& hier_mpp = flags.Int64(
      "hier-metro-per-pop", 32, "hier: metro nodes per PoP", 0, 1'000'000);
  auto& hier_chord_frac = flags.Double(
      "hier-chord-frac", 0.25,
      "hier: extra backbone chords as a fraction of the ring size");
  auto& audit = flags.Bool(
      "audit", false,
      "run the fault::Auditor in every cell; violations stream as "
      "drtp.audit/1 JSONL (--audit-out) and make the sweep exit 3");
  auto& audit_out = flags.String(
      "audit-out", "",
      "write per-cell audit violations (drtp.audit/1 JSONL, cell order) "
      "to this file instead of stderr");
  auto& jobs = flags.Int64(
      "jobs", 1, "worker threads (0 = hardware concurrency)", 0, 4096);
  auto& out = flags.String(
      "out", "",
      "write one JSON object per cell to this .jsonl file (truncates "
      "unless --resume) and keep a checkpoint journal (<out>.ckpt) beside "
      "it");
  auto& resume = flags.Bool(
      "resume", false,
      "continue an interrupted sweep: verify <out>.ckpt against the "
      "partial results, drop any torn tail, rerun only missing cells");
  auto& shard_flag = flags.String(
      "shard", "",
      "run only shard i of N (i/N, cells by index % N); writes "
      "out.shard-i.jsonl + journal for tools/drtpmerge");
  auto& trace_path = flags.String(
      "trace", "", "write every cell's lifecycle events to this file");
  auto& trace_format = flags.String(
      "trace-format", "jsonl",
      "trace format: jsonl (drtp.trace/1) or chrome (chrome://tracing)");
  auto& metrics_out = flags.String(
      "metrics-out", "",
      "write a drtp.metrics/1 registry snapshot (JSON) after the sweep");
  auto& metrics_timings = flags.Bool(
      "metrics-timings", false,
      "include wall-clock timing histograms in --metrics-out (breaks "
      "byte-stability across runs)");
  auto& table = flags.Bool("table", true, "render the result table");
  auto& progress = flags.Bool("progress", true,
                              "progress to stderr (only when it is a tty)");
  flags.Parse(argc, argv);

  try {
    runner::SweepSpec spec;
    spec.seeds.clear();
    for (std::int64_t r = 0; r < replications; ++r) {
      spec.seeds.push_back(static_cast<std::uint64_t>(seed + r * 101));
    }
    spec.degrees = ParseDoubles(degrees, "degrees");
    spec.patterns.clear();
    for (const std::string& p : SplitCsv(patterns)) {
      if (p == "UT") {
        spec.patterns.push_back(sim::TrafficPattern::kUniform);
      } else if (p == "NT") {
        spec.patterns.push_back(sim::TrafficPattern::kHotspot);
      } else {
        std::fprintf(stderr, "drtpsweep: unknown pattern '%s' (UT|NT)\n",
                     p.c_str());
        return 2;
      }
    }
    if (lambdas == "paper") {
      spec.lambdas = runner::PaperLambdas(false);
    } else if (lambdas == "fast") {
      spec.lambdas = runner::PaperLambdas(true);
    } else {
      spec.lambdas = ParseDoubles(lambdas, "lambdas");
    }
    spec.schemes = SplitCsv(schemes);
    spec.duration = duration;
    spec.fast = fast;
    spec.num_backups = static_cast<int>(backups);
    spec.spare_mode = dedicated ? core::SpareMode::kDedicated
                                : core::SpareMode::kMultiplexed;
    spec.lsdb_refresh_interval = refresh;
    spec.failures = static_cast<int>(failures);
    spec.node_failures = static_cast<int>(node_failures);
    spec.srlg_failures = static_cast<int>(srlg_failures);
    spec.bursts = static_cast<int>(bursts);
    spec.burst_size = static_cast<int>(burst_size);
    spec.srlg_groups = static_cast<int>(srlg_groups);
    spec.mttr = mttr;
    spec.audit = audit;
    if (topo_model != "waxman" && topo_model != "hier") {
      std::fprintf(stderr, "drtpsweep: unknown --topo-model '%s' "
                           "(waxman|hier)\n", topo_model.c_str());
      return 2;
    }
    DRTP_CHECK_MSG(hier_chord_frac >= 0.0,
                   "--hier-chord-frac must be >= 0");
    spec.topo_model = topo_model;
    spec.hier.backbone = static_cast<int>(hier_backbone);
    spec.hier.pops_per_backbone = static_cast<int>(hier_ppb);
    spec.hier.metro_per_pop = static_cast<int>(hier_mpp);
    spec.hier.chord_frac = hier_chord_frac;

    runner::ShardAssignment shard;
    if (!shard_flag.empty()) shard = runner::ParseShard(shard_flag);
    if (shard.num_shards > 1 && out.empty()) {
      std::fprintf(stderr, "drtpsweep: --shard requires --out\n");
      return 2;
    }
    if (resume && out.empty()) {
      std::fprintf(stderr, "drtpsweep: --resume requires --out\n");
      return 2;
    }

    runner::SweepEngine engine(spec);
    runner::SweepEngine::RunOptions ro;
    ro.jobs = static_cast<int>(jobs);
    ro.progress = progress && isatty(fileno(stderr)) != 0;

    runner::CheckpointHeader header;
    header.spec_digest = runner::SpecDigest(spec);
    header.num_cells = spec.NumCells();
    header.shard = shard;

    // Every --out sweep is checkpointed: the journal rides beside the
    // sink and costs one extra line per cell, and it is what makes
    // --resume and drtpmerge possible at all.
    std::string sink_path;
    runner::RecoveredCheckpoint recovered;
    std::unique_ptr<runner::CheckpointJournal> journal;
    std::unique_ptr<runner::JsonlSink> jsonl;
    if (!out.empty()) {
      sink_path = runner::ShardedPath(out, shard);
      if (resume) {
        recovered = runner::RecoverCheckpoint(sink_path, header);
        journal = std::make_unique<runner::CheckpointJournal>(
            runner::JournalPathFor(sink_path), /*append=*/!recovered.fresh);
        if (recovered.fresh) journal->WriteHeader(header);
      } else {
        journal = std::make_unique<runner::CheckpointJournal>(
            runner::JournalPathFor(sink_path), /*append=*/false);
        journal->WriteHeader(header);
      }
      jsonl = std::make_unique<runner::JsonlSink>(sink_path,
                                                  /*append=*/resume);
      jsonl->AttachJournal(journal.get());
      ro.sinks.push_back(jsonl.get());
    }
    if (shard.num_shards > 1 || resume) {
      std::vector<std::size_t> todo;
      for (std::size_t k = 0; k < header.num_cells; ++k) {
        if (shard.Owns(k) && !recovered.Done(k)) todo.push_back(k);
      }
      ro.only = std::move(todo);
      if (resume) {
        std::fprintf(stderr,
                     "resume: %zu cells already checkpointed, %zu to run\n",
                     recovered.entries.size(), ro.only->size());
      }
    }
    std::unique_ptr<runner::TableSink> tsink;
    if (table) {
      tsink = std::make_unique<runner::TableSink>(std::cout);
      ro.sinks.push_back(tsink.get());
    }
    std::unique_ptr<obs::TraceSink> trace;
    if (!trace_path.empty()) {
      if (trace_format == "jsonl") {
        trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
      } else if (trace_format == "chrome") {
        trace = std::make_unique<obs::ChromeTraceSink>(trace_path);
      } else {
        std::fprintf(stderr,
                     "drtpsweep: unknown --trace-format '%s' "
                     "(jsonl|chrome)\n",
                     trace_format.c_str());
        return 2;
      }
      ro.trace = trace.get();
    }

    const auto results = engine.Run(ro);
    if (jsonl != nullptr) {
      std::fprintf(stderr, "wrote %lld JSONL lines to %s\n",
                   static_cast<long long>(jsonl->lines_written()),
                   sink_path.c_str());
    }
    if (!trace_path.empty()) {
      std::fprintf(stderr, "wrote %s trace to %s\n", trace_format.c_str(),
                   trace_path.c_str());
    }
    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
      runner::JsonWriter w;
      snap.WriteJson(w, metrics_timings);
      std::ofstream os(metrics_out, std::ios::trunc);
      DRTP_CHECK_MSG(os.good(), "cannot write '" << metrics_out << "'");
      os << w.str() << '\n';
    }
    if (audit) {
      // Per-cell violation lines, concatenated in cell order so the file
      // is deterministic for any --jobs value. A resumed run pulls the
      // already-done cells' evidence out of the journal, so its audit
      // output covers the whole shard, not just the cells it reran.
      std::int64_t checks = 0;
      std::int64_t violations = 0;
      std::vector<std::string> by_cell(spec.NumCells());
      std::size_t cells_seen = results.size();
      for (const runner::CheckpointEntry& e : recovered.entries) {
        checks += e.audit_checks;
        violations += e.audit_violations;
        by_cell[e.cell] = e.audit_jsonl;
        ++cells_seen;
      }
      for (const runner::CellResult& r : results) {
        checks += r.audit_checks;
        violations += r.audit_violations;
        by_cell[r.cell.index] = r.audit_jsonl;
      }
      std::string lines;
      for (const std::string& cell_lines : by_cell) lines += cell_lines;
      if (!audit_out.empty()) {
        std::ofstream os(audit_out, std::ios::trunc);
        DRTP_CHECK_MSG(os.good(), "cannot write '" << audit_out << "'");
        os << lines;
      } else {
        std::fputs(lines.c_str(), stderr);
      }
      std::fprintf(stderr,
                   "audit: %lld checks, %lld violations across %zu cells%s\n",
                   static_cast<long long>(checks),
                   static_cast<long long>(violations), cells_seen,
                   violations == 0 ? "" : " — INVARIANTS BROKEN");
      if (violations != 0) return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    // Completed cells were already flushed by the engine's sinks before
    // the failure propagated here.
    std::fprintf(stderr, "drtpsweep: %s\n", e.what());
    return 2;
  }
}
