#!/usr/bin/env python3
"""Gate the cost of obs instrumentation on the hot-path kernels.

Reads drtp.micro/1 JSON documents from an obs-enabled build and from a
-DDRTP_OBS_DISABLED=ON build of the same revision and fails (exit 1) when
the *median* per-kernel ratio enabled/disabled exceeds the budget
(default 1.05) across the instrumented kernels.

Measurement methodology, tuned for noisy shared CI runners:
  - Accept several runs per side (interleave them when generating!) and
    take the per-kernel minimum — the standard robust estimator for
    "how fast can this code go", which cancels thermal / scheduling
    drift between runs.
  - Gate on the median ratio, not the max: single-kernel jitter
    routinely exceeds 5%, and one kernel (the ~20ns incremental
    publish) is deliberately counter-only yet still pays a visible
    relative cost for its single atomic add (see docs/OBSERVABILITY.md).
    A systematic slowdown moves the whole distribution and still trips
    the gate.

Usage:
  tools/obs_overhead_check.py --enabled A.json [B.json ...] \
      --disabled X.json [Y.json ...] [--budget=1.05]
"""

import json
import statistics
import sys

# Kernels carrying a DRTP_OBS_SPAN / DRTP_OBS_SPAN_SAMPLED or obs counter
# (see bench/micro_engine.cc and the instrumentation sites it times).
INSTRUMENTED = [
    "publish_full",
    "publish_incremental",
    "dijkstra_workspace",
    "backup_select_dlsr",
    "backup_select_plsr",
    "failure_sweep_indexed",
]


def load_kernels(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "drtp.micro/1":
        sys.exit(f"{path}: not a drtp.micro/1 document")
    return {k["name"]: k["ns_per_op"] for k in doc["kernels"]}


def min_over_runs(paths):
    best = {}
    for path in paths:
        for name, ns in load_kernels(path).items():
            best[name] = min(best.get(name, float("inf")), ns)
    return best


def main(argv):
    budget = 1.05
    enabled_paths, disabled_paths, target = [], [], None
    for arg in argv[1:]:
        if arg.startswith("--budget="):
            budget = float(arg.split("=", 1)[1])
        elif arg == "--enabled":
            target = enabled_paths
        elif arg == "--disabled":
            target = disabled_paths
        elif target is not None:
            target.append(arg)
        else:
            sys.exit(__doc__)
    if not enabled_paths or not disabled_paths:
        sys.exit(__doc__)
    enabled = min_over_runs(enabled_paths)
    disabled = min_over_runs(disabled_paths)

    ratios = []
    print(f"{'kernel':<24} {'enabled ns':>12} {'disabled ns':>12} {'ratio':>7}")
    for name in INSTRUMENTED:
        if name not in enabled or name not in disabled:
            sys.exit(f"kernel {name} missing from input")
        ratio = enabled[name] / disabled[name]
        ratios.append(ratio)
        print(f"{name:<24} {enabled[name]:>12.1f} {disabled[name]:>12.1f} "
              f"{ratio:>7.3f}")

    median = statistics.median(ratios)
    print(f"median ratio {median:.3f} (budget {budget:.2f})")
    if median > budget:
        print("FAIL: obs instrumentation overhead exceeds budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
