// drtpstat — live stats poller for drtpd.
//
// Polls a running daemon's `stats` RPC (with the opt-in `metrics` flag)
// and renders a top-like view: engine gauges (active/degraded
// connections, batch depth, reorder-buffer occupancy, request-log size,
// state digest) plus a per-pipeline-stage latency table with
// count/mean/p50/p95/p99, computed through the same log-bucket
// interpolation (`obs::InterpolateQuantile`) the daemon's histograms are
// stored in. Between polls the bucket arrays are differenced, so the
// stage table describes the *last interval*, not the whole uptime —
// `--once` prints a single cumulative snapshot instead.
//
// Usage:
//   drtpstat --socket=/tmp/drtpd.sock                # live, 1 s interval
//   drtpstat --socket=/tmp/drtpd.sock --once         # one snapshot, exit
//   drtpstat --socket=/tmp/drtpd.sock --count=5 --interval=0.2
#include <unistd.h>

#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/json_value.h"
#include "common/socket.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "svc/rpc.h"
#include "svc/wire.h"

using namespace drtp;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drtpstat: %s\n", message.c_str());
  return 2;
}

const JsonValue& Field(const JsonValue& object, std::string_view key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) {
    throw ParseError("daemon response missing field '" + std::string(key) +
                     "'");
  }
  return *v;
}

/// The pipeline stages reported per request, in pipeline order, plus the
/// end-to-end total. Names match the histograms pipeline.cc registers.
struct StageSpec {
  const char* label;
  const char* metric;
};
constexpr StageSpec kStages[] = {
    {"decode", "drtp.svc.stage.decode_ns"},
    {"reorder", "drtp.svc.stage.reorder_ns"},
    {"engine", "drtp.svc.stage.engine_ns"},
    {"respond", "drtp.svc.stage.respond_ns"},
    {"total", "drtp.svc.request_ns"},
};

/// One histogram reconstructed from the drtp.metrics/1 JSON: full bucket
/// array (sparse [edge, count] pairs expanded), count, and sum.
struct HistState {
  std::array<std::int64_t, obs::kHistogramBuckets> buckets{};
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

/// Inverts HistogramBucketUpperEdge: 0 -> bucket 0, -1 (terminal
/// sentinel) -> last bucket, else edge == 2^b - 1 -> bucket b.
int BucketFromEdge(std::int64_t edge) {
  if (edge <= 0) {
    return edge == 0 ? 0 : obs::kHistogramBuckets - 1;
  }
  const int b = std::bit_width(static_cast<std::uint64_t>(edge));
  return b < obs::kHistogramBuckets ? b : obs::kHistogramBuckets - 1;
}

/// Every histogram in a stats-RPC metrics snapshot, by name.
std::map<std::string, HistState> ParseHistograms(const JsonValue& metrics) {
  std::map<std::string, HistState> out;
  for (const JsonValue& h : Field(metrics, "histograms").AsArray()) {
    HistState s;
    s.count = Field(h, "count").AsInt64();
    s.sum = Field(h, "sum").AsInt64();
    for (const JsonValue& pair : Field(h, "buckets").AsArray()) {
      const auto& edge_count = pair.AsArray();
      if (edge_count.size() != 2) {
        throw ParseError("malformed bucket pair in metrics snapshot");
      }
      s.buckets[static_cast<std::size_t>(
          BucketFromEdge(edge_count[0].AsInt64()))] +=
          edge_count[1].AsInt64();
    }
    out.emplace(Field(h, "name").AsString(), std::move(s));
  }
  return out;
}

HistState Delta(const HistState& now, const HistState& prev) {
  HistState d;
  d.count = now.count - prev.count;
  d.sum = now.sum - prev.sum;
  for (std::size_t b = 0; b < d.buckets.size(); ++b) {
    d.buckets[b] = now.buckets[b] - prev.buckets[b];
  }
  return d;
}

std::string StatsPayload(std::int64_t id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(svc::kRpcSchema);
  w.Key("id").Int(id);
  w.Key("method").String("stats");
  w.Key("params").BeginObject();
  w.Key("metrics").Bool(true);
  w.EndObject();
  w.EndObject();
  return w.str();
}

/// Blocking request/response client over the daemon socket.
class RpcClient {
 public:
  bool Connect(const std::string& path, std::string* error) {
    fd_ = ConnectUnix(path, error);
    return fd_.valid();
  }

  bool Call(const std::string& payload, std::string* response) {
    const std::string frame = svc::EncodeFrame(payload);
    if (!SendAll(fd_.get(), frame.data(), frame.size())) return false;
    for (;;) {
      if (auto p = reader_.Next()) {
        *response = std::move(*p);
        return true;
      }
      char buf[64 * 1024];
      const long r = RecvSome(fd_.get(), buf, sizeof buf);
      if (r <= 0) return false;
      reader_.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
    }
  }

 private:
  UniqueFd fd_;
  svc::FrameReader reader_;
};

void RenderSnapshot(const JsonValue& result,
                    const std::map<std::string, HistState>& hists,
                    const std::map<std::string, HistState>* prev,
                    double interval_s) {
  const double gauge_reorder = [&] {
    const JsonValue* metrics = result.Find("metrics");
    if (metrics == nullptr) return 0.0;
    const JsonValue* g =
        Field(*metrics, "gauges").Find("drtp.svc.pipeline.reorder_depth");
    return g != nullptr ? g->AsDouble() : 0.0;
  }();

  std::printf(
      "conns: %lld active, %lld degraded | admitted %lld, blocked %lld, "
      "released %lld, errors %lld\n",
      static_cast<long long>(Field(result, "active").AsInt64()),
      static_cast<long long>(Field(result, "degraded").AsInt64()),
      static_cast<long long>(Field(result, "admitted").AsInt64()),
      static_cast<long long>(Field(result, "blocked").AsInt64()),
      static_cast<long long>(Field(result, "released").AsInt64()),
      static_cast<long long>(Field(result, "errors").AsInt64()));
  std::printf(
      "pipeline: %lld batches (last %lld), reorder depth %.0f, "
      "request log %lld events\n",
      static_cast<long long>(Field(result, "batches").AsInt64()),
      static_cast<long long>(Field(result, "batch_last").AsInt64()),
      gauge_reorder,
      static_cast<long long>(Field(result, "request_log_events").AsInt64()));
  std::printf(
      "network: %lld nodes, %lld links | pbk %.3f | audit %lld/%lld | "
      "digest %s\n",
      static_cast<long long>(Field(result, "nodes").AsInt64()),
      static_cast<long long>(Field(result, "links").AsInt64()),
      Field(result, "pbk").AsDouble(),
      static_cast<long long>(Field(result, "audit_violations").AsInt64()),
      static_cast<long long>(Field(result, "audit_checks").AsInt64()),
      Field(result, "digest").AsString().c_str());

  TextTable t({"stage", "count", "rate/s", "mean us", "p50 us", "p95 us",
               "p99 us"});
  for (const StageSpec& stage : kStages) {
    const auto it = hists.find(stage.metric);
    HistState h = it != hists.end() ? it->second : HistState{};
    if (prev != nullptr) {
      const auto pit = prev->find(stage.metric);
      if (pit != prev->end()) h = Delta(h, pit->second);
    }
    t.BeginRow();
    t.Cell(stage.label);
    t.Cell(h.count);
    t.Cell(interval_s > 0.0 ? static_cast<double>(h.count) / interval_s
                            : 0.0,
           1);
    t.Cell(h.count > 0 ? static_cast<double>(h.sum) /
                             static_cast<double>(h.count) / 1e3
                       : 0.0,
           1);
    t.Cell(obs::InterpolateQuantile(h.buckets.data(), obs::kHistogramBuckets,
                                    0.50) /
               1e3,
           1);
    t.Cell(obs::InterpolateQuantile(h.buckets.data(), obs::kHistogramBuckets,
                                    0.95) /
               1e3,
           1);
    t.Cell(obs::InterpolateQuantile(h.buckets.data(), obs::kHistogramBuckets,
                                    0.99) /
               1e3,
           1);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtpstat");
  auto& socket_path =
      flags.String("socket", "", "daemon socket path (required)");
  auto& interval =
      flags.Double("interval", 1.0, "seconds between polls (live mode)");
  auto& count = flags.Int64(
      "count", 0, "number of polls before exiting (0 = until the daemon "
      "goes away)", 0, 1000000000);
  auto& once = flags.Bool(
      "once", false, "print one cumulative snapshot and exit (no deltas, "
      "no screen clearing)");
  flags.Parse(argc, argv);

  if (socket_path.empty()) return Fail("--socket is required");
  if (interval <= 0.0) return Fail("--interval must be > 0");

  RpcClient client;
  std::string error;
  if (!client.Connect(socket_path, &error)) return Fail(error);

  // Clear the screen between polls only when live on a terminal; piped
  // output (tests, logs) gets sequential snapshots.
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  std::map<std::string, HistState> prev;
  bool have_prev = false;
  std::int64_t id = 0;
  try {
    for (;;) {
      std::string response;
      if (!client.Call(StatsPayload(id++), &response)) {
        if (id == 1) return Fail("stats request failed (daemon gone?)");
        break;  // daemon shut down between polls: normal exit
      }
      const JsonValue v = ParseJson(response);
      const JsonValue* ok = v.Find("ok");
      if (ok == nullptr || !ok->AsBool()) {
        return Fail("daemon answered stats with an error: " + response);
      }
      const JsonValue& result = Field(v, "result");
      std::map<std::string, HistState> hists =
          ParseHistograms(Field(result, "metrics"));

      if (once) {
        RenderSnapshot(result, hists, nullptr, 0.0);
        return 0;
      }
      if (tty && have_prev) std::fputs("\x1b[H\x1b[2J", stdout);
      RenderSnapshot(result, hists, have_prev ? &prev : nullptr,
                     have_prev ? interval : 0.0);
      if (!tty) std::fputs("\n", stdout);
      prev = std::move(hists);
      have_prev = true;
      if (count > 0 && id >= count) return 0;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
  } catch (const std::exception& e) {
    return Fail(e.what());
  }
  return 0;
}
