// drtptrace — summarize a drtp.trace/1 JSONL file.
//
// Reads one schema-versioned JSON object per line (the output of
// `drtpsim run --trace-format=jsonl` or `drtpsweep --trace=...`) and
// prints:
//   - a per-scheme × event-kind count table,
//   - failover-cost percentiles: the hop count of each promoted backup
//     (the paper's proxy for switchover delay — the longer the activated
//     backup, the longer the new primary), and
//   - reestablish gaps: sim-time from a connection's failover or
//     backup-break to its next fresh backup registration.
//
// The parser is deliberately small: it extracts only the fields the
// summary needs from the writer's known one-line layout; unknown keys
// and unrelated lines are skipped.
//
// Usage:
//   drtptrace --in=run.jsonl
//   drtpsim run ... --trace=- --trace-format=jsonl | drtptrace
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/types.h"

using namespace drtp;

namespace {

/// Event kinds in drtp.trace/1, in reporting order.
const char* const kKinds[] = {"request",     "admit",       "block",
                              "release",     "link_fail",   "link_repair",
                              "failover",    "drop",        "backup_break",
                              "reestablish"};
constexpr int kNumKinds = static_cast<int>(std::size(kKinds));

/// Extracts the string value of `"key":"..."` from a one-line JSON
/// object; empty when absent. Handles escaped characters by stopping at
/// the first unescaped quote (keys written by JsonWriter are unescaped
/// ASCII in practice).
std::string FindString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out += line[++i];
    } else if (c == '"') {
      break;
    } else {
      out += c;
    }
  }
  return out;
}

/// Extracts the numeric value of `"key":<number>`; `def` when absent.
double FindNumber(const std::string& line, const std::string& key,
                  double def) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return def;
  pos += needle.size();
  if (pos >= line.size() || line[pos] == '"' || line[pos] == '[' ||
      line[pos] == '{') {
    return def;
  }
  try {
    return std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return def;
  }
}

/// Number of elements in the flat array `"key":[a,b,...]`; -1 when
/// absent. Counts depth-1 commas, so it is only correct for arrays of
/// scalars (the `primary` / `backup` node lists).
int FindArrayLen(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  pos += needle.size();
  if (pos < line.size() && line[pos] == ']') return 0;
  int depth = 1;
  int count = 1;
  for (std::size_t i = pos; i < line.size() && depth > 0; ++i) {
    const char c = line[i];
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == ',' && depth == 1) {
      ++count;
    }
  }
  return count;
}

std::string Quantile(std::vector<double>& values, double q, int prec) {
  if (values.empty()) return "--";
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, values[idx]);
  return buf;
}

struct SchemeStats {
  std::int64_t counts[kNumKinds] = {};
  std::vector<double> promoted_hops;
  std::vector<double> reestablish_gaps;
  /// conn -> time its backup was consumed or broken (awaiting step 4).
  std::map<std::int64_t, double> awaiting_backup;
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtptrace");
  auto& in_path =
      flags.String("in", "-", "drtp.trace/1 JSONL file, '-' for stdin");
  flags.Parse(argc, argv);

  std::ifstream file;
  if (in_path != "-") {
    file.open(in_path);
    if (!file.good()) {
      std::fprintf(stderr, "drtptrace: cannot open '%s'\n", in_path.c_str());
      return 2;
    }
  }
  std::istream& in = in_path == "-" ? std::cin : file;

  std::map<std::string, SchemeStats> schemes;
  std::int64_t lines = 0;
  std::int64_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    if (FindString(line, "schema") != "drtp.trace/1") {
      ++skipped;
      continue;
    }
    const std::string ev = FindString(line, "ev");
    const auto kind =
        std::find(std::begin(kKinds), std::end(kKinds), ev) -
        std::begin(kKinds);
    if (kind == kNumKinds) {
      ++skipped;
      continue;
    }
    std::string scheme = FindString(line, "scheme");
    if (scheme.empty()) scheme = "?";
    SchemeStats& s = schemes[scheme];
    ++s.counts[kind];

    const double t = FindNumber(line, "t", 0.0);
    const auto conn =
        static_cast<std::int64_t>(FindNumber(line, "conn", -1.0));
    if (ev == "failover") {
      const int nodes = FindArrayLen(line, "primary");
      if (nodes >= 2) s.promoted_hops.push_back(nodes - 1);
      if (conn >= 0) s.awaiting_backup.emplace(conn, t);
    } else if (ev == "backup_break") {
      if (conn >= 0) s.awaiting_backup.emplace(conn, t);
    } else if (ev == "reestablish") {
      if (conn >= 0) {
        const auto it = s.awaiting_backup.find(conn);
        if (it != s.awaiting_backup.end()) {
          s.reestablish_gaps.push_back(t - it->second);
          s.awaiting_backup.erase(it);
        }
      }
    }
  }
  if (lines == 0) {
    std::fprintf(stderr, "drtptrace: no input lines\n");
    return 2;
  }

  TextTable counts([] {
    std::vector<std::string> headers{"scheme"};
    for (const char* k : kKinds) headers.emplace_back(k);
    return headers;
  }());
  for (auto& [name, s] : schemes) {
    counts.BeginRow();
    counts.Cell(name);
    for (int k = 0; k < kNumKinds; ++k) counts.Cell(s.counts[k]);
  }
  std::printf("Event counts (%lld lines, %lld skipped):\n",
              static_cast<long long>(lines), static_cast<long long>(skipped));
  std::fputs(counts.Render().c_str(), stdout);

  TextTable fo({"scheme", "failovers", "promoted hops p50", "p90", "p99",
                "reestablish gap p50", "p90"});
  bool any = false;
  for (auto& [name, s] : schemes) {
    if (s.promoted_hops.empty() && s.reestablish_gaps.empty()) continue;
    any = true;
    fo.BeginRow();
    fo.Cell(name);
    fo.Cell(static_cast<std::int64_t>(s.promoted_hops.size()));
    fo.Cell(Quantile(s.promoted_hops, 0.5, 0));
    fo.Cell(Quantile(s.promoted_hops, 0.9, 0));
    fo.Cell(Quantile(s.promoted_hops, 0.99, 0));
    fo.Cell(Quantile(s.reestablish_gaps, 0.5, 3));
    fo.Cell(Quantile(s.reestablish_gaps, 0.9, 3));
  }
  if (any) {
    std::printf("\nFailover cost (promoted-backup hops, step-4 gaps):\n");
    std::fputs(fo.Render().c_str(), stdout);
  }
  return 0;
}
