// drtptrace — summarize a drtp.trace/1 JSONL file.
//
// Reads one schema-versioned JSON object per line (the output of
// `drtpsim run --trace-format=jsonl`, `drtpsweep --trace=...`, or a
// drtpd flight-recorder dump) and prints:
//   - a per-scheme × event-kind count table,
//   - failover-cost percentiles: the hop count of each promoted backup
//     (the paper's proxy for switchover delay — the longer the activated
//     backup, the longer the new primary),
//   - reestablish gaps: sim-time from a connection's failover or
//     backup-break to its next fresh backup registration, and
//   - for flight-recorder dumps (`flight_dump` header + `fr_*` events):
//     the dump reason, per-kind event counts, and a per-pipeline-stage
//     count/mean/p99 latency table over the sampled `fr_rpc_span` events.
//
// The parser is deliberately small: it extracts only the fields the
// summary needs from the writer's known one-line layout; unknown keys
// and unrelated lines are skipped.
//
// Usage:
//   drtptrace --in=run.jsonl
//   drtpsim run ... --trace=- --trace-format=jsonl | drtptrace
//   kill -USR1 <drtpd pid>; drtptrace --in=flight.jsonl
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/types.h"

using namespace drtp;

namespace {

/// Event kinds in drtp.trace/1, in reporting order.
const char* const kKinds[] = {"request",     "admit",       "block",
                              "release",     "link_fail",   "link_repair",
                              "failover",    "drop",        "backup_break",
                              "reestablish"};
constexpr int kNumKinds = static_cast<int>(std::size(kKinds));

/// Extracts the string value of `"key":"..."` from a one-line JSON
/// object; empty when absent. Handles escaped characters by stopping at
/// the first unescaped quote (keys written by JsonWriter are unescaped
/// ASCII in practice).
std::string FindString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out += line[++i];
    } else if (c == '"') {
      break;
    } else {
      out += c;
    }
  }
  return out;
}

/// Extracts the numeric value of `"key":<number>`; `def` when absent.
double FindNumber(const std::string& line, const std::string& key,
                  double def) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return def;
  pos += needle.size();
  if (pos >= line.size() || line[pos] == '"' || line[pos] == '[' ||
      line[pos] == '{') {
    return def;
  }
  try {
    return std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return def;
  }
}

/// Number of elements in the flat array `"key":[a,b,...]`; -1 when
/// absent. Counts depth-1 commas, so it is only correct for arrays of
/// scalars (the `primary` / `backup` node lists).
int FindArrayLen(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  pos += needle.size();
  if (pos < line.size() && line[pos] == ']') return 0;
  int depth = 1;
  int count = 1;
  for (std::size_t i = pos; i < line.size() && depth > 0; ++i) {
    const char c = line[i];
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == ',' && depth == 1) {
      ++count;
    }
  }
  return count;
}

std::string Quantile(std::vector<double>& values, double q, int prec) {
  if (values.empty()) return "--";
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, values[idx]);
  return buf;
}

struct SchemeStats {
  std::int64_t counts[kNumKinds] = {};
  std::vector<double> promoted_hops;
  std::vector<double> reestablish_gaps;
  /// conn -> time its backup was consumed or broken (awaiting step 4).
  std::map<std::int64_t, double> awaiting_backup;
};

/// The per-request pipeline stages a flight-recorder `fr_rpc_span` event
/// carries, in pipeline order (keys as written by the dump).
const char* const kSpanStages[] = {"decode_ns", "reorder_ns", "engine_ns",
                                   "respond_ns"};
constexpr int kNumSpanStages = static_cast<int>(std::size(kSpanStages));

/// Accumulated flight-recorder dump content (`flight_dump` header plus
/// `fr_*` event lines).
struct FlightStats {
  std::vector<std::string> reasons;            ///< one per dump header
  std::map<std::string, std::int64_t> counts;  ///< by kind, "fr_" stripped
  std::vector<double> stage_us[kNumSpanStages];
  std::vector<double> total_us;  ///< per-span sum of all stages

  bool any() const { return !reasons.empty() || !counts.empty(); }
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("drtptrace");
  auto& in_path =
      flags.String("in", "-", "drtp.trace/1 JSONL file, '-' for stdin");
  flags.Parse(argc, argv);

  std::ifstream file;
  if (in_path != "-") {
    file.open(in_path);
    if (!file.good()) {
      std::fprintf(stderr, "drtptrace: cannot open '%s'\n", in_path.c_str());
      return 2;
    }
  }
  std::istream& in = in_path == "-" ? std::cin : file;

  std::map<std::string, SchemeStats> schemes;
  FlightStats flight;
  std::int64_t lines = 0;
  std::int64_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    if (FindString(line, "schema") != "drtp.trace/1") {
      ++skipped;
      continue;
    }
    const std::string ev = FindString(line, "ev");
    if (ev == "flight_dump") {
      std::string reason = FindString(line, "reason");
      flight.reasons.push_back(reason.empty() ? "?" : std::move(reason));
      continue;
    }
    if (ev.rfind("fr_", 0) == 0) {
      ++flight.counts[ev.substr(3)];
      if (ev == "fr_rpc_span") {
        double total = 0.0;
        for (int s = 0; s < kNumSpanStages; ++s) {
          const double ns = FindNumber(line, kSpanStages[s], 0.0);
          flight.stage_us[s].push_back(ns / 1e3);
          total += ns;
        }
        flight.total_us.push_back(total / 1e3);
      }
      continue;
    }
    const auto kind =
        std::find(std::begin(kKinds), std::end(kKinds), ev) -
        std::begin(kKinds);
    if (kind == kNumKinds) {
      ++skipped;
      continue;
    }
    std::string scheme = FindString(line, "scheme");
    if (scheme.empty()) scheme = "?";
    SchemeStats& s = schemes[scheme];
    ++s.counts[kind];

    const double t = FindNumber(line, "t", 0.0);
    const auto conn =
        static_cast<std::int64_t>(FindNumber(line, "conn", -1.0));
    if (ev == "failover") {
      const int nodes = FindArrayLen(line, "primary");
      if (nodes >= 2) s.promoted_hops.push_back(nodes - 1);
      if (conn >= 0) s.awaiting_backup.emplace(conn, t);
    } else if (ev == "backup_break") {
      if (conn >= 0) s.awaiting_backup.emplace(conn, t);
    } else if (ev == "reestablish") {
      if (conn >= 0) {
        const auto it = s.awaiting_backup.find(conn);
        if (it != s.awaiting_backup.end()) {
          s.reestablish_gaps.push_back(t - it->second);
          s.awaiting_backup.erase(it);
        }
      }
    }
  }
  if (lines == 0) {
    std::fprintf(stderr, "drtptrace: no input lines\n");
    return 2;
  }

  if (!schemes.empty() || !flight.any()) {
    TextTable counts([] {
      std::vector<std::string> headers{"scheme"};
      for (const char* k : kKinds) headers.emplace_back(k);
      return headers;
    }());
    for (auto& [name, s] : schemes) {
      counts.BeginRow();
      counts.Cell(name);
      for (int k = 0; k < kNumKinds; ++k) counts.Cell(s.counts[k]);
    }
    std::printf("Event counts (%lld lines, %lld skipped):\n",
                static_cast<long long>(lines),
                static_cast<long long>(skipped));
    std::fputs(counts.Render().c_str(), stdout);
  }

  TextTable fo({"scheme", "failovers", "promoted hops p50", "p90", "p99",
                "reestablish gap p50", "p90"});
  bool any = false;
  for (auto& [name, s] : schemes) {
    if (s.promoted_hops.empty() && s.reestablish_gaps.empty()) continue;
    any = true;
    fo.BeginRow();
    fo.Cell(name);
    fo.Cell(static_cast<std::int64_t>(s.promoted_hops.size()));
    fo.Cell(Quantile(s.promoted_hops, 0.5, 0));
    fo.Cell(Quantile(s.promoted_hops, 0.9, 0));
    fo.Cell(Quantile(s.promoted_hops, 0.99, 0));
    fo.Cell(Quantile(s.reestablish_gaps, 0.5, 3));
    fo.Cell(Quantile(s.reestablish_gaps, 0.9, 3));
  }
  if (any) {
    std::printf("\nFailover cost (promoted-backup hops, step-4 gaps):\n");
    std::fputs(fo.Render().c_str(), stdout);
  }

  if (flight.any()) {
    std::string reasons;
    for (const std::string& r : flight.reasons) {
      if (!reasons.empty()) reasons += ", ";
      reasons += r;
    }
    std::printf("%sFlight recorder (%zu dump%s: %s):\n",
                schemes.empty() ? "" : "\n", flight.reasons.size(),
                flight.reasons.size() == 1 ? "" : "s", reasons.c_str());
    TextTable fr_counts({"event", "count"});
    for (const auto& [kind, n] : flight.counts) {
      fr_counts.BeginRow();
      fr_counts.Cell(kind);
      fr_counts.Cell(n);
    }
    std::fputs(fr_counts.Render().c_str(), stdout);

    if (!flight.total_us.empty()) {
      TextTable spans({"stage", "count", "mean us", "p50 us", "p99 us"});
      const auto add_row = [&spans](const char* label,
                                    std::vector<double>& us) {
        double mean = 0.0;
        for (const double v : us) mean += v;
        mean /= static_cast<double>(us.size());
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.1f", mean);
        spans.BeginRow();
        spans.Cell(label);
        spans.Cell(static_cast<std::int64_t>(us.size()));
        spans.Cell(std::string(buf));
        spans.Cell(Quantile(us, 0.5, 1));
        spans.Cell(Quantile(us, 0.99, 1));
      };
      for (int s = 0; s < kNumSpanStages; ++s) {
        // Strip the "_ns" suffix; the table is rendered in microseconds.
        const std::string label(kSpanStages[s],
                                std::strlen(kSpanStages[s]) - 3);
        add_row(label.c_str(), flight.stage_us[s]);
      }
      add_row("total", flight.total_us);
      std::printf("\nSampled request spans (fr_rpc_span):\n");
      std::fputs(spans.Render().c_str(), stdout);
    }
  }
  return 0;
}
