// drtpsim — command-line front end to the DRTP library.
//
//   drtpsim topo      generate a topology (waxman|grid|ring|star|hier) as
//                     text/DOT
//   drtpsim scenario  generate a scenario file (UT/NT Poisson traffic,
//                     optional injected link failures)
//   drtpsim run       replay a scenario against a routing scheme and print
//                     the full metrics block
//
// Files written by `topo` and `scenario` are the library's own text
// formats (net::WriteTopology / sim::Scenario::Save) and round-trip with
// `run --topo/--scenario`.
//
// Examples:
//   drtpsim topo --kind=waxman --nodes=60 --degree=3 --out=net.topo
//   drtpsim scenario --topo=net.topo --pattern=NT --lambda=0.5 ...
//       --failures=20 --out=run.scn
//   drtpsim run --topo=net.topo --scenario=run.scn --scheme=D-LSR
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "fault/auditor.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/obs_bridge.h"
#include "drtp/drtp.h"
#include "drtp/failure.h"
#include "net/graphio.h"
#include "runner/json.h"
#include "runner/sink.h"
#include "sim/experiment.h"
#include "sim/paper.h"

using namespace drtp;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drtpsim: %s\n", message.c_str());
  return 2;
}

net::Topology LoadTopology(const std::string& path) {
  std::ifstream in(path);
  DRTP_CHECK_MSG(in.good(), "cannot open topology file '" << path << "'");
  return net::ReadTopology(in);
}

int CmdTopo(int argc, char** argv) {
  FlagSet flags("drtpsim topo");
  auto& kind = flags.String("kind", "waxman", "waxman|grid|ring|star|hier");
  auto& model = flags.String(
      "model", "", "alias for --kind (takes precedence when set)");
  auto& nodes = flags.Int64("nodes", 60, "node count (waxman/ring/star)", 2,
                            10'000'000);
  auto& degree = flags.Double("degree", 3.0, "average degree (waxman)");
  auto& rows = flags.Int64("rows", 3, "grid rows", 1, 100'000);
  auto& cols = flags.Int64("cols", 3, "grid cols", 1, 100'000);
  auto& capacity = flags.Int64("capacity_mbps", 30, "link capacity, Mbps", 1,
                               100'000'000);
  auto& hier_backbone = flags.Int64(
      "hier-backbone", 10, "hier: backbone ring size", 3, 1'000'000);
  auto& hier_ppb = flags.Int64(
      "hier-pops-per-backbone", 3, "hier: PoPs per backbone router", 0,
      1'000'000);
  auto& hier_mpp = flags.Int64(
      "hier-metro-per-pop", 32, "hier: metro nodes per PoP", 0, 1'000'000);
  auto& hier_chord_frac = flags.Double(
      "hier-chord-frac", 0.25,
      "hier: extra backbone chords as a fraction of the ring size");
  auto& hier_backbone_mbps = flags.Int64(
      "hier-backbone-mbps", 120, "hier: backbone link capacity, Mbps", 1,
      100'000'000);
  auto& hier_pop_mbps = flags.Int64(
      "hier-pop-mbps", 60, "hier: PoP uplink capacity, Mbps", 1,
      100'000'000);
  auto& hier_metro_mbps = flags.Int64(
      "hier-metro-mbps", 30, "hier: metro ring capacity, Mbps", 1,
      100'000'000);
  auto& srlg_groups = flags.Int64(
      "srlg_groups", 0,
      "tag links with this many shared-risk groups (waxman/hier; 0 = none)",
      0, 1'000'000);
  auto& seed = flags.Int64("seed", 1, "generator seed");
  auto& out = flags.String("out", "-", "output file, '-' for stdout");
  auto& dot = flags.Bool("dot", false, "emit Graphviz DOT instead of text");
  flags.Parse(argc, argv);

  net::Topology topo;
  const Bandwidth cap = Mbps(capacity);
  const std::string& shape = model.empty() ? kind : model;
  if (shape == "waxman") {
    topo = net::MakeWaxman({.nodes = static_cast<int>(nodes),
                            .avg_degree = degree,
                            .link_capacity = cap,
                            .srlg_groups = static_cast<int>(srlg_groups),
                            .seed = static_cast<std::uint64_t>(seed)});
  } else if (shape == "hier") {
    if (hier_chord_frac < 0.0) return Fail("--hier-chord-frac must be >= 0");
    topo = net::MakeHierarchical(
        {.backbone = static_cast<int>(hier_backbone),
         .pops_per_backbone = static_cast<int>(hier_ppb),
         .metro_per_pop = static_cast<int>(hier_mpp),
         .chord_frac = hier_chord_frac,
         .backbone_capacity = Mbps(hier_backbone_mbps),
         .pop_capacity = Mbps(hier_pop_mbps),
         .metro_capacity = Mbps(hier_metro_mbps),
         .srlg_groups = static_cast<int>(srlg_groups),
         .seed = static_cast<std::uint64_t>(seed)});
  } else if (shape == "grid") {
    topo = net::MakeGrid(static_cast<int>(rows), static_cast<int>(cols), cap);
  } else if (shape == "ring") {
    topo = net::MakeRing(static_cast<int>(nodes), cap);
  } else if (shape == "star") {
    topo = net::MakeStar(static_cast<int>(nodes) - 1, cap);
  } else {
    return Fail("unknown --kind '" + shape + "'");
  }
  const std::string text =
      dot ? net::TopologyToDot(topo) : net::TopologyToString(topo);
  if (out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream os(out);
    if (!os.good()) return Fail("cannot write '" + out + "'");
    os << text;
    std::fprintf(stderr, "wrote %s (%d nodes, %d links)\n", out.c_str(),
                 topo.num_nodes(), topo.num_links());
  }
  return 0;
}

int CmdScenario(int argc, char** argv) {
  FlagSet flags("drtpsim scenario");
  auto& topo_path = flags.String("topo", "", "topology file (required)");
  auto& pattern = flags.String("pattern", "UT", "UT|NT");
  auto& lambda = flags.Double("lambda", 0.5, "arrival rate /s");
  auto& duration = flags.Double("duration", sim::kPaperDuration,
                                "request horizon, seconds");
  auto& bw = flags.Int64("bw_mbps", 1, "per-connection bandwidth, Mbps");
  auto& seed = flags.Int64("seed", 1, "traffic seed");
  auto& failures = flags.Int64("failures", 0, "injected link failures");
  auto& node_failures =
      flags.Int64("node_failures", 0, "whole-node failures (schema v2)");
  auto& srlg_failures = flags.Int64(
      "srlg_failures", 0,
      "shared-risk-group failures (needs an SRLG-tagged topology)");
  auto& bursts =
      flags.Int64("bursts", 0, "simultaneous multi-link failure bursts");
  auto& burst_size =
      flags.Int64("burst_size", 3, "distinct links per burst");
  auto& mttr = flags.Double("mttr", 300.0, "repair time, seconds");
  auto& out = flags.String("out", "-", "output file, '-' for stdout");
  flags.Parse(argc, argv);

  if (topo_path.empty()) return Fail("--topo is required");
  const net::Topology topo = LoadTopology(topo_path);

  sim::TrafficConfig tc = sim::MakePaperTraffic(
      pattern == "NT" ? sim::TrafficPattern::kHotspot
                      : sim::TrafficPattern::kUniform,
      lambda, static_cast<std::uint64_t>(seed));
  tc.duration = duration;
  tc.bw = Mbps(bw);
  sim::Scenario sc = sim::Scenario::Generate(topo, tc);
  if (failures > 0) {
    sim::InjectLinkFailures(sc, topo, static_cast<int>(failures),
                            duration * 0.2, duration * 0.95, mttr,
                            static_cast<std::uint64_t>(seed) + 77);
  }
  if (node_failures > 0 || srlg_failures > 0 || bursts > 0) {
    fault::CampaignConfig cc;
    cc.node_failures = static_cast<int>(node_failures);
    cc.srlg_failures = static_cast<int>(srlg_failures);
    cc.bursts = static_cast<int>(bursts);
    cc.burst_size = static_cast<int>(burst_size);
    cc.t_begin = duration * 0.2;
    cc.t_end = duration * 0.95;
    cc.mttr = mttr;
    cc.seed = static_cast<std::uint64_t>(seed) + 88;
    fault::MakeCampaign(topo, cc).InjectInto(sc);
  }
  if (out == "-") {
    sc.Save(std::cout);
  } else {
    std::ofstream os(out);
    if (!os.good()) return Fail("cannot write '" + out + "'");
    sc.Save(os);
    std::fprintf(stderr, "wrote %s (%lld requests, %lld failures)\n",
                 out.c_str(), static_cast<long long>(sc.NumRequests()),
                 static_cast<long long>(sc.NumFailures()));
  }
  return 0;
}

int CmdRun(int argc, char** argv) {
  FlagSet flags("drtpsim run");
  auto& topo_path = flags.String("topo", "", "topology file (required)");
  auto& scenario_path =
      flags.String("scenario", "", "scenario file (required)");
  auto& scheme_name =
      flags.String("scheme", "D-LSR",
                   "D-LSR|P-LSR|BF|NoBackup|RandomBackup|SD-Backup|"
                   "{D,P}-LSR-SRLG-{SOFT,HARD}|SRLG-PAIR");
  auto& warmup_frac =
      flags.Double("warmup_frac", 0.4, "warmup as fraction of the horizon");
  auto& num_backups = flags.Int64("backups", 1, "backups per connection");
  auto& dedicated =
      flags.Bool("dedicated_spares", false, "disable backup multiplexing");
  auto& refresh =
      flags.Double("lsdb_refresh", 0.0, "advert interval s (0 = instant)");
  auto& seed = flags.Int64("seed", 1, "scheme seed (RandomBackup)");
  auto& trace_path =
      flags.String("trace", "", "write an event trace to this file");
  auto& trace_format = flags.String(
      "trace-format", "text",
      "trace format: text (ns-style lines), jsonl (drtp.trace/1), or "
      "chrome (chrome://tracing JSON)");
  auto& metrics_out = flags.String(
      "metrics-out", "",
      "write a drtp.metrics/1 registry snapshot (JSON) to this file");
  auto& metrics_timings = flags.Bool(
      "metrics-timings", false,
      "include wall-clock timing histograms in --metrics-out (breaks "
      "byte-stability across runs)");
  auto& audit = flags.Bool(
      "audit", false,
      "run the fault::Auditor after every replay event; violations stream "
      "as drtp.audit/1 JSONL and make the run exit 3");
  auto& audit_out = flags.String(
      "audit-out", "",
      "write audit violations to this file instead of stderr");
  auto& format = flags.String(
      "format", "table",
      "output format: table, or json (one schema-versioned object)");
  flags.Parse(argc, argv);
  if (format != "table" && format != "json") {
    return Fail("unknown --format '" + format + "' (table|json)");
  }
  if (trace_format != "text" && trace_format != "jsonl" &&
      trace_format != "chrome") {
    return Fail("unknown --trace-format '" + trace_format +
                "' (text|jsonl|chrome)");
  }

  if (topo_path.empty()) return Fail("--topo is required");
  if (scenario_path.empty()) return Fail("--scenario is required");
  const net::Topology topo = LoadTopology(topo_path);
  std::ifstream sin(scenario_path);
  if (!sin.good()) return Fail("cannot open '" + scenario_path + "'");
  const sim::Scenario sc = sim::Scenario::Load(sin);

  sim::ExperimentConfig ec;
  ec.warmup = sc.traffic.duration * warmup_frac;
  ec.sample_interval = sc.traffic.duration / 50.0;
  ec.num_backups = static_cast<int>(num_backups);
  ec.spare_mode = dedicated ? core::SpareMode::kDedicated
                            : core::SpareMode::kMultiplexed;
  ec.lsdb_refresh_interval = refresh;
  std::ofstream trace_file;
  std::unique_ptr<sim::TextTraceSink> trace;
  std::unique_ptr<obs::TraceSink> obs_trace;
  std::unique_ptr<sim::ObsBridge> bridge;
  if (!trace_path.empty()) {
    if (trace_format == "text") {
      trace_file.open(trace_path);
      if (!trace_file.good()) {
        return Fail("cannot write '" + trace_path + "'");
      }
      trace = std::make_unique<sim::TextTraceSink>(trace_file);
      ec.trace = trace.get();
    } else {
      if (trace_format == "jsonl") {
        obs_trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
      } else {
        obs_trace = std::make_unique<obs::ChromeTraceSink>(trace_path);
      }
      bridge = std::make_unique<sim::ObsBridge>(*obs_trace, scheme_name);
      ec.trace = bridge.get();
    }
  }
  auto scheme = sim::MakeScheme(scheme_name, topo,
                                static_cast<std::uint64_t>(seed));
  std::ofstream audit_file;
  std::unique_ptr<fault::Auditor> auditor;
  if (audit) {
    fault::AuditorOptions ao;
    if (!audit_out.empty()) {
      audit_file.open(audit_out, std::ios::trunc);
      if (!audit_file.good()) return Fail("cannot write '" + audit_out + "'");
      ao.out = &audit_file;
    } else {
      ao.out = &std::cerr;
    }
    ao.require_srlg_disjoint = scheme->requires_srlg_disjoint_backup();
    auditor = std::make_unique<fault::Auditor>(ao);
    ec.after_event = [&auditor](const core::DrtpNetwork& net, Time t,
                                std::string_view event,
                                const core::SwitchoverReport* report) {
      auditor->Check(net, t, event, report);
    };
  }
  const sim::RunMetrics m = sim::RunScenario(topo, sc, *scheme, ec);
  if (obs_trace != nullptr) obs_trace->Finish();
  int exit_code = 0;
  if (auditor != nullptr) {
    std::fprintf(stderr,
                 "audit: %lld checks, %lld violations%s\n",
                 static_cast<long long>(auditor->checks()),
                 static_cast<long long>(auditor->violation_count()),
                 auditor->ok() ? "" : " — INVARIANTS BROKEN");
    if (!auditor->ok()) exit_code = 3;
  }
  if (trace != nullptr) {
    std::fprintf(stderr, "wrote %lld trace lines to %s\n",
                 static_cast<long long>(trace->lines_written()),
                 trace_path.c_str());
  } else if (obs_trace != nullptr) {
    std::fprintf(stderr, "wrote %s trace to %s\n", trace_format.c_str(),
                 trace_path.c_str());
  }
  if (!metrics_out.empty()) {
    const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
    runner::JsonWriter w;
    snap.WriteJson(w, metrics_timings);
    std::ofstream os(metrics_out, std::ios::trunc);
    if (!os.good()) return Fail("cannot write '" + metrics_out + "'");
    os << w.str() << '\n';
  }

  if (format == "json") {
    runner::JsonWriter w;
    w.BeginObject();
    w.Key("schema").String(runner::kRunJsonSchema);
    w.Key("topo").String(topo_path);
    w.Key("scenario").String(scenario_path);
    w.Key("seed").Int(seed);
    w.Key("metrics").BeginObject();
    runner::WriteRunMetrics(w, m);
    w.EndObject();
    if (auditor != nullptr) {
      w.Key("audit").BeginObject();
      w.Key("checks").Int(auditor->checks());
      w.Key("violations").Int(auditor->violation_count());
      w.EndObject();
    }
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return exit_code;
  }

  TextTable t({"metric", "value"});
  const auto row = [&](const std::string& k, const std::string& v) {
    t.BeginRow();
    t.Cell(k);
    t.Cell(v);
  };
  char buf[64];
  const auto num = [&](double x, int prec) {
    if (std::isnan(x)) return std::string("--");
    std::snprintf(buf, sizeof buf, "%.*f", prec, x);
    return std::string(buf);
  };
  row("scheme", m.scheme);
  row("requests", std::to_string(m.requests));
  row("admitted", std::to_string(m.admitted));
  row("blocked", std::to_string(m.blocked));
  row("protected", std::to_string(m.with_backup));
  row("P_bk (what-if)", num(m.pbk.value(), 4));
  if (m.pbk_srlg.trials > 0) {
    row("P_bk^srlg (backup survives group failure)",
        num(m.pbk_srlg.value(), 4));
  }
  row("avg active connections", num(m.avg_active, 1));
  row("avg primary hops", num(m.primary_hops.mean(), 2));
  row("avg backup hops", num(m.backup_hops.mean(), 2));
  row("avg prime bw (Mbps)", num(m.prime_bw.mean() / 1000.0, 1));
  row("avg spare bw (Mbps)", num(m.spare_bw.mean() / 1000.0, 1));
  row("control msgs", std::to_string(m.control_messages));
  row("control bytes", std::to_string(m.control_bytes));
  row("overbooked hops", std::to_string(m.overbooked_hops));
  if (m.failures_enacted > 0) {
    row("failures enacted", std::to_string(m.failures_enacted));
    row("failovers recovered", std::to_string(m.failover_recovered));
    row("failovers dropped", std::to_string(m.failover_dropped));
    row("backups broken", std::to_string(m.backups_broken));
    row("backups re-established", std::to_string(m.backups_reestablished));
    row("enacted recovery ratio", num(m.EnactedRecoveryRatio(), 4));
  }
  if (m.degraded > 0) {
    row("degraded (unprotected)", std::to_string(m.degraded));
    row("re-protect retries", std::to_string(m.reprotect_retries));
    row("re-protect recovered", std::to_string(m.reprotect_recovered));
    row("re-protect exhausted", std::to_string(m.reprotect_exhausted));
  }
  std::fputs(t.Render().c_str(), stdout);
  return exit_code;
}

// Replays a scenario, then audits the final network: which links would
// hurt most if they failed right now, and which are overbooked.
int CmdAudit(int argc, char** argv) {
  FlagSet flags("drtpsim audit");
  auto& topo_path = flags.String("topo", "", "topology file (required)");
  auto& scenario_path =
      flags.String("scenario", "", "scenario file (required)");
  auto& scheme_name = flags.String("scheme", "D-LSR", "routing scheme");
  auto& worst = flags.Int64("worst", 10, "how many risky links to list");
  auto& seed = flags.Int64("seed", 1, "scheme seed");
  flags.Parse(argc, argv);
  if (topo_path.empty()) return Fail("--topo is required");
  if (scenario_path.empty()) return Fail("--scenario is required");
  const net::Topology topo = LoadTopology(topo_path);
  std::ifstream sin(scenario_path);
  if (!sin.good()) return Fail("cannot open '" + scenario_path + "'");
  const sim::Scenario sc = sim::Scenario::Load(sin);

  sim::ExperimentConfig ec;
  ec.warmup = sc.traffic.duration * 0.4;
  ec.sample_interval = sc.traffic.duration / 50.0;
  ec.inspect_final = [&](const core::DrtpNetwork& net) {
    struct Risk {
      LinkId link;
      core::FailureImpact impact;
    };
    std::vector<Risk> risks;
    for (LinkId l = 0; l < net.topology().num_links(); ++l) {
      if (!net.IsLinkUp(l)) continue;
      const auto impact = core::EvaluateLinkFailure(net, l);
      if (impact.attempts > 0) risks.push_back({l, impact});
    }
    std::sort(risks.begin(), risks.end(), [](const Risk& a, const Risk& b) {
      return (a.impact.attempts - a.impact.activated) >
             (b.impact.attempts - b.impact.activated);
    });
    TextTable t({"link", "route", "primaries hit", "would recover",
                 "would drop"});
    for (std::size_t i = 0;
         i < risks.size() && i < static_cast<std::size_t>(worst); ++i) {
      const auto& r = risks[i];
      const net::Link& link = net.topology().link(r.link);
      t.BeginRow();
      t.Cell(std::to_string(r.link));
      t.Cell(std::to_string(link.src) + "->" + std::to_string(link.dst));
      t.Cell(static_cast<std::int64_t>(r.impact.attempts));
      t.Cell(static_cast<std::int64_t>(r.impact.activated));
      t.Cell(static_cast<std::int64_t>(r.impact.attempts -
                                       r.impact.activated));
    }
    std::printf("\nRiskiest links at end of replay:\n");
    std::fputs(t.Render().c_str(), stdout);
    const auto overbooked = net.OverbookedLinks();
    std::printf("\noverbooked spare pools: %zu links\n", overbooked.size());
  };
  auto scheme = sim::MakeScheme(scheme_name, topo,
                                static_cast<std::uint64_t>(seed));
  const sim::RunMetrics m = sim::RunScenario(topo, sc, *scheme, ec);
  std::printf("replayed %lld requests with %s: P_bk = %.4f, %.1f avg active\n",
              static_cast<long long>(m.requests), m.scheme.c_str(),
              m.pbk.value(), m.avg_active);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: drtpsim <topo|scenario|run|audit> [flags]\n"
                 "       drtpsim <command> --help for details\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    // Shift argv so each subcommand's FlagSet sees its own flags.
    if (cmd == "topo") return CmdTopo(argc - 1, argv + 1);
    if (cmd == "scenario") return CmdScenario(argc - 1, argv + 1);
    if (cmd == "run") return CmdRun(argc - 1, argv + 1);
    if (cmd == "audit") return CmdAudit(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    // Library invariants (CheckError) double as argument validation here;
    // surface them as ordinary CLI errors rather than std::terminate.
    return Fail(e.what());
  }
  return Fail("unknown command '" + cmd + "'");
}
