// Fault-injection campaigns.
//
// A FaultPlan is a structured list of faults — single links, whole nodes,
// SRLGs (shared-risk link groups) and simultaneous bursts — that compiles
// into scenario events (schema v2), so a campaign replays through the
// ordinary deterministic RunScenario path and every routing scheme sees
// the identical fault sequence. MakeCampaign draws a seeded random
// campaign; InjectMidRecoveryPair drives the timed protocol engine into
// the failure-during-recovery window that atomic replay cannot reach.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "proto/engine.h"
#include "sim/event_queue.h"
#include "sim/scenario.h"

namespace drtp::fault {

/// One scheduled fault.
struct FaultSpec {
  enum class Kind {
    kLink,   // one directed link
    kNode,   // every link incident to a node
    kSrlg,   // every link in a shared-risk group
    kBurst,  // an explicit set of links failing at the same instant
  };
  Kind kind = Kind::kLink;
  Time at = 0.0;
  /// Repair delay; 0 = never repaired.
  Time mttr = 0.0;
  LinkId link = kInvalidLink;
  NodeId node = kInvalidNode;
  SrlgId srlg = kInvalidSrlg;
  /// kBurst members (each expands to its own fail/repair event pair at
  /// the shared instant — the correlated set a simultaneous-timestamp
  /// replay enacts back-to-back).
  std::vector<LinkId> burst;
};

/// An ordered fault campaign.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Compiles the faults into scenario events and merges them into
  /// `scenario`'s event list in time order. Node/SRLG faults make the
  /// scenario require schema v2.
  void InjectInto(sim::Scenario& scenario) const;
};

/// Knobs for a seeded random campaign.
struct CampaignConfig {
  int link_failures = 0;
  int node_failures = 0;
  int srlg_failures = 0;
  /// Simultaneous multi-link bursts of `burst_size` distinct links each.
  int bursts = 0;
  int burst_size = 3;
  /// Fault instants are drawn uniformly in [t_begin, t_end].
  Time t_begin = 0.0;
  Time t_end = 1.0;
  /// Mean time to repair applied to every fault.
  Time mttr = 300.0;
  std::uint64_t seed = 1;
};

/// Draws a deterministic random campaign over `topo`. SRLG faults require
/// the topology to carry risk groups (topo.has_srlgs()); requesting them
/// on an untagged topology is a checked error.
FaultPlan MakeCampaign(const net::Topology& topo,
                       const CampaignConfig& config);

/// Adversarial mid-recovery timing for the message-level engine: injects
/// `first` at the queue's current time and `second` a fraction of the
/// failure-detection delay later — inside the window where `first` has
/// been detected but its recovery choreography is still in flight.
void InjectMidRecoveryPair(proto::ProtocolEngine& engine,
                           sim::EventQueue& queue, LinkId first,
                           LinkId second, proto::RecoveryMode mode,
                           double fraction = 0.5);

}  // namespace drtp::fault
