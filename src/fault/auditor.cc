#include "fault/auditor.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "drtp/manager.h"
#include "lsdb/aplv.h"
#include "routing/path.h"

namespace drtp::fault {
namespace {

bool SpanEquals(std::span<const ConnId> a, const std::vector<ConnId>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

std::string IdList(std::span<const ConnId> ids) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << " ";
    os << ids[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

Auditor::Auditor(AuditorOptions options) : options_(std::move(options)) {
  DRTP_CHECK(options_.stride >= 1);
}

void Auditor::Check(const core::DrtpNetwork& net, Time t,
                    std::string_view event,
                    const core::SwitchoverReport* report) {
  const bool forced = report != nullptr || event == "final";
  const bool due = (calls_++ % options_.stride) == 0;
  if (forced || due) Audit(net, t, event, report);
}

void Auditor::Record(AuditViolation v) {
  ++violation_count_;
  if (violations_.size() >= options_.max_recorded) return;
  if (options_.out != nullptr) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("drtp.audit/1");
    w.Key("t").Double(v.t);
    w.Key("event").String(v.event);
    w.Key("invariant").String(v.invariant);
    if (v.link != kInvalidLink) w.Key("link").Int(v.link);
    if (v.conn != kInvalidConn) w.Key("conn").Int(v.conn);
    if (options_.cell >= 0) w.Key("cell").Int(options_.cell);
    w.Key("detail").String(v.detail);
    w.EndObject();
    *options_.out << w.str() << '\n';
    options_.out->flush();
  }
  violations_.push_back(std::move(v));
}

void Auditor::Audit(const core::DrtpNetwork& net, Time t,
                    std::string_view event,
                    const core::SwitchoverReport* report) {
  ++checks_;
  const net::Topology& topo = net.topology();
  const int num_links = topo.num_links();
  const auto idx = [](LinkId l) { return static_cast<std::size_t>(l); };
  const auto fail = [&](std::string invariant, std::string detail,
                        LinkId link = kInvalidLink,
                        ConnId conn = kInvalidConn) {
    Record(AuditViolation{.invariant = std::move(invariant),
                          .detail = std::move(detail),
                          .t = t,
                          .event = std::string(event),
                          .link = link,
                          .conn = conn});
  };

  // ---- ground truth rebuilt from the connection table alone -------------
  std::vector<Bandwidth> prime(idx(num_links), 0);
  std::vector<lsdb::Aplv> aplv(idx(num_links), lsdb::Aplv(num_links));
  std::vector<core::DemandVector> demand(idx(num_links),
                                         core::DemandVector(num_links));
  const bool tagged = topo.has_srlgs();
  std::vector<lsdb::SrlgVector> srlg_aplv(
      idx(num_links), tagged ? lsdb::SrlgVector(topo.num_srlgs(), num_links)
                             : lsdb::SrlgVector());
  const auto srlg_of = [&](LinkId l) { return topo.srlg(l); };
  std::vector<Bandwidth> backup_bw(idx(num_links), 0);
  std::vector<std::vector<ConnId>> prim_on(idx(num_links));
  std::vector<std::vector<ConnId>> back_on(idx(num_links));

  std::vector<SrlgId> primary_groups;
  for (const auto& [id, conn] : net.connections()) {
    if (conn.primary_lset != conn.primary.ToLinkSet()) {
      fail("conn.lset_cache", "cached primary LSET diverges from route",
           kInvalidLink, id);
    }
    for (const LinkId l : conn.primary.links()) {
      prime[idx(l)] += conn.bw;
      prim_on[idx(l)].push_back(id);
    }
    for (std::size_t i = 0; i < conn.backups.size(); ++i) {
      for (std::size_t j = i + 1; j < conn.backups.size(); ++j) {
        if (!conn.backups[i].LinkDisjoint(conn.backups[j])) {
          std::ostringstream os;
          os << "backups " << i << " and " << j << " share a link";
          fail("conn.backup_overlap", os.str(), kInvalidLink, id);
        }
      }
      // Partial primary overlap is a scheme tradeoff (BF minimizes, LSR
      // shuns), but a backup covering EVERY primary link protects nothing:
      // any primary failure takes the backup down with it.
      if (conn.primary.hops() > 0 &&
          conn.backups[i].OverlapCount(conn.primary) == conn.primary.hops()) {
        std::ostringstream os;
        os << "backup " << i << " covers every primary link";
        fail("conn.backup_shadows_primary", os.str(), kInvalidLink, id);
      }
      for (const LinkId l : conn.backups[i].links()) {
        aplv[idx(l)].AddPrimaryLset(conn.primary_lset);
        demand[idx(l)].Add(conn.primary_lset, conn.bw);
        if (tagged) srlg_aplv[idx(l)].AddLset(conn.primary_lset, srlg_of);
        backup_bw[idx(l)] += conn.bw;
        auto& v = back_on[idx(l)];
        if (v.empty() || v.back() != id) v.push_back(id);
      }
    }
    // SRLG disjointness, when the scheme promises it: a backup touching a
    // link that fails together with the primary protects nothing against
    // that group's failure.
    if (options_.require_srlg_disjoint && tagged) {
      primary_groups.clear();
      for (const LinkId l : conn.primary.links()) {
        const SrlgId g = topo.srlg(l);
        if (g != kInvalidSrlg) primary_groups.push_back(g);
      }
      std::sort(primary_groups.begin(), primary_groups.end());
      primary_groups.erase(
          std::unique(primary_groups.begin(), primary_groups.end()),
          primary_groups.end());
      if (!primary_groups.empty()) {
        for (std::size_t i = 0; i < conn.backups.size(); ++i) {
          for (const LinkId l : conn.backups[i].links()) {
            const SrlgId g = topo.srlg(l);
            if (g != kInvalidSrlg &&
                std::binary_search(primary_groups.begin(),
                                   primary_groups.end(), g)) {
              std::ostringstream os;
              os << "backup " << i << " link " << l
                 << " shares risk group " << g << " with the primary";
              fail("conn.backup_shares_srlg", os.str(), l, id);
            }
          }
        }
      }
    }
  }

  const net::BandwidthLedger& ledger = net.ledger();
  const std::vector<LinkId> overbooked = net.OverbookedLinks();
  for (LinkId l = 0; l < num_links; ++l) {
    // Ledger conservation and pool sanity.
    const Bandwidth cap = topo.link(l).capacity;
    if (ledger.total(l) != cap) {
      std::ostringstream os;
      os << "ledger total " << ledger.total(l) << " != capacity " << cap;
      fail("ledger.total", os.str(), l);
    }
    if (ledger.prime(l) < 0 || ledger.spare(l) < 0 || ledger.free(l) < 0) {
      std::ostringstream os;
      os << "negative pool: prime " << ledger.prime(l) << " spare "
         << ledger.spare(l) << " free " << ledger.free(l);
      fail("ledger.negative_pool", os.str(), l);
    }
    if (ledger.prime(l) != prime[idx(l)]) {
      std::ostringstream os;
      os << "ledger prime " << ledger.prime(l) << " != sum of primaries "
         << prime[idx(l)];
      fail("ledger.prime_conservation", os.str(), l);
    }

    // APLV bit-equality against the from-scratch rebuild.
    if (!(net.aplv(l) == aplv[idx(l)])) {
      fail("aplv.mismatch", "incremental APLV != rebuilt APLV", l);
    }
    if (tagged &&
        !(net.manager(topo.link(l).src).managed(l).srlg_aplv ==
          srlg_aplv[idx(l)])) {
      fail("srlg.aggregate_mismatch",
           "incremental per-SRLG aggregate != rebuilt aggregate", l);
    }

    // Spare-pool sufficiency: the manager's target must equal the §5 rule
    // recomputed from scratch, and the pool must meet it unless free
    // bandwidth is exhausted (then the link must be flagged overbooked).
    const auto& mgr = net.manager(topo.link(l).src);
    const Bandwidth want =
        net.config().spare_mode == core::SpareMode::kMultiplexed
            ? demand[idx(l)].Max()
            : backup_bw[idx(l)];
    const Bandwidth target = mgr.SpareTarget(l);
    if (target != want) {
      std::ostringstream os;
      os << "manager target " << target << " != rebuilt max-demand "
         << want;
      fail("spare.target_drift", os.str(), l);
    }
    const Bandwidth spare = ledger.spare(l);
    if (spare > target) {
      std::ostringstream os;
      os << "spare " << spare << " exceeds target " << target;
      fail("spare.exceeds_target", os.str(), l);
    } else if (spare < target) {
      if (ledger.free(l) != 0) {
        std::ostringstream os;
        os << "spare " << spare << " below target " << target << " with "
           << ledger.free(l) << " free";
        fail("spare.underprovisioned", os.str(), l);
      }
      if (!std::binary_search(overbooked.begin(), overbooked.end(), l)) {
        fail("spare.overbooked_untracked",
             "spare below target but link not in OverbookedLinks", l);
      }
    }

    // Reverse-index agreement.
    if (!SpanEquals(net.PrimaryConnsOn(l), prim_on[idx(l)])) {
      fail("index.primary",
           "index " + IdList(net.PrimaryConnsOn(l)) + " != table " +
               IdList(prim_on[idx(l)]),
           l);
    }
    auto& eb = back_on[idx(l)];
    std::sort(eb.begin(), eb.end());
    eb.erase(std::unique(eb.begin(), eb.end()), eb.end());
    if (!SpanEquals(net.BackupConnsOn(l), eb)) {
      fail("index.backup",
           "index " + IdList(net.BackupConnsOn(l)) + " != table " +
               IdList(eb),
           l);
    }
  }

  // Down-link mirror: sorted, unique, agreeing with IsLinkUp, and duplex
  // halves failing together when the network is configured that way.
  const std::vector<LinkId>& down = net.down_links();
  if (!std::is_sorted(down.begin(), down.end()) ||
      std::adjacent_find(down.begin(), down.end()) != down.end()) {
    fail("links.down_mirror", "down_links not sorted/unique");
  }
  for (LinkId l = 0; l < num_links; ++l) {
    const bool listed =
        std::binary_search(down.begin(), down.end(), l);
    if (listed == net.IsLinkUp(l)) {
      fail("links.down_mirror",
           listed ? "listed down but reports up" : "down but unlisted", l);
    }
    if (net.config().duplex_failures && !net.IsLinkUp(l)) {
      const LinkId rev = topo.link(l).reverse;
      if (rev != kInvalidLink && net.IsLinkUp(rev)) {
        fail("links.duplex_pair", "reverse half still up", l);
      }
    }
  }

  // Switchover-report sanity for enacted failures.
  if (report != nullptr) {
    for (const ConnId id : report->recovered) {
      if (std::find(report->dropped.begin(), report->dropped.end(), id) !=
          report->dropped.end()) {
        fail("report.recovered_and_dropped",
             "connection both recovered and dropped", kInvalidLink, id);
      }
      if (net.Find(id) == nullptr) {
        fail("report.recovered_missing",
             "recovered connection absent from table", kInvalidLink, id);
      }
    }
    for (const ConnId id : report->dropped) {
      if (net.Find(id) != nullptr) {
        fail("report.dropped_present",
             "dropped connection still in table", kInvalidLink, id);
      }
    }
    for (const ConnId id : report->rerouted) {
      const core::DrConnection* conn = net.Find(id);
      if (conn == nullptr || !conn->has_backup()) {
        fail("report.rerouted_unprotected",
             "rerouted connection has no backup", kInvalidLink, id);
      }
    }
  }
}

}  // namespace drtp::fault
