// Runtime invariant auditor (the "flight recorder" for fault campaigns).
//
// After every simulator or protocol-engine event the auditor re-derives
// ground truth from the connection table alone and compares it with the
// incrementally maintained state:
//   - bandwidth-ledger conservation per link (prime == Σ bw of primaries
//     crossing the link; pools non-negative; total == capacity),
//   - spare-pool sufficiency (spare == target unless free bandwidth is
//     exhausted, with the §5 target max_j demand[j] rebuilt from scratch),
//   - APLV bit-equality against a from-scratch rebuild,
//   - reverse-index ↔ connection-table agreement,
//   - down-link mirror integrity (and the duplex pairing when enabled),
//   - switchover-report sanity (no connection both recovered and dropped,
//     dropped connections gone, recovered ones present),
//   - per-SRLG APLV aggregate bit-equality on tagged topologies, and
//     (opt-in, for schemes that promise it) backup/primary SRLG
//     disjointness.
//
// Unlike DrtpNetwork::CheckConsistency (which throws CheckError at the
// first mismatch) the auditor records *every* violation, optionally
// streams them as `drtp.audit/1` JSONL records, and lets the caller
// decide how to fail — tools exit nonzero when violations() is nonempty.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "drtp/failure.h"
#include "drtp/network.h"

namespace drtp::fault {

/// One observed invariant violation.
struct AuditViolation {
  /// Stable dotted identifier, e.g. "ledger.prime_conservation",
  /// "spare.exceeds_target", "aplv.mismatch", "index.primary",
  /// "links.down_mirror", "report.recovered_missing".
  std::string invariant;
  /// Human-readable specifics (expected vs actual).
  std::string detail;
  Time t = 0.0;
  /// Label of the event after which the audit ran.
  std::string event;
  LinkId link = kInvalidLink;
  ConnId conn = kInvalidConn;
};

struct AuditorOptions {
  /// Audit every `stride`-th event (>= 1). Failure events (those carrying
  /// a switchover report) and the final audit always run regardless.
  int stride = 1;
  /// Stamped into every JSONL record (-1 for single runs).
  std::int64_t cell = -1;
  /// When non-null, every violation is appended as one `drtp.audit/1`
  /// JSONL line. Not owned; must outlive the auditor.
  std::ostream* out = nullptr;
  /// Recording cap: further violations are still *counted* but not stored
  /// or emitted (a corrupt network trips thousands of identical lines).
  std::size_t max_recorded = 256;
  /// Arm conn.backup_shares_srlg: flag any backup using a link that
  /// shares a risk group with its primary. Only meaningful for schemes
  /// promising SRLG-disjoint backups (RoutingScheme::
  /// requires_srlg_disjoint_backup) — soft-mode and base schemes merely
  /// bias away from shared groups and would trip it legitimately.
  bool require_srlg_disjoint = false;
};

/// Re-derives network ground truth and accumulates violations. Not
/// thread-safe; make one per replay (sweeps: one per cell).
class Auditor {
 public:
  explicit Auditor(AuditorOptions options = {});

  /// The sim::ExperimentConfig::after_event-compatible hook. `event` is
  /// the replay-event label; `report` is non-null for enacted failures
  /// and triggers the report sanity checks.
  void Check(const core::DrtpNetwork& net, Time t, std::string_view event,
             const core::SwitchoverReport* report);

  /// The proto::ProtocolEngine::set_after_action-compatible hook.
  void Check(const core::DrtpNetwork& net, Time t) {
    Check(net, t, "action", nullptr);
  }

  /// Full audits actually performed (stride-skipped calls not counted).
  std::int64_t checks() const { return checks_; }
  /// Total violations observed, including ones past the recording cap.
  std::int64_t violation_count() const { return violation_count_; }
  const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  bool ok() const { return violation_count_ == 0; }

 private:
  void Audit(const core::DrtpNetwork& net, Time t, std::string_view event,
             const core::SwitchoverReport* report);
  void Record(AuditViolation v);

  AuditorOptions options_;
  std::int64_t calls_ = 0;
  std::int64_t checks_ = 0;
  std::int64_t violation_count_ = 0;
  std::vector<AuditViolation> violations_;
};

}  // namespace drtp::fault
