#include "fault/plan.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace drtp::fault {
namespace {

sim::ScenarioEvent FaultEvent(sim::ScenarioEvent::Type type, Time t,
                              const FaultSpec& spec) {
  sim::ScenarioEvent e;
  e.type = type;
  e.time = t;
  e.link = spec.link;
  e.node = spec.node;
  e.srlg = spec.srlg;
  return e;
}

}  // namespace

void FaultPlan::InjectInto(sim::Scenario& scenario) const {
  using Type = sim::ScenarioEvent::Type;
  std::vector<sim::ScenarioEvent> events;
  for (const FaultSpec& spec : faults) {
    DRTP_CHECK_MSG(spec.at >= 0.0, "fault scheduled before t=0");
    DRTP_CHECK(spec.mttr >= 0.0);
    switch (spec.kind) {
      case FaultSpec::Kind::kLink:
        events.push_back(FaultEvent(Type::kLinkFail, spec.at, spec));
        if (spec.mttr > 0.0) {
          events.push_back(
              FaultEvent(Type::kLinkRepair, spec.at + spec.mttr, spec));
        }
        break;
      case FaultSpec::Kind::kNode:
        events.push_back(FaultEvent(Type::kNodeFail, spec.at, spec));
        if (spec.mttr > 0.0) {
          events.push_back(
              FaultEvent(Type::kNodeRepair, spec.at + spec.mttr, spec));
        }
        break;
      case FaultSpec::Kind::kSrlg:
        events.push_back(FaultEvent(Type::kSrlgFail, spec.at, spec));
        if (spec.mttr > 0.0) {
          events.push_back(
              FaultEvent(Type::kSrlgRepair, spec.at + spec.mttr, spec));
        }
        break;
      case FaultSpec::Kind::kBurst: {
        // Identical timestamps replay back-to-back: the whole burst is
        // down before the next (later-timestamped) event runs.
        FaultSpec member = spec;
        for (const LinkId l : spec.burst) {
          member.link = l;
          events.push_back(FaultEvent(Type::kLinkFail, spec.at, member));
          if (spec.mttr > 0.0) {
            events.push_back(
                FaultEvent(Type::kLinkRepair, spec.at + spec.mttr, member));
          }
        }
        break;
      }
    }
  }
  scenario.events.insert(scenario.events.end(), events.begin(),
                         events.end());
  std::stable_sort(scenario.events.begin(), scenario.events.end(),
                   [](const sim::ScenarioEvent& a,
                      const sim::ScenarioEvent& b) {
                     return a.time < b.time;
                   });
}

FaultPlan MakeCampaign(const net::Topology& topo,
                       const CampaignConfig& config) {
  DRTP_CHECK(config.link_failures >= 0 && config.node_failures >= 0 &&
             config.srlg_failures >= 0 && config.bursts >= 0);
  DRTP_CHECK(config.burst_size >= 2);
  DRTP_CHECK(config.t_begin >= 0.0 && config.t_end > config.t_begin);
  DRTP_CHECK(config.mttr > 0.0);
  DRTP_CHECK_MSG(config.srlg_failures == 0 || topo.has_srlgs(),
                 "SRLG faults requested on a topology without risk groups");
  DRTP_CHECK_MSG(config.burst_size <= topo.num_links(),
                 "burst larger than the topology");

  Rng rng(config.seed);
  FaultPlan plan;
  const auto draw_time = [&] {
    return rng.UniformReal(config.t_begin, config.t_end);
  };

  for (int i = 0; i < config.link_failures; ++i) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kLink;
    spec.at = draw_time();
    spec.mttr = config.mttr;
    spec.link = static_cast<LinkId>(
        rng.Index(static_cast<std::size_t>(topo.num_links())));
    plan.faults.push_back(std::move(spec));
  }
  for (int i = 0; i < config.node_failures; ++i) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kNode;
    spec.at = draw_time();
    spec.mttr = config.mttr;
    spec.node = static_cast<NodeId>(
        rng.Index(static_cast<std::size_t>(topo.num_nodes())));
    plan.faults.push_back(std::move(spec));
  }
  for (int i = 0; i < config.srlg_failures; ++i) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kSrlg;
    spec.at = draw_time();
    spec.mttr = config.mttr;
    spec.srlg = static_cast<SrlgId>(
        rng.Index(static_cast<std::size_t>(topo.num_srlgs())));
    plan.faults.push_back(std::move(spec));
  }
  for (int i = 0; i < config.bursts; ++i) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kBurst;
    spec.at = draw_time();
    spec.mttr = config.mttr;
    std::unordered_set<LinkId> picked;
    while (static_cast<int>(picked.size()) < config.burst_size) {
      picked.insert(static_cast<LinkId>(
          rng.Index(static_cast<std::size_t>(topo.num_links()))));
    }
    spec.burst.assign(picked.begin(), picked.end());
    std::sort(spec.burst.begin(), spec.burst.end());
    plan.faults.push_back(std::move(spec));
  }

  // Deterministic campaign order regardless of draw order above.
  std::stable_sort(plan.faults.begin(), plan.faults.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return plan;
}

void InjectMidRecoveryPair(proto::ProtocolEngine& engine,
                           sim::EventQueue& queue, LinkId first,
                           LinkId second, proto::RecoveryMode mode,
                           double fraction) {
  DRTP_CHECK(fraction >= 0.0);
  const Time t0 = queue.now();
  const Time gap = engine.config().detection_delay * fraction;
  queue.Schedule(t0, [&engine, first, mode] {
    engine.InjectLinkFailure(first, mode);
  });
  // Lands between the first failure's detection and the arrival of its
  // recovery messages: backups are being promoted while the network
  // changes underneath them.
  queue.Schedule(t0 + gap, [&engine, second, mode] {
    const LinkId links[1] = {second};
    engine.InjectLinkSetFailure(links, mode);
  });
}

}  // namespace drtp::fault
