// drtpd wire framing: 4-byte big-endian length prefix + payload.
//
// The daemon speaks length-prefixed JSON over a local stream socket. The
// prefix makes message boundaries explicit (JSON itself is not
// self-delimiting on a stream) and lets the server reject runaway frames
// before buffering them: a header declaring more than kMaxFrameBytes is a
// protocol violation and the connection is dropped after one bad_frame
// response. See docs/DRTPD.md for the full wire contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

struct iovec;  // <sys/uio.h>

namespace drtp::svc {

/// Largest accepted payload. Requests are small (one JSON object); the
/// cap exists so a corrupt or hostile header cannot make the server
/// buffer gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;  // 1 MiB

/// Renders the 4-byte big-endian header for a payload of `n` bytes.
void EncodeFrameHeader(std::size_t n, char out[4]);

/// Why a frame (or WAL record) write failed. The taxonomy is explicit so
/// callers can distinguish a vanished peer (expected, quiet) from a full
/// disk (fatal for a write-ahead log) from everything else.
enum class WriteStatus {
  kOk,
  kPeerGone,  ///< EPIPE / ECONNRESET: the peer closed first
  kNoSpace,   ///< ENOSPC / EDQUOT: the filesystem is full
  kIoError,   ///< any other errno (EIO, EBADF, ...)
};

/// Stable lowercase name for logs and error strings.
const char* WriteStatusName(WriteStatus status);

/// Maps an errno from write/writev/sendmsg to the taxonomy above.
WriteStatus ClassifyWriteErrno(int err);

struct WriteResult {
  WriteStatus status = WriteStatus::kOk;
  int error_errno = 0;  ///< errno captured when status != kOk
  bool ok() const { return status == WriteStatus::kOk; }
  /// "<status name>: <strerror>" for error strings.
  std::string message() const;
};

/// Writes frames (and raw scatter/gather buffers) with an explicit
/// EINTR/short-write retry loop — a single write() that returns short
/// would otherwise silently truncate a frame mid-stream and desync the
/// peer's FrameReader. Socket fds are written with sendmsg(MSG_NOSIGNAL)
/// so a vanished peer surfaces as kPeerGone instead of SIGPIPE; regular
/// files (the WAL) fall back to writev transparently.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}
  virtual ~FrameWriter() = default;

  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  /// Header + payload, atomically from the peer's perspective (the retry
  /// loop completes the frame or reports why it could not).
  WriteResult WriteFrame(std::string_view payload);

  /// Writes every byte of `iov[0..iovcnt)`. Consumed entries are mutated
  /// in place as partial writes land — callers pass scratch iovecs.
  WriteResult WriteVec(iovec* iov, int iovcnt);

 protected:
  /// Test seam: failure-injecting subclasses override this to simulate
  /// short writes, EINTR, ENOSPC, and dead peers (svc_test).
  virtual long DoWritev(const iovec* iov, int iovcnt);

 private:
  int fd_;
  bool use_sendmsg_ = true;  ///< cleared on ENOTSOCK (regular file)
};

/// Header + payload in one buffer (DRTP_CHECKs the size cap — callers
/// frame only payloads they rendered themselves).
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder for one connection: feed whatever the socket
/// delivered, pop complete payloads. A header exceeding kMaxFrameBytes
/// poisons the reader (error() non-empty, Next() stays empty); the caller
/// must drop the connection. Bytes of an incomplete ("torn") frame simply
/// wait for more input — EOF with leftover bytes is the caller's signal
/// that the peer died mid-frame.
class FrameReader {
 public:
  /// Appends received bytes. False once the reader is poisoned.
  bool Feed(std::string_view bytes);

  /// Extracts the next complete payload, if any.
  std::optional<std::string> Next();

  /// Non-empty after an oversized header.
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet returned (torn-frame detection at EOF).
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
  std::string error_;
};

}  // namespace drtp::svc
