#include "svc/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "svc/wire.h"

namespace drtp::svc {
namespace {

struct ServerCounters {
  obs::Counter conns = obs::GetCounter("drtp.svc.connections");
  obs::Counter rx_bytes = obs::GetCounter("drtp.svc.rx_bytes");
  obs::Counter tx_bytes = obs::GetCounter("drtp.svc.tx_bytes");
  obs::Counter bad_frames = obs::GetCounter("drtp.svc.bad_frames");
  obs::Counter torn_frames = obs::GetCounter("drtp.svc.torn_frames");
  obs::Counter shed_frames = obs::GetCounter("drtp.svc.shed_frames");
};

const ServerCounters& Counters() {
  static const ServerCounters counters;
  return counters;
}

// Self-pipe bytes: Run() multiplexes shutdown and user events on one fd.
constexpr char kWakeShutdown = 1;
constexpr char kWakeUserEvent = 2;

}  // namespace

Server::Server(Engine& engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pipeline_(engine_, options_.pipeline,
                [this](std::uint64_t /*seq*/, std::uint64_t client,
                       std::string response) {
                  std::shared_ptr<ClientConn> c;
                  {
                    std::lock_guard<std::mutex> l(clients_mu_);
                    const auto it = clients_.find(client);
                    if (it != clients_.end()) c = it->second;
                  }
                  // Client already gone: the response dies with it.
                  if (c != nullptr) SendToClient(c, response);
                }) {
  engine_.BindShedCounter(pipeline_.shed_counter());
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_r_ = UniqueFd(fds[0]);
    wake_w_ = UniqueFd(fds[1]);
  }
}

Server::~Server() {
  Shutdown();
  pipeline_.Drain();
}

bool Server::Start(std::string* error) {
  if (!wake_r_.valid()) {
    *error = "self-pipe creation failed";
    return false;
  }
  listen_ = ListenUnix(options_.socket_path, /*backlog=*/64, error);
  return listen_.valid();
}

void Server::Shutdown() {
  // One byte on the self-pipe; write() is async-signal-safe and extra
  // bytes are harmless (a shutdown byte wins over any queued user event).
  if (wake_w_.valid()) {
    const char b = kWakeShutdown;
    [[maybe_unused]] const auto n = ::write(wake_w_.get(), &b, 1);
  }
}

void Server::TriggerUserEvent() {
  if (wake_w_.valid()) {
    const char b = kWakeUserEvent;
    [[maybe_unused]] const auto n = ::write(wake_w_.get(), &b, 1);
  }
}

void Server::SendToClient(const std::shared_ptr<ClientConn>& c,
                          std::string_view payload) {
  std::lock_guard<std::mutex> l(c->write_mu);
  if (!c->fd.valid()) return;
  FrameWriter writer(c->fd.get());
  const WriteResult res = writer.WriteFrame(payload);
  if (!res.ok()) {
    // A vanished peer is routine (reads on this fd will hit EOF and reap
    // the client shortly); anything else deserves a log line with the
    // explicit taxonomy instead of a silently truncated frame.
    if (res.status != WriteStatus::kPeerGone) {
      DRTP_LOG_WARN << "response write failed: " << res.message();
    }
    return;
  }
  Counters().tx_bytes.Add(static_cast<std::int64_t>(payload.size() + 4));
}

void Server::RemoveClient(std::uint64_t id) {
  std::shared_ptr<ClientConn> c;
  {
    std::lock_guard<std::mutex> l(clients_mu_);
    const auto it = clients_.find(id);
    if (it == clients_.end()) return;
    c = it->second;
    clients_.erase(it);
  }
  // Close under the write mutex so an in-flight response never writes to
  // a recycled descriptor.
  std::lock_guard<std::mutex> l(c->write_mu);
  c->fd.Reset();
}

void Server::HandleReadable(std::uint64_t id,
                            const std::shared_ptr<ClientConn>& c) {
  char buf[64 * 1024];
  const long r = RecvSome(c->fd.get(), buf, sizeof buf);
  if (r <= 0) {
    if (r == 0 && c->reader.pending_bytes() > 0) {
      Counters().torn_frames.Add();
      obs::FlightRecorder::Global().Record(
          obs::FlightKind::kFrameError, static_cast<std::int64_t>(id),
          /*torn=*/1);
      DRTP_LOG_WARN << "client " << id << " closed mid-frame ("
                    << c->reader.pending_bytes() << " bytes pending)";
    }
    RemoveClient(id);
    return;
  }
  Counters().rx_bytes.Add(r);
  c->reader.Feed(std::string_view(buf, static_cast<std::size_t>(r)));
  while (auto payload = c->reader.Next()) {
    if (!pipeline_.TrySubmit(id, *payload).has_value()) {
      // Overload shed, before decode: the frame is answered — never
      // silently dropped — with a cheap reject carrying a backoff hint.
      // The id comes from a token scan, not a parse; that is the point.
      Counters().shed_frames.Add();
      SendToClient(c, RenderOverloadedResponse(ExtractRequestId(*payload),
                                               pipeline_.RetryAfterMs()));
    }
  }
  if (!c->reader.error().empty()) {
    // Framing violation: answer once (id -1 — no request id exists at
    // the framing layer), then drop the connection.
    Counters().bad_frames.Add();
    obs::FlightRecorder::Global().Record(
        obs::FlightKind::kFrameError, static_cast<std::int64_t>(id),
        /*torn=*/0);
    DRTP_LOG_WARN << "client " << id
                  << " framing violation: " << c->reader.error();
    SendToClient(c, RenderErrorResponse(-1, kErrBadFrame,
                                        c->reader.error()));
    RemoveClient(id);
  }
}

void Server::Run() {
  DRTP_CHECK_MSG(listen_.valid(), "Run() before successful Start()");
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> ids;  // parallel to pfds from index 2 on
  bool running = true;
  while (running) {
    pfds.clear();
    ids.clear();
    pfds.push_back(pollfd{.fd = wake_r_.get(), .events = POLLIN,
                          .revents = 0});
    pfds.push_back(pollfd{.fd = listen_.get(), .events = POLLIN,
                          .revents = 0});
    {
      std::lock_guard<std::mutex> l(clients_mu_);
      for (const auto& [id, c] : clients_) {
        pfds.push_back(pollfd{.fd = c->fd.get(), .events = POLLIN,
                              .revents = 0});
        ids.push_back(id);
      }
    }
    const int n = ::poll(pfds.data(), pfds.size(), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      DRTP_LOG_ERROR << "poll failed, shutting down";
      break;
    }
    if ((pfds[0].revents & POLLIN) != 0) {
      // Drain the self-pipe and classify: any shutdown byte stops the
      // server; user-event bytes coalesce into one callback per wake.
      char wake[64];
      const auto nread = ::read(wake_r_.get(), wake, sizeof wake);
      bool stop = false;
      bool user_event = false;
      for (long i = 0; i < nread; ++i) {
        if (wake[i] == kWakeShutdown) stop = true;
        if (wake[i] == kWakeUserEvent) user_event = true;
      }
      if (stop || nread <= 0) {
        running = false;  // drain below; already-read frames still answer
        continue;
      }
      if (user_event && options_.on_user_signal) options_.on_user_signal();
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      UniqueFd conn(::accept(listen_.get(), nullptr, nullptr));
      if (conn.valid()) {
        auto c = std::make_shared<ClientConn>();
        c->fd = std::move(conn);
        std::lock_guard<std::mutex> l(clients_mu_);
        clients_.emplace(next_client_++, std::move(c));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        Counters().conns.Add();
      }
    }
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      std::shared_ptr<ClientConn> c;
      {
        std::lock_guard<std::mutex> l(clients_mu_);
        const auto it = clients_.find(ids[i - 2]);
        if (it == clients_.end()) continue;
        c = it->second;
      }
      HandleReadable(ids[i - 2], c);
    }
  }
  // Graceful drain: everything submitted gets decoded, executed, and its
  // response written to the (still-open) client sockets.
  pipeline_.Drain();
  {
    std::lock_guard<std::mutex> l(clients_mu_);
    for (auto& [id, c] : clients_) {
      std::lock_guard<std::mutex> wl(c->write_mu);
      c->fd.Reset();
    }
    clients_.clear();
  }
  listen_.Reset();
  ::unlink(options_.socket_path.c_str());
}

}  // namespace drtp::svc
