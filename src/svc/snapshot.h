// drtp.snap/1 — periodic engine state snapshots.
//
// A snapshot is a two-line text file:
//
//   {"schema":"drtp.snap/1","config":...,"wal_offset":N,...}\n
//   digest <16 hex chars>\n
//
// where the digest line is FNV-1a over the body line including its
// newline (the checkpoint-journal encoding). The body serializes the
// full recovery cut: virtual time, engine stats, scheme history state,
// down links, and every connection's routes — the ledger and APLV are
// NOT serialized because they are pure functions of that cut (the
// auditor's ground-truth rebuild proves it); restore re-establishes the
// table through DrtpNetwork and re-derives them, then verifies the
// recorded NetworkStateDigest byte-for-byte.
//
// `wal_offset` binds the snapshot to a drtp.wal/1 record boundary: the
// log's size at the moment the snapshot was taken (always between
// batches). Recovery loads the snapshot, then replays only WAL records
// past that offset. Files are written tmp + fsync + rename so a crash
// mid-snapshot leaves the previous one intact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "drtp/network.h"
#include "svc/engine.h"

namespace drtp::svc {

inline constexpr char kSnapshotSchema[] = "drtp.snap/1";

struct SnapshotConn {
  ConnId id = kInvalidConn;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
  std::vector<LinkId> primary;
  std::vector<std::vector<LinkId>> backups;
};

struct Snapshot {
  std::uint64_t config_digest = 0;
  std::uint64_t wal_offset = 0;
  std::int64_t t = 0;
  std::uint64_t state_digest = 0;
  EngineStats stats;
  std::string scheme;        ///< scheme name (RoutingScheme::name)
  std::string scheme_state;  ///< RoutingScheme::SaveState payload
  std::vector<LinkId> down_links;
  std::vector<SnapshotConn> conns;  ///< ascending by id
};

/// Serializes the engine's recovery cut as the snapshot body line
/// (without trailing newline). Also the snapshot_serialize
/// micro-benchmark kernel body.
std::string RenderSnapshotBody(const core::DrtpNetwork& net,
                               const EngineStats& stats, std::int64_t t,
                               std::uint64_t config_digest,
                               std::uint64_t wal_offset,
                               std::string_view scheme_name,
                               std::string_view scheme_state);

/// Inverse of RenderSnapshotBody; throws drtp::ParseError.
Snapshot ParseSnapshotBody(std::string_view body);

/// Writes body + digest line via tmp + fsync + rename (atomic replace).
bool WriteSnapshotFile(const std::string& path, std::string_view body,
                       std::string* error);

/// Reads and digest-verifies a snapshot file; throws drtp::ParseError on
/// a missing file, a bad digest line, or a malformed body.
Snapshot LoadSnapshotFile(const std::string& path);

}  // namespace drtp::svc
