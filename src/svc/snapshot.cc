#include "svc/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/digest.h"
#include "common/error.h"
#include "common/json.h"
#include "common/json_value.h"
#include "common/socket.h"
#include "svc/wire.h"

namespace drtp::svc {
namespace {

void WriteLinkArray(JsonWriter& w, std::span<const LinkId> links) {
  w.BeginArray();
  for (const LinkId l : links) w.Int(l);
  w.EndArray();
}

std::vector<LinkId> ParseLinkArray(const JsonValue& v, const char* what) {
  if (!v.is_array()) {
    throw ParseError(std::string("snapshot '") + what + "' is not an array");
  }
  std::vector<LinkId> out;
  out.reserve(v.AsArray().size());
  for (const JsonValue& item : v.AsArray()) {
    out.push_back(static_cast<LinkId>(item.AsInt64()));
  }
  return out;
}

const JsonValue& Require(const JsonValue& root, const char* key) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr) {
    throw ParseError(std::string("snapshot missing '") + key + "'");
  }
  return *v;
}

}  // namespace

std::string RenderSnapshotBody(const core::DrtpNetwork& net,
                               const EngineStats& stats, std::int64_t t,
                               std::uint64_t config_digest,
                               std::uint64_t wal_offset,
                               std::string_view scheme_name,
                               std::string_view scheme_state) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kSnapshotSchema);
  w.Key("config").String(DigestHex(config_digest));
  w.Key("wal_offset").Uint(wal_offset);
  w.Key("t").Int(t);
  w.Key("state_digest").String(DigestHex(NetworkStateDigest(net)));
  w.Key("stats").BeginObject();
  w.Key("frames").Int(stats.frames);
  w.Key("errors").Int(stats.errors);
  w.Key("admitted").Int(stats.admitted);
  w.Key("blocked").Int(stats.blocked);
  w.Key("released").Int(stats.released);
  w.Key("link_fails").Int(stats.link_fails);
  w.Key("link_repairs").Int(stats.link_repairs);
  w.Key("batches").Int(stats.batches);
  w.Key("wal_batches").Int(stats.wal_batches);
  w.Key("snapshots").Int(stats.snapshots);
  w.EndObject();
  w.Key("scheme").String(scheme_name);
  w.Key("scheme_state").String(scheme_state);
  w.Key("down_links");
  WriteLinkArray(w, net.down_links());
  w.Key("conns").BeginArray();
  // std::map iteration: ascending by id, matching restore order.
  for (const auto& [id, conn] : net.connections()) {
    w.BeginObject();
    w.Key("id").Int(id);
    w.Key("src").Int(conn.src);
    w.Key("dst").Int(conn.dst);
    w.Key("bw").Int(conn.bw);
    w.Key("primary");
    WriteLinkArray(w, conn.primary.links());
    w.Key("backups").BeginArray();
    for (const routing::Path& b : conn.backups) WriteLinkArray(w, b.links());
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Snapshot ParseSnapshotBody(std::string_view body) {
  const JsonValue root = ParseJson(body);
  if (!root.is_object()) throw ParseError("snapshot body is not an object");
  if (Require(root, "schema").AsString() != kSnapshotSchema) {
    throw ParseError("snapshot schema is not " +
                     std::string(kSnapshotSchema));
  }
  Snapshot out;
  out.config_digest = ParseDigestHex(Require(root, "config").AsString());
  const std::int64_t wal_offset = Require(root, "wal_offset").AsInt64();
  if (wal_offset < 0) throw ParseError("snapshot wal_offset is negative");
  out.wal_offset = static_cast<std::uint64_t>(wal_offset);
  out.t = Require(root, "t").AsInt64();
  out.state_digest =
      ParseDigestHex(Require(root, "state_digest").AsString());
  const JsonValue& stats = Require(root, "stats");
  out.stats.frames = Require(stats, "frames").AsInt64();
  out.stats.errors = Require(stats, "errors").AsInt64();
  out.stats.admitted = Require(stats, "admitted").AsInt64();
  out.stats.blocked = Require(stats, "blocked").AsInt64();
  out.stats.released = Require(stats, "released").AsInt64();
  out.stats.link_fails = Require(stats, "link_fails").AsInt64();
  out.stats.link_repairs = Require(stats, "link_repairs").AsInt64();
  out.stats.batches = Require(stats, "batches").AsInt64();
  out.stats.wal_batches = Require(stats, "wal_batches").AsInt64();
  out.stats.snapshots = Require(stats, "snapshots").AsInt64();
  out.scheme = Require(root, "scheme").AsString();
  out.scheme_state = Require(root, "scheme_state").AsString();
  out.down_links = ParseLinkArray(Require(root, "down_links"), "down_links");
  const JsonValue& conns = Require(root, "conns");
  if (!conns.is_array()) throw ParseError("snapshot 'conns' is not an array");
  for (const JsonValue& c : conns.AsArray()) {
    if (!c.is_object()) throw ParseError("snapshot conn is not an object");
    SnapshotConn sc;
    sc.id = Require(c, "id").AsInt64();
    sc.src = static_cast<NodeId>(Require(c, "src").AsInt64());
    sc.dst = static_cast<NodeId>(Require(c, "dst").AsInt64());
    sc.bw = Require(c, "bw").AsInt64();
    sc.primary = ParseLinkArray(Require(c, "primary"), "primary");
    const JsonValue& backups = Require(c, "backups");
    if (!backups.is_array()) {
      throw ParseError("snapshot 'backups' is not an array");
    }
    for (const JsonValue& b : backups.AsArray()) {
      sc.backups.push_back(ParseLinkArray(b, "backup"));
    }
    out.conns.push_back(std::move(sc));
  }
  return out;
}

bool WriteSnapshotFile(const std::string& path, std::string_view body,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  UniqueFd fd(::open(tmp.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!fd.valid()) {
    *error = "open '" + tmp + "': " + std::strerror(errno);
    return false;
  }
  std::string line(body);
  line.push_back('\n');
  std::string content = line;
  content += "digest " + DigestHex(Fnv1a(line)) + "\n";
  FrameWriter writer(fd.get());
  iovec iov;
  iov.iov_base = content.data();
  iov.iov_len = content.size();
  const WriteResult res = writer.WriteVec(&iov, 1);
  if (!res.ok()) {
    *error = "snapshot write: " + res.message();
    return false;
  }
  // fsync before rename: the rename must never publish a file whose
  // bytes are still only in the page cache.
  while (::fsync(fd.get()) != 0) {
    if (errno == EINTR) continue;
    *error = std::string("snapshot fsync: ") + std::strerror(errno);
    return false;
  }
  fd.Reset();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename '" + tmp + "' -> '" + path +
             "': " + std::strerror(errno);
    return false;
  }
  return true;
}

Snapshot LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("snapshot '" + path + "' is unreadable");
  }
  std::string body;
  std::string digest_line;
  if (!std::getline(in, body)) {
    throw ParseError("snapshot '" + path + "' is empty");
  }
  if (!std::getline(in, digest_line)) {
    throw ParseError("snapshot '" + path + "' missing digest line");
  }
  if (digest_line.rfind("digest ", 0) != 0) {
    throw ParseError("snapshot '" + path + "' digest line malformed");
  }
  const std::uint64_t want = ParseDigestHex(digest_line.substr(7));
  if (Fnv1a(body + "\n") != want) {
    throw ParseError("snapshot '" + path +
                     "' digest mismatch (torn or tampered file)");
  }
  return ParseSnapshotBody(body);
}

}  // namespace drtp::svc
