// drtp.wal/1 — the daemon's write-ahead log.
//
// Binary record framing, one record per committed engine batch:
//
//   [u32 BE payload length][payload][u64 BE FNV-1a(payload)]
//
// The first record is a header whose payload binds the engine config
// digest (scheme, seed, backup count, spare mode, topology shape) —
// replaying a WAL against a differently-configured engine would produce
// silently divergent state, so RecoverWal refuses it up front. Every
// later record's payload is the JSON-rendered list of that batch's
// *effective* events: admits (including blocked ones — they advance the
// virtual clock and the RandomBackup RNG), releases of live connections,
// and enacted link failures/repairs. Error-answered frames and no-ops
// are state-neutral and never logged.
//
// Durability contract: Engine::ExecuteBatch appends exactly one record
// and fsyncs it (group commit) before the batch's responses are released
// to clients. A crash therefore loses only unanswered requests, which
// clients retry; recovery replays the log through the identical batch
// path and reaches a byte-identical NetworkStateDigest.
//
// Recovery discipline mirrors runner/checkpoint.h's RecoverCheckpoint:
// scan forward verifying each record's digest, stop at the first torn or
// corrupt record, truncate the file to the verified prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/socket.h"
#include "sim/scenario.h"

namespace drtp::svc {

inline constexpr char kWalSchema[] = "drtp.wal/1";

/// Corruption guard while scanning: no legitimate record (header or
/// batch) comes close to this, so a larger declared length means the
/// length field itself is torn garbage.
inline constexpr std::uint64_t kMaxWalRecordBytes = 16u << 20;  // 16 MiB

/// Renders a batch-record payload (JSON: {"schema":...,"ev":[...]}).
/// Only the four daemon-effective event kinds are accepted (checked).
std::string RenderWalBatchPayload(std::span<const sim::ScenarioEvent> events);

/// Inverse of RenderWalBatchPayload; throws drtp::ParseError.
std::vector<sim::ScenarioEvent> ParseWalBatchPayload(std::string_view payload);

/// Frames one payload as a complete record (length + payload + digest).
std::string EncodeWalRecord(std::string_view payload);

/// One recovered batch plus the file offset just past its record —
/// snapshots bind to these boundaries (drtp.snap/1 `wal_offset`).
struct WalBatch {
  std::uint64_t end_offset = 0;
  std::vector<sim::ScenarioEvent> events;
};

struct WalRecovery {
  bool existed = false;               ///< file was present (even empty)
  std::uint64_t valid_bytes = 0;      ///< file size after truncation
  std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped
  std::uint64_t header_end = 0;       ///< offset just past the header record
  std::vector<WalBatch> batches;
};

/// Scans `path`, verifies record digests in order, truncates the file to
/// the verified prefix (torn/corrupt tail bytes are dropped on disk, not
/// just skipped), and returns the decoded batches. A missing file — or a
/// file whose very first record is torn — recovers to an empty log. A
/// *complete* header whose config digest differs from `config_digest`
/// throws ParseError: that WAL belongs to a different daemon.
WalRecovery RecoverWal(const std::string& path, std::uint64_t config_digest);

/// Append handle. Not thread-safe: only the engine thread appends.
class Wal {
 public:
  /// Opens `path` for appending. A missing or empty file gets the header
  /// record written and fsynced; a non-empty file is assumed to have been
  /// through RecoverWal already (Open seeks to the end without
  /// rescanning). Returns null + *error on I/O failure.
  static std::unique_ptr<Wal> Open(const std::string& path,
                                   std::uint64_t config_digest,
                                   std::string* error);

  /// Appends one batch record and fsyncs — the group commit. False +
  /// *error (wire.h WriteStatus taxonomy names) on any write or sync
  /// failure; the caller must treat that as fatal (responses for the
  /// batch must not be released without durability).
  bool AppendBatch(std::span<const sim::ScenarioEvent> events,
                   std::string* error);

  /// Current end offset — the boundary a snapshot taken now binds to.
  std::uint64_t bytes() const { return bytes_; }
  std::int64_t appended_batches() const { return appended_batches_; }
  const std::string& path() const { return path_; }

 private:
  Wal(UniqueFd fd, std::string path, std::uint64_t bytes)
      : fd_(std::move(fd)), path_(std::move(path)), bytes_(bytes) {}

  bool AppendRecord(std::string_view payload, std::string* error);

  UniqueFd fd_;
  std::string path_;
  std::uint64_t bytes_ = 0;
  std::int64_t appended_batches_ = 0;
};

}  // namespace drtp::svc
