// svc::Engine — the daemon's single-threaded admission core.
//
// Owns the authoritative network state (DrtpNetwork), the advertised
// link-state database, and the routing scheme; executes decoded requests
// in batches. One LSDB snapshot (DrtpNetwork::PublishTo) is taken per
// batch, so every admission in the batch routes against the same
// advertisement — the amortization the admit_batch microbenchmark
// measures. Failures and repairs re-publish immediately inside the batch
// (they are rare and correctness-critical; only admit/release publishes
// are amortized).
//
// Replay equivalence: admissions run through core::AdmitConnection — the
// same code sim::RunScenario uses — and the engine can keep a replayable
// request log (sim::Scenario with virtual times 1.0, 2.0, ...). With
// batch_max=1 the per-batch snapshot degenerates to publish-per-request,
// which is exactly the simulator's instant-advertisement mode, so
// replaying the log through drtpsim reproduces the live ledger/APLV state
// bit-for-bit (svc_test pins this via NetworkStateDigest).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "drtp/manager.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "fault/auditor.h"
#include "lsdb/link_state_db.h"
#include "net/topology.h"
#include "sim/scenario.h"
#include "svc/rpc.h"

namespace drtp::svc {

class Wal;        // svc/wal.h
struct Snapshot;  // svc/snapshot.h

/// FNV-1a digest over the authoritative state a replay must reproduce:
/// connection table (id, endpoints, bandwidth, primary and backup links),
/// per-link up/down + prime/spare ledger pools, and per-link APLV
/// abridgements (L1, max). Deterministic iteration order; stable across
/// processes.
std::uint64_t NetworkStateDigest(const core::DrtpNetwork& net);

struct EngineOptions {
  /// Routing scheme label (sim::MakeScheme's vocabulary).
  std::string scheme = "D-LSR";
  /// Scheme seed (RandomBackup).
  std::uint64_t seed = 1;
  int num_backups = 1;
  core::SpareMode spare_mode = core::SpareMode::kMultiplexed;
  /// Audit every N committed batches (0 = off). Failure events and the
  /// final drain audit always run when auditing is on.
  int audit_interval = 0;
  /// drtp.audit/1 JSONL sink for violations; null = keep them in memory
  /// only. Must outlive the engine.
  std::ostream* audit_out = nullptr;
  /// Record a replayable request log (RequestLog()).
  bool keep_request_log = false;
  /// Where to write an obs::FlightRecorder dump when the auditor reports
  /// its first violation (post-mortem without --trace). Empty = no dump.
  std::string flight_dump_path;
  /// Write a drtp.snap/1 snapshot every N committed batches (0 = never).
  int snapshot_interval = 0;
  /// Snapshot destination (tmp + fsync + rename). Required when
  /// snapshot_interval > 0; also used by the explicit WriteSnapshot().
  std::string snapshot_path;
};

/// Cumulative request accounting (all-time, monotone except batch_last).
struct EngineStats {
  std::int64_t frames = 0;       ///< decoded frames seen (incl. errors)
  std::int64_t errors = 0;       ///< frames answered with ok=false
  std::int64_t admitted = 0;
  std::int64_t blocked = 0;
  std::int64_t released = 0;
  std::int64_t link_fails = 0;   ///< enacted (link was up)
  std::int64_t link_repairs = 0; ///< enacted (link was down)
  std::int64_t batches = 0;
  std::int64_t batch_last = 0;   ///< size of the batch being executed
  std::int64_t wal_batches = 0;  ///< records group-committed to the WAL
  std::int64_t snapshots = 0;    ///< drtp.snap/1 files written
};

/// What Engine::Recover did, for the startup banner and the chaos
/// harness. Recovered state-changing counters (admitted/blocked/...) are
/// exact; frames/errors/batches are approximate after a replay because
/// error-answered frames are state-neutral and never WAL-logged.
struct RecoverReport {
  bool from_snapshot = false;
  std::uint64_t wal_valid_bytes = 0;
  std::uint64_t wal_truncated_bytes = 0;
  std::int64_t batches_replayed = 0;
  std::int64_t events_replayed = 0;
};

/// Not thread-safe: the pipeline serializes every batch through one
/// engine thread, which is precisely what makes responses deterministic.
class Engine {
 public:
  Engine(const net::Topology& topo, EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes `batch` in order; returns one rendered drtp.rpc/1 response
  /// per entry, same order. Takes the batch's LSDB snapshot first.
  std::vector<std::string> ExecuteBatch(std::span<const DecodedRequest> batch);

  /// The drain audit (always runs when auditing is on). Returns the
  /// total violation count observed over the engine's lifetime.
  std::int64_t FinalAudit();

  std::uint64_t StateDigest() const { return NetworkStateDigest(net_); }

  /// FNV-1a over everything replay equivalence depends on besides the
  /// request stream: scheme label, seed, backup count, spare mode, and
  /// the topology shape (per-link endpoints + capacity). WAL headers and
  /// snapshots bind to this; recovery refuses a mismatch.
  std::uint64_t ConfigDigest() const;

  /// Crash recovery: truncate-and-verify the WAL, load the snapshot when
  /// present (restoring table/scheme state and verifying its recorded
  /// NetworkStateDigest), then replay the WAL suffix through the normal
  /// batch path. Requires a fresh engine (no requests executed). Throws
  /// drtp::ParseError on any refusal: config mismatch, snapshot digest
  /// mismatch, snapshot bound past the recovered WAL, or replay
  /// divergence. Empty `wal_path` skips the WAL (snapshot only);
  /// `snapshot_path` may name a nonexistent file (WAL-only replay).
  RecoverReport Recover(const std::string& wal_path,
                        const std::string& snapshot_path);

  /// Restores a parsed snapshot into a fresh engine: down links first,
  /// then every primary in id order (two passes — backups may overbook,
  /// so interleaving could starve a later primary of free bandwidth),
  /// then all backups, then scheme state, then a full digest check
  /// against snap.state_digest (ParseError on mismatch).
  void RestoreSnapshot(const Snapshot& snap);

  /// Writes a snapshot to options_.snapshot_path now (drain hook; the
  /// periodic cadence calls this internally). False + *error on I/O
  /// failure.
  bool WriteSnapshot(std::string* error);

  /// Attaches the write-ahead log: from here on, ExecuteBatch appends
  /// one record + fsync per committed batch *before* its responses are
  /// released. Attached after construction because in --recover mode the
  /// log may only be opened for append once Recover() has truncated its
  /// torn tail. Not owned; must outlive the engine. An append failure is
  /// fatal by design — responses must never be released without their
  /// durability record.
  void AttachWal(Wal* wal) { wal_ = wal; }

  /// Points the stats RPC's `shed` gauge at the pipeline's shed counter
  /// (the engine never sheds; the server does, before decode).
  void BindShedCounter(const std::atomic<std::int64_t>* counter) {
    shed_ = counter;
  }

  /// The replayable request log (requires keep_request_log). Contains
  /// only events sim::RunScenario would enact identically: admits
  /// (including blocked ones), releases of live connections, and enacted
  /// link failures/repairs — error-answered frames and no-ops are
  /// excluded.
  sim::Scenario RequestLog() const;

  const EngineStats& stats() const { return stats_; }
  /// Current virtual time (1 tick per state-changing event) — the
  /// timestamp recovery hands the post-recovery audit.
  Time virtual_now() const { return t_; }
  const net::Topology& topology() const { return net_.topology(); }
  const core::DrtpNetwork& network() const { return net_; }
  std::int64_t audit_checks() const;
  std::int64_t audit_violations() const;
  /// Active connections currently running without any backup.
  std::int64_t DegradedCount() const;

 private:
  std::string Execute(const Request& req);
  std::string DoAdmit(const Request& req);
  std::string DoRelease(const Request& req);
  std::string DoFailLink(const Request& req);
  std::string DoRepairLink(const Request& req);
  std::string DoStats(const Request& req);
  /// Advances virtual time and appends a log event when logging is on.
  Time NextEventTime();
  void LogEvent(sim::ScenarioEvent event);
  /// Periodic snapshot cadence (every snapshot_interval batches).
  void MaybeSnapshot();
  /// Flight-records an audit sample and, on the first violation, dumps
  /// the recorder to options_.flight_dump_path.
  void AfterAuditCheck();

  EngineOptions options_;
  core::DrtpNetwork net_;
  lsdb::LinkStateDb db_;
  std::unique_ptr<core::RoutingScheme> scheme_;
  std::unique_ptr<fault::Auditor> auditor_;
  EngineStats stats_;
  /// Virtual clock: 1.0 per state-changing event, so the request log is
  /// a well-formed scenario (strictly increasing times).
  Time t_ = 0.0;
  std::vector<sim::ScenarioEvent> log_;
  /// The current batch's effective events — the WAL group-commit buffer.
  std::vector<sim::ScenarioEvent> batch_events_;
  /// Attached log (AttachWal); null = no durability.
  Wal* wal_ = nullptr;
  /// True while Recover replays the WAL: suppresses WAL appends (the
  /// events being replayed are already durable) and snapshot cadence.
  bool replaying_ = false;
  /// Pipeline shed counter for the stats RPC (null until bound).
  const std::atomic<std::int64_t>* shed_ = nullptr;
  bool flight_dumped_ = false;  ///< audit-violation dump fired already
};

}  // namespace drtp::svc
