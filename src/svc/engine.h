// svc::Engine — the daemon's single-threaded admission core.
//
// Owns the authoritative network state (DrtpNetwork), the advertised
// link-state database, and the routing scheme; executes decoded requests
// in batches. One LSDB snapshot (DrtpNetwork::PublishTo) is taken per
// batch, so every admission in the batch routes against the same
// advertisement — the amortization the admit_batch microbenchmark
// measures. Failures and repairs re-publish immediately inside the batch
// (they are rare and correctness-critical; only admit/release publishes
// are amortized).
//
// Replay equivalence: admissions run through core::AdmitConnection — the
// same code sim::RunScenario uses — and the engine can keep a replayable
// request log (sim::Scenario with virtual times 1.0, 2.0, ...). With
// batch_max=1 the per-batch snapshot degenerates to publish-per-request,
// which is exactly the simulator's instant-advertisement mode, so
// replaying the log through drtpsim reproduces the live ledger/APLV state
// bit-for-bit (svc_test pins this via NetworkStateDigest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "drtp/manager.h"
#include "drtp/network.h"
#include "drtp/scheme.h"
#include "fault/auditor.h"
#include "lsdb/link_state_db.h"
#include "net/topology.h"
#include "sim/scenario.h"
#include "svc/rpc.h"

namespace drtp::svc {

/// FNV-1a digest over the authoritative state a replay must reproduce:
/// connection table (id, endpoints, bandwidth, primary and backup links),
/// per-link up/down + prime/spare ledger pools, and per-link APLV
/// abridgements (L1, max). Deterministic iteration order; stable across
/// processes.
std::uint64_t NetworkStateDigest(const core::DrtpNetwork& net);

struct EngineOptions {
  /// Routing scheme label (sim::MakeScheme's vocabulary).
  std::string scheme = "D-LSR";
  /// Scheme seed (RandomBackup).
  std::uint64_t seed = 1;
  int num_backups = 1;
  core::SpareMode spare_mode = core::SpareMode::kMultiplexed;
  /// Audit every N committed batches (0 = off). Failure events and the
  /// final drain audit always run when auditing is on.
  int audit_interval = 0;
  /// drtp.audit/1 JSONL sink for violations; null = keep them in memory
  /// only. Must outlive the engine.
  std::ostream* audit_out = nullptr;
  /// Record a replayable request log (RequestLog()).
  bool keep_request_log = false;
  /// Where to write an obs::FlightRecorder dump when the auditor reports
  /// its first violation (post-mortem without --trace). Empty = no dump.
  std::string flight_dump_path;
};

/// Cumulative request accounting (all-time, monotone except batch_last).
struct EngineStats {
  std::int64_t frames = 0;       ///< decoded frames seen (incl. errors)
  std::int64_t errors = 0;       ///< frames answered with ok=false
  std::int64_t admitted = 0;
  std::int64_t blocked = 0;
  std::int64_t released = 0;
  std::int64_t link_fails = 0;   ///< enacted (link was up)
  std::int64_t link_repairs = 0; ///< enacted (link was down)
  std::int64_t batches = 0;
  std::int64_t batch_last = 0;   ///< size of the batch being executed
};

/// Not thread-safe: the pipeline serializes every batch through one
/// engine thread, which is precisely what makes responses deterministic.
class Engine {
 public:
  Engine(const net::Topology& topo, EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes `batch` in order; returns one rendered drtp.rpc/1 response
  /// per entry, same order. Takes the batch's LSDB snapshot first.
  std::vector<std::string> ExecuteBatch(std::span<const DecodedRequest> batch);

  /// The drain audit (always runs when auditing is on). Returns the
  /// total violation count observed over the engine's lifetime.
  std::int64_t FinalAudit();

  std::uint64_t StateDigest() const { return NetworkStateDigest(net_); }

  /// The replayable request log (requires keep_request_log). Contains
  /// only events sim::RunScenario would enact identically: admits
  /// (including blocked ones), releases of live connections, and enacted
  /// link failures/repairs — error-answered frames and no-ops are
  /// excluded.
  sim::Scenario RequestLog() const;

  const EngineStats& stats() const { return stats_; }
  const net::Topology& topology() const { return net_.topology(); }
  const core::DrtpNetwork& network() const { return net_; }
  std::int64_t audit_checks() const;
  std::int64_t audit_violations() const;
  /// Active connections currently running without any backup.
  std::int64_t DegradedCount() const;

 private:
  std::string Execute(const Request& req);
  std::string DoAdmit(const Request& req);
  std::string DoRelease(const Request& req);
  std::string DoFailLink(const Request& req);
  std::string DoRepairLink(const Request& req);
  std::string DoStats(const Request& req);
  /// Advances virtual time and appends a log event when logging is on.
  Time NextEventTime();
  void LogEvent(sim::ScenarioEvent event);
  /// Flight-records an audit sample and, on the first violation, dumps
  /// the recorder to options_.flight_dump_path.
  void AfterAuditCheck();

  EngineOptions options_;
  core::DrtpNetwork net_;
  lsdb::LinkStateDb db_;
  std::unique_ptr<core::RoutingScheme> scheme_;
  std::unique_ptr<fault::Auditor> auditor_;
  EngineStats stats_;
  /// Virtual clock: 1.0 per state-changing event, so the request log is
  /// a well-formed scenario (strictly increasing times).
  Time t_ = 0.0;
  std::vector<sim::ScenarioEvent> log_;
  bool flight_dumped_ = false;  ///< audit-violation dump fired already
};

}  // namespace drtp::svc
