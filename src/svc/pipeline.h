// svc::Pipeline — the daemon's request pipeline.
//
// Click-style composition of three stages with explicit queues:
//
//   Submit(payload)            [server thread, assigns a global seq]
//     -> decode pool           [N workers: JSON parse + validation]
//     -> reorder buffer        [seq-ordered map]
//     -> engine thread         [forms batches, Engine::ExecuteBatch]
//     -> responder callback    [invoked in seq order]
//
// Parsing parallelizes freely because DecodeRequest touches no shared
// state; everything stateful funnels through the single engine thread,
// which consumes the reorder buffer strictly in submission order. That
// single serialization point is the determinism contract: for a fixed
// submission sequence and linger_us = -1 (batches form only when
// batch_max contiguous requests are ready, or at drain), the response
// bytes are identical for any decode-pool size — svc_test pins
// --threads=1 against --threads=4 byte-for-byte.
//
// With linger_us >= 0 (the daemon's default mode) a partial batch is
// executed after at most that linger once work is available — lower
// latency, but batch boundaries then depend on arrival timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/engine.h"
#include "svc/rpc.h"

namespace drtp::svc {

struct PipelineOptions {
  /// Decode workers (>= 1).
  int threads = 1;
  /// Largest batch handed to the engine (>= 1).
  int batch_max = 64;
  /// How long the engine waits for more work before executing a partial
  /// batch, in microseconds. -1 = never: only full batches run, plus one
  /// final partial batch at drain (deterministic mode).
  long linger_us = 500;
  /// Per-request trace sampling: requests with seq % 2^shift == 0 emit a
  /// flight-recorder rpc_span event carrying their per-stage latencies
  /// (0 = every request, -1 = never). Histograms see every request
  /// regardless; sampling only bounds the flight-recorder volume.
  int rpc_sample_shift = 6;
  /// Admission bound: TrySubmit sheds when the inflight count (submitted
  /// minus responded) has reached this (0 = unbounded). Shedding happens
  /// before decode — the overload reject costs no JSON parse and no
  /// engine time — and the server answers the frame with `overloaded` +
  /// retry_after_ms instead of queueing it.
  std::int64_t max_inflight = 0;
};

/// Owns the worker threads. Submit is single-producer (the server's poll
/// loop); the responder fires on the engine thread, in seq order.
class Pipeline {
 public:
  /// `client` is an opaque token passed through to the responder.
  using Responder = std::function<void(std::uint64_t seq,
                                       std::uint64_t client,
                                       std::string response)>;

  Pipeline(Engine& engine, PipelineOptions options, Responder responder);
  /// Drains if the caller has not already.
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Enqueues one frame payload for decoding; returns its seq. Must not
  /// be called after Drain. Ignores max_inflight (tests and trusted
  /// callers); the server's intake path is TrySubmit.
  std::uint64_t Submit(std::uint64_t client, std::string payload);

  /// Bounded intake: moves from `payload` and returns the seq on
  /// success; leaves `payload` intact, bumps shed(), and returns nullopt
  /// when the pipeline is at max_inflight. Single-producer like Submit.
  std::optional<std::uint64_t> TrySubmit(std::uint64_t client,
                                         std::string& payload);

  /// Frames shed by TrySubmit since construction.
  std::int64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }

  /// For Engine::BindShedCounter (the stats RPC's `shed` key).
  const std::atomic<std::int64_t>* shed_counter() const { return &shed_; }

  /// Backoff hint for overloaded responses: scales with how far past the
  /// bound the queue is, 1..5 ms. A hint, not a guarantee — clients add
  /// their own jittered exponential on top (drtpload does).
  int RetryAfterMs() const;

  /// Stops intake, answers everything submitted, joins all threads.
  /// Idempotent.
  void Drain();

  std::uint64_t submitted() const;
  std::uint64_t responded() const;

 private:
  struct InItem {
    std::uint64_t seq = 0;
    std::uint64_t client = 0;
    std::string payload;
    std::int64_t submit_ns = 0;
  };
  struct Decoded {
    std::uint64_t client = 0;
    std::int64_t submit_ns = 0;
    std::int64_t decode_done_ns = 0;
    DecodedRequest request;
  };

  void DecodeLoop();
  void EngineLoop();
  /// Contiguous decoded requests starting at engine_seq_ (mu_ held).
  std::size_t ContiguousLocked() const;

  Engine& engine_;
  PipelineOptions options_;
  Responder respond_;

  mutable std::mutex mu_;
  std::condition_variable decode_cv_;
  std::condition_variable engine_cv_;
  std::deque<InItem> in_;
  std::map<std::uint64_t, Decoded> decoded_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t engine_seq_ = 0;
  std::uint64_t responded_ = 0;
  bool draining_ = false;
  bool drained_ = false;
  std::atomic<std::int64_t> shed_{0};

  std::vector<std::thread> decoders_;
  std::thread engine_thread_;
};

}  // namespace drtp::svc
