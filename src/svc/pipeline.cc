#include "svc/pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <array>
#include <string>

#include "common/check.h"
#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace drtp::svc {
namespace {

obs::Histogram RequestLatency() {
  static const obs::Histogram h =
      obs::GetTimingHistogram("drtp.svc.request_ns");
  return h;
}

/// Per-stage pipeline latency histograms: where a request's time went
/// between the server reading its frame and its response being written.
struct StageHists {
  obs::Histogram decode = obs::GetTimingHistogram("drtp.svc.stage.decode_ns");
  obs::Histogram reorder =
      obs::GetTimingHistogram("drtp.svc.stage.reorder_ns");
  obs::Histogram engine = obs::GetTimingHistogram("drtp.svc.stage.engine_ns");
  obs::Histogram respond =
      obs::GetTimingHistogram("drtp.svc.stage.respond_ns");
};

const StageHists& Stages() {
  static const StageHists h;
  return h;
}

/// Live pipeline occupancy gauges. Zeroed at drain so the post-drain
/// registry view is deterministic (the threads=1 vs threads=4 equality
/// contract extends to gauges).
struct PipelineGauges {
  obs::Gauge in_depth = obs::GetGauge("drtp.svc.pipeline.in_depth");
  obs::Gauge reorder_depth =
      obs::GetGauge("drtp.svc.pipeline.reorder_depth");
  obs::Gauge inflight = obs::GetGauge("drtp.svc.pipeline.inflight");
  obs::Gauge batch_last = obs::GetGauge("drtp.svc.pipeline.batch_last");
};

const PipelineGauges& Gauges() {
  static const PipelineGauges g;
  return g;
}

/// Method slots for the per-method/outcome latency histograms: the five
/// rpc methods plus one pseudo-method for frames that failed to decode.
constexpr int kMethodSlots = 6;
constexpr const char* kMethodNames[kMethodSlots] = {
    "admit", "release", "fail_link", "repair_link", "stats", "error"};

int MethodIndex(const DecodedRequest& d) {
  return d.ok ? static_cast<int>(d.request.method) : kMethodSlots - 1;
}

/// End-to-end latency histogram for one (method, outcome) pair,
/// e.g. drtp.svc.request_ns.admit.ok.
obs::Histogram MethodHist(int method_idx, bool ok) {
  static const auto table = [] {
    std::array<std::array<obs::Histogram, 2>, kMethodSlots> t;
    for (int m = 0; m < kMethodSlots; ++m) {
      for (int o = 0; o < 2; ++o) {
        t[static_cast<std::size_t>(m)][static_cast<std::size_t>(o)] =
            obs::GetTimingHistogram(std::string("drtp.svc.request_ns.") +
                                    kMethodNames[m] +
                                    (o == 1 ? ".ok" : ".err"));
      }
    }
    return t;
  }();
  return table[static_cast<std::size_t>(method_idx)][ok ? 1 : 0];
}

/// A rendered response's outcome. The raw byte sequence `"ok":true` can
/// only come from the envelope — inside error details every quote is
/// JSON-escaped.
bool ResponseOk(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

}  // namespace

Pipeline::Pipeline(Engine& engine, PipelineOptions options,
                   Responder responder)
    : engine_(engine),
      options_(options),
      respond_(std::move(responder)) {
  DRTP_CHECK(options_.threads >= 1);
  DRTP_CHECK(options_.batch_max >= 1);
  DRTP_CHECK(options_.rpc_sample_shift < 64);
  decoders_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    decoders_.emplace_back([this] { DecodeLoop(); });
  }
  engine_thread_ = std::thread([this] { EngineLoop(); });
}

Pipeline::~Pipeline() { Drain(); }

std::uint64_t Pipeline::Submit(std::uint64_t client, std::string payload) {
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> l(mu_);
    DRTP_CHECK_MSG(!draining_, "Submit after Drain");
    seq = next_seq_++;
    in_.push_back(InItem{.seq = seq,
                         .client = client,
                         .payload = std::move(payload),
                         .submit_ns = MonotonicClock::Instance().NowNs()});
    Gauges().in_depth.Set(static_cast<double>(in_.size()));
    Gauges().inflight.Set(static_cast<double>(next_seq_ - responded_));
  }
  decode_cv_.notify_one();
  return seq;
}

std::optional<std::uint64_t> Pipeline::TrySubmit(std::uint64_t client,
                                                 std::string& payload) {
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> l(mu_);
    DRTP_CHECK_MSG(!draining_, "TrySubmit after Drain");
    if (options_.max_inflight > 0 &&
        static_cast<std::int64_t>(next_seq_ - responded_) >=
            options_.max_inflight) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    seq = next_seq_++;
    in_.push_back(InItem{.seq = seq,
                         .client = client,
                         .payload = std::move(payload),
                         .submit_ns = MonotonicClock::Instance().NowNs()});
    Gauges().in_depth.Set(static_cast<double>(in_.size()));
    Gauges().inflight.Set(static_cast<double>(next_seq_ - responded_));
  }
  decode_cv_.notify_one();
  return seq;
}

int Pipeline::RetryAfterMs() const {
  std::lock_guard<std::mutex> l(mu_);
  if (options_.max_inflight <= 0) return 1;
  const auto inflight = static_cast<std::int64_t>(next_seq_ - responded_);
  const std::int64_t excess = (inflight * 4) / options_.max_inflight;
  return static_cast<int>(1 + std::min<std::int64_t>(excess, 4));
}

void Pipeline::Drain() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (drained_) return;
    draining_ = true;
  }
  decode_cv_.notify_all();
  engine_cv_.notify_all();
  for (std::thread& t : decoders_) t.join();
  engine_cv_.notify_all();
  engine_thread_.join();
  std::lock_guard<std::mutex> l(mu_);
  drained_ = true;
  // Occupancy is zero by construction once drained; write it so a
  // post-drain registry snapshot is deterministic.
  Gauges().in_depth.Set(0);
  Gauges().reorder_depth.Set(0);
  Gauges().inflight.Set(0);
  Gauges().batch_last.Set(0);
}

std::uint64_t Pipeline::submitted() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_seq_;
}

std::uint64_t Pipeline::responded() const {
  std::lock_guard<std::mutex> l(mu_);
  return responded_;
}

void Pipeline::DecodeLoop() {
  for (;;) {
    InItem item;
    {
      std::unique_lock<std::mutex> l(mu_);
      decode_cv_.wait(l, [this] { return !in_.empty() || draining_; });
      if (in_.empty()) return;  // draining and intake exhausted
      item = std::move(in_.front());
      in_.pop_front();
    }
    DecodedRequest decoded = DecodeRequest(item.payload);
    const std::int64_t decode_done_ns = MonotonicClock::Instance().NowNs();
    {
      std::lock_guard<std::mutex> l(mu_);
      decoded_.emplace(item.seq,
                       Decoded{.client = item.client,
                               .submit_ns = item.submit_ns,
                               .decode_done_ns = decode_done_ns,
                               .request = std::move(decoded)});
    }
    engine_cv_.notify_one();
  }
}

std::size_t Pipeline::ContiguousLocked() const {
  std::size_t n = 0;
  for (auto it = decoded_.lower_bound(engine_seq_);
       it != decoded_.end() && it->first == engine_seq_ + n; ++it) {
    ++n;
  }
  return n;
}

void Pipeline::EngineLoop() {
  const auto batch_max = static_cast<std::size_t>(options_.batch_max);
  const std::uint64_t sample_mask =
      options_.rpc_sample_shift >= 0
          ? (std::uint64_t{1} << options_.rpc_sample_shift) - 1
          : ~std::uint64_t{0};
  std::vector<DecodedRequest> requests;
  std::vector<std::uint64_t> clients;
  std::vector<std::int64_t> submit_stamps;
  std::vector<std::int64_t> decode_stamps;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    const std::size_t avail = ContiguousLocked();
    const bool all_in = draining_ && engine_seq_ + avail == next_seq_;
    std::size_t take = 0;
    if (avail >= batch_max || (all_in && avail > 0)) {
      take = std::min(avail, batch_max);
    } else if (all_in) {
      return;  // everything answered
    } else if (options_.linger_us >= 0 && avail > 0) {
      // Partial batch mode: give stragglers one linger to join, then run
      // with whatever is contiguous.
      engine_cv_.wait_for(l, std::chrono::microseconds(options_.linger_us));
      take = std::min(ContiguousLocked(), batch_max);
      if (take == 0) continue;
    } else {
      engine_cv_.wait(l);
      continue;
    }

    requests.clear();
    clients.clear();
    submit_stamps.clear();
    decode_stamps.clear();
    for (std::size_t i = 0; i < take; ++i) {
      auto it = decoded_.find(engine_seq_);
      requests.push_back(std::move(it->second.request));
      clients.push_back(it->second.client);
      submit_stamps.push_back(it->second.submit_ns);
      decode_stamps.push_back(it->second.decode_done_ns);
      decoded_.erase(it);
      ++engine_seq_;
    }
    const std::uint64_t first_seq = engine_seq_ - take;
    Gauges().reorder_depth.Set(static_cast<double>(decoded_.size()));
    Gauges().batch_last.Set(static_cast<double>(take));
    l.unlock();

    const std::int64_t dequeue_ns = MonotonicClock::Instance().NowNs();
    std::vector<std::string> responses = engine_.ExecuteBatch(requests);
    DRTP_CHECK(responses.size() == take);
    const std::int64_t done_ns = MonotonicClock::Instance().NowNs();
    for (std::size_t i = 0; i < take; ++i) {
      const bool ok = requests[i].ok && ResponseOk(responses[i]);
      respond_(first_seq + i, clients[i], std::move(responses[i]));
      const std::int64_t respond_ns = MonotonicClock::Instance().NowNs();
      const std::int64_t decode_lat = decode_stamps[i] - submit_stamps[i];
      const std::int64_t reorder_lat = dequeue_ns - decode_stamps[i];
      const std::int64_t engine_lat = done_ns - dequeue_ns;
      const std::int64_t respond_lat = respond_ns - done_ns;
      RequestLatency().Observe(respond_ns - submit_stamps[i]);
      Stages().decode.Observe(decode_lat);
      Stages().reorder.Observe(reorder_lat);
      Stages().engine.Observe(engine_lat);
      Stages().respond.Observe(respond_lat);
      const int method = MethodIndex(requests[i]);
      MethodHist(method, ok).Observe(respond_ns - submit_stamps[i]);
      const std::uint64_t seq = first_seq + i;
      if (options_.rpc_sample_shift >= 0 && (seq & sample_mask) == 0) {
        obs::FlightRecorder::Global().Record(
            obs::FlightKind::kRpcSpan, static_cast<std::int64_t>(seq),
            method, decode_lat, reorder_lat, engine_lat, respond_lat);
      }
    }

    l.lock();
    responded_ += take;
    Gauges().inflight.Set(static_cast<double>(next_seq_ - responded_));
  }
}

}  // namespace drtp::svc
