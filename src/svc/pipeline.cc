#include "svc/pipeline.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/clock.h"
#include "obs/metrics.h"

namespace drtp::svc {
namespace {

obs::Histogram RequestLatency() {
  static const obs::Histogram h =
      obs::GetTimingHistogram("drtp.svc.request_ns");
  return h;
}

}  // namespace

Pipeline::Pipeline(Engine& engine, PipelineOptions options,
                   Responder responder)
    : engine_(engine),
      options_(options),
      respond_(std::move(responder)) {
  DRTP_CHECK(options_.threads >= 1);
  DRTP_CHECK(options_.batch_max >= 1);
  decoders_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    decoders_.emplace_back([this] { DecodeLoop(); });
  }
  engine_thread_ = std::thread([this] { EngineLoop(); });
}

Pipeline::~Pipeline() { Drain(); }

std::uint64_t Pipeline::Submit(std::uint64_t client, std::string payload) {
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> l(mu_);
    DRTP_CHECK_MSG(!draining_, "Submit after Drain");
    seq = next_seq_++;
    in_.push_back(InItem{.seq = seq,
                         .client = client,
                         .payload = std::move(payload),
                         .submit_ns = MonotonicClock::Instance().NowNs()});
  }
  decode_cv_.notify_one();
  return seq;
}

void Pipeline::Drain() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (drained_) return;
    draining_ = true;
  }
  decode_cv_.notify_all();
  engine_cv_.notify_all();
  for (std::thread& t : decoders_) t.join();
  engine_cv_.notify_all();
  engine_thread_.join();
  std::lock_guard<std::mutex> l(mu_);
  drained_ = true;
}

std::uint64_t Pipeline::submitted() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_seq_;
}

std::uint64_t Pipeline::responded() const {
  std::lock_guard<std::mutex> l(mu_);
  return responded_;
}

void Pipeline::DecodeLoop() {
  for (;;) {
    InItem item;
    {
      std::unique_lock<std::mutex> l(mu_);
      decode_cv_.wait(l, [this] { return !in_.empty() || draining_; });
      if (in_.empty()) return;  // draining and intake exhausted
      item = std::move(in_.front());
      in_.pop_front();
    }
    DecodedRequest decoded = DecodeRequest(item.payload);
    {
      std::lock_guard<std::mutex> l(mu_);
      decoded_.emplace(item.seq, Decoded{.client = item.client,
                                         .submit_ns = item.submit_ns,
                                         .request = std::move(decoded)});
    }
    engine_cv_.notify_one();
  }
}

std::size_t Pipeline::ContiguousLocked() const {
  std::size_t n = 0;
  for (auto it = decoded_.lower_bound(engine_seq_);
       it != decoded_.end() && it->first == engine_seq_ + n; ++it) {
    ++n;
  }
  return n;
}

void Pipeline::EngineLoop() {
  const auto batch_max = static_cast<std::size_t>(options_.batch_max);
  std::vector<DecodedRequest> requests;
  std::vector<std::uint64_t> clients;
  std::vector<std::int64_t> stamps;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    const std::size_t avail = ContiguousLocked();
    const bool all_in = draining_ && engine_seq_ + avail == next_seq_;
    std::size_t take = 0;
    if (avail >= batch_max || (all_in && avail > 0)) {
      take = std::min(avail, batch_max);
    } else if (all_in) {
      return;  // everything answered
    } else if (options_.linger_us >= 0 && avail > 0) {
      // Partial batch mode: give stragglers one linger to join, then run
      // with whatever is contiguous.
      engine_cv_.wait_for(l, std::chrono::microseconds(options_.linger_us));
      take = std::min(ContiguousLocked(), batch_max);
      if (take == 0) continue;
    } else {
      engine_cv_.wait(l);
      continue;
    }

    requests.clear();
    clients.clear();
    stamps.clear();
    for (std::size_t i = 0; i < take; ++i) {
      auto it = decoded_.find(engine_seq_);
      requests.push_back(std::move(it->second.request));
      clients.push_back(it->second.client);
      stamps.push_back(it->second.submit_ns);
      decoded_.erase(it);
      ++engine_seq_;
    }
    const std::uint64_t first_seq = engine_seq_ - take;
    l.unlock();

    std::vector<std::string> responses = engine_.ExecuteBatch(requests);
    DRTP_CHECK(responses.size() == take);
    const std::int64_t done_ns = MonotonicClock::Instance().NowNs();
    for (std::size_t i = 0; i < take; ++i) {
      respond_(first_seq + i, clients[i], std::move(responses[i]));
      RequestLatency().Observe(done_ns - stamps[i]);
    }

    l.lock();
    responded_ += take;
  }
}

}  // namespace drtp::svc
