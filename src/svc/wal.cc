#include "svc/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/digest.h"
#include "common/error.h"
#include "common/json.h"
#include "common/json_value.h"
#include "svc/wire.h"

namespace drtp::svc {
namespace {

/// Wire tag for each daemon-effective event kind.
const char* EventTag(sim::ScenarioEvent::Type type) {
  switch (type) {
    case sim::ScenarioEvent::Type::kRequest:
      return "admit";
    case sim::ScenarioEvent::Type::kRelease:
      return "release";
    case sim::ScenarioEvent::Type::kLinkFail:
      return "fail";
    case sim::ScenarioEvent::Type::kLinkRepair:
      return "repair";
    default:
      return nullptr;
  }
}

std::int64_t IntegralTime(Time t) {
  const auto n = static_cast<std::int64_t>(std::llround(t));
  DRTP_CHECK_MSG(static_cast<Time>(n) == t,
                 "wal event time " << t << " is not integral");
  return n;
}

void PutU32Be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

void PutU64Be(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint64_t GetU64Be(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string RenderHeaderPayload(std::uint64_t config_digest) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kWalSchema);
  w.Key("config").String(DigestHex(config_digest));
  w.EndObject();
  return w.str();
}

/// One decoded record: payload plus the offset just past it.
struct DecodedRecord {
  std::string_view payload;
  std::uint64_t end = 0;
};

/// Decodes the record at `offset`, verifying length plausibility and the
/// trailing digest. Returns false on a torn or corrupt record — the
/// caller truncates there.
bool TryDecodeRecord(std::string_view data, std::uint64_t offset,
                     DecodedRecord* out) {
  if (data.size() - offset < 4) return false;
  const auto b = [&](std::uint64_t i) {
    return static_cast<std::uint64_t>(
        static_cast<unsigned char>(data[offset + i]));
  };
  const std::uint64_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n > kMaxWalRecordBytes) return false;  // torn length field
  if (data.size() - offset < 4 + n + 8) return false;
  const std::string_view payload = data.substr(offset + 4, n);
  const std::uint64_t want = GetU64Be(data.data() + offset + 4 + n);
  if (Fnv1a(payload) != want) return false;
  out->payload = payload;
  out->end = offset + 4 + n + 8;
  return true;
}

}  // namespace

std::string RenderWalBatchPayload(
    std::span<const sim::ScenarioEvent> events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kWalSchema);
  w.Key("ev").BeginArray();
  for (const sim::ScenarioEvent& e : events) {
    const char* tag = EventTag(e.type);
    DRTP_CHECK_MSG(tag != nullptr, "event kind not loggable to the wal");
    w.BeginObject();
    w.Key("e").String(tag);
    w.Key("t").Int(IntegralTime(e.time));
    switch (e.type) {
      case sim::ScenarioEvent::Type::kRequest:
        w.Key("conn").Int(e.conn);
        w.Key("src").Int(e.src);
        w.Key("dst").Int(e.dst);
        w.Key("bw").Int(e.bw);
        break;
      case sim::ScenarioEvent::Type::kRelease:
        w.Key("conn").Int(e.conn);
        break;
      default:  // kLinkFail / kLinkRepair
        w.Key("link").Int(e.link);
        break;
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::vector<sim::ScenarioEvent> ParseWalBatchPayload(
    std::string_view payload) {
  const JsonValue root = ParseJson(payload);
  if (!root.is_object()) throw ParseError("wal record is not an object");
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->AsString() != kWalSchema) {
    throw ParseError("wal record missing schema " + std::string(kWalSchema));
  }
  const JsonValue* ev = root.Find("ev");
  if (ev == nullptr || !ev->is_array()) {
    throw ParseError("wal record missing 'ev' array");
  }
  std::vector<sim::ScenarioEvent> out;
  out.reserve(ev->AsArray().size());
  for (const JsonValue& item : ev->AsArray()) {
    if (!item.is_object()) throw ParseError("wal event is not an object");
    const JsonValue* tag = item.Find("e");
    const JsonValue* t = item.Find("t");
    if (tag == nullptr || t == nullptr) {
      throw ParseError("wal event missing 'e'/'t'");
    }
    sim::ScenarioEvent e;
    e.time = static_cast<Time>(t->AsInt64());
    const std::string& kind = tag->AsString();
    const auto field = [&](const char* key) {
      const JsonValue* v = item.Find(key);
      if (v == nullptr) {
        throw ParseError("wal event missing '" + std::string(key) + "'");
      }
      return v->AsInt64();
    };
    if (kind == "admit") {
      e.type = sim::ScenarioEvent::Type::kRequest;
      e.conn = field("conn");
      e.src = static_cast<NodeId>(field("src"));
      e.dst = static_cast<NodeId>(field("dst"));
      e.bw = field("bw");
    } else if (kind == "release") {
      e.type = sim::ScenarioEvent::Type::kRelease;
      e.conn = field("conn");
    } else if (kind == "fail") {
      e.type = sim::ScenarioEvent::Type::kLinkFail;
      e.link = static_cast<LinkId>(field("link"));
    } else if (kind == "repair") {
      e.type = sim::ScenarioEvent::Type::kLinkRepair;
      e.link = static_cast<LinkId>(field("link"));
    } else {
      throw ParseError("wal event kind '" + kind + "' unknown");
    }
    out.push_back(e);
  }
  return out;
}

std::string EncodeWalRecord(std::string_view payload) {
  DRTP_CHECK(payload.size() <= kMaxWalRecordBytes);
  std::string out;
  out.reserve(payload.size() + 12);
  PutU32Be(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  PutU64Be(out, Fnv1a(payload));
  return out;
}

WalRecovery RecoverWal(const std::string& path,
                       std::uint64_t config_digest) {
  WalRecovery out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no file: empty log, nothing to truncate
  out.existed = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  std::uint64_t offset = 0;
  DecodedRecord rec;
  if (TryDecodeRecord(data, offset, &rec)) {
    // Complete header: it must be ours. A different config digest means
    // this log belongs to another daemon — refusing beats silently
    // clobbering its history.
    const JsonValue head = ParseJson(rec.payload);
    const JsonValue* schema = head.Find("schema");
    const JsonValue* config = head.Find("config");
    if (schema == nullptr || schema->AsString() != kWalSchema ||
        config == nullptr) {
      throw ParseError("'" + path + "' is not a " + kWalSchema + " log");
    }
    if (ParseDigestHex(config->AsString()) != config_digest) {
      throw ParseError("wal '" + path +
                       "' was written under a different daemon config "
                       "(scheme/seed/backups/spare-mode/topology)");
    }
    offset = rec.end;
    out.header_end = rec.end;
    while (TryDecodeRecord(data, offset, &rec)) {
      out.batches.push_back(WalBatch{
          .end_offset = rec.end,
          .events = ParseWalBatchPayload(rec.payload)});
      offset = rec.end;
    }
  }
  // Everything past `offset` is a torn or corrupt tail: drop it on disk
  // so the reopened log appends at a verified boundary.
  out.valid_bytes = offset;
  out.truncated_bytes = data.size() - offset;
  if (out.truncated_bytes > 0) {
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      throw ParseError("truncating '" + path +
                       "' failed: " + std::strerror(errno));
    }
  }
  return out;
}

std::unique_ptr<Wal> Wal::Open(const std::string& path,
                               std::uint64_t config_digest,
                               std::string* error) {
  UniqueFd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                     0644));
  if (!fd.valid()) {
    *error = "open '" + path + "': " + std::strerror(errno);
    return nullptr;
  }
  const off_t end = ::lseek(fd.get(), 0, SEEK_END);
  if (end < 0) {
    *error = "lseek '" + path + "': " + std::strerror(errno);
    return nullptr;
  }
  std::unique_ptr<Wal> wal(
      new Wal(std::move(fd), path, static_cast<std::uint64_t>(end)));
  if (end == 0) {
    // Fresh log: the header record binds the config before any batch.
    if (!wal->AppendRecord(RenderHeaderPayload(config_digest), error)) {
      return nullptr;
    }
  }
  return wal;
}

bool Wal::AppendRecord(std::string_view payload, std::string* error) {
  const std::string record = EncodeWalRecord(payload);
  FrameWriter writer(fd_.get());
  iovec iov;
  iov.iov_base = const_cast<char*>(record.data());
  iov.iov_len = record.size();
  const WriteResult res = writer.WriteVec(&iov, 1);
  if (!res.ok()) {
    *error = "wal append: " + res.message();
    return false;
  }
  // The group commit: one fsync per engine batch, before any of the
  // batch's responses are released.
  while (::fsync(fd_.get()) != 0) {
    if (errno == EINTR) continue;
    *error = std::string("wal fsync: ") +
             WriteStatusName(ClassifyWriteErrno(errno)) + ": " +
             std::strerror(errno);
    return false;
  }
  bytes_ += record.size();
  return true;
}

bool Wal::AppendBatch(std::span<const sim::ScenarioEvent> events,
                      std::string* error) {
  if (!AppendRecord(RenderWalBatchPayload(events), error)) return false;
  ++appended_batches_;
  return true;
}

}  // namespace drtp::svc
