// drtp.rpc/1 — the daemon's request/response envelope.
//
// One request per frame:
//   {"schema":"drtp.rpc/1","id":<int>,"method":"<m>","params":{...}}
// One response per request, same id:
//   {"schema":"drtp.rpc/1","id":<int>,"ok":true,"result":{...}}
//   {"schema":"drtp.rpc/1","id":<int>,"ok":false,
//    "error":{"code":"<c>","detail":"<text>"}}
//
// Responses are rendered with a fixed field order so a fixed request
// sequence yields byte-identical response bytes regardless of daemon
// thread count — the determinism contract svc_test pins. Parsing is
// strict (drtp::ParseError taxonomy surfaces as bad_json / bad_request),
// but a parse failure still answers: the error response carries the
// request id when one could be recovered, -1 otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"

namespace drtp::svc {

inline constexpr char kRpcSchema[] = "drtp.rpc/1";

// Error codes (stable wire strings; see docs/DRTPD.md).
inline constexpr char kErrBadFrame[] = "bad_frame";
inline constexpr char kErrBadJson[] = "bad_json";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrUnknownMethod[] = "unknown_method";
inline constexpr char kErrConnExists[] = "conn_exists";
inline constexpr char kErrNotFound[] = "not_found";
inline constexpr char kErrOutOfRange[] = "out_of_range";
inline constexpr char kErrDraining[] = "draining";
inline constexpr char kErrOverloaded[] = "overloaded";

enum class Method {
  kAdmit,
  kRelease,
  kFailLink,
  kRepairLink,
  kStats,
};

/// A validated request. Only the fields of the named method are
/// meaningful (admit: conn/src/dst/bw; release: conn; fail/repair: link;
/// stats: optional `metrics` flag).
struct Request {
  std::int64_t id = -1;
  Method method = Method::kStats;
  ConnId conn = kInvalidConn;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
  LinkId link = kInvalidLink;
  /// stats: also attach the obs metrics-registry snapshot (including
  /// timing histograms) to the result. Off by default — the snapshot
  /// holds wall-clock content, and the default stats response must stay
  /// byte-deterministic for the replay/threads-equality contracts.
  bool metrics = false;
};

/// Outcome of decoding one frame payload. Exactly one of `ok` /
/// `error_code` paths holds; `id` is always the best-known request id for
/// response correlation (-1 when even that was unrecoverable).
struct DecodedRequest {
  bool ok = false;
  Request request;
  std::int64_t id = -1;
  std::string error_code;
  std::string error_detail;
};

/// Parses and validates one frame payload: JSON shape, schema tag, id,
/// method name, per-method parameter presence/types/signs. Range checks
/// against the live topology (node/link ids) are the engine's job —
/// the decoder runs in the parallel pool and sees no network state.
DecodedRequest DecodeRequest(std::string_view payload);

/// Renders an error response (fixed field order).
std::string RenderErrorResponse(std::int64_t id, std::string_view code,
                                std::string_view detail);

/// Wraps an already-rendered result object (`{...}`) in the ok envelope
/// (fixed field order).
std::string RenderOkResponse(std::int64_t id, std::string_view result_object);

/// The shed response: an `overloaded` error whose error object carries a
/// `retry_after_ms` backoff hint after code/detail. Rendered on the
/// server poll thread *before* decode — overload rejection must stay
/// cheap — so `id` comes from ExtractRequestId, not a full parse.
std::string RenderOverloadedResponse(std::int64_t id, int retry_after_ms);

/// Best-effort request-id recovery without parsing: scans for the first
/// `"id"` key and reads the following integer. Wrong only when a string
/// value containing `"id"` precedes the real key — acceptable for a
/// correlation hint on a response the client will retry anyway. Returns
/// -1 when nothing parseable is found.
std::int64_t ExtractRequestId(std::string_view payload);

}  // namespace drtp::svc
