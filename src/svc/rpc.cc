#include "svc/rpc.h"

#include <limits>

#include "common/error.h"
#include "common/json.h"
#include "common/json_value.h"

namespace drtp::svc {
namespace {

/// Looks up a required integral field of `params`, rejecting negatives.
std::int64_t RequireNonNegInt(const JsonValue& params, const char* key) {
  const JsonValue* v = params.Find(key);
  if (v == nullptr) {
    throw ParseError(std::string("missing param '") + key + "'");
  }
  const std::int64_t n = v->AsInt64();
  if (n < 0) {
    throw ParseError(std::string("param '") + key + "' must be >= 0");
  }
  return n;
}

std::int32_t RequireId32(const JsonValue& params, const char* key) {
  const std::int64_t n = RequireNonNegInt(params, key);
  if (n > std::numeric_limits<std::int32_t>::max()) {
    throw ParseError(std::string("param '") + key + "' out of 32-bit range");
  }
  return static_cast<std::int32_t>(n);
}

const JsonValue& Params(const JsonValue& root) {
  static const JsonValue kEmpty = JsonValue::Object();
  const JsonValue* p = root.Find("params");
  if (p == nullptr) return kEmpty;  // methods without params may omit it
  if (!p->is_object()) throw ParseError("'params' must be an object");
  return *p;
}

}  // namespace

DecodedRequest DecodeRequest(std::string_view payload) {
  DecodedRequest out;
  JsonValue root;
  try {
    root = ParseJson(payload);
  } catch (const ParseError& e) {
    out.error_code = kErrBadJson;
    out.error_detail = e.what();
    return out;
  }

  try {
    if (!root.is_object()) throw ParseError("request is not a JSON object");
    // Recover the id first so every later failure can still correlate.
    const JsonValue* id = root.Find("id");
    if (id == nullptr) throw ParseError("missing 'id'");
    out.id = id->AsInt64();
    if (out.id < 0) throw ParseError("'id' must be >= 0");

    const JsonValue* schema = root.Find("schema");
    if (schema == nullptr || schema->AsString() != kRpcSchema) {
      throw ParseError("missing or unsupported 'schema' (want drtp.rpc/1)");
    }
    const JsonValue* method = root.Find("method");
    if (method == nullptr) throw ParseError("missing 'method'");
    const std::string& name = method->AsString();

    Request req;
    req.id = out.id;
    const JsonValue& params = Params(root);
    if (name == "admit") {
      req.method = Method::kAdmit;
      req.conn = RequireNonNegInt(params, "conn");
      req.src = RequireId32(params, "src");
      req.dst = RequireId32(params, "dst");
      req.bw = RequireNonNegInt(params, "bw_kbps");
      if (req.bw == 0) throw ParseError("param 'bw_kbps' must be > 0");
      if (req.src == req.dst) {
        throw ParseError("params 'src' and 'dst' must differ");
      }
    } else if (name == "release") {
      req.method = Method::kRelease;
      req.conn = RequireNonNegInt(params, "conn");
    } else if (name == "fail-link") {
      req.method = Method::kFailLink;
      req.link = RequireId32(params, "link");
    } else if (name == "repair-link") {
      req.method = Method::kRepairLink;
      req.link = RequireId32(params, "link");
    } else if (name == "stats") {
      req.method = Method::kStats;
      const JsonValue* metrics = params.Find("metrics");
      if (metrics != nullptr) req.metrics = metrics->AsBool();
    } else {
      out.error_code = kErrUnknownMethod;
      out.error_detail = "unknown method '" + name + "'";
      return out;
    }
    out.ok = true;
    out.request = req;
    return out;
  } catch (const ParseError& e) {
    out.error_code = kErrBadRequest;
    out.error_detail = e.what();
    return out;
  }
}

std::string RenderErrorResponse(std::int64_t id, std::string_view code,
                                std::string_view detail) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kRpcSchema);
  w.Key("id").Int(id);
  w.Key("ok").Bool(false);
  w.Key("error").BeginObject();
  w.Key("code").String(code);
  w.Key("detail").String(detail);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string RenderOverloadedResponse(std::int64_t id, int retry_after_ms) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kRpcSchema);
  w.Key("id").Int(id);
  w.Key("ok").Bool(false);
  w.Key("error").BeginObject();
  w.Key("code").String(kErrOverloaded);
  w.Key("detail").String("pipeline at capacity; retry after backoff");
  w.Key("retry_after_ms").Int(retry_after_ms);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::int64_t ExtractRequestId(std::string_view payload) {
  const std::size_t key = payload.find("\"id\"");
  if (key == std::string_view::npos) return -1;
  std::size_t i = key + 4;
  while (i < payload.size() &&
         (payload[i] == ' ' || payload[i] == '\t' || payload[i] == '\n' ||
          payload[i] == '\r')) {
    ++i;
  }
  if (i >= payload.size() || payload[i] != ':') return -1;
  ++i;
  while (i < payload.size() &&
         (payload[i] == ' ' || payload[i] == '\t' || payload[i] == '\n' ||
          payload[i] == '\r')) {
    ++i;
  }
  std::int64_t value = 0;
  bool any = false;
  while (i < payload.size() && payload[i] >= '0' && payload[i] <= '9') {
    if (value > (std::numeric_limits<std::int64_t>::max() - 9) / 10) {
      return -1;  // overflow: not a plausible request id
    }
    value = value * 10 + (payload[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : -1;
}

std::string RenderOkResponse(std::int64_t id, std::string_view result_object) {
  std::string out;
  out.reserve(64 + result_object.size());
  out += "{\"schema\":\"";
  out += kRpcSchema;
  out += "\",\"id\":";
  out += std::to_string(id);
  out += ",\"ok\":true,\"result\":";
  out += result_object;
  out += "}";
  return out;
}

}  // namespace drtp::svc
