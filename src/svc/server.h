// svc::Server — unix-socket front end for the admission daemon.
//
// One poll()-driven acceptor thread reads length-prefixed frames from any
// number of local clients and submits them to the Pipeline; responses are
// written back from the engine thread (per-client write mutex, so the
// acceptor's bad_frame rejections cannot interleave mid-frame with
// pipeline responses). Responses to one client always arrive in the order
// its requests were submitted.
//
// Shutdown is a self-pipe: Shutdown() writes one byte (async-signal-safe,
// callable from a SIGTERM handler) and Run() then stops reading, drains
// the pipeline — every frame already received is decoded, executed, and
// answered — closes all clients, and removes the socket file. Framing
// violations (oversized header) get one bad_frame response and the
// connection is dropped; a peer that dies mid-frame is logged and
// forgotten.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/socket.h"
#include "svc/engine.h"
#include "svc/pipeline.h"
#include "svc/wire.h"

namespace drtp::svc {

struct ServerOptions {
  std::string socket_path;
  PipelineOptions pipeline;
  /// Invoked on the poll thread after TriggerUserEvent() (e.g. a SIGUSR1
  /// handler requesting a flight-recorder dump). Serving continues.
  std::function<void()> on_user_signal;
};

class Server {
 public:
  Server(Engine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on options.socket_path. False + *error on failure.
  bool Start(std::string* error);

  /// Serves until Shutdown(). On return every received frame has been
  /// answered, all connections are closed, and the socket file removed.
  /// The caller owns post-drain steps (final audit, request-log dump).
  void Run();

  /// Requests Run() to stop and drain. Async-signal-safe; idempotent.
  void Shutdown();

  /// Requests one on_user_signal callback on the poll thread, without
  /// stopping the server. Async-signal-safe.
  void TriggerUserEvent();

  std::int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct ClientConn {
    UniqueFd fd;
    FrameReader reader;
    std::mutex write_mu;
  };

  void HandleReadable(std::uint64_t id, const std::shared_ptr<ClientConn>& c);
  void SendToClient(const std::shared_ptr<ClientConn>& c,
                    std::string_view payload);
  void RemoveClient(std::uint64_t id);

  Engine& engine_;
  ServerOptions options_;
  Pipeline pipeline_;
  UniqueFd listen_;
  UniqueFd wake_r_;
  UniqueFd wake_w_;

  std::mutex clients_mu_;
  std::map<std::uint64_t, std::shared_ptr<ClientConn>> clients_;
  std::uint64_t next_client_ = 1;
  std::atomic<std::int64_t> connections_accepted_{0};
};

}  // namespace drtp::svc
