#include "svc/engine.h"

#include <unistd.h>

#include <cmath>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/digest.h"
#include "common/error.h"
#include "common/json.h"
#include "drtp/admission.h"
#include "drtp/failure.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/paper.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace drtp::svc {
namespace {

/// Process-wide service counters (drtp.svc.*), resolved once.
struct SvcCounters {
  obs::Counter frames = obs::GetCounter("drtp.svc.frames");
  obs::Counter errors = obs::GetCounter("drtp.svc.errors");
  obs::Counter admits = obs::GetCounter("drtp.svc.admits");
  obs::Counter blocks = obs::GetCounter("drtp.svc.blocks");
  obs::Counter releases = obs::GetCounter("drtp.svc.releases");
  obs::Counter link_fails = obs::GetCounter("drtp.svc.link_fails");
  obs::Counter link_repairs = obs::GetCounter("drtp.svc.link_repairs");
  obs::Counter batches = obs::GetCounter("drtp.svc.batches");
};

const SvcCounters& Counters() {
  static const SvcCounters counters;
  return counters;
}

obs::FlightRecorder& Flight() { return obs::FlightRecorder::Global(); }

/// Stable small index for an error code, for flight-recorder args (the
/// recorder stores only integers). Order mirrors the taxonomy listing in
/// rpc.h / docs/DRTPD.md.
std::int64_t ErrorCodeIndex(std::string_view code) {
  constexpr std::string_view kCodes[] = {
      kErrBadFrame,  kErrBadJson,  kErrBadRequest, kErrUnknownMethod,
      kErrConnExists, kErrNotFound, kErrOutOfRange, kErrDraining,
      kErrOverloaded,
  };
  for (std::size_t i = 0; i < std::size(kCodes); ++i) {
    if (code == kCodes[i]) return static_cast<std::int64_t>(i);
  }
  return -1;
}

/// Byte-order-independent int fold (explicit little-endian byte walk).
std::uint64_t FoldInt(std::uint64_t d, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    d ^= (u >> (i * 8)) & 0xFF;
    d *= kFnv1aPrime;
  }
  return d;
}

}  // namespace

std::uint64_t NetworkStateDigest(const core::DrtpNetwork& net) {
  std::uint64_t d = kFnv1aOffset;
  const net::Topology& topo = net.topology();
  d = FoldInt(d, topo.num_nodes());
  d = FoldInt(d, topo.num_links());
  // Connection table (std::map — ascending, deterministic).
  for (const auto& [id, conn] : net.connections()) {
    d = FoldInt(d, id);
    d = FoldInt(d, conn.src);
    d = FoldInt(d, conn.dst);
    d = FoldInt(d, conn.bw);
    d = FoldInt(d, conn.primary.hops());
    for (const LinkId l : conn.primary.links()) d = FoldInt(d, l);
    d = FoldInt(d, static_cast<std::int64_t>(conn.backups.size()));
    for (const routing::Path& b : conn.backups) {
      d = FoldInt(d, b.hops());
      for (const LinkId l : b.links()) d = FoldInt(d, l);
    }
  }
  // Per-link dynamic state: up/down, ledger pools, APLV abridgements.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    d = FoldInt(d, net.IsLinkUp(l) ? 1 : 0);
    d = FoldInt(d, net.ledger().prime(l));
    d = FoldInt(d, net.ledger().spare(l));
    d = FoldInt(d, net.aplv(l).L1());
    d = FoldInt(d, net.aplv(l).Max());
  }
  return d;
}

Engine::Engine(const net::Topology& topo, EngineOptions options)
    : options_(std::move(options)),
      net_(topo, core::NetworkConfig{.spare_mode = options_.spare_mode,
                                     .duplex_failures = false}),
      db_(topo.num_links(), topo.num_links()),
      scheme_(sim::MakeScheme(options_.scheme, net_.topology(),
                              options_.seed)) {
  DRTP_CHECK(options_.num_backups >= 0);
  if (options_.audit_interval > 0) {
    auditor_ = std::make_unique<fault::Auditor>(fault::AuditorOptions{
        .out = options_.audit_out,
        .require_srlg_disjoint = scheme_->requires_srlg_disjoint_backup()});
  }
}

Engine::~Engine() = default;

Time Engine::NextEventTime() {
  t_ += 1.0;
  return t_;
}

void Engine::LogEvent(sim::ScenarioEvent event) {
  if (options_.keep_request_log) log_.push_back(event);
  // Group-commit buffer: ExecuteBatch appends these to the WAL (one
  // record, one fsync) before the batch's responses are released.
  batch_events_.push_back(event);
}

std::vector<std::string> Engine::ExecuteBatch(
    std::span<const DecodedRequest> batch) {
  std::vector<std::string> out;
  out.reserve(batch.size());
  if (batch.empty()) return out;
  stats_.batch_last = static_cast<std::int64_t>(batch.size());
  // One snapshot per batch: every admission in the batch routes against
  // this advertisement. Failure/repair events inside the batch
  // re-publish immediately (see DoFailLink/DoRepairLink).
  net_.PublishTo(db_, t_);
  for (const DecodedRequest& d : batch) {
    ++stats_.frames;
    Counters().frames.Add();
    if (!d.ok) {
      ++stats_.errors;
      Counters().errors.Add();
      Flight().Record(obs::FlightKind::kError, d.id,
                      ErrorCodeIndex(d.error_code));
      out.push_back(
          RenderErrorResponse(d.id, d.error_code, d.error_detail));
      continue;
    }
    out.push_back(Execute(d.request));
  }
  if (wal_ != nullptr && !replaying_ && !batch_events_.empty()) {
    // Durability point: the batch's effective events reach stable
    // storage before any of its responses leave this function. A failed
    // append (disk full, dead device) is fatal by design — releasing
    // un-durable responses would break the recovery contract.
    std::string err;
    DRTP_CHECK_MSG(wal_->AppendBatch(batch_events_, &err),
                   "wal group commit failed: " << err);
    ++stats_.wal_batches;
  }
  batch_events_.clear();
  ++stats_.batches;
  Counters().batches.Add();
  if (auditor_ != nullptr && options_.audit_interval > 0 &&
      stats_.batches % options_.audit_interval == 0) {
    auditor_->Check(net_, t_, "batch_commit", nullptr);
    AfterAuditCheck();
  }
  MaybeSnapshot();
  return out;
}

std::string Engine::Execute(const Request& req) {
  switch (req.method) {
    case Method::kAdmit:
      return DoAdmit(req);
    case Method::kRelease:
      return DoRelease(req);
    case Method::kFailLink:
      return DoFailLink(req);
    case Method::kRepairLink:
      return DoRepairLink(req);
    case Method::kStats:
      return DoStats(req);
  }
  DRTP_CHECK_MSG(false, "unreachable method");
  return {};
}

namespace {

/// Renders an error and counts it — all handler failures route through
/// here so stats_.errors matches the ok=false responses on the wire.
std::string CountedError(EngineStats& stats, std::int64_t id,
                         std::string_view code, const std::string& detail) {
  ++stats.errors;
  Counters().errors.Add();
  Flight().Record(obs::FlightKind::kError, id, ErrorCodeIndex(code));
  return RenderErrorResponse(id, code, detail);
}

}  // namespace

std::string Engine::DoAdmit(const Request& req) {
  const int nodes = net_.topology().num_nodes();
  if (req.src >= nodes || req.dst >= nodes) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "node id out of range [0, " +
                            std::to_string(nodes) + ")");
  }
  if (net_.Find(req.conn) != nullptr) {
    return CountedError(stats_, req.id, kErrConnExists,
                        "connection " + std::to_string(req.conn) +
                            " already active");
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kRequest,
            .time = now,
            .conn = req.conn,
            .src = req.src,
            .dst = req.dst,
            .bw = req.bw});
  const core::AdmitOutcome out = core::AdmitConnection(
      *scheme_, net_, db_, req.conn, req.src, req.dst, req.bw, now,
      core::AdmitOptions{.num_backups = options_.num_backups});
  JsonWriter w;
  w.BeginObject();
  w.Key("admitted").Bool(out.admitted);
  w.Key("conn").Int(req.conn);
  if (out.admitted) {
    ++stats_.admitted;
    Counters().admits.Add();
    Flight().Record(obs::FlightKind::kAdmit, req.conn, out.primary->hops(),
                    out.has_backup() ? 1 : 0);
    w.Key("primary_hops").Int(out.primary->hops());
    w.Key("protected").Bool(out.has_backup());
    w.Key("backup_hops").Int(out.backup.has_value() ? out.backup->hops() : 0);
    w.Key("overbooked_hops").Int(out.overbooked_hops);
    w.Key("extra_backups").Int(out.extra_backups);
  } else {
    ++stats_.blocked;
    Counters().blocks.Add();
    Flight().Record(obs::FlightKind::kBlock, req.conn);
  }
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoRelease(const Request& req) {
  if (net_.Find(req.conn) == nullptr) {
    return CountedError(stats_, req.id, kErrNotFound,
                        "no active connection " + std::to_string(req.conn));
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kRelease,
            .time = now,
            .conn = req.conn});
  net_.ReleaseConnection(req.conn);
  ++stats_.released;
  Counters().releases.Add();
  Flight().Record(obs::FlightKind::kRelease, req.conn, net_.ActiveCount());
  JsonWriter w;
  w.BeginObject();
  w.Key("released").Bool(true);
  w.Key("conn").Int(req.conn);
  w.Key("active").Int(net_.ActiveCount());
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoFailLink(const Request& req) {
  const int links = net_.topology().num_links();
  if (req.link >= links) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "link id out of range [0, " +
                            std::to_string(links) + ")");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("link").Int(req.link);
  if (!net_.IsLinkUp(req.link)) {
    w.Key("changed").Bool(false);
    w.EndObject();
    return RenderOkResponse(req.id, w.str());
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kLinkFail,
            .time = now,
            .link = req.link});
  core::RoutingScheme* reroute =
      options_.num_backups > 0 ? scheme_.get() : nullptr;
  const core::SwitchoverReport report =
      core::ApplyLinkFailure(net_, req.link, now, reroute, &db_);
  scheme_->OnTopologyChanged(net_);
  // Failures re-advertise immediately even mid-batch: later admissions in
  // this batch must not route onto a dead link.
  net_.PublishTo(db_, now);
  ++stats_.link_fails;
  Counters().link_fails.Add();
  Flight().Record(obs::FlightKind::kLinkFail, req.link,
                  static_cast<std::int64_t>(report.recovered.size()),
                  static_cast<std::int64_t>(report.dropped.size()),
                  static_cast<std::int64_t>(report.backups_lost.size()));
  // Per-connection protection transitions: step 4 re-protected some of
  // the affected connections; the rest now run degraded.
  for (const ConnId c : report.rerouted) {
    Flight().Record(obs::FlightKind::kReprotect, c);
  }
  for (const ConnId c : report.recovered) {
    const core::DrConnection* conn = net_.Find(c);
    if (conn != nullptr && !conn->has_backup()) {
      Flight().Record(obs::FlightKind::kDegrade, c);
    }
  }
  for (const ConnId c : report.backups_lost) {
    const core::DrConnection* conn = net_.Find(c);
    if (conn != nullptr && !conn->has_backup()) {
      Flight().Record(obs::FlightKind::kDegrade, c);
    }
  }
  if (auditor_ != nullptr) {
    auditor_->Check(net_, now, "link_fail", &report);
    AfterAuditCheck();
  }
  w.Key("changed").Bool(true);
  w.Key("recovered").Int(static_cast<std::int64_t>(report.recovered.size()));
  w.Key("dropped").Int(static_cast<std::int64_t>(report.dropped.size()));
  w.Key("backups_lost")
      .Int(static_cast<std::int64_t>(report.backups_lost.size()));
  w.Key("rerouted").Int(static_cast<std::int64_t>(report.rerouted.size()));
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoRepairLink(const Request& req) {
  const int links = net_.topology().num_links();
  if (req.link >= links) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "link id out of range [0, " +
                            std::to_string(links) + ")");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("link").Int(req.link);
  if (net_.IsLinkUp(req.link)) {
    w.Key("changed").Bool(false);
    w.EndObject();
    return RenderOkResponse(req.id, w.str());
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kLinkRepair,
            .time = now,
            .link = req.link});
  net_.SetLinkUp(req.link);
  scheme_->OnTopologyChanged(net_);
  net_.PublishTo(db_, now);
  ++stats_.link_repairs;
  Counters().link_repairs.Add();
  Flight().Record(obs::FlightKind::kLinkRepair, req.link);
  w.Key("changed").Bool(true);
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoStats(const Request& req) {
  const Ratio pbk = core::EvaluateAllSingleLinkFailures(net_);
  JsonWriter w;
  w.BeginObject();
  w.Key("nodes").Int(net_.topology().num_nodes());
  w.Key("links").Int(net_.topology().num_links());
  w.Key("active").Int(net_.ActiveCount());
  w.Key("frames").Int(stats_.frames);
  w.Key("errors").Int(stats_.errors);
  w.Key("admitted").Int(stats_.admitted);
  w.Key("blocked").Int(stats_.blocked);
  w.Key("released").Int(stats_.released);
  w.Key("link_fails").Int(stats_.link_fails);
  w.Key("link_repairs").Int(stats_.link_repairs);
  w.Key("batches").Int(stats_.batches);
  w.Key("prime_kbps").Int(net_.ledger().TotalPrime());
  w.Key("spare_kbps").Int(net_.ledger().TotalSpare());
  w.Key("overbooked_links")
      .Int(static_cast<std::int64_t>(net_.OverbookedLinks().size()));
  w.Key("pbk_hits").Int(pbk.hits);
  w.Key("pbk_trials").Int(pbk.trials);
  w.Key("pbk").Double(pbk.value());
  w.Key("digest").String(DigestHex(NetworkStateDigest(net_)));
  w.Key("audit_checks").Int(audit_checks());
  w.Key("audit_violations").Int(audit_violations());
  // PR 8 additions — deterministic for a fixed request sequence, so the
  // threads=1 vs threads=4 byte-equality contract still holds.
  w.Key("degraded").Int(DegradedCount());
  w.Key("batch_last").Int(stats_.batch_last);
  w.Key("request_log_events").Int(static_cast<std::int64_t>(log_.size()));
  // PR 9 additions — all deterministic for a fixed request sequence
  // (shed is 0 unless the server actually hit its admission bound).
  w.Key("wal_batches").Int(stats_.wal_batches);
  w.Key("wal_bytes").Int(
      wal_ != nullptr ? static_cast<std::int64_t>(wal_->bytes()) : 0);
  w.Key("snapshots").Int(stats_.snapshots);
  w.Key("shed").Int(shed_ != nullptr
                        ? shed_->load(std::memory_order_relaxed)
                        : 0);
  if (req.metrics) {
    // Opt-in only: the snapshot holds wall-clock timing histograms and
    // process-global counters, which are NOT deterministic.
    w.Key("metrics");
    obs::Registry::Global().Snapshot().WriteJson(w, /*include_timings=*/true);
  }
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::int64_t Engine::DegradedCount() const {
  std::int64_t n = 0;
  for (const auto& [id, conn] : net_.connections()) {
    if (!conn.has_backup()) ++n;
  }
  return n;
}

void Engine::AfterAuditCheck() {
  Flight().Record(obs::FlightKind::kAuditSample, audit_checks(),
                  audit_violations());
  if (!flight_dumped_ && audit_violations() > 0 &&
      !options_.flight_dump_path.empty()) {
    flight_dumped_ = true;
    Flight().DumpToFile(options_.flight_dump_path, "audit_violation");
  }
}

std::int64_t Engine::FinalAudit() {
  if (auditor_ != nullptr) {
    auditor_->Check(net_, t_, "drain", nullptr);
    AfterAuditCheck();
  }
  return audit_violations();
}

sim::Scenario Engine::RequestLog() const {
  DRTP_CHECK_MSG(options_.keep_request_log,
                 "request log was not enabled on this engine");
  sim::Scenario s;
  s.traffic.duration = t_ + 1.0;
  s.events = log_;
  return s;
}

std::uint64_t Engine::ConfigDigest() const {
  std::uint64_t d = kFnv1aOffset;
  d = Fnv1aExtend(d, options_.scheme);
  d = FoldInt(d, static_cast<std::int64_t>(options_.seed));
  d = FoldInt(d, options_.num_backups);
  d = FoldInt(d,
              options_.spare_mode == core::SpareMode::kMultiplexed ? 0 : 1);
  const net::Topology& topo = net_.topology();
  d = FoldInt(d, topo.num_nodes());
  d = FoldInt(d, topo.num_links());
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const net::Link& link = topo.link(l);
    d = FoldInt(d, link.src);
    d = FoldInt(d, link.dst);
    d = FoldInt(d, link.capacity);
  }
  return d;
}

bool Engine::WriteSnapshot(std::string* error) {
  DRTP_CHECK_MSG(!options_.snapshot_path.empty(),
                 "WriteSnapshot without snapshot_path");
  // Counted before rendering so a recovered engine's `snapshots` stat
  // includes the file it was restored from.
  ++stats_.snapshots;
  const std::uint64_t wal_offset = wal_ != nullptr ? wal_->bytes() : 0;
  const std::string body =
      RenderSnapshotBody(net_, stats_, static_cast<std::int64_t>(t_),
                         ConfigDigest(), wal_offset, scheme_->name(),
                         scheme_->SaveState());
  if (!WriteSnapshotFile(options_.snapshot_path, body, error)) {
    --stats_.snapshots;
    return false;
  }
  return true;
}

void Engine::MaybeSnapshot() {
  if (replaying_ || options_.snapshot_interval <= 0) return;
  if (stats_.batches % options_.snapshot_interval != 0) return;
  std::string err;
  DRTP_CHECK_MSG(WriteSnapshot(&err), "snapshot failed: " << err);
}

void Engine::RestoreSnapshot(const Snapshot& snap) {
  DRTP_CHECK_MSG(net_.ActiveCount() == 0 && t_ == 0.0,
                 "RestoreSnapshot on a non-fresh engine");
  if (snap.config_digest != ConfigDigest()) {
    throw ParseError(
        "snapshot config digest mismatch: the file was written under a "
        "different scheme/seed/backups/spare-mode/topology");
  }
  if (snap.scheme != scheme_->name()) {
    throw ParseError("snapshot scheme '" + snap.scheme +
                     "' != engine scheme '" + scheme_->name() + "'");
  }
  const int links = net_.topology().num_links();
  for (const LinkId l : snap.down_links) {
    if (l < 0 || l >= links) {
      throw ParseError("snapshot down link out of range");
    }
    net_.SetLinkDown(l);
  }
  // Pass 1: every primary, ascending by id. All primaries must land
  // before any backup registers — RegisterBackup may overbook links, and
  // an interleaved overbooked backup could consume the free bandwidth a
  // later primary needs (EstablishConnection never draws from spare).
  for (const SnapshotConn& c : snap.conns) {
    const auto primary = routing::Path::FromLinks(net_.topology(), c.primary);
    if (!primary.has_value()) {
      throw ParseError("snapshot conn " + std::to_string(c.id) +
                       " primary is not a path in this topology");
    }
    if (!net_.EstablishConnection(c.id, *primary, c.bw, /*now=*/0.0)) {
      throw ParseError("snapshot conn " + std::to_string(c.id) +
                       " does not fit the topology (down link or "
                       "insufficient bandwidth)");
    }
  }
  // Pass 2: backups, in the serialized order (RegisterBackup never
  // rejects; overbooking is re-derived exactly as it originally was).
  for (const SnapshotConn& c : snap.conns) {
    for (const std::vector<LinkId>& b : c.backups) {
      const auto backup = routing::Path::FromLinks(net_.topology(), b);
      if (!backup.has_value()) {
        throw ParseError("snapshot conn " + std::to_string(c.id) +
                         " backup is not a path in this topology");
      }
      net_.RegisterBackup(c.id, *backup);
    }
  }
  try {
    scheme_->LoadState(snap.scheme_state);
  } catch (const ParseError& e) {
    throw ParseError(std::string("snapshot scheme state: ") + e.what());
  }
  scheme_->OnTopologyChanged(net_);
  stats_ = snap.stats;
  t_ = static_cast<Time>(snap.t);
  const std::uint64_t got = NetworkStateDigest(net_);
  if (got != snap.state_digest) {
    throw ParseError("restored state digest " + DigestHex(got) +
                     " != snapshot state_digest " +
                     DigestHex(snap.state_digest));
  }
}

namespace {

/// Lifts a WAL event back into the request shape ExecuteBatch consumes.
/// Replay responses are discarded, so the request id is immaterial.
DecodedRequest RequestFromEvent(const sim::ScenarioEvent& e) {
  Request r;
  r.id = 0;
  switch (e.type) {
    case sim::ScenarioEvent::Type::kRequest:
      r.method = Method::kAdmit;
      r.conn = e.conn;
      r.src = e.src;
      r.dst = e.dst;
      r.bw = e.bw;
      break;
    case sim::ScenarioEvent::Type::kRelease:
      r.method = Method::kRelease;
      r.conn = e.conn;
      break;
    case sim::ScenarioEvent::Type::kLinkFail:
      r.method = Method::kFailLink;
      r.link = e.link;
      break;
    case sim::ScenarioEvent::Type::kLinkRepair:
      r.method = Method::kRepairLink;
      r.link = e.link;
      break;
    default:
      throw ParseError("wal event kind is not replayable");
  }
  DecodedRequest out;
  out.ok = true;
  out.request = r;
  out.id = 0;
  return out;
}

}  // namespace

RecoverReport Engine::Recover(const std::string& wal_path,
                              const std::string& snapshot_path) {
  DRTP_CHECK_MSG(stats_.batches == 0 && net_.ActiveCount() == 0,
                 "Recover on a non-fresh engine");
  RecoverReport rep;
  WalRecovery wal;
  if (!wal_path.empty()) {
    wal = RecoverWal(wal_path, ConfigDigest());
    rep.wal_valid_bytes = wal.valid_bytes;
    rep.wal_truncated_bytes = wal.truncated_bytes;
  }
  std::uint64_t replay_from = 0;
  if (!snapshot_path.empty() &&
      ::access(snapshot_path.c_str(), F_OK) == 0) {
    const Snapshot snap = LoadSnapshotFile(snapshot_path);
    // The snapshot must land exactly on a recovered record boundary: an
    // offset past the verified prefix means the WAL lost committed
    // records (mid-file corruption, the unrecoverable case), and an
    // unaligned offset means the files do not belong together.
    if (wal.existed) {
      bool boundary = snap.wal_offset == wal.header_end;
      for (const WalBatch& b : wal.batches) {
        boundary = boundary || snap.wal_offset == b.end_offset;
      }
      if (snap.wal_offset > wal.valid_bytes || !boundary) {
        throw ParseError(
            "snapshot is bound to wal offset " +
            std::to_string(snap.wal_offset) + " but the recovered wal has " +
            std::to_string(wal.valid_bytes) +
            " verified bytes with no matching record boundary");
      }
    } else if (snap.wal_offset != 0) {
      throw ParseError("snapshot is bound to wal offset " +
                       std::to_string(snap.wal_offset) +
                       " but no wal was recovered");
    }
    RestoreSnapshot(snap);
    rep.from_snapshot = true;
    replay_from = snap.wal_offset;
  }
  // Replay the suffix through the identical batch path. The WAL handle
  // (if any) is suppressed via replaying_ — these events are already
  // durable — and so is the snapshot cadence.
  replaying_ = true;
  try {
    for (const WalBatch& b : wal.batches) {
      if (b.end_offset <= replay_from) continue;
      std::vector<DecodedRequest> requests;
      requests.reserve(b.events.size());
      for (const sim::ScenarioEvent& e : b.events) {
        requests.push_back(RequestFromEvent(e));
      }
      const std::vector<std::string> responses = ExecuteBatch(requests);
      for (const std::string& r : responses) {
        if (r.find("\"ok\":true") == std::string::npos) {
          throw ParseError("wal replay diverged: a logged event failed "
                           "against the recovered state: " + r);
        }
      }
      // Every logged event advanced the virtual clock exactly once; a
      // mismatch means the replayed batch enacted a different set of
      // state changes than the original run.
      if (!b.events.empty() &&
          t_ != b.events.back().time) {
        throw ParseError("wal replay time divergence at batch ending at "
                         "offset " + std::to_string(b.end_offset));
      }
      ++rep.batches_replayed;
      rep.events_replayed += static_cast<std::int64_t>(b.events.size());
    }
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
  // Replayed batches were WAL records too: the recovered counter must
  // agree with what a continuation of the original process would show.
  stats_.wal_batches += rep.batches_replayed;
  return rep;
}

std::int64_t Engine::audit_checks() const {
  return auditor_ != nullptr ? auditor_->checks() : 0;
}

std::int64_t Engine::audit_violations() const {
  return auditor_ != nullptr ? auditor_->violation_count() : 0;
}

}  // namespace drtp::svc
