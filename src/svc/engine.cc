#include "svc/engine.h"

#include <utility>

#include "common/check.h"
#include "common/digest.h"
#include "common/json.h"
#include "drtp/admission.h"
#include "drtp/failure.h"
#include "obs/metrics.h"
#include "sim/paper.h"

namespace drtp::svc {
namespace {

/// Process-wide service counters (drtp.svc.*), resolved once.
struct SvcCounters {
  obs::Counter frames = obs::GetCounter("drtp.svc.frames");
  obs::Counter errors = obs::GetCounter("drtp.svc.errors");
  obs::Counter admits = obs::GetCounter("drtp.svc.admits");
  obs::Counter blocks = obs::GetCounter("drtp.svc.blocks");
  obs::Counter releases = obs::GetCounter("drtp.svc.releases");
  obs::Counter link_fails = obs::GetCounter("drtp.svc.link_fails");
  obs::Counter link_repairs = obs::GetCounter("drtp.svc.link_repairs");
  obs::Counter batches = obs::GetCounter("drtp.svc.batches");
};

const SvcCounters& Counters() {
  static const SvcCounters counters;
  return counters;
}

/// Byte-order-independent int fold (explicit little-endian byte walk).
std::uint64_t FoldInt(std::uint64_t d, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    d ^= (u >> (i * 8)) & 0xFF;
    d *= kFnv1aPrime;
  }
  return d;
}

}  // namespace

std::uint64_t NetworkStateDigest(const core::DrtpNetwork& net) {
  std::uint64_t d = kFnv1aOffset;
  const net::Topology& topo = net.topology();
  d = FoldInt(d, topo.num_nodes());
  d = FoldInt(d, topo.num_links());
  // Connection table (std::map — ascending, deterministic).
  for (const auto& [id, conn] : net.connections()) {
    d = FoldInt(d, id);
    d = FoldInt(d, conn.src);
    d = FoldInt(d, conn.dst);
    d = FoldInt(d, conn.bw);
    d = FoldInt(d, conn.primary.hops());
    for (const LinkId l : conn.primary.links()) d = FoldInt(d, l);
    d = FoldInt(d, static_cast<std::int64_t>(conn.backups.size()));
    for (const routing::Path& b : conn.backups) {
      d = FoldInt(d, b.hops());
      for (const LinkId l : b.links()) d = FoldInt(d, l);
    }
  }
  // Per-link dynamic state: up/down, ledger pools, APLV abridgements.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    d = FoldInt(d, net.IsLinkUp(l) ? 1 : 0);
    d = FoldInt(d, net.ledger().prime(l));
    d = FoldInt(d, net.ledger().spare(l));
    d = FoldInt(d, net.aplv(l).L1());
    d = FoldInt(d, net.aplv(l).Max());
  }
  return d;
}

Engine::Engine(const net::Topology& topo, EngineOptions options)
    : options_(std::move(options)),
      net_(topo, core::NetworkConfig{.spare_mode = options_.spare_mode,
                                     .duplex_failures = false}),
      db_(topo.num_links(), topo.num_links()),
      scheme_(sim::MakeScheme(options_.scheme, net_.topology(),
                              options_.seed)) {
  DRTP_CHECK(options_.num_backups >= 0);
  if (options_.audit_interval > 0) {
    auditor_ = std::make_unique<fault::Auditor>(
        fault::AuditorOptions{.out = options_.audit_out});
  }
}

Engine::~Engine() = default;

Time Engine::NextEventTime() {
  t_ += 1.0;
  return t_;
}

void Engine::LogEvent(sim::ScenarioEvent event) {
  if (options_.keep_request_log) log_.push_back(event);
}

std::vector<std::string> Engine::ExecuteBatch(
    std::span<const DecodedRequest> batch) {
  std::vector<std::string> out;
  out.reserve(batch.size());
  if (batch.empty()) return out;
  // One snapshot per batch: every admission in the batch routes against
  // this advertisement. Failure/repair events inside the batch
  // re-publish immediately (see DoFailLink/DoRepairLink).
  net_.PublishTo(db_, t_);
  for (const DecodedRequest& d : batch) {
    ++stats_.frames;
    Counters().frames.Add();
    if (!d.ok) {
      ++stats_.errors;
      Counters().errors.Add();
      out.push_back(
          RenderErrorResponse(d.id, d.error_code, d.error_detail));
      continue;
    }
    out.push_back(Execute(d.request));
  }
  ++stats_.batches;
  Counters().batches.Add();
  if (auditor_ != nullptr && options_.audit_interval > 0 &&
      stats_.batches % options_.audit_interval == 0) {
    auditor_->Check(net_, t_, "batch_commit", nullptr);
  }
  return out;
}

std::string Engine::Execute(const Request& req) {
  switch (req.method) {
    case Method::kAdmit:
      return DoAdmit(req);
    case Method::kRelease:
      return DoRelease(req);
    case Method::kFailLink:
      return DoFailLink(req);
    case Method::kRepairLink:
      return DoRepairLink(req);
    case Method::kStats:
      return DoStats(req);
  }
  DRTP_CHECK_MSG(false, "unreachable method");
  return {};
}

namespace {

/// Renders an error and counts it — all handler failures route through
/// here so stats_.errors matches the ok=false responses on the wire.
std::string CountedError(EngineStats& stats, std::int64_t id,
                         std::string_view code, const std::string& detail) {
  ++stats.errors;
  Counters().errors.Add();
  return RenderErrorResponse(id, code, detail);
}

}  // namespace

std::string Engine::DoAdmit(const Request& req) {
  const int nodes = net_.topology().num_nodes();
  if (req.src >= nodes || req.dst >= nodes) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "node id out of range [0, " +
                            std::to_string(nodes) + ")");
  }
  if (net_.Find(req.conn) != nullptr) {
    return CountedError(stats_, req.id, kErrConnExists,
                        "connection " + std::to_string(req.conn) +
                            " already active");
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kRequest,
            .time = now,
            .conn = req.conn,
            .src = req.src,
            .dst = req.dst,
            .bw = req.bw});
  const core::AdmitOutcome out = core::AdmitConnection(
      *scheme_, net_, db_, req.conn, req.src, req.dst, req.bw, now,
      core::AdmitOptions{.num_backups = options_.num_backups});
  JsonWriter w;
  w.BeginObject();
  w.Key("admitted").Bool(out.admitted);
  w.Key("conn").Int(req.conn);
  if (out.admitted) {
    ++stats_.admitted;
    Counters().admits.Add();
    w.Key("primary_hops").Int(out.primary->hops());
    w.Key("protected").Bool(out.has_backup());
    w.Key("backup_hops").Int(out.backup.has_value() ? out.backup->hops() : 0);
    w.Key("overbooked_hops").Int(out.overbooked_hops);
    w.Key("extra_backups").Int(out.extra_backups);
  } else {
    ++stats_.blocked;
    Counters().blocks.Add();
  }
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoRelease(const Request& req) {
  if (net_.Find(req.conn) == nullptr) {
    return CountedError(stats_, req.id, kErrNotFound,
                        "no active connection " + std::to_string(req.conn));
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kRelease,
            .time = now,
            .conn = req.conn});
  net_.ReleaseConnection(req.conn);
  ++stats_.released;
  Counters().releases.Add();
  JsonWriter w;
  w.BeginObject();
  w.Key("released").Bool(true);
  w.Key("conn").Int(req.conn);
  w.Key("active").Int(net_.ActiveCount());
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoFailLink(const Request& req) {
  const int links = net_.topology().num_links();
  if (req.link >= links) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "link id out of range [0, " +
                            std::to_string(links) + ")");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("link").Int(req.link);
  if (!net_.IsLinkUp(req.link)) {
    w.Key("changed").Bool(false);
    w.EndObject();
    return RenderOkResponse(req.id, w.str());
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kLinkFail,
            .time = now,
            .link = req.link});
  core::RoutingScheme* reroute =
      options_.num_backups > 0 ? scheme_.get() : nullptr;
  const core::SwitchoverReport report =
      core::ApplyLinkFailure(net_, req.link, now, reroute, &db_);
  scheme_->OnTopologyChanged(net_);
  // Failures re-advertise immediately even mid-batch: later admissions in
  // this batch must not route onto a dead link.
  net_.PublishTo(db_, now);
  ++stats_.link_fails;
  Counters().link_fails.Add();
  if (auditor_ != nullptr) auditor_->Check(net_, now, "link_fail", &report);
  w.Key("changed").Bool(true);
  w.Key("recovered").Int(static_cast<std::int64_t>(report.recovered.size()));
  w.Key("dropped").Int(static_cast<std::int64_t>(report.dropped.size()));
  w.Key("backups_lost")
      .Int(static_cast<std::int64_t>(report.backups_lost.size()));
  w.Key("rerouted").Int(static_cast<std::int64_t>(report.rerouted.size()));
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoRepairLink(const Request& req) {
  const int links = net_.topology().num_links();
  if (req.link >= links) {
    return CountedError(stats_, req.id, kErrOutOfRange,
                        "link id out of range [0, " +
                            std::to_string(links) + ")");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("link").Int(req.link);
  if (net_.IsLinkUp(req.link)) {
    w.Key("changed").Bool(false);
    w.EndObject();
    return RenderOkResponse(req.id, w.str());
  }
  const Time now = NextEventTime();
  LogEvent({.type = sim::ScenarioEvent::Type::kLinkRepair,
            .time = now,
            .link = req.link});
  net_.SetLinkUp(req.link);
  scheme_->OnTopologyChanged(net_);
  net_.PublishTo(db_, now);
  ++stats_.link_repairs;
  Counters().link_repairs.Add();
  w.Key("changed").Bool(true);
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::string Engine::DoStats(const Request& req) {
  const Ratio pbk = core::EvaluateAllSingleLinkFailures(net_);
  JsonWriter w;
  w.BeginObject();
  w.Key("nodes").Int(net_.topology().num_nodes());
  w.Key("links").Int(net_.topology().num_links());
  w.Key("active").Int(net_.ActiveCount());
  w.Key("frames").Int(stats_.frames);
  w.Key("errors").Int(stats_.errors);
  w.Key("admitted").Int(stats_.admitted);
  w.Key("blocked").Int(stats_.blocked);
  w.Key("released").Int(stats_.released);
  w.Key("link_fails").Int(stats_.link_fails);
  w.Key("link_repairs").Int(stats_.link_repairs);
  w.Key("batches").Int(stats_.batches);
  w.Key("prime_kbps").Int(net_.ledger().TotalPrime());
  w.Key("spare_kbps").Int(net_.ledger().TotalSpare());
  w.Key("overbooked_links")
      .Int(static_cast<std::int64_t>(net_.OverbookedLinks().size()));
  w.Key("pbk_hits").Int(pbk.hits);
  w.Key("pbk_trials").Int(pbk.trials);
  w.Key("pbk").Double(pbk.value());
  w.Key("digest").String(DigestHex(NetworkStateDigest(net_)));
  w.Key("audit_checks").Int(audit_checks());
  w.Key("audit_violations").Int(audit_violations());
  w.EndObject();
  return RenderOkResponse(req.id, w.str());
}

std::int64_t Engine::FinalAudit() {
  if (auditor_ != nullptr) auditor_->Check(net_, t_, "drain", nullptr);
  return audit_violations();
}

sim::Scenario Engine::RequestLog() const {
  DRTP_CHECK_MSG(options_.keep_request_log,
                 "request log was not enabled on this engine");
  sim::Scenario s;
  s.traffic.duration = t_ + 1.0;
  s.events = log_;
  return s;
}

std::int64_t Engine::audit_checks() const {
  return auditor_ != nullptr ? auditor_->checks() : 0;
}

std::int64_t Engine::audit_violations() const {
  return auditor_ != nullptr ? auditor_->violation_count() : 0;
}

}  // namespace drtp::svc
