#include "svc/wire.h"

#include "common/check.h"

namespace drtp::svc {

void EncodeFrameHeader(std::size_t n, char out[4]) {
  out[0] = static_cast<char>((n >> 24) & 0xFF);
  out[1] = static_cast<char>((n >> 16) & 0xFF);
  out[2] = static_cast<char>((n >> 8) & 0xFF);
  out[3] = static_cast<char>(n & 0xFF);
}

std::string EncodeFrame(std::string_view payload) {
  DRTP_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                 "frame payload " << payload.size() << " exceeds cap");
  std::string out;
  out.resize(4);
  EncodeFrameHeader(payload.size(), out.data());
  out.append(payload);
  return out;
}

bool FrameReader::Feed(std::string_view bytes) {
  if (!error_.empty()) return false;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
  return true;
}

std::optional<std::string> FrameReader::Next() {
  if (!error_.empty()) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::size_t>(
        static_cast<unsigned char>(buf_[pos_ + i]));
  };
  const std::size_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n > kMaxFrameBytes) {
    error_ = "frame header declares " + std::to_string(n) +
             " bytes (cap " + std::to_string(kMaxFrameBytes) + ")";
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + n) return std::nullopt;
  std::string payload = buf_.substr(pos_ + 4, n);
  pos_ += 4 + n;
  return payload;
}

}  // namespace drtp::svc
