#include "svc/wire.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace drtp::svc {

const char* WriteStatusName(WriteStatus status) {
  switch (status) {
    case WriteStatus::kOk:
      return "ok";
    case WriteStatus::kPeerGone:
      return "peer_gone";
    case WriteStatus::kNoSpace:
      return "no_space";
    case WriteStatus::kIoError:
      return "io_error";
  }
  return "io_error";
}

WriteStatus ClassifyWriteErrno(int err) {
  switch (err) {
    case EPIPE:
    case ECONNRESET:
      return WriteStatus::kPeerGone;
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return WriteStatus::kNoSpace;
    default:
      return WriteStatus::kIoError;
  }
}

std::string WriteResult::message() const {
  std::string out = WriteStatusName(status);
  if (error_errno != 0) {
    out += ": ";
    out += std::strerror(error_errno);
  }
  return out;
}

long FrameWriter::DoWritev(const iovec* iov, int iovcnt) {
  if (use_sendmsg_) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
    const long n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n >= 0 || errno != ENOTSOCK) return n;
    use_sendmsg_ = false;  // regular file: writev from here on
  }
  return ::writev(fd_, iov, iovcnt);
}

WriteResult FrameWriter::WriteVec(iovec* iov, int iovcnt) {
  int i = 0;
  while (i < iovcnt && iov[i].iov_len == 0) ++i;
  while (i < iovcnt) {
    const long n = DoWritev(iov + i, iovcnt - i);
    if (n < 0) {
      if (errno == EINTR) continue;
      return WriteResult{ClassifyWriteErrno(errno), errno};
    }
    if (n == 0) {
      // A zero-length writev "success" with bytes pending would spin
      // forever; report it instead of retrying.
      return WriteResult{WriteStatus::kIoError, 0};
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (i < iovcnt && left >= iov[i].iov_len) {
      left -= iov[i].iov_len;
      ++i;
    }
    if (i < iovcnt) {
      // Short write: resume mid-entry.
      iov[i].iov_base = static_cast<char*>(iov[i].iov_base) + left;
      iov[i].iov_len -= left;
    }
  }
  return WriteResult{};
}

WriteResult FrameWriter::WriteFrame(std::string_view payload) {
  DRTP_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                 "frame payload " << payload.size() << " exceeds cap");
  char header[4];
  EncodeFrameHeader(payload.size(), header);
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof header;
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  return WriteVec(iov, 2);
}

void EncodeFrameHeader(std::size_t n, char out[4]) {
  out[0] = static_cast<char>((n >> 24) & 0xFF);
  out[1] = static_cast<char>((n >> 16) & 0xFF);
  out[2] = static_cast<char>((n >> 8) & 0xFF);
  out[3] = static_cast<char>(n & 0xFF);
}

std::string EncodeFrame(std::string_view payload) {
  DRTP_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                 "frame payload " << payload.size() << " exceeds cap");
  std::string out;
  out.resize(4);
  EncodeFrameHeader(payload.size(), out.data());
  out.append(payload);
  return out;
}

bool FrameReader::Feed(std::string_view bytes) {
  if (!error_.empty()) return false;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
  return true;
}

std::optional<std::string> FrameReader::Next() {
  if (!error_.empty()) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::size_t>(
        static_cast<unsigned char>(buf_[pos_ + i]));
  };
  const std::size_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n > kMaxFrameBytes) {
    error_ = "frame header declares " + std::to_string(n) +
             " bytes (cap " + std::to_string(kMaxFrameBytes) + ")";
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + n) return std::nullopt;
  std::string payload = buf_.substr(pos_ + 4, n);
  pos_ += 4 + n;
  return payload;
}

}  // namespace drtp::svc
