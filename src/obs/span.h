// RAII profiling spans feeding obs timing histograms.
//
// DRTP_OBS_SPAN("drtp.kernel.dijkstra") at the top of a kernel records
// the scope's wall time (steady-clock ns) into the named timing histogram
// — two clock reads plus two relaxed atomic adds per scope, so only
// instrument scopes that run for at least a few hundred nanoseconds.
// DRTP_OBS_SPAN_SAMPLED(name, shift) measures one scope in 2^shift (a
// thread-local counter decides), for hot paths too short to clock every
// time; the histogram then holds a uniform sample of the scope's
// distribution, not every call.
//
// Under -DDRTP_OBS_DISABLED both macros compile to nothing — zero code in
// the kernel, which is what the CI obs-overhead gate compares against.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

#ifndef DRTP_OBS_DISABLED

#include <chrono>

namespace drtp::obs {

class ObsSpan {
 public:
  explicit ObsSpan(Histogram h) : h_(h), start_(NowNs()) {}
  ~ObsSpan() { h_.Observe(NowNs() - start_); }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  Histogram h_;
  std::int64_t start_;
};

/// As ObsSpan, but only times one scope in 2^shift.
class SampledObsSpan {
 public:
  SampledObsSpan(Histogram h, std::uint32_t& tick, unsigned shift)
      : h_(h),
        armed_((tick++ & ((1u << shift) - 1u)) == 0),
        start_(armed_ ? ObsSpan::NowNs() : 0) {}
  ~SampledObsSpan() {
    if (armed_) h_.Observe(ObsSpan::NowNs() - start_);
  }
  SampledObsSpan(const SampledObsSpan&) = delete;
  SampledObsSpan& operator=(const SampledObsSpan&) = delete;

 private:
  Histogram h_;
  bool armed_;
  std::int64_t start_;
};

}  // namespace drtp::obs

#define DRTP_OBS_CONCAT_INNER(a, b) a##b
#define DRTP_OBS_CONCAT(a, b) DRTP_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into the named timing histogram. The handle
/// is resolved once per site (function-local static).
#define DRTP_OBS_SPAN(name)                                             \
  static const ::drtp::obs::Histogram DRTP_OBS_CONCAT(obs_span_h_,      \
                                                      __LINE__) =       \
      ::drtp::obs::GetTimingHistogram(name);                            \
  ::drtp::obs::ObsSpan DRTP_OBS_CONCAT(obs_span_, __LINE__)(            \
      DRTP_OBS_CONCAT(obs_span_h_, __LINE__))

/// Times one enclosing scope in 2^shift (per thread).
#define DRTP_OBS_SPAN_SAMPLED(name, shift)                              \
  static const ::drtp::obs::Histogram DRTP_OBS_CONCAT(obs_span_h_,      \
                                                      __LINE__) =       \
      ::drtp::obs::GetTimingHistogram(name);                            \
  thread_local std::uint32_t DRTP_OBS_CONCAT(obs_span_tick_,            \
                                             __LINE__) = 0;            \
  ::drtp::obs::SampledObsSpan DRTP_OBS_CONCAT(obs_span_, __LINE__)(     \
      DRTP_OBS_CONCAT(obs_span_h_, __LINE__),                           \
      DRTP_OBS_CONCAT(obs_span_tick_, __LINE__), shift)

#else  // DRTP_OBS_DISABLED

#define DRTP_OBS_SPAN(name) ((void)0)
#define DRTP_OBS_SPAN_SAMPLED(name, shift) ((void)0)

#endif  // DRTP_OBS_DISABLED
