// Structured trace pipeline: one flat TraceEvent record per connection /
// link lifecycle event, fanned to pluggable sinks.
//
// This generalizes the typed sim::TraceSink callbacks into a single
// schema-versioned record so exporters live below the simulator:
//   - JsonlTraceSink   — schema drtp.trace/1, one JSON object per line.
//     Deterministic: a fixed-seed single-threaded replay produces
//     byte-identical files; a sweep's lines are deterministic per cell
//     (interleaving across cells follows completion order).
//   - ChromeTraceSink  — Chrome trace-event JSON (load in chrome://tracing
//     or Perfetto): one "X" span per connection lifetime, instant events
//     for blocks/failures/failovers.
// Both sinks lock per record, so concurrent sweep cells never corrupt a
// line. sim::TextTraceSink remains the human one-line-per-event view and
// adapts onto the same stream of typed callbacks (sim/trace.h).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "common/types.h"

namespace drtp::obs {

/// JSONL schema tag for JsonlTraceSink lines.
inline constexpr char kTraceSchema[] = "drtp.trace/1";

enum class TraceEventKind {
  kRequest,      ///< a DR-connection request arrived
  kAdmit,        ///< request admitted (primary established)
  kBlock,        ///< request blocked (no feasible primary)
  kRelease,      ///< connection released normally
  kLinkFail,     ///< a link went down (aggregate impact counts attached)
  kLinkRepair,   ///< a link came back up
  kFailover,     ///< one connection's backup was promoted to primary
  kDrop,         ///< one connection was lost (no activatable backup)
  kBackupBreak,  ///< one connection's backup was broken and released
  kReestablish,  ///< step-4 reconfiguration registered a fresh backup
  kNodeFail,     ///< a node failed (all incident links down atomically)
  kNodeRepair,   ///< a failed node came back
  kSrlgFail,     ///< a shared-risk link group failed together
  kSrlgRepair,   ///< a failed SRLG came back
  kDegrade,      ///< step 4 found no backup; connection runs unprotected
};

/// Stable lowercase token used in drtp.trace/1 ("admit", "link_fail", ...).
std::string_view TraceEventKindName(TraceEventKind kind);

/// One lifecycle event. Fields default to "absent" (-1 / empty) and are
/// omitted from serialized records; spans point into caller storage and
/// are only valid during the Write() call.
struct TraceEvent {
  Time t = 0.0;
  TraceEventKind kind = TraceEventKind::kRequest;
  /// Sweep-cell index the event belongs to; -1 for single runs.
  std::int64_t cell = -1;
  /// Routing scheme label ("D-LSR", ...); empty when unknown.
  std::string_view scheme;
  ConnId conn = kInvalidConn;
  LinkId link = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = -1;
  /// Node sequences of the routes involved (admit, failover, reestablish).
  std::span<const NodeId> primary;
  std::span<const NodeId> backup;
  /// Post-event APLV maxima on the backup route's links: the per-link
  /// spare-pool pressure this admission/re-registration left behind.
  std::span<const std::pair<LinkId, std::int32_t>> aplv;
  /// kLinkFail / kNodeFail / kSrlgFail aggregate impact (absent: -1).
  int recovered = -1;
  int dropped = -1;
  int broken = -1;
  /// kNodeFail / kNodeRepair subject (absent: kInvalidNode).
  NodeId node = kInvalidNode;
  /// kSrlgFail / kSrlgRepair subject (absent: kInvalidSrlg).
  SrlgId srlg = kInvalidSrlg;
  /// kDegrade: remaining re-protection retries (absent: -1).
  int retries_left = -1;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// May be called from several threads (sweep cells); implementations
  /// serialize internally.
  virtual void Write(const TraceEvent& event) = 0;
  /// Called once after the last event (flush footers, close spans).
  virtual void Finish() {}
};

/// drtp.trace/1: one schema-versioned JSON object per line.
class JsonlTraceSink : public TraceSink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit JsonlTraceSink(std::ostream& os);
  /// Truncates and writes `path`; throws CheckError when unwritable.
  explicit JsonlTraceSink(const std::string& path);

  void Write(const TraceEvent& event) override;
  void Finish() override;

  std::int64_t lines_written() const { return lines_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  std::mutex mu_;
  std::int64_t lines_ = 0;
};

/// Chrome trace-event JSON ({"traceEvents":[...]}): each connection's
/// admit→release/drop lifetime becomes a complete ("X") span on the track
/// (pid = cell + 1, tid = conn); blocks, failures, repairs, failovers and
/// backup events render as instant events. Load the file in
/// chrome://tracing or https://ui.perfetto.dev.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  explicit ChromeTraceSink(const std::string& path);

  void Write(const TraceEvent& event) override;
  /// Closes still-open connection spans at the last seen time and writes
  /// the JSON footer. Must be called exactly once.
  void Finish() override;

  std::int64_t events_written() const { return events_; }

 private:
  struct OpenSpan {
    Time start = 0.0;
    std::string scheme;
    int hops = -1;
  };

  void Emit(const std::string& json);  // one event object, comma-managed

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  std::mutex mu_;
  bool first_ = true;
  bool finished_ = false;
  std::int64_t events_ = 0;
  Time last_time_ = 0.0;
  /// (cell, conn) -> open lifetime span.
  std::map<std::pair<std::int64_t, ConnId>, OpenSpan> open_;
};

}  // namespace drtp::obs
