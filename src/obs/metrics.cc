#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/json.h"
#include "common/table.h"

namespace drtp::obs {
namespace detail {

struct Shard {
  std::array<std::atomic<std::int64_t>, kMaxCounters> counters{};
  std::array<HistogramCell, kMaxHistograms> histograms{};
};

namespace {

struct HistogramDef {
  std::string name;
  bool timing = false;
};

/// All registry state. Allocated once and intentionally never destroyed:
/// threads may exit (and park their shards) after main() returns, when a
/// function-local static would already be gone.
struct GlobalState {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<HistogramDef> histogram_defs;
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::vector<std::unique_ptr<Shard>> shards;  // every shard ever created
  std::vector<Shard*> parked;                  // shards of exited threads
};

GlobalState& State() {
  static GlobalState* state = new GlobalState;
  return *state;
}

/// Owns this thread's shard lease; parks the shard (values intact — they
/// remain part of the global totals) for reuse when the thread exits.
struct ShardLease {
  Shard* shard = nullptr;

  ~ShardLease() {
    if (shard == nullptr) return;
    GlobalState& g = State();
    std::lock_guard<std::mutex> lk(g.mu);
    g.parked.push_back(shard);
  }
};

int FindOrAppend(std::vector<std::string>& names, std::string_view name,
                 std::size_t capacity, const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  DRTP_CHECK_MSG(names.size() < capacity,
                 "obs registry " << kind << " capacity exhausted registering '"
                                 << name << "'");
  names.emplace_back(name);
  return static_cast<int>(names.size() - 1);
}

int BucketFor(std::int64_t value) {
  if (value <= 0) return 0;
  const int b = std::bit_width(static_cast<std::uint64_t>(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

}  // namespace

Shard& ThisThreadShard() {
  thread_local ShardLease lease;
  if (lease.shard == nullptr) {
    GlobalState& g = State();
    std::lock_guard<std::mutex> lk(g.mu);
    if (!g.parked.empty()) {
      lease.shard = g.parked.back();
      g.parked.pop_back();
    } else {
      g.shards.push_back(std::make_unique<Shard>());
      lease.shard = g.shards.back().get();
    }
  }
  return *lease.shard;
}

}  // namespace detail

std::int64_t HistogramBucketUpperEdge(int b) {
  DRTP_CHECK(b >= 0 && b < kHistogramBuckets);
  if (b == 0) return 0;
  if (b == kHistogramBuckets - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << b) - 1;
}

#ifndef DRTP_OBS_DISABLED

void Counter::Add(std::int64_t n) const {
  if (id_ < 0) return;
  detail::ThisThreadShard()
      .counters[static_cast<std::size_t>(id_)]
      .fetch_add(n, std::memory_order_relaxed);
}

void Gauge::Set(double value) const {
  if (id_ < 0) return;
  detail::State().gauges[static_cast<std::size_t>(id_)].store(
      value, std::memory_order_relaxed);
}

void Histogram::Observe(std::int64_t value) const {
  if (id_ < 0) return;
  detail::HistogramCell& cell =
      detail::ThisThreadShard().histograms[static_cast<std::size_t>(id_)];
  cell.buckets[static_cast<std::size_t>(detail::BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  cell.sum.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
}

#endif  // DRTP_OBS_DISABLED

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Counter Registry::GetCounter(std::string_view name) {
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  return Counter(detail::FindOrAppend(g.counter_names, name,
                                      detail::kMaxCounters, "counter"));
}

Gauge Registry::GetGauge(std::string_view name) {
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  return Gauge(
      detail::FindOrAppend(g.gauge_names, name, detail::kMaxGauges, "gauge"));
}

Histogram Registry::GetHistogram(std::string_view name) {
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  for (std::size_t i = 0; i < g.histogram_defs.size(); ++i) {
    if (g.histogram_defs[i].name == name) return Histogram(static_cast<int>(i));
  }
  DRTP_CHECK_MSG(g.histogram_defs.size() < detail::kMaxHistograms,
                 "obs registry histogram capacity exhausted registering '"
                     << name << "'");
  g.histogram_defs.push_back({std::string(name), false});
  return Histogram(static_cast<int>(g.histogram_defs.size() - 1));
}

Histogram Registry::GetTimingHistogram(std::string_view name) {
  const Histogram h = GetHistogram(name);
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  g.histogram_defs[static_cast<std::size_t>(h.id_)].timing = true;
  return h;
}

MetricsSnapshot Registry::Snapshot() const {
  detail::GlobalState& g = detail::State();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(g.mu);

  snap.counters.reserve(g.counter_names.size());
  for (std::size_t i = 0; i < g.counter_names.size(); ++i) {
    std::int64_t total = 0;
    for (const auto& shard : g.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(g.counter_names[i], total);
  }
  std::sort(snap.counters.begin(), snap.counters.end());

  snap.gauges.reserve(g.gauge_names.size());
  for (std::size_t i = 0; i < g.gauge_names.size(); ++i) {
    snap.gauges.emplace_back(g.gauge_names[i],
                             g.gauges[i].load(std::memory_order_relaxed));
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());

  snap.histograms.reserve(g.histogram_defs.size());
  for (std::size_t i = 0; i < g.histogram_defs.size(); ++i) {
    MetricsSnapshot::HistogramData h;
    h.name = g.histogram_defs[i].name;
    h.timing = g.histogram_defs[i].timing;
    for (const auto& shard : g.shards) {
      const detail::HistogramCell& cell = shard->histograms[i];
      for (int b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[static_cast<std::size_t>(b)] +=
            cell.buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
      h.sum += cell.sum.load(std::memory_order_relaxed);
    }
    for (const std::int64_t b : h.buckets) h.count += b;
    snap.histograms.push_back(std::move(h));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

std::int64_t Registry::CounterValue(const Counter& c) const {
  if (c.id_ < 0) return 0;
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  std::int64_t total = 0;
  for (const auto& shard : g.shards) {
    total += shard->counters[static_cast<std::size_t>(c.id_)].load(
        std::memory_order_relaxed);
  }
  return total;
}

Counter GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}
Gauge GetGauge(std::string_view name) {
  return Registry::Global().GetGauge(name);
}
Histogram GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}
Histogram GetTimingHistogram(std::string_view name) {
  return Registry::Global().GetTimingHistogram(name);
}

double InterpolateQuantile(const std::int64_t* buckets, int num_buckets,
                           double q) {
  DRTP_CHECK(q > 0.0 && q <= 1.0);
  std::int64_t count = 0;
  for (int b = 0; b < num_buckets; ++b) count += buckets[b];
  if (count == 0) return 0.0;
  const double rank = q * static_cast<double>(count);
  double acc = 0.0;
  for (int b = 0; b < num_buckets; ++b) {
    const std::int64_t n = buckets[b];
    if (n == 0) continue;
    const double next = acc + static_cast<double>(n);
    if (rank <= next || b == num_buckets - 1) {
      if (b == 0) return 0.0;
      const double frac =
          std::clamp((rank - acc) / static_cast<double>(n), 0.0, 1.0);
      // Bucket b spans [2^(b-1), 2^b); log-uniform within the octave.
      return std::ldexp(std::exp2(frac), b - 1);
    }
    acc = next;
  }
  return 0.0;
}

double MetricsSnapshot::HistogramData::InterpolatedQuantile(double q) const {
  return InterpolateQuantile(buckets.data(), kHistogramBuckets, q);
}

std::int64_t MetricsSnapshot::HistogramData::ValueAtQuantile(double q) const {
  DRTP_CHECK(q > 0.0 && q <= 1.0);
  if (count == 0) return 0;
  const auto threshold = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::int64_t acc = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    acc += buckets[static_cast<std::size_t>(b)];
    if (acc >= threshold) return HistogramBucketUpperEdge(b);
  }
  return HistogramBucketUpperEdge(kHistogramBuckets - 1);
}

std::int64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void MetricsSnapshot::WriteJson(JsonWriter& w, bool include_timings) const {
  w.BeginObject();
  w.Key("schema").String(kMetricsSchema);
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).Int(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Double(value);
  w.EndObject();
  w.Key("histograms").BeginArray();
  for (const HistogramData& h : histograms) {
    if (h.timing && !include_timings) continue;
    w.BeginObject();
    w.Key("name").String(h.name);
    w.Key("timing").Bool(h.timing);
    w.Key("count").Int(h.count);
    w.Key("sum").Int(h.sum);
    w.Key("mean").Double(h.Mean());
    w.Key("p50").Int(h.ValueAtQuantile(0.5));
    w.Key("p90").Int(h.ValueAtQuantile(0.9));
    w.Key("p99").Int(h.ValueAtQuantile(0.99));
    // Nonzero buckets as [upper_edge, count] pairs; the terminal bucket's
    // edge is rendered as -1 (unbounded).
    w.Key("buckets").BeginArray();
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const std::int64_t n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      w.BeginArray();
      w.Int(b == kHistogramBuckets - 1 ? -1 : HistogramBucketUpperEdge(b));
      w.Int(n);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string MetricsSnapshot::RenderTable(bool include_timings) const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& [name, value] : counters) {
      t.BeginRow();
      t.Cell(name);
      t.Cell(value);
    }
    for (const auto& [name, value] : gauges) {
      t.BeginRow();
      t.Cell(name);
      t.Cell(value, 3);
    }
    out += t.Render();
  }
  bool any_hist = false;
  TextTable h({"histogram", "count", "mean", "p50", "p90", "p99"});
  for (const HistogramData& data : histograms) {
    if (data.timing && !include_timings) continue;
    any_hist = true;
    h.BeginRow();
    h.Cell(data.name);
    h.Cell(data.count);
    h.Cell(data.Mean(), 1);
    h.Cell(data.ValueAtQuantile(0.5));
    h.Cell(data.ValueAtQuantile(0.9));
    h.Cell(data.ValueAtQuantile(0.99));
  }
  if (any_hist) {
    if (!out.empty()) out += '\n';
    out += h.Render();
  }
  return out;
}

ThreadCounterBaseline::ThreadCounterBaseline() {
#ifndef DRTP_OBS_DISABLED
  detail::Shard& shard = detail::ThisThreadShard();
  shard_ = &shard;
  values_.resize(detail::kMaxCounters);
  for (std::size_t i = 0; i < detail::kMaxCounters; ++i) {
    values_[i] = shard.counters[i].load(std::memory_order_relaxed);
  }
#endif
}

std::vector<std::pair<std::string, std::int64_t>>
ThreadCounterBaseline::Delta() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
#ifndef DRTP_OBS_DISABLED
  DRTP_CHECK_MSG(shard_ == &detail::ThisThreadShard(),
                 "ThreadCounterBaseline::Delta on a different thread");
  const auto& shard = *static_cast<const detail::Shard*>(shard_);
  detail::GlobalState& g = detail::State();
  std::lock_guard<std::mutex> lk(g.mu);
  for (std::size_t i = 0; i < g.counter_names.size(); ++i) {
    const std::int64_t delta =
        shard.counters[i].load(std::memory_order_relaxed) - values_[i];
    if (delta != 0) out.emplace_back(g.counter_names[i], delta);
  }
  std::sort(out.begin(), out.end());
#endif
  return out;
}

}  // namespace drtp::obs
