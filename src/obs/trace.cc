#include "obs/trace.h"

#include <algorithm>

#include "common/check.h"
#include "common/json.h"

namespace drtp::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRequest:
      return "request";
    case TraceEventKind::kAdmit:
      return "admit";
    case TraceEventKind::kBlock:
      return "block";
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kLinkFail:
      return "link_fail";
    case TraceEventKind::kLinkRepair:
      return "link_repair";
    case TraceEventKind::kFailover:
      return "failover";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kBackupBreak:
      return "backup_break";
    case TraceEventKind::kReestablish:
      return "reestablish";
    case TraceEventKind::kNodeFail:
      return "node_fail";
    case TraceEventKind::kNodeRepair:
      return "node_repair";
    case TraceEventKind::kSrlgFail:
      return "srlg_fail";
    case TraceEventKind::kSrlgRepair:
      return "srlg_repair";
    case TraceEventKind::kDegrade:
      return "degrade";
  }
  return "?";
}

namespace {

void WriteNodeArray(JsonWriter& w, std::string_view key,
                    std::span<const NodeId> nodes) {
  if (nodes.empty()) return;
  w.Key(key).BeginArray();
  for (const NodeId n : nodes) w.Int(n);
  w.EndArray();
}

std::string EventToJson(const TraceEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kTraceSchema);
  w.Key("t").Double(e.t);
  w.Key("ev").String(TraceEventKindName(e.kind));
  if (e.cell >= 0) w.Key("cell").Int(e.cell);
  if (!e.scheme.empty()) w.Key("scheme").String(e.scheme);
  if (e.conn != kInvalidConn) w.Key("conn").Int(e.conn);
  if (e.link != kInvalidLink) w.Key("link").Int(e.link);
  if (e.src != kInvalidNode) w.Key("src").Int(e.src);
  if (e.dst != kInvalidNode) w.Key("dst").Int(e.dst);
  if (e.bw >= 0) w.Key("bw_kbps").Int(e.bw);
  WriteNodeArray(w, "primary", e.primary);
  WriteNodeArray(w, "backup", e.backup);
  if (!e.aplv.empty()) {
    w.Key("aplv").BeginArray();
    for (const auto& [link, value] : e.aplv) {
      w.BeginArray();
      w.Int(link);
      w.Int(value);
      w.EndArray();
    }
    w.EndArray();
  }
  if (e.recovered >= 0) w.Key("recovered").Int(e.recovered);
  if (e.dropped >= 0) w.Key("dropped").Int(e.dropped);
  if (e.broken >= 0) w.Key("broken").Int(e.broken);
  if (e.node != kInvalidNode) w.Key("node").Int(e.node);
  if (e.srlg != kInvalidSrlg) w.Key("srlg").Int(e.srlg);
  if (e.retries_left >= 0) w.Key("retries_left").Int(e.retries_left);
  w.EndObject();
  return w.str();
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)) {
  DRTP_CHECK_MSG(owned_->good(), "cannot write trace to '" << path << "'");
  os_ = owned_.get();
}

void JsonlTraceSink::Write(const TraceEvent& event) {
  const std::string line = EventToJson(event);
  std::lock_guard<std::mutex> lk(mu_);
  (*os_) << line << '\n';
  ++lines_;
}

void JsonlTraceSink::Finish() {
  std::lock_guard<std::mutex> lk(mu_);
  os_->flush();
}

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(&os) {}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)) {
  DRTP_CHECK_MSG(owned_->good(), "cannot write trace to '" << path << "'");
  os_ = owned_.get();
}

void ChromeTraceSink::Emit(const std::string& json) {
  if (first_) {
    (*os_) << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    first_ = false;
  } else {
    (*os_) << ",\n";
  }
  (*os_) << json;
  ++events_;
}

namespace {

/// Sim seconds -> trace microseconds.
double Us(Time t) { return t * 1e6; }

std::string ChromeInstant(const TraceEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String(TraceEventKindName(e.kind));
  w.Key("cat").String("event");
  w.Key("ph").String("i");
  w.Key("s").String("p");  // process-scoped flash line
  w.Key("ts").Double(Us(e.t));
  w.Key("pid").Int(e.cell >= 0 ? e.cell + 1 : 0);
  w.Key("tid").Int(e.conn != kInvalidConn ? e.conn : 0);
  w.Key("args").BeginObject();
  if (!e.scheme.empty()) w.Key("scheme").String(e.scheme);
  if (e.link != kInvalidLink) w.Key("link").Int(e.link);
  if (e.src != kInvalidNode) w.Key("src").Int(e.src);
  if (e.dst != kInvalidNode) w.Key("dst").Int(e.dst);
  if (e.recovered >= 0) w.Key("recovered").Int(e.recovered);
  if (e.dropped >= 0) w.Key("dropped").Int(e.dropped);
  if (e.broken >= 0) w.Key("broken").Int(e.broken);
  if (e.node != kInvalidNode) w.Key("node").Int(e.node);
  if (e.srlg != kInvalidSrlg) w.Key("srlg").Int(e.srlg);
  if (e.retries_left >= 0) w.Key("retries_left").Int(e.retries_left);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ChromeSpan(std::int64_t cell, ConnId conn, Time start, Time end,
                       const std::string& scheme, int hops,
                       std::string_view outcome) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("conn " + std::to_string(conn));
  w.Key("cat").String("conn");
  w.Key("ph").String("X");
  w.Key("ts").Double(Us(start));
  w.Key("dur").Double(Us(end - start));
  w.Key("pid").Int(cell >= 0 ? cell + 1 : 0);
  w.Key("tid").Int(conn);
  w.Key("args").BeginObject();
  if (!scheme.empty()) w.Key("scheme").String(scheme);
  if (hops >= 0) w.Key("primary_hops").Int(hops);
  w.Key("outcome").String(outcome);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace

void ChromeTraceSink::Write(const TraceEvent& e) {
  std::lock_guard<std::mutex> lk(mu_);
  DRTP_CHECK_MSG(!finished_, "ChromeTraceSink written after Finish");
  if (e.t > last_time_) last_time_ = e.t;
  const auto key = std::make_pair(e.cell, e.conn);
  switch (e.kind) {
    case TraceEventKind::kAdmit: {
      OpenSpan span;
      span.start = e.t;
      span.scheme = std::string(e.scheme);
      span.hops = e.primary.empty()
                      ? -1
                      : static_cast<int>(e.primary.size()) - 1;
      open_[key] = std::move(span);
      return;
    }
    case TraceEventKind::kRelease:
    case TraceEventKind::kDrop: {
      const auto it = open_.find(key);
      if (it != open_.end()) {
        Emit(ChromeSpan(e.cell, e.conn, it->second.start, e.t,
                        it->second.scheme, it->second.hops,
                        e.kind == TraceEventKind::kDrop ? "dropped"
                                                        : "released"));
        open_.erase(it);
      }
      if (e.kind == TraceEventKind::kDrop) Emit(ChromeInstant(e));
      return;
    }
    case TraceEventKind::kRequest:
      return;  // admits/blocks carry the signal; requests double lines
    default:
      Emit(ChromeInstant(e));
      return;
  }
}

void ChromeTraceSink::Finish() {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  for (const auto& [key, span] : open_) {
    Emit(ChromeSpan(key.first, key.second, span.start,
                    std::max(last_time_, span.start), span.scheme, span.hops,
                    "open"));
  }
  open_.clear();
  if (first_) (*os_) << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  (*os_) << "\n]}\n";
  os_->flush();
  finished_ = true;
}

}  // namespace drtp::obs
