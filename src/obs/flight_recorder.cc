#include "obs/flight_recorder.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "obs/trace.h"

namespace drtp::obs {
namespace {

// Slot layout: [0] generation (seqlock word), [1] kind, [2] t_ns,
// [3..8] args. All words are atomics accessed relaxed except the
// generation, which the writer stores last with release (even = complete,
// odd = being written, 0 = never written).
inline constexpr std::size_t kSlotWords = 3 + kFlightArgs;

struct alignas(64) Ring {
  std::array<std::array<std::atomic<std::uint64_t>, kSlotWords>,
             kFlightRingSlots>
      slots{};
  /// Total appends by this ring's owning threads (only the owner writes).
  std::atomic<std::uint64_t> head{0};
};

struct GlobalState {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  // every ring ever created
  std::vector<Ring*> parked;                 // rings of exited threads
};

// Leaked for the same reason as the metrics GlobalState: threads park
// their rings after main() returns.
GlobalState& State() {
  static GlobalState* state = new GlobalState;
  return *state;
}

struct RingLease {
  Ring* ring = nullptr;

  ~RingLease() {
    if (ring == nullptr) return;
    GlobalState& g = State();
    std::lock_guard<std::mutex> lk(g.mu);
    g.parked.push_back(ring);
  }
};

Ring& ThisThreadRing() {
  thread_local RingLease lease;
  if (lease.ring == nullptr) {
    GlobalState& g = State();
    std::lock_guard<std::mutex> lk(g.mu);
    if (!g.parked.empty()) {
      lease.ring = g.parked.back();
      g.parked.pop_back();
    } else {
      g.rings.push_back(std::make_unique<Ring>());
      lease.ring = g.rings.back().get();
    }
  }
  return *lease.ring;
}

/// Reads one slot seqlock-style. False when the slot is empty or was
/// caught mid-overwrite by a concurrent writer.
bool ReadSlot(const std::array<std::atomic<std::uint64_t>, kSlotWords>& slot,
              FlightEvent& out) {
  const std::uint64_t g1 = slot[0].load(std::memory_order_acquire);
  if (g1 == 0 || (g1 & 1) != 0) return false;
  std::array<std::uint64_t, kSlotWords> words;
  for (std::size_t w = 1; w < kSlotWords; ++w) {
    words[w] = slot[w].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot[0].load(std::memory_order_relaxed) != g1) return false;
  out.kind = static_cast<FlightKind>(words[1]);
  out.t_ns = static_cast<std::int64_t>(words[2]);
  for (int a = 0; a < kFlightArgs; ++a) {
    out.args[a] = static_cast<std::int64_t>(words[3 + static_cast<std::size_t>(a)]);
  }
  return static_cast<int>(out.kind) < kNumFlightKinds;
}

/// Per-kind argument field names for the JSONL dump. Unnamed (nullptr)
/// trailing args are omitted from the line.
using ArgNames = std::array<const char*, kFlightArgs>;

const ArgNames& ArgNamesFor(FlightKind kind) {
  static const std::array<ArgNames, kNumFlightKinds> kNames = {{
      {"conn", "hops", "protected"},                          // kAdmit
      {"conn"},                                               // kBlock
      {"conn", "active"},                                     // kRelease
      {"id", "err"},                                          // kError
      {"link", "recovered", "dropped", "backups_lost"},       // kLinkFail
      {"link"},                                               // kLinkRepair
      {"conn"},                                               // kDegrade
      {"conn"},                                               // kReprotect
      {"client", "torn"},                                     // kFrameError
      {"checks", "violations"},                               // kAuditSample
      {"seq", "method", "decode_ns", "reorder_ns",            // kRpcSpan
       "engine_ns", "respond_ns"},
  }};
  return kNames[static_cast<std::size_t>(kind)];
}

}  // namespace

std::string_view FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kAdmit: return "admit";
    case FlightKind::kBlock: return "block";
    case FlightKind::kRelease: return "release";
    case FlightKind::kError: return "error";
    case FlightKind::kLinkFail: return "link_fail";
    case FlightKind::kLinkRepair: return "link_repair";
    case FlightKind::kDegrade: return "degrade";
    case FlightKind::kReprotect: return "reprotect";
    case FlightKind::kFrameError: return "frame_error";
    case FlightKind::kAuditSample: return "audit_sample";
    case FlightKind::kRpcSpan: return "rpc_span";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder recorder;
  return recorder;
}

#ifndef DRTP_OBS_DISABLED

void FlightRecorder::Record(FlightKind kind, std::int64_t a0, std::int64_t a1,
                            std::int64_t a2, std::int64_t a3, std::int64_t a4,
                            std::int64_t a5) {
  Ring& ring = ThisThreadRing();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  auto& slot = ring.slots[h % kFlightRingSlots];
  // Odd generation marks the slot in-flight so a concurrent dump skips it
  // rather than reading a mix of the old and new event.
  const std::uint64_t gen = slot[0].load(std::memory_order_relaxed);
  slot[0].store(gen + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot[1].store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
  slot[2].store(static_cast<std::uint64_t>(MonotonicClock::Instance().NowNs()),
                std::memory_order_relaxed);
  const std::int64_t args[kFlightArgs] = {a0, a1, a2, a3, a4, a5};
  for (int a = 0; a < kFlightArgs; ++a) {
    slot[3 + static_cast<std::size_t>(a)].store(
        static_cast<std::uint64_t>(args[a]), std::memory_order_relaxed);
  }
  slot[0].store(gen + 2, std::memory_order_release);
  ring.head.store(h + 1, std::memory_order_relaxed);
}

#endif  // DRTP_OBS_DISABLED

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  GlobalState& g = State();
  std::lock_guard<std::mutex> lk(g.mu);
  for (const auto& ring : g.rings) {
    for (const auto& slot : ring->slots) {
      FlightEvent ev;
      if (ReadSlot(slot, ev)) events.push_back(ev);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.t_ns < b.t_ns;
                   });
  return events;
}

void FlightRecorder::Dump(std::ostream& os, std::string_view reason) const {
  const std::vector<FlightEvent> events = Snapshot();
  std::size_t rings = 0;
  {
    GlobalState& g = State();
    std::lock_guard<std::mutex> lk(g.mu);
    rings = g.rings.size();
  }
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String(kTraceSchema);
    w.Key("ev").String("flight_dump");
    w.Key("reason").String(reason);
    w.Key("events").Int(static_cast<std::int64_t>(events.size()));
    w.Key("rings").Int(static_cast<std::int64_t>(rings));
    w.Key("recorded").Int(total_recorded());
    w.EndObject();
    os << w.str() << '\n';
  }
  std::string ev_name;
  for (const FlightEvent& ev : events) {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").String(kTraceSchema);
    w.Key("t_ns").Int(ev.t_ns);
    ev_name = "fr_";
    ev_name += FlightKindName(ev.kind);
    w.Key("ev").String(ev_name);
    const ArgNames& names = ArgNamesFor(ev.kind);
    for (int a = 0; a < kFlightArgs; ++a) {
      if (names[static_cast<std::size_t>(a)] == nullptr) break;
      w.Key(names[static_cast<std::size_t>(a)]).Int(ev.args[a]);
    }
    w.EndObject();
    os << w.str() << '\n';
  }
  os.flush();
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                std::string_view reason) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  Dump(os, reason);
  return os.good();
}

std::int64_t FlightRecorder::total_recorded() const {
  GlobalState& g = State();
  std::lock_guard<std::mutex> lk(g.mu);
  std::uint64_t total = 0;
  for (const auto& ring : g.rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return static_cast<std::int64_t>(total);
}

}  // namespace drtp::obs
