// drtp::obs — process-wide metrics registry with thread-local sharded
// storage.
//
// Handles (Counter / Gauge / Histogram) are registered once by name and
// are cheap value types; the hot path is one relaxed atomic add into the
// calling thread's shard (two for a histogram: bucket + sum). Shards are
// only ever written by their owning thread, so there is no cross-core
// cacheline ping-pong; Snapshot() aggregates every shard with relaxed
// loads. When a thread exits its shard is parked on a free list and
// reused by the next thread — recorded values are never lost and memory
// stays bounded by the peak thread count.
//
// Determinism: counter values are event counts, so any fixed-seed
// workload produces the same totals regardless of thread count or
// execution order. Timing histograms (registered via TimingHistogram, fed
// by ObsSpan) hold wall-clock content and are therefore excluded from the
// JSON export unless explicitly requested — drtp.metrics/1 files from
// fixed-seed runs stay byte-identical.
//
// Compiling with -DDRTP_OBS_DISABLED turns every handle operation into a
// no-op (and obs/span.h compiles out entirely); registration and
// Snapshot() still work and report zeros.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drtp {
class JsonWriter;
}

namespace drtp::obs {

/// JSON schema tag for exported snapshots.
inline constexpr char kMetricsSchema[] = "drtp.metrics/1";

/// Power-of-two histogram buckets: bucket b counts values v with
/// bit_width(v) == b, i.e. [2^(b-1), 2^b); bucket 0 counts v <= 0 and
/// the last bucket absorbs everything beyond 2^(kHistogramBuckets-2).
/// 48 buckets span 1ns .. ~1.6 days, enough for any span or value here.
inline constexpr int kHistogramBuckets = 48;

/// Value of histogram bucket `b`'s upper edge (inclusive range end).
std::int64_t HistogramBucketUpperEdge(int b);

/// Quantile estimate over a power-of-two bucket array (layout as above),
/// interpolated in log space within the bucket holding the quantile rank:
/// value = 2^(b-1) · 2^frac, i.e. samples are assumed log-uniform inside
/// their octave. Bucket 0 (v <= 0) estimates 0 and the terminal bucket is
/// treated as one octave wide. `num_buckets` may be smaller than
/// kHistogramBuckets (drtpstat reconstructs sparse arrays from JSON).
/// Returns 0 for an empty array; q must be in (0, 1].
double InterpolateQuantile(const std::int64_t* buckets, int num_buckets,
                           double q);

namespace detail {

struct alignas(64) HistogramCell {
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets;
  std::atomic<std::int64_t> sum;
};

struct Shard;

/// Registry capacities. Metrics are registered at well-known names from a
/// handful of instrumentation sites; blowing these trips a DRTP_CHECK.
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;

Shard& ThisThreadShard();

}  // namespace detail

class Counter {
 public:
  Counter() = default;
#ifdef DRTP_OBS_DISABLED
  void Add(std::int64_t = 1) const {}  // compiled out
#else
  void Add(std::int64_t n = 1) const;
#endif

 private:
  friend class Registry;
  explicit Counter(int id) : id_(id) {}
  int id_ = -1;
};

/// Last-write-wins scalar; global (not sharded) — gauges are set rarely.
class Gauge {
 public:
  Gauge() = default;
#ifdef DRTP_OBS_DISABLED
  void Set(double) const {}  // compiled out
#else
  void Set(double value) const;
#endif

 private:
  friend class Registry;
  explicit Gauge(int id) : id_(id) {}
  int id_ = -1;
};

class Histogram {
 public:
  Histogram() = default;
  /// Records one sample (clamped to >= 0). Two relaxed adds.
#ifdef DRTP_OBS_DISABLED
  void Observe(std::int64_t) const {}  // compiled out
#else
  void Observe(std::int64_t value) const;
#endif

 private:
  friend class Registry;
  explicit Histogram(int id) : id_(id) {}
  int id_ = -1;
};

/// Aggregated view of the registry at one instant.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    bool timing = false;  ///< wall-clock content (span-fed)
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::array<std::int64_t, kHistogramBuckets> buckets{};

    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
    /// Upper edge of the bucket containing quantile q (0 < q <= 1).
    /// Coarse but integral — kept for the byte-stable JSON export.
    std::int64_t ValueAtQuantile(double q) const;
    /// Log-interpolated estimate (see InterpolateQuantile); what human
    /// readouts (drtpstat, drtpload reports) should use.
    double InterpolatedQuantile(double q) const;
  };

  /// Sorted by name within each section.
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Counter value by name; 0 when absent.
  std::int64_t CounterValue(std::string_view name) const;

  /// drtp.metrics/1 JSON. Timing histograms are omitted unless
  /// `include_timings` — their content is wall-clock and would break the
  /// byte-stability of fixed-seed exports.
  void WriteJson(JsonWriter& w, bool include_timings) const;

  /// Human view (common/table.h): one counters/gauges table plus one
  /// histogram table with count/mean/p50/p90/p99.
  std::string RenderTable(bool include_timings) const;
};

/// The process-wide registry. Thread-safe. Registering the same name
/// twice returns the same handle (kind mismatch is checked).
class Registry {
 public:
  static Registry& Global();

  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);
  /// A histogram flagged as holding wall-clock timings (ns).
  Histogram GetTimingHistogram(std::string_view name);

  /// Aggregates every shard. Safe to call concurrently with updates —
  /// relaxed loads observe each slot atomically.
  MetricsSnapshot Snapshot() const;

  /// Fast path for live progress readouts: one counter's global total.
  std::int64_t CounterValue(const Counter& c) const;

 private:
  Registry() = default;
  friend Counter;
  friend Gauge;
  friend Histogram;
  friend detail::Shard& detail::ThisThreadShard();
};

/// Convenience wrappers over Registry::Global().
Counter GetCounter(std::string_view name);
Gauge GetGauge(std::string_view name);
Histogram GetHistogram(std::string_view name);
Histogram GetTimingHistogram(std::string_view name);

/// Captures the calling thread's counter values so a later Delta() yields
/// exactly the counts this thread produced in between — the per-cell
/// metrics tag of the sweep engine. Only valid on the capturing thread
/// (checked); deterministic because a sweep cell runs single-threaded.
class ThreadCounterBaseline {
 public:
  ThreadCounterBaseline();

  /// (name, delta) pairs for counters this thread bumped since
  /// construction, nonzero only, sorted by name.
  std::vector<std::pair<std::string, std::int64_t>> Delta() const;

 private:
  std::vector<std::int64_t> values_;
  const void* shard_ = nullptr;
};

}  // namespace drtp::obs
