// obs::FlightRecorder — always-on post-mortem event ring.
//
// A process-wide set of fixed-size per-thread ring buffers holding the
// most recent structured events (admissions, rejections, link
// failures/repairs, degrades, frame errors, audit samples, sampled
// request spans). Recording is lock-free and wait-free for the writer:
// each thread owns one ring (leased like a metrics shard and parked for
// reuse on thread exit), so an append is a handful of relaxed atomic
// stores plus one release store — cheap enough to leave on in
// production, which is the point: a post-mortem of an audit violation or
// a crash must not depend on having had `--trace` enabled beforehand.
//
// Concurrency model (TSan-clean by construction): every slot word is a
// std::atomic<uint64> accessed relaxed, and each slot carries a
// generation word written last (release) by the writer and read first /
// re-read last (acquire) by the reader — a per-slot seqlock. A dump
// taken while writers are appending (SIGUSR1 on a loaded daemon) skips
// the rare slot it caught mid-overwrite instead of emitting torn bytes.
//
// Dumps are drtp.trace/1 JSONL: one `flight_dump` header line (reason,
// ring/event totals), then one line per event, merged across rings and
// sorted by timestamp. Under -DDRTP_OBS_DISABLED, Record() compiles to a
// no-op and a dump holds only the header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace drtp::obs {

/// Event vocabulary. Stable dump tokens are "fr_" + lowercase name
/// (FlightKindName); argument meaning is per-kind (see flight_recorder.cc
/// DumpEvent for the field names each kind serializes).
enum class FlightKind : std::uint8_t {
  kAdmit,        ///< conn, hops, protected(0/1)
  kBlock,        ///< conn
  kRelease,      ///< conn, active-after
  kError,        ///< rpc error answered: request id, taxonomy index
  kLinkFail,     ///< link, recovered, dropped, backups_lost
  kLinkRepair,   ///< link
  kDegrade,      ///< conn lost its backup and now runs unprotected
  kReprotect,    ///< conn re-registered a backup
  kFrameError,   ///< framing violation / torn frame: client id, torn(0/1)
  kAuditSample,  ///< checks, violations (cumulative at sample time)
  kRpcSpan,      ///< sampled request: seq, method, decode/reorder/engine/
                 ///< respond stage latencies (ns)
};

inline constexpr int kNumFlightKinds =
    static_cast<int>(FlightKind::kRpcSpan) + 1;

/// Stable lowercase dump token ("fr_admit", "fr_rpc_span", ...).
std::string_view FlightKindName(FlightKind kind);

/// Slots per thread ring. 4096 events × 80 B ≈ 320 KiB per thread — a
/// few seconds of a loaded daemon's recent history per pipeline thread,
/// bounded regardless of uptime.
inline constexpr std::size_t kFlightRingSlots = 4096;

/// Number of per-event int64 arguments.
inline constexpr int kFlightArgs = 6;

/// One decoded event (Snapshot / dump order: ascending t_ns).
struct FlightEvent {
  FlightKind kind = FlightKind::kAdmit;
  std::int64_t t_ns = 0;  ///< steady-clock stamp taken by Record()
  std::int64_t args[kFlightArgs] = {};
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Appends one event to the calling thread's ring, overwriting the
  /// oldest once full. Lock-free; safe from any thread.
#ifdef DRTP_OBS_DISABLED
  void Record(FlightKind, std::int64_t = 0, std::int64_t = 0,
              std::int64_t = 0, std::int64_t = 0, std::int64_t = 0,
              std::int64_t = 0) {}
#else
  void Record(FlightKind kind, std::int64_t a0 = 0, std::int64_t a1 = 0,
              std::int64_t a2 = 0, std::int64_t a3 = 0, std::int64_t a4 = 0,
              std::int64_t a5 = 0);
#endif

  /// Every retained event, merged across rings, sorted by t_ns. Safe
  /// concurrently with writers: slots caught mid-overwrite are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// drtp.trace/1 JSONL dump: one `flight_dump` header line carrying
  /// `reason`, then one line per Snapshot() event.
  void Dump(std::ostream& os, std::string_view reason) const;

  /// Dump to a file (truncating). False when the file cannot be written.
  bool DumpToFile(const std::string& path, std::string_view reason) const;

  /// Total events ever recorded (monotone; exceeds retained once rings
  /// wrap).
  std::int64_t total_recorded() const;

 private:
  FlightRecorder() = default;
};

}  // namespace drtp::obs
