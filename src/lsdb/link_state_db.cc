#include "lsdb/link_state_db.h"

namespace drtp::lsdb {

std::int64_t LinkStateDb::AdvertBytesPerCycle(bool with_cv,
                                              bool with_srlg) const {
  std::int64_t total = 0;
  for (const auto& r : records_) {
    total += 4 + 4 + 4;  // link id + two bandwidth fields
    total += with_cv ? r.cv.AdvertBytes() : 8;
    if (with_srlg) total += r.srlg_aplv.AdvertBytes();
  }
  return total;
}

}  // namespace drtp::lsdb
