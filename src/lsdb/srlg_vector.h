// Per-SRLG aggregate of a link's APLV (the SRLG-aware advert).
//
// Element g is Σ_{L_j ∈ SRLG g} APLV_i[j]: how many (primary-link, backup)
// incidences on this link would activate together if risk group g failed.
// SRLG-aware backup selection reads it from the link-state database the
// same way P-LSR reads ||APLV||_1 — correlated-failure exposure scored
// from advertised local state only, no global knowledge.
//
// Storage follows the lsdb::Aplv discipline: dense counts at paper scale,
// a sorted nonzero-only struct-of-arrays pair above kWideLinkThreshold
// links (group counts are as sparse as the APLV itself — a link's backups
// cross a handful of risk groups, not all of them). Zero entries are
// erased so the sparse form stays canonical and the defaulted equality
// below stays semantic. A default-constructed vector (zero groups) is the
// representation for untagged topologies and costs nothing to copy or
// compare, which keeps SRLG-free runs byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "lsdb/conflict_vector.h"
#include "routing/path.h"

namespace drtp::lsdb {

class SrlgVector {
 public:
  SrlgVector() = default;
  SrlgVector(int num_srlgs, int num_links)
      : num_srlgs_(num_srlgs), wide_(num_links > kWideLinkThreshold) {
    DRTP_CHECK(num_srlgs >= 0);
    if (!wide_) counts_.assign(static_cast<std::size_t>(num_srlgs), 0);
  }

  int num_srlgs() const { return num_srlgs_; }

  std::int32_t at(SrlgId g) const {
    DRTP_DCHECK(g >= 0 && g < num_srlgs_);
    if (!wide_) return counts_[static_cast<std::size_t>(g)];
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), g);
    if (it == keys_.end() || *it != g) return 0;
    return cnts_[static_cast<std::size_t>(it - keys_.begin())];
  }

  /// Σ_g at(g) — equals ||APLV||_1 restricted to tagged links.
  std::int64_t total() const { return total_; }

  /// Registers a backup whose primary has the given LSET: every tagged
  /// link of the LSET bumps its group. `srlg_of` maps LinkId -> SrlgId
  /// (kInvalidSrlg = untagged, skipped).
  template <typename SrlgOf>
  void AddLset(const routing::LinkSet& lset, SrlgOf&& srlg_of) {
    for (const LinkId j : lset) {
      const SrlgId g = srlg_of(j);
      if (g == kInvalidSrlg) continue;
      DRTP_CHECK(g >= 0 && g < num_srlgs_);
      Bump(g, +1);
    }
  }

  /// Inverse of AddLset. The whole LSET is validated before any element
  /// changes (same contract as Aplv::RemovePrimaryLset), so a failed
  /// removal throws CheckError with the vector untouched.
  template <typename SrlgOf>
  void RemoveLset(const routing::LinkSet& lset, SrlgOf&& srlg_of) {
    std::vector<SrlgId> groups;
    groups.reserve(lset.size());
    for (const LinkId j : lset) {
      const SrlgId g = srlg_of(j);
      if (g == kInvalidSrlg) continue;
      DRTP_CHECK(g >= 0 && g < num_srlgs_);
      groups.push_back(g);
    }
    std::sort(groups.begin(), groups.end());
    for (std::size_t i = 0; i < groups.size();) {
      std::size_t run = i;
      while (run < groups.size() && groups[run] == groups[i]) ++run;
      DRTP_CHECK_MSG(at(groups[i]) >= static_cast<std::int32_t>(run - i),
                     "removing more SRLG incidences than present on group "
                         << groups[i]);
      i = run;
    }
    for (const SrlgId g : groups) Bump(g, -1);
  }

  /// Σ_{g ∈ groups} at(g) for a sorted, unique group list — the
  /// correlated-activation exposure of a backup candidate against a
  /// primary whose links span `groups`.
  std::int64_t SumOver(std::span<const SrlgId> groups) const {
    std::int64_t sum = 0;
    if (!wide_) {
      for (const SrlgId g : groups) {
        sum += counts_[static_cast<std::size_t>(g)];
      }
      return sum;
    }
    // Merge-join two sorted lists; both are short (primary risk groups
    // and this link's nonzero groups).
    std::size_t k = 0;
    for (const SrlgId g : groups) {
      while (k < keys_.size() && keys_[k] < g) ++k;
      if (k == keys_.size()) break;
      if (keys_[k] == g) sum += cnts_[k];
    }
    return sum;
  }

  /// Wire size of this advert: 4B count + 4B-id/4B-count per nonzero
  /// entry (dense cycles advertise only the nonzero groups too).
  std::int64_t AdvertBytes() const {
    std::int64_t nonzero = 0;
    if (!wide_) {
      for (const std::int32_t c : counts_) nonzero += c != 0 ? 1 : 0;
    } else {
      nonzero = static_cast<std::int64_t>(keys_.size());
    }
    return 4 + 8 * nonzero;
  }

  friend bool operator==(const SrlgVector&, const SrlgVector&) = default;

 private:
  void Bump(SrlgId g, std::int32_t delta) {
    total_ += delta;
    if (!wide_) {
      counts_[static_cast<std::size_t>(g)] += delta;
      return;
    }
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), g);
    if (it != keys_.end() && *it == g) {
      const auto idx = static_cast<std::size_t>(it - keys_.begin());
      cnts_[idx] += delta;
      if (cnts_[idx] == 0) {  // canonical: no zero entries
        keys_.erase(it);
        cnts_.erase(cnts_.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else {
      DRTP_DCHECK(delta > 0);
      cnts_.insert(cnts_.begin() + (it - keys_.begin()), delta);
      keys_.insert(it, g);
    }
  }

  int num_srlgs_ = 0;
  bool wide_ = false;
  std::int64_t total_ = 0;
  std::vector<std::int32_t> counts_;  // dense mode only
  std::vector<SrlgId> keys_;          // wide mode: sorted nonzero groups
  std::vector<std::int32_t> cnts_;    // wide mode: counts, parallel to keys_
};

}  // namespace drtp::lsdb
