#include "lsdb/conflict_vector.h"

#include <bit>

namespace drtp::lsdb {

int ConflictVector::PopCount() const {
  int count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

int ConflictVector::CountIn(const routing::LinkSet& lset) const {
  int count = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < num_links_ && Test(j)) ++count;
  }
  return count;
}

}  // namespace drtp::lsdb
