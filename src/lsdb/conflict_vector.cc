#include "lsdb/conflict_vector.h"

#include <algorithm>
#include <bit>

namespace drtp::lsdb {

int ConflictVector::PopCount() const {
  int count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

int ConflictVector::CountIn(const routing::LinkSet& lset) const {
  int count = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < num_links_ && Test(j)) ++count;
  }
  return count;
}

int ConflictVector::AndPopCount(std::span<const std::uint64_t> mask) const {
  const std::size_t n = std::min(words_.size(), mask.size());
  int count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += std::popcount(words_[i] & mask[i]);
  }
  return count;
}

}  // namespace drtp::lsdb
