#include "lsdb/conflict_vector.h"

#include <algorithm>
#include <bit>

namespace drtp::lsdb {

int ConflictVector::PopCount() const {
  int count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

int ConflictVector::CountIn(const routing::LinkSet& lset) const {
  int count = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < num_links_ && Test(j)) ++count;
  }
  return count;
}

int ConflictVector::AndPopCount(std::span<const std::uint64_t> mask) const {
  const std::size_t n = std::min(words_.size(), mask.size());
  int count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += std::popcount(words_[i] & mask[i]);
  }
  return count;
}

bool operator==(const ConflictVector& a, const ConflictVector& b) {
  if (a.num_links_ != b.num_links_) return false;
  const std::size_t common = std::min(a.words_.size(), b.words_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.words_[i] != b.words_[i]) return false;
  }
  const auto& longer = a.words_.size() > b.words_.size() ? a.words_ : b.words_;
  for (std::size_t i = common; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

}  // namespace drtp::lsdb
