#include "lsdb/aplv.h"

#include <algorithm>

namespace drtp::lsdb {

void Aplv::AddPrimaryLset(const routing::LinkSet& lset) {
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < size());
    auto& c = counts_[static_cast<std::size_t>(j)];
    ++c;
    ++l1_;
    if (c > max_) max_ = c;
  }
}

void Aplv::RemovePrimaryLset(const routing::LinkSet& lset) {
  bool touched_max = false;
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < size());
    auto& c = counts_[static_cast<std::size_t>(j)];
    DRTP_CHECK_MSG(c > 0, "removing absent primary link " << j);
    if (c == max_) touched_max = true;
    --c;
    --l1_;
  }
  if (touched_max) {
    max_ = counts_.empty()
               ? 0
               : *std::max_element(counts_.begin(), counts_.end());
  }
}

ConflictVector Aplv::ToConflictVector() const {
  ConflictVector cv(size());
  for (LinkId j = 0; j < size(); ++j) {
    if (count(j) > 0) cv.Set(j, true);
  }
  return cv;
}

int Aplv::ConflictingLinksIn(const routing::LinkSet& lset) const {
  int n = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < size() && count(j) > 0) ++n;
  }
  return n;
}

}  // namespace drtp::lsdb
