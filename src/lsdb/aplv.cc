#include "lsdb/aplv.h"

#include <algorithm>

namespace drtp::lsdb {

std::int32_t Aplv::count(LinkId j) const {
  DRTP_DCHECK(j >= 0 && j < size());
  if (!wide()) return counts_[static_cast<std::size_t>(j)];
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
  if (it == keys_.end() || *it != j) return 0;
  return cnts_[static_cast<std::size_t>(it - keys_.begin())];
}

void Aplv::AddPrimaryLset(const routing::LinkSet& lset) {
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < size());
    std::int32_t c;
    if (!wide()) {
      c = ++counts_[static_cast<std::size_t>(j)];
    } else {
      const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
      if (it != keys_.end() && *it == j) {
        c = ++cnts_[static_cast<std::size_t>(it - keys_.begin())];
      } else {
        cnts_.insert(cnts_.begin() + (it - keys_.begin()), 1);
        keys_.insert(it, j);
        c = 1;
      }
    }
    ++l1_;
    if (c == 1) cv_.Set(j, true);
    if (c > max_) {
      max_ = c;
      num_at_max_ = 1;
    } else if (c == max_) {
      ++num_at_max_;
    }
  }
}

void Aplv::RemovePrimaryLset(const routing::LinkSet& lset) {
  // Validate the whole LSET before touching anything: a mid-loop failure
  // used to leave counts/l1_/num_at_max_/cv_ partially decremented, so
  // a caller that catches the CheckError (tests, defensive teardown)
  // kept a torn vector. The multiplicity check runs over the prefix so a
  // LSET that repeats a link needs that many registered occurrences, not
  // just a nonzero count.
  for (std::size_t i = 0; i < lset.size(); ++i) {
    const LinkId j = lset[i];
    DRTP_CHECK_MSG(j >= 0 && j < size(),
                   "link " << j << " outside the " << size() << "-link APLV");
    std::int32_t multiplicity = 1;
    for (std::size_t k = 0; k < i; ++k) {
      if (lset[k] == j) ++multiplicity;
    }
    DRTP_CHECK_MSG(count(j) >= multiplicity,
                   "removing absent primary link " << j);
  }
  for (LinkId j : lset) {
    std::int32_t c;
    if (!wide()) {
      auto& slot = counts_[static_cast<std::size_t>(j)];
      if (slot == max_) --num_at_max_;
      c = --slot;
    } else {
      const auto it = std::lower_bound(keys_.begin(), keys_.end(), j);
      const auto idx = static_cast<std::size_t>(it - keys_.begin());
      if (cnts_[idx] == max_) --num_at_max_;
      c = --cnts_[idx];
      if (c == 0) {  // keep the sparse form canonical (no zero entries)
        keys_.erase(it);
        cnts_.erase(cnts_.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    --l1_;
    if (c == 0) cv_.Set(j, false);
  }
  // Only when the last element holding the maximum was decremented can the
  // maximum drop; otherwise max_ (and its survivor count) stand as-is.
  if (max_ > 0 && num_at_max_ == 0) {
    max_ = 0;
    num_at_max_ = 0;
    const auto scan = [&](std::int32_t c) {
      if (c > max_) {
        max_ = c;
        num_at_max_ = 1;
      } else if (c == max_ && max_ > 0) {
        ++num_at_max_;
      }
    };
    if (!wide()) {
      for (std::int32_t c : counts_) scan(c);
    } else {
      for (std::int32_t c : cnts_) scan(c);
    }
  }
}

int Aplv::ConflictingLinksIn(const routing::LinkSet& lset) const {
  int n = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < size() && count(j) > 0) ++n;
  }
  return n;
}

}  // namespace drtp::lsdb
