#include "lsdb/aplv.h"

namespace drtp::lsdb {

void Aplv::AddPrimaryLset(const routing::LinkSet& lset) {
  for (LinkId j : lset) {
    DRTP_CHECK(j >= 0 && j < size());
    auto& c = counts_[static_cast<std::size_t>(j)];
    ++c;
    ++l1_;
    if (c == 1) cv_.Set(j, true);
    if (c > max_) {
      max_ = c;
      num_at_max_ = 1;
    } else if (c == max_) {
      ++num_at_max_;
    }
  }
}

void Aplv::RemovePrimaryLset(const routing::LinkSet& lset) {
  // Validate the whole LSET before touching anything: a mid-loop failure
  // used to leave counts_/l1_/num_at_max_/cv_ partially decremented, so
  // a caller that catches the CheckError (tests, defensive teardown)
  // kept a torn vector. The multiplicity check runs over the prefix so a
  // LSET that repeats a link needs that many registered occurrences, not
  // just a nonzero count.
  for (std::size_t i = 0; i < lset.size(); ++i) {
    const LinkId j = lset[i];
    DRTP_CHECK_MSG(j >= 0 && j < size(),
                   "link " << j << " outside the " << size() << "-link APLV");
    std::int32_t multiplicity = 1;
    for (std::size_t k = 0; k < i; ++k) {
      if (lset[k] == j) ++multiplicity;
    }
    DRTP_CHECK_MSG(counts_[static_cast<std::size_t>(j)] >= multiplicity,
                   "removing absent primary link " << j);
  }
  for (LinkId j : lset) {
    auto& c = counts_[static_cast<std::size_t>(j)];
    if (c == max_) --num_at_max_;
    --c;
    --l1_;
    if (c == 0) cv_.Set(j, false);
  }
  // Only when the last element holding the maximum was decremented can the
  // maximum drop; otherwise max_ (and its survivor count) stand as-is.
  if (max_ > 0 && num_at_max_ == 0) {
    max_ = 0;
    num_at_max_ = 0;
    for (std::int32_t c : counts_) {
      if (c > max_) {
        max_ = c;
        num_at_max_ = 1;
      } else if (c == max_ && max_ > 0) {
        ++num_at_max_;
      }
    }
  }
}

int Aplv::ConflictingLinksIn(const routing::LinkSet& lset) const {
  int n = 0;
  for (LinkId j : lset) {
    if (j >= 0 && j < size() && count(j) > 0) ++n;
  }
  return n;
}

}  // namespace drtp::lsdb
