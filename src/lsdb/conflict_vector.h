// Conflict Vector (§3.2): the bit-vector abridgement of an APLV.
//
// CV_i[j] == 1 iff at least one primary channel runs through link L_j whose
// backup traverses L_i. D-LSR advertises CVs in the link-state database and
// prices a candidate backup link by how many of the primary's links are set
// in its CV.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "routing/path.h"

namespace drtp::lsdb {

/// Link-count threshold above which per-link protection state switches
/// from dense eager layouts to sparse/lazy ones. At or below it (every
/// paper-scale topology: 60 nodes ≈ 200 links) the containers behave
/// exactly as they always have — full-width allocation up front — so
/// word spans, digests and figure outputs are bit-stable. Above it, an
/// eagerly dense per-link vector costs O(links) each across O(links)
/// instances (terabytes at 10k nodes), so storage allocates on demand.
inline constexpr int kWideLinkThreshold = 4096;

/// Fixed-width bit vector indexed by LinkId.
///
/// Wide vectors (size() > kWideLinkThreshold) elide trailing zero words:
/// construction allocates nothing and Set(j, true) grows the word array
/// just far enough to hold bit j. All read operations treat the missing
/// tail as zero, and equality is semantic — a never-touched wide vector
/// equals one whose bits were set and cleared again.
class ConflictVector {
 public:
  ConflictVector() = default;
  explicit ConflictVector(int num_links)
      : num_links_(num_links),
        words_(num_links <= kWideLinkThreshold
                   ? static_cast<std::size_t>((num_links + 63) / 64)
                   : 0,
               0) {
    DRTP_CHECK(num_links >= 0);
  }

  int size() const { return num_links_; }

  bool Test(LinkId j) const {
    Bounds(j);
    const std::size_t w = Word(j);
    return w < words_.size() && ((words_[w] >> Bit(j)) & 1u);
  }

  void Set(LinkId j, bool value) {
    Bounds(j);
    const std::size_t w = Word(j);
    if (value) {
      if (w >= words_.size()) words_.resize(w + 1, 0);
      words_[w] |= std::uint64_t{1} << Bit(j);
    } else if (w < words_.size()) {
      words_[w] &= ~(std::uint64_t{1} << Bit(j));
    }
  }

  /// Number of set bits.
  int PopCount() const;

  /// |{ j in lset : CV[j] == 1 }| — the D-LSR conflict term
  /// Σ_{L_j ∈ LSET(P)} c_{i,j} of Eq. 5.
  int CountIn(const routing::LinkSet& lset) const;

  /// Word-wise CountIn: popcount of the AND against a precomputed bitmask
  /// (same word layout as words(), bit j = link L_j). Equivalent to
  /// CountIn over the lset the mask encodes, at ~64 links per cycle;
  /// SelectBackupLsr builds the primary's mask once per request and scores
  /// every candidate link with this.
  int AndPopCount(std::span<const std::uint64_t> mask) const;

  /// The raw bit words, least-significant bit of word 0 = link 0. Wide
  /// vectors may return fewer than (size()+63)/64 words — the elided tail
  /// is all-zero.
  std::span<const std::uint64_t> words() const { return words_; }

  /// Wire size of the advertisement payload in bytes (N bits, rounded up).
  int AdvertBytes() const { return (num_links_ + 7) / 8; }

  /// Semantic equality: same width and same bits; allocated-but-zero tail
  /// words compare equal to elided ones.
  friend bool operator==(const ConflictVector& a, const ConflictVector& b);

 private:
  void Bounds(LinkId j) const { DRTP_DCHECK(j >= 0 && j < num_links_); }
  static std::size_t Word(LinkId j) {
    return static_cast<std::size_t>(j) / 64;
  }
  static unsigned Bit(LinkId j) { return static_cast<unsigned>(j) % 64; }

  int num_links_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace drtp::lsdb
