// Accumulated Primary-route Link Vector (§2.1).
//
// APLV_i[j] is the number of primary channels that traverse link L_j and
// whose backup channels go through link L_i. The L1 norm drives P-LSR
// (Eq. 4), the bit pattern (Conflict Vector) drives D-LSR (Eq. 5), and the
// max element sizes the spare pool (§5: any single link failure activates
// at most max_j APLV_i[j] backups on L_i).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "lsdb/conflict_vector.h"
#include "routing/path.h"

namespace drtp::lsdb {

/// One link's APLV with incrementally maintained L1 norm, maximum and
/// conflict-vector abridgement.
///
/// Storage is hybrid: at paper scale (size() <= kWideLinkThreshold) the
/// counts live in a dense array exactly as before. Wide vectors switch to
/// a sorted struct-of-arrays pair (keys_, cnts_) holding only the nonzero
/// elements — an ISP-scale link crosses a few hundred primaries, not all
/// 30k, so the working set stays cache-resident instead of costing
/// O(links) per instance across O(links) instances. Entries are erased
/// when they hit zero, keeping the sparse form canonical so the defaulted
/// equality below stays semantic.
class Aplv {
 public:
  Aplv() = default;
  explicit Aplv(int num_links) : num_links_(num_links), cv_(num_links) {
    DRTP_CHECK(num_links >= 0);
    if (!wide()) counts_.assign(static_cast<std::size_t>(num_links), 0);
  }

  int size() const { return num_links_; }

  std::int32_t count(LinkId j) const;

  /// ||APLV||_1 — total number of (primary link, backup) incidences.
  std::int64_t L1() const { return l1_; }

  /// max_j APLV[j] — worst-case simultaneous activations on this link
  /// under a single link failure.
  std::int32_t Max() const { return max_; }

  /// How many elements currently equal Max() (0 when Max() is 0);
  /// exposed so tests can cross-check the incremental max tracking.
  std::int32_t num_at_max() const { return num_at_max_; }

  /// Registers a backup on this link whose primary has the given LSET:
  /// increments every element indexed by the primary's links.
  void AddPrimaryLset(const routing::LinkSet& lset);

  /// Inverse of AddPrimaryLset. The whole LSET is validated (including
  /// repeated-link multiplicity) before any element changes, so a failed
  /// removal throws CheckError with the vector untouched.
  void RemovePrimaryLset(const routing::LinkSet& lset);

  /// Bit-vector abridgement (c_{i,j} = 1 iff a_{i,j} > 0), maintained
  /// incrementally with the counts — reading it is free.
  const ConflictVector& conflict_vector() const { return cv_; }

  /// Copy of the abridgement (kept for callers that want ownership).
  ConflictVector ToConflictVector() const { return cv_; }

  /// Σ_{j ∈ lset} a_{i,j} > 0 element count — number of the primary's
  /// links already conflicting here (used by tests/diagnostics).
  int ConflictingLinksIn(const routing::LinkSet& lset) const;

  friend bool operator==(const Aplv&, const Aplv&) = default;

 private:
  bool wide() const { return num_links_ > kWideLinkThreshold; }

  int num_links_ = 0;
  std::vector<std::int32_t> counts_;  // dense mode only
  std::vector<LinkId> keys_;          // wide mode: sorted nonzero indices
  std::vector<std::int32_t> cnts_;    // wide mode: counts, parallel to keys_
  ConflictVector cv_;
  std::int64_t l1_ = 0;
  std::int32_t max_ = 0;
  /// How many elements currently equal max_ (0 when max_ is 0); lets
  /// RemovePrimaryLset skip the full rescan while another element still
  /// holds the maximum.
  std::int32_t num_at_max_ = 0;
};

}  // namespace drtp::lsdb
