// Link-state database (§3).
//
// Routers advertise, per outgoing link: available bandwidth plus the
// scheme-specific APLV abridgement — ||APLV||_1 for P-LSR, the Conflict
// Vector for D-LSR. The database is the *routing view*: with the default
// refresh interval of 0 it mirrors authoritative state instantly (the
// paper's simulation assumption); a positive interval models advertisement
// staleness for ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "lsdb/conflict_vector.h"
#include "lsdb/srlg_vector.h"

namespace drtp::lsdb {

/// One link's advertised state.
struct LinkRecord {
  /// Liveness: routers withdraw failed links from the database; no route
  /// selection may use a withdrawn link.
  bool up = true;
  /// ||APLV||_1 (P-LSR's cost ingredient).
  std::int64_t aplv_l1 = 0;
  /// Conflict vector (D-LSR's cost ingredient).
  ConflictVector cv;
  /// Bandwidth a *backup* may still use: free + spare pool (§3.1:
  /// "the sum of the un-allocated bandwidth and the spare bandwidth
  /// shared by the backup channels").
  Bandwidth available_for_backup = 0;
  /// Bandwidth a *primary* may still reserve: the free pool only.
  Bandwidth free_for_primary = 0;
  /// Per-SRLG APLV aggregate (SRLG-aware schemes' cost ingredient).
  /// Empty (zero groups) on untagged topologies, so SRLG-free runs carry
  /// and compare nothing extra.
  SrlgVector srlg_aplv;

  friend bool operator==(const LinkRecord&, const LinkRecord&) = default;
};

/// Snapshot store of every link's advertisement.
class LinkStateDb {
 public:
  LinkStateDb(int num_links, int cv_width)
      : records_(static_cast<std::size_t>(num_links)) {
    DRTP_CHECK(num_links >= 0);
    for (auto& r : records_) r.cv = ConflictVector(cv_width);
  }

  int num_links() const { return static_cast<int>(records_.size()); }

  const LinkRecord& record(LinkId l) const {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return records_[static_cast<std::size_t>(l)];
  }
  LinkRecord& record(LinkId l) {
    DRTP_DCHECK(l >= 0 && l < num_links());
    return records_[static_cast<std::size_t>(l)];
  }

  Time last_refresh() const { return last_refresh_; }
  void set_last_refresh(Time t) { last_refresh_ = t; }

  // ---- publish stamp ------------------------------------------------------
  // Identity and sequence number of the last publisher that wrote this
  // database. DrtpNetwork::PublishTo takes its incremental path only when
  // the stamp proves this db received every publication since the last
  // full one; any other writer (a different network, a fresh db, a copy
  // that fell behind) gets a full republish. Opaque to everyone else.

  const void* publisher() const { return publisher_; }
  std::uint64_t publish_seq() const { return publish_seq_; }
  void SetPublishStamp(const void* publisher, std::uint64_t seq) {
    publisher_ = publisher;
    publish_seq_ = seq;
  }

  /// Wire size of one full advertisement cycle (all links), in bytes.
  /// Per link: 4B link id + 4B bandwidth fields x2 + payload
  /// (8B L1 for P-LSR, N/8 B conflict vector for D-LSR); `with_srlg`
  /// additionally counts the per-SRLG aggregate the SRLG-aware variants
  /// read.
  std::int64_t AdvertBytesPerCycle(bool with_cv,
                                   bool with_srlg = false) const;

 private:
  std::vector<LinkRecord> records_;
  Time last_refresh_ = -1.0;
  const void* publisher_ = nullptr;
  std::uint64_t publish_seq_ = 0;
};

}  // namespace drtp::lsdb
