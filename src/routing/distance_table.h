// Distance tables for bounded flooding (§4.1).
//
// Each node i keeps, for every destination j and every neighbor k, the
// minimum hop count from i to j when the first hop is i->k (D^i_{j,k});
// D^i_j is the minimum over neighbors. Tables are rebuilt only on topology
// change, exactly as the paper prescribes.
#pragma once

#include <limits>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace drtp::routing {

/// Hop count used for unreachable pairs (safe to add small offsets to).
inline constexpr int kUnreachableHops =
    std::numeric_limits<int>::max() / 4;

/// All-pairs minimum hop counts plus the via-neighbor view the flooding
/// tests need. Immutable snapshot of one topology.
class DistanceTable {
 public:
  /// Builds via one BFS per node: O(V * (V + L)).
  static DistanceTable Build(const net::Topology& topo);

  /// D^from_to: minimum hops from `from` to `to` (0 when equal).
  int MinHops(NodeId from, NodeId to) const {
    return dist_[Index(from, to)];
  }

  /// D^from_{to, via}: minimum hops from `from` to `to` when the first hop
  /// is the link from->via. Requires `via` adjacent to `from`.
  int MinHopsVia(NodeId from, NodeId to, NodeId via) const;

  bool Reachable(NodeId from, NodeId to) const {
    return MinHops(from, to) < kUnreachableHops;
  }

  int num_nodes() const { return n_; }

 private:
  DistanceTable(int n, std::vector<int> dist)
      : n_(n), dist_(std::move(dist)) {}

  std::size_t Index(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  int n_;
  std::vector<int> dist_;  // row-major [from][to]
};

}  // namespace drtp::routing
