// Dijkstra shortest paths with pluggable non-negative link costs.
//
// Both link-state schemes reduce backup selection to a single Dijkstra run
// over scheme-specific costs (Eq. 4 and Eq. 5); primary selection uses
// unit costs with infeasible links priced at infinity.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "routing/path.h"

namespace drtp::routing {

/// Cost of traversing a link. Return kInfiniteCost to forbid the link.
using LinkCostFn = std::function<double(LinkId)>;

inline constexpr double kInfiniteCost =
    std::numeric_limits<double>::infinity();

/// Single-source shortest path tree.
struct DijkstraTree {
  /// dist[v] is the cost from the source; infinity when unreachable.
  std::vector<double> dist;
  /// parent_link[v] is the tree link entering v; kInvalidLink at the
  /// source and unreachable nodes.
  std::vector<LinkId> parent_link;

  bool Reached(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kInfiniteCost;
  }

  /// Extracts the path source->dst from the tree; nullopt if unreachable
  /// or dst is the source itself.
  std::optional<Path> PathTo(const net::Topology& topo, NodeId dst) const;
};

/// Runs Dijkstra from `src`. Costs must be non-negative (checked).
DijkstraTree RunDijkstra(const net::Topology& topo, NodeId src,
                         const LinkCostFn& cost);

/// Convenience: cheapest src->dst path, nullopt when disconnected (or when
/// every route has infinite cost).
std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, const LinkCostFn& cost);

/// Min-hop path using unit costs, restricted to links where `usable`
/// returns true (pass nullptr for no restriction).
std::optional<Path> MinHopPath(const net::Topology& topo, NodeId src,
                               NodeId dst,
                               const std::function<bool(LinkId)>& usable);

}  // namespace drtp::routing
