// Dijkstra shortest paths with pluggable non-negative link costs.
//
// Both link-state schemes reduce backup selection to a single Dijkstra run
// over scheme-specific costs (Eq. 4 and Eq. 5); primary selection uses
// unit costs with infeasible links priced at infinity.
//
// Two entry points: the allocating RunDijkstra/DijkstraTree (convenient,
// used by tests and cold paths) and the workspace-backed overloads that
// reuse epoch-stamped scratch arrays across calls — the request hot path
// runs thousands of selections per second and must not allocate per call.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/function_ref.h"
#include "common/types.h"
#include "net/topology.h"
#include "routing/path.h"

namespace drtp::routing {

/// Cost of traversing a link. Return kInfiniteCost to forbid the link.
/// Non-owning: the callable must outlive the routing call (always true for
/// a lambda passed directly at the call site).
using LinkCostFn = FunctionRef<double(LinkId)>;

inline constexpr double kInfiniteCost =
    std::numeric_limits<double>::infinity();

/// Integer link costs for the monotone bucket-queue kernel. Return
/// kInfiniteIntCost to forbid the link.
using IntLinkCostFn = FunctionRef<std::int64_t(LinkId)>;

inline constexpr std::int64_t kInfiniteIntCost =
    std::numeric_limits<std::int64_t>::max();

/// The bucket-queue kernel indexes a bucket per distinct distance value;
/// a relaxation past this many buckets is refused (CHECK) — scale the
/// costs down or use the double/binary-heap kernel for wide-range costs.
inline constexpr std::int64_t kMaxDijkstraBuckets = std::int64_t{1} << 22;

class DijkstraWorkspace;

namespace detail {
/// Internal: the Dijkstra hot loop, shared by the obs-timed and untimed
/// entry paths of RunDijkstra (see dijkstra.cc for why it is split out).
/// Walks the topology's CSR rows.
void RunDijkstraLoop(const net::Topology& topo, NodeId src, LinkCostFn cost,
                     DijkstraWorkspace& ws);

/// Reference implementation over the pointer-chasing Node::out_links
/// adjacency — the pre-CSR layout, kept as the differential-test oracle
/// for RunDijkstraLoop (identical edge order, identical tree).
void RunDijkstraLoopAdjList(const net::Topology& topo, NodeId src,
                            LinkCostFn cost, DijkstraWorkspace& ws);

/// Integer-cost bucket-queue hot loop; see RunDijkstraInt.
void RunDijkstraLoopInt(const net::Topology& topo, NodeId src,
                        IntLinkCostFn cost, DijkstraWorkspace& ws,
                        NodeId settle_until);
}  // namespace detail

/// Single-source shortest path tree.
struct DijkstraTree {
  /// dist[v] is the cost from the source; infinity when unreachable.
  std::vector<double> dist;
  /// parent_link[v] is the tree link entering v; kInvalidLink at the
  /// source and unreachable nodes.
  std::vector<LinkId> parent_link;

  bool Reached(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < kInfiniteCost;
  }

  /// Extracts the path source->dst from the tree; nullopt if unreachable
  /// or dst is the source itself.
  std::optional<Path> PathTo(const net::Topology& topo, NodeId dst) const;
};

/// Reusable Dijkstra scratch: dist/parent arrays invalidated by an epoch
/// stamp (bumping the epoch resets every node in O(1)) plus the binary
/// heap's backing store. One run's results stay readable until the next
/// run on the same workspace. Not thread-safe — use one per thread
/// (thread_local in the schemes).
class DijkstraWorkspace {
 public:
  bool Reached(NodeId v) const { return Dist(v) < kInfiniteCost; }

  /// Cost from the last run's source; infinity when unreachable.
  double Dist(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return stamp_[i] == epoch_ ? dist_[i] : kInfiniteCost;
  }

  /// Tree link entering `v`; kInvalidLink at the source / unreachable.
  LinkId ParentLink(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return stamp_[i] == epoch_ ? parent_[i] : kInvalidLink;
  }

  /// As DijkstraTree::PathTo, reading the last run's tree.
  std::optional<Path> PathTo(const net::Topology& topo, NodeId dst) const;

 private:
  friend void RunDijkstra(const net::Topology& topo, NodeId src,
                          LinkCostFn cost, DijkstraWorkspace& ws);
  friend void detail::RunDijkstraLoop(const net::Topology& topo, NodeId src,
                                      LinkCostFn cost,
                                      DijkstraWorkspace& ws);
  friend void detail::RunDijkstraLoopAdjList(const net::Topology& topo,
                                             NodeId src, LinkCostFn cost,
                                             DijkstraWorkspace& ws);
  friend void detail::RunDijkstraLoopInt(const net::Topology& topo,
                                         NodeId src, IntLinkCostFn cost,
                                         DijkstraWorkspace& ws,
                                         NodeId settle_until);

  void Prepare(int num_nodes);
  void Relax(NodeId v, double d, LinkId parent) {
    const auto i = static_cast<std::size_t>(v);
    stamp_[i] = epoch_;
    dist_[i] = d;
    parent_[i] = parent;
  }

  std::vector<double> dist_;
  std::vector<LinkId> parent_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<std::pair<double, NodeId>> heap_;
  /// Bucket arena for the integer kernel: buckets_[d] holds the frontier
  /// at distance d (sorted descending by node id while being drained).
  /// Buckets are drained empty by every run (including early-exit runs),
  /// so the arena's inner vectors keep their capacity across calls — zero
  /// steady-state allocation.
  std::vector<std::vector<NodeId>> buckets_;
};

/// Runs Dijkstra from `src`. Costs must be non-negative (checked).
DijkstraTree RunDijkstra(const net::Topology& topo, NodeId src,
                         LinkCostFn cost);

/// Allocation-free variant: identical tree (same tie-breaks — the heap
/// replays std::priority_queue's pop order exactly), results land in `ws`.
void RunDijkstra(const net::Topology& topo, NodeId src, LinkCostFn cost,
                 DijkstraWorkspace& ws);

/// Integer-cost Dijkstra on a monotone bucket queue (Dial's algorithm) —
/// O(V + E + max_dist) with no log factor and no per-run allocation once
/// the workspace is warm. Produces the exact tree RunDijkstra builds for
/// the same costs: the binary heap pops (dist, node) in ascending
/// lexicographic order (duplicates never reach the heap — relaxation is
/// strict), and draining each distance bucket in ascending node id
/// replays that order, zero-cost edges included. Callers with
/// non-integer costs (e.g. the kEpsilon backup tie-break) must stay on
/// RunDijkstra; this kernel is for unit/hop-style metrics.
///
/// `settle_until` != kInvalidNode stops the run once that node is settled
/// (its dist/parent chain is final at pop time); distances beyond it are
/// then unspecified — only PathTo(settle_until) may be read.
void RunDijkstraInt(const net::Topology& topo, NodeId src, IntLinkCostFn cost,
                    DijkstraWorkspace& ws,
                    NodeId settle_until = kInvalidNode);

/// Convenience: cheapest src->dst path, nullopt when disconnected (or when
/// every route has infinite cost).
std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost);

/// Workspace-backed overload for hot paths.
std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost,
                                 DijkstraWorkspace& ws);

/// Cheapest path under integer costs via the bucket-queue kernel, with
/// early exit once `dst` settles. Identical route to CheapestPath over
/// the same (integerized) costs.
std::optional<Path> CheapestPathInt(const net::Topology& topo, NodeId src,
                                    NodeId dst, IntLinkCostFn cost,
                                    DijkstraWorkspace& ws);

/// Min-hop path using unit costs, restricted to links where `usable`
/// returns true (pass nullptr for no restriction).
std::optional<Path> MinHopPath(const net::Topology& topo, NodeId src,
                               NodeId dst, FunctionRef<bool(LinkId)> usable);

}  // namespace drtp::routing
