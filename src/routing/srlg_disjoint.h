// SRLG-disjoint active/protection pair search.
//
// Quality baseline for the SRLG-aware heuristic schemes: instead of
// fixing the active path first and hoping a group-disjoint protection
// exists (the heuristics' two-step gamble), enumerate active candidates
// in nondecreasing cost (Yen's algorithm) and, for each, run a
// protection Dijkstra with the candidate's links and every link sharing
// a risk group with it priced at infinity. A cost bound prunes the
// enumeration: once an incumbent pair exists, any candidate whose active
// cost plus the *unconstrained* protection shortest-path cost (a lower
// bound on every constrained protection) cannot beat the incumbent ends
// the search with optimality proven. The pruned two-step enumeration
// follows the scheme of arXiv 2503.08262.
//
// Deterministic: candidates are ordered by (cost, link-sequence lex),
// so equal-cost topologies resolve identically on every run.
#pragma once

#include <optional>

#include "common/types.h"
#include "net/topology.h"
#include "routing/dijkstra.h"
#include "routing/path.h"

namespace drtp::routing {

struct SrlgDisjointOptions {
  /// Active-path candidates examined before giving up on a proof. The
  /// search usually prunes far earlier; this caps the pathological case
  /// (many equal-cost actives none of which admits a protection).
  int max_active_candidates = 16;
};

struct SrlgDisjointResult {
  /// Both set iff a pair exists among the examined candidates.
  std::optional<Path> active;
  std::optional<Path> protection;
  /// active + protection cost of the returned pair; infinity when none.
  double total_cost = kInfiniteCost;
  /// Active candidates for which a protection Dijkstra was attempted.
  int candidates_tried = 0;
  /// True when the result is provably the cheapest pair (prune bound hit
  /// or candidate space exhausted) — false only when the candidate cap
  /// stopped the search first.
  bool proven_optimal = false;

  bool found() const { return active.has_value() && protection.has_value(); }
};

/// Cheapest pair of link- and SRLG-disjoint src->dst paths under the two
/// cost functions. Links priced kInfiniteCost are unusable for the
/// respective role. Untagged links (kInvalidSrlg) only need to be
/// link-disjoint; on a fully untagged topology this degenerates to a
/// cheapest link-disjoint pair search.
SrlgDisjointResult FindSrlgDisjointPair(const net::Topology& topo, NodeId src,
                                        NodeId dst, LinkCostFn active_cost,
                                        LinkCostFn protection_cost,
                                        const SrlgDisjointOptions& opts = {});

}  // namespace drtp::routing
