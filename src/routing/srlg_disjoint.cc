#include "routing/srlg_disjoint.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"

namespace drtp::routing {
namespace {

double CostOf(std::span<const LinkId> links, LinkCostFn cost) {
  double total = 0;
  for (LinkId l : links) total += cost(l);
  return total;
}

/// Yen's k-shortest simple paths, yielded one at a time in nondecreasing
/// cost (ties broken by link-sequence lexicographic order, making the
/// enumeration deterministic on equal-cost meshes).
class YenEnumerator {
 public:
  YenEnumerator(const net::Topology& topo, NodeId src, NodeId dst,
                LinkCostFn cost)
      : topo_(topo), src_(src), dst_(dst), cost_(cost),
        banned_link_(static_cast<std::size_t>(topo.num_links()), 0),
        banned_node_(static_cast<std::size_t>(topo.num_nodes()), 0) {}

  std::optional<Path> Next() {
    if (!started_) {
      started_ = true;
      auto first = CheapestPath(topo_, src_, dst_, cost_);
      if (!first.has_value()) return std::nullopt;
      return Emit(*std::move(first));
    }
    ExpandSpursOfLastEmitted();
    if (pool_.empty()) return std::nullopt;
    auto entry = pool_.extract(pool_.begin());
    auto path = Path::FromLinks(topo_, std::move(entry.value().links));
    DRTP_CHECK(path.has_value());  // pool holds only validated chains
    return Emit(*std::move(path));
  }

 private:
  struct PoolEntry {
    double cost;
    std::vector<LinkId> links;
    friend bool operator<(const PoolEntry& a, const PoolEntry& b) {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.links < b.links;
    }
  };

  Path Emit(Path path) {
    emitted_.emplace_back(path.links().begin(), path.links().end());
    last_ = path;
    return path;
  }

  void ExpandSpursOfLastEmitted() {
    DRTP_CHECK(last_.has_value());
    const std::vector<LinkId> prev(last_->links().begin(),
                                   last_->links().end());
    const std::vector<NodeId>& nodes = last_->nodes();
    double root_cost = 0;
    for (int i = 0; i < last_->hops(); ++i) {
      const NodeId spur_node = nodes[static_cast<std::size_t>(i)];
      // Deviate at the spur node: links any emitted path with this exact
      // root prefix takes next are banned, and the root's earlier nodes
      // are banned so the spur cannot loop back through them.
      std::vector<LinkId> banned_links;
      for (const std::vector<LinkId>& e : emitted_) {
        if (static_cast<int>(e.size()) > i &&
            std::equal(e.begin(), e.begin() + i, prev.begin())) {
          const LinkId b = e[static_cast<std::size_t>(i)];
          if (!banned_link_[static_cast<std::size_t>(b)]) {
            banned_link_[static_cast<std::size_t>(b)] = 1;
            banned_links.push_back(b);
          }
        }
      }
      for (int j = 0; j < i; ++j) {
        banned_node_[static_cast<std::size_t>(
            nodes[static_cast<std::size_t>(j)])] = 1;
      }
      auto spur = CheapestPath(
          topo_, spur_node, dst_,
          [&](LinkId l) {
            if (banned_link_[static_cast<std::size_t>(l)]) {
              return kInfiniteCost;
            }
            if (banned_node_[static_cast<std::size_t>(topo_.link(l).dst)]) {
              return kInfiniteCost;
            }
            return cost_(l);
          });
      if (spur.has_value()) {
        std::vector<LinkId> links(prev.begin(), prev.begin() + i);
        links.insert(links.end(), spur->links().begin(), spur->links().end());
        bool known = pool_seen_.contains(links);
        for (const std::vector<LinkId>& e : emitted_) {
          if (known) break;
          known = e == links;
        }
        if (!known) {
          const double c = root_cost + CostOf(spur->links(), cost_);
          pool_seen_.insert(links);
          pool_.insert(PoolEntry{c, std::move(links)});
        }
      }
      for (LinkId b : banned_links) {
        banned_link_[static_cast<std::size_t>(b)] = 0;
      }
      for (int j = 0; j < i; ++j) {
        banned_node_[static_cast<std::size_t>(
            nodes[static_cast<std::size_t>(j)])] = 0;
      }
      root_cost += cost_(prev[static_cast<std::size_t>(i)]);
    }
  }

  const net::Topology& topo_;
  NodeId src_;
  NodeId dst_;
  LinkCostFn cost_;
  bool started_ = false;
  std::optional<Path> last_;
  std::vector<std::vector<LinkId>> emitted_;
  std::set<PoolEntry> pool_;
  std::set<std::vector<LinkId>> pool_seen_;
  std::vector<char> banned_link_;
  std::vector<char> banned_node_;
};

}  // namespace

SrlgDisjointResult FindSrlgDisjointPair(const net::Topology& topo, NodeId src,
                                        NodeId dst, LinkCostFn active_cost,
                                        LinkCostFn protection_cost,
                                        const SrlgDisjointOptions& opts) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  DRTP_CHECK(dst >= 0 && dst < topo.num_nodes());
  DRTP_CHECK(opts.max_active_candidates > 0);

  SrlgDisjointResult result;
  // Lower bound on any constrained protection path. No unconstrained
  // protection => no pair at all.
  DijkstraWorkspace ws;
  auto free_prot = CheapestPath(topo, src, dst, protection_cost, ws);
  if (!free_prot.has_value()) {
    result.proven_optimal = true;
    return result;
  }
  const double prot_lb = CostOf(free_prot->links(), protection_cost);

  YenEnumerator actives(topo, src, dst, active_cost);
  std::vector<SrlgId> groups;
  for (int k = 0; k < opts.max_active_candidates; ++k) {
    auto active = actives.Next();
    if (!active.has_value()) {
      // Candidate space exhausted: the incumbent (or "none") is exact.
      result.proven_optimal = true;
      return result;
    }
    const double active_cost_k = CostOf(active->links(), active_cost);
    if (result.found() && active_cost_k + prot_lb >= result.total_cost) {
      // Candidates arrive in nondecreasing cost, so no later one can
      // beat the incumbent either.
      result.proven_optimal = true;
      return result;
    }
    ++result.candidates_tried;

    const LinkSet active_lset = active->ToLinkSet();
    groups.clear();
    for (LinkId l : active_lset) {
      const SrlgId g = topo.srlg(l);
      if (g != kInvalidSrlg) groups.push_back(g);
    }
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());

    auto protection = CheapestPath(
        topo, src, dst,
        [&](LinkId l) {
          if (SetContains(active_lset, l)) return kInfiniteCost;
          const SrlgId g = topo.srlg(l);
          if (g != kInvalidSrlg &&
              std::binary_search(groups.begin(), groups.end(), g)) {
            return kInfiniteCost;
          }
          return protection_cost(l);
        },
        ws);
    if (!protection.has_value()) continue;
    const double total =
        active_cost_k + CostOf(protection->links(), protection_cost);
    if (total < result.total_cost) {
      result.total_cost = total;
      result.active = *std::move(active);
      result.protection = *std::move(protection);
    }
  }
  // Candidate cap hit before the bound closed; the pair (if any) is the
  // best among those examined but not provably optimal.
  return result;
}

}  // namespace drtp::routing
