#include "routing/path.h"

#include <algorithm>

#include "common/check.h"

namespace drtp::routing {

LinkSet MakeLinkSet(std::vector<LinkId> links) {
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

bool SetContains(const LinkSet& set, LinkId l) {
  return std::binary_search(set.begin(), set.end(), l);
}

int SetIntersectCount(const LinkSet& a, const LinkSet& b) {
  int count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

bool SetDisjoint(const LinkSet& a, const LinkSet& b) {
  return SetIntersectCount(a, b) == 0;
}

std::optional<Path> Path::FromLinks(const net::Topology& topo,
                                    std::vector<LinkId> links) {
  if (links.empty()) return std::nullopt;
  for (LinkId l : links) {
    if (l < 0 || l >= topo.num_links()) return std::nullopt;
  }
  std::vector<NodeId> nodes;
  nodes.reserve(links.size() + 1);
  nodes.push_back(topo.link(links.front()).src);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const net::Link& link = topo.link(links[i]);
    if (link.src != nodes.back()) return std::nullopt;
    nodes.push_back(link.dst);
  }
  const NodeId src = nodes.front();
  const NodeId dst = nodes.back();
  return Path(src, dst, std::move(links), std::move(nodes));
}

std::optional<Path> Path::FromNodes(const net::Topology& topo,
                                    std::span<const NodeId> nodes) {
  if (nodes.size() < 2) return std::nullopt;
  std::vector<LinkId> links;
  links.reserve(nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const LinkId l = topo.FindLink(nodes[i], nodes[i + 1]);
    if (l == kInvalidLink) return std::nullopt;
    links.push_back(l);
  }
  return FromLinks(topo, std::move(links));
}

bool Path::Contains(LinkId l) const {
  return std::find(links_.begin(), links_.end(), l) != links_.end();
}

bool Path::VisitsNode(NodeId n) const {
  return std::find(nodes_.begin(), nodes_.end(), n) != nodes_.end();
}

bool Path::IsSimple() const {
  std::vector<NodeId> sorted = nodes_;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

LinkSet Path::ToLinkSet() const { return MakeLinkSet(links_); }

int Path::OverlapCount(const Path& other) const {
  return SetIntersectCount(ToLinkSet(), other.ToLinkSet());
}

}  // namespace drtp::routing
