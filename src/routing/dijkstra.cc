#include "routing/dijkstra.h"

#include <algorithm>
#include <functional>

#include "common/check.h"
#include "obs/span.h"

namespace drtp::routing {
namespace {

/// Walks the parent chain dst->src once to count hops, then fills the
/// exactly-sized link vector back-to-front — one allocation, no reverse.
template <typename ParentFn>
std::optional<Path> ExtractPath(const net::Topology& topo, NodeId dst,
                                ParentFn parent_link) {
  std::size_t hops = 0;
  for (NodeId v = dst; parent_link(v) != kInvalidLink;
       v = topo.link(parent_link(v)).src) {
    ++hops;
  }
  if (hops == 0) return std::nullopt;  // dst == src
  std::vector<LinkId> links(hops);
  NodeId v = dst;
  for (std::size_t i = hops; i-- > 0;) {
    const LinkId l = parent_link(v);
    links[i] = l;
    v = topo.link(l).src;
  }
  return Path::FromLinks(topo, std::move(links));
}

}  // namespace

namespace detail {

/// The actual algorithm, shared by the timed and untimed entries below.
/// noinline so the hot loop's codegen is bit-identical whether or not obs
/// spans are compiled in — the span object would otherwise stay live
/// across the loop and shift register allocation, which costs more than
/// the span itself (see docs/OBSERVABILITY.md).
[[gnu::noinline]] void RunDijkstraLoop(const net::Topology& topo, NodeId src,
                                       LinkCostFn cost,
                                       DijkstraWorkspace& ws) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  ws.Prepare(topo.num_nodes());
  ws.Relax(src, 0.0, kInvalidLink);

  // Manual heap over the reused buffer; push_back+push_heap / pop_heap+
  // pop_back is exactly how std::priority_queue is specified, so the pop
  // order (and therefore every tie-break) matches the allocating variant.
  auto& heap = ws.heap_;
  heap.clear();
  heap.emplace_back(0.0, src);
  const std::greater<> cmp;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > ws.Dist(u)) continue;  // stale
    for (LinkId l : topo.out_links(u)) {
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost " << c << " on link " << l);
      const NodeId v = topo.link(l).dst;
      const double nd = d + c;
      if (nd < ws.Dist(v)) {
        ws.Relax(v, nd, l);
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

}  // namespace detail

std::optional<Path> DijkstraTree::PathTo(const net::Topology& topo,
                                         NodeId dst) const {
  if (!Reached(dst)) return std::nullopt;
  return ExtractPath(topo, dst, [&](NodeId v) {
    return parent_link[static_cast<std::size_t>(v)];
  });
}

std::optional<Path> DijkstraWorkspace::PathTo(const net::Topology& topo,
                                              NodeId dst) const {
  if (!Reached(dst)) return std::nullopt;
  return ExtractPath(topo, dst, [&](NodeId v) { return ParentLink(v); });
}

void DijkstraWorkspace::Prepare(int num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (stamp_.size() < n) {
    dist_.resize(n);
    parent_.resize(n);
    stamp_.resize(n, 0);
  }
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: stale stamps could collide
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void RunDijkstra(const net::Topology& topo, NodeId src, LinkCostFn cost,
                 DijkstraWorkspace& ws) {
#ifndef DRTP_OBS_DISABLED
  // Sampled 1-in-64: the innermost routing kernel, invoked several times
  // per backup selection. The timed path is a separate branch so the
  // untimed 63/64 of calls run the exact same RunDijkstraLoop code an
  // obs-disabled build runs.
  thread_local std::uint32_t tick = 0;
  if ((tick++ & 63u) == 0) {
    DRTP_OBS_SPAN("drtp.kernel.dijkstra");
    detail::RunDijkstraLoop(topo, src, cost, ws);
    return;
  }
#endif
  detail::RunDijkstraLoop(topo, src, cost, ws);
}

DijkstraTree RunDijkstra(const net::Topology& topo, NodeId src,
                         LinkCostFn cost) {
  DijkstraWorkspace ws;
  RunDijkstra(topo, src, cost, ws);
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  DijkstraTree tree{std::vector<double>(n, kInfiniteCost),
                    std::vector<LinkId>(n, kInvalidLink)};
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    tree.dist[static_cast<std::size_t>(v)] = ws.Dist(v);
    tree.parent_link[static_cast<std::size_t>(v)] = ws.ParentLink(v);
  }
  return tree;
}

std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost) {
  DijkstraWorkspace ws;
  return CheapestPath(topo, src, dst, cost, ws);
}

std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost,
                                 DijkstraWorkspace& ws) {
  DRTP_CHECK(src != dst);
  RunDijkstra(topo, src, cost, ws);
  return ws.PathTo(topo, dst);
}

std::optional<Path> MinHopPath(const net::Topology& topo, NodeId src,
                               NodeId dst,
                               FunctionRef<bool(LinkId)> usable) {
  return CheapestPath(topo, src, dst, [&](LinkId l) {
    if (usable && !usable(l)) return kInfiniteCost;
    return 1.0;
  });
}

}  // namespace drtp::routing
