#include "routing/dijkstra.h"

#include <algorithm>
#include <functional>

#include "common/check.h"
#include "obs/span.h"

namespace drtp::routing {
namespace {

/// Walks the parent chain dst->src once to count hops, then fills the
/// exactly-sized link vector back-to-front — one allocation, no reverse.
template <typename ParentFn>
std::optional<Path> ExtractPath(const net::Topology& topo, NodeId dst,
                                ParentFn parent_link) {
  std::size_t hops = 0;
  for (NodeId v = dst; parent_link(v) != kInvalidLink;
       v = topo.link(parent_link(v)).src) {
    ++hops;
  }
  if (hops == 0) return std::nullopt;  // dst == src
  std::vector<LinkId> links(hops);
  NodeId v = dst;
  for (std::size_t i = hops; i-- > 0;) {
    const LinkId l = parent_link(v);
    links[i] = l;
    v = topo.link(l).src;
  }
  return Path::FromLinks(topo, std::move(links));
}

}  // namespace

namespace detail {

/// The actual algorithm, shared by the timed and untimed entries below.
/// noinline so the hot loop's codegen is bit-identical whether or not obs
/// spans are compiled in — the span object would otherwise stay live
/// across the loop and shift register allocation, which costs more than
/// the span itself (see docs/OBSERVABILITY.md).
///
/// Walks the CSR rows: link id and head node come from two flat arrays
/// in out_links insertion order, so the relaxation sequence — and every
/// tie-break — matches RunDijkstraLoopAdjList exactly.
[[gnu::noinline]] void RunDijkstraLoop(const net::Topology& topo, NodeId src,
                                       LinkCostFn cost,
                                       DijkstraWorkspace& ws) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  const net::Csr& csr = topo.csr();
  ws.Prepare(topo.num_nodes());
  ws.Relax(src, 0.0, kInvalidLink);

  // Manual heap over the reused buffer; push_back+push_heap / pop_heap+
  // pop_back is exactly how std::priority_queue is specified, so the pop
  // order (and therefore every tie-break) matches the allocating variant.
  auto& heap = ws.heap_;
  heap.clear();
  heap.emplace_back(0.0, src);
  const std::greater<> cmp;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > ws.Dist(u)) continue;  // stale
    const auto row = static_cast<std::size_t>(u);
    const std::int32_t begin = csr.out_offsets[row];
    const std::int32_t end = csr.out_offsets[row + 1];
    for (std::int32_t i = begin; i < end; ++i) {
      const LinkId l = csr.out_link_ids[static_cast<std::size_t>(i)];
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost " << c << " on link " << l);
      const NodeId v = csr.out_heads[static_cast<std::size_t>(i)];
      const double nd = d + c;
      if (nd < ws.Dist(v)) {
        ws.Relax(v, nd, l);
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

/// Pre-CSR reference: identical algorithm over Node::out_links -> Link
/// pointer chasing. Differential tests pin RunDijkstraLoop to this.
[[gnu::noinline]] void RunDijkstraLoopAdjList(const net::Topology& topo,
                                              NodeId src, LinkCostFn cost,
                                              DijkstraWorkspace& ws) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  ws.Prepare(topo.num_nodes());
  ws.Relax(src, 0.0, kInvalidLink);
  auto& heap = ws.heap_;
  heap.clear();
  heap.emplace_back(0.0, src);
  const std::greater<> cmp;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > ws.Dist(u)) continue;  // stale
    for (LinkId l : topo.out_links(u)) {
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost " << c << " on link " << l);
      const NodeId v = topo.link(l).dst;
      const double nd = d + c;
      if (nd < ws.Dist(v)) {
        ws.Relax(v, nd, l);
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

/// Monotone bucket queue (Dial): buckets_[d] is the frontier at integer
/// distance d, drained in ascending node id so the settle order is
/// ascending (dist, node) — the same total order the binary heap pops,
/// hence the same tree bit for bit. Distances are stored in the shared
/// double dist_ array (integers below 2^53 are exact), so Dist/ParentLink/
/// PathTo read both kernels' results identically.
///
/// Each bucket is filled unsorted (O(1) push), sorted descending once when
/// its distance becomes current, and drained from the back — one sort per
/// bucket instead of a heap operation per element, which is what buys the
/// speedup over the binary heap at BFS-sized frontiers. Zero-cost edges
/// are the one wrinkle: they push into the bucket being drained, where a
/// plain push_back would break the ascending-id order, so those (rare)
/// arrivals are placed by binary search instead.
[[gnu::noinline]] void RunDijkstraLoopInt(const net::Topology& topo,
                                          NodeId src, IntLinkCostFn cost,
                                          DijkstraWorkspace& ws,
                                          NodeId settle_until) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  const net::Csr& csr = topo.csr();
  ws.Prepare(topo.num_nodes());
  ws.Relax(src, 0.0, kInvalidLink);

  auto& buckets = ws.buckets_;
  if (buckets.empty()) buckets.resize(1);
  buckets[0].push_back(src);
  std::int64_t max_filled = 0;
  const std::greater<NodeId> desc;
  for (std::int64_t cur = 0; cur <= max_filled; ++cur) {
    {
      auto& bucket = buckets[static_cast<std::size_t>(cur)];
      std::sort(bucket.begin(), bucket.end(), desc);
    }
    // Re-index every iteration: relaxations below may grow `buckets` and
    // invalidate references into it (zero-cost edges re-enter this bucket).
    while (!buckets[static_cast<std::size_t>(cur)].empty()) {
      auto& bucket = buckets[static_cast<std::size_t>(cur)];
      const NodeId u = bucket.back();
      bucket.pop_back();
      const double d = static_cast<double>(cur);
      if (d > ws.Dist(u)) continue;  // stale
      if (u == settle_until) {
        // Settled: the parent chain to u is final. Drain the arena so the
        // next run starts clean without deallocating bucket storage.
        for (std::int64_t b = cur; b <= max_filled; ++b) {
          buckets[static_cast<std::size_t>(b)].clear();
        }
        return;
      }
      const auto row = static_cast<std::size_t>(u);
      const std::int32_t begin = csr.out_offsets[row];
      const std::int32_t end = csr.out_offsets[row + 1];
      for (std::int32_t i = begin; i < end; ++i) {
        const LinkId l = csr.out_link_ids[static_cast<std::size_t>(i)];
        const std::int64_t c = cost(l);
        if (c == kInfiniteIntCost) continue;
        DRTP_CHECK_MSG(c >= 0, "negative cost " << c << " on link " << l);
        const NodeId v = csr.out_heads[static_cast<std::size_t>(i)];
        const std::int64_t nd = cur + c;
        if (static_cast<double>(nd) < ws.Dist(v)) {
          DRTP_CHECK_MSG(nd < kMaxDijkstraBuckets,
                         "distance " << nd << " exceeds the bucket-queue "
                                     << "range; use the binary-heap kernel "
                                     << "for wide-range costs");
          ws.Relax(v, static_cast<double>(nd), l);
          if (nd > max_filled) {
            max_filled = nd;
            if (static_cast<std::size_t>(nd) >= buckets.size()) {
              buckets.resize(static_cast<std::size_t>(nd) + 1);
            }
          }
          auto& target = buckets[static_cast<std::size_t>(nd)];
          if (nd == cur) {
            // Zero-cost edge into the bucket being drained: keep the
            // descending order so back-pops stay ascending — exactly when
            // the binary heap would pop (cur, v) next among the remaining.
            target.insert(
                std::upper_bound(target.begin(), target.end(), v, desc), v);
          } else {
            target.push_back(v);
          }
        }
      }
    }
  }
}

}  // namespace detail

std::optional<Path> DijkstraTree::PathTo(const net::Topology& topo,
                                         NodeId dst) const {
  if (!Reached(dst)) return std::nullopt;
  return ExtractPath(topo, dst, [&](NodeId v) {
    return parent_link[static_cast<std::size_t>(v)];
  });
}

std::optional<Path> DijkstraWorkspace::PathTo(const net::Topology& topo,
                                              NodeId dst) const {
  if (!Reached(dst)) return std::nullopt;
  return ExtractPath(topo, dst, [&](NodeId v) { return ParentLink(v); });
}

void DijkstraWorkspace::Prepare(int num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (stamp_.size() < n) {
    dist_.resize(n);
    parent_.resize(n);
    stamp_.resize(n, 0);
  }
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: stale stamps could collide
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void RunDijkstra(const net::Topology& topo, NodeId src, LinkCostFn cost,
                 DijkstraWorkspace& ws) {
#ifndef DRTP_OBS_DISABLED
  // Sampled 1-in-64: the innermost routing kernel, invoked several times
  // per backup selection. The timed path is a separate branch so the
  // untimed 63/64 of calls run the exact same RunDijkstraLoop code an
  // obs-disabled build runs.
  thread_local std::uint32_t tick = 0;
  if ((tick++ & 63u) == 0) {
    DRTP_OBS_SPAN("drtp.kernel.dijkstra");
    detail::RunDijkstraLoop(topo, src, cost, ws);
    return;
  }
#endif
  detail::RunDijkstraLoop(topo, src, cost, ws);
}

void RunDijkstraInt(const net::Topology& topo, NodeId src, IntLinkCostFn cost,
                    DijkstraWorkspace& ws, NodeId settle_until) {
#ifndef DRTP_OBS_DISABLED
  // Sampled 1-in-64 like the double kernel: same innermost position on the
  // admission hot path, same codegen-isolation split.
  thread_local std::uint32_t tick = 0;
  if ((tick++ & 63u) == 0) {
    DRTP_OBS_SPAN("drtp.kernel.dijkstra_int");
    detail::RunDijkstraLoopInt(topo, src, cost, ws, settle_until);
    return;
  }
#endif
  detail::RunDijkstraLoopInt(topo, src, cost, ws, settle_until);
}

DijkstraTree RunDijkstra(const net::Topology& topo, NodeId src,
                         LinkCostFn cost) {
  DijkstraWorkspace ws;
  RunDijkstra(topo, src, cost, ws);
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  DijkstraTree tree{std::vector<double>(n, kInfiniteCost),
                    std::vector<LinkId>(n, kInvalidLink)};
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    tree.dist[static_cast<std::size_t>(v)] = ws.Dist(v);
    tree.parent_link[static_cast<std::size_t>(v)] = ws.ParentLink(v);
  }
  return tree;
}

std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost) {
  DijkstraWorkspace ws;
  return CheapestPath(topo, src, dst, cost, ws);
}

std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, LinkCostFn cost,
                                 DijkstraWorkspace& ws) {
  DRTP_CHECK(src != dst);
  RunDijkstra(topo, src, cost, ws);
  return ws.PathTo(topo, dst);
}

std::optional<Path> CheapestPathInt(const net::Topology& topo, NodeId src,
                                    NodeId dst, IntLinkCostFn cost,
                                    DijkstraWorkspace& ws) {
  DRTP_CHECK(src != dst);
  RunDijkstraInt(topo, src, cost, ws, dst);
  return ws.PathTo(topo, dst);
}

std::optional<Path> MinHopPath(const net::Topology& topo, NodeId src,
                               NodeId dst,
                               FunctionRef<bool(LinkId)> usable) {
  return CheapestPath(topo, src, dst, [&](LinkId l) {
    if (usable && !usable(l)) return kInfiniteCost;
    return 1.0;
  });
}

}  // namespace drtp::routing
