#include "routing/dijkstra.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace drtp::routing {

std::optional<Path> DijkstraTree::PathTo(const net::Topology& topo,
                                         NodeId dst) const {
  if (!Reached(dst)) return std::nullopt;
  std::vector<LinkId> links;
  NodeId v = dst;
  while (parent_link[static_cast<std::size_t>(v)] != kInvalidLink) {
    const LinkId l = parent_link[static_cast<std::size_t>(v)];
    links.push_back(l);
    v = topo.link(l).src;
  }
  if (links.empty()) return std::nullopt;  // dst == src
  std::reverse(links.begin(), links.end());
  return Path::FromLinks(topo, std::move(links));
}

DijkstraTree RunDijkstra(const net::Topology& topo, NodeId src,
                         const LinkCostFn& cost) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  DijkstraTree tree{std::vector<double>(n, kInfiniteCost),
                    std::vector<LinkId>(n, kInvalidLink)};
  tree.dist[static_cast<std::size_t>(src)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;  // stale
    for (LinkId l : topo.out_links(u)) {
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost " << c << " on link " << l);
      const NodeId v = topo.link(l).dst;
      const double nd = d + c;
      if (nd < tree.dist[static_cast<std::size_t>(v)]) {
        tree.dist[static_cast<std::size_t>(v)] = nd;
        tree.parent_link[static_cast<std::size_t>(v)] = l;
        heap.emplace(nd, v);
      }
    }
  }
  return tree;
}

std::optional<Path> CheapestPath(const net::Topology& topo, NodeId src,
                                 NodeId dst, const LinkCostFn& cost) {
  DRTP_CHECK(src != dst);
  return RunDijkstra(topo, src, cost).PathTo(topo, dst);
}

std::optional<Path> MinHopPath(const net::Topology& topo, NodeId src,
                               NodeId dst,
                               const std::function<bool(LinkId)>& usable) {
  return CheapestPath(topo, src, dst, [&](LinkId l) {
    if (usable && !usable(l)) return kInfiniteCost;
    return 1.0;
  });
}

}  // namespace drtp::routing
