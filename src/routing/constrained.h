// Hop-constrained cheapest paths.
//
// The paper's QoS is bandwidth plus an end-to-end delay bound; with
// identical links, delay is proportional to hop count (§4 uses hop count
// as its distance metric throughout). A backup that only exists as a very
// long detour may violate the connection's delay QoS — §2's example D3
// "cannot recover from the failure of L13" if its QoS is too tight for the
// longer path. This module finds the cheapest path subject to a hop bound,
// which the link-state schemes use to keep backups QoS-feasible.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "routing/dijkstra.h"
#include "routing/path.h"

namespace drtp::routing {

/// Reusable DP tables for CheapestPathMaxHops: (max_hops+1) x num_nodes
/// dist/parent layers flattened into two vectors, grown on demand and
/// refilled (never reallocated) per call. One per thread.
struct MaxHopsWorkspace {
  std::vector<double> dist;
  std::vector<LinkId> parent;
};

/// Cheapest src->dst path using at most `max_hops` links (must be >= 1).
/// Dynamic program over (hops, node): O(max_hops * links). With strictly
/// positive costs the result is loop-free. nullopt when no path fits.
std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops);

/// Workspace-backed overload for hot paths (identical result).
std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops,
                                        MaxHopsWorkspace& ws);

namespace detail {
/// Pre-CSR reference relaxation over topo.link(l).src/.dst — identical
/// link order, identical result; the differential-test oracle for the
/// CSR-backed CheapestPathMaxHops.
std::optional<Path> CheapestPathMaxHopsAdjList(const net::Topology& topo,
                                               NodeId src, NodeId dst,
                                               LinkCostFn cost, int max_hops,
                                               MaxHopsWorkspace& ws);
}  // namespace detail

}  // namespace drtp::routing
