// Bellman-Ford distance-vector computation.
//
// §4.1 allows distance tables to be computed "using the Dijkstra's
// algorithm or the Bellman-Ford distance-vector algorithm"; this is the
// latter. It also serves as an independent oracle for Dijkstra in tests.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "routing/dijkstra.h"  // LinkCostFn / kInfiniteCost

namespace drtp::routing {

/// Single-source Bellman-Ford over arbitrary non-negative costs.
/// Returns per-node distances (kInfiniteCost when unreachable).
std::vector<double> BellmanFordDistances(const net::Topology& topo,
                                         NodeId src, const LinkCostFn& cost);

/// All-pairs minimum hop counts via synchronous distance-vector rounds
/// (each node repeatedly merges neighbors' vectors until a fixed point) —
/// the classic distributed algorithm, executed to convergence.
/// result[i][j] = min hops i->j, kUnreachableHops when disconnected.
std::vector<std::vector<int>> DistanceVectorAllPairs(
    const net::Topology& topo);

}  // namespace drtp::routing
