#include "routing/bellman_ford.h"

#include "common/check.h"
#include "routing/distance_table.h"

namespace drtp::routing {

std::vector<double> BellmanFordDistances(const net::Topology& topo,
                                         NodeId src, const LinkCostFn& cost) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  const net::Csr& csr = topo.csr();
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  std::vector<double> dist(n, kInfiniteCost);
  dist[static_cast<std::size_t>(src)] = 0.0;
  // At most V-1 relaxation rounds; stop early on a quiet round. Endpoints
  // come from the CSR link mirrors — the edge scan is the whole algorithm
  // here, and the flat arrays stream where the Link records stride.
  for (int round = 0; round + 1 < topo.num_nodes(); ++round) {
    bool changed = false;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK(c >= 0.0);
      const double du = dist[static_cast<std::size_t>(
          csr.link_src[static_cast<std::size_t>(l)])];
      if (du == kInfiniteCost) continue;
      const auto v = static_cast<std::size_t>(
          csr.link_dst[static_cast<std::size_t>(l)]);
      if (du + c < dist[v]) {
        dist[v] = du + c;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<std::vector<int>> DistanceVectorAllPairs(
    const net::Topology& topo) {
  const int n = topo.num_nodes();
  std::vector<std::vector<int>> dist(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), kUnreachableHops));
  for (NodeId i = 0; i < n; ++i)
    dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;

  // Synchronous rounds: every node advertises its vector; neighbors merge.
  // Converges within the network diameter (< n) rounds.
  bool changed = true;
  int rounds = 0;
  while (changed) {
    DRTP_CHECK_MSG(rounds++ <= n, "distance-vector failed to converge");
    changed = false;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const net::Link& link = topo.link(l);
      auto& from = dist[static_cast<std::size_t>(link.src)];
      const auto& via = dist[static_cast<std::size_t>(link.dst)];
      for (NodeId j = 0; j < n; ++j) {
        const int candidate =
            via[static_cast<std::size_t>(j)] >= kUnreachableHops
                ? kUnreachableHops
                : via[static_cast<std::size_t>(j)] + 1;
        if (candidate < from[static_cast<std::size_t>(j)]) {
          from[static_cast<std::size_t>(j)] = candidate;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace drtp::routing
