#include "routing/constrained.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "obs/span.h"

namespace drtp::routing {
namespace {

/// The (hops, node) DP shared by the CSR and adjacency-list entries; the
/// endpoint providers are the only difference, so both run the identical
/// link order and produce the identical path.
template <typename SrcOf, typename DstOf>
std::optional<Path> MaxHopsDp(const net::Topology& topo, NodeId src,
                              NodeId dst, LinkCostFn cost, int max_hops,
                              MaxHopsWorkspace& ws, SrcOf src_of,
                              DstOf dst_of) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  DRTP_CHECK(dst >= 0 && dst < topo.num_nodes());
  DRTP_CHECK(src != dst);
  DRTP_CHECK(max_hops >= 1);
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  const auto layers = static_cast<std::size_t>(max_hops) + 1;

  // dist[h*n + v] = cheapest cost of reaching v in exactly h hops;
  // parent[h*n + v] = the link used for the h-th hop on that path.
  if (ws.dist.size() < layers * n) {
    ws.dist.resize(layers * n);
    ws.parent.resize(layers * n);
  }
  std::fill(ws.dist.begin(), ws.dist.begin() + static_cast<std::ptrdiff_t>(
                                                   layers * n),
            kInfiniteCost);
  ws.dist[static_cast<std::size_t>(src)] = 0.0;

  for (std::size_t h = 1; h < layers; ++h) {
    const double* prev = ws.dist.data() + (h - 1) * n;
    double* cur = ws.dist.data() + h * n;
    LinkId* par = ws.parent.data() + h * n;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const double du = prev[static_cast<std::size_t>(src_of(l))];
      if (du == kInfiniteCost) continue;
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost on link " << l);
      const auto v = static_cast<std::size_t>(dst_of(l));
      if (du + c < cur[v]) {
        cur[v] = du + c;
        par[v] = l;
      }
    }
  }

  // Best hop count within the bound.
  std::size_t best_h = 0;
  double best = kInfiniteCost;
  for (std::size_t h = 1; h < layers; ++h) {
    const double d = ws.dist[h * n + static_cast<std::size_t>(dst)];
    if (d < best) {
      best = d;
      best_h = h;
    }
  }
  if (best_h == 0) return std::nullopt;

  std::vector<LinkId> links(best_h);
  NodeId v = dst;
  for (std::size_t h = best_h; h >= 1; --h) {
    const LinkId l = ws.parent[h * n + static_cast<std::size_t>(v)];
    DRTP_CHECK(l != kInvalidLink);
    links[h - 1] = l;
    v = src_of(l);
  }
  DRTP_CHECK(v == src);
  return Path::FromLinks(topo, std::move(links));
}

}  // namespace

std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops) {
  MaxHopsWorkspace ws;
  return CheapestPathMaxHops(topo, src, dst, cost, max_hops, ws);
}

std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops,
                                        MaxHopsWorkspace& ws) {
  // Sampled for the same reason as the Dijkstra kernel: innermost, called
  // repeatedly per admission under BF/maxhops schemes.
  DRTP_OBS_SPAN_SAMPLED("drtp.kernel.maxhops", 6);
  // The DP streams every link once per layer; the CSR endpoint mirrors
  // turn that into two sequential array reads instead of a strided walk
  // over 40-byte Link records.
  const net::Csr& csr = topo.csr();
  return MaxHopsDp(
      topo, src, dst, cost, max_hops, ws,
      [&](LinkId l) { return csr.link_src[static_cast<std::size_t>(l)]; },
      [&](LinkId l) { return csr.link_dst[static_cast<std::size_t>(l)]; });
}

namespace detail {

std::optional<Path> CheapestPathMaxHopsAdjList(const net::Topology& topo,
                                               NodeId src, NodeId dst,
                                               LinkCostFn cost, int max_hops,
                                               MaxHopsWorkspace& ws) {
  return MaxHopsDp(
      topo, src, dst, cost, max_hops, ws,
      [&](LinkId l) { return topo.link(l).src; },
      [&](LinkId l) { return topo.link(l).dst; });
}

}  // namespace detail

}  // namespace drtp::routing
