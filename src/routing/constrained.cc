#include "routing/constrained.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "obs/span.h"

namespace drtp::routing {

std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops) {
  MaxHopsWorkspace ws;
  return CheapestPathMaxHops(topo, src, dst, cost, max_hops, ws);
}

std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        LinkCostFn cost, int max_hops,
                                        MaxHopsWorkspace& ws) {
  // Sampled for the same reason as the Dijkstra kernel: innermost, called
  // repeatedly per admission under BF/maxhops schemes.
  DRTP_OBS_SPAN_SAMPLED("drtp.kernel.maxhops", 6);
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  DRTP_CHECK(dst >= 0 && dst < topo.num_nodes());
  DRTP_CHECK(src != dst);
  DRTP_CHECK(max_hops >= 1);
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  const auto layers = static_cast<std::size_t>(max_hops) + 1;

  // dist[h*n + v] = cheapest cost of reaching v in exactly h hops;
  // parent[h*n + v] = the link used for the h-th hop on that path.
  if (ws.dist.size() < layers * n) {
    ws.dist.resize(layers * n);
    ws.parent.resize(layers * n);
  }
  std::fill(ws.dist.begin(), ws.dist.begin() + static_cast<std::ptrdiff_t>(
                                                   layers * n),
            kInfiniteCost);
  ws.dist[static_cast<std::size_t>(src)] = 0.0;

  for (std::size_t h = 1; h < layers; ++h) {
    const double* prev = ws.dist.data() + (h - 1) * n;
    double* cur = ws.dist.data() + h * n;
    LinkId* par = ws.parent.data() + h * n;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const net::Link& link = topo.link(l);
      const double du = prev[static_cast<std::size_t>(link.src)];
      if (du == kInfiniteCost) continue;
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost on link " << l);
      const auto v = static_cast<std::size_t>(link.dst);
      if (du + c < cur[v]) {
        cur[v] = du + c;
        par[v] = l;
      }
    }
  }

  // Best hop count within the bound.
  std::size_t best_h = 0;
  double best = kInfiniteCost;
  for (std::size_t h = 1; h < layers; ++h) {
    const double d = ws.dist[h * n + static_cast<std::size_t>(dst)];
    if (d < best) {
      best = d;
      best_h = h;
    }
  }
  if (best_h == 0) return std::nullopt;

  std::vector<LinkId> links(best_h);
  NodeId v = dst;
  for (std::size_t h = best_h; h >= 1; --h) {
    const LinkId l = ws.parent[h * n + static_cast<std::size_t>(v)];
    DRTP_CHECK(l != kInvalidLink);
    links[h - 1] = l;
    v = topo.link(l).src;
  }
  DRTP_CHECK(v == src);
  return Path::FromLinks(topo, std::move(links));
}

}  // namespace drtp::routing
