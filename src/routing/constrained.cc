#include "routing/constrained.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace drtp::routing {

std::optional<Path> CheapestPathMaxHops(const net::Topology& topo,
                                        NodeId src, NodeId dst,
                                        const LinkCostFn& cost,
                                        int max_hops) {
  DRTP_CHECK(src >= 0 && src < topo.num_nodes());
  DRTP_CHECK(dst >= 0 && dst < topo.num_nodes());
  DRTP_CHECK(src != dst);
  DRTP_CHECK(max_hops >= 1);
  const auto n = static_cast<std::size_t>(topo.num_nodes());

  // dist[h][v] = cheapest cost of reaching v in exactly h hops;
  // parent[h][v] = the link used for the h-th hop on that path.
  std::vector<std::vector<double>> dist(
      static_cast<std::size_t>(max_hops) + 1,
      std::vector<double>(n, kInfiniteCost));
  std::vector<std::vector<LinkId>> parent(
      static_cast<std::size_t>(max_hops) + 1,
      std::vector<LinkId>(n, kInvalidLink));
  dist[0][static_cast<std::size_t>(src)] = 0.0;

  for (int h = 1; h <= max_hops; ++h) {
    const auto& prev = dist[static_cast<std::size_t>(h - 1)];
    auto& cur = dist[static_cast<std::size_t>(h)];
    auto& par = parent[static_cast<std::size_t>(h)];
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const net::Link& link = topo.link(l);
      const double du = prev[static_cast<std::size_t>(link.src)];
      if (du == kInfiniteCost) continue;
      const double c = cost(l);
      if (c == kInfiniteCost) continue;
      DRTP_CHECK_MSG(c >= 0.0, "negative cost on link " << l);
      const auto v = static_cast<std::size_t>(link.dst);
      if (du + c < cur[v]) {
        cur[v] = du + c;
        par[v] = l;
      }
    }
  }

  // Best hop count within the bound.
  int best_h = -1;
  double best = kInfiniteCost;
  for (int h = 1; h <= max_hops; ++h) {
    const double d =
        dist[static_cast<std::size_t>(h)][static_cast<std::size_t>(dst)];
    if (d < best) {
      best = d;
      best_h = h;
    }
  }
  if (best_h < 0) return std::nullopt;

  std::vector<LinkId> links(static_cast<std::size_t>(best_h));
  NodeId v = dst;
  for (int h = best_h; h >= 1; --h) {
    const LinkId l =
        parent[static_cast<std::size_t>(h)][static_cast<std::size_t>(v)];
    DRTP_CHECK(l != kInvalidLink);
    links[static_cast<std::size_t>(h - 1)] = l;
    v = topo.link(l).src;
  }
  DRTP_CHECK(v == src);
  return Path::FromLinks(topo, std::move(links));
}

}  // namespace drtp::routing
