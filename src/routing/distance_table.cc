#include "routing/distance_table.h"

#include <queue>

#include "common/check.h"

namespace drtp::routing {

DistanceTable DistanceTable::Build(const net::Topology& topo) {
  const int n = topo.num_nodes();
  std::vector<int> dist(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                        kUnreachableHops);
  for (NodeId s = 0; s < n; ++s) {
    auto row = [&](NodeId t) -> int& {
      return dist[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(t)];
    };
    row(s) = 0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (LinkId l : topo.out_links(u)) {
        const NodeId v = topo.link(l).dst;
        if (row(v) == kUnreachableHops) {
          row(v) = row(u) + 1;
          q.push(v);
        }
      }
    }
  }
  return DistanceTable(n, std::move(dist));
}

int DistanceTable::MinHopsVia(NodeId from, NodeId to, NodeId via) const {
  DRTP_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_ && via >= 0 &&
             via < n_);
  const int tail = MinHops(via, to);
  if (tail >= kUnreachableHops) return kUnreachableHops;
  return 1 + tail;
}

}  // namespace drtp::routing
