// Path and link-set algebra.
//
// A Path is a validated, loop-free-or-not sequence of directed links; LSET
// (§2.1) is the set of links in a route, used throughout APLV/Conflict
// Vector bookkeeping and overlap tests.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace drtp::routing {

/// Sorted, duplicate-free set of link ids — the paper's LSET_r.
using LinkSet = std::vector<LinkId>;

/// Builds a LinkSet from arbitrary link ids (sorts, dedups).
LinkSet MakeLinkSet(std::vector<LinkId> links);

/// Membership test on a LinkSet (binary search).
bool SetContains(const LinkSet& set, LinkId l);

/// |a ∩ b| for two LinkSets.
int SetIntersectCount(const LinkSet& a, const LinkSet& b);

/// a ∩ b == ∅ ?
bool SetDisjoint(const LinkSet& a, const LinkSet& b);

/// A directed path through a topology. Immutable once built; construction
/// validates that consecutive links chain head-to-tail.
class Path {
 public:
  /// Validates continuity and non-emptiness; nullopt on violation.
  static std::optional<Path> FromLinks(const net::Topology& topo,
                                       std::vector<LinkId> links);

  /// Builds from a node sequence (n0, n1, ..., nk); every consecutive pair
  /// must be joined by a link. nullopt otherwise.
  static std::optional<Path> FromNodes(const net::Topology& topo,
                                       std::span<const NodeId> nodes);

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  std::span<const LinkId> links() const { return links_; }
  int hops() const { return static_cast<int>(links_.size()); }

  /// The node sequence, length hops()+1.
  const std::vector<NodeId>& nodes() const { return nodes_; }

  bool Contains(LinkId l) const;
  bool VisitsNode(NodeId n) const;

  /// True iff no node repeats.
  bool IsSimple() const;

  /// LSET of this route (sorted copy).
  LinkSet ToLinkSet() const;

  /// Number of links shared with `other`.
  int OverlapCount(const Path& other) const;

  /// True iff no shared links (primary/backup disjointness test).
  bool LinkDisjoint(const Path& other) const {
    return OverlapCount(other) == 0;
  }

  friend bool operator==(const Path&, const Path&) = default;

 private:
  Path(NodeId src, NodeId dst, std::vector<LinkId> links,
       std::vector<NodeId> nodes)
      : src_(src), dst_(dst), links_(std::move(links)),
        nodes_(std::move(nodes)) {}

  NodeId src_;
  NodeId dst_;
  std::vector<LinkId> links_;
  std::vector<NodeId> nodes_;
};

}  // namespace drtp::routing
