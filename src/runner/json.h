// Forwarding header: the JSON writer moved to common/json.h so layers
// below the runner (obs, sim) can emit JSON without depending on
// drtp_runner. Existing includes and the drtp::runner::JsonWriter
// spelling keep working through these aliases.
#pragma once

#include "common/json.h"

namespace drtp::runner {

using ::drtp::JsonEscape;
using ::drtp::JsonWriter;

}  // namespace drtp::runner
