// Work-stealing thread pool for the sweep engine.
//
// Each worker owns a bounded deque; it consumes its own queue from the
// front and, when empty, steals from the back of a sibling's queue. The
// pool is built for coarse tasks (one simulation cell each, milliseconds
// to seconds), so queues are mutex-guarded rather than lock-free — the
// stealing structure is what matters: submissions spread round-robin and
// an idle worker never waits while any queue holds work.
//
// Exceptions thrown by tasks are captured; the first one is rethrown from
// Wait() (and the rest dropped), after all in-flight tasks have drained,
// so a failing cell can never deadlock or tear down the process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drtp::runner {

class ThreadPool {
 public:
  struct Options {
    /// Worker count; <= 0 selects std::thread::hardware_concurrency().
    int threads = 1;
    /// Per-worker queue bound; Submit blocks when every queue is full.
    std::size_t queue_capacity = 256;
  };

  explicit ThreadPool(Options options);
  /// Convenience: `threads` workers with the default queue bound.
  explicit ThreadPool(int threads) : ThreadPool(Options{.threads = threads}) {}

  /// Drains outstanding work, then joins. Task exceptions still pending
  /// at destruction are swallowed — call Wait() first to observe them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Blocks for backpressure while every worker queue is
  /// at capacity. Must not be called after Shutdown() or from a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (clearing it); the pool remains
  /// usable for further Submit() calls either way.
  void Wait();

  /// Graceful shutdown: lets queued tasks finish, then joins all workers.
  /// Idempotent. Like Wait(), rethrows the first captured task exception.
  void Shutdown();

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet finished (approximate once workers run).
  std::int64_t unfinished() const;

 private:
  struct Worker {
    mutable std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(std::size_t self);
  bool PopAny(std::size_t self, std::function<void()>& task);
  bool AnyQueued() const;
  void JoinThreads();
  void RethrowPending();

  std::size_t queue_capacity_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Coordination for sleeping workers / waiters. `state_mu_` orders queue
  // pushes against the wait predicates (empty critical section on the
  // submit side); the queues themselves are guarded by their own mutexes.
  mutable std::mutex state_mu_;
  std::condition_variable work_cv_;   // new work or stop
  std::condition_variable done_cv_;   // unfinished_ hit zero
  std::condition_variable space_cv_;  // a queue slot freed up
  std::int64_t unfinished_ = 0;       // queued + running, under state_mu_
  bool stop_ = false;
  std::size_t next_worker_ = 0;  // round-robin submit cursor

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace drtp::runner
