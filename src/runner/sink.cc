#include "runner/sink.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/digest.h"
#include "runner/checkpoint.h"
#include "runner/json.h"

namespace drtp::runner {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WriteStat(JsonWriter& w, const RunningStat& s) {
  w.BeginObject();
  w.Key("count").Int(s.count());
  w.Key("mean").Double(s.mean());
  w.Key("stddev").Double(s.stddev());
  w.Key("min").Double(s.min());
  w.Key("max").Double(s.max());
  w.EndObject();
}

}  // namespace

void WriteRunMetrics(JsonWriter& w, const sim::RunMetrics& m) {
  w.Key("scheme").String(m.scheme);
  w.Key("requests").Int(m.requests);
  w.Key("admitted").Int(m.admitted);
  w.Key("blocked").Int(m.blocked);
  w.Key("with_backup").Int(m.with_backup);
  w.Key("acceptance_ratio").Double(m.AcceptanceRatio());
  w.Key("pbk").BeginObject();
  w.Key("hits").Int(m.pbk.hits);
  w.Key("trials").Int(m.pbk.trials);
  w.Key("value").Double(m.pbk.value());
  w.EndObject();
  if (m.pbk_srlg.trials > 0) {
    // Only sampled on SRLG-tagged topologies; omitting the key keeps
    // SRLG-free runs byte-identical to pre-SRLG output.
    w.Key("pbk_srlg").BeginObject();
    w.Key("hits").Int(m.pbk_srlg.hits);
    w.Key("trials").Int(m.pbk_srlg.trials);
    w.Key("value").Double(m.pbk_srlg.value());
    w.EndObject();
  }
  w.Key("avg_active").Double(m.avg_active);
  w.Key("prime_bw_kbps");
  WriteStat(w, m.prime_bw);
  w.Key("spare_bw_kbps");
  WriteStat(w, m.spare_bw);
  w.Key("primary_hops");
  WriteStat(w, m.primary_hops);
  w.Key("backup_hops");
  WriteStat(w, m.backup_hops);
  w.Key("backup_overlap_links").Int(m.backup_overlap_links);
  w.Key("control_messages").Int(m.control_messages);
  w.Key("control_bytes").Int(m.control_bytes);
  w.Key("overbooked_hops").Int(m.overbooked_hops);
  w.Key("failures_enacted").Int(m.failures_enacted);
  w.Key("failover_recovered").Int(m.failover_recovered);
  w.Key("failover_dropped").Int(m.failover_dropped);
  w.Key("backups_broken").Int(m.backups_broken);
  w.Key("backups_reestablished").Int(m.backups_reestablished);
  w.Key("degraded").Int(m.degraded);
  w.Key("reprotect_retries").Int(m.reprotect_retries);
  w.Key("reprotect_recovered").Int(m.reprotect_recovered);
  w.Key("reprotect_exhausted").Int(m.reprotect_exhausted);
  w.Key("enacted_recovery_ratio").Double(m.EnactedRecoveryRatio());
  w.Key("measure_start").Double(m.measure_start);
  w.Key("measure_end").Double(m.measure_end);
}

std::string CellResultToJson(const CellResult& r) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kJsonlSchema);
  w.Key("cell").Int(static_cast<std::int64_t>(r.cell.index));
  w.Key("seed").Uint(r.cell.base_seed);
  w.Key("cell_seed").Uint(r.cell.cell_seed);
  w.Key("degree").Double(r.cell.degree);
  if (r.cell.topo_model != "waxman") {
    w.Key("model").String(r.cell.topo_model);
  }
  w.Key("pattern").String(sim::PatternName(r.cell.pattern));
  w.Key("lambda").Double(r.cell.lambda);
  w.Key("scheme").String(r.cell.scheme);
  w.Key("wall_s").Double(r.wall_seconds);
  if (r.audit_checks > 0) {
    w.Key("audit").BeginObject();
    w.Key("checks").Int(r.audit_checks);
    w.Key("violations").Int(r.audit_violations);
    w.EndObject();
  }
  if (!r.obs_counters.empty()) {
    w.Key("obs").BeginObject();
    for (const auto& [name, count] : r.obs_counters) w.Key(name).Int(count);
    w.EndObject();
  }
  w.Key("metrics").BeginObject();
  WriteRunMetrics(w, r.metrics);
  w.EndObject();
  w.EndObject();
  return w.str();
}

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

JsonlSink::JsonlSink(const std::string& path) : JsonlSink(path, true) {}

JsonlSink::JsonlSink(const std::string& path, bool append)
    : owned_(std::make_unique<std::ofstream>(
          path, append ? (std::ios::out | std::ios::app)
                       : (std::ios::out | std::ios::trunc))) {
  DRTP_CHECK_MSG(owned_->good(), "cannot open '" << path << "' for "
                                                 << (append ? "append"
                                                            : "write"));
  os_ = owned_.get();
}

void JsonlSink::AttachJournal(CheckpointJournal* journal) {
  journal_ = journal;
}

void JsonlSink::Consume(const CellResult& result) {
  // Render outside the lock, newline included, then push the whole line
  // as ONE write + flush under it: lines from concurrent cells never
  // interleave, and a crash-truncated file loses at most the (partial)
  // line in flight — every preceding line is complete and parseable.
  std::string line = CellResultToJson(result);
  line += '\n';
  std::lock_guard<std::mutex> lk(mu_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  os_->flush();
  ++lines_;
  if (journal_ != nullptr) {
    // Same mutex, strictly after the line's flush: on a kill the journal
    // can only be missing the final line's entry, never ahead of the
    // sink, which is the invariant RecoverCheckpoint rebuilds from.
    CheckpointEntry entry;
    entry.cell = result.cell.index;
    entry.cell_seed = result.cell.cell_seed;
    entry.digest = Fnv1a(line);
    entry.audit_checks = result.audit_checks;
    entry.audit_violations = result.audit_violations;
    entry.audit_jsonl = result.audit_jsonl;
    journal_->Append(entry);
  }
}

void JsonlSink::Finish() {
  std::lock_guard<std::mutex> lk(mu_);
  os_->flush();
}

TableSink::TableSink(std::ostream& os) : os_(os) {}

void TableSink::Consume(const CellResult& result) {
  std::lock_guard<std::mutex> lk(mu_);
  results_.push_back(result);
}

void TableSink::Finish() {
  std::lock_guard<std::mutex> lk(mu_);
  std::sort(results_.begin(), results_.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.cell.index < b.cell.index;
            });
  TextTable t({"seed", "E", "pattern", "lambda", "scheme", "req", "admit",
               "accept", "P_bk", "P_bk_slg", "recov", "avg_act",
               "prime_Mbps", "spare_Mbps", "wall_s"});
  for (const CellResult& r : results_) {
    t.BeginRow();
    t.Cell(static_cast<std::int64_t>(r.cell.base_seed));
    t.Cell(r.cell.degree, 0);
    t.Cell(sim::PatternName(r.cell.pattern));
    t.Cell(r.cell.lambda, 2);
    t.Cell(r.cell.scheme);
    t.Cell(r.metrics.requests);
    t.Cell(r.metrics.admitted);
    t.Cell(r.metrics.AcceptanceRatio(), 3);
    t.Cell(r.metrics.pbk.value(), 4);
    // "--" on SRLG-free topologies / when no failure hit a primary.
    t.Cell(r.metrics.pbk_srlg.trials == 0
               ? std::numeric_limits<double>::quiet_NaN()
               : r.metrics.pbk_srlg.value(),
           4);
    t.Cell(r.metrics.EnactedRecoveryRatio(), 4);
    t.Cell(r.metrics.avg_active, 1);
    t.Cell(r.metrics.prime_bw.mean() / 1000.0, 1);
    t.Cell(r.metrics.spare_bw.mean() / 1000.0, 1);
    t.Cell(r.wall_seconds, 2);
  }
  os_ << t.Render();
  os_.flush();
}

ProgressReporter::ProgressReporter(std::size_t total_cells)
    : total_(total_cells), start_seconds_(MonotonicSeconds()) {
  const obs::Registry& reg = obs::Registry::Global();
  admits0_ = reg.CounterValue(admits_);
  blocks0_ = reg.CounterValue(blocks_);
  failovers0_ = reg.CounterValue(failovers_);
}

void ProgressReporter::Consume(const CellResult& result) {
  (void)result;
  std::lock_guard<std::mutex> lk(mu_);
  ++done_;
  const double elapsed = MonotonicSeconds() - start_seconds_;
  const double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed
                                    : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total_ - done_) / rate : 0.0;
  const obs::Registry& reg = obs::Registry::Global();
  const std::int64_t admits = reg.CounterValue(admits_) - admits0_;
  const std::int64_t blocks = reg.CounterValue(blocks_) - blocks0_;
  const std::int64_t failovers = reg.CounterValue(failovers_) - failovers0_;
  const double admit_rate =
      elapsed > 0.0 ? static_cast<double>(admits) / elapsed : 0.0;
  std::fprintf(stderr,
               "\r[sweep] %zu/%zu cells  %.2f cells/s  ETA %.0fs  "
               "%.0f admits/s  %lld blocks  %lld failovers   ",
               done_, total_, rate, eta, admit_rate,
               static_cast<long long>(blocks),
               static_cast<long long>(failovers));
  if (done_ == total_) std::fputc('\n', stderr);
  std::fflush(stderr);
}

void ProgressReporter::Finish() {
  std::lock_guard<std::mutex> lk(mu_);
  if (done_ != total_) std::fputc('\n', stderr);
}

}  // namespace drtp::runner
