// Parallel sweep engine: expands a declarative SweepSpec into independent
// evaluation cells and replays them on a work-stealing thread pool.
//
// Determinism contract: every cell's result depends only on the spec and
// the cell's own grid coordinates — never on thread count or execution
// order. Shared inputs (per-degree topologies, per-(degree,pattern,λ)
// scenarios) are derived from the cell's base seed and coordinates and
// cached behind a shared_mutex; whichever thread populates a cache entry
// first produces the same value any other thread would have. Per-cell
// randomness (e.g. the RandomBackup scheme) is seeded with
// splitmix64(base_seed, cell_index), so a sweep at --jobs=8 is
// bit-identical to the same sweep at --jobs=1.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "net/generators.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "runner/sink.h"
#include "runner/thread_pool.h"
#include "sim/experiment.h"
#include "sim/paper.h"
#include "sim/scenario.h"
#include "sim/traffic.h"

namespace drtp::runner {

/// Stateless splitmix64: the `index`-th value of the stream seeded with
/// `base_seed`. Used to derive independent per-cell seeds.
std::uint64_t CellSeed(std::uint64_t base_seed, std::uint64_t cell_index);

/// The paper's λ grid for Fig. 4/5 (0.2 … 1.0), thinned under fast mode.
std::vector<double> PaperLambdas(bool fast);

/// Declarative description of one sweep: the cross product of every
/// vector below, replayed with the §6 measurement protocol.
struct SweepSpec {
  /// Replication base seeds; topology/traffic reseed together per entry.
  std::vector<std::uint64_t> seeds = {1};
  std::vector<double> degrees = {3.0, 4.0};
  std::vector<sim::TrafficPattern> patterns = {sim::TrafficPattern::kUniform,
                                               sim::TrafficPattern::kHotspot};
  std::vector<double> lambdas = PaperLambdas(false);
  std::vector<std::string> schemes = {"D-LSR", "P-LSR", "BF"};

  /// Scenario horizon in seconds; quartered under `fast`, with λ scaled so
  /// offered load matches the full-length run (the CellRunner convention).
  double duration = sim::kPaperDuration;
  bool fast = false;

  /// Experiment-protocol passthroughs (sim::ExperimentConfig).
  int num_backups = 1;
  core::SpareMode spare_mode = core::SpareMode::kMultiplexed;
  double lsdb_refresh_interval = 0.0;

  /// When > 0, inject this many enacted link failures per scenario inside
  /// [warmup, 0.95 · horizon], each repaired after `mttr` seconds.
  int failures = 0;
  double mttr = 300.0;

  /// Structured fault campaign (fault::MakeCampaign) layered on top of the
  /// plain link failures above, drawn in the same window: whole-node
  /// failures, shared-risk-group failures, and simultaneous multi-link
  /// bursts of `burst_size` links. SRLG failures require srlg_groups > 0.
  int node_failures = 0;
  int srlg_failures = 0;
  int bursts = 0;
  int burst_size = 3;
  /// Geographic SRLG clusters tagged onto every generated topology
  /// (0 = untagged, bit-identical to historical sweeps).
  int srlg_groups = 0;

  /// Topology model: "waxman" (the paper's §6.1 graphs; the `degrees`
  /// axis selects density) or "hier" (three-tier ISP hierarchy sized by
  /// `hier`; the degrees axis is carried through the grid but the graph
  /// shape comes from `hier` alone). Waxman sweeps are byte-identical to
  /// historical ones: the model only enters JSONL lines and the spec
  /// digest when != "waxman".
  std::string topo_model = "waxman";
  /// Shape of the "hier" model; seed and srlg_groups are taken from the
  /// cell's base seed and `srlg_groups` above, not from this struct.
  net::HierConfig hier;

  /// Run the fault::Auditor after every replay event of every cell and
  /// carry its check/violation counts (plus drtp.audit/1 lines) in the
  /// CellResult. Violations never abort a sweep — tools decide the exit.
  bool audit = false;

  std::size_t NumCells() const {
    return seeds.size() * degrees.size() * patterns.size() * lambdas.size() *
           schemes.size();
  }
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepSpec spec);

  const SweepSpec& spec() const { return spec_; }
  /// Horizon actually replayed (spec duration, quartered under fast).
  double effective_duration() const { return duration_; }

  /// Grid expansion in a fixed order (seeds ≻ degrees ≻ patterns ≻
  /// lambdas ≻ schemes); Cell::index is the position in this order.
  std::vector<Cell> Cells() const;

  /// The §6 measurement protocol scaled to the effective horizon.
  sim::ExperimentConfig Experiment() const;

  struct RunOptions {
    /// Worker threads; <= 0 selects hardware concurrency.
    int jobs = 1;
    /// Report progress (done/total, cells/s, ETA) to stderr.
    bool progress = false;
    /// Receivers for each completed cell; not owned. Sinks must be
    /// thread-safe; Finish() is called once on each after the sweep.
    std::vector<ResultSink*> sinks;
    /// Receives every cell's lifecycle trace records (stamped with the
    /// cell index and scheme); not owned, must be thread-safe. Finish()
    /// is called once after the sweep. Null = tracing off.
    obs::TraceSink* trace = nullptr;
    /// When set, run only these cells (by Cell::index) — the
    /// resume/shard path: a resumed sweep passes the cells its journal
    /// lacks, a shard passes the indices it owns. Duplicates and
    /// out-of-range indices trip a DRTP_CHECK. An empty list is honored
    /// (runs nothing); leave unset to run the whole grid.
    std::optional<std::vector<std::size_t>> only;
  };

  /// Runs every selected cell and returns their results ordered by
  /// Cell::index (the whole grid unless options.only narrows it).
  /// A cell that throws aborts the sweep with that exception — but only
  /// after the remaining queued cells drain and every sink's Finish()
  /// runs, so results completed before the failure are never lost.
  std::vector<CellResult> Run(const RunOptions& options);

  /// Shared-input caches (also used by harnesses that need the raw
  /// topology or scenario of a cell, e.g. for audits). Thread-safe; the
  /// returned references live as long as the engine.
  const net::Topology& TopologyFor(std::uint64_t base_seed, double degree);
  const sim::Scenario& ScenarioFor(std::uint64_t base_seed, double degree,
                                   sim::TrafficPattern pattern, double lambda);

  /// Runs one cell synchronously (the unit of work Run() parallelises).
  /// When `trace` is set, the cell's lifecycle events are written to it
  /// through a sim::ObsBridge stamped with the cell index and scheme.
  CellResult RunCell(const Cell& cell, obs::TraceSink* trace = nullptr);

 private:
  SweepSpec spec_;
  double duration_;  // effective horizon

  std::shared_mutex topo_mu_;
  std::map<std::pair<std::uint64_t, double>, std::unique_ptr<net::Topology>>
      topos_;

  std::shared_mutex scenario_mu_;
  std::map<std::tuple<std::uint64_t, double, sim::TrafficPattern, double>,
           std::unique_ptr<sim::Scenario>>
      scenarios_;
};

}  // namespace drtp::runner
