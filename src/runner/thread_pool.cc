#include "runner/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace drtp::runner {

ThreadPool::ThreadPool(Options options) {
  int n = options.threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  queue_capacity_ = options.queue_capacity > 0 ? options.queue_capacity : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    done_cv_.wait(lk, [this] { return unfinished_ == 0; });
  }
  JoinThreads();
}

bool ThreadPool::AnyQueued() const {
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> qlk(w->mu);
    if (!w->queue.empty()) return true;
  }
  return false;
}

void ThreadPool::Submit(std::function<void()> task) {
  DRTP_CHECK(task != nullptr);
  std::unique_lock<std::mutex> lk(state_mu_);
  DRTP_CHECK_MSG(!stop_, "Submit() after Shutdown()");
  const std::size_t start = next_worker_++ % workers_.size();
  for (;;) {
    for (std::size_t j = 0; j < workers_.size(); ++j) {
      Worker& w = *workers_[(start + j) % workers_.size()];
      std::lock_guard<std::mutex> qlk(w.mu);
      if (w.queue.size() < queue_capacity_) {
        w.queue.push_back(std::move(task));
        ++unfinished_;
        lk.unlock();
        work_cv_.notify_one();
        return;
      }
    }
    // Backpressure: every queue is at capacity. Workers notify space_cv_
    // after each pop (with an empty state_mu_ critical section, so the
    // pop is ordered against this predicate evaluation).
    space_cv_.wait(lk, [this] {
      for (const auto& w : workers_) {
        std::lock_guard<std::mutex> qlk(w->mu);
        if (w->queue.size() < queue_capacity_) return true;
      }
      return false;
    });
  }
}

bool ThreadPool::PopAny(std::size_t self, std::function<void()>& task) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> qlk(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
      return true;
    }
  }
  for (std::size_t j = 1; j < workers_.size(); ++j) {
    Worker& victim = *workers_[(self + j) % workers_.size()];
    std::lock_guard<std::mutex> qlk(victim.mu);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.back());
      victim.queue.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (PopAny(self, task)) {
      {
        // Order the pop against a full-queue submitter's predicate scan.
        std::lock_guard<std::mutex> lk(state_mu_);
      }
      space_cv_.notify_one();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> elk(error_mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(state_mu_);
      if (--unfinished_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(state_mu_);
    work_cv_.wait(lk, [this] { return stop_ || AnyQueued(); });
    if (stop_ && !AnyQueued()) return;
  }
}

void ThreadPool::Wait() {
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    done_cv_.wait(lk, [this] { return unfinished_ == 0; });
  }
  RethrowPending();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(state_mu_);
    done_cv_.wait(lk, [this] { return unfinished_ == 0; });
  }
  JoinThreads();
  RethrowPending();
}

void ThreadPool::JoinThreads() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::RethrowPending() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err != nullptr) std::rethrow_exception(err);
}

std::int64_t ThreadPool::unfinished() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return unfinished_;
}

}  // namespace drtp::runner
