// Result sinks for the sweep engine.
//
// Each completed cell is pushed to every registered sink as the pool
// finishes it — i.e. in a nondeterministic order under --jobs > 1. Sinks
// therefore lock internally and, where ordered output matters (TableSink),
// buffer and sort by cell index before rendering. JSONL lines carry the
// full cell coordinates plus a schema version, so a results file is
// self-describing regardless of line order.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "runner/json.h"
#include "sim/metrics.h"
#include "sim/traffic.h"

namespace drtp::runner {

class CheckpointJournal;  // runner/checkpoint.h

/// JSONL schema tag; bump when the line layout changes incompatibly.
inline constexpr char kJsonlSchema[] = "drtp.sweep/1";
/// Schema tag for single-run JSON output (drtpsim run --format=json).
inline constexpr char kRunJsonSchema[] = "drtp.run/1";

/// One point of the sweep grid.
struct Cell {
  std::size_t index = 0;  ///< Position in SweepSpec expansion order.
  std::uint64_t base_seed = 1;
  double degree = 3.0;
  sim::TrafficPattern pattern = sim::TrafficPattern::kUniform;
  double lambda = 0.5;
  std::string scheme;
  /// splitmix64(base_seed, index); seeds per-cell randomness.
  std::uint64_t cell_seed = 0;
  /// Topology model the cell's graph came from ("waxman" or "hier").
  /// JSONL lines carry it only when != "waxman" so historical sweep
  /// outputs stay byte-identical.
  std::string topo_model = "waxman";
};

struct CellResult {
  Cell cell;
  sim::RunMetrics metrics;
  /// Wall-clock spent replaying this cell, seconds.
  double wall_seconds = 0.0;
  /// Per-cell obs counter deltas ((name, count), sorted, nonzero only):
  /// the cell thread's drtp.sim.* / drtp.kernel.* counts captured around
  /// the replay. Deterministic — a cell runs single-threaded, so the
  /// thread-shard delta is exactly the cell's own event counts.
  std::vector<std::pair<std::string, std::int64_t>> obs_counters;
  /// fault::Auditor results when the sweep ran with audit enabled:
  /// full audits performed, invariant violations observed, and the
  /// cell's drtp.audit/1 JSONL lines (empty when the cell is clean).
  std::int64_t audit_checks = 0;
  std::int64_t audit_violations = 0;
  std::string audit_jsonl;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Called once per completed cell, possibly from several threads.
  virtual void Consume(const CellResult& result) = 0;
  /// Called once after the last Consume of a sweep.
  virtual void Finish() {}
};

/// Serialises `metrics` as the members of an (already open) JSON object.
void WriteRunMetrics(JsonWriter& w, const sim::RunMetrics& metrics);

/// Renders one schema-versioned JSONL line for a completed cell (no
/// trailing newline).
std::string CellResultToJson(const CellResult& result);

/// Appends one JSON object per completed cell to a stream, newline
/// terminated, under a mutex so concurrent cells never interleave.
class JsonlSink : public ResultSink {
 public:
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit JsonlSink(std::ostream& os);
  /// Opens `path` for appending; throws CheckError when unwritable.
  explicit JsonlSink(const std::string& path);
  /// Opens `path`, truncating unless `append`. Resume paths open with
  /// append=true after RecoverCheckpoint has trimmed the file.
  JsonlSink(const std::string& path, bool append);

  /// Journals every subsequent line: immediately after a line's
  /// write+flush — under the same mutex, so journal entry i always
  /// describes sink line i — appends a checkpoint entry whose digest
  /// covers the line's exact bytes including the newline. The journal is
  /// not owned and must outlive the sink.
  void AttachJournal(CheckpointJournal* journal);

  void Consume(const CellResult& result) override;
  void Finish() override;

  std::int64_t lines_written() const { return lines_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  CheckpointJournal* journal_ = nullptr;
  std::mutex mu_;
  std::int64_t lines_ = 0;
};

/// Buffers every result and renders one common/table.h row per cell in
/// cell-index order — the sweep counterpart of the bespoke figure tables.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os);

  void Consume(const CellResult& result) override;
  /// Sorts by cell index and renders the table.
  void Finish() override;

 private:
  std::ostream& os_;
  std::mutex mu_;
  std::vector<CellResult> results_;
};

/// Writes "done/total, cells/s, ETA, admits/s, blocks, failovers" lines
/// to stderr as cells complete; the lifecycle numbers are live global
/// obs-registry readouts (drtp.sim.*), not per-cell fields. Instantiate
/// just before Run() — the clock starts at construction.
class ProgressReporter : public ResultSink {
 public:
  explicit ProgressReporter(std::size_t total_cells);

  void Consume(const CellResult& result) override;
  void Finish() override;

 private:
  std::size_t total_;
  std::size_t done_ = 0;  // under mu_
  double start_seconds_;  // monotonic
  std::mutex mu_;
  /// Registry totals at construction, so a second sweep in the same
  /// process reports its own events only.
  obs::Counter admits_ = obs::GetCounter("drtp.sim.admits");
  obs::Counter blocks_ = obs::GetCounter("drtp.sim.blocks");
  obs::Counter failovers_ = obs::GetCounter("drtp.sim.failovers");
  std::int64_t admits0_ = 0;
  std::int64_t blocks0_ = 0;
  std::int64_t failovers0_ = 0;
};

}  // namespace drtp::runner
