#include "runner/sweep.h"

#include <chrono>
#include <exception>
#include <sstream>

#include "common/check.h"
#include "fault/auditor.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "sim/obs_bridge.h"

namespace drtp::runner {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t CellSeed(std::uint64_t base_seed, std::uint64_t cell_index) {
  // Stateless splitmix64: jump the stream seeded at base_seed directly to
  // output `cell_index` (the generator's increment is a Weyl sequence, so
  // the i-th state is base_seed + (i+1)·γ).
  std::uint64_t z = base_seed + (cell_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<double> PaperLambdas(bool fast) {
  if (fast) return {0.2, 0.5, 0.8};
  return {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

SweepEngine::SweepEngine(SweepSpec spec)
    : spec_(std::move(spec)),
      duration_(spec_.fast ? spec_.duration / 4 : spec_.duration) {
  DRTP_CHECK_MSG(spec_.NumCells() > 0, "empty sweep grid");
  DRTP_CHECK_MSG(spec_.topo_model == "waxman" || spec_.topo_model == "hier",
                 "unknown topology model '" << spec_.topo_model << "'");
}

std::vector<Cell> SweepEngine::Cells() const {
  std::vector<Cell> cells;
  cells.reserve(spec_.NumCells());
  std::size_t index = 0;
  for (const std::uint64_t seed : spec_.seeds) {
    for (const double degree : spec_.degrees) {
      for (const auto pattern : spec_.patterns) {
        for (const double lambda : spec_.lambdas) {
          for (const std::string& scheme : spec_.schemes) {
            Cell c;
            c.index = index;
            c.base_seed = seed;
            c.degree = degree;
            c.pattern = pattern;
            c.lambda = lambda;
            c.scheme = scheme;
            c.cell_seed = CellSeed(seed, static_cast<std::uint64_t>(index));
            c.topo_model = spec_.topo_model;
            cells.push_back(std::move(c));
            ++index;
          }
        }
      }
    }
  }
  return cells;
}

sim::ExperimentConfig SweepEngine::Experiment() const {
  sim::ExperimentConfig ec = sim::MakePaperExperiment();
  ec.warmup = duration_ * 0.4;
  ec.sample_interval = duration_ / 50.0;
  ec.num_backups = spec_.num_backups;
  ec.spare_mode = spec_.spare_mode;
  ec.lsdb_refresh_interval = spec_.lsdb_refresh_interval;
  return ec;
}

const net::Topology& SweepEngine::TopologyFor(std::uint64_t base_seed,
                                              double degree) {
  const auto key = std::make_pair(base_seed, degree);
  {
    std::shared_lock<std::shared_mutex> lk(topo_mu_);
    auto it = topos_.find(key);
    if (it != topos_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lk(topo_mu_);
  auto it = topos_.find(key);
  if (it == topos_.end()) {
    // Deterministic in (degree, seed): whichever thread generates first
    // produces the value every other thread would have.
    net::Topology topo;
    if (spec_.topo_model == "hier") {
      net::HierConfig hc = spec_.hier;
      hc.seed = base_seed;
      hc.srlg_groups = spec_.srlg_groups;
      topo = net::MakeHierarchical(hc);
    } else {
      topo = sim::MakePaperTopology(degree, base_seed, spec_.srlg_groups);
    }
    it = topos_.emplace(key, std::make_unique<net::Topology>(std::move(topo)))
             .first;
  }
  return *it->second;
}

const sim::Scenario& SweepEngine::ScenarioFor(std::uint64_t base_seed,
                                              double degree,
                                              sim::TrafficPattern pattern,
                                              double lambda) {
  const auto key = std::make_tuple(base_seed, degree, pattern, lambda);
  {
    std::shared_lock<std::shared_mutex> lk(scenario_mu_);
    auto it = scenarios_.find(key);
    if (it != scenarios_.end()) return *it->second;
  }
  const net::Topology& topo = TopologyFor(base_seed, degree);
  std::unique_lock<std::shared_mutex> lk(scenario_mu_);
  auto it = scenarios_.find(key);
  if (it == scenarios_.end()) {
    sim::TrafficConfig tc =
        sim::MakePaperTraffic(pattern, lambda, base_seed + 1000);
    tc.duration = duration_;
    if (spec_.fast) {
      // Shrink lifetimes with the horizon but scale λ up by the same
      // factor so the offered load λ·E[lifetime] matches the full run.
      const double shrink = duration_ / sim::kPaperDuration;
      tc.lifetime_min *= shrink;
      tc.lifetime_max *= shrink;
      tc.lambda = lambda / shrink;
    }
    auto sc = std::make_unique<sim::Scenario>(
        sim::Scenario::Generate(topo, tc));
    if (spec_.failures > 0) {
      sim::InjectLinkFailures(*sc, topo, spec_.failures, duration_ * 0.4,
                              duration_ * 0.95, spec_.mttr, base_seed + 55);
    }
    if (spec_.node_failures > 0 || spec_.srlg_failures > 0 ||
        spec_.bursts > 0) {
      fault::CampaignConfig cc;
      cc.node_failures = spec_.node_failures;
      cc.srlg_failures = spec_.srlg_failures;
      cc.bursts = spec_.bursts;
      cc.burst_size = spec_.burst_size;
      cc.t_begin = duration_ * 0.4;
      cc.t_end = duration_ * 0.95;
      cc.mttr = spec_.mttr;
      cc.seed = base_seed + 77;  // distinct stream from link failures
      fault::MakeCampaign(topo, cc).InjectInto(*sc);
    }
    it = scenarios_.emplace(key, std::move(sc)).first;
  }
  return *it->second;
}

CellResult SweepEngine::RunCell(const Cell& cell, obs::TraceSink* trace) {
  const net::Topology& topo = TopologyFor(cell.base_seed, cell.degree);
  const sim::Scenario& scenario =
      ScenarioFor(cell.base_seed, cell.degree, cell.pattern, cell.lambda);
  auto scheme = sim::MakeScheme(cell.scheme, topo, cell.cell_seed);
  sim::ExperimentConfig ec = Experiment();
  std::unique_ptr<sim::ObsBridge> bridge;
  if (trace != nullptr) {
    bridge = std::make_unique<sim::ObsBridge>(
        *trace, cell.scheme, static_cast<std::int64_t>(cell.index));
    ec.trace = bridge.get();
  }
  std::unique_ptr<fault::Auditor> auditor;
  std::ostringstream audit_os;
  if (spec_.audit) {
    // Full audits are O(links · connections); cap the periodic ones at
    // ~256 per cell (forced audits — failures and the final event — run
    // regardless). The stride depends only on the scenario, so results
    // stay deterministic for any --jobs.
    fault::AuditorOptions ao;
    ao.stride = 1 + static_cast<int>(scenario.events.size() / 256);
    ao.cell = static_cast<std::int64_t>(cell.index);
    ao.out = &audit_os;
    ao.require_srlg_disjoint = scheme->requires_srlg_disjoint_backup();
    auditor = std::make_unique<fault::Auditor>(ao);
    ec.after_event = [&auditor](const core::DrtpNetwork& net, Time t,
                                std::string_view event,
                                const core::SwitchoverReport* report) {
      auditor->Check(net, t, event, report);
    };
  }
  const double t0 = MonotonicSeconds();
  CellResult r;
  r.cell = cell;
  // The replay runs entirely on this thread, so the thread-shard counter
  // delta is exactly this cell's event counts — deterministic regardless
  // of --jobs.
  const obs::ThreadCounterBaseline baseline;
  r.metrics = sim::RunScenario(topo, scenario, *scheme, ec);
  r.obs_counters = baseline.Delta();
  r.wall_seconds = MonotonicSeconds() - t0;
  if (auditor != nullptr) {
    r.audit_checks = auditor->checks();
    r.audit_violations = auditor->violation_count();
    r.audit_jsonl = audit_os.str();
  }
  return r;
}

std::vector<CellResult> SweepEngine::Run(const RunOptions& options) {
  std::vector<Cell> cells = Cells();
  if (options.only.has_value()) {
    // Narrow to the requested subset, keeping grid (index) order so the
    // returned vector and any ordered sink output stay canonical.
    std::vector<bool> wanted(cells.size(), false);
    for (const std::size_t index : *options.only) {
      DRTP_CHECK_MSG(index < cells.size(),
                     "cell " << index << " outside the " << cells.size()
                             << "-cell grid");
      DRTP_CHECK_MSG(!wanted[index], "cell " << index << " selected twice");
      wanted[index] = true;
    }
    std::size_t kept = 0;
    for (const Cell& cell : cells) {
      if (wanted[cell.index]) cells[kept++] = cell;
    }
    cells.resize(kept);
  }
  std::vector<CellResult> results(cells.size());

  std::vector<ResultSink*> sinks = options.sinks;
  std::unique_ptr<ProgressReporter> progress;
  if (options.progress) {
    progress = std::make_unique<ProgressReporter>(cells.size());
    sinks.push_back(progress.get());
  }

  {
    ThreadPool pool(ThreadPool::Options{.threads = options.jobs});
    for (std::size_t slot = 0; slot < cells.size(); ++slot) {
      pool.Submit([this, slot, &cells, &results, &sinks, &options] {
        CellResult r = RunCell(cells[slot], options.trace);
        for (ResultSink* sink : sinks) sink->Consume(r);
        // Cells own distinct slots; no lock needed.
        results[slot] = std::move(r);
      });
    }
    // Crash safety: even when a cell throws, every completed cell has
    // already been pushed to the sinks — drain the pool, Finish() the
    // sinks so buffered output (tables, final flushes) reaches disk, and
    // only then propagate the failure.
    std::exception_ptr failure;
    try {
      pool.Wait();  // rethrows the first failed cell
    } catch (...) {
      failure = std::current_exception();
    }
    try {
      pool.Shutdown();  // queued cells still finish (and reach the sinks)
    } catch (...) {
      if (failure == nullptr) failure = std::current_exception();
    }
    for (ResultSink* sink : sinks) sink->Finish();
    if (options.trace != nullptr) options.trace->Finish();
    if (failure != nullptr) std::rethrow_exception(failure);
  }
  return results;
}

}  // namespace drtp::runner
