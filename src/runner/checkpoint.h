// Cell-level checkpointing and multi-process sharding for sweeps.
//
// A sweep writing to a JSONL sink can keep a checkpoint journal beside it
// (`<out>.ckpt`, schema `drtp.ckpt/1`): one header line binding the
// journal to a spec digest and shard assignment, then one line per
// completed cell recording the cell id, its seed, the FNV-1a digest of
// the exact result-line bytes, and the cell's audit evidence. Both files
// are written line-atomically (one write + flush per line, journal line
// strictly after its result line), so after a SIGKILL the on-disk state
// is always: N verified (line, journal-entry) pairs, then at most one
// result line without a journal entry, then at most one torn line.
//
// RecoverCheckpoint replays that contract in reverse: it walks journal
// entries and sink lines in lockstep, verifies every digest, truncates
// both files back to the longest verified prefix (dropping torn tails
// AND any un-journaled trailing line — re-running the cell reproduces it
// byte-identically), and returns the set of completed cells so the
// engine re-enqueues only the missing ones.
//
// Sharding needs no coordination: shard i of N owns exactly the cells
// with `index % N == i`, each shard writes its own sink + journal, and
// MergeShards reassembles the canonical single-process (cell-index)
// byte order, refusing mismatched specs, schemas or incomplete shards.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "runner/sink.h"
#include "runner/sweep.h"

namespace drtp::runner {

/// Journal schema tag; bump when the line layout changes incompatibly.
inline constexpr char kCheckpointSchema[] = "drtp.ckpt/1";

/// Canonical digest of every result-affecting SweepSpec field (hex).
/// Execution parameters (jobs, sinks, shard) are deliberately excluded:
/// the digest identifies *what* is computed, not how it is scheduled, so
/// shards of one grid share it and resume refuses a changed grid.
std::string SpecDigest(const SweepSpec& spec);

/// A `--shard=i/N` assignment: this process owns cells with
/// `index % num_shards == index_`.
struct ShardAssignment {
  std::size_t index = 0;
  std::size_t num_shards = 1;

  bool Owns(std::size_t cell_index) const {
    return cell_index % num_shards == index;
  }
  friend bool operator==(const ShardAssignment&,
                         const ShardAssignment&) = default;
};

/// Parses "i/N" (e.g. "2/4"). Throws drtp::ParseError with a usable
/// message on garbage, i >= N, N == 0, or an implausibly large N.
ShardAssignment ParseShard(const std::string& text);

/// Derives a shard's output path: inserts ".shard-i" before the final
/// extension ("out.jsonl" -> "out.shard-2.jsonl", "out" -> "out.shard-2").
/// Identity for the trivial 1-shard assignment.
std::string ShardedPath(const std::string& path, const ShardAssignment& shard);

/// The journal path kept beside a sink file.
std::string JournalPathFor(const std::string& sink_path);

/// First line of every journal.
struct CheckpointHeader {
  std::string spec_digest;
  std::size_t num_cells = 0;  ///< Full (unsharded) grid size.
  ShardAssignment shard;
};

/// One completed cell.
struct CheckpointEntry {
  std::size_t cell = 0;
  std::uint64_t cell_seed = 0;
  /// FNV-1a over the sink line's exact bytes, including the newline.
  std::uint64_t digest = 0;
  std::int64_t audit_checks = 0;
  std::int64_t audit_violations = 0;
  /// The cell's drtp.audit/1 lines (empty when clean or audit off);
  /// journaled so a resumed or merged sweep can still emit the full
  /// audit file for cells that ran in another process.
  std::string audit_jsonl;
};

/// Append-only journal writer. Lines are rendered outside any lock and
/// pushed as one write + flush, like JsonlSink lines.
class CheckpointJournal {
 public:
  /// Opens `path`; truncates unless `append`. Throws CheckError when
  /// unwritable.
  CheckpointJournal(const std::string& path, bool append);

  void WriteHeader(const CheckpointHeader& header);
  void Append(const CheckpointEntry& entry);

 private:
  std::ofstream os_;
};

/// Renders one journal line (no trailing newline); exposed for tests.
std::string CheckpointHeaderToJson(const CheckpointHeader& header);
std::string CheckpointEntryToJson(const CheckpointEntry& entry);

/// What RecoverCheckpoint found and kept.
struct RecoveredCheckpoint {
  CheckpointHeader header;
  /// Verified entries, in journal (= sink line) order.
  std::vector<CheckpointEntry> entries;
  /// Bytes of sink file retained after truncation.
  std::uint64_t sink_bytes = 0;
  /// True when no usable journal existed (fresh start: the sink was
  /// reset too, since nothing could vouch for its contents).
  bool fresh = false;
  /// done[k] == true iff cell k has a verified entry; sized num_cells.
  std::vector<bool> done;

  bool Done(std::size_t cell_index) const {
    return cell_index < done.size() && done[cell_index];
  }
};

/// Truncate-and-verify resume: loads `journal_path`, checks its header
/// against `expected` (throws drtp::ParseError on any mismatch — a
/// different spec, grid size or shard assignment must never be silently
/// "resumed"), verifies each entry's digest against the sink lines in
/// lockstep, truncates both files to the verified prefix, and reports
/// the completed cells. A missing or headerless journal resets the sink
/// and returns fresh=true.
RecoveredCheckpoint RecoverCheckpoint(const std::string& sink_path,
                                      const CheckpointHeader& expected);

/// Outcome of MergeShards.
struct MergeReport {
  std::size_t shards = 0;
  std::size_t cells = 0;
  std::int64_t audit_checks = 0;
  std::int64_t audit_violations = 0;
};

/// Merges completed shard sinks (each with its journal beside it) into
/// `out_path` in canonical cell-index order, writing a fresh journal
/// beside the merged file so it is itself verifiable and resumable.
/// When `audit_out_path` is non-empty, the journaled per-cell audit
/// lines are concatenated there in the same order. Throws
/// drtp::ParseError when shards disagree on spec/grid/shard-count, a
/// shard is missing or incomplete, any digest fails to verify, or any
/// cell is duplicated or absent.
MergeReport MergeShards(const std::vector<std::string>& shard_sink_paths,
                        const std::string& out_path,
                        const std::string& audit_out_path);

}  // namespace drtp::runner
