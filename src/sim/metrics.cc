#include "sim/metrics.h"

#include "common/check.h"

namespace drtp::sim {

double CapacityOverheadPercent(const RunMetrics& baseline,
                               const RunMetrics& scheme) {
  DRTP_CHECK(baseline.avg_active >= 0.0 && scheme.avg_active >= 0.0);
  if (baseline.avg_active <= 0.0) return 0.0;
  return 100.0 * (baseline.avg_active - scheme.avg_active) /
         baseline.avg_active;
}

}  // namespace drtp::sim
