#include "sim/trace.h"

#include <ostream>

namespace drtp::sim {
namespace {

void WriteNodes(std::ostream& os, const routing::Path& path) {
  const auto& nodes = path.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << '-';
    os << nodes[i];
  }
}

}  // namespace

void TextTraceSink::OnAdmit(Time t, ConnId conn,
                            const routing::Path& primary,
                            const routing::Path* backup, Bandwidth bw,
                            BackupAplv backup_aplv) {
  (void)bw;
  (void)backup_aplv;
  os_ << t << " + conn " << conn << " primary ";
  WriteNodes(os_, primary);
  if (backup != nullptr) {
    os_ << " backup ";
    WriteNodes(os_, *backup);
  }
  os_ << '\n';
  ++lines_;
}

void TextTraceSink::OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) {
  os_ << t << " x conn " << conn << " (" << src << " -> " << dst << ")\n";
  ++lines_;
}

void TextTraceSink::OnRelease(Time t, ConnId conn) {
  os_ << t << " - conn " << conn << '\n';
  ++lines_;
}

void TextTraceSink::OnLinkFail(Time t, LinkId link, int recovered,
                               int dropped, int backups_broken) {
  os_ << t << " ! link " << link << " recovered " << recovered << " dropped "
      << dropped << " broken " << backups_broken << '\n';
  ++lines_;
}

void TextTraceSink::OnLinkRepair(Time t, LinkId link) {
  os_ << t << " ~ link " << link << " repaired\n";
  ++lines_;
}

void TextTraceSink::OnFailover(Time t, ConnId conn,
                               const routing::Path& promoted) {
  os_ << t << " > conn " << conn << " promoted ";
  WriteNodes(os_, promoted);
  os_ << '\n';
  ++lines_;
}

void TextTraceSink::OnDrop(Time t, ConnId conn) {
  os_ << t << " # conn " << conn << " dropped\n";
  ++lines_;
}

void TextTraceSink::OnBackupBreak(Time t, ConnId conn) {
  os_ << t << " b conn " << conn << " backup broken\n";
  ++lines_;
}

void TextTraceSink::OnReestablish(Time t, ConnId conn,
                                  const routing::Path& backup,
                                  BackupAplv backup_aplv) {
  (void)backup_aplv;
  os_ << t << " = conn " << conn << " backup ";
  WriteNodes(os_, backup);
  os_ << '\n';
  ++lines_;
}

void TextTraceSink::OnNodeFail(Time t, NodeId node, int recovered,
                               int dropped, int backups_broken) {
  os_ << t << " N node " << node << " recovered " << recovered << " dropped "
      << dropped << " broken " << backups_broken << '\n';
  ++lines_;
}

void TextTraceSink::OnNodeRepair(Time t, NodeId node) {
  os_ << t << " n node " << node << " repaired\n";
  ++lines_;
}

void TextTraceSink::OnSrlgFail(Time t, SrlgId srlg, int recovered,
                               int dropped, int backups_broken) {
  os_ << t << " S srlg " << srlg << " recovered " << recovered << " dropped "
      << dropped << " broken " << backups_broken << '\n';
  ++lines_;
}

void TextTraceSink::OnSrlgRepair(Time t, SrlgId srlg) {
  os_ << t << " s srlg " << srlg << " repaired\n";
  ++lines_;
}

void TextTraceSink::OnDegrade(Time t, ConnId conn, int retries_left) {
  os_ << t << " d conn " << conn << " degraded retries-left " << retries_left
      << '\n';
  ++lines_;
}

}  // namespace drtp::sim
