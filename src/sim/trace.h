// Replay tracing (ns-style event logs).
//
// The paper's toolchain simulated with ns, whose trace files are the
// primary debugging artifact; this is the equivalent for our replays: a
// TraceSink receives every simulation event, and the bundled text sink
// renders one line per event. Wire a sink into ExperimentConfig::trace to
// see exactly why a replay admitted, blocked, or dropped what it did.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/types.h"
#include "routing/path.h"

namespace drtp::sim {

/// Receiver for replay events. Implementations must tolerate any call
/// order the simulator produces; all calls carry the simulation time.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnAdmit(Time t, ConnId conn, const routing::Path& primary,
                       const routing::Path* backup) = 0;
  virtual void OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) = 0;
  virtual void OnRelease(Time t, ConnId conn) = 0;
  virtual void OnLinkFail(Time t, LinkId link, int recovered, int dropped,
                          int backups_broken) = 0;
  virtual void OnLinkRepair(Time t, LinkId link) = 0;
};

/// Renders one line per event to a stream:
///   0.3127 + conn 12 primary 3-7-22 backup 3-9-14-22
///   0.4411 - conn 9
///   0.5000 x conn 17 (4 -> 31)
///   9.1000 ! link 45 recovered 3 dropped 1 broken 2
///   9.5000 ~ link 45 repaired
class TextTraceSink : public TraceSink {
 public:
  explicit TextTraceSink(std::ostream& os) : os_(os) {}

  void OnAdmit(Time t, ConnId conn, const routing::Path& primary,
               const routing::Path* backup) override;
  void OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) override;
  void OnRelease(Time t, ConnId conn) override;
  void OnLinkFail(Time t, LinkId link, int recovered, int dropped,
                  int backups_broken) override;
  void OnLinkRepair(Time t, LinkId link) override;

  std::int64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  std::int64_t lines_ = 0;
};

/// Counts events by kind without formatting — cheap always-on statistics.
class CountingTraceSink : public TraceSink {
 public:
  void OnAdmit(Time, ConnId, const routing::Path&,
               const routing::Path*) override {
    ++admits;
  }
  void OnBlock(Time, ConnId, NodeId, NodeId) override { ++blocks; }
  void OnRelease(Time, ConnId) override { ++releases; }
  void OnLinkFail(Time, LinkId, int, int, int) override { ++fails; }
  void OnLinkRepair(Time, LinkId) override { ++repairs; }

  std::int64_t admits = 0;
  std::int64_t blocks = 0;
  std::int64_t releases = 0;
  std::int64_t fails = 0;
  std::int64_t repairs = 0;
};

}  // namespace drtp::sim
