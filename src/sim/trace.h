// Replay tracing (ns-style event logs).
//
// The paper's toolchain simulated with ns, whose trace files are the
// primary debugging artifact; this is the equivalent for our replays: a
// TraceSink receives every simulation event, and the bundled text sink
// renders one line per event. Wire a sink into ExperimentConfig::trace to
// see exactly why a replay admitted, blocked, or dropped what it did.
//
// Structured export lives one layer down: sim::ObsBridge (obs_bridge.h)
// adapts these typed callbacks onto obs::TraceSink records
// (drtp.trace/1 JSONL, Chrome trace events).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>

#include "common/types.h"
#include "routing/path.h"

namespace drtp::sim {

/// Post-admission APLV maxima on the links of a backup route: for each
/// link of the route, the largest number of backup channels any single
/// primary-link failure would activate on it. Spans point into caller
/// storage and are valid only for the duration of the callback.
using BackupAplv = std::span<const std::pair<LinkId, std::int32_t>>;

/// Receiver for replay events. Implementations must tolerate any call
/// order the simulator produces; all calls carry the simulation time.
/// Every callback defaults to a no-op so sinks override only the events
/// they render.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A DR-connection request arrived (always followed by OnAdmit or
  /// OnBlock at the same timestamp).
  virtual void OnRequest(Time /*t*/, ConnId /*conn*/, NodeId /*src*/,
                         NodeId /*dst*/, Bandwidth /*bw*/) {}
  virtual void OnAdmit(Time /*t*/, ConnId /*conn*/,
                       const routing::Path& /*primary*/,
                       const routing::Path* /*backup*/, Bandwidth /*bw*/,
                       BackupAplv /*backup_aplv*/) {}
  virtual void OnBlock(Time /*t*/, ConnId /*conn*/, NodeId /*src*/,
                       NodeId /*dst*/) {}
  virtual void OnRelease(Time /*t*/, ConnId /*conn*/) {}
  /// Aggregate failure impact; the per-connection consequences follow as
  /// OnFailover / OnDrop / OnBackupBreak / OnReestablish calls.
  virtual void OnLinkFail(Time /*t*/, LinkId /*link*/, int /*recovered*/,
                          int /*dropped*/, int /*backups_broken*/) {}
  virtual void OnLinkRepair(Time /*t*/, LinkId /*link*/) {}
  /// One connection's backup was activated and promoted to primary.
  virtual void OnFailover(Time /*t*/, ConnId /*conn*/,
                          const routing::Path& /*promoted*/) {}
  /// One connection was lost: primary hit with no activatable backup.
  virtual void OnDrop(Time /*t*/, ConnId /*conn*/) {}
  /// One connection's (unactivated) backup was broken and released.
  virtual void OnBackupBreak(Time /*t*/, ConnId /*conn*/) {}
  /// Step-4 reconfiguration registered a fresh backup for a connection.
  virtual void OnReestablish(Time /*t*/, ConnId /*conn*/,
                             const routing::Path& /*backup*/,
                             BackupAplv /*backup_aplv*/) {}
  /// Correlated faults (scenario schema v2): a node failure takes down all
  /// incident links at once, an SRLG failure every link in the risk group.
  /// Per-connection consequences follow as OnFailover / OnDrop /
  /// OnBackupBreak / OnReestablish calls, exactly as after OnLinkFail.
  virtual void OnNodeFail(Time /*t*/, NodeId /*node*/, int /*recovered*/,
                          int /*dropped*/, int /*backups_broken*/) {}
  virtual void OnNodeRepair(Time /*t*/, NodeId /*node*/) {}
  virtual void OnSrlgFail(Time /*t*/, SrlgId /*srlg*/, int /*recovered*/,
                          int /*dropped*/, int /*backups_broken*/) {}
  virtual void OnSrlgRepair(Time /*t*/, SrlgId /*srlg*/) {}
  /// Step 4 found no feasible backup: the connection keeps running
  /// *unprotected* and enters jittered-backoff re-protection (a later
  /// OnReestablish marks success).
  virtual void OnDegrade(Time /*t*/, ConnId /*conn*/, int /*retries_left*/) {}
};

/// Renders one line per event to a stream:
///   0.3127 + conn 12 primary 3-7-22 backup 3-9-14-22
///   0.4411 - conn 9
///   0.5000 x conn 17 (4 -> 31)
///   9.1000 ! link 45 recovered 3 dropped 1 broken 2
///   9.1000 > conn 12 promoted 3-9-14-22
///   9.1000 # conn 7 dropped
///   9.1000 b conn 4 backup broken
///   9.1000 = conn 12 backup 3-5-22
///   9.5000 ~ link 45 repaired
///   9.1000 N node 6 recovered 2 dropped 1 broken 0
///   9.5000 n node 6 repaired
///   9.1000 S srlg 2 recovered 1 dropped 0 broken 3
///   9.5000 s srlg 2 repaired
///   9.1000 d conn 12 degraded retries-left 6
/// Requests are not rendered (each is immediately followed by its admit
/// or block line).
class TextTraceSink : public TraceSink {
 public:
  explicit TextTraceSink(std::ostream& os) : os_(os) {}

  void OnAdmit(Time t, ConnId conn, const routing::Path& primary,
               const routing::Path* backup, Bandwidth bw,
               BackupAplv backup_aplv) override;
  void OnBlock(Time t, ConnId conn, NodeId src, NodeId dst) override;
  void OnRelease(Time t, ConnId conn) override;
  void OnLinkFail(Time t, LinkId link, int recovered, int dropped,
                  int backups_broken) override;
  void OnLinkRepair(Time t, LinkId link) override;
  void OnFailover(Time t, ConnId conn,
                  const routing::Path& promoted) override;
  void OnDrop(Time t, ConnId conn) override;
  void OnBackupBreak(Time t, ConnId conn) override;
  void OnReestablish(Time t, ConnId conn, const routing::Path& backup,
                     BackupAplv backup_aplv) override;
  void OnNodeFail(Time t, NodeId node, int recovered, int dropped,
                  int backups_broken) override;
  void OnNodeRepair(Time t, NodeId node) override;
  void OnSrlgFail(Time t, SrlgId srlg, int recovered, int dropped,
                  int backups_broken) override;
  void OnSrlgRepair(Time t, SrlgId srlg) override;
  void OnDegrade(Time t, ConnId conn, int retries_left) override;

  std::int64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  std::int64_t lines_ = 0;
};

/// Counts events by kind without formatting — cheap always-on statistics.
class CountingTraceSink : public TraceSink {
 public:
  void OnRequest(Time, ConnId, NodeId, NodeId, Bandwidth) override {
    ++requests;
  }
  void OnAdmit(Time, ConnId, const routing::Path&, const routing::Path*,
               Bandwidth, BackupAplv) override {
    ++admits;
  }
  void OnBlock(Time, ConnId, NodeId, NodeId) override { ++blocks; }
  void OnRelease(Time, ConnId) override { ++releases; }
  void OnLinkFail(Time, LinkId, int, int, int) override { ++fails; }
  void OnLinkRepair(Time, LinkId) override { ++repairs; }
  void OnFailover(Time, ConnId, const routing::Path&) override {
    ++failovers;
  }
  void OnDrop(Time, ConnId) override { ++drops; }
  void OnBackupBreak(Time, ConnId) override { ++backup_breaks; }
  void OnReestablish(Time, ConnId, const routing::Path&,
                     BackupAplv) override {
    ++reestablishes;
  }
  void OnNodeFail(Time, NodeId, int, int, int) override { ++node_fails; }
  void OnNodeRepair(Time, NodeId) override { ++node_repairs; }
  void OnSrlgFail(Time, SrlgId, int, int, int) override { ++srlg_fails; }
  void OnSrlgRepair(Time, SrlgId) override { ++srlg_repairs; }
  void OnDegrade(Time, ConnId, int) override { ++degrades; }

  std::int64_t requests = 0;
  std::int64_t admits = 0;
  std::int64_t blocks = 0;
  std::int64_t releases = 0;
  std::int64_t fails = 0;
  std::int64_t repairs = 0;
  std::int64_t failovers = 0;
  std::int64_t drops = 0;
  std::int64_t backup_breaks = 0;
  std::int64_t reestablishes = 0;
  std::int64_t node_fails = 0;
  std::int64_t node_repairs = 0;
  std::int64_t srlg_fails = 0;
  std::int64_t srlg_repairs = 0;
  std::int64_t degrades = 0;
};

}  // namespace drtp::sim
