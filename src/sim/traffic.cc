#include "sim/traffic.h"

#include <algorithm>

#include "common/check.h"

namespace drtp::sim {

const char* PatternName(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "UT";
    case TrafficPattern::kHotspot:
      return "NT";
  }
  return "?";
}

std::vector<NodeId> HotspotNodes(const net::Topology& topo,
                                 const TrafficConfig& config) {
  DRTP_CHECK(config.hotspots > 0 && config.hotspots <= topo.num_nodes());
  // Derive from a dedicated stream so request draws do not shift the set.
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<NodeId> all(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    all[static_cast<std::size_t>(n)] = n;
  rng.Shuffle(all);
  all.resize(static_cast<std::size_t>(config.hotspots));
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<Request> GenerateRequests(const net::Topology& topo,
                                      const TrafficConfig& config) {
  DRTP_CHECK(topo.num_nodes() >= 2);
  DRTP_CHECK(config.lambda > 0.0);
  DRTP_CHECK(config.duration > 0.0);
  DRTP_CHECK(config.bw > 0);
  DRTP_CHECK(config.bw_max == 0 || config.bw_max >= config.bw);
  DRTP_CHECK(config.lifetime_min > 0.0 &&
             config.lifetime_max >= config.lifetime_min);
  DRTP_CHECK(config.hotspot_fraction >= 0.0 &&
             config.hotspot_fraction <= 1.0);

  const std::vector<NodeId> hotspots =
      config.pattern == TrafficPattern::kHotspot ? HotspotNodes(topo, config)
                                                 : std::vector<NodeId>{};
  Rng rng(config.seed);
  std::vector<Request> requests;
  Time t = 0.0;
  ConnId next_id = 0;
  while (true) {
    t += rng.Exponential(config.lambda);
    if (t >= config.duration) break;
    Request r;
    r.id = next_id++;
    r.arrival = t;
    r.lifetime = rng.UniformReal(config.lifetime_min, config.lifetime_max);
    if (config.bw_max > config.bw) {
      constexpr Bandwidth kStep = 250;  // kbit/s granularity
      const auto steps = (config.bw_max - config.bw) / kStep;
      r.bw = config.bw + kStep * rng.UniformInt(0, steps);
    } else {
      r.bw = config.bw;
    }
    // Destination first (NT concentrates destinations), then a distinct
    // uniform source.
    if (config.pattern == TrafficPattern::kHotspot &&
        rng.Bernoulli(config.hotspot_fraction)) {
      r.dst = hotspots[rng.Index(hotspots.size())];
    } else {
      r.dst = static_cast<NodeId>(rng.Index(
          static_cast<std::size_t>(topo.num_nodes())));
    }
    do {
      r.src = static_cast<NodeId>(rng.Index(
          static_cast<std::size_t>(topo.num_nodes())));
    } while (r.src == r.dst);
    requests.push_back(r);
  }
  return requests;
}

}  // namespace drtp::sim
