// Traffic model (§6.1).
//
// DR-connection requests arrive as a Poisson process with rate lambda;
// each connection needs a constant bandwidth and lives for a uniformly
// distributed time between 20 and 60 minutes. Two endpoint patterns:
//   UT — source and destination drawn uniformly at random,
//   NT — 10 pre-selected nodes receive 50% of all connections.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"

namespace drtp::sim {

enum class TrafficPattern { kUniform, kHotspot };

/// Short names used in tables: UT / NT (the paper's labels).
const char* PatternName(TrafficPattern p);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// Request arrival rate, per second.
  double lambda = 0.5;
  /// Requests arrive in [0, duration); releases may fall later.
  Time duration = 10000.0;
  /// Per-connection bandwidth (paper: identical for all). When bw_max > bw
  /// each request draws uniformly from {bw, bw+250 kbps, ..., bw_max} —
  /// the heterogeneous workload the §5 sizing rule is generalized for.
  Bandwidth bw = Mbps(1);
  Bandwidth bw_max = 0;  // 0 = constant bandwidth
  /// Uniform lifetime bounds.
  Time lifetime_min = Minutes(20);
  Time lifetime_max = Minutes(60);
  /// NT parameters: this many random nodes receive `hotspot_fraction` of
  /// all connections as destinations.
  int hotspots = 10;
  double hotspot_fraction = 0.5;
  std::uint64_t seed = 1;
};

/// One connection request as the generator produced it.
struct Request {
  ConnId id = kInvalidConn;
  Time arrival = 0.0;
  Time lifetime = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bandwidth bw = 0;
};

/// Draws the full request sequence for one run; arrivals are strictly
/// increasing, ids sequential from 0. Deterministic in (config, topology
/// node count).
std::vector<Request> GenerateRequests(const net::Topology& topo,
                                      const TrafficConfig& config);

/// The NT hotspot destination set for the given config (exposed so tests
/// and the harness can verify concentration).
std::vector<NodeId> HotspotNodes(const net::Topology& topo,
                                 const TrafficConfig& config);

}  // namespace drtp::sim
