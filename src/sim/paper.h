// The paper's evaluation setup (§6.1, Table 1) in one place, shared by the
// bench harnesses, tests and examples.
//
// The archival scan of Table 1 lost its numeric column; the values here
// are reconstructed to match every constraint the text states — 60 nodes,
// E ∈ {3,4}, video/audio-scale bandwidth, lifetimes U(20,60) min, and the
// stated saturation points (λ≈0.5 at E=3, λ≈0.9 at E=4). See DESIGN.md.
#pragma once

#include <memory>
#include <string>

#include "drtp/scheme.h"
#include "net/generators.h"
#include "sim/experiment.h"
#include "sim/traffic.h"

namespace drtp::sim {

inline constexpr int kPaperNodes = 60;
inline constexpr Bandwidth kPaperLinkCapacity = Mbps(30);
inline constexpr Bandwidth kPaperConnBw = Mbps(1);
inline constexpr Time kPaperDuration = 10000.0;
inline constexpr Time kPaperWarmup = 4000.0;

/// 60-node Waxman topology with the requested average degree. When
/// `srlg_groups` > 0 the links are additionally tagged with that many
/// geographically clustered shared-risk groups (fault campaigns);
/// srlg_groups = 0 is bit-identical to the historical two-arg call.
net::Topology MakePaperTopology(double avg_degree, std::uint64_t seed,
                                int srlg_groups = 0);

/// Traffic config for one (pattern, λ) cell of Fig. 4/5.
TrafficConfig MakePaperTraffic(TrafficPattern pattern, double lambda,
                               std::uint64_t seed);

/// Experiment protocol used by all figure benches.
ExperimentConfig MakePaperExperiment();

/// Scheme factory by table label: "D-LSR", "P-LSR", "BF", "NoBackup",
/// "RandomBackup", "SD-Backup". BF needs the topology for its distance
/// tables; RandomBackup needs a seed. Throws CheckError on unknown names.
std::unique_ptr<core::RoutingScheme> MakeScheme(const std::string& label,
                                                const net::Topology& topo,
                                                std::uint64_t seed);

}  // namespace drtp::sim
