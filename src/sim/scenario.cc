#include "sim/scenario.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace drtp::sim {

Scenario Scenario::Generate(const net::Topology& topo,
                            const TrafficConfig& config) {
  Scenario sc;
  sc.traffic = config;
  const std::vector<Request> requests = GenerateRequests(topo, config);
  sc.events.reserve(requests.size() * 2);
  for (const Request& r : requests) {
    sc.events.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kRequest,
                                      .time = r.arrival,
                                      .conn = r.id,
                                      .src = r.src,
                                      .dst = r.dst,
                                      .bw = r.bw,
                                      .link = kInvalidLink});
    sc.events.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kRelease,
                                      .time = r.arrival + r.lifetime,
                                      .conn = r.id,
                                      .src = kInvalidNode,
                                      .dst = kInvalidNode,
                                      .bw = 0,
                                      .link = kInvalidLink});
  }
  std::stable_sort(sc.events.begin(), sc.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  return sc;
}

std::int64_t Scenario::NumRequests() const {
  return static_cast<std::int64_t>(
      std::count_if(events.begin(), events.end(), [](const ScenarioEvent& e) {
        return e.type == ScenarioEvent::Type::kRequest;
      }));
}

std::int64_t Scenario::NumFailures() const {
  return static_cast<std::int64_t>(
      std::count_if(events.begin(), events.end(), [](const ScenarioEvent& e) {
        return e.type == ScenarioEvent::Type::kLinkFail;
      }));
}

void InjectLinkFailures(Scenario& scenario, const net::Topology& topo,
                        int count, Time t_begin, Time t_end, Time mttr,
                        std::uint64_t seed) {
  DRTP_CHECK(count >= 0);
  DRTP_CHECK(t_begin >= 0.0 && t_end > t_begin);
  DRTP_CHECK(mttr > 0.0);
  DRTP_CHECK(topo.num_links() > 0);
  Rng rng(seed);

  std::vector<ScenarioEvent> faults;
  // down_until[l] prevents re-failing a link that is still under repair.
  std::vector<Time> down_until(static_cast<std::size_t>(topo.num_links()),
                               -1.0);
  // Draw instants first, then sort, so victims are picked in time order.
  std::vector<Time> instants;
  instants.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    instants.push_back(rng.UniformReal(t_begin, t_end));
  }
  std::sort(instants.begin(), instants.end());
  for (const Time t : instants) {
    LinkId victim = kInvalidLink;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const LinkId l = static_cast<LinkId>(
          rng.Index(static_cast<std::size_t>(topo.num_links())));
      if (down_until[static_cast<std::size_t>(l)] < t) {
        victim = l;
        break;
      }
    }
    if (victim == kInvalidLink) continue;  // nearly everything is down
    down_until[static_cast<std::size_t>(victim)] = t + mttr;
    faults.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kLinkFail,
                                   .time = t,
                                   .conn = kInvalidConn,
                                   .src = kInvalidNode,
                                   .dst = kInvalidNode,
                                   .bw = 0,
                                   .link = victim});
    faults.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kLinkRepair,
                                   .time = t + mttr,
                                   .conn = kInvalidConn,
                                   .src = kInvalidNode,
                                   .dst = kInvalidNode,
                                   .bw = 0,
                                   .link = victim});
  }
  scenario.events.insert(scenario.events.end(), faults.begin(), faults.end());
  std::stable_sort(scenario.events.begin(), scenario.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
}

void Scenario::Save(std::ostream& os) const {
  os << "drtp-scenario 1\n";
  os << "traffic " << static_cast<int>(traffic.pattern) << " "
     << traffic.lambda << " " << traffic.duration << " " << traffic.bw << " "
     << traffic.bw_max << " " << traffic.lifetime_min << " "
     << traffic.lifetime_max << " " << traffic.hotspots << " "
     << traffic.hotspot_fraction << " " << traffic.seed << "\n";
  os << "events " << events.size() << "\n";
  os.precision(17);  // times must round-trip exactly
  for (const ScenarioEvent& e : events) {
    switch (e.type) {
      case ScenarioEvent::Type::kRequest:
        os << "req " << e.time << " " << e.conn << " " << e.src << " "
           << e.dst << " " << e.bw << "\n";
        break;
      case ScenarioEvent::Type::kRelease:
        os << "rel " << e.time << " " << e.conn << "\n";
        break;
      case ScenarioEvent::Type::kLinkFail:
        os << "fail " << e.time << " " << e.link << "\n";
        break;
      case ScenarioEvent::Type::kLinkRepair:
        os << "repair " << e.time << " " << e.link << "\n";
        break;
    }
  }
}

Scenario Scenario::Load(std::istream& is) {
  std::string word;
  int version = 0;
  DRTP_CHECK_MSG(is >> word >> version && word == "drtp-scenario" &&
                     version == 1,
                 "bad scenario header");
  Scenario sc;
  int pattern = 0;
  DRTP_CHECK(is >> word >> pattern >> sc.traffic.lambda >>
                 sc.traffic.duration >> sc.traffic.bw >> sc.traffic.bw_max >>
                 sc.traffic.lifetime_min >> sc.traffic.lifetime_max >>
                 sc.traffic.hotspots >> sc.traffic.hotspot_fraction >>
                 sc.traffic.seed &&
             word == "traffic");
  DRTP_CHECK(pattern == 0 || pattern == 1);
  sc.traffic.pattern = static_cast<TrafficPattern>(pattern);
  std::size_t count = 0;
  DRTP_CHECK(is >> word >> count && word == "events");
  sc.events.reserve(count);
  Time prev = -kTimeInfinity;
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioEvent e;
    DRTP_CHECK_MSG(static_cast<bool>(is >> word), "truncated scenario");
    if (word == "req") {
      e.type = ScenarioEvent::Type::kRequest;
      DRTP_CHECK(is >> e.time >> e.conn >> e.src >> e.dst >> e.bw);
    } else if (word == "rel") {
      e.type = ScenarioEvent::Type::kRelease;
      DRTP_CHECK(is >> e.time >> e.conn);
    } else if (word == "fail") {
      e.type = ScenarioEvent::Type::kLinkFail;
      DRTP_CHECK(is >> e.time >> e.link);
    } else if (word == "repair") {
      e.type = ScenarioEvent::Type::kLinkRepair;
      DRTP_CHECK(is >> e.time >> e.link);
    } else {
      DRTP_CHECK_MSG(false, "unknown event kind '" << word << "'");
    }
    DRTP_CHECK_MSG(e.time >= prev, "events out of order");
    prev = e.time;
    sc.events.push_back(e);
  }
  return sc;
}

std::string Scenario::ToString() const {
  std::ostringstream os;
  Save(os);
  return os.str();
}

Scenario Scenario::FromString(const std::string& text) {
  std::istringstream is(text);
  return Load(is);
}

}  // namespace drtp::sim
