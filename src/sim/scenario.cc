#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/error.h"
#include "common/lineio.h"
#include "common/rng.h"

namespace drtp::sim {

Scenario Scenario::Generate(const net::Topology& topo,
                            const TrafficConfig& config) {
  Scenario sc;
  sc.traffic = config;
  const std::vector<Request> requests = GenerateRequests(topo, config);
  sc.events.reserve(requests.size() * 2);
  for (const Request& r : requests) {
    sc.events.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kRequest,
                                      .time = r.arrival,
                                      .conn = r.id,
                                      .src = r.src,
                                      .dst = r.dst,
                                      .bw = r.bw,
                                      .link = kInvalidLink});
    sc.events.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kRelease,
                                      .time = r.arrival + r.lifetime,
                                      .conn = r.id,
                                      .src = kInvalidNode,
                                      .dst = kInvalidNode,
                                      .bw = 0,
                                      .link = kInvalidLink});
  }
  std::stable_sort(sc.events.begin(), sc.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  return sc;
}

std::int64_t Scenario::NumRequests() const {
  return static_cast<std::int64_t>(
      std::count_if(events.begin(), events.end(), [](const ScenarioEvent& e) {
        return e.type == ScenarioEvent::Type::kRequest;
      }));
}

std::int64_t Scenario::NumFailures() const {
  return static_cast<std::int64_t>(
      std::count_if(events.begin(), events.end(), [](const ScenarioEvent& e) {
        return e.type == ScenarioEvent::Type::kLinkFail ||
               e.type == ScenarioEvent::Type::kNodeFail ||
               e.type == ScenarioEvent::Type::kSrlgFail;
      }));
}

void Scenario::Validate(const net::Topology& topo) const {
  const auto bad = [](std::int64_t i, const std::string& what) {
    throw ParseError("event " + std::to_string(i) + ": " + what);
  };
  const auto range = [](const char* kind, auto id, int limit) {
    return std::string(kind) + " " + std::to_string(id) +
           " out of range [0, " + std::to_string(limit) + ")";
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    const auto idx = static_cast<std::int64_t>(i);
    switch (e.type) {
      case ScenarioEvent::Type::kRequest:
        if (e.src < 0 || e.src >= topo.num_nodes()) {
          bad(idx, range("request src node", e.src, topo.num_nodes()));
        }
        if (e.dst < 0 || e.dst >= topo.num_nodes()) {
          bad(idx, range("request dst node", e.dst, topo.num_nodes()));
        }
        break;
      case ScenarioEvent::Type::kRelease:
        break;
      case ScenarioEvent::Type::kLinkFail:
      case ScenarioEvent::Type::kLinkRepair:
        if (e.link < 0 || e.link >= topo.num_links()) {
          bad(idx, range("fail/repair link", e.link, topo.num_links()));
        }
        break;
      case ScenarioEvent::Type::kNodeFail:
      case ScenarioEvent::Type::kNodeRepair:
        if (e.node < 0 || e.node >= topo.num_nodes()) {
          bad(idx, range("fail/repair node", e.node, topo.num_nodes()));
        }
        break;
      case ScenarioEvent::Type::kSrlgFail:
      case ScenarioEvent::Type::kSrlgRepair:
        if (e.srlg < 0 || e.srlg >= topo.num_srlgs()) {
          bad(idx, range("fail/repair srlg group", e.srlg, topo.num_srlgs()));
        }
        break;
    }
  }
}

void InjectLinkFailures(Scenario& scenario, const net::Topology& topo,
                        int count, Time t_begin, Time t_end, Time mttr,
                        std::uint64_t seed) {
  DRTP_CHECK(count >= 0);
  DRTP_CHECK(t_begin >= 0.0 && t_end > t_begin);
  DRTP_CHECK(mttr > 0.0);
  DRTP_CHECK(topo.num_links() > 0);
  Rng rng(seed);

  std::vector<ScenarioEvent> faults;
  // down_until[l] prevents re-failing a link that is still under repair.
  std::vector<Time> down_until(static_cast<std::size_t>(topo.num_links()),
                               -1.0);
  // Draw instants first, then sort, so victims are picked in time order.
  std::vector<Time> instants;
  instants.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    instants.push_back(rng.UniformReal(t_begin, t_end));
  }
  std::sort(instants.begin(), instants.end());
  for (const Time t : instants) {
    LinkId victim = kInvalidLink;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const LinkId l = static_cast<LinkId>(
          rng.Index(static_cast<std::size_t>(topo.num_links())));
      if (down_until[static_cast<std::size_t>(l)] < t) {
        victim = l;
        break;
      }
    }
    if (victim == kInvalidLink) continue;  // nearly everything is down
    down_until[static_cast<std::size_t>(victim)] = t + mttr;
    faults.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kLinkFail,
                                   .time = t,
                                   .conn = kInvalidConn,
                                   .src = kInvalidNode,
                                   .dst = kInvalidNode,
                                   .bw = 0,
                                   .link = victim});
    faults.push_back(ScenarioEvent{.type = ScenarioEvent::Type::kLinkRepair,
                                   .time = t + mttr,
                                   .conn = kInvalidConn,
                                   .src = kInvalidNode,
                                   .dst = kInvalidNode,
                                   .bw = 0,
                                   .link = victim});
  }
  scenario.events.insert(scenario.events.end(), faults.begin(), faults.end());
  std::stable_sort(scenario.events.begin(), scenario.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
}

void Scenario::Save(std::ostream& os) const {
  const bool v2 = std::any_of(events.begin(), events.end(),
                              [](const ScenarioEvent& e) {
                                return e.RequiresV2();
                              });
  os << "drtp-scenario " << (v2 ? 2 : 1) << "\n";
  os << "traffic " << static_cast<int>(traffic.pattern) << " "
     << traffic.lambda << " " << traffic.duration << " " << traffic.bw << " "
     << traffic.bw_max << " " << traffic.lifetime_min << " "
     << traffic.lifetime_max << " " << traffic.hotspots << " "
     << traffic.hotspot_fraction << " " << traffic.seed << "\n";
  os << "events " << events.size() << "\n";
  os.precision(17);  // times must round-trip exactly
  for (const ScenarioEvent& e : events) {
    switch (e.type) {
      case ScenarioEvent::Type::kRequest:
        os << "req " << e.time << " " << e.conn << " " << e.src << " "
           << e.dst << " " << e.bw << "\n";
        break;
      case ScenarioEvent::Type::kRelease:
        os << "rel " << e.time << " " << e.conn << "\n";
        break;
      case ScenarioEvent::Type::kLinkFail:
        os << "fail " << e.time << " " << e.link << "\n";
        break;
      case ScenarioEvent::Type::kLinkRepair:
        os << "repair " << e.time << " " << e.link << "\n";
        break;
      case ScenarioEvent::Type::kNodeFail:
        os << "fail-node " << e.time << " " << e.node << "\n";
        break;
      case ScenarioEvent::Type::kNodeRepair:
        os << "repair-node " << e.time << " " << e.node << "\n";
        break;
      case ScenarioEvent::Type::kSrlgFail:
        os << "fail-srlg " << e.time << " " << e.srlg << "\n";
        break;
      case ScenarioEvent::Type::kSrlgRepair:
        os << "repair-srlg " << e.time << " " << e.srlg << "\n";
        break;
    }
  }
}

Scenario Scenario::Load(std::istream& is) {
  using lineio::ParseFields;
  LineReader in(is);
  int version = 0;
  lineio::ParseLine(in.Next("header"), in.lineno(), "drtp-scenario", version);
  if (version != 1 && version != 2) {
    throw ParseError("unsupported scenario version " + std::to_string(version),
                     in.lineno());
  }
  Scenario sc;
  int pattern = 0;
  lineio::ParseLine(in.Next("traffic"), in.lineno(), "traffic", pattern,
                    sc.traffic.lambda, sc.traffic.duration, sc.traffic.bw,
                    sc.traffic.bw_max, sc.traffic.lifetime_min,
                    sc.traffic.lifetime_max, sc.traffic.hotspots,
                    sc.traffic.hotspot_fraction, sc.traffic.seed);
  if (pattern != 0 && pattern != 1) {
    throw ParseError("unknown traffic pattern " + std::to_string(pattern),
                     in.lineno());
  }
  sc.traffic.pattern = static_cast<TrafficPattern>(pattern);
  const int count = lineio::ParseCount(in, "events");
  sc.events.reserve(static_cast<std::size_t>(count));
  Time prev = -kTimeInfinity;
  for (int i = 0; i < count; ++i) {
    const std::string line = in.Next("event");
    const std::int64_t lineno = in.lineno();
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    ScenarioEvent e;
    if (kind == "req") {
      e.type = ScenarioEvent::Type::kRequest;
      ParseFields(ls, lineno, kind, e.time, e.conn, e.src, e.dst, e.bw);
      if (e.conn < 0 || e.src < 0 || e.dst < 0 || e.src == e.dst || e.bw <= 0) {
        throw ParseError("invalid request fields", lineno);
      }
    } else if (kind == "rel") {
      e.type = ScenarioEvent::Type::kRelease;
      ParseFields(ls, lineno, kind, e.time, e.conn);
      if (e.conn < 0) throw ParseError("invalid connection id", lineno);
    } else if (kind == "fail") {
      e.type = ScenarioEvent::Type::kLinkFail;
      ParseFields(ls, lineno, kind, e.time, e.link);
      if (e.link < 0) throw ParseError("invalid link id", lineno);
    } else if (kind == "repair") {
      e.type = ScenarioEvent::Type::kLinkRepair;
      ParseFields(ls, lineno, kind, e.time, e.link);
      if (e.link < 0) throw ParseError("invalid link id", lineno);
    } else if (kind == "fail-node" || kind == "repair-node") {
      e.type = kind == "fail-node" ? ScenarioEvent::Type::kNodeFail
                                   : ScenarioEvent::Type::kNodeRepair;
      ParseFields(ls, lineno, kind, e.time, e.node);
      if (e.node < 0) throw ParseError("invalid node id", lineno);
    } else if (kind == "fail-srlg" || kind == "repair-srlg") {
      e.type = kind == "fail-srlg" ? ScenarioEvent::Type::kSrlgFail
                                   : ScenarioEvent::Type::kSrlgRepair;
      ParseFields(ls, lineno, kind, e.time, e.srlg);
      if (e.srlg < 0) throw ParseError("invalid srlg id", lineno);
    } else {
      throw ParseError("unknown event kind '" + kind + "'", lineno);
    }
    if (e.RequiresV2() && version < 2) {
      throw ParseError("event '" + kind + "' requires scenario version 2",
                       lineno);
    }
    if (!std::isfinite(e.time)) throw ParseError("non-finite time", lineno);
    if (e.time < prev) throw ParseError("events out of order", lineno);
    prev = e.time;
    sc.events.push_back(e);
  }
  if (in.HasTrailing()) {
    throw ParseError("trailing content after events", in.lineno());
  }
  return sc;
}

std::string Scenario::ToString() const {
  std::ostringstream os;
  Save(os);
  return os.str();
}

Scenario Scenario::FromString(const std::string& text) {
  std::istringstream is(text);
  return Load(is);
}

}  // namespace drtp::sim
