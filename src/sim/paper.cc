#include "sim/paper.h"

#include "common/check.h"
#include "drtp/baselines.h"
#include "drtp/bounded_flood.h"
#include "drtp/dlsr.h"
#include "drtp/plsr.h"
#include "drtp/srlg_schemes.h"

namespace drtp::sim {

net::Topology MakePaperTopology(double avg_degree, std::uint64_t seed,
                                int srlg_groups) {
  return net::MakeWaxman(net::WaxmanConfig{.nodes = kPaperNodes,
                                           .avg_degree = avg_degree,
                                           .alpha = 0.25,
                                           .beta = 0.8,
                                           .link_capacity = kPaperLinkCapacity,
                                           .srlg_groups = srlg_groups,
                                           .seed = seed});
}

TrafficConfig MakePaperTraffic(TrafficPattern pattern, double lambda,
                               std::uint64_t seed) {
  TrafficConfig tc;
  tc.pattern = pattern;
  tc.lambda = lambda;
  tc.duration = kPaperDuration;
  tc.bw = kPaperConnBw;
  tc.lifetime_min = Minutes(20);
  tc.lifetime_max = Minutes(60);
  tc.hotspots = 10;
  tc.hotspot_fraction = 0.5;
  tc.seed = seed;
  return tc;
}

ExperimentConfig MakePaperExperiment() {
  ExperimentConfig ec;
  ec.warmup = kPaperWarmup;
  ec.sample_interval = 200.0;
  ec.lsdb_refresh_interval = 0.0;
  ec.spare_mode = core::SpareMode::kMultiplexed;
  return ec;
}

std::unique_ptr<core::RoutingScheme> MakeScheme(const std::string& label,
                                                const net::Topology& topo,
                                                std::uint64_t seed) {
  if (label == "D-LSR") return std::make_unique<core::Dlsr>();
  if (label == "P-LSR") return std::make_unique<core::Plsr>();
  if (label == "BF") return std::make_unique<core::BoundedFlooding>(topo);
  if (label == "NoBackup") return std::make_unique<core::NoBackup>();
  if (label == "RandomBackup")
    return std::make_unique<core::RandomBackup>(seed);
  if (label == "SD-Backup")
    return std::make_unique<core::ShortestDisjointBackup>();
  if (label == "P-LSR-SRLG-SOFT")
    return std::make_unique<core::SrlgLsr>(/*deterministic=*/false,
                                           core::SrlgMode::kSoft);
  if (label == "P-LSR-SRLG-HARD")
    return std::make_unique<core::SrlgLsr>(/*deterministic=*/false,
                                           core::SrlgMode::kHard);
  if (label == "D-LSR-SRLG-SOFT")
    return std::make_unique<core::SrlgLsr>(/*deterministic=*/true,
                                           core::SrlgMode::kSoft);
  if (label == "D-LSR-SRLG-HARD")
    return std::make_unique<core::SrlgLsr>(/*deterministic=*/true,
                                           core::SrlgMode::kHard);
  if (label == "SRLG-PAIR") return std::make_unique<core::SrlgPairScheme>();
  DRTP_CHECK_MSG(false, "unknown scheme '" << label << "'");
  return nullptr;
}

}  // namespace drtp::sim
